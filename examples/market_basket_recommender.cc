// Market-basket recommendation — the paper's motivating scenario (Section
// 1): given a customer's transaction, find the most similar past
// transactions and recommend the items they contain that the customer has
// not bought yet.
//
// Generates a Quest-style synthetic transaction log, indexes it with an
// SG-tree, and serves recommendations for a few incoming baskets,
// reporting how little of the database the index had to touch.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/stats.h"
#include "data/quest_generator.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

int main() {
  using namespace sgtree;

  QuestOptions qopt;
  qopt.num_transactions = 20'000;
  qopt.num_items = 500;
  qopt.num_patterns = 300;
  qopt.avg_transaction_size = 10;
  qopt.avg_itemset_size = 6;
  qopt.seed = 2024;
  QuestGenerator gen(qopt);
  const Dataset history = gen.Generate();

  SgTreeOptions topt;
  topt.num_bits = qopt.num_items;
  SgTree tree(topt);
  Timer build_timer;
  for (const Transaction& txn : history.transactions) tree.Insert(txn);
  std::printf("Indexed %zu transactions in %.0f ms "
              "(height %u, %llu nodes)\n\n",
              tree.size(), build_timer.ElapsedMs(), tree.height(),
              static_cast<unsigned long long>(tree.node_count()));

  const auto customers = gen.GenerateQueries(5);
  for (const Transaction& customer : customers) {
    const Signature q = Signature::FromItems(customer.items, qopt.num_items);

    // 20 most similar historical baskets.
    QueryStats stats;
    Timer query_timer;
    const auto neighbors =
        DfsKNearest(tree, q, 20, tree.OwnPoolContext(&stats));
    const double ms = query_timer.ElapsedMs();

    // Score candidate items by how many similar baskets contain them.
    std::map<ItemId, int> votes;
    for (const Neighbor& n : neighbors) {
      const Transaction& basket =
          history.transactions[static_cast<size_t>(n.tid)];
      for (ItemId item : basket.items) {
        if (!q.Test(item)) ++votes[item];
      }
    }
    std::vector<std::pair<int, ItemId>> ranked;
    for (const auto& [item, count] : votes) ranked.push_back({count, item});
    std::sort(ranked.rbegin(), ranked.rend());

    std::printf("Customer basket {");
    for (size_t i = 0; i < customer.items.size(); ++i) {
      std::printf("%s%u", i ? ", " : "", customer.items[i]);
    }
    std::printf("}\n  recommend items:");
    for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
      std::printf(" %u(x%d)", ranked[i].second, ranked[i].first);
    }
    std::printf("\n  [%.2f ms, touched %.1f%% of the database, "
                "%llu node reads]\n\n",
                ms, 100.0 * stats.transactions_compared / history.size(),
                static_cast<unsigned long long>(stats.nodes_accessed));
  }
  return 0;
}
