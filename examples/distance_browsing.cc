// Distance browsing: stream neighbors of a query in ascending distance
// without choosing k up front (the Hjaltason-Samet incremental search the
// paper cites for optimal NN), then run the same queries against a
// disk-image of the index through the bounded-memory PagedReader.

#include <cstdio>

#include "common/stats.h"
#include "data/quest_generator.h"
#include "sgtree/incremental.h"
#include "sgtree/paged_reader.h"
#include "sgtree/sg_tree.h"

int main() {
  using namespace sgtree;

  QuestOptions qopt;
  qopt.num_transactions = 15'000;
  qopt.num_items = 500;
  qopt.num_patterns = 250;
  qopt.seed = 77;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();

  SgTreeOptions topt;
  topt.num_bits = qopt.num_items;
  SgTree tree(topt);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);

  const auto queries = gen.GenerateQueries(1);
  const Signature query =
      Signature::FromItems(queries[0].items, qopt.num_items);

  // Stream neighbors until the distance doubles from the first hit —
  // a stopping rule no k-NN interface can express.
  QueryStats stats;
  NearestIterator it(tree, query, &stats);
  const auto first = it.Next();
  if (!first.has_value()) return 1;
  std::printf("browsing neighbors until distance exceeds 2x the nearest "
              "(%g):\n", first->distance);
  std::printf("  #%llu at %g\n", static_cast<unsigned long long>(first->tid),
              first->distance);
  int streamed = 1;
  const double cutoff = first->distance <= 0 ? 2 : first->distance * 2;
  while (it.PeekDistance() <= cutoff && streamed < 25) {
    const auto n = *it.Next();
    std::printf("  #%llu at %g\n", static_cast<unsigned long long>(n.tid),
                n.distance);
    ++streamed;
  }
  std::printf("streamed %d neighbors touching %llu of %llu nodes\n\n",
              streamed,
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(tree.node_count()));

  // All ties at the minimum distance, in one call.
  const auto ties = AllNearest(tree, query);
  std::printf("transactions tied at the minimum distance %g: %zu\n\n",
              ties[0].distance, ties.size());

  // Same index as a page image, queried with a 32-page cache.
  const PagedTreeImage image = FlushTreeToPages(tree, /*compress=*/true);
  PagedReader::Options ropt;
  ropt.cache_pages = 32;
  PagedReader reader(&image, ropt);
  QueryStats paged_stats;
  const Neighbor nn = reader.Nearest(query, &paged_stats);
  std::printf("paged reader (32-page cache over %u live pages): NN #%llu "
              "at %g, %llu page decodes\n",
              image.pages->LivePages(),
              static_cast<unsigned long long>(nn.tid), nn.distance,
              static_cast<unsigned long long>(paged_stats.random_ios));
  return 0;
}
