// Categorical-data exploration on a CENSUS-like dataset: k-NN and
// similarity range search over 36-attribute tuples, using the
// fixed-dimensionality bound (Section 6), plus leaf-guided clustering of
// the collection (Section 6 future work).

#include <cstdio>

#include "common/stats.h"
#include "data/census_generator.h"
#include "sgtree/clustering.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

int main() {
  using namespace sgtree;

  CensusOptions copt;
  copt.num_tuples = 20'000;
  copt.seed = 11;
  CensusGenerator gen(copt);
  const Dataset census = gen.Generate();
  std::printf("CENSUS-like dataset: %zu tuples, %u attributes, %u values\n",
              census.size(), census.fixed_dimensionality, census.num_items);

  SgTreeOptions topt;
  topt.num_bits = census.num_items;
  topt.fixed_dimensionality = census.fixed_dimensionality;  // Tight bound.
  SgTree tree(topt);
  Timer build_timer;
  for (const Transaction& tuple : census.transactions) tree.Insert(tuple);
  std::printf("Indexed in %.0f ms (height %u)\n\n", build_timer.ElapsedMs(),
              tree.height());

  const auto queries = gen.GenerateQueries(3);
  for (const Transaction& person : queries) {
    const Signature q = Signature::FromItems(person.items, census.num_items);

    QueryStats stats;
    const auto knn = DfsKNearest(tree, q, 5, tree.OwnPoolContext(&stats));
    std::printf("5 most similar individuals (of %zu):", census.size());
    for (const Neighbor& n : knn) {
      std::printf(" #%llu(d=%.0f)", static_cast<unsigned long long>(n.tid),
                  n.distance);
    }
    std::printf("\n  touched %.2f%% of the data\n",
                100.0 * stats.transactions_compared / census.size());

    // All individuals differing in at most 2 attributes (Hamming <= 4,
    // since every attribute mismatch flips two bits).
    QueryStats range_stats;
    const auto close_matches =
        RangeSearch(tree, q, 4.0, tree.OwnPoolContext(&range_stats));
    std::printf("  individuals within 2 attribute changes: %zu "
                "(touched %.2f%%)\n\n",
                close_matches.size(),
                100.0 * range_stats.transactions_compared / census.size());
  }

  // Cluster the population via the tree's leaves (Section 6).
  const auto clusters = ClusterByLeaves(tree, 6);
  std::printf("Leaf-guided clustering into %zu segments:\n", clusters.size());
  for (size_t c = 0; c < clusters.size(); ++c) {
    std::printf("  segment %zu: %zu individuals, footprint %u of %u values\n",
                c, clusters[c].tids.size(), clusters[c].signature.Area(),
                census.num_items);
  }
  return 0;
}
