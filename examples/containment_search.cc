// Itemset containment queries (Section 3's walk-through) plus the
// reconstructed Section 4.2 multi-tree queries: a similarity self-join to
// find near-duplicate transactions, and closest pairs across two
// collections.

#include <cstdio>

#include "common/stats.h"
#include "data/quest_generator.h"
#include "sgtree/bulk_load.h"
#include "sgtree/join.h"
#include "sgtree/search.h"

int main() {
  using namespace sgtree;

  QuestOptions qopt;
  qopt.num_transactions = 5000;
  qopt.num_items = 300;
  qopt.num_patterns = 100;
  qopt.seed = 31;
  QuestGenerator gen(qopt);
  const Dataset store_a = gen.Generate();

  SgTreeOptions topt;
  topt.num_bits = qopt.num_items;
  auto tree_a = BulkLoad(store_a, topt);  // Gray-code bulk load (Section 6).
  std::printf("Bulk-loaded %zu transactions (height %u, %llu nodes)\n\n",
              tree_a->size(), tree_a->height(),
              static_cast<unsigned long long>(tree_a->node_count()));

  // 1. Containment: which transactions contain a given item combination?
  const auto& probe = store_a.transactions[42];
  std::vector<ItemId> pair_probe(probe.items.begin(),
                                 probe.items.begin() + 2);
  const Signature probe_sig =
      Signature::FromItems(pair_probe, qopt.num_items);
  QueryStats stats;
  const auto holders =
      ContainmentSearch(*tree_a, probe_sig, tree_a->OwnPoolContext(&stats));
  std::printf("Transactions containing items {%u, %u}: %zu "
              "(visited %llu nodes of %llu)\n\n",
              pair_probe[0], pair_probe[1], holders.size(),
              static_cast<unsigned long long>(stats.nodes_accessed),
              static_cast<unsigned long long>(tree_a->node_count()));

  // 2. Near-duplicate detection: self-join within distance 1.
  QueryStats join_stats;
  const auto dupes = SimilarityJoin(*tree_a, *tree_a, 1.0, &join_stats);
  size_t near_duplicates = 0;
  for (const JoinPair& p : dupes) {
    if (p.tid_a < p.tid_b) ++near_duplicates;  // Each unordered pair once.
  }
  std::printf("Near-duplicate pairs (distance <= 1): %zu "
              "(compared %llu of %llu candidate pairs)\n\n",
              near_duplicates,
              static_cast<unsigned long long>(
                  join_stats.transactions_compared),
              static_cast<unsigned long long>(tree_a->size() *
                                              tree_a->size()));

  // 3. Closest pairs across two stores' transaction logs.
  QuestOptions qopt_b = qopt;
  qopt_b.seed = 32;
  qopt_b.num_transactions = 4000;
  QuestGenerator gen_b(qopt_b);
  const Dataset store_b = gen_b.Generate();
  auto tree_b = BulkLoad(store_b, topt);
  const auto closest = ClosestPairs(*tree_a, *tree_b, 5);
  std::printf("5 closest (store A, store B) transaction pairs:\n");
  for (const JoinPair& p : closest) {
    std::printf("  A#%llu <-> B#%llu at distance %.0f\n",
                static_cast<unsigned long long>(p.tid_a),
                static_cast<unsigned long long>(p.tid_b), p.distance);
  }
  return 0;
}
