// Quickstart: build an SG-tree over a handful of market-basket
// transactions and run the three similarity queries.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "sgtree/sg_tree.h"

int main() {
  using namespace sgtree;

  // A dictionary of 8 items: 0=bread 1=milk 2=eggs 3=butter 4=beer
  // 5=diapers 6=coffee 7=tea.
  const char* names[] = {"bread",  "milk",    "eggs",   "butter",
                         "beer",   "diapers", "coffee", "tea"};
  SgTreeOptions options;
  options.num_bits = 8;      // Signature width = dictionary size.
  options.max_entries = 4;   // Tiny nodes so the example builds a real tree.
  SgTree tree(options);

  const std::vector<Transaction> baskets = {
      {1, {0, 1, 2}},     // bread, milk, eggs
      {2, {0, 1, 3}},     // bread, milk, butter
      {3, {4, 5}},        // beer, diapers
      {4, {4, 5, 0}},     // beer, diapers, bread
      {5, {6, 7}},        // coffee, tea
      {6, {6, 0, 1}},     // coffee, bread, milk
      {7, {0, 1, 2, 3}},  // bread, milk, eggs, butter
      {8, {4, 6}},        // beer, coffee
  };
  for (const Transaction& basket : baskets) {
    tree.Insert(basket);
  }
  std::printf("Indexed %zu baskets in a tree of height %u (%llu nodes)\n\n",
              tree.size(), tree.height(),
              static_cast<unsigned long long>(tree.node_count()));

  // A new customer bought bread, milk and coffee. Who shops most alike?
  const Signature query =
      Signature::FromItems(std::vector<uint32_t>{0, 1, 6}, 8);

  // Every query goes through the unified API: build a QueryRequest, pick
  // a backend, call Execute(). The same request shapes run unchanged
  // against the SG-table, the inverted file, or a sharded index.
  const SgTreeBackend backend(tree);

  QueryRequest nn_request;
  nn_request.type = QueryType::kKnn;
  nn_request.query = query;
  const QueryResult nn = Execute(backend, nn_request, &tree.buffer_pool());
  std::printf("Nearest basket to {bread, milk, coffee}: basket %llu "
              "(Hamming distance %.0f)\n",
              static_cast<unsigned long long>(nn.neighbors[0].tid),
              nn.neighbors[0].distance);

  std::printf("\nTop-3 most similar baskets:\n");
  QueryRequest knn_request = nn_request;
  knn_request.k = 3;
  for (const Neighbor& n :
       Execute(backend, knn_request, &tree.buffer_pool()).neighbors) {
    std::printf("  basket %llu at distance %.0f\n",
                static_cast<unsigned long long>(n.tid), n.distance);
  }

  std::printf("\nBaskets within distance 2:\n");
  QueryRequest range_request;
  range_request.type = QueryType::kRange;
  range_request.query = query;
  range_request.epsilon = 2.0;
  for (const Neighbor& n :
       Execute(backend, range_request, &tree.buffer_pool()).neighbors) {
    std::printf("  basket %llu at distance %.0f\n",
                static_cast<unsigned long long>(n.tid), n.distance);
  }

  // Containment: who bought BOTH beer and diapers?
  const Signature beer_diapers =
      Signature::FromItems(std::vector<uint32_t>{4, 5}, 8);
  std::printf("\nBaskets containing {%s, %s}:", names[4], names[5]);
  QueryRequest contain_request;
  contain_request.type = QueryType::kContainment;
  contain_request.query = beer_diapers;
  for (uint64_t tid :
       Execute(backend, contain_request, &tree.buffer_pool()).ids) {
    std::printf(" %llu", static_cast<unsigned long long>(tid));
  }
  std::printf("\n");
  return 0;
}
