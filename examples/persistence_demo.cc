// Index persistence: build an SG-tree, save it to disk with sparse-
// signature compression (Section 3.2), load it back, and keep updating the
// loaded index — the workflow of a long-lived dynamic collection.

#include <cstdio>
#include <string>

#include "common/stats.h"
#include "data/quest_generator.h"
#include "sgtree/persistence.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"

int main() {
  using namespace sgtree;

  QuestOptions qopt;
  qopt.num_transactions = 10'000;
  qopt.num_items = 600;
  qopt.num_patterns = 200;
  qopt.seed = 55;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();

  SgTreeOptions topt;
  topt.num_bits = qopt.num_items;
  topt.compress = true;
  SgTree tree(topt);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);

  const std::string path = "/tmp/sgtree_demo.idx";
  Timer save_timer;
  if (!SaveTree(tree, path)) {
    std::printf("failed to save %s\n", path.c_str());
    return 1;
  }
  std::printf("Saved %zu transactions / %llu nodes to %s in %.0f ms\n",
              tree.size(), static_cast<unsigned long long>(tree.node_count()),
              path.c_str(), save_timer.ElapsedMs());

  Timer load_timer;
  auto loaded = LoadTree(path, topt);
  if (loaded == nullptr) {
    std::printf("failed to load %s\n", path.c_str());
    return 1;
  }
  std::printf("Loaded in %.0f ms; invariants %s\n", load_timer.ElapsedMs(),
              CheckTree(*loaded).ok ? "OK" : "BROKEN");

  // The loaded index answers queries...
  const auto queries = gen.GenerateQueries(3);
  for (const Transaction& q : queries) {
    const Signature sig = Signature::FromItems(q.items, qopt.num_items);
    const Neighbor nn = DfsNearest(*loaded, sig, loaded->OwnPoolContext());
    std::printf("  NN of query: transaction %llu at distance %.0f\n",
                static_cast<unsigned long long>(nn.tid), nn.distance);
  }

  // ...and keeps accepting updates.
  Transaction fresh;
  fresh.tid = 999'999;
  fresh.items = queries[0].items;
  loaded->Insert(fresh);
  const Signature sig =
      Signature::FromItems(queries[0].items, qopt.num_items);
  const Neighbor nn = DfsNearest(*loaded, sig, loaded->OwnPoolContext());
  std::printf("After inserting the query itself: NN is %llu at distance "
              "%.0f (expected 999999 at 0)\n",
              static_cast<unsigned long long>(nn.tid), nn.distance);
  std::remove(path.c_str());
  return 0;
}
