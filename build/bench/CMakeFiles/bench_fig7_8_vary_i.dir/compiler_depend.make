# Empty compiler generated dependencies file for bench_fig7_8_vary_i.
# This may be replaced when dependencies are built.
