file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_8_vary_i.dir/bench_fig7_8_vary_i.cc.o"
  "CMakeFiles/bench_fig7_8_vary_i.dir/bench_fig7_8_vary_i.cc.o.d"
  "bench_fig7_8_vary_i"
  "bench_fig7_8_vary_i.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_8_vary_i.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
