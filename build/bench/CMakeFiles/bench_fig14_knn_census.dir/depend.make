# Empty dependencies file for bench_fig14_knn_census.
# This may be replaced when dependencies are built.
