file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_knn_census.dir/bench_fig14_knn_census.cc.o"
  "CMakeFiles/bench_fig14_knn_census.dir/bench_fig14_knn_census.cc.o.d"
  "bench_fig14_knn_census"
  "bench_fig14_knn_census.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_knn_census.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
