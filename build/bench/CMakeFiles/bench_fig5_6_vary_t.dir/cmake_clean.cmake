file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_6_vary_t.dir/bench_fig5_6_vary_t.cc.o"
  "CMakeFiles/bench_fig5_6_vary_t.dir/bench_fig5_6_vary_t.cc.o.d"
  "bench_fig5_6_vary_t"
  "bench_fig5_6_vary_t.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_6_vary_t.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
