# Empty dependencies file for bench_fig5_6_vary_t.
# This may be replaced when dependencies are built.
