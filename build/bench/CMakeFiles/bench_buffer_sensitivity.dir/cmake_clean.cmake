file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_sensitivity.dir/bench_buffer_sensitivity.cc.o"
  "CMakeFiles/bench_buffer_sensitivity.dir/bench_buffer_sensitivity.cc.o.d"
  "bench_buffer_sensitivity"
  "bench_buffer_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
