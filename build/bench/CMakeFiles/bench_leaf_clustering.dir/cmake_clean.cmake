file(REMOVE_RECURSE
  "CMakeFiles/bench_leaf_clustering.dir/bench_leaf_clustering.cc.o"
  "CMakeFiles/bench_leaf_clustering.dir/bench_leaf_clustering.cc.o.d"
  "bench_leaf_clustering"
  "bench_leaf_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leaf_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
