file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_vary_d.dir/bench_fig11_vary_d.cc.o"
  "CMakeFiles/bench_fig11_vary_d.dir/bench_fig11_vary_d.cc.o.d"
  "bench_fig11_vary_d"
  "bench_fig11_vary_d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_vary_d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
