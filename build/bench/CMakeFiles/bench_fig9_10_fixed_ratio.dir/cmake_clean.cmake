file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_10_fixed_ratio.dir/bench_fig9_10_fixed_ratio.cc.o"
  "CMakeFiles/bench_fig9_10_fixed_ratio.dir/bench_fig9_10_fixed_ratio.cc.o.d"
  "bench_fig9_10_fixed_ratio"
  "bench_fig9_10_fixed_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_10_fixed_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
