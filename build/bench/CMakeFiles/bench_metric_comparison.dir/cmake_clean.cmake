file(REMOVE_RECURSE
  "CMakeFiles/bench_metric_comparison.dir/bench_metric_comparison.cc.o"
  "CMakeFiles/bench_metric_comparison.dir/bench_metric_comparison.cc.o.d"
  "bench_metric_comparison"
  "bench_metric_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_metric_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
