# Empty compiler generated dependencies file for bench_metric_comparison.
# This may be replaced when dependencies are built.
