# Empty compiler generated dependencies file for bench_join_queries.
# This may be replaced when dependencies are built.
