file(REMOVE_RECURSE
  "CMakeFiles/bench_join_queries.dir/bench_join_queries.cc.o"
  "CMakeFiles/bench_join_queries.dir/bench_join_queries.cc.o.d"
  "bench_join_queries"
  "bench_join_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_join_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
