# Empty compiler generated dependencies file for bench_fig13_knn_synthetic.
# This may be replaced when dependencies are built.
