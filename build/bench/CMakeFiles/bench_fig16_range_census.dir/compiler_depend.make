# Empty compiler generated dependencies file for bench_fig16_range_census.
# This may be replaced when dependencies are built.
