file(REMOVE_RECURSE
  "CMakeFiles/bench_containment_methods.dir/bench_containment_methods.cc.o"
  "CMakeFiles/bench_containment_methods.dir/bench_containment_methods.cc.o.d"
  "bench_containment_methods"
  "bench_containment_methods.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_containment_methods.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
