# Empty compiler generated dependencies file for bench_containment_methods.
# This may be replaced when dependencies are built.
