# Empty compiler generated dependencies file for bench_ablation_bulk_loaders.
# This may be replaced when dependencies are built.
