file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_bulk_loaders.dir/bench_ablation_bulk_loaders.cc.o"
  "CMakeFiles/bench_ablation_bulk_loaders.dir/bench_ablation_bulk_loaders.cc.o.d"
  "bench_ablation_bulk_loaders"
  "bench_ablation_bulk_loaders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_bulk_loaders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
