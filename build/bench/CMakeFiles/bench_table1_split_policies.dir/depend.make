# Empty dependencies file for bench_table1_split_policies.
# This may be replaced when dependencies are built.
