file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_split_policies.dir/bench_table1_split_policies.cc.o"
  "CMakeFiles/bench_table1_split_policies.dir/bench_table1_split_policies.cc.o.d"
  "bench_table1_split_policies"
  "bench_table1_split_policies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_split_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
