# Empty dependencies file for bench_sgtable_sensitivity.
# This may be replaced when dependencies are built.
