file(REMOVE_RECURSE
  "CMakeFiles/bench_sgtable_sensitivity.dir/bench_sgtable_sensitivity.cc.o"
  "CMakeFiles/bench_sgtable_sensitivity.dir/bench_sgtable_sensitivity.cc.o.d"
  "bench_sgtable_sensitivity"
  "bench_sgtable_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sgtable_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
