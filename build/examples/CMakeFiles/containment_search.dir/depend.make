# Empty dependencies file for containment_search.
# This may be replaced when dependencies are built.
