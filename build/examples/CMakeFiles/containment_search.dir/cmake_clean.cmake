file(REMOVE_RECURSE
  "CMakeFiles/containment_search.dir/containment_search.cc.o"
  "CMakeFiles/containment_search.dir/containment_search.cc.o.d"
  "containment_search"
  "containment_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containment_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
