# Empty compiler generated dependencies file for market_basket_recommender.
# This may be replaced when dependencies are built.
