file(REMOVE_RECURSE
  "CMakeFiles/market_basket_recommender.dir/market_basket_recommender.cc.o"
  "CMakeFiles/market_basket_recommender.dir/market_basket_recommender.cc.o.d"
  "market_basket_recommender"
  "market_basket_recommender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_basket_recommender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
