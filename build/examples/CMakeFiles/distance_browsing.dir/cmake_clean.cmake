file(REMOVE_RECURSE
  "CMakeFiles/distance_browsing.dir/distance_browsing.cc.o"
  "CMakeFiles/distance_browsing.dir/distance_browsing.cc.o.d"
  "distance_browsing"
  "distance_browsing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_browsing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
