# Empty compiler generated dependencies file for distance_browsing.
# This may be replaced when dependencies are built.
