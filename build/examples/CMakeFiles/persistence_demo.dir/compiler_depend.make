# Empty compiler generated dependencies file for persistence_demo.
# This may be replaced when dependencies are built.
