# Empty dependencies file for sg_inverted.
# This may be replaced when dependencies are built.
