file(REMOVE_RECURSE
  "libsg_inverted.a"
)
