file(REMOVE_RECURSE
  "CMakeFiles/sg_inverted.dir/inverted/inverted_index.cc.o"
  "CMakeFiles/sg_inverted.dir/inverted/inverted_index.cc.o.d"
  "libsg_inverted.a"
  "libsg_inverted.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_inverted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
