# Empty compiler generated dependencies file for sg_baseline.
# This may be replaced when dependencies are built.
