file(REMOVE_RECURSE
  "libsg_baseline.a"
)
