file(REMOVE_RECURSE
  "CMakeFiles/sg_baseline.dir/baseline/linear_scan.cc.o"
  "CMakeFiles/sg_baseline.dir/baseline/linear_scan.cc.o.d"
  "libsg_baseline.a"
  "libsg_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
