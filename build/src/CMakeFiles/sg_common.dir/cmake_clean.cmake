file(REMOVE_RECURSE
  "CMakeFiles/sg_common.dir/common/distance.cc.o"
  "CMakeFiles/sg_common.dir/common/distance.cc.o.d"
  "CMakeFiles/sg_common.dir/common/gray_code.cc.o"
  "CMakeFiles/sg_common.dir/common/gray_code.cc.o.d"
  "CMakeFiles/sg_common.dir/common/rng.cc.o"
  "CMakeFiles/sg_common.dir/common/rng.cc.o.d"
  "CMakeFiles/sg_common.dir/common/signature.cc.o"
  "CMakeFiles/sg_common.dir/common/signature.cc.o.d"
  "libsg_common.a"
  "libsg_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
