
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgtree/bulk_load.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/bulk_load.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/bulk_load.cc.o.d"
  "/root/repo/src/sgtree/choose_subtree.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/choose_subtree.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/choose_subtree.cc.o.d"
  "/root/repo/src/sgtree/clustering.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/clustering.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/clustering.cc.o.d"
  "/root/repo/src/sgtree/incremental.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/incremental.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/incremental.cc.o.d"
  "/root/repo/src/sgtree/join.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/join.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/join.cc.o.d"
  "/root/repo/src/sgtree/node.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/node.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/node.cc.o.d"
  "/root/repo/src/sgtree/paged_reader.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/paged_reader.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/paged_reader.cc.o.d"
  "/root/repo/src/sgtree/persistence.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/persistence.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/persistence.cc.o.d"
  "/root/repo/src/sgtree/search.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/search.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/search.cc.o.d"
  "/root/repo/src/sgtree/sg_tree.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/sg_tree.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/sg_tree.cc.o.d"
  "/root/repo/src/sgtree/split.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/split.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/split.cc.o.d"
  "/root/repo/src/sgtree/tree_checker.cc" "src/CMakeFiles/sg_sgtree.dir/sgtree/tree_checker.cc.o" "gcc" "src/CMakeFiles/sg_sgtree.dir/sgtree/tree_checker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
