file(REMOVE_RECURSE
  "CMakeFiles/sg_sgtree.dir/sgtree/bulk_load.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/bulk_load.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/choose_subtree.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/choose_subtree.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/clustering.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/clustering.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/incremental.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/incremental.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/join.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/join.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/node.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/node.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/paged_reader.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/paged_reader.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/persistence.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/persistence.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/search.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/search.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/sg_tree.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/sg_tree.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/split.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/split.cc.o.d"
  "CMakeFiles/sg_sgtree.dir/sgtree/tree_checker.cc.o"
  "CMakeFiles/sg_sgtree.dir/sgtree/tree_checker.cc.o.d"
  "libsg_sgtree.a"
  "libsg_sgtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_sgtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
