# Empty dependencies file for sg_sgtree.
# This may be replaced when dependencies are built.
