file(REMOVE_RECURSE
  "libsg_sgtree.a"
)
