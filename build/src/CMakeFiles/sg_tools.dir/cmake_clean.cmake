file(REMOVE_RECURSE
  "CMakeFiles/sg_tools.dir/tools/cli.cc.o"
  "CMakeFiles/sg_tools.dir/tools/cli.cc.o.d"
  "CMakeFiles/sg_tools.dir/tools/command_line.cc.o"
  "CMakeFiles/sg_tools.dir/tools/command_line.cc.o.d"
  "libsg_tools.a"
  "libsg_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
