file(REMOVE_RECURSE
  "libsg_tools.a"
)
