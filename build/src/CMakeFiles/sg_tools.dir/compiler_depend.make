# Empty compiler generated dependencies file for sg_tools.
# This may be replaced when dependencies are built.
