file(REMOVE_RECURSE
  "CMakeFiles/sg_data.dir/data/census_generator.cc.o"
  "CMakeFiles/sg_data.dir/data/census_generator.cc.o.d"
  "CMakeFiles/sg_data.dir/data/dataset_io.cc.o"
  "CMakeFiles/sg_data.dir/data/dataset_io.cc.o.d"
  "CMakeFiles/sg_data.dir/data/dictionary.cc.o"
  "CMakeFiles/sg_data.dir/data/dictionary.cc.o.d"
  "CMakeFiles/sg_data.dir/data/quest_generator.cc.o"
  "CMakeFiles/sg_data.dir/data/quest_generator.cc.o.d"
  "libsg_data.a"
  "libsg_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
