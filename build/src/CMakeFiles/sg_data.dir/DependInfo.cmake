
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/census_generator.cc" "src/CMakeFiles/sg_data.dir/data/census_generator.cc.o" "gcc" "src/CMakeFiles/sg_data.dir/data/census_generator.cc.o.d"
  "/root/repo/src/data/dataset_io.cc" "src/CMakeFiles/sg_data.dir/data/dataset_io.cc.o" "gcc" "src/CMakeFiles/sg_data.dir/data/dataset_io.cc.o.d"
  "/root/repo/src/data/dictionary.cc" "src/CMakeFiles/sg_data.dir/data/dictionary.cc.o" "gcc" "src/CMakeFiles/sg_data.dir/data/dictionary.cc.o.d"
  "/root/repo/src/data/quest_generator.cc" "src/CMakeFiles/sg_data.dir/data/quest_generator.cc.o" "gcc" "src/CMakeFiles/sg_data.dir/data/quest_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
