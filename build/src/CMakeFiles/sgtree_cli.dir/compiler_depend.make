# Empty compiler generated dependencies file for sgtree_cli.
# This may be replaced when dependencies are built.
