file(REMOVE_RECURSE
  "CMakeFiles/sgtree_cli.dir/tools/sgtree_cli_main.cc.o"
  "CMakeFiles/sgtree_cli.dir/tools/sgtree_cli_main.cc.o.d"
  "sgtree_cli"
  "sgtree_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgtree_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
