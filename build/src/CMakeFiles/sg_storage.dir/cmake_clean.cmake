file(REMOVE_RECURSE
  "CMakeFiles/sg_storage.dir/storage/buffer_pool.cc.o"
  "CMakeFiles/sg_storage.dir/storage/buffer_pool.cc.o.d"
  "CMakeFiles/sg_storage.dir/storage/codec.cc.o"
  "CMakeFiles/sg_storage.dir/storage/codec.cc.o.d"
  "CMakeFiles/sg_storage.dir/storage/node_format.cc.o"
  "CMakeFiles/sg_storage.dir/storage/node_format.cc.o.d"
  "CMakeFiles/sg_storage.dir/storage/page_store.cc.o"
  "CMakeFiles/sg_storage.dir/storage/page_store.cc.o.d"
  "libsg_storage.a"
  "libsg_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
