file(REMOVE_RECURSE
  "libsg_storage.a"
)
