# Empty compiler generated dependencies file for sg_storage.
# This may be replaced when dependencies are built.
