file(REMOVE_RECURSE
  "libsg_sgtable.a"
)
