file(REMOVE_RECURSE
  "CMakeFiles/sg_sgtable.dir/sgtable/cooccurrence.cc.o"
  "CMakeFiles/sg_sgtable.dir/sgtable/cooccurrence.cc.o.d"
  "CMakeFiles/sg_sgtable.dir/sgtable/item_clustering.cc.o"
  "CMakeFiles/sg_sgtable.dir/sgtable/item_clustering.cc.o.d"
  "CMakeFiles/sg_sgtable.dir/sgtable/sg_table.cc.o"
  "CMakeFiles/sg_sgtable.dir/sgtable/sg_table.cc.o.d"
  "libsg_sgtable.a"
  "libsg_sgtable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sg_sgtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
