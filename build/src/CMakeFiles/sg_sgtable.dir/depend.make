# Empty dependencies file for sg_sgtable.
# This may be replaced when dependencies are built.
