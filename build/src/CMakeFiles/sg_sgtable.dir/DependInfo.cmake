
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgtable/cooccurrence.cc" "src/CMakeFiles/sg_sgtable.dir/sgtable/cooccurrence.cc.o" "gcc" "src/CMakeFiles/sg_sgtable.dir/sgtable/cooccurrence.cc.o.d"
  "/root/repo/src/sgtable/item_clustering.cc" "src/CMakeFiles/sg_sgtable.dir/sgtable/item_clustering.cc.o" "gcc" "src/CMakeFiles/sg_sgtable.dir/sgtable/item_clustering.cc.o.d"
  "/root/repo/src/sgtable/sg_table.cc" "src/CMakeFiles/sg_sgtable.dir/sgtable/sg_table.cc.o" "gcc" "src/CMakeFiles/sg_sgtable.dir/sgtable/sg_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sg_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sg_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
