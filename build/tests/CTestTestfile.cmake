# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_signature[1]_include.cmake")
include("/root/repo/build/tests/test_distance[1]_include.cmake")
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_storage[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_sgtree_core[1]_include.cmake")
include("/root/repo/build/tests/test_sgtree_search[1]_include.cmake")
include("/root/repo/build/tests/test_sgtree_updates[1]_include.cmake")
include("/root/repo/build/tests/test_sgtree_bulk[1]_include.cmake")
include("/root/repo/build/tests/test_sgtable[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_area_stats[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_inverted[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cross_component[1]_include.cmake")
include("/root/repo/build/tests/test_cli[1]_include.cmake")
