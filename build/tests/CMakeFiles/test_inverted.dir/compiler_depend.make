# Empty compiler generated dependencies file for test_inverted.
# This may be replaced when dependencies are built.
