file(REMOVE_RECURSE
  "CMakeFiles/test_inverted.dir/test_inverted.cc.o"
  "CMakeFiles/test_inverted.dir/test_inverted.cc.o.d"
  "test_inverted"
  "test_inverted.pdb"
  "test_inverted[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inverted.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
