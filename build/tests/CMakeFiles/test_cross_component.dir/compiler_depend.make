# Empty compiler generated dependencies file for test_cross_component.
# This may be replaced when dependencies are built.
