file(REMOVE_RECURSE
  "CMakeFiles/test_cross_component.dir/test_cross_component.cc.o"
  "CMakeFiles/test_cross_component.dir/test_cross_component.cc.o.d"
  "test_cross_component"
  "test_cross_component.pdb"
  "test_cross_component[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_component.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
