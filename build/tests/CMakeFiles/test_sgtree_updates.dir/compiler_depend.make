# Empty compiler generated dependencies file for test_sgtree_updates.
# This may be replaced when dependencies are built.
