file(REMOVE_RECURSE
  "CMakeFiles/test_sgtree_updates.dir/test_sgtree_updates.cc.o"
  "CMakeFiles/test_sgtree_updates.dir/test_sgtree_updates.cc.o.d"
  "test_sgtree_updates"
  "test_sgtree_updates.pdb"
  "test_sgtree_updates[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgtree_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
