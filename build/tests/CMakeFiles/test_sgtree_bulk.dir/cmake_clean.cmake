file(REMOVE_RECURSE
  "CMakeFiles/test_sgtree_bulk.dir/test_sgtree_bulk.cc.o"
  "CMakeFiles/test_sgtree_bulk.dir/test_sgtree_bulk.cc.o.d"
  "test_sgtree_bulk"
  "test_sgtree_bulk.pdb"
  "test_sgtree_bulk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgtree_bulk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
