# Empty dependencies file for test_sgtree_bulk.
# This may be replaced when dependencies are built.
