# Empty dependencies file for test_sgtable.
# This may be replaced when dependencies are built.
