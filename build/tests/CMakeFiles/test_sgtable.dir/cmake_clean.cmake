file(REMOVE_RECURSE
  "CMakeFiles/test_sgtable.dir/test_sgtable.cc.o"
  "CMakeFiles/test_sgtable.dir/test_sgtable.cc.o.d"
  "test_sgtable"
  "test_sgtable.pdb"
  "test_sgtable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgtable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
