# Empty dependencies file for test_area_stats.
# This may be replaced when dependencies are built.
