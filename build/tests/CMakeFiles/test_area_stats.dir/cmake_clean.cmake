file(REMOVE_RECURSE
  "CMakeFiles/test_area_stats.dir/test_area_stats.cc.o"
  "CMakeFiles/test_area_stats.dir/test_area_stats.cc.o.d"
  "test_area_stats"
  "test_area_stats.pdb"
  "test_area_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_area_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
