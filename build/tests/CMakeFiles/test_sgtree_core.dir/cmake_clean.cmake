file(REMOVE_RECURSE
  "CMakeFiles/test_sgtree_core.dir/test_sgtree_core.cc.o"
  "CMakeFiles/test_sgtree_core.dir/test_sgtree_core.cc.o.d"
  "test_sgtree_core"
  "test_sgtree_core.pdb"
  "test_sgtree_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgtree_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
