# Empty compiler generated dependencies file for test_sgtree_core.
# This may be replaced when dependencies are built.
