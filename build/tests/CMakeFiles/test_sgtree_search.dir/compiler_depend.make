# Empty compiler generated dependencies file for test_sgtree_search.
# This may be replaced when dependencies are built.
