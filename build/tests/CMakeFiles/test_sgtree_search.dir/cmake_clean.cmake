file(REMOVE_RECURSE
  "CMakeFiles/test_sgtree_search.dir/test_sgtree_search.cc.o"
  "CMakeFiles/test_sgtree_search.dir/test_sgtree_search.cc.o.d"
  "test_sgtree_search"
  "test_sgtree_search.pdb"
  "test_sgtree_search[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sgtree_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
