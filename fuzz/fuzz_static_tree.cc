// Fuzz harness for the static SG-tree image reader (static/).
//
// The static image is opened straight off disk and then traversed with
// zero-copy pointer arithmetic, so its open-time validation is the only
// line between a hostile file and an out-of-bounds read. The harness feeds
// arbitrary bytes to OpenFromBytes in both checksum modes; every rejection
// must carry a reason, and every accepted view must survive all six query
// types — the structural walk (offsets, levels, acyclicity, reachability)
// is what makes that safe even when the body CRC was waived.

#include <cstddef>
#include <cstdint>
#include <string>

#include "common/check.h"
#include "common/signature.h"
#include "exec/query_api.h"
#include "static/static_tree_backend.h"
#include "static/static_tree_view.h"

namespace {

using sgtree::Execute;
using sgtree::QueryRequest;
using sgtree::QueryResult;
using sgtree::QueryType;
using sgtree::Signature;
using sgtree::StaticOpenOptions;
using sgtree::StaticTreeBackend;
using sgtree::StaticTreeView;

void Drive(const uint8_t* data, size_t size, bool verify_checksums) {
  StaticOpenOptions options;  // num_bits 0: adopt whatever the file claims.
  options.verify_checksums = verify_checksums;
  std::string error;
  auto view = StaticTreeView::OpenFromBytes(data, size, options, &error);
  if (view == nullptr) {
    SGTREE_ASSERT_MSG(!error.empty(), "rejection must carry a reason");
    return;
  }
  // An accepted view claims full structural validity: all six query types
  // must run to completion without touching a byte outside the image.
  Signature query(view->num_bits());
  for (uint32_t b = 0; b < view->num_bits(); b += 7) query.Set(b);
  const StaticTreeBackend backend(*view);
  for (int type = 0; type < 6; ++type) {
    QueryRequest request;
    request.type = static_cast<QueryType>(type);
    request.query = query;
    request.k = 3;
    request.epsilon = 8.0;
    const QueryResult result = Execute(backend, request);
    SGTREE_ASSERT_MSG(result.ok(),
                      "validated view rejected a well-formed request");
    SGTREE_ASSERT_MSG(result.neighbors.size() <= view->size(),
                      "more neighbors than indexed transactions");
    SGTREE_ASSERT_MSG(result.ids.size() <= view->size(),
                      "more ids than indexed transactions");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  Drive(data, size, /*verify_checksums=*/true);
  Drive(data, size, /*verify_checksums=*/false);
  return 0;
}
