// Driver used when the toolchain has no libFuzzer (anything but Clang).
// Replays each file named on the command line, or stdin when none is given,
// through the harness entry point. This keeps the harnesses buildable and
// the checked-in seed corpora exercisable as plain ctest regression tests
// everywhere, while Clang CI links the same sources against the real engine.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::vector<uint8_t> ReadAll(std::istream& in) {
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

}  // namespace

int main(int argc, char** argv) {
  int executed = 0;
  if (argc < 2) {
    std::vector<uint8_t> input = ReadAll(std::cin);
    LLVMFuzzerTestOneInput(input.data(), input.size());
    ++executed;
  } else {
    for (int i = 1; i < argc; ++i) {
      std::ifstream file(argv[i], std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n", argv[i]);
        return 1;
      }
      std::vector<uint8_t> input = ReadAll(file);
      LLVMFuzzerTestOneInput(input.data(), input.size());
      ++executed;
    }
  }
  std::fprintf(stderr, "replayed %d input(s) without failure\n", executed);
  return 0;
}
