// Regenerates the checked-in seed corpora under fuzz/corpus/<target>/ using
// the real encoders, so seeds always match the current on-page formats.
// Usage: make_seed_corpus <corpus-root>  (writes corpus-root/<target>/*.bin)
//
// Seeds are deterministic: rerunning after a format change refreshes the
// files in place and the diff shows exactly what the format change did.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/crc32.h"
#include "common/signature.h"
#include "data/dataset_io.h"
#include "durability/byte_io.h"
#include "durability/wal.h"
#include "sgtree/sg_tree.h"
#include "static/static_tree_builder.h"
#include "storage/codec.h"
#include "storage/node_format.h"

namespace {

using sgtree::Dataset;
using sgtree::EncodeNode;
using sgtree::EncodeSignature;
using sgtree::NodeRecord;
using sgtree::Signature;
using sgtree::Transaction;

void WriteFile(const std::filesystem::path& path,
               const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::cerr << "failed to write " << path << "\n";
    std::exit(1);
  }
}

void AppendU16(uint16_t value, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(value & 0xff));
  out->push_back(static_cast<uint8_t>(value >> 8));
}

Signature MakeSignature(uint32_t num_bits, uint32_t stride, uint32_t count) {
  Signature sig(num_bits);
  for (uint32_t i = 0; i < count; ++i) sig.Set((i * stride) % num_bits);
  return sig;
}

// Codec seeds: 2-byte width header followed by one or more encodings.
void EmitCodecSeeds(const std::filesystem::path& dir) {
  struct Case {
    const char* name;
    uint16_t header_bits;
    Signature sig;
  };
  const uint32_t kBits = 256;  // (header % 2048) + 1 with header 255.
  const std::vector<Case> cases = {
      {"empty.bin", 255, Signature(kBits)},
      {"sparse.bin", 255, MakeSignature(kBits, 37, 10)},
      {"dense.bin", 255, MakeSignature(kBits, 3, 200)},
      {"narrow.bin", 63, MakeSignature(64, 5, 8)},
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> bytes;
    AppendU16(c.header_bits, &bytes);
    EncodeSignature(c.sig, &bytes);
    WriteFile(dir / c.name, bytes);
  }
  // A back-to-back stream of three encodings, exercising the decode loop.
  std::vector<uint8_t> stream;
  AppendU16(255, &stream);
  EncodeSignature(MakeSignature(kBits, 11, 4), &stream);
  EncodeSignature(MakeSignature(kBits, 7, 120), &stream);
  EncodeSignature(Signature(kBits), &stream);
  WriteFile(dir / "stream.bin", stream);
}

// Node seeds: 2-byte width header, 1 compression byte, then a node image.
void EmitNodeSeeds(const std::filesystem::path& dir) {
  const uint32_t kBits = 256;
  for (const bool compress : {false, true}) {
    NodeRecord leaf;
    leaf.level = 0;
    for (uint64_t tid = 0; tid < 5; ++tid) {
      leaf.entries.emplace_back(
          tid + 100, MakeSignature(kBits, static_cast<uint32_t>(3 * tid + 5),
                                   static_cast<uint32_t>(4 + tid)));
    }
    NodeRecord directory;
    directory.level = 2;
    directory.entries.emplace_back(7, MakeSignature(kBits, 3, 180));
    directory.entries.emplace_back(9, MakeSignature(kBits, 13, 12));

    const std::string suffix = compress ? "_sparse.bin" : "_dense.bin";
    for (const auto& [name, record] :
         {std::pair<std::string, const NodeRecord&>{"leaf", leaf},
          {"directory", directory}}) {
      std::vector<uint8_t> bytes;
      AppendU16(255, &bytes);
      bytes.push_back(compress ? 1 : 0);
      EncodeNode(record, compress, &bytes);
      WriteFile(dir / (name + suffix), bytes);
    }
  }
  // An empty node image (level 1, zero entries).
  std::vector<uint8_t> empty;
  AppendU16(255, &empty);
  empty.push_back(0);
  NodeRecord none;
  none.level = 1;
  EncodeNode(none, false, &empty);
  WriteFile(dir / "empty_dense.bin", empty);
}

// Dataset seeds are the text format itself.
void EmitDatasetSeeds(const std::filesystem::path& dir) {
  Dataset set_data;
  set_data.num_items = 1000;
  set_data.fixed_dimensionality = 0;
  for (uint64_t tid = 0; tid < 6; ++tid) {
    Transaction txn;
    txn.tid = tid;
    for (uint32_t i = 0; i <= tid; ++i) {
      txn.items.push_back(static_cast<uint32_t>(17 * (i + 1) + tid));
    }
    set_data.transactions.push_back(std::move(txn));
  }
  const std::string set_text = sgtree::SerializeDataset(set_data);
  WriteFile(dir / "sets.txt",
            std::vector<uint8_t>(set_text.begin(), set_text.end()));

  Dataset categorical;
  categorical.num_items = 64;
  categorical.fixed_dimensionality = 4;
  for (uint64_t tid = 0; tid < 3; ++tid) {
    Transaction txn;
    txn.tid = 1000 + tid;
    for (uint32_t attr = 0; attr < 4; ++attr) {
      txn.items.push_back(attr * 16 + static_cast<uint32_t>(tid));
    }
    categorical.transactions.push_back(std::move(txn));
  }
  const std::string cat_text = sgtree::SerializeDataset(categorical);
  WriteFile(dir / "categorical.txt",
            std::vector<uint8_t>(cat_text.begin(), cat_text.end()));

  const std::string empty_text = "0 0 0\n";
  WriteFile(dir / "empty.txt",
            std::vector<uint8_t>(empty_text.begin(), empty_text.end()));
}

// WAL seeds: byte 0 is the harness mode byte, the rest a framed record
// stream exactly as Wal::Append lays it out.
void EmitWalSeeds(const std::filesystem::path& dir) {
  auto frame = [](const sgtree::WalRecord& record,
                  std::vector<uint8_t>* out) {
    std::vector<uint8_t> payload;
    sgtree::EncodeWalRecord(record, &payload);
    sgtree::AppendU32(static_cast<uint32_t>(payload.size()), out);
    sgtree::AppendU32(sgtree::Crc32c(payload), out);
    out->insert(out->end(), payload.begin(), payload.end());
  };

  sgtree::WalRecord checkpoint;
  checkpoint.type = sgtree::WalRecordType::kCheckpoint;
  checkpoint.checkpoint_seq = 3;
  sgtree::WalRecord alloc;
  alloc.type = sgtree::WalRecordType::kAlloc;
  alloc.page = 7;
  sgtree::WalRecord image;
  image.type = sgtree::WalRecordType::kPageImage;
  image.page = 7;
  for (uint32_t i = 0; i < 96; ++i) {
    image.image.push_back(static_cast<uint8_t>(i * 5));
  }
  sgtree::WalRecord free_rec;
  free_rec.type = sgtree::WalRecordType::kFree;
  free_rec.page = 2;
  sgtree::WalRecord marker;
  marker.type = sgtree::WalRecordType::kTreeMeta;
  marker.meta.op_seq = 12;
  marker.meta.root = 7;
  marker.meta.height = 1;
  marker.meta.size = 40;
  marker.meta.area_lo = 2;
  marker.meta.area_hi = 55;
  marker.meta.node_count = 3;

  std::vector<uint8_t> op = {0};
  frame(checkpoint, &op);
  frame(alloc, &op);
  frame(image, &op);
  frame(free_rec, &op);
  frame(marker, &op);
  WriteFile(dir / "committed_op.bin", op);

  // The same stream torn mid-record: the scanner's bread and butter.
  std::vector<uint8_t> torn(op.begin(), op.begin() + ptrdiff_t(op.size() - 9));
  WriteFile(dir / "torn_tail.bin", torn);

  std::vector<uint8_t> single = {0};
  frame(checkpoint, &single);
  WriteFile(dir / "checkpoint_only.bin", single);
}

// Static-image seeds: a real BFS-serialized image built by the production
// builder, the empty-tree image, and two canonical rejects (truncation and
// foreign magic) so the fuzzer starts with both sides of the gate.
void EmitStaticTreeSeeds(const std::filesystem::path& dir) {
  sgtree::SgTreeOptions options;
  options.num_bits = 96;
  options.max_entries = 6;
  sgtree::SgTree tree(options);
  for (uint64_t tid = 0; tid < 40; ++tid) {
    Transaction txn;
    txn.tid = tid;
    for (uint32_t i = 0; i < 3 + tid % 4; ++i) {
      const auto item = static_cast<uint32_t>((tid * 11 + i * 17) % 96);
      if (std::find(txn.items.begin(), txn.items.end(), item) ==
          txn.items.end()) {
        txn.items.push_back(item);
      }
    }
    std::sort(txn.items.begin(), txn.items.end());
    tree.Insert(txn);
  }
  std::vector<uint8_t> image;
  std::string error;
  if (!sgtree::BuildStaticImage(tree, &image, &error)) {
    std::cerr << "static seed build failed: " << error << "\n";
    std::exit(1);
  }
  WriteFile(dir / "valid.bin", image);

  const sgtree::SgTree empty(options);
  std::vector<uint8_t> empty_image;
  if (!sgtree::BuildStaticImage(empty, &empty_image, &error)) {
    std::cerr << "static empty seed build failed: " << error << "\n";
    std::exit(1);
  }
  WriteFile(dir / "empty.bin", empty_image);

  WriteFile(dir / "truncated.bin",
            std::vector<uint8_t>(image.begin(), image.begin() + 40));
  std::vector<uint8_t> bad_magic = image;
  std::memcpy(bad_magic.data(), "NOTSGSTA", 8);
  WriteFile(dir / "bad_magic.bin", bad_magic);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::cerr << "usage: make_seed_corpus <corpus-root>\n";
    return 1;
  }
  const std::filesystem::path root = argv[1];
  for (const char* target :
       {"codec", "node_format", "dataset_io", "wal", "static_tree"}) {
    std::filesystem::create_directories(root / target);
  }
  EmitCodecSeeds(root / "codec");
  EmitNodeSeeds(root / "node_format");
  EmitDatasetSeeds(root / "dataset_io");
  EmitWalSeeds(root / "wal");
  EmitStaticTreeSeeds(root / "static_tree");
  std::cout << "seed corpora written under " << root << "\n";
  return 0;
}
