// Differential fuzz harness for the set-containment join backends.
//
// The input bytes are decoded as two small set collections (R and S):
// 0xFE switches from the R side to the S side, 0xFF terminates the
// current set, and any other byte contributes item (byte mod 64) to the
// current set. Row and set sizes are capped so a hostile input cannot
// drive quadratic blowup, but empty sets, duplicate sets, and duplicate
// items — the adversarial cases for prefix/trie joins — all pass through.
//
// PRETTI and FVT must agree exactly (pairs, distances, canonical order)
// with a brute-force containment oracle on every accepted input.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "exec/join_api.h"
#include "join/fvt_join.h"
#include "join/pretti_join.h"
#include "join/set_collection.h"

namespace {

constexpr uint32_t kItems = 64;
constexpr size_t kMaxRowsPerSide = 48;
constexpr size_t kMaxItemsPerSet = 12;

std::vector<sgtree::JoinPair> Oracle(const sgtree::Dataset& r,
                                     const sgtree::Dataset& s) {
  auto normalized = [](const sgtree::Transaction& txn) {
    std::vector<sgtree::ItemId> items = txn.items;
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    return items;
  };
  std::vector<sgtree::JoinPair> pairs;
  for (const sgtree::Transaction& tr : r.transactions) {
    const std::vector<sgtree::ItemId> ri = normalized(tr);
    for (const sgtree::Transaction& ts : s.transactions) {
      const std::vector<sgtree::ItemId> si = normalized(ts);
      if (std::includes(si.begin(), si.end(), ri.begin(), ri.end())) {
        pairs.push_back(
            {tr.tid, ts.tid, static_cast<double>(si.size() - ri.size())});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), sgtree::CanonicalPairLess);
  return pairs;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  sgtree::Dataset sides[2];
  for (sgtree::Dataset& side : sides) side.num_items = kItems;
  size_t which = 0;
  sgtree::Transaction current;
  uint64_t next_tid[2] = {0, 1'000'000};
  auto flush = [&]() {
    if (sides[which].transactions.size() >= kMaxRowsPerSide) return;
    current.tid = next_tid[which]++;
    sides[which].transactions.push_back(current);
    current = {};
  };
  for (size_t i = 0; i < size; ++i) {
    const uint8_t byte = data[i];
    if (byte == 0xFE) {
      flush();
      which = 1;
    } else if (byte == 0xFF) {
      flush();
    } else if (current.items.size() < kMaxItemsPerSet) {
      current.items.push_back(static_cast<sgtree::ItemId>(byte % kItems));
    }
  }
  flush();

  const sgtree::SetCollection r =
      sgtree::SetCollection::FromDataset(sides[0]);
  const sgtree::SetCollection s =
      sgtree::SetCollection::FromDataset(sides[1]);
  const sgtree::InvertedPostings postings(s);
  const sgtree::PrettiJoinBackend pretti(r, postings);
  const sgtree::FvtTrie trie(s);
  const sgtree::FvtJoinBackend fvt(r, trie);

  const std::vector<sgtree::JoinPair> expected =
      Oracle(sides[0], sides[1]);
  const sgtree::JoinRequest request{sgtree::JoinType::kContainment,
                                    sgtree::Metric::kHamming, 0.0};

  std::vector<sgtree::JoinPair> pretti_pairs;
  const sgtree::JoinResult pretti_result =
      CollectJoin(pretti, request, &pretti_pairs);
  SGTREE_ASSERT_MSG(pretti_result.ok(), "pretti refused a containment join");
  SGTREE_ASSERT_MSG(pretti_pairs == expected,
                    "pretti join diverged from the brute-force oracle");

  std::vector<sgtree::JoinPair> fvt_pairs;
  const sgtree::JoinResult fvt_result = CollectJoin(fvt, request, &fvt_pairs);
  SGTREE_ASSERT_MSG(fvt_result.ok(), "fvt refused a containment join");
  SGTREE_ASSERT_MSG(fvt_pairs == expected,
                    "fvt join diverged from the brute-force oracle");
  return 0;
}
