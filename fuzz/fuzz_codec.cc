// Fuzz harness for the signature codec (storage/codec.h).
//
// Input layout: bytes [0,2) pick the signature width; the rest is used twice,
// once as an arbitrary encoded stream fed to DecodeSignature (which must
// reject garbage without crashing or over-reading) and once as a raw bitmap
// turned into a Signature and pushed through an encode/decode round trip
// (decode(encode(s)) == s, with the advertised EncodedSize).

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/signature.h"
#include "storage/codec.h"

namespace {

using sgtree::DecodeSignature;
using sgtree::EncodeSignature;
using sgtree::EncodedSize;
using sgtree::Signature;

void DecodeArbitrary(const std::vector<uint8_t>& payload, uint32_t num_bits) {
  size_t offset = 0;
  Signature sig;
  // Decode back-to-back signatures until the stream is rejected or drained;
  // every accepted signature must survive a canonical round trip.
  while (offset < payload.size() &&
         DecodeSignature(payload, &offset, num_bits, &sig)) {
    SGTREE_ASSERT_MSG(offset <= payload.size(), "decoder overran the buffer");
    std::vector<uint8_t> reencoded;
    EncodeSignature(sig, &reencoded);
    SGTREE_ASSERT_MSG(reencoded.size() == EncodedSize(sig),
                      "EncodedSize disagrees with EncodeSignature");
    size_t check_offset = 0;
    Signature again;
    SGTREE_ASSERT_MSG(
        DecodeSignature(reencoded, &check_offset, num_bits, &again),
        "re-encoding of an accepted signature failed to decode");
    SGTREE_ASSERT_MSG(again == sig, "codec round trip changed the signature");
  }
}

void RoundTripFromBitmap(const std::vector<uint8_t>& payload,
                         uint32_t num_bits) {
  Signature sig(num_bits);
  for (uint32_t pos = 0; pos < num_bits && pos / 8 < payload.size(); ++pos) {
    if ((payload[pos / 8] >> (pos % 8)) & 1) sig.Set(pos);
  }
  std::vector<uint8_t> encoded;
  EncodeSignature(sig, &encoded);
  SGTREE_ASSERT_MSG(encoded.size() == EncodedSize(sig),
                    "EncodedSize disagrees with EncodeSignature");
  size_t offset = 0;
  Signature decoded;
  SGTREE_ASSERT_MSG(DecodeSignature(encoded, &offset, num_bits, &decoded),
                    "encoding of a live signature failed to decode");
  SGTREE_ASSERT_MSG(offset == encoded.size(),
                    "decoder consumed a different size than it encoded");
  SGTREE_ASSERT_MSG(decoded == sig, "codec round trip changed the signature");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 2) return 0;
  uint16_t raw_bits = 0;
  std::memcpy(&raw_bits, data, sizeof(raw_bits));
  const uint32_t num_bits = static_cast<uint32_t>(raw_bits % 2048) + 1;
  const std::vector<uint8_t> payload(data + 2, data + size);
  DecodeArbitrary(payload, num_bits);
  RoundTripFromBitmap(payload, num_bits);
  return 0;
}
