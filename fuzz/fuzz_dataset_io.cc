// Fuzz harness for the dataset interchange parser (data/dataset_io.h).
//
// ParseDataset must reject arbitrary text without crashing and without
// letting a hostile header drive giant allocations. Any input it accepts
// must reach a serialization fixpoint: serialize(parse(x)) re-parses to the
// identical canonical text.

#include <cstdint>
#include <string>

#include "common/check.h"
#include "data/dataset_io.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  sgtree::Dataset parsed;
  if (!sgtree::ParseDataset(text, &parsed)) return 0;
  SGTREE_ASSERT_MSG(parsed.num_items <= sgtree::kMaxDatasetItems,
                    "parser accepted an out-of-cap dictionary size");
  const std::string canonical = sgtree::SerializeDataset(parsed);
  sgtree::Dataset reparsed;
  SGTREE_ASSERT_MSG(sgtree::ParseDataset(canonical, &reparsed),
                    "serialization of an accepted dataset failed to parse");
  SGTREE_ASSERT_MSG(sgtree::SerializeDataset(reparsed) == canonical,
                    "dataset serialization is not a fixpoint");
  return 0;
}
