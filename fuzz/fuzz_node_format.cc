// Fuzz harness for the on-page node layout (storage/node_format.h).
//
// Input layout: bytes [0,2) pick the signature width, byte 2 the compression
// mode. The remainder is (a) fed raw to DecodeNode, which must reject
// malformed images without crashing, over-reading, or allocation-bombing on
// a hostile entry count, and (b) deterministically shaped into a NodeRecord
// that is round-tripped through EncodeNode/DecodeNode in both compression
// modes with the advertised EncodedNodeSize.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/signature.h"
#include "storage/codec.h"
#include "storage/node_format.h"

namespace {

using sgtree::DecodeNode;
using sgtree::EncodeNode;
using sgtree::EncodedNodeSize;
using sgtree::NodeRecord;
using sgtree::Signature;

bool SameRecord(const NodeRecord& a, const NodeRecord& b) {
  if (a.level != b.level || a.entries.size() != b.entries.size()) return false;
  for (size_t i = 0; i < a.entries.size(); ++i) {
    if (a.entries[i].first != b.entries[i].first ||
        !(a.entries[i].second == b.entries[i].second)) {
      return false;
    }
  }
  return true;
}

void RoundTrip(const NodeRecord& record, uint32_t num_bits, bool compress) {
  std::vector<uint8_t> encoded;
  EncodeNode(record, compress, &encoded);
  SGTREE_ASSERT_MSG(encoded.size() == EncodedNodeSize(record, compress),
                    "EncodedNodeSize disagrees with EncodeNode");
  NodeRecord decoded;
  size_t consumed = 0;
  SGTREE_ASSERT_MSG(DecodeNode(encoded, num_bits, &decoded, &consumed),
                    "encoding of a live node failed to decode");
  SGTREE_ASSERT_MSG(consumed == encoded.size(),
                    "decoder consumed a different size than it encoded");
  SGTREE_ASSERT_MSG(SameRecord(record, decoded),
                    "node round trip changed the record");
}

void DecodeArbitrary(const std::vector<uint8_t>& payload, uint32_t num_bits) {
  NodeRecord record;
  size_t consumed = 0;
  if (DecodeNode(payload, num_bits, &record, &consumed)) {
    SGTREE_ASSERT_MSG(consumed <= payload.size(),
                      "decoder overran the buffer");
    // Whatever the decoder accepted must be canonically re-encodable. The
    // adaptive codec picks one encoding per signature, so the re-encoded
    // image decodes back to the same record even if the bytes differ.
    RoundTrip(record, num_bits, /*compress=*/true);
    RoundTrip(record, num_bits, /*compress=*/false);
  }
}

NodeRecord ShapeRecord(const std::vector<uint8_t>& payload,
                       uint32_t num_bits) {
  NodeRecord record;
  size_t offset = 0;
  auto take = [&]() -> uint8_t {
    return offset < payload.size() ? payload[offset++] : 0;
  };
  record.level = static_cast<uint16_t>(take() % 8);
  const size_t num_entries = take() % 32;
  for (size_t e = 0; e < num_entries; ++e) {
    uint64_t ref = 0;
    for (int b = 0; b < 8; ++b) ref = (ref << 8) | take();
    Signature sig(num_bits);
    const size_t bitmap_bytes = take() % ((num_bits + 7) / 8 + 1);
    for (size_t i = 0; i < bitmap_bytes; ++i) {
      const uint8_t byte = take();
      for (int b = 0; b < 8; ++b) {
        const uint32_t pos = static_cast<uint32_t>(i * 8 + 7 - b);
        if (pos < num_bits && ((byte >> b) & 1)) sig.Set(pos);
      }
    }
    record.entries.emplace_back(ref, std::move(sig));
  }
  return record;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size < 3) return 0;
  uint16_t raw_bits = 0;
  std::memcpy(&raw_bits, data, sizeof(raw_bits));
  const uint32_t num_bits = static_cast<uint32_t>(raw_bits % 2048) + 1;
  const bool compress = (data[2] & 1) != 0;
  const std::vector<uint8_t> payload(data + 3, data + size);
  DecodeArbitrary(payload, num_bits);
  RoundTrip(ShapeRecord(payload, num_bits), num_bits, compress);
  return 0;
}
