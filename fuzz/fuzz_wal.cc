// Fuzz harness for the write-ahead-log format (durability/wal.h).
//
// The WAL is the one file format that is read back after arbitrary
// truncation and corruption (that is its job), so its decoder and scanner
// must never crash, over-read, or allocation-bomb on hostile input.
//
// Input layout: byte 0 selects the mode mix; the remainder is (a) scanned
// raw by WalScanner — every record it accepts must satisfy the framing
// invariants and re-encode canonically; (b) fed raw to DecodeWalRecord;
// and (c) deterministically shaped into records that are framed, scanned
// back, and compared.

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/check.h"
#include "common/crc32.h"
#include "durability/byte_io.h"
#include "durability/wal.h"

namespace {

using sgtree::AppendU32;
using sgtree::Crc32c;
using sgtree::DecodeWalRecord;
using sgtree::EncodeWalRecord;
using sgtree::kMaxWalRecordSize;
using sgtree::TreeMeta;
using sgtree::WalRecord;
using sgtree::WalRecordType;
using sgtree::WalScanner;

bool SameRecord(const WalRecord& a, const WalRecord& b) {
  return a.type == b.type && a.page == b.page &&
         a.checkpoint_seq == b.checkpoint_seq && a.image == b.image &&
         a.meta == b.meta;
}

// Scans arbitrary bytes; checks the scanner's own invariants and that every
// accepted record survives an encode/decode round trip.
void ScanArbitrary(const std::vector<uint8_t>& region) {
  WalScanner scanner(region.data(), region.size());
  WalRecord record;
  uint64_t records = 0;
  while (scanner.Next(&record)) {
    ++records;
    std::vector<uint8_t> reencoded;
    EncodeWalRecord(record, &reencoded);
    SGTREE_ASSERT_MSG(reencoded.size() <= kMaxWalRecordSize,
                      "accepted record re-encodes over the size cap");
    WalRecord decoded;
    SGTREE_ASSERT_MSG(DecodeWalRecord(reencoded, &decoded),
                      "accepted record does not re-decode");
    SGTREE_ASSERT_MSG(SameRecord(record, decoded),
                      "wal record round trip changed the record");
  }
  SGTREE_ASSERT_MSG(scanner.valid_end() <= region.size(),
                    "scanner accepted more bytes than exist");
  SGTREE_ASSERT_MSG(scanner.records() == records,
                    "scanner record count disagrees with Next calls");
  SGTREE_ASSERT_MSG(scanner.torn() == (scanner.valid_end() < region.size()),
                    "torn flag disagrees with the accepted prefix");
}

WalRecord ShapeRecord(const uint8_t* data, size_t size, size_t* offset) {
  auto take = [&]() -> uint8_t {
    return *offset < size ? data[(*offset)++] : 0;
  };
  WalRecord record;
  switch (take() % 5) {
    case 0:
      record.type = WalRecordType::kCheckpoint;
      record.checkpoint_seq = take() | (uint64_t(take()) << 32);
      break;
    case 1:
      record.type = WalRecordType::kAlloc;
      record.page = take();
      break;
    case 2: {
      record.type = WalRecordType::kPageImage;
      record.page = take();
      const size_t image_len = size_t(take()) * 4;
      for (size_t i = 0; i < image_len; ++i) record.image.push_back(take());
      break;
    }
    case 3:
      record.type = WalRecordType::kFree;
      record.page = take();
      break;
    default:
      record.type = WalRecordType::kTreeMeta;
      record.meta.op_seq = take();
      record.meta.root = take();
      record.meta.height = take() % 16;
      record.meta.size = take();
      record.meta.area_lo = take();
      record.meta.area_hi = take();
      record.meta.node_count = take();
      break;
  }
  return record;
}

// Frames shaped records exactly as Wal::Append does, scans them back, and
// requires a byte-perfect round trip; then corrupts one byte and requires
// the scan to stop at or before the corrupted frame.
void RoundTripShaped(const uint8_t* data, size_t size) {
  size_t offset = 0;
  std::vector<WalRecord> records;
  const size_t count = size == 0 ? 0 : data[0] % 5;
  offset = 1;
  for (size_t i = 0; i < count; ++i) {
    records.push_back(ShapeRecord(data, size, &offset));
  }
  std::vector<uint8_t> region;
  for (const WalRecord& record : records) {
    std::vector<uint8_t> payload;
    EncodeWalRecord(record, &payload);
    AppendU32(static_cast<uint32_t>(payload.size()), &region);
    AppendU32(Crc32c(payload), &region);
    region.insert(region.end(), payload.begin(), payload.end());
  }

  WalScanner scanner(region.data(), region.size());
  WalRecord decoded;
  for (const WalRecord& record : records) {
    SGTREE_ASSERT_MSG(scanner.Next(&decoded),
                      "framed record stream scans short");
    SGTREE_ASSERT_MSG(SameRecord(record, decoded),
                      "framed round trip changed a record");
  }
  SGTREE_ASSERT_MSG(!scanner.Next(&decoded), "scan past the last record");
  SGTREE_ASSERT_MSG(!scanner.torn(), "clean stream reported torn");

  if (!region.empty()) {
    std::vector<uint8_t> corrupt = region;
    const size_t pos = offset < size ? data[offset] % corrupt.size() : 0;
    corrupt[pos] ^= 0x40;
    ScanArbitrary(corrupt);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  const std::vector<uint8_t> payload(data + 1, data + size);
  ScanArbitrary(payload);
  WalRecord record;
  DecodeWalRecord(payload, &record);
  RoundTripShaped(data, size);
  return 0;
}
