// Memory-resource sensitivity (the paper's Section 6 bullet: the SG-tree
// "can operate with limited memory resources and dynamically changing
// memory resources" because standard caching policies apply). Runs the
// same NN workload with LRU buffers from 0 pages (every access is an I/O)
// up to the whole tree, keeping the buffer warm ACROSS queries — the
// steady-state serving scenario.

#include <cstdio>

#include "bench/bench_common.h"
#include "obs/export.h"
#include "sgtree/search.h"

namespace sgtree::bench {
namespace {

void Run() {
  QuestOptions qopt = PaperQuest(20, 10, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const auto node_count = static_cast<uint32_t>(built.tree->node_count());

  std::printf("=== SG-tree I/O vs buffer size (T20.I10, D=%zu, %u nodes) "
              "===\n",
              dataset.size(), node_count);
  std::printf("%-14s %14s %14s %12s\n", "buffer_pages", "ios/query",
              "hit_ratio", "cpu_ms");

  for (uint32_t pages :
       {0u, 16u, 64u, 256u, 1024u, node_count}) {
    built.tree->buffer_pool().Resize(pages);
    built.tree->ResetIo();
    Timer timer;
    for (const Signature& q : queries) {
      DfsNearest(*built.tree, q,
                 built.tree->OwnPoolContext());  // Buffer stays warm.
    }
    const double elapsed = timer.ElapsedMs();
    const IoStats& io = built.tree->io_stats();
    // FormatHitRatio renders an untouched pool as "n/a" instead of NaN.
    std::printf("%-14u %14.1f %14s %12.3f\n", pages,
                static_cast<double>(io.random_ios) / queries.size(),
                obs::FormatHitRatio(io).c_str(),
                elapsed / queries.size());
    if (pages >= node_count) break;
  }
  std::printf("\nI/O falls smoothly as frames are added — the tree degrades\n"
              "gracefully under memory pressure, unlike the memory-resident\n"
              "SG-table whose directory size is fixed at construction.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
