// Figure 15: similarity range queries on T30.I18.D200K with the distance
// threshold epsilon varying from 2 to 10.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  QuestOptions qopt = PaperQuest(30, 18, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTable table(dataset, DefaultTableOptions());

  PrintHeader("Figure 15: range queries varying epsilon (T30.I18.D200K)",
              "epsilon");
  for (double epsilon : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const std::string x = "eps=" + std::to_string(static_cast<int>(epsilon));
    PrintRow(x, "SG-table",
             RunTableRange(table, queries, epsilon, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeRange(*built.tree, queries, epsilon, dataset.size()));
  }
  std::printf("\nExpected shape (paper): the SG-table can win at eps=2 on\n"
              "this synthetic dataset; the tree is much faster everywhere\n"
              "else.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
