// Figure 13: k-NN search varying k (1..10000) on T30.I18.D200K. For small
// to medium k the SG-tree is significantly faster; at very large k the
// dimensionality curse makes any index useless.

#include <algorithm>

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  QuestOptions qopt = PaperQuest(30, 18, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTable table(dataset, DefaultTableOptions());

  PrintHeader("Figure 13: k-NN varying k (T30.I18.D200K)", "k");
  uint32_t previous_k = 0;
  for (uint32_t paper_k : {1u, 10u, 100u, 1000u, 10000u}) {
    // Scale k with the dataset so k/D matches the paper's ratios.
    const uint32_t k = std::max<uint32_t>(
        1, static_cast<uint32_t>(paper_k * ScaleFactor()));
    if (k == previous_k) continue;
    previous_k = k;
    const std::string x = "k=" + std::to_string(k);
    PrintRow(x, "SG-table", RunTableKnn(table, queries, k, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, k, dataset.size()));
  }
  std::printf("\nExpected shape (paper): SG-tree clearly faster for small\n"
              "and medium k; for very large k both degenerate (the k-th\n"
              "neighbor is nearly as far as a random transaction).\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
