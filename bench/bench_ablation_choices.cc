// Ablations for the design choices DESIGN.md calls out:
//   (a) ChooseSubtree: min-enlargement vs min-overlap (Section 3.1 claims
//       equal tree quality at much lower insertion cost).
//   (b) DFS vs best-first NN (Section 4.1: best-first is optimal in node
//       accesses).
//   (c) One-by-one insertion vs Gray-code bulk loading (Section 6).
//   (d) Sparse-signature compression on/off: persisted index size.
//   (e) Fixed-dimensionality bound on CENSUS (Section 6 optimization).

#include <cstdio>

#include "bench/bench_common.h"
#include "sgtree/bulk_load.h"
#include "sgtree/tree_checker.h"
#include "storage/node_format.h"

namespace sgtree::bench {
namespace {

uint64_t PersistedBytes(const SgTree& tree, bool compress) {
  uint64_t bytes = 0;
  for (PageId id : tree.LiveNodes()) {
    const Node& node = tree.GetNodeNoCharge(id);
    NodeRecord record;
    record.level = node.level;
    for (const Entry& entry : node.entries) {
      record.entries.emplace_back(entry.ref, entry.sig);
    }
    bytes += EncodedNodeSize(record, compress);
  }
  return bytes;
}

void Run() {
  QuestOptions qopt = PaperQuest(20, 8, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  std::printf("=== Ablation studies (T20.I8, D=%zu) ===\n", dataset.size());

  // (a) ChooseSubtree policy.
  std::printf("\n-- (a) ChooseSubtree: min-enlargement vs min-overlap --\n");
  std::printf("%-16s %14s %12s %12s %12s\n", "policy", "insert_ms/txn",
              "lvl1_area", "%data", "cpu_ms");
  for (ChooseSubtreePolicy policy : {ChooseSubtreePolicy::kMinEnlargement,
                                     ChooseSubtreePolicy::kMinOverlap}) {
    SgTreeOptions options = DefaultTreeOptions(dataset);
    options.choose_policy = policy;
    const BuiltTree built = BuildTree(dataset, options);
    const TreeReport report = CheckTree(*built.tree);
    const MethodResult result =
        RunTreeKnn(*built.tree, queries, 1, dataset.size());
    std::printf("%-16s %14.4f %12.1f %12.2f %12.3f\n",
                ChooseSubtreePolicyName(policy).c_str(),
                built.build_ms / dataset.size(),
                report.avg_entry_area.size() > 1 ? report.avg_entry_area[1]
                                                 : 0.0,
                result.pct_data, result.cpu_ms);
  }

  // (b) DFS vs best-first.
  std::printf("\n-- (b) NN algorithm: depth-first vs best-first --\n");
  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  QueryStats dfs_stats;
  QueryStats bf_stats;
  Timer dfs_timer;
  for (const Signature& q : queries) {
    built.tree->buffer_pool().Clear();
    DfsNearest(*built.tree, q, built.tree->OwnPoolContext(&dfs_stats));
  }
  const double dfs_ms = dfs_timer.ElapsedMs();
  Timer bf_timer;
  for (const Signature& q : queries) {
    built.tree->buffer_pool().Clear();
    BestFirstKNearest(*built.tree, q, 1,
                      built.tree->OwnPoolContext(&bf_stats));
  }
  const double bf_ms = bf_timer.ElapsedMs();
  std::printf("%-16s %14s %14s\n", "algorithm", "nodes/query", "cpu_ms/query");
  std::printf("%-16s %14.1f %14.3f\n", "depth-first",
              static_cast<double>(dfs_stats.nodes_accessed) / queries.size(),
              dfs_ms / queries.size());
  std::printf("%-16s %14.1f %14.3f\n", "best-first",
              static_cast<double>(bf_stats.nodes_accessed) / queries.size(),
              bf_ms / queries.size());

  // (c) Insertion vs bulk loading.
  std::printf("\n-- (c) One-by-one insertion vs Gray-code bulk load --\n");
  Timer bulk_timer;
  auto bulk = BulkLoad(dataset, DefaultTreeOptions(dataset));
  const double bulk_ms = bulk_timer.ElapsedMs();
  const TreeReport incr_report = CheckTree(*built.tree);
  const TreeReport bulk_report = CheckTree(*bulk);
  const MethodResult incr_result =
      RunTreeKnn(*built.tree, queries, 1, dataset.size());
  const MethodResult bulk_result =
      RunTreeKnn(*bulk, queries, 1, dataset.size());
  std::printf("%-16s %12s %10s %12s %12s %12s\n", "method", "build_ms",
              "nodes", "util", "%data", "cpu_ms");
  std::printf("%-16s %12.0f %10llu %12.2f %12.2f %12.3f\n", "insert",
              built.build_ms,
              static_cast<unsigned long long>(incr_report.node_count),
              incr_report.avg_utilization, incr_result.pct_data,
              incr_result.cpu_ms);
  std::printf("%-16s %12.0f %10llu %12.2f %12.2f %12.3f\n", "bulk-load",
              bulk_ms,
              static_cast<unsigned long long>(bulk_report.node_count),
              bulk_report.avg_utilization, bulk_result.pct_data,
              bulk_result.cpu_ms);

  // (d) Compression.
  std::printf("\n-- (d) Sparse-signature compression (Section 3.2) --\n");
  const uint64_t dense_bytes = PersistedBytes(*built.tree, false);
  const uint64_t compressed_bytes = PersistedBytes(*built.tree, true);
  std::printf("persisted index size: dense %llu bytes, compressed %llu "
              "bytes (%.1f%% saved)\n",
              static_cast<unsigned long long>(dense_bytes),
              static_cast<unsigned long long>(compressed_bytes),
              100.0 * (dense_bytes - compressed_bytes) / dense_bytes);

  // (e) Fixed-dimensionality bound on CENSUS.
  std::printf("\n-- (e) CENSUS: generic vs fixed-dimensionality bound --\n");
  CensusGenerator census_gen(PaperCensus());
  const Dataset census = census_gen.Generate();
  const auto census_queries = ToSignatures(
      census_gen.GenerateQueries(NumQueries()), census.num_items);
  SgTreeOptions relaxed = DefaultTreeOptions(census);
  relaxed.fixed_dimensionality = 0;
  relaxed.use_area_stats = false;
  SgTreeOptions stats = relaxed;
  stats.use_area_stats = true;  // Learns min=max=36 on its own.
  SgTreeOptions tight = DefaultTreeOptions(census);
  const BuiltTree tree_relaxed = BuildTree(census, relaxed);
  const BuiltTree tree_stats = BuildTree(census, stats);
  const BuiltTree tree_tight = BuildTree(census, tight);
  const MethodResult r_relaxed =
      RunTreeKnn(*tree_relaxed.tree, census_queries, 1, census.size());
  const MethodResult r_stats =
      RunTreeKnn(*tree_stats.tree, census_queries, 1, census.size());
  const MethodResult r_tight =
      RunTreeKnn(*tree_tight.tree, census_queries, 1, census.size());
  std::printf("%-16s %12s %12s %14s\n", "bound", "%data", "cpu_ms",
              "random_ios");
  std::printf("%-16s %12.2f %12.3f %14.1f\n", "generic", r_relaxed.pct_data,
              r_relaxed.cpu_ms, r_relaxed.random_ios);
  std::printf("%-16s %12.2f %12.3f %14.1f\n", "area-stats",
              r_stats.pct_data, r_stats.cpu_ms, r_stats.random_ios);
  std::printf("%-16s %12.2f %12.3f %14.1f\n", "fixed-dim",
              r_tight.pct_data, r_tight.cpu_ms, r_tight.random_ios);
  std::printf("(area-stats learns the 36-value window on its own and\n"
              "matches the explicitly configured fixed-dim bound)\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
