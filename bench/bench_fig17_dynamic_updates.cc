// Figure 17: robustness to dynamic data changes. A T10.I6.D100K dataset is
// indexed, then 4 batches of 100K transactions are appended, each generated
// with different large itemsets (different seeds). After each phase, NN
// queries are drawn from a random previously-inserted batch's generator.
// The SG-table's vertical signatures are tuned to batch 1 and degrade; the
// SG-tree adapts.

#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"

namespace sgtree::bench {
namespace {

void Run() {
  const uint32_t batch_size = ScaledD(100'000);
  const uint32_t num_batches = 5;

  // One generator per batch, same T/I but different seeds => different
  // large itemsets.
  std::vector<std::unique_ptr<QuestGenerator>> generators;
  for (uint32_t b = 0; b < num_batches; ++b) {
    QuestOptions qopt = PaperQuest(10, 6, 100'000, /*seed=*/1000 + 31 * b);
    generators.push_back(std::make_unique<QuestGenerator>(qopt));
  }

  // Index batch 1 in both structures (the SG-table derives its vertical
  // signatures from this batch only).
  Dataset first = generators[0]->Generate();
  SgTreeOptions topt = DefaultTreeOptions(first);
  auto tree = std::make_unique<SgTree>(topt);
  for (const Transaction& txn : first.transactions) tree->Insert(txn);
  SgTable table(first, DefaultTableOptions());
  size_t total = first.transactions.size();

  PrintHeader("Figure 17: NN search after dynamic batch inserts "
              "(T=10, I=6, batches of " +
                  std::to_string(batch_size) + ")",
              "dataset_size");
  Rng query_batch_rng(99);
  const uint32_t num_queries = NumQueries();

  for (uint32_t phase = 1; phase <= num_batches; ++phase) {
    if (phase > 1) {
      Dataset batch = generators[phase - 1]->Generate();
      for (Transaction& txn : batch.transactions) {
        txn.tid += static_cast<uint64_t>(phase - 1) * 10'000'000;
        tree->Insert(txn);
        table.Insert(txn);
      }
      total += batch.transactions.size();
    }
    // Queries: for each, pick a random batch 1..phase and use its generator.
    std::vector<Signature> queries;
    for (uint32_t q = 0; q < num_queries; ++q) {
      const auto b =
          static_cast<uint32_t>(query_batch_rng.UniformInt(phase));
      const auto batch_queries = generators[b]->GenerateQueries(1);
      queries.push_back(
          Signature::FromItems(batch_queries[0].items, first.num_items));
    }
    const std::string x = "D=" + std::to_string(total);
    PrintRow(x, "SG-table", RunTableKnn(table, queries, 1, total));
    PrintRow(x, "SG-tree", RunTreeKnn(*tree, queries, 1, total));
  }
  std::printf("\nExpected shape (paper): similar at phase 1; the SG-table\n"
              "degenerates as data with different characteristics arrive\n"
              "(it is optimized for the first batch); the SG-tree stays\n"
              "robust.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
