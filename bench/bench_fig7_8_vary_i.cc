// Figures 7 and 8: nearest-neighbor search varying the mean large-itemset
// size I (6..24) with T=30, D=200K. Larger I means better-clustered
// transactions, which favors both structures but the SG-tree more.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  PrintHeader("Figures 7/8: NN search varying I (T=30, D=200K)", "I");
  for (double i : {6.0, 12.0, 18.0, 24.0}) {
    QuestOptions qopt = PaperQuest(30, i, 200'000);
    QuestGenerator gen(qopt);
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

    const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
    const SgTable table(dataset, DefaultTableOptions());

    const std::string x = "I=" + std::to_string(static_cast<int>(i));
    PrintRow(x, "SG-table", RunTableKnn(table, queries, 1, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, 1, dataset.size()));
  }
  std::printf("\nExpected shape (paper): costs drop for both as I grows\n"
              "(better clustering); the SG-tree becomes significantly\n"
              "faster than the SG-table when both T and I are large.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
