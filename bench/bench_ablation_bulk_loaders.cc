// Ablation: the three Section 6 bulk-loading orders (Gray code, recursive
// bisection clustering, MinHash grouping) against one-by-one insertion —
// build time, structure quality (nodes, utilization, level-1 area) and NN
// query cost.

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "sgtree/bulk_load.h"
#include "sgtree/tree_checker.h"

namespace sgtree::bench {
namespace {

struct Row {
  std::string name;
  double build_ms;
  TreeReport report;
  MethodResult query;
};

void Print(const Row& row) {
  std::printf("%-16s %10.0f %8llu %8.2f %10.1f %10.2f %10.3f %12.1f\n",
              row.name.c_str(), row.build_ms,
              static_cast<unsigned long long>(row.report.node_count),
              row.report.avg_utilization,
              row.report.avg_entry_area.size() > 1
                  ? row.report.avg_entry_area[1]
                  : 0.0,
              row.query.pct_data, row.query.cpu_ms, row.query.random_ios);
}

void Run() {
  QuestOptions qopt = PaperQuest(20, 10, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);
  const SgTreeOptions options = DefaultTreeOptions(dataset);

  std::printf("=== Bulk-loading ablation (T20.I10, D=%zu) ===\n",
              dataset.size());
  std::printf("%-16s %10s %8s %8s %10s %10s %10s %12s\n", "method",
              "build_ms", "nodes", "util", "lvl1_area", "%data", "cpu_ms",
              "random_ios");

  {
    const BuiltTree built = BuildTree(dataset, options);
    Print({"insert", built.build_ms, CheckTree(*built.tree),
           RunTreeKnn(*built.tree, queries, 1, dataset.size())});
  }
  for (BulkLoadOrder order :
       {BulkLoadOrder::kGrayCode, BulkLoadOrder::kClusterPartition,
        BulkLoadOrder::kMinHash}) {
    BulkLoadOptions bulk;
    bulk.order = order;
    Timer timer;
    auto tree = BulkLoad(dataset, options, bulk);
    const double build_ms = timer.ElapsedMs();
    Print({BulkLoadOrderName(order), build_ms, CheckTree(*tree),
           RunTreeKnn(*tree, queries, 1, dataset.size())});
  }
  std::printf("\nAll bulk orders build ~10x faster and pack denser than\n"
              "insertion; the clustering orders approach (but do not beat)\n"
              "the insertion-built tree's query quality — consistent with\n"
              "the paper leaving 'globally-optimized' loading as future\n"
              "work.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
