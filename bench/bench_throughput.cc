// Batch-query throughput of the parallel QueryExecutor on the Figure 13
// workload (T30.I18.D200K, k-NN): QPS and per-query latency percentiles as
// the worker count grows 1 -> 2 -> 4 -> 8. Queries are embarrassingly
// parallel over a read-only tree, so on an M-core machine QPS should scale
// close to min(threads, M)x; per-query work is identical at every thread
// count (the determinism tests assert byte-equality with the serial path).
//
// Output: a human-readable table on stdout and a JSON report (one object
// per thread count) written to the path in SG_BENCH_JSON, default
// bench_throughput.json.
//
// Env knobs: SG_BENCH_SCALE / SG_BENCH_QUERIES (see bench_common.h),
// SG_BENCH_THREADS (comma list overriding 1,2,4,8), SG_BENCH_SHARDS
// (> 0 switches to one shared ShardedBufferPool with that many stripes
// instead of private per-worker pools).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "exec/index_backend.h"
#include "exec/query_executor.h"

namespace sgtree::bench {
namespace {

std::vector<uint32_t> ThreadCounts() {
  const char* env = std::getenv("SG_BENCH_THREADS");
  if (env == nullptr) return {1, 2, 4, 8};
  std::vector<uint32_t> counts;
  for (const char* p = env; *p != '\0';) {
    char* end = nullptr;
    const long value = std::strtol(p, &end, 10);
    if (end == p) break;
    if (value > 0) counts.push_back(static_cast<uint32_t>(value));
    p = (*end == ',') ? end + 1 : end;
  }
  return counts.empty() ? std::vector<uint32_t>{1, 2, 4, 8} : counts;
}

uint32_t PoolShards() {
  const char* env = std::getenv("SG_BENCH_SHARDS");
  const int n = env == nullptr ? 0 : std::atoi(env);
  return n > 0 ? static_cast<uint32_t>(n) : 0;
}

double Percentile(std::vector<double> sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const double rank = p / 100.0 * static_cast<double>(sorted_us.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted_us.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_us[lo] + frac * (sorted_us[hi] - sorted_us[lo]);
}

struct Row {
  uint32_t threads = 0;
  double wall_ms = 0;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double ios_per_query = 0;
  double speedup = 0;
};

void Run() {
  QuestOptions qopt = PaperQuest(30, 18, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();

  // A batch large enough to keep 8 workers busy: cycle the query pool.
  const uint32_t distinct = NumQueries();
  const auto queries =
      ToSignatures(gen.GenerateQueries(distinct), dataset.num_items);
  const size_t batch_size = std::max<size_t>(256, distinct * 8);
  const uint32_t k = std::max<uint32_t>(
      1, static_cast<uint32_t>(10 * ScaleFactor()));
  std::vector<BatchQuery> batch(batch_size);
  for (size_t i = 0; i < batch_size; ++i) {
    batch[i] = {QueryType::kKnn, queries[i % queries.size()], k, 0.0};
  }

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTree& tree = *built.tree;
  const uint32_t shards = PoolShards();

  std::printf("\n=== Batch k-NN throughput (T30.I18.D200K, k=%u, %zu "
              "queries/batch, %s pools) ===\n",
              k, batch_size,
              shards > 0 ? "shared sharded" : "private per-worker");
  std::printf("(scale factor %.2f; hardware_concurrency=%u)\n", ScaleFactor(),
              std::thread::hardware_concurrency());
  std::printf("%-8s %12s %12s %12s %12s %12s %10s\n", "threads", "wall_ms",
              "qps", "p50_us", "p99_us", "ios/query", "speedup");

  std::vector<Row> rows;
  for (uint32_t threads : ThreadCounts()) {
    QueryExecutorOptions options;
    options.num_threads = threads;
    options.buffer_pages = DefaultTreeOptions(dataset).buffer_pages;
    options.pool_shards = shards;
    QueryExecutor executor(options);

    // Warm-up pass so thread start-up and first-touch page faults do not
    // pollute the measured run.
    executor.Run(SgTreeBackend(tree), batch);

    Timer timer;
    const std::vector<QueryResult> results =
        executor.Run(SgTreeBackend(tree), batch);
    const double wall_ms = timer.ElapsedMs();

    std::vector<double> latencies;
    latencies.reserve(results.size());
    double total_ios = 0;
    for (const QueryResult& r : results) {
      latencies.push_back(r.elapsed_us);
      total_ios += static_cast<double>(r.stats.random_ios);
    }
    std::sort(latencies.begin(), latencies.end());

    Row row;
    row.threads = threads;
    row.wall_ms = wall_ms;
    row.qps = 1000.0 * static_cast<double>(batch_size) / wall_ms;
    row.p50_us = Percentile(latencies, 50);
    row.p99_us = Percentile(latencies, 99);
    row.ios_per_query = total_ios / static_cast<double>(batch_size);
    row.speedup = rows.empty() ? 1.0 : row.qps / rows.front().qps;
    rows.push_back(row);

    std::printf("%-8u %12.1f %12.0f %12.1f %12.1f %12.1f %9.2fx\n",
                row.threads, row.wall_ms, row.qps, row.p50_us, row.p99_us,
                row.ios_per_query, row.speedup);
  }

  const char* json_env = std::getenv("SG_BENCH_JSON");
  const std::string json_path =
      json_env != nullptr ? json_env : "bench_throughput.json";
  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return;
  }
  std::fprintf(out,
               "{\n  \"workload\": \"T30.I18.D%zu\",\n  \"k\": %u,\n"
               "  \"batch_size\": %zu,\n  \"pool_mode\": \"%s\",\n"
               "  \"hardware_concurrency\": %u,\n  \"runs\": [\n",
               dataset.size(), k, batch_size,
               shards > 0 ? "shared_sharded" : "private",
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(out,
                 "    {\"threads\": %u, \"wall_ms\": %.3f, \"qps\": %.1f, "
                 "\"p50_us\": %.2f, \"p99_us\": %.2f, "
                 "\"ios_per_query\": %.2f, \"speedup\": %.3f}%s\n",
                 r.threads, r.wall_ms, r.qps, r.p50_us, r.p99_us,
                 r.ios_per_query, r.speedup,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("\nJSON report written to %s\n", json_path.c_str());
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
