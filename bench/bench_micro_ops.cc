// Micro-benchmarks (google-benchmark) for the hot kernels: signature set
// operations, distance bounds, the compression codec, and index update /
// query operations.

#include <benchmark/benchmark.h>

#include "baseline/linear_scan.h"
#include "common/distance.h"
#include "common/gray_code.h"
#include "common/rng.h"
#include "common/signature.h"
#include "data/quest_generator.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "storage/codec.h"

namespace sgtree {
namespace {

Signature MakeSignature(uint64_t seed, uint32_t bits, double density) {
  Rng rng(seed);
  Signature sig(bits);
  for (uint32_t i = 0; i < bits; ++i) {
    if (rng.Bernoulli(density)) sig.Set(i);
  }
  return sig;
}

void BM_SignatureXorCount(benchmark::State& state) {
  const auto bits = static_cast<uint32_t>(state.range(0));
  const Signature a = MakeSignature(1, bits, 0.1);
  const Signature b = MakeSignature(2, bits, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Signature::XorCount(a, b));
  }
}
BENCHMARK(BM_SignatureXorCount)->Arg(256)->Arg(525)->Arg(1000)->Arg(4096);

void BM_SignatureContains(benchmark::State& state) {
  const auto bits = static_cast<uint32_t>(state.range(0));
  Signature big = MakeSignature(3, bits, 0.3);
  const Signature small = MakeSignature(4, bits, 0.02);
  big.UnionWith(small);
  for (auto _ : state) {
    benchmark::DoNotOptimize(big.Contains(small));
  }
}
BENCHMARK(BM_SignatureContains)->Arg(525)->Arg(1000);

void BM_SignatureUnionWith(benchmark::State& state) {
  const auto bits = static_cast<uint32_t>(state.range(0));
  Signature a = MakeSignature(5, bits, 0.2);
  const Signature b = MakeSignature(6, bits, 0.2);
  for (auto _ : state) {
    a.UnionWith(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_SignatureUnionWith)->Arg(525)->Arg(1000);

void BM_MinDistBound(benchmark::State& state) {
  const Signature query = MakeSignature(7, 1000, 0.01);
  const Signature cover = MakeSignature(8, 1000, 0.2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinDistBound(query, cover, Metric::kHamming));
  }
}
BENCHMARK(BM_MinDistBound);

void BM_GrayLess(benchmark::State& state) {
  const Signature a = MakeSignature(9, 1000, 0.01);
  const Signature b = MakeSignature(10, 1000, 0.01);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GrayLess(a, b));
  }
}
BENCHMARK(BM_GrayLess);

void BM_EncodeSignatureSparse(benchmark::State& state) {
  const Signature sig = MakeSignature(11, 1000, 0.01);
  std::vector<uint8_t> out;
  for (auto _ : state) {
    out.clear();
    EncodeSignature(sig, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeSignatureSparse);

void BM_DecodeSignatureSparse(benchmark::State& state) {
  const Signature sig = MakeSignature(12, 1000, 0.01);
  std::vector<uint8_t> encoded;
  EncodeSignature(sig, &encoded);
  for (auto _ : state) {
    size_t offset = 0;
    Signature decoded;
    DecodeSignature(encoded, &offset, 1000, &decoded);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_DecodeSignatureSparse);

struct TreeFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::vector<Signature> queries;

  static const TreeFixture& Get() {
    static TreeFixture* fixture = [] {
      auto* f = new TreeFixture();
      QuestOptions qopt;
      qopt.num_transactions = 20'000;
      qopt.num_items = 1000;
      qopt.num_patterns = 200;
      qopt.avg_transaction_size = 12;
      qopt.avg_itemset_size = 6;
      qopt.seed = 42;
      QuestGenerator gen(qopt);
      f->dataset = gen.Generate();
      SgTreeOptions topt;
      topt.num_bits = 1000;
      f->tree = std::make_unique<SgTree>(topt);
      for (const Transaction& txn : f->dataset.transactions) {
        f->tree->Insert(txn);
      }
      for (const Transaction& q : gen.GenerateQueries(64)) {
        f->queries.push_back(Signature::FromItems(q.items, 1000));
      }
      return f;
    }();
    return *fixture;
  }
};

void BM_TreeInsert(benchmark::State& state) {
  QuestOptions qopt;
  qopt.num_transactions = 4096;
  qopt.num_items = 1000;
  qopt.num_patterns = 100;
  qopt.seed = 77;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  SgTreeOptions topt;
  topt.num_bits = 1000;
  size_t i = 0;
  SgTree tree(topt);
  uint64_t tid = 0;
  for (auto _ : state) {
    const Transaction& txn = dataset.transactions[i++ % dataset.size()];
    tree.Insert(Signature::FromItems(txn.items, 1000), tid++);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_TreeInsert);

void BM_TreeNearestNeighbor(benchmark::State& state) {
  const TreeFixture& f = TreeFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DfsNearest(*f.tree,
                                        f.queries[i++ % f.queries.size()],
                                        f.tree->OwnPoolContext()));
  }
}
BENCHMARK(BM_TreeNearestNeighbor);

void BM_TreeRangeQuery(benchmark::State& state) {
  const TreeFixture& f = TreeFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(RangeSearch(*f.tree,
                                         f.queries[i++ % f.queries.size()],
                                         6.0, f.tree->OwnPoolContext()));
  }
}
BENCHMARK(BM_TreeRangeQuery);

void BM_LinearScanNearest(benchmark::State& state) {
  const TreeFixture& f = TreeFixture::Get();
  static LinearScan* scan = new LinearScan(f.dataset);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scan->Nearest(f.queries[i++ % f.queries.size()]));
  }
}
BENCHMARK(BM_LinearScanNearest);

}  // namespace
}  // namespace sgtree
