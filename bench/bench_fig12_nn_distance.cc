// Figure 12: nearest-neighbor cost as a function of the distance of the
// nearest neighbor, on T30.I18.D200K. The paper runs 1000 queries and
// averages costs over five distance ranges: 0, 1-3, 4-10, 11-20, >20.
// Near queries are fast for both methods (the SG-table can win at 1-3);
// distant "outlier" queries are handled much faster by the SG-tree.

#include <array>
#include <string>

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

struct Accumulator {
  QueryStats tree_stats;
  QueryStats table_stats;
  double tree_ms = 0;
  double table_ms = 0;
  uint32_t count = 0;
};

void Run() {
  QuestOptions qopt = PaperQuest(30, 18, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  // The paper uses 1000 queries for this experiment (10x the usual count)
  // so every distance bucket is populated.
  const uint32_t num_queries = NumQueries() * 10;
  const auto queries =
      ToSignatures(gen.GenerateQueries(num_queries), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTable table(dataset, DefaultTableOptions());

  const std::array<std::string, 5> labels = {"0", "1 to 3", "4 to 10",
                                             "11 to 20", ">20"};
  std::array<Accumulator, 5> buckets;
  auto bucket_of = [](double d) {
    if (d <= 0) return 0;
    if (d <= 3) return 1;
    if (d <= 10) return 2;
    if (d <= 20) return 3;
    return 4;
  };

  for (const Signature& q : queries) {
    built.tree->buffer_pool().Clear();
    QueryStats tree_stats;
    Timer tree_timer;
    const Neighbor nn =
        DfsNearest(*built.tree, q, built.tree->OwnPoolContext(&tree_stats));
    const double tree_ms = tree_timer.ElapsedMs();

    QueryStats table_stats;
    Timer table_timer;
    table.Nearest(q, &table_stats);
    const double table_ms = table_timer.ElapsedMs();

    Accumulator& acc = buckets[bucket_of(nn.distance)];
    acc.tree_stats += tree_stats;
    acc.table_stats += table_stats;
    acc.tree_ms += tree_ms;
    acc.table_ms += table_ms;
    ++acc.count;
  }

  PrintHeader("Figure 12: NN cost by NN distance (T30.I18.D200K)",
              "nn_distance");
  for (size_t b = 0; b < buckets.size(); ++b) {
    const Accumulator& acc = buckets[b];
    if (acc.count == 0) {
      std::printf("%-14s (no queries landed in this range)\n",
                  labels[b].c_str());
      continue;
    }
    const double n = acc.count;
    PrintRow(labels[b], "SG-table",
             {100.0 * acc.table_stats.transactions_compared /
                  (n * dataset.size()),
              acc.table_ms / n, acc.table_stats.random_ios / n});
    PrintRow(labels[b], "SG-tree",
             {100.0 * acc.tree_stats.transactions_compared /
                  (n * dataset.size()),
              acc.tree_ms / n, acc.tree_stats.random_ios / n});
  }
  std::printf("\nExpected shape (paper): both fast at small distances (the\n"
              "SG-table can win in the 1-3 range); the SG-tree is much\n"
              "faster on distant/outlier queries.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
