// Section 6 future work: "We plan to test the effectiveness of the
// structure using alternative metrics." NN search under Hamming, Jaccard,
// Dice and cosine on the same tree structure, with exactness spot-checked
// against the linear scan.

#include <cstdio>

#include "bench/bench_common.h"
#include "sgtree/search.h"

namespace sgtree::bench {
namespace {

void RunOn(const char* name, const Dataset& dataset,
           const std::vector<Signature>& queries) {
  std::printf("\n-- %s --\n", name);
  std::printf("%-10s %10s %12s %14s %14s\n", "metric", "%data", "cpu_ms",
              "random_ios", "exactness");
  LinearScan scan(dataset);
  for (Metric metric : {Metric::kHamming, Metric::kJaccard, Metric::kDice,
                        Metric::kCosine}) {
    SgTreeOptions options = DefaultTreeOptions(dataset);
    options.metric = metric;
    const BuiltTree built = BuildTree(dataset, options);
    QueryStats stats;
    Timer timer;
    bool exact = true;
    for (const Signature& q : queries) {
      built.tree->buffer_pool().Clear();
      const Neighbor nn =
          DfsNearest(*built.tree, q, built.tree->OwnPoolContext(&stats));
      if (nn.distance != scan.Nearest(q, metric).distance) exact = false;
    }
    const double elapsed = timer.ElapsedMs();
    std::printf("%-10s %10.2f %12.3f %14.1f %14s\n",
                MetricName(metric).c_str(),
                100.0 * stats.transactions_compared /
                    (queries.size() * dataset.size()),
                elapsed / queries.size(),
                static_cast<double>(stats.random_ios) / queries.size(),
                exact ? "exact" : "MISMATCH");
  }
}

void Run() {
  std::printf("=== Alternative similarity metrics (Section 6) ===\n");
  std::printf("(scale factor %.2f, %u queries; CPU time includes the\n"
              "verification scan overhead only in 'exactness')\n",
              ScaleFactor(), NumQueries());
  {
    QuestOptions qopt = PaperQuest(20, 10, 200'000);
    QuestGenerator gen(qopt);
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);
    RunOn("T20.I10 market-basket data", dataset, queries);
  }
  {
    CensusGenerator gen(PaperCensus());
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);
    RunOn("CENSUS categorical data", dataset, queries);
  }
  std::printf("\nAll metrics answer exactly through the same tree at\n"
              "comparable pruning; the normalized metrics pay extra CPU for\n"
              "their floating-point bounds. This validates the Section 6\n"
              "claim that the SG-tree can be searched under alternative\n"
              "set-theoretic metrics by swapping the bound.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
