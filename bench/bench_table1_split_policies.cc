// Table 1: comparison of the three split policies on the CENSUS dataset.
// Reports the per-level average entry area (tree quality), the per-
// transaction insertion cost, and the cost of nearest-neighbor queries
// (% data accessed, CPU time, node accesses as I/Os).

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "sgtree/tree_checker.h"

namespace sgtree::bench {
namespace {

void Run() {
  const CensusOptions copt = PaperCensus();
  CensusGenerator gen(copt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  std::printf("=== Table 1: split-policy comparison (CENSUS, D=%zu) ===\n",
              dataset.size());
  std::printf("(scale factor %.2f, %u NN queries)\n\n", ScaleFactor(),
              NumQueries());
  std::printf("%-32s %14s %14s %14s %14s\n", "comparison metric",
              "LinearSplit", "QuadraticSplit", "AvgSplit", "MinSplit");

  struct PolicyResult {
    TreeReport report;
    double insert_ms = 0;
    MethodResult query;
  };
  std::vector<PolicyResult> results;
  for (SplitPolicy policy : {SplitPolicy::kLinear, SplitPolicy::kQuadratic,
                             SplitPolicy::kAverage, SplitPolicy::kMinimum}) {
    SgTreeOptions options = DefaultTreeOptions(dataset);
    options.split_policy = policy;
    const BuiltTree built = BuildTree(dataset, options);
    PolicyResult result;
    result.report = CheckTree(*built.tree);
    result.insert_ms = built.build_ms / static_cast<double>(dataset.size());
    result.query = RunTreeKnn(*built.tree, queries, 1, dataset.size());
    if (!result.report.ok) {
      std::printf("INVARIANT FAILURE: %s\n", result.report.message.c_str());
    }
    results.push_back(std::move(result));
  }

  const uint32_t height = results[0].report.height;
  for (uint32_t level = 1; level < height; ++level) {
    std::printf("avg area at level %-13u", level);
    for (const PolicyResult& r : results) {
      const double area = level < r.report.avg_entry_area.size()
                              ? r.report.avg_entry_area[level]
                              : 0.0;
      std::printf(" %14.0f", area);
    }
    std::printf("\n");
  }
  std::printf("%-32s", "insertion cost (msec)");
  for (const PolicyResult& r : results) std::printf(" %14.3f", r.insert_ms);
  std::printf("\n%-32s", "% of data accessed");
  for (const PolicyResult& r : results) {
    std::printf(" %14.2f", r.query.pct_data);
  }
  std::printf("\n%-32s", "CPU time (msec)");
  for (const PolicyResult& r : results) std::printf(" %14.3f", r.query.cpu_ms);
  std::printf("\n%-32s", "I/Os");
  for (const PolicyResult& r : results) {
    std::printf(" %14.1f", r.query.random_ios);
  }
  std::printf("\n\nExpected shape (paper): AvgSplit/MinSplit build much\n"
              "better trees (smaller areas, fewer accesses) than\n"
              "QuadraticSplit; QuadraticSplit inserts fastest. LinearSplit\n"
              "(not in the paper) models the unoptimized S-tree [7] split\n"
              "the paper improves upon.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
