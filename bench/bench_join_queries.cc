// The reconstructed Section 4.2 query types (see DESIGN.md): similarity
// joins and closest pairs. Measures the synchronized tree-tree join against
// the nested-loop baseline on set data (weak directory-level bounds) and on
// fixed-dimensionality categorical data (strong bounds).

#include <cstdio>

#include "bench/bench_common.h"
#include "sgtree/bulk_load.h"
#include "sgtree/join.h"

namespace sgtree::bench {
namespace {

uint64_t NestedLoopPairs(const Dataset& a, const Dataset& b, double epsilon,
                         double* ms) {
  std::vector<Signature> sa;
  std::vector<Signature> sb;
  for (const auto& txn : a.transactions) {
    sa.push_back(Signature::FromItems(txn.items, a.num_items));
  }
  for (const auto& txn : b.transactions) {
    sb.push_back(Signature::FromItems(txn.items, b.num_items));
  }
  Timer timer;
  uint64_t count = 0;
  for (const auto& x : sa) {
    for (const auto& y : sb) {
      if (Distance(x, y, Metric::kHamming) <= epsilon) ++count;
    }
  }
  *ms = timer.ElapsedMs();
  return count;
}

void JoinStudy(const char* name, const Dataset& da, const Dataset& db) {
  SgTreeOptions options;
  options.num_bits = da.num_items;
  options.fixed_dimensionality = da.fixed_dimensionality;
  auto ta = BulkLoad(da, options);
  auto tb = BulkLoad(db, options);

  std::printf("\n-- %s (|A|=%zu, |B|=%zu) --\n", name, da.size(), db.size());
  std::printf("%-8s %14s %14s %16s %12s\n", "eps", "pairs", "tree_ms",
              "pairs_compared", "nested_ms");
  for (double epsilon : {1.0, 2.0, 4.0}) {
    QueryStats stats;
    Timer timer;
    const auto pairs = SimilarityJoin(*ta, *tb, epsilon, &stats);
    const double tree_ms = timer.ElapsedMs();
    double nested_ms = 0;
    const uint64_t expected = NestedLoopPairs(da, db, epsilon, &nested_ms);
    std::printf("%-8.0f %14zu %14.1f %16llu %12.1f%s\n", epsilon,
                pairs.size(), tree_ms,
                static_cast<unsigned long long>(stats.transactions_compared),
                nested_ms,
                pairs.size() == expected ? "" : "  RESULT MISMATCH");
  }

  Timer cp_timer;
  const auto closest = ClosestPairs(*ta, *tb, 5);
  std::printf("closest-5 pairs in %.1f ms, best distance %.0f\n",
              cp_timer.ElapsedMs(),
              closest.empty() ? -1.0 : closest.front().distance);
}

void Run() {
  std::printf("=== Section 4.2 (reconstructed): similarity joins and "
              "closest pairs ===\n");
  const uint32_t n = std::max<uint32_t>(1500, ScaledD(200'000) / 8);
  {
    QuestOptions qa = PaperQuest(12, 6, 200'000, 21);
    qa.num_transactions = n;
    QuestOptions qb = qa;
    qb.seed = 22;
    const Dataset da = QuestGenerator(qa).Generate();
    const Dataset db = QuestGenerator(qb).Generate();
    JoinStudy("set data (weak directory bounds)", da, db);
  }
  {
    CensusOptions ca = PaperCensus(31);
    ca.num_tuples = n;
    CensusOptions cb = PaperCensus(32);
    cb.num_tuples = n;
    const Dataset da = CensusGenerator(ca).Generate();
    const Dataset db = CensusGenerator(cb).Generate();
    JoinStudy("categorical data (fixed-dim bounds)", da, db);
  }
  std::printf("\nHonest finding: at these data densities the directory-\n"
              "level pair bounds almost never prune (two covering\n"
              "signatures that share items admit distance-0 transaction\n"
              "pairs), so the tree join approximates the nested loop; it\n"
              "wins only when subtree coverages are (near-)disjoint — see\n"
              "JoinTest.JoinPrunesDisjointData. A plausible reason the\n"
              "published paper leaves Section 4.2's evaluation to future\n"
              "work.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
