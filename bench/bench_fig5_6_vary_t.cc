// Figures 5 and 6: nearest-neighbor search varying the mean transaction
// size T (10..30) with I=6, D=200K. Reports pruning (% data), CPU time and
// random I/Os for the SG-table and the SG-tree.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  PrintHeader("Figures 5/6: NN search varying T (I=6, D=200K)", "T");
  for (double t : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    QuestOptions qopt = PaperQuest(t, 6, 200'000);
    QuestGenerator gen(qopt);
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

    const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
    const SgTable table(dataset, DefaultTableOptions());

    const std::string x = "T=" + std::to_string(static_cast<int>(t));
    PrintRow(x, "SG-table", RunTableKnn(table, queries, 1, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, 1, dataset.size()));
  }
  std::printf("\nExpected shape (paper): similar at small T; the SG-tree\n"
              "pulls ahead as T grows, with a large I/O gap at T=30.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
