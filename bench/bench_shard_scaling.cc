// Shard-scaling benchmark: the Figure-5 NN workload (Quest T=20, I=6,
// D=200K) answered through the scatter-gather QueryRouter at 1, 2, 4 and 8
// shards. Two throughput numbers are reported:
//
//  - modeled QPS: 1e6 / mean(merged elapsed_us). A merged query's
//    elapsed_us is the MAX over its per-shard task times — the
//    scatter-gather service time with one core per shard — so this is the
//    headline scaling curve and must rise monotonically with the shard
//    count regardless of how many cores the host actually has.
//  - measured QPS: batch wall-clock throughput on this machine's worker
//    pool. On a single-core CI runner this stays roughly flat (the fan-out
//    is serialized); with real cores it tracks the modeled curve.
//
// Results are printed as a table and written as JSON to $BENCH_SHARD_JSON
// (default BENCH_shard.json) for the CI artifact.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "data/quest_generator.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"

namespace sgtree::bench {
namespace {

struct ShardRow {
  uint32_t shards = 0;
  double build_ms = 0;
  double wall_ms = 0;
  double measured_qps = 0;
  double modeled_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

void Run() {
  QuestOptions qopt = PaperQuest(20, 6, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const uint32_t batch_n = NumQueries() * 4;
  const auto query_sigs =
      ToSignatures(gen.GenerateQueries(batch_n), dataset.num_items);
  std::vector<QueryRequest> batch;
  batch.reserve(query_sigs.size());
  for (const Signature& sig : query_sigs) {
    QueryRequest request;
    request.type = QueryType::kKnn;
    request.query = sig;
    request.k = 1;
    batch.push_back(std::move(request));
  }

  std::printf("\n=== Shard scaling: NN search (Quest T=20, I=6, D=200K) ===\n");
  std::printf("(scale factor %.2f, %zu transactions, %u-query batch)\n",
              ScaleFactor(), dataset.size(), batch_n);
  std::printf("%-8s %10s %10s %14s %14s %10s %10s\n", "shards", "build_ms",
              "wall_ms", "measured_qps", "modeled_qps", "p50_us", "p99_us");

  std::vector<ShardRow> rows;
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedIndexOptions options;
    options.num_shards = shards;
    options.tree = DefaultTreeOptions(dataset);
    ShardedIndex index(options);
    Timer build_timer;
    index.InsertBatch(dataset.transactions);
    ShardRow row;
    row.shards = shards;
    row.build_ms = build_timer.ElapsedMs();

    QueryExecutor executor;
    QueryRouter router(index, &executor);
    router.Run(batch);  // Warm-up pass (thread pool, allocator).
    const std::vector<QueryResult> results = router.Run(batch);

    double sum_elapsed_us = 0;
    for (const QueryResult& result : results) {
      sum_elapsed_us += result.elapsed_us;
    }
    const BatchReport& report = router.last_batch_report();
    row.wall_ms = report.wall_ms;
    row.measured_qps =
        1000.0 * static_cast<double>(batch.size()) / report.wall_ms;
    row.modeled_qps =
        1e6 * static_cast<double>(results.size()) / sum_elapsed_us;
    row.p50_us = report.p50_us;
    row.p99_us = report.p99_us;
    rows.push_back(row);

    std::printf("%-8u %10.1f %10.1f %14.1f %14.1f %10.1f %10.1f\n",
                row.shards, row.build_ms, row.wall_ms, row.measured_qps,
                row.modeled_qps, row.p50_us, row.p99_us);
  }
  std::printf("\nExpected shape: modeled_qps rises monotonically 1->8 shards\n"
              "(each shard task touches ~1/N of the data; the merged service\n"
              "time is the slowest shard). measured_qps needs real cores.\n");

  const char* env = std::getenv("BENCH_SHARD_JSON");
  const std::string path = env != nullptr ? env : "BENCH_shard.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  file << "{\"experiment\": \"shard_scaling_nn_t20_i6_d200k\""
       << ", \"scale_factor\": " << ScaleFactor()
       << ", \"batch_queries\": " << batch_n << ", \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const ShardRow& row = rows[i];
    file << "  {\"shards\": " << row.shards
         << ", \"build_ms\": " << row.build_ms
         << ", \"wall_ms\": " << row.wall_ms
         << ", \"measured_qps\": " << row.measured_qps
         << ", \"modeled_qps\": " << row.modeled_qps
         << ", \"p50_us\": " << row.p50_us << ", \"p99_us\": " << row.p99_us
         << "}" << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  file << "]}\n";
  std::printf("wrote %zu shard-scaling rows to %s\n", rows.size(),
              path.c_str());
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
