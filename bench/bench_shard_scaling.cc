// Shard-scaling benchmark: the Figure-5 NN workload (Quest T=20, I=6,
// D=200K) answered through the scatter-gather QueryRouter at 1, 2, 4 and 8
// shards. Two throughput numbers are reported:
//
//  - modeled QPS: 1e6 / mean(merged elapsed_us). A merged query's
//    elapsed_us is the MAX over its per-shard task times — the
//    scatter-gather service time with one core per shard — so this is the
//    headline scaling curve and must rise monotonically with the shard
//    count regardless of how many cores the host actually has.
//  - measured QPS: batch wall-clock throughput on this machine's worker
//    pool. On a single-core CI runner this cannot track the modeled curve
//    (there is one core, not one per shard), which is why the JSON also
//    carries `cores`, the total backend service time `task_us`, and the
//    core-independent dispatch efficiency
//        efficiency = task_us / (wall_ms * 1000 * cores)
//    — the fraction of the machine the lanes kept busy doing real query
//    work. tools/check_shard_bench.py gates on this, not on raw QPS.
//
// A second table ablates the router's scheduling modes at the top shard
// count, one knob at a time from the legacy scheduler to the default:
//
//    legacy    : per-item claiming + query-major grid + barrier merge
//    +chunked  : chunked claiming / work stealing (executor max_chunk auto)
//    +slices   : shard-major slice tasks (pool warm per slice)
//    +overlap  : overlapped gather (the default configuration)
//
// Results are printed as tables and written as JSON to $BENCH_SHARD_JSON
// (default BENCH_shard.json) for the CI artifact.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "data/quest_generator.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"

namespace sgtree::bench {
namespace {

struct ShardRow {
  std::string label;
  uint32_t shards = 0;
  double build_ms = 0;
  double wall_ms = 0;
  double measured_qps = 0;
  double modeled_qps = 0;
  double task_us = 0;
  double efficiency = 0;
  double p50_us = 0;
  double p99_us = 0;
};

uint32_t Cores() {
  const uint32_t n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

// One warm-up pass plus one measured pass of `batch` through a fresh
// router in the given mode.
ShardRow Measure(const ShardedIndex& index, QueryExecutor* executor,
                 const std::vector<QueryRequest>& batch,
                 const QueryRouterOptions& router_options,
                 const std::string& label) {
  QueryRouter router(index, executor, router_options);
  router.Run(batch);  // Warm-up pass (thread pool, allocator, scratch).
  const std::vector<QueryResult> results = router.Run(batch);

  double sum_elapsed_us = 0;
  for (const QueryResult& result : results) {
    sum_elapsed_us += result.elapsed_us;
  }
  const BatchReport& report = router.last_batch_report();
  ShardRow row;
  row.label = label;
  row.shards = index.num_shards();
  row.wall_ms = report.wall_ms;
  row.measured_qps =
      1000.0 * static_cast<double>(batch.size()) / report.wall_ms;
  row.modeled_qps =
      1e6 * static_cast<double>(results.size()) / sum_elapsed_us;
  row.task_us = report.task_us;
  row.efficiency = report.task_us / (report.wall_ms * 1000.0 * Cores());
  row.p50_us = report.p50_us;
  row.p99_us = report.p99_us;
  return row;
}

void PrintRow(const ShardRow& row, const char* first_col) {
  std::printf("%-10s %10.1f %14.1f %14.1f %11.3f %10.1f %10.1f\n", first_col,
              row.wall_ms, row.measured_qps, row.modeled_qps, row.efficiency,
              row.p50_us, row.p99_us);
}

void WriteRow(std::ofstream& file, const ShardRow& row, bool last) {
  file << "  {\"label\": \"" << row.label << "\", \"shards\": " << row.shards
       << ", \"build_ms\": " << row.build_ms
       << ", \"wall_ms\": " << row.wall_ms
       << ", \"measured_qps\": " << row.measured_qps
       << ", \"modeled_qps\": " << row.modeled_qps
       << ", \"task_us\": " << row.task_us
       << ", \"efficiency\": " << row.efficiency
       << ", \"p50_us\": " << row.p50_us << ", \"p99_us\": " << row.p99_us
       << "}" << (last ? "\n" : ",\n");
}

void Run() {
  QuestOptions qopt = PaperQuest(20, 6, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const uint32_t batch_n = NumQueries() * 4;
  const auto query_sigs =
      ToSignatures(gen.GenerateQueries(batch_n), dataset.num_items);
  std::vector<QueryRequest> batch;
  batch.reserve(query_sigs.size());
  for (const Signature& sig : query_sigs) {
    QueryRequest request;
    request.type = QueryType::kKnn;
    request.query = sig;
    request.k = 1;
    batch.push_back(std::move(request));
  }

  std::printf("\n=== Shard scaling: NN search (Quest T=20, I=6, D=200K) ===\n");
  std::printf("(scale factor %.2f, %zu transactions, %u-query batch, "
              "%u cores)\n",
              ScaleFactor(), dataset.size(), batch_n, Cores());
  std::printf("%-10s %10s %14s %14s %11s %10s %10s\n", "shards", "wall_ms",
              "measured_qps", "modeled_qps", "efficiency", "p50_us",
              "p99_us");

  std::vector<ShardRow> rows;
  std::unique_ptr<ShardedIndex> top_index;  // Reused by the ablation below.
  for (uint32_t shards : {1u, 2u, 4u, 8u}) {
    ShardedIndexOptions options;
    options.num_shards = shards;
    options.tree = DefaultTreeOptions(dataset);
    auto index = std::make_unique<ShardedIndex>(options);
    Timer build_timer;
    index->InsertBatch(dataset.transactions);
    const double build_ms = build_timer.ElapsedMs();

    QueryExecutor executor;
    ShardRow row = Measure(*index, &executor, batch, QueryRouterOptions{},
                           "scaling");
    row.build_ms = build_ms;
    rows.push_back(row);
    PrintRow(row, std::to_string(shards).c_str());
    top_index = std::move(index);
  }
  std::printf("\nExpected shape: modeled_qps rises monotonically 1->8 shards\n"
              "(each shard task touches ~1/N of the data; the merged service\n"
              "time is the slowest shard). measured_qps needs real cores;\n"
              "efficiency is the core-count-independent health number.\n");

  // Scheduling-mode ablation at the top shard count, one knob at a time.
  struct Mode {
    const char* label;
    uint32_t max_chunk;  // Executor claiming granularity (1 = per item).
    bool shard_major;
    bool overlap_merge;
  };
  const Mode kModes[] = {
      {"legacy", 1, false, false},
      {"+chunked", 0, false, false},
      {"+slices", 0, true, false},
      {"+overlap", 0, true, true},
  };
  std::printf("\n--- Scheduling ablation at %u shards ---\n",
              top_index->num_shards());
  std::printf("%-10s %10s %14s %14s %11s %10s %10s\n", "mode", "wall_ms",
              "measured_qps", "modeled_qps", "efficiency", "p50_us",
              "p99_us");
  std::vector<ShardRow> ablation;
  for (const Mode& mode : kModes) {
    QueryExecutorOptions exec_options;
    exec_options.max_chunk = mode.max_chunk;
    QueryExecutor executor(exec_options);
    QueryRouterOptions router_options;
    router_options.shard_major = mode.shard_major;
    router_options.overlap_merge = mode.overlap_merge;
    const ShardRow row =
        Measure(*top_index, &executor, batch, router_options, mode.label);
    ablation.push_back(row);
    PrintRow(row, mode.label);
  }

  const char* env = std::getenv("BENCH_SHARD_JSON");
  const std::string path = env != nullptr ? env : "BENCH_shard.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  file << "{\"experiment\": \"shard_scaling_nn_t20_i6_d200k\""
       << ", \"scale_factor\": " << ScaleFactor()
       << ", \"batch_queries\": " << batch_n << ", \"cores\": " << Cores()
       << ", \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    WriteRow(file, rows[i], i + 1 == rows.size());
  }
  file << "], \"ablation\": [\n";
  for (size_t i = 0; i < ablation.size(); ++i) {
    WriteRow(file, ablation[i], i + 1 == ablation.size());
  }
  file << "]}\n";
  std::printf("wrote %zu scaling + %zu ablation rows to %s\n", rows.size(),
              ablation.size(), path.c_str());
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
