#ifndef SGTREE_BENCH_BENCH_COMMON_H_
#define SGTREE_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/stats.h"
#include "data/census_generator.h"
#include "data/quest_generator.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "obs/percentile.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

namespace sgtree::bench {

/// Scale control. The paper's experiments run at D = 100K-500K; the bench
/// binaries default to 10% of the paper's cardinalities so the whole
/// harness completes in minutes on a laptop. Set SG_BENCH_SCALE=full (or a
/// factor like 0.5) to approach paper scale, SG_BENCH_QUERIES to change the
/// per-instance query count (paper: 100).
inline double ScaleFactor() {
  const char* env = std::getenv("SG_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  const std::string value(env);
  if (value == "full") return 1.0;
  const double factor = std::atof(env);
  return factor > 0 ? factor : 0.1;
}

inline uint32_t ScaledD(uint32_t paper_d) {
  const auto d = static_cast<uint32_t>(paper_d * ScaleFactor());
  return d < 1000 ? 1000 : d;
}

inline uint32_t NumQueries() {
  const char* env = std::getenv("SG_BENCH_QUERIES");
  if (env == nullptr) return 50;
  const int n = std::atoi(env);
  return n > 0 ? static_cast<uint32_t>(n) : 50;
}

/// Quest options matching the paper's synthetic instances: dictionary of
/// 1000 items and a pattern pool that scales with D so the transactions-
/// per-pattern density (and therefore the cluster structure) matches the
/// paper's full-scale datasets.
inline QuestOptions PaperQuest(double t, double i, uint32_t paper_d,
                               uint64_t seed = 1) {
  QuestOptions options;
  options.num_transactions = ScaledD(paper_d);
  options.avg_transaction_size = t;
  options.avg_itemset_size = i;
  options.num_items = 1000;
  options.num_patterns = std::max<uint32_t>(
      100, static_cast<uint32_t>(2000 * ScaleFactor()));
  options.seed = seed;
  return options;
}

inline CensusOptions PaperCensus(uint64_t seed = 7) {
  CensusOptions options;
  options.num_tuples = ScaledD(200'000);
  options.seed = seed;
  return options;
}

/// Default index configurations used across the experiments.
inline SgTreeOptions DefaultTreeOptions(const Dataset& dataset) {
  SgTreeOptions options;
  options.num_bits = dataset.num_items;
  options.fixed_dimensionality = dataset.fixed_dimensionality;
  options.split_policy = SplitPolicy::kAverage;  // Section 5.2 pick.
  options.buffer_pages = 64;
  return options;
}

inline SgTableOptions DefaultTableOptions() {
  SgTableOptions options;
  options.clustering.num_signatures = 12;
  options.clustering.critical_mass_fraction = 0.1;
  options.activation_threshold = 2;
  return options;
}

/// Builds the SG-tree by per-transaction insertion (the structure the
/// paper's experiments measure) and returns the build wall time.
struct BuiltTree {
  std::unique_ptr<SgTree> tree;
  double build_ms = 0;
};

inline BuiltTree BuildTree(const Dataset& dataset,
                           const SgTreeOptions& options) {
  BuiltTree built;
  built.tree = std::make_unique<SgTree>(options);
  Timer timer;
  for (const Transaction& txn : dataset.transactions) {
    built.tree->Insert(txn);
  }
  built.build_ms = timer.ElapsedMs();
  return built;
}

/// Per-method aggregate over a query workload: the three series the paper's
/// combined diagrams report, plus exact per-query latency percentiles.
struct MethodResult {
  double pct_data = 0;   // % of transactions compared per query.
  double cpu_ms = 0;     // CPU time per query (ms).
  double random_ios = 0; // Random I/Os per query.
  double p50_us = 0;     // Nearest-rank percentiles of per-query wall time.
  double p95_us = 0;
  double p99_us = 0;
};

/// Nearest-rank percentile; sorts `latencies_us` in place. Thin wrapper
/// over the shared definition in obs/percentile.h so bench tables, executor
/// reports, and router reports all agree on what "p99" means.
inline double LatencyPercentileUs(std::vector<double>& latencies_us,
                                  double p) {
  return obs::SortAndPercentile(latencies_us, p);
}

inline void FillPercentiles(std::vector<double>& latencies_us,
                            MethodResult* result) {
  result->p50_us = LatencyPercentileUs(latencies_us, 50);
  result->p95_us = LatencyPercentileUs(latencies_us, 95);
  result->p99_us = LatencyPercentileUs(latencies_us, 99);
}

inline std::vector<Signature> ToSignatures(
    const std::vector<Transaction>& queries, uint32_t num_bits) {
  std::vector<Signature> sigs;
  sigs.reserve(queries.size());
  for (const Transaction& q : queries) {
    sigs.push_back(Signature::FromItems(q.items, num_bits));
  }
  return sigs;
}

/// Runs k-NN queries against the tree with a cold buffer per query (the
/// paper measures per-query random I/O).
inline MethodResult RunTreeKnn(SgTree& tree,
                               const std::vector<Signature>& queries,
                               uint32_t k, size_t dataset_size) {
  QueryStats stats;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size());
  Timer timer;
  const SgTreeBackend backend(tree);
  for (const Signature& q : queries) {
    tree.buffer_pool().Clear();
    QueryRequest request;
    request.type = QueryType::kKnn;
    request.query = q;
    request.k = k;
    Timer per_query;
    const QueryResult r = Execute(backend, request, &tree.buffer_pool());
    latencies_us.push_back(per_query.ElapsedMs() * 1000.0);
    stats += r.stats;
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  MethodResult result{100.0 * stats.transactions_compared / (n * dataset_size),
                      elapsed / n, stats.random_ios / n};
  FillPercentiles(latencies_us, &result);
  return result;
}

inline MethodResult RunTableKnn(const SgTable& table,
                                const std::vector<Signature>& queries,
                                uint32_t k, size_t dataset_size) {
  QueryStats stats;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size());
  Timer timer;
  for (const Signature& q : queries) {
    Timer per_query;
    table.KNearest(q, k, &stats);
    latencies_us.push_back(per_query.ElapsedMs() * 1000.0);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  MethodResult result{100.0 * stats.transactions_compared / (n * dataset_size),
                      elapsed / n, stats.random_ios / n};
  FillPercentiles(latencies_us, &result);
  return result;
}

inline MethodResult RunTreeRange(SgTree& tree,
                                 const std::vector<Signature>& queries,
                                 double epsilon, size_t dataset_size) {
  QueryStats stats;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size());
  Timer timer;
  const SgTreeBackend backend(tree);
  for (const Signature& q : queries) {
    tree.buffer_pool().Clear();
    QueryRequest request;
    request.type = QueryType::kRange;
    request.query = q;
    request.epsilon = epsilon;
    Timer per_query;
    const QueryResult r = Execute(backend, request, &tree.buffer_pool());
    latencies_us.push_back(per_query.ElapsedMs() * 1000.0);
    stats += r.stats;
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  MethodResult result{100.0 * stats.transactions_compared / (n * dataset_size),
                      elapsed / n, stats.random_ios / n};
  FillPercentiles(latencies_us, &result);
  return result;
}

inline MethodResult RunTableRange(const SgTable& table,
                                  const std::vector<Signature>& queries,
                                  double epsilon, size_t dataset_size) {
  QueryStats stats;
  std::vector<double> latencies_us;
  latencies_us.reserve(queries.size());
  Timer timer;
  for (const Signature& q : queries) {
    Timer per_query;
    table.Range(q, epsilon, &stats);
    latencies_us.push_back(per_query.ElapsedMs() * 1000.0);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  MethodResult result{100.0 * stats.transactions_compared / (n * dataset_size),
                      elapsed / n, stats.random_ios / n};
  FillPercentiles(latencies_us, &result);
  return result;
}

/// Machine-readable sink for the printed rows: every PrintRow is also
/// recorded here, and the collected rows are flushed as JSON at process
/// exit to $SG_BENCH_JSON_OUT (default sg_bench_metrics.json). Nothing is
/// written when no row was recorded — binaries that only print free-form
/// output leave no file behind.
class BenchJsonCollector {
 public:
  static BenchJsonCollector& Instance() {
    static BenchJsonCollector collector;
    return collector;
  }

  void SetExperiment(const std::string& title) { experiment_ = title; }

  void Add(const std::string& x, const std::string& method,
           const MethodResult& result) {
    rows_.push_back({experiment_, x, method, result});
  }

  ~BenchJsonCollector() {
    if (rows_.empty()) return;
    const char* env = std::getenv("SG_BENCH_JSON_OUT");
    const std::string path = env != nullptr ? env : "sg_bench_metrics.json";
    std::ofstream file(path);
    if (!file) return;
    file << "{\"scale_factor\": " << ScaleFactor()
         << ", \"queries_per_instance\": " << NumQueries()
         << ", \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      file << "  {\"experiment\": \"" << Escaped(row.experiment)
           << "\", \"x\": \"" << Escaped(row.x) << "\", \"method\": \""
           << Escaped(row.method)
           << "\", \"pct_data\": " << row.result.pct_data
           << ", \"cpu_ms\": " << row.result.cpu_ms
           << ", \"random_ios\": " << row.result.random_ios
           << ", \"p50_us\": " << row.result.p50_us
           << ", \"p95_us\": " << row.result.p95_us
           << ", \"p99_us\": " << row.result.p99_us << "}"
           << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    file << "]}\n";
    std::printf("wrote %zu bench rows to %s\n", rows_.size(), path.c_str());
  }

 private:
  struct Row {
    std::string experiment;
    std::string x;
    std::string method;
    MethodResult result;
  };

  static std::string Escaped(const std::string& text) {
    std::string escaped;
    for (const char c : text) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    return escaped;
  }

  std::string experiment_;
  std::vector<Row> rows_;
};

/// Table printing helpers: one row per (x, method).
inline void PrintHeader(const std::string& title, const std::string& x_name) {
  BenchJsonCollector::Instance().SetExperiment(title);
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(scale factor %.2f, %u queries per instance)\n", ScaleFactor(),
              NumQueries());
  std::printf("%-14s %-10s %12s %12s %14s %10s %10s\n", x_name.c_str(),
              "method", "%data", "cpu_ms", "random_ios", "p95_us", "p99_us");
}

inline void PrintRow(const std::string& x, const std::string& method,
                     const MethodResult& result) {
  BenchJsonCollector::Instance().Add(x, method, result);
  std::printf("%-14s %-10s %12.2f %12.3f %14.1f %10.1f %10.1f\n", x.c_str(),
              method.c_str(), result.pct_data, result.cpu_ms,
              result.random_ios, result.p95_us, result.p99_us);
}

}  // namespace sgtree::bench

#endif  // SGTREE_BENCH_BENCH_COMMON_H_
