#ifndef SGTREE_BENCH_BENCH_COMMON_H_
#define SGTREE_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "baseline/linear_scan.h"
#include "common/stats.h"
#include "data/census_generator.h"
#include "data/quest_generator.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

namespace sgtree::bench {

/// Scale control. The paper's experiments run at D = 100K-500K; the bench
/// binaries default to 10% of the paper's cardinalities so the whole
/// harness completes in minutes on a laptop. Set SG_BENCH_SCALE=full (or a
/// factor like 0.5) to approach paper scale, SG_BENCH_QUERIES to change the
/// per-instance query count (paper: 100).
inline double ScaleFactor() {
  const char* env = std::getenv("SG_BENCH_SCALE");
  if (env == nullptr) return 0.1;
  const std::string value(env);
  if (value == "full") return 1.0;
  const double factor = std::atof(env);
  return factor > 0 ? factor : 0.1;
}

inline uint32_t ScaledD(uint32_t paper_d) {
  const auto d = static_cast<uint32_t>(paper_d * ScaleFactor());
  return d < 1000 ? 1000 : d;
}

inline uint32_t NumQueries() {
  const char* env = std::getenv("SG_BENCH_QUERIES");
  if (env == nullptr) return 50;
  const int n = std::atoi(env);
  return n > 0 ? static_cast<uint32_t>(n) : 50;
}

/// Quest options matching the paper's synthetic instances: dictionary of
/// 1000 items and a pattern pool that scales with D so the transactions-
/// per-pattern density (and therefore the cluster structure) matches the
/// paper's full-scale datasets.
inline QuestOptions PaperQuest(double t, double i, uint32_t paper_d,
                               uint64_t seed = 1) {
  QuestOptions options;
  options.num_transactions = ScaledD(paper_d);
  options.avg_transaction_size = t;
  options.avg_itemset_size = i;
  options.num_items = 1000;
  options.num_patterns = std::max<uint32_t>(
      100, static_cast<uint32_t>(2000 * ScaleFactor()));
  options.seed = seed;
  return options;
}

inline CensusOptions PaperCensus(uint64_t seed = 7) {
  CensusOptions options;
  options.num_tuples = ScaledD(200'000);
  options.seed = seed;
  return options;
}

/// Default index configurations used across the experiments.
inline SgTreeOptions DefaultTreeOptions(const Dataset& dataset) {
  SgTreeOptions options;
  options.num_bits = dataset.num_items;
  options.fixed_dimensionality = dataset.fixed_dimensionality;
  options.split_policy = SplitPolicy::kAverage;  // Section 5.2 pick.
  options.buffer_pages = 64;
  return options;
}

inline SgTableOptions DefaultTableOptions() {
  SgTableOptions options;
  options.clustering.num_signatures = 12;
  options.clustering.critical_mass_fraction = 0.1;
  options.activation_threshold = 2;
  return options;
}

/// Builds the SG-tree by per-transaction insertion (the structure the
/// paper's experiments measure) and returns the build wall time.
struct BuiltTree {
  std::unique_ptr<SgTree> tree;
  double build_ms = 0;
};

inline BuiltTree BuildTree(const Dataset& dataset,
                           const SgTreeOptions& options) {
  BuiltTree built;
  built.tree = std::make_unique<SgTree>(options);
  Timer timer;
  for (const Transaction& txn : dataset.transactions) {
    built.tree->Insert(txn);
  }
  built.build_ms = timer.ElapsedMs();
  return built;
}

/// Per-method aggregate over a query workload: the three series the paper's
/// combined diagrams report.
struct MethodResult {
  double pct_data = 0;   // % of transactions compared per query.
  double cpu_ms = 0;     // CPU time per query (ms).
  double random_ios = 0; // Random I/Os per query.
};

inline std::vector<Signature> ToSignatures(
    const std::vector<Transaction>& queries, uint32_t num_bits) {
  std::vector<Signature> sigs;
  sigs.reserve(queries.size());
  for (const Transaction& q : queries) {
    sigs.push_back(Signature::FromItems(q.items, num_bits));
  }
  return sigs;
}

/// Runs k-NN queries against the tree with a cold buffer per query (the
/// paper measures per-query random I/O).
inline MethodResult RunTreeKnn(SgTree& tree,
                               const std::vector<Signature>& queries,
                               uint32_t k, size_t dataset_size) {
  QueryStats stats;
  Timer timer;
  for (const Signature& q : queries) {
    tree.buffer_pool().Clear();
    DfsKNearest(tree, q, k, &stats);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  return {100.0 * stats.transactions_compared / (n * dataset_size),
          elapsed / n, stats.random_ios / n};
}

inline MethodResult RunTableKnn(const SgTable& table,
                                const std::vector<Signature>& queries,
                                uint32_t k, size_t dataset_size) {
  QueryStats stats;
  Timer timer;
  for (const Signature& q : queries) {
    table.KNearest(q, k, &stats);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  return {100.0 * stats.transactions_compared / (n * dataset_size),
          elapsed / n, stats.random_ios / n};
}

inline MethodResult RunTreeRange(SgTree& tree,
                                 const std::vector<Signature>& queries,
                                 double epsilon, size_t dataset_size) {
  QueryStats stats;
  Timer timer;
  for (const Signature& q : queries) {
    tree.buffer_pool().Clear();
    RangeSearch(tree, q, epsilon, &stats);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  return {100.0 * stats.transactions_compared / (n * dataset_size),
          elapsed / n, stats.random_ios / n};
}

inline MethodResult RunTableRange(const SgTable& table,
                                  const std::vector<Signature>& queries,
                                  double epsilon, size_t dataset_size) {
  QueryStats stats;
  Timer timer;
  for (const Signature& q : queries) {
    table.Range(q, epsilon, &stats);
  }
  const double elapsed = timer.ElapsedMs();
  const double n = static_cast<double>(queries.size());
  return {100.0 * stats.transactions_compared / (n * dataset_size),
          elapsed / n, stats.random_ios / n};
}

/// Table printing helpers: one row per (x, method).
inline void PrintHeader(const std::string& title, const std::string& x_name) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("(scale factor %.2f, %u queries per instance)\n", ScaleFactor(),
              NumQueries());
  std::printf("%-14s %-10s %12s %12s %14s\n", x_name.c_str(), "method",
              "%data", "cpu_ms", "random_ios");
}

inline void PrintRow(const std::string& x, const std::string& method,
                     const MethodResult& result) {
  std::printf("%-14s %-10s %12.2f %12.3f %14.1f\n", x.c_str(), method.c_str(),
              result.pct_data, result.cpu_ms, result.random_ios);
}

}  // namespace sgtree::bench

#endif  // SGTREE_BENCH_BENCH_COMMON_H_
