// Section 6 future work: "the cost of existing categorical clustering
// methods is at least O(n^2); the tree could be used to derive good
// clusters much faster, e.g. by merging the leaf nodes using their
// signatures as guides." Compares leaf-guided clustering against direct
// agglomerative clustering of raw transactions on planted-cluster data:
// wall time and cluster purity.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "sgtree/clustering.h"

namespace sgtree::bench {
namespace {

// Direct single-linkage agglomerative clustering of raw transactions down
// to k clusters — the O(n^2)-and-worse baseline the paper mentions.
std::vector<std::vector<uint64_t>> DirectClustering(
    const std::vector<Signature>& sigs, const std::vector<uint64_t>& tids,
    uint32_t k) {
  struct Cluster {
    Signature sig;
    std::vector<uint64_t> members;
    bool active = true;
  };
  std::vector<Cluster> clusters;
  for (size_t i = 0; i < sigs.size(); ++i) {
    clusters.push_back({sigs[i], {tids[i]}, true});
  }
  size_t active = clusters.size();
  while (active > k) {
    size_t best_a = 0;
    size_t best_b = 0;
    uint32_t best = ~0u;
    for (size_t a = 0; a < clusters.size(); ++a) {
      if (!clusters[a].active) continue;
      for (size_t b = a + 1; b < clusters.size(); ++b) {
        if (!clusters[b].active) continue;
        const uint32_t d =
            Signature::XorCount(clusters[a].sig, clusters[b].sig);
        if (d < best) {
          best = d;
          best_a = a;
          best_b = b;
        }
      }
    }
    clusters[best_a].sig.UnionWith(clusters[best_b].sig);
    clusters[best_a].members.insert(clusters[best_a].members.end(),
                                    clusters[best_b].members.begin(),
                                    clusters[best_b].members.end());
    clusters[best_b].active = false;
    --active;
  }
  std::vector<std::vector<uint64_t>> result;
  for (const Cluster& c : clusters) {
    if (c.active) result.push_back(c.members);
  }
  return result;
}

double Purity(const std::vector<std::vector<uint64_t>>& clusters,
              uint32_t per_cluster, uint32_t k, size_t total) {
  uint64_t pure = 0;
  for (const auto& members : clusters) {
    std::vector<uint64_t> counts(k, 0);
    for (uint64_t tid : members) {
      ++counts[std::min<uint64_t>(tid / per_cluster, k - 1)];
    }
    pure += *std::max_element(counts.begin(), counts.end());
  }
  return static_cast<double>(pure) / static_cast<double>(total);
}

void Run() {
  // Planted ground truth: k groups drawing 10-item transactions from
  // mostly-disjoint 80-item bands of a 1000-item dictionary.
  const uint32_t k = 8;
  const uint32_t per_cluster =
      std::max<uint32_t>(250, ScaledD(200'000) / (2 * k));
  const uint32_t num_items = 1000;
  Dataset dataset;
  dataset.num_items = num_items;
  Rng rng(71);
  for (uint32_t c = 0; c < k; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      Transaction txn;
      txn.tid = static_cast<uint64_t>(c) * per_cluster + i;
      while (txn.items.size() < 10) {
        const auto item =
            static_cast<ItemId>(c * 100 + rng.UniformInt(80));
        if (std::find(txn.items.begin(), txn.items.end(), item) ==
            txn.items.end()) {
          txn.items.push_back(item);
        }
      }
      std::sort(txn.items.begin(), txn.items.end());
      dataset.transactions.push_back(std::move(txn));
    }
  }
  const size_t n = dataset.size();
  std::printf("=== Leaf-guided clustering (Section 6), %zu transactions, "
              "%u planted clusters ===\n\n", n, k);

  // Tree build + leaf-merge clustering.
  SgTreeOptions options = DefaultTreeOptions(dataset);
  Timer tree_timer;
  const BuiltTree built = BuildTree(dataset, options);
  const auto leaf_clusters = ClusterByLeaves(*built.tree, k);
  const double tree_ms = tree_timer.ElapsedMs();
  std::vector<std::vector<uint64_t>> leaf_result;
  for (const auto& cluster : leaf_clusters) {
    leaf_result.push_back(cluster.tids);
  }

  // Direct agglomerative baseline on a capped sample (O(n^3) blows up
  // beyond a few thousand transactions — which is the paper's point).
  const size_t direct_n = std::min<size_t>(n, 1500);
  std::vector<Signature> sigs;
  std::vector<uint64_t> tids;
  Rng sample_rng(72);
  for (size_t i = 0; i < direct_n; ++i) {
    const auto& txn =
        dataset.transactions[sample_rng.UniformInt(dataset.size())];
    sigs.push_back(Signature::FromItems(txn.items, num_items));
    tids.push_back(txn.tid);
  }
  Timer direct_timer;
  const auto direct_result = DirectClustering(sigs, tids, k);
  const double direct_ms = direct_timer.ElapsedMs();

  std::printf("%-28s %10s %12s %10s\n", "method", "n", "time_ms", "purity");
  std::printf("%-28s %10zu %12.0f %10.3f\n", "tree build + leaf merge", n,
              tree_ms, Purity(leaf_result, per_cluster, k, n));
  std::printf("%-28s %10zu %12.0f %10.3f\n",
              "direct single-linkage HAC", direct_n, direct_ms,
              Purity(direct_result, per_cluster, k, direct_n));
  std::printf("\nLeaf-guided clustering processes the FULL collection in\n"
              "roughly the time the direct method needs for a small sample\n"
              "— the speedup the paper's future-work section predicts.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
