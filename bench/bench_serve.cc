// Serving-path load generator (DESIGN.md §10): starts an in-process
// sgtree_serve server over a replicated static index and drives it through
// the wire client in two regimes:
//
//  1. Closed loop — a few clients issuing back-to-back requests. This is
//     the capacity baseline: achieved QPS is what the serving stack can
//     sustain when nobody is queueing.
//  2. Open loop — an offered-load sweep (1k toward 100k QPS). Each request
//     has a SCHEDULED send time (start + i/rate) and its latency is
//     measured from that schedule, not from the actual send, so queueing
//     delay counts and a generator that falls behind cannot hide the tail
//     (the coordinated-omission trap). Query keys are Zipf-skewed over a
//     pool larger than the result cache, so the cache sees realistic reuse
//     (hot keys hit, the tail misses and exercises the full
//     admission -> batcher -> replica path). Past saturation the admission
//     budget sheds with BUSY — the sweep's top row is expected to shed,
//     and tools/check_serve_bench.py gates on exactly that.
//
// Writes BENCH_serve.json ($BENCH_SERVE_JSON overrides the path) with the
// closed-loop baseline, one row per offered load, and the cache/hedge
// counters scraped from the server's registry.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "data/quest_generator.h"
#include "exec/query_api.h"
#include "obs/metrics.h"
#include "obs/percentile.h"
#include "server/client.h"
#include "server/server.h"
#include "shard/sharded_index.h"

namespace sgtree::bench {
namespace {

using Clock = std::chrono::steady_clock;

// Sized so the sweep's top row must shed: the open-loop generator runs more
// threads than the admission budget, and the query pool is 8x the cache, so
// the Zipf tail keeps missing — misses hold their admission slot through the
// batcher's linger window, which is what piles up in-flight work past the
// budget at saturation.
constexpr uint32_t kShards = 2;
constexpr uint32_t kReplicas = 2;
constexpr uint32_t kMaxInflight = 8;
constexpr uint32_t kClosedClients = 4;
constexpr uint32_t kOpenThreads = 32;
constexpr size_t kCacheEntries = 1024;
constexpr size_t kPoolSize = 8192;
constexpr double kZipfTheta = 0.9;
constexpr double kRowSeconds = 0.5;

struct LoadResult {
  double offered_qps = 0;  // 0 = closed loop.
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t busy = 0;
  uint64_t errors = 0;
  double achieved_qps = 0;
  double p50_us = 0;
  double p99_us = 0;
};

// A fixed pool of requests cycling all six query types over Quest queries
// drawn from the dataset's own pattern pool. The Zipf sampler picks indexes
// into this pool, so "key popularity" and "query type" are independent.
std::vector<QueryRequest> BuildPool(QuestGenerator& gen, uint32_t num_bits) {
  const std::vector<Transaction> queries =
      gen.GenerateQueries(static_cast<uint32_t>(kPoolSize));
  std::vector<QueryRequest> pool;
  pool.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    QueryRequest request;
    request.type = static_cast<QueryType>(i % 6);
    request.query = Signature::FromItems(queries[i].items, num_bits);
    request.k = 8;
    request.epsilon = 12.0;
    pool.push_back(std::move(request));
  }
  return pool;
}

// One load phase. offered_qps == 0 runs closed-loop (no schedule, each
// thread back-to-back); otherwise requests fire on the shared open-loop
// schedule and latency is measured from the scheduled instant.
LoadResult RunLoad(uint16_t port, const std::vector<QueryRequest>& pool,
                   double offered_qps, uint32_t num_threads, uint64_t total) {
  LoadResult row;
  row.offered_qps = offered_qps;

  std::atomic<uint64_t> next{0};
  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> busy{0};
  std::atomic<uint64_t> errors{0};
  std::vector<std::vector<double>> latencies(num_threads);

  // Give every thread time to connect before the schedule opens.
  const Clock::time_point start =
      Clock::now() + std::chrono::milliseconds(100);

  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (uint32_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      serve::Client client;
      if (!client.Connect("127.0.0.1", port, 5000)) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      Rng rng(0x5e7fe + t);
      const ZipfSampler zipf(static_cast<uint32_t>(pool.size()), kZipfTheta);
      std::vector<double>& lat = latencies[t];
      lat.reserve(total / num_threads + 1);
      while (true) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= total) break;
        Clock::time_point scheduled = Clock::now();
        if (offered_qps > 0) {
          scheduled =
              start + std::chrono::microseconds(static_cast<int64_t>(
                          1e6 * static_cast<double>(i) / offered_qps));
          std::this_thread::sleep_until(scheduled);
        }
        QueryResult result;
        const serve::Client::Status status =
            client.Query(pool[zipf.Sample(rng)], &result);
        const double us = std::chrono::duration<double, std::micro>(
                              Clock::now() - scheduled)
                              .count();
        switch (status) {
          case serve::Client::Status::kOk:
            ok.fetch_add(1, std::memory_order_relaxed);
            lat.push_back(us);
            break;
          case serve::Client::Status::kBusy:
            busy.fetch_add(1, std::memory_order_relaxed);
            break;
          default:
            errors.fetch_add(1, std::memory_order_relaxed);
            return;  // Connection is gone; stop this worker.
        }
      }
    });
  }
  const Clock::time_point t0 = start;
  for (std::thread& thread : threads) thread.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  std::vector<double> all;
  for (std::vector<double>& lat : latencies) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  row.sent = next.load() < total ? next.load() : total;
  row.ok = ok.load();
  row.busy = busy.load();
  row.errors = errors.load();
  row.achieved_qps = wall_s > 0 ? static_cast<double>(row.ok) / wall_s : 0;
  row.p50_us = obs::SortAndPercentile(all, 50);
  row.p99_us = obs::NearestRankPercentile(all, 99);
  return row;
}

void PrintLoadRow(const char* label, const LoadResult& row) {
  std::printf("%-12s %10lu %10lu %8lu %8lu %12.0f %10.0f %10.0f\n", label,
              static_cast<unsigned long>(row.sent),
              static_cast<unsigned long>(row.ok),
              static_cast<unsigned long>(row.busy),
              static_cast<unsigned long>(row.errors), row.achieved_qps,
              row.p50_us, row.p99_us);
}

void WriteRow(std::ofstream& out, const LoadResult& row, bool last) {
  out << "    {\"offered_qps\": " << row.offered_qps
      << ", \"sent\": " << row.sent << ", \"ok\": " << row.ok
      << ", \"busy\": " << row.busy << ", \"errors\": " << row.errors
      << ", \"achieved_qps\": " << row.achieved_qps
      << ", \"p50_us\": " << row.p50_us << ", \"p99_us\": " << row.p99_us
      << "}" << (last ? "\n" : ",\n");
}

int Main() {
  const double scale = ScaleFactor();
  std::printf("=== serving-path load generator (scale %.2f) ===\n", scale);

  // Dataset + static manifest the replicas re-open.
  QuestOptions qopt = PaperQuest(10, 4, 100'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();

  ShardedIndexOptions sopt;
  sopt.num_shards = kShards;
  sopt.tree = DefaultTreeOptions(dataset);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() /
      ("bench_serve." + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string manifest = (dir / "static.sgt").string();

  std::string error;
  auto built = ShardedIndex::BulkLoad(dataset, sopt);
  if (built == nullptr || !built->SaveStatic(manifest, &error)) {
    std::fprintf(stderr, "FAIL: cannot build static index: %s\n",
                 error.c_str());
    return 1;
  }
  auto index = ShardedIndex::Load(manifest, sopt, &error);
  if (index == nullptr) {
    std::fprintf(stderr, "FAIL: cannot load static index: %s\n",
                 error.c_str());
    return 1;
  }

  serve::ServerOptions options;
  options.max_inflight = kMaxInflight;
  options.cache_entries = kCacheEntries;
  options.replicas.num_replicas = kReplicas;
  options.replicas.manifest_path = manifest;
  options.replicas.index_options = sopt;
  auto server = serve::Server::Create(index.get(), options, &error);
  if (server == nullptr || !server->Start(&error)) {
    std::fprintf(stderr, "FAIL: cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::printf(
      "%u transactions, %u shards, %u replicas, max_inflight %u, "
      "cache %zu entries, pool %zu requests (zipf theta %.1f)\n",
      static_cast<uint32_t>(dataset.transactions.size()), kShards, kReplicas,
      kMaxInflight, kCacheEntries, kPoolSize, kZipfTheta);

  QuestGenerator query_gen(qopt);
  const std::vector<QueryRequest> pool =
      BuildPool(query_gen, dataset.num_items);

  std::printf("%-12s %10s %10s %8s %8s %12s %10s %10s\n", "load", "sent",
              "ok", "busy", "errors", "achieved", "p50_us", "p99_us");

  // Closed loop: capacity baseline. Client count stays under the admission
  // budget so nothing sheds and the numbers are pure service capacity.
  const uint64_t closed_total =
      std::max<uint64_t>(500, static_cast<uint64_t>(20000 * scale));
  const LoadResult closed =
      RunLoad(server->port(), pool, 0, kClosedClients, closed_total);
  PrintLoadRow("closed", closed);

  // Open loop: offered-load sweep toward saturation.
  const std::vector<double> offered = {1000, 5000, 20000, 100000};
  std::vector<LoadResult> rows;
  for (const double qps : offered) {
    const uint64_t total = std::clamp<uint64_t>(
        static_cast<uint64_t>(qps * kRowSeconds), 400, 25000);
    rows.push_back(
        RunLoad(server->port(), pool, qps, kOpenThreads, total));
    char label[32];
    std::snprintf(label, sizeof(label), "%.0f/s", qps);
    PrintLoadRow(label, rows.back());
  }

  obs::MetricsRegistry* m = server->metrics();
  const uint64_t cache_hits = m->GetCounter("serve.cache.hits")->Value();
  const uint64_t cache_misses = m->GetCounter("serve.cache.misses")->Value();
  const uint64_t shed = m->GetCounter("serve.shed")->Value();
  const uint64_t hedges = m->GetCounter("serve.hedges_fired")->Value();
  std::printf(
      "cache hits %lu / misses %lu, shed %lu, hedges fired %lu\n",
      static_cast<unsigned long>(cache_hits),
      static_cast<unsigned long>(cache_misses),
      static_cast<unsigned long>(shed), static_cast<unsigned long>(hedges));

  server->Stop();
  server.reset();
  index.reset();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  const char* env = std::getenv("BENCH_SERVE_JSON");
  const std::string path = env != nullptr ? env : "BENCH_serve.json";
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"scale_factor\": " << scale << ",\n"
      << "  \"cores\": " << std::thread::hardware_concurrency() << ",\n"
      << "  \"latency_budget_us\": " << options.batcher.latency_budget_us
      << ",\n"
      << "  \"max_inflight\": " << kMaxInflight << ",\n"
      << "  \"cache_entries\": " << kCacheEntries << ",\n"
      << "  \"pool_size\": " << kPoolSize << ",\n"
      << "  \"cache_hits\": " << cache_hits << ",\n"
      << "  \"cache_misses\": " << cache_misses << ",\n"
      << "  \"hedges_fired\": " << hedges << ",\n"
      << "  \"closed_loop\": {\"clients\": " << kClosedClients
      << ", \"sent\": " << closed.sent << ", \"ok\": " << closed.ok
      << ", \"errors\": " << closed.errors
      << ", \"qps\": " << closed.achieved_qps
      << ", \"p50_us\": " << closed.p50_us
      << ", \"p99_us\": " << closed.p99_us << "},\n"
      << "  \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    WriteRow(out, rows[i], i + 1 == rows.size());
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace sgtree::bench

int main() { return sgtree::bench::Main(); }
