// Figure 14: k-NN search varying k on the CENSUS categorical dataset
// (36 attributes, 525 values, fixed dimensionality). The SG-tree uses the
// Section 6 tightened bound and is markedly less sensitive to growing k
// than the SG-table.

#include <algorithm>

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  CensusGenerator gen(PaperCensus());
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTable table(dataset, DefaultTableOptions());

  PrintHeader("Figure 14: k-NN varying k (CENSUS)", "k");
  uint32_t previous_k = 0;
  for (uint32_t paper_k : {1u, 10u, 100u, 1000u, 10000u}) {
    const uint32_t k = std::max<uint32_t>(
        1, static_cast<uint32_t>(paper_k * ScaleFactor()));
    if (k == previous_k) continue;
    previous_k = k;
    const std::string x = "k=" + std::to_string(k);
    PrintRow(x, "SG-table", RunTableKnn(table, queries, k, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, k, dataset.size()));
  }
  std::printf("\nExpected shape (paper): on the real categorical dataset\n"
              "the gap in favor of the SG-tree is large across k, and its\n"
              "performance degenerates at a smaller pace.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
