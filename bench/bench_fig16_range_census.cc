// Figure 16: similarity range queries on the CENSUS dataset with epsilon
// from 2 to 10. On the real-shaped categorical data the tree wins by a wide
// margin for both query types.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  CensusGenerator gen(PaperCensus());
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  const SgTable table(dataset, DefaultTableOptions());

  PrintHeader("Figure 16: range queries varying epsilon (CENSUS)",
              "epsilon");
  for (double epsilon : {2.0, 4.0, 6.0, 8.0, 10.0}) {
    const std::string x = "eps=" + std::to_string(static_cast<int>(epsilon));
    PrintRow(x, "SG-table",
             RunTableRange(table, queries, epsilon, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeRange(*built.tree, queries, epsilon, dataset.size()));
  }
  std::printf("\nExpected shape (paper): a large performance difference in\n"
              "favor of the SG-tree across the whole epsilon range.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
