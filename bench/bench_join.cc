// Collection-level containment join: tree-vs-tree baseline against the
// PRETTI (inverted index + prefix tree) and FVT (candidate-free trie)
// backends on Zipf-skewed set collections — the workload shape the
// set-containment-join literature benchmarks, where item frequencies are
// heavily skewed and the prefix/trie sharing is what pays. Also verifies
// that the sharded JoinRouter's merged answer stays byte-identical to the
// single-index join for every algorithm, and writes BENCH_join.json
// (override with SG_JOIN_BENCH_JSON_OUT) for the CI gate in
// tools/check_join_bench.py.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "exec/join_api.h"
#include "exec/query_executor.h"
#include "join/fvt_join.h"
#include "join/pretti_join.h"
#include "join/set_collection.h"
#include "join/tree_join.h"
#include "obs/percentile.h"
#include "shard/join_router.h"
#include "shard/sharded_index.h"
#include "sgtree/sg_tree.h"

namespace sgtree::bench {
namespace {

constexpr uint32_t kItems = 1000;
constexpr double kTheta = 0.95;

struct JoinRow {
  std::string algo;
  double build_us = 0;    // Join-structure construction (postings/tries).
  double elapsed_us = 0;  // Median measured join wall time.
  double p50_us = 0;
  double p99_us = 0;
  uint64_t pairs = 0;
  double pairs_per_sec = 0;
};

// Zipf-skewed transactions: item popularity follows a Zipf(theta) law, so
// a handful of items appear in most sets — the adversarial case for
// candidate-list joins and the best case for prefix sharing. The R
// (probe) side uses smaller sets than S so containment matches exist.
std::vector<Transaction> ZipfSets(uint64_t seed, uint32_t n,
                                  uint64_t base_tid, uint32_t min_size,
                                  uint32_t max_size) {
  Rng rng(seed);
  const ZipfSampler zipf(kItems, kTheta);
  std::vector<Transaction> txns;
  txns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Transaction txn;
    txn.tid = base_tid + i;
    const auto size = min_size + static_cast<uint32_t>(rng.UniformInt(
                                     max_size - min_size + 1));
    while (txn.items.size() < size) {
      const auto item = static_cast<ItemId>(zipf.Sample(rng));
      if (std::find(txn.items.begin(), txn.items.end(), item) ==
          txn.items.end()) {
        txn.items.push_back(item);
      }
    }
    std::sort(txn.items.begin(), txn.items.end());
    txns.push_back(std::move(txn));
  }
  return txns;
}

std::unique_ptr<SgTree> BuildJoinTree(const std::vector<Transaction>& txns) {
  SgTreeOptions options;
  options.num_bits = kItems;
  options.buffer_pages = 64;
  auto tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : txns) tree->Insert(txn);
  return tree;
}

JoinRow Measure(const std::string& algo, double build_us,
                const JoinBackend& backend, uint32_t rounds) {
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};
  JoinRow row;
  row.algo = algo;
  row.build_us = build_us;

  // One warm-up, then `rounds` measured runs (sink-free: the bench
  // measures join throughput, not vector growth).
  JoinResult warm = ExecuteJoin(backend, request, nullptr);
  if (!warm.ok()) {
    std::fprintf(stderr, "join %s failed: %s\n", algo.c_str(),
                 warm.error.c_str());
    std::exit(1);
  }
  row.pairs = warm.pairs;
  std::vector<double> latencies_us;
  latencies_us.reserve(rounds);
  for (uint32_t i = 0; i < rounds; ++i) {
    const JoinResult result = ExecuteJoin(backend, request, nullptr);
    latencies_us.push_back(result.elapsed_us);
  }
  row.p50_us = obs::SortAndPercentile(latencies_us, 50);
  row.p99_us = obs::SortAndPercentile(latencies_us, 99);
  row.elapsed_us = row.p50_us;
  row.pairs_per_sec =
      row.elapsed_us > 0 ? 1e6 * static_cast<double>(row.pairs) / row.elapsed_us
                         : 0;
  return row;
}

// The sharded router must merge to the exact single-index pair vector for
// every algorithm (the join API's central cross-layer promise).
bool ShardedMatches(const std::vector<Transaction>& r,
                    const std::vector<Transaction>& s,
                    const std::vector<JoinPair>& oracle) {
  SgTreeOptions tree_options;
  tree_options.num_bits = kItems;
  ShardedIndexOptions options;
  options.num_shards = 4;
  options.tree = tree_options;
  ShardedIndex left(options);
  options.num_shards = 2;
  ShardedIndex right(options);
  left.InsertBatch(r);
  right.InsertBatch(s);
  QueryExecutor executor;
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};
  for (const JoinAlgo algo :
       {JoinAlgo::kTree, JoinAlgo::kPretti, JoinAlgo::kFvt}) {
    JoinRouterOptions router_options;
    router_options.algo = algo;
    JoinRouter router(left, right, &executor, router_options);
    std::vector<JoinPair> pairs;
    const JoinResult result = router.Run(request, &pairs);
    if (!result.ok() || pairs != oracle) {
      std::fprintf(stderr, "sharded %s diverged from the single index\n",
                   JoinAlgoName(algo));
      return false;
    }
  }
  return true;
}

void Run() {
  const auto rows_per_side = ScaledD(20'000);
  const uint32_t rounds = 7;
  const std::vector<Transaction> r = ZipfSets(1, rows_per_side, 0, 1, 4);
  const std::vector<Transaction> s =
      ZipfSets(2, rows_per_side, 1'000'000, 4, 16);

  std::printf("=== Containment join: tree vs PRETTI vs FVT ===\n");
  std::printf("(Zipf theta=%.2f, %u items, %u rows per side, %u rounds)\n",
              kTheta, kItems, rows_per_side, rounds);

  Timer build_timer;
  const std::unique_ptr<SgTree> r_tree = BuildJoinTree(r);
  const std::unique_ptr<SgTree> s_tree = BuildJoinTree(s);
  const double tree_build_us = build_timer.ElapsedMs() * 1000.0;

  build_timer = Timer();
  const SetCollection r_sets = SetCollection::FromTree(*r_tree, {});
  const SetCollection s_sets = SetCollection::FromTree(*s_tree, {});
  const double extract_us = build_timer.ElapsedMs() * 1000.0;

  build_timer = Timer();
  const InvertedPostings postings(s_sets);
  const PrettiJoinBackend pretti(r_sets, postings);
  const double pretti_build_us = extract_us + build_timer.ElapsedMs() * 1000.0;

  build_timer = Timer();
  const FvtTrie trie(s_sets);
  const FvtJoinBackend fvt(r_sets, trie);
  const double fvt_build_us = extract_us + build_timer.ElapsedMs() * 1000.0;

  const TreeJoinBackend tree(*r_tree, *s_tree);

  std::vector<JoinRow> rows;
  rows.push_back(Measure("tree", tree_build_us, tree, rounds));
  rows.push_back(Measure("pretti", pretti_build_us, pretti, rounds));
  rows.push_back(Measure("fvt", fvt_build_us, fvt, rounds));

  std::printf("%-8s %12s %14s %14s %14s %16s\n", "algo", "pairs",
              "build_us", "p50_us", "p99_us", "pairs_per_sec");
  for (const JoinRow& row : rows) {
    std::printf("%-8s %12llu %14.0f %14.0f %14.0f %16.0f\n",
                row.algo.c_str(),
                static_cast<unsigned long long>(row.pairs), row.build_us,
                row.p50_us, row.p99_us, row.pairs_per_sec);
  }

  std::printf("checking sharded merge against the single index...\n");
  std::vector<JoinPair> oracle;
  const JoinResult oracle_result = CollectJoin(
      tree, {JoinType::kContainment, Metric::kHamming, 0.0}, &oracle);
  const bool sharded_matches =
      oracle_result.ok() && ShardedMatches(r, s, oracle);
  std::printf("sharded merge byte-identical: %s\n",
              sharded_matches ? "yes" : "NO");

  const char* env = std::getenv("SG_JOIN_BENCH_JSON_OUT");
  const std::string path = env != nullptr ? env : "BENCH_join.json";
  std::ofstream file(path);
  file << "{\"scale_factor\": " << ScaleFactor()
       << ", \"theta\": " << kTheta << ", \"rows_per_side\": "
       << rows_per_side << ", \"rounds\": " << rounds
       << ", \"sharded_matches\": " << (sharded_matches ? "true" : "false")
       << ", \"rows\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const JoinRow& row = rows[i];
    file << "  {\"algo\": \"" << row.algo << "\", \"pairs\": " << row.pairs
         << ", \"build_us\": " << row.build_us
         << ", \"p50_us\": " << row.p50_us << ", \"p99_us\": " << row.p99_us
         << ", \"pairs_per_sec\": " << row.pairs_per_sec << "}"
         << (i + 1 < rows.size() ? ",\n" : "\n");
  }
  file << "]}\n";
  std::printf("wrote %s\n", path.c_str());
  if (!sharded_matches) std::exit(1);
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
