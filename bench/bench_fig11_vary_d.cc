// Figure 11: nearest-neighbor search varying the dataset cardinality D
// (100K..500K at paper scale) with T=10, I=6 — parameters where the
// SG-table does well; the SG-tree's relative pruning advantage grows with
// the database size.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  PrintHeader("Figure 11: NN search varying D (T=10, I=6)", "D");
  for (uint32_t paper_d : {100'000u, 200'000u, 300'000u, 400'000u, 500'000u}) {
    QuestOptions qopt = PaperQuest(10, 6, paper_d);
    QuestGenerator gen(qopt);
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

    const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
    const SgTable table(dataset, DefaultTableOptions());

    const std::string x = "D=" + std::to_string(dataset.size());
    PrintRow(x, "SG-table", RunTableKnn(table, queries, 1, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, 1, dataset.size()));
  }
  std::printf("\nExpected shape (paper): the relative pruning efficiency of\n"
              "the SG-tree increases with the database cardinality.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
