// Static-format cold-start benchmark: how fast a serving process gets from
// "image on disk" to "answering queries", dynamic vs static.
//
//  - cold start: LoadTree (decode every page image into heap pages) vs
//    StaticTreeView::Open (mmap + validate). The static open is measured
//    both with the full body-CRC pass and with verify_checksums=false
//    (structural walk only), since a fleet restarting behind a checksummed
//    artifact store typically runs the latter.
//  - steady state: k-NN throughput through the unified query API,
//    SgTreeBackend vs StaticTreeBackend on the same warm buffer pool, with
//    a per-query equality check — the static view must not buy its cold
//    start by answering differently.
//
// Results are printed as a table and written as JSON to $BENCH_STATIC_JSON
// (default BENCH_static.json) for the CI artifact.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "data/quest_generator.h"
#include "durability/env.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "sgtree/persistence.h"
#include "static/static_tree_backend.h"
#include "static/static_tree_builder.h"
#include "static/static_tree_view.h"
#include "storage/buffer_pool.h"

namespace sgtree::bench {
namespace {

constexpr uint32_t kColdStartRepeats = 5;

struct ColdStartRow {
  std::string label;
  double open_ms = 0;  // Mean over kColdStartRepeats fresh opens.
};

struct QpsRow {
  std::string label;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  bool identical = true;  // Result-for-result equal to the dynamic run.
};

uint64_t FileBytes(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<uint64_t>(size);
}

// Measures one backend over `batch` on a warm private pool: one warm-up
// pass, then a timed pass with per-query latencies.
template <typename Backend>
QpsRow MeasureQps(const Backend& backend, const std::vector<QueryRequest>& batch,
                  const std::string& label,
                  std::vector<QueryResult>* results_out) {
  BufferPool pool(64);
  for (const QueryRequest& request : batch) Execute(backend, request, &pool);

  std::vector<QueryResult> results;
  results.reserve(batch.size());
  std::vector<double> latencies_us;
  latencies_us.reserve(batch.size());
  Timer timer;
  for (const QueryRequest& request : batch) {
    Timer per_query;
    results.push_back(Execute(backend, request, &pool));
    latencies_us.push_back(per_query.ElapsedMs() * 1000.0);
  }
  const double wall_ms = timer.ElapsedMs();

  QpsRow row;
  row.label = label;
  row.qps = 1000.0 * static_cast<double>(batch.size()) / wall_ms;
  row.p50_us = LatencyPercentileUs(latencies_us, 50);
  row.p99_us = LatencyPercentileUs(latencies_us, 99);
  *results_out = std::move(results);
  return row;
}

void Run() {
  QuestOptions qopt = PaperQuest(20, 6, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const uint32_t batch_n = NumQueries() * 4;
  const auto query_sigs =
      ToSignatures(gen.GenerateQueries(batch_n), dataset.num_items);
  std::vector<QueryRequest> batch;
  batch.reserve(query_sigs.size());
  for (const Signature& sig : query_sigs) {
    QueryRequest request;
    request.type = QueryType::kKnn;
    request.query = sig;
    request.k = 10;
    batch.push_back(std::move(request));
  }

  const SgTreeOptions tree_options = DefaultTreeOptions(dataset);
  const BuiltTree built = BuildTree(dataset, tree_options);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "sg_bench_static_start";
  std::filesystem::create_directories(dir);
  const std::string dynamic_path = (dir / "tree.sg").string();
  const std::string static_path = (dir / "tree.static").string();
  std::string error;
  if (!SaveTree(*built.tree, dynamic_path, &error) ||
      !BuildStaticTree(*built.tree, static_path, &error)) {
    std::fprintf(stderr, "image build failed: %s\n", error.c_str());
    std::exit(1);
  }

  std::printf("\n=== Static cold start (Quest T=20, I=6, D=200K) ===\n");
  std::printf("(scale factor %.2f, %zu transactions, build %.1f ms, "
              "dynamic image %llu B, static image %llu B)\n",
              ScaleFactor(), dataset.size(), built.build_ms,
              static_cast<unsigned long long>(FileBytes(dynamic_path)),
              static_cast<unsigned long long>(FileBytes(static_path)));

  // Cold start: mean over fresh opens. Each LoadTree decodes and heap-
  // allocates every node; each StaticTreeView::Open maps and validates.
  std::vector<ColdStartRow> cold;
  {
    double total_ms = 0;
    for (uint32_t r = 0; r < kColdStartRepeats; ++r) {
      Timer timer;
      auto tree = LoadTree(dynamic_path, tree_options, &error);
      total_ms += timer.ElapsedMs();
      if (tree == nullptr) {
        std::fprintf(stderr, "LoadTree failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
    cold.push_back({"load_dynamic", total_ms / kColdStartRepeats});
  }
  for (const bool verify : {true, false}) {
    StaticOpenOptions open_options;
    open_options.tree = tree_options;
    open_options.verify_checksums = verify;
    double total_ms = 0;
    for (uint32_t r = 0; r < kColdStartRepeats; ++r) {
      Timer timer;
      auto view =
          StaticTreeView::Open(Env::Posix(), static_path, open_options, &error);
      total_ms += timer.ElapsedMs();
      if (view == nullptr) {
        std::fprintf(stderr, "static open failed: %s\n", error.c_str());
        std::exit(1);
      }
    }
    cold.push_back({verify ? "open_static_verified" : "open_static_structural",
                    total_ms / kColdStartRepeats});
  }
  std::printf("%-24s %12s\n", "cold start", "open_ms");
  for (const ColdStartRow& row : cold) {
    std::printf("%-24s %12.3f\n", row.label.c_str(), row.open_ms);
  }

  // Steady state: the same k-NN batch through both backends, answers
  // compared result for result.
  StaticOpenOptions open_options;
  open_options.tree = tree_options;
  const auto view =
      StaticTreeView::Open(Env::Posix(), static_path, open_options, &error);
  if (view == nullptr) {
    std::fprintf(stderr, "static open failed: %s\n", error.c_str());
    std::exit(1);
  }

  std::vector<QueryResult> dynamic_results;
  std::vector<QueryResult> static_results;
  std::vector<QpsRow> qps;
  qps.push_back(MeasureQps(SgTreeBackend(*built.tree), batch, "dynamic_knn10",
                           &dynamic_results));
  qps.push_back(MeasureQps(StaticTreeBackend(*view), batch, "static_knn10",
                           &static_results));
  for (size_t i = 0; i < batch.size(); ++i) {
    if (!(static_results[i] == dynamic_results[i])) {
      qps.back().identical = false;
      break;
    }
  }
  std::printf("\n%-24s %12s %10s %10s %10s\n", "k-NN (k=10)", "qps", "p50_us",
              "p99_us", "identical");
  for (const QpsRow& row : qps) {
    std::printf("%-24s %12.1f %10.1f %10.1f %10s\n", row.label.c_str(),
                row.qps, row.p50_us, row.p99_us,
                row.identical ? "yes" : "NO");
  }
  if (!qps.back().identical) {
    std::fprintf(stderr, "static backend diverged from the dynamic tree\n");
    std::exit(1);
  }

  const char* env = std::getenv("BENCH_STATIC_JSON");
  const std::string path = env != nullptr ? env : "BENCH_static.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  file << "{\"experiment\": \"static_cold_start_t20_i6_d200k\""
       << ", \"scale_factor\": " << ScaleFactor()
       << ", \"transactions\": " << dataset.size()
       << ", \"batch_queries\": " << batch_n
       << ", \"dynamic_file_bytes\": " << FileBytes(dynamic_path)
       << ", \"static_file_bytes\": " << FileBytes(static_path)
       << ", \"cold_start\": [\n";
  for (size_t i = 0; i < cold.size(); ++i) {
    file << "  {\"label\": \"" << cold[i].label
         << "\", \"open_ms\": " << cold[i].open_ms << "}"
         << (i + 1 == cold.size() ? "\n" : ",\n");
  }
  file << "], \"knn\": [\n";
  for (size_t i = 0; i < qps.size(); ++i) {
    file << "  {\"label\": \"" << qps[i].label << "\", \"qps\": " << qps[i].qps
         << ", \"p50_us\": " << qps[i].p50_us
         << ", \"p99_us\": " << qps[i].p99_us << ", \"identical\": "
         << (qps[i].identical ? "true" : "false") << "}"
         << (i + 1 == qps.size() ? "\n" : ",\n");
  }
  file << "]}\n";
  std::printf("wrote %zu cold-start + %zu qps rows to %s\n", cold.size(),
              qps.size(), path.c_str());

  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
