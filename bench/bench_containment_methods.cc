// Containment / subset / similarity queries across access methods: SG-tree
// vs inverted file vs sequential scan. Demonstrates both halves of the
// related-work claim the paper makes via Helmer & Moerkotte [14]:
// signature trees are NOT the structure of choice for subset/superset
// retrieval (inverted files win), but they are for similarity search.

#include <cstdio>

#include "bench/bench_common.h"
#include "inverted/inverted_index.h"
#include "sgtree/search.h"

namespace sgtree::bench {
namespace {

void Run() {
  QuestOptions qopt = PaperQuest(12, 6, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const uint32_t num_queries = NumQueries();
  const auto raw_queries = gen.GenerateQueries(num_queries);

  const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
  Timer inv_timer;
  const InvertedIndex inverted(dataset);
  const double inv_build = inv_timer.ElapsedMs();
  std::printf("=== Containment/subset/NN across methods (T12.I6, D=%zu) "
              "===\n",
              dataset.size());
  std::printf("(tree build %.0f ms, inverted build %.0f ms)\n\n",
              built.build_ms, inv_build);
  std::printf("%-22s %-10s %14s %14s\n", "query type", "method",
              "cpu_ms/query", "ios/query");

  // Superset (containment) queries: 3-item prefixes of data transactions.
  {
    std::vector<std::vector<ItemId>> probes;
    for (uint32_t i = 0; i < num_queries; ++i) {
      const auto& txn = dataset.transactions[(i * 997) % dataset.size()];
      probes.emplace_back(
          txn.items.begin(),
          txn.items.begin() + std::min<size_t>(3, txn.items.size()));
    }
    QueryStats tree_stats;
    Timer tree_timer;
    for (const auto& probe : probes) {
      built.tree->buffer_pool().Clear();
      ContainmentSearch(*built.tree,
                        Signature::FromItems(probe, dataset.num_items),
                        built.tree->OwnPoolContext(&tree_stats));
    }
    const double tree_ms = tree_timer.ElapsedMs();
    QueryStats inv_stats;
    Timer inv_q_timer;
    for (const auto& probe : probes) {
      inverted.Containing(probe, &inv_stats);
    }
    const double inv_ms = inv_q_timer.ElapsedMs();
    std::printf("%-22s %-10s %14.3f %14.1f\n", "superset (3 items)",
                "SG-tree", tree_ms / probes.size(),
                static_cast<double>(tree_stats.random_ios) / probes.size());
    std::printf("%-22s %-10s %14.3f %14.1f\n", "superset (3 items)",
                "inverted", inv_ms / probes.size(),
                static_cast<double>(inv_stats.random_ios) / probes.size());
  }

  // Subset queries: unions of two data transactions.
  {
    std::vector<Signature> probes;
    for (uint32_t i = 0; i < num_queries; ++i) {
      Signature sig = Signature::FromItems(
          dataset.transactions[(i * 131) % dataset.size()].items,
          dataset.num_items);
      sig.UnionWith(Signature::FromItems(
          dataset.transactions[(i * 733) % dataset.size()].items,
          dataset.num_items));
      probes.push_back(std::move(sig));
    }
    QueryStats tree_stats;
    Timer tree_timer;
    for (const auto& probe : probes) {
      built.tree->buffer_pool().Clear();
      SubsetSearch(*built.tree, probe,
                   built.tree->OwnPoolContext(&tree_stats));
    }
    const double tree_ms = tree_timer.ElapsedMs();
    QueryStats inv_stats;
    Timer inv_q_timer;
    for (const auto& probe : probes) {
      inverted.ContainedIn(probe.ToItems(), &inv_stats);
    }
    const double inv_ms = inv_q_timer.ElapsedMs();
    std::printf("%-22s %-10s %14.3f %14.1f\n", "subset (2-txn union)",
                "SG-tree", tree_ms / probes.size(),
                static_cast<double>(tree_stats.random_ios) / probes.size());
    std::printf("%-22s %-10s %14.3f %14.1f\n", "subset (2-txn union)",
                "inverted", inv_ms / probes.size(),
                static_cast<double>(inv_stats.random_ios) / probes.size());
  }

  // Similarity (1-NN): where the SG-tree is the structure of choice.
  {
    QueryStats tree_stats;
    Timer tree_timer;
    for (const auto& q : raw_queries) {
      built.tree->buffer_pool().Clear();
      DfsNearest(*built.tree,
                 Signature::FromItems(q.items, dataset.num_items),
                 built.tree->OwnPoolContext(&tree_stats));
    }
    const double tree_ms = tree_timer.ElapsedMs();
    QueryStats inv_stats;
    Timer inv_q_timer;
    for (const auto& q : raw_queries) {
      inverted.KNearest(q.items, 1, &inv_stats);
    }
    const double inv_ms = inv_q_timer.ElapsedMs();
    std::printf("%-22s %-10s %14.3f %14.1f\n", "1-NN", "SG-tree",
                tree_ms / raw_queries.size(),
                static_cast<double>(tree_stats.random_ios) /
                    raw_queries.size());
    std::printf("%-22s %-10s %14.3f %14.1f\n", "1-NN", "inverted",
                inv_ms / raw_queries.size(),
                static_cast<double>(inv_stats.random_ios) /
                    raw_queries.size());
  }

  std::printf("\nExpected shape ([14] via the paper's Section 2): inverted\n"
              "files win subset/superset retrieval; the SG-tree is the\n"
              "competitive structure for similarity search I/O.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
