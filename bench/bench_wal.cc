// Durability cost benchmark: what the write-ahead log charges for insert
// throughput (per-op fsync vs group commit vs no durability at all) and how
// recovery time scales with the length of the unfolded log. Results are
// printed as a table and written as JSON to $BENCH_WAL_JSON (default
// BENCH_wal.json) for the CI artifact.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/stats.h"
#include "data/quest_generator.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "durability/recovery.h"
#include "sgtree/sg_tree.h"

namespace sgtree::bench {
namespace {

struct InsertRow {
  std::string method;
  uint64_t ops = 0;
  double ms = 0;
  double ops_per_sec = 0;
};

struct RecoveryRow {
  uint64_t ops = 0;
  uint64_t wal_bytes = 0;
  uint64_t records_replayed = 0;
  double recover_ms = 0;
  double checkpoint_ms = 0;
};

std::string FreshDir(const std::string& name) {
  const std::string dir = "bench_wal_tmp_" + name;
  Env* env = Env::Posix();
  env->CreateDir(dir);
  env->Delete(DurableTree::PagePathFor(dir));
  env->Delete(DurableTree::WalPathFor(dir));
  return dir;
}

SgTreeOptions TreeOptions(const Dataset& dataset) {
  SgTreeOptions options;
  options.num_bits = dataset.num_items;
  options.fixed_dimensionality = dataset.fixed_dimensionality;
  return options;
}

InsertRow BenchPlain(const Dataset& dataset) {
  SgTree tree(TreeOptions(dataset));
  Timer timer;
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const double ms = timer.ElapsedMs();
  const auto n = static_cast<uint64_t>(dataset.size());
  return {"memory (no wal)", n, ms, 1000.0 * double(n) / ms};
}

InsertRow BenchDurable(const Dataset& dataset, bool sync_each_op) {
  const std::string dir =
      FreshDir(sync_each_op ? "sync_each_op" : "group_commit");
  DurableTree::Options options;
  options.tree = TreeOptions(dataset);
  options.sync_each_op = sync_each_op;
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  if (durable == nullptr) {
    std::fprintf(stderr, "open %s failed: %s\n", dir.c_str(), error.c_str());
    std::exit(1);
  }
  Timer timer;
  if (sync_each_op) {
    for (const Transaction& txn : dataset.transactions) {
      if (!durable->Insert(txn)) {
        std::fprintf(stderr, "insert failed\n");
        std::exit(1);
      }
    }
  } else {
    if (durable->InsertBatch(dataset.transactions) != dataset.size()) {
      std::fprintf(stderr, "batch insert failed\n");
      std::exit(1);
    }
  }
  const double ms = timer.ElapsedMs();
  const auto n = static_cast<uint64_t>(dataset.size());
  return {sync_each_op ? "wal fsync/op" : "wal group commit", n, ms,
          1000.0 * double(n) / ms};
}

// Builds a durable tree whose first `ops` operations all sit in the log
// (no checkpoint), then measures cold recovery and the checkpoint fold.
RecoveryRow BenchRecovery(const Dataset& dataset, uint64_t ops) {
  const std::string dir = FreshDir("recovery_" + std::to_string(ops));
  DurableTree::Options options;
  options.tree = TreeOptions(dataset);
  options.sync_each_op = false;
  std::string error;
  RecoveryRow row;
  row.ops = ops;
  {
    auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
    if (durable == nullptr) {
      std::fprintf(stderr, "open failed: %s\n", error.c_str());
      std::exit(1);
    }
    std::vector<Transaction> prefix(dataset.transactions.begin(),
                                    dataset.transactions.begin() +
                                        static_cast<ptrdiff_t>(ops));
    if (durable->InsertBatch(prefix) != prefix.size()) {
      std::fprintf(stderr, "batch insert failed\n");
      std::exit(1);
    }
  }
  {
    auto file = Env::Posix()->Open(DurableTree::WalPathFor(dir), false);
    if (file != nullptr) row.wal_bytes = file->Size();
  }
  {
    Timer timer;
    auto recovered =
        RecoverTree(Env::Posix(), DurableTree::PagePathFor(dir),
                    DurableTree::WalPathFor(dir), &error, &options.tree);
    row.recover_ms = timer.ElapsedMs();
    if (recovered == nullptr) {
      std::fprintf(stderr, "recovery failed: %s\n", error.c_str());
      std::exit(1);
    }
    row.records_replayed = recovered->report.records_replayed;
  }
  {
    auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
    Timer timer;
    if (durable == nullptr || !durable->Checkpoint(&error)) {
      std::fprintf(stderr, "checkpoint failed: %s\n", error.c_str());
      std::exit(1);
    }
    row.checkpoint_ms = timer.ElapsedMs();
  }
  return row;
}

void WriteJson(const std::vector<InsertRow>& inserts,
               const std::vector<RecoveryRow>& recoveries) {
  const char* env = std::getenv("BENCH_WAL_JSON");
  const std::string path = env != nullptr ? env : "BENCH_wal.json";
  std::ofstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  file << "{\"scale_factor\": " << ScaleFactor() << ", \"insert\": [\n";
  for (size_t i = 0; i < inserts.size(); ++i) {
    const InsertRow& row = inserts[i];
    file << "  {\"method\": \"" << row.method << "\", \"ops\": " << row.ops
         << ", \"ms\": " << row.ms
         << ", \"ops_per_sec\": " << row.ops_per_sec << "}"
         << (i + 1 < inserts.size() ? ",\n" : "\n");
  }
  file << "], \"recovery\": [\n";
  for (size_t i = 0; i < recoveries.size(); ++i) {
    const RecoveryRow& row = recoveries[i];
    file << "  {\"ops\": " << row.ops << ", \"wal_bytes\": " << row.wal_bytes
         << ", \"records_replayed\": " << row.records_replayed
         << ", \"recover_ms\": " << row.recover_ms
         << ", \"checkpoint_ms\": " << row.checkpoint_ms << "}"
         << (i + 1 < recoveries.size() ? ",\n" : "\n");
  }
  file << "]}\n";
  std::printf("wrote %s\n", path.c_str());
}

int Run() {
  const Dataset dataset =
      QuestGenerator(PaperQuest(10, 4, 100'000)).Generate();
  std::printf("=== WAL insert throughput (%zu transactions) ===\n",
              dataset.size());
  std::printf("%-18s %10s %12s %14s\n", "method", "ops", "ms", "ops/sec");
  std::vector<InsertRow> inserts;
  inserts.push_back(BenchPlain(dataset));
  inserts.push_back(BenchDurable(dataset, /*sync_each_op=*/false));
  inserts.push_back(BenchDurable(dataset, /*sync_each_op=*/true));
  for (const InsertRow& row : inserts) {
    std::printf("%-18s %10llu %12.1f %14.0f\n", row.method.c_str(),
                static_cast<unsigned long long>(row.ops), row.ms,
                row.ops_per_sec);
  }

  std::printf("\n=== Recovery time vs log length ===\n");
  std::printf("%10s %12s %10s %12s %14s\n", "ops", "wal_bytes", "records",
              "recover_ms", "checkpoint_ms");
  std::vector<RecoveryRow> recoveries;
  for (const double fraction : {0.125, 0.25, 0.5, 1.0}) {
    const auto ops =
        static_cast<uint64_t>(double(dataset.size()) * fraction);
    if (ops == 0) continue;
    const RecoveryRow row = BenchRecovery(dataset, ops);
    std::printf("%10llu %12llu %10llu %12.2f %14.2f\n",
                static_cast<unsigned long long>(row.ops),
                static_cast<unsigned long long>(row.wal_bytes),
                static_cast<unsigned long long>(row.records_replayed),
                row.recover_ms, row.checkpoint_ms);
    recoveries.push_back(row);
  }

  WriteJson(inserts, recoveries);
  return 0;
}

}  // namespace
}  // namespace sgtree::bench

int main() { return sgtree::bench::Run(); }
