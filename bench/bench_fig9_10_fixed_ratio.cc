// Figures 9 and 10: nearest-neighbor search with the ratio I/T fixed at 0.6
// while the transaction size grows (robustness to dimensionality at
// constant skew). The SG-table fails to index large transactions well; the
// SG-tree stays robust.

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  PrintHeader("Figures 9/10: NN search, I/T=0.6, varying T (D=200K)",
              "T,I");
  const std::pair<double, double> instances[] = {
      {10, 6}, {20, 12}, {30, 18}, {40, 24}, {50, 30}};
  for (const auto& [t, i] : instances) {
    QuestOptions qopt = PaperQuest(t, i, 200'000);
    QuestGenerator gen(qopt);
    const Dataset dataset = gen.Generate();
    const auto queries =
        ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

    const BuiltTree built = BuildTree(dataset, DefaultTreeOptions(dataset));
    const SgTable table(dataset, DefaultTableOptions());

    const std::string x = "T=" + std::to_string(static_cast<int>(t)) + ",I=" +
                          std::to_string(static_cast<int>(i));
    PrintRow(x, "SG-table", RunTableKnn(table, queries, 1, dataset.size()));
    PrintRow(x, "SG-tree",
             RunTreeKnn(*built.tree, queries, 1, dataset.size()));
  }
  std::printf("\nExpected shape (paper): the SG-tree is robust to the\n"
              "transaction size; the SG-table degrades on large\n"
              "transactions even though the data stays well clustered.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
