// Sensitivity study backing the paper's core criticism of the SG-table
// (Section 2.2.1): "its performance is sensitive to various parameters
// (number of vertical signatures, critical mass, activation threshold)
// which are hard to determine a-priori", while the SG-tree "relies on no
// hardwired constants". Sweeps K, theta and the critical mass on one
// workload; the single untuned SG-tree line is printed for reference.

#include <cstdio>

#include "bench/bench_common.h"

namespace sgtree::bench {
namespace {

void Run() {
  QuestOptions qopt = PaperQuest(20, 10, 200'000);
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  const auto queries =
      ToSignatures(gen.GenerateQueries(NumQueries()), dataset.num_items);

  std::printf("=== SG-table parameter sensitivity (T20.I10, D=%zu) ===\n\n",
              dataset.size());

  const BuiltTree tree = BuildTree(dataset, DefaultTreeOptions(dataset));
  const MethodResult tree_result =
      RunTreeKnn(*tree.tree, queries, 1, dataset.size());
  std::printf("SG-tree (no tuning):        %%data %6.2f  cpu %7.3f ms  "
              "io %8.1f\n\n",
              tree_result.pct_data, tree_result.cpu_ms,
              tree_result.random_ios);

  std::printf("-- number of vertical signatures K (theta=2, cm=0.1) --\n");
  std::printf("%-10s %10s %12s %14s %12s\n", "K", "%data", "cpu_ms",
              "random_ios", "buckets");
  for (uint32_t k : {4u, 8u, 12u, 16u, 24u, 32u}) {
    SgTableOptions options = DefaultTableOptions();
    options.clustering.num_signatures = k;
    const SgTable table(dataset, options);
    const MethodResult r = RunTableKnn(table, queries, 1, dataset.size());
    std::printf("%-10u %10.2f %12.3f %14.1f %12zu\n", k, r.pct_data,
                r.cpu_ms, r.random_ios, table.occupied_buckets());
  }

  std::printf("\n-- activation threshold theta (K=12, cm=0.1) --\n");
  std::printf("%-10s %10s %12s %14s %12s\n", "theta", "%data", "cpu_ms",
              "random_ios", "buckets");
  for (uint32_t theta : {1u, 2u, 3u, 4u, 6u}) {
    SgTableOptions options = DefaultTableOptions();
    options.activation_threshold = theta;
    const SgTable table(dataset, options);
    const MethodResult r = RunTableKnn(table, queries, 1, dataset.size());
    std::printf("%-10u %10.2f %12.3f %14.1f %12zu\n", theta, r.pct_data,
                r.cpu_ms, r.random_ios, table.occupied_buckets());
  }

  std::printf("\n-- critical mass fraction (K=12, theta=2) --\n");
  std::printf("%-10s %10s %12s %14s %12s\n", "cm", "%data", "cpu_ms",
              "random_ios", "buckets");
  for (double cm : {0.01, 0.05, 0.1, 0.25, 1.0}) {
    SgTableOptions options = DefaultTableOptions();
    options.clustering.critical_mass_fraction = cm;
    const SgTable table(dataset, options);
    const MethodResult r = RunTableKnn(table, queries, 1, dataset.size());
    std::printf("%-10.2f %10.2f %12.3f %14.1f %12zu\n", cm, r.pct_data,
                r.cpu_ms, r.random_ios, table.occupied_buckets());
  }

  std::printf("\nExpected shape: SG-table cost varies by multiples across\n"
              "the parameter grid with no a-priori best point, while the\n"
              "untuned SG-tree sits at or below the table's best setting.\n");
}

}  // namespace
}  // namespace sgtree::bench

int main() {
  sgtree::bench::Run();
  return 0;
}
