// Crash-recovery torture matrix. A fixed update workload runs over the
// fault-injecting env; a clean pass counts the file writes the workload
// issues, then the kill point sweeps over every write (plus torn-write and
// bit-flip variants). After each simulated crash the index is recovered
// with a clean env and must (a) pass the full invariant audit — RecoverTree
// gates on it internally — and (b) answer a fixed query workload exactly
// like a never-crashed reference tree built from the committed operation
// prefix. The recovered op_seq pins down which prefix that is.

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/signature.h"
#include "data/transaction.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "durability/fault_injection.h"
#include "durability/recovery.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"

namespace sgtree {
namespace {

constexpr uint32_t kBits = 64;

SgTreeOptions TortureOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.page_size = 512;
  return options;
}

struct Op {
  bool insert = true;
  Transaction txn;
};

// 36 inserts interleaved with 6 erases of previously inserted keys; node
// splits, entry removals, and (with the small page size) multi-level
// structure are all exercised.
std::vector<Op> Workload() {
  std::vector<Op> ops;
  uint64_t state = 88172645463325252ull;  // xorshift64
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  std::vector<Transaction> txns;
  for (uint64_t tid = 0; tid < 36; ++tid) {
    Transaction txn;
    txn.tid = tid;
    const size_t n = 2 + next() % 5;
    for (size_t i = 0; i < n; ++i) {
      txn.items.push_back(ItemId(next() % kBits));
    }
    std::sort(txn.items.begin(), txn.items.end());
    txn.items.erase(std::unique(txn.items.begin(), txn.items.end()),
                    txn.items.end());
    txns.push_back(std::move(txn));
  }
  for (uint64_t tid = 0; tid < txns.size(); ++tid) {
    ops.push_back({true, txns[size_t(tid)]});
    // Every sixth insert is followed by an erase of an earlier key that is
    // still present (tids 0,6,12,... are erased exactly once, right after
    // tid+5 is inserted).
    if (tid % 6 == 5) ops.push_back({false, txns[size_t(tid - 5)]});
  }
  return ops;
}

// The fixed query workload recovered trees are graded against.
std::string QuerySnapshot(SgTree& tree) {
  std::ostringstream out;
  const std::vector<std::vector<ItemId>> probes = {
      {3, 17, 40}, {1, 2}, {8, 9, 10, 11}, {63}, {20, 30, 44, 50}};
  for (const auto& items : probes) {
    const Signature query = Signature::FromItems(items, kBits);
    for (const Neighbor& n : DfsKNearest(tree, query, 3)) {
      out << " " << n.tid << ":" << n.distance;
    }
    out << " |";
    for (const Neighbor& n : RangeSearch(tree, query, 8)) {
      out << " " << n.tid << ":" << n.distance;
    }
    out << " |";
    for (uint64_t tid : ContainmentSearch(tree, query)) out << " " << tid;
    out << "\n";
  }
  out << "size=" << tree.size() << " height=" << tree.height()
      << " nodes=" << tree.node_count();
  return out.str();
}

// Never-crashed reference: the first `n_ops` operations applied in memory.
std::string ReferenceSnapshot(const std::vector<Op>& ops, uint64_t n_ops) {
  SgTree tree(TortureOptions());
  for (uint64_t i = 0; i < n_ops; ++i) {
    const Op& op = ops[size_t(i)];
    if (op.insert) {
      tree.Insert(op.txn);
    } else {
      EXPECT_TRUE(tree.Erase(op.txn)) << "reference erase " << i;
    }
  }
  return QuerySnapshot(tree);
}

std::string TrialDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  Env* env = Env::Posix();
  env->CreateDir(dir);
  env->Delete(DurableTree::PagePathFor(dir));
  env->Delete(DurableTree::WalPathFor(dir));
  return dir;
}

// Runs the workload against `dir` through a fault-injecting env until an
// operation fails (simulated crash) or the workload completes. Returns the
// number of operations acknowledged (their WAL commit fsync returned).
uint64_t RunWorkload(Env* env, const std::string& dir,
                     const std::vector<Op>& ops, bool* opened) {
  DurableTree::Options options;
  options.tree = TortureOptions();
  std::string error;
  auto durable = DurableTree::Open(env, dir, options, &error);
  *opened = durable != nullptr;
  if (!*opened) return 0;
  uint64_t acked = 0;
  for (const Op& op : ops) {
    const bool ok = op.insert ? durable->Insert(op.txn)
                              : durable->Erase(op.txn);
    if (!ok) break;
    ++acked;
  }
  return acked;
}

// Recovers `dir` with a clean env and grades it against the reference for
// the op prefix recovery reports. `acked` operations were fsync-acked
// before the crash, so at least that many must survive.
void CheckRecovered(const std::string& dir, const std::vector<Op>& ops,
                    uint64_t acked, const std::string& label) {
  const SgTreeOptions options = TortureOptions();
  std::string error;
  auto recovered = RecoverTree(Env::Posix(), DurableTree::PagePathFor(dir),
                               DurableTree::WalPathFor(dir), &error,
                               &options);
  ASSERT_NE(recovered, nullptr) << label << ": " << error;
  ASSERT_TRUE(recovered->audit.ok()) << label;
  const uint64_t survived = recovered->report.op_seq;
  EXPECT_GE(survived, acked) << label;
  EXPECT_LE(survived, ops.size()) << label;
  EXPECT_EQ(QuerySnapshot(*recovered->tree),
            ReferenceSnapshot(ops, survived))
      << label << " (op_seq " << survived << ")";
}

// Reopening through DurableTree (recover + continue) must also work, and
// the continued index must accept new operations.
void CheckReopenAndContinue(const std::string& dir, const std::string& label) {
  DurableTree::Options options;
  options.tree = TortureOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << label << ": " << error;
  Transaction probe;
  probe.tid = 99'999;
  probe.items = {1, 33, 62};
  ASSERT_TRUE(durable->Insert(probe)) << label;
  ASSERT_TRUE(durable->Checkpoint(&error)) << label << ": " << error;
}

TEST(RecoveryTortureTest, KillAfterEveryWrite) {
  const std::vector<Op> ops = Workload();

  // Clean pass: count the writes the full workload issues.
  FaultState state;
  FaultInjectingEnv fenv(Env::Posix(), &state);
  const std::string clean_dir = TrialDir("torture_clean");
  bool opened = false;
  const uint64_t acked_all = RunWorkload(&fenv, clean_dir, ops, &opened);
  ASSERT_TRUE(opened);
  ASSERT_EQ(acked_all, ops.size());
  const uint64_t total_writes = state.writes_issued();
  ASSERT_GT(total_writes, ops.size());  // several records per operation
  CheckRecovered(clean_dir, ops, acked_all, "clean run");

  for (uint64_t kill = 1; kill <= total_writes; ++kill) {
    const std::string label = "kill@" + std::to_string(kill);
    const std::string dir = TrialDir("torture_kill");
    FaultPlan plan;
    plan.kill_at_write = kill;
    state.set_plan(plan);
    state.Reset();
    const uint64_t acked = RunWorkload(&fenv, dir, ops, &opened);
    if (!opened) {
      // Crash while creating the index: there is nothing durable yet; all
      // that is required is that recovery fails cleanly instead of
      // fabricating a tree.
      std::string error;
      auto recovered =
          RecoverTree(Env::Posix(), DurableTree::PagePathFor(dir),
                      DurableTree::WalPathFor(dir), &error);
      if (recovered != nullptr) {
        EXPECT_EQ(recovered->report.op_seq, 0u) << label;
      } else {
        EXPECT_FALSE(error.empty()) << label;
      }
      continue;
    }
    CheckRecovered(dir, ops, acked, label);
    CheckReopenAndContinue(dir, label);
  }
}

TEST(RecoveryTortureTest, TornWritesAtEveryThirdKillPoint) {
  const std::vector<Op> ops = Workload();
  FaultState state;
  FaultInjectingEnv fenv(Env::Posix(), &state);
  const std::string clean_dir = TrialDir("torture_torn_clean");
  bool opened = false;
  ASSERT_EQ(RunWorkload(&fenv, clean_dir, ops, &opened), ops.size());
  const uint64_t total_writes = state.writes_issued();

  for (uint64_t kill = 1; kill <= total_writes; kill += 3) {
    for (const uint64_t torn : {uint64_t{1}, uint64_t{7}}) {
      const std::string label =
          "torn" + std::to_string(torn) + "@" + std::to_string(kill);
      const std::string dir = TrialDir("torture_torn");
      FaultPlan plan;
      plan.kill_at_write = kill;
      plan.torn_prefix_bytes = torn;
      state.set_plan(plan);
      state.Reset();
      const uint64_t acked = RunWorkload(&fenv, dir, ops, &opened);
      if (!opened) continue;  // covered by the kill sweep above
      CheckRecovered(dir, ops, acked, label);
    }
  }
}

TEST(RecoveryTortureTest, CrashDuringCheckpoint) {
  const std::vector<Op> ops = Workload();

  // Clean pass with a trailing checkpoint: writes in (ops_writes, total]
  // fall inside the checkpoint protocol.
  FaultState state;
  FaultInjectingEnv fenv(Env::Posix(), &state);
  const std::string clean_dir = TrialDir("ckpt_clean");
  bool opened = false;
  ASSERT_EQ(RunWorkload(&fenv, clean_dir, ops, &opened), ops.size());
  const uint64_t ops_writes = state.writes_issued();
  {
    DurableTree::Options options;
    options.tree = TortureOptions();
    std::string error;
    auto durable = DurableTree::Open(&fenv, clean_dir, options, &error);
    ASSERT_NE(durable, nullptr) << error;
    ASSERT_TRUE(durable->Checkpoint(&error)) << error;
  }
  const uint64_t reopen_and_ckpt_writes = state.writes_issued() - ops_writes;
  ASSERT_GT(reopen_and_ckpt_writes, 0u);

  // Sweep every write of the reopen+checkpoint phase. All workload ops were
  // acked before the checkpoint began, so every one of them must survive
  // any crash inside it.
  for (uint64_t kill = 1; kill <= reopen_and_ckpt_writes; ++kill) {
    const std::string label = "ckpt-kill@" + std::to_string(kill);
    const std::string dir = TrialDir("ckpt_kill");
    FaultState build_state;
    FaultInjectingEnv build_env(Env::Posix(), &build_state);
    ASSERT_EQ(RunWorkload(&build_env, dir, ops, &opened), ops.size());

    FaultPlan plan;
    plan.kill_at_write = kill;
    plan.torn_prefix_bytes = (kill % 2 == 0) ? 5 : UINT64_MAX;
    state.set_plan(plan);
    state.Reset();
    {
      DurableTree::Options options;
      options.tree = TortureOptions();
      std::string error;
      auto durable = DurableTree::Open(&fenv, dir, options, &error);
      if (durable != nullptr) {
        durable->Checkpoint(&error);  // may fail: that is the point
      }
    }
    CheckRecovered(dir, ops, ops.size(), label);
    CheckReopenAndContinue(dir, label);
  }
}

TEST(RecoveryTortureTest, BitFlipsInTheLogNeverCrashRecovery) {
  const std::vector<Op> ops = Workload();
  Env* env = Env::Posix();
  const std::string dir = TrialDir("flip_build");
  bool opened = false;
  ASSERT_EQ(RunWorkload(env, dir, ops, &opened), ops.size());

  // Take the intact WAL bytes once, then probe flipped copies.
  const std::string wal_path = DurableTree::WalPathFor(dir);
  std::vector<uint8_t> wal_bytes;
  {
    auto file = env->Open(wal_path, false);
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(file->ReadAt(0, size_t(file->Size()), &wal_bytes));
  }
  ASSERT_GT(wal_bytes.size(), 64u);

  const std::string probe_dir = TrialDir("flip_probe");
  const std::string probe_pages = DurableTree::PagePathFor(probe_dir);
  const std::string probe_wal = DurableTree::WalPathFor(probe_dir);
  std::vector<uint8_t> page_bytes;
  {
    auto file = env->Open(DurableTree::PagePathFor(dir), false);
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(file->ReadAt(0, size_t(file->Size()), &page_bytes));
  }

  const uint64_t step = wal_bytes.size() / 29 + 1;
  for (uint64_t pos = 2; pos < wal_bytes.size(); pos += step) {
    const std::string label = "flip@" + std::to_string(pos);
    std::vector<uint8_t> flipped = wal_bytes;
    flipped[size_t(pos)] ^= uint8_t(1u << (pos % 8));
    env->Delete(probe_pages);
    env->Delete(probe_wal);
    {
      auto file = env->Open(probe_pages, true);
      ASSERT_TRUE(file->WriteAt(0, page_bytes.data(), page_bytes.size()));
      file = env->Open(probe_wal, true);
      ASSERT_TRUE(file->WriteAt(0, flipped.data(), flipped.size()));
    }
    // A flipped log byte truncates the committed prefix at worst; recovery
    // must either produce a consistent prefix state or fail with a clear
    // error — never crash, never serve a corrupt tree.
    const SgTreeOptions options = TortureOptions();
    std::string error;
    auto recovered =
        RecoverTree(Env::Posix(), probe_pages, probe_wal, &error, &options);
    if (recovered == nullptr) {
      EXPECT_FALSE(error.empty()) << label;
      continue;
    }
    EXPECT_TRUE(recovered->audit.ok()) << label;
    const uint64_t survived = recovered->report.op_seq;
    EXPECT_LE(survived, ops.size()) << label;
    EXPECT_EQ(QuerySnapshot(*recovered->tree),
              ReferenceSnapshot(ops, survived))
        << label;
  }
}

TEST(RecoveryTortureTest, UnloggedPageRotIsDetectedNotServed) {
  const std::vector<Op> ops = Workload();
  Env* env = Env::Posix();
  const std::string dir = TrialDir("rot_build");
  bool opened = false;
  ASSERT_EQ(RunWorkload(env, dir, ops, &opened), ops.size());
  {
    DurableTree::Options options;
    options.tree = TortureOptions();
    std::string error;
    auto durable = DurableTree::Open(env, dir, options, &error);
    ASSERT_NE(durable, nullptr) << error;
    ASSERT_TRUE(durable->Checkpoint(&error)) << error;
  }

  // After the checkpoint the log covers nothing, so rot in a live page is
  // unrepairable and recovery must say so. Find a live slot and flip one
  // payload byte (slot i sits at 4096 + i * (16 + page_size)).
  const std::string page_path = DurableTree::PagePathFor(dir);
  std::string error;
  auto store = FilePageStore::Open(env, page_path, &error);
  ASSERT_NE(store, nullptr) << error;
  PageId live = kInvalidPageId;
  for (PageId id = 0; id < store->TotalPages(); ++id) {
    std::vector<uint8_t> payload;
    if (store->Read(id, &payload) && !payload.empty()) {
      live = id;
      break;
    }
  }
  ASSERT_NE(live, kInvalidPageId);
  store.reset();

  const uint64_t offset =
      4096 + uint64_t(live) * (16 + TortureOptions().page_size) + 16;
  auto file = env->Open(page_path, false);
  ASSERT_NE(file, nullptr);
  std::vector<uint8_t> byte;
  ASSERT_TRUE(file->ReadAt(offset, 1, &byte));
  byte[0] ^= 0x10;
  ASSERT_TRUE(file->WriteAt(offset, byte.data(), 1));
  file.reset();

  const SgTreeOptions options = TortureOptions();
  EXPECT_EQ(RecoverTree(Env::Posix(), page_path,
                        DurableTree::WalPathFor(dir), &error, &options),
            nullptr);
  EXPECT_NE(error.find("checksum mismatch not repaired"), std::string::npos)
      << error;
}

}  // namespace
}  // namespace sgtree
