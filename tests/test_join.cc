// Differential test suite for the collection-level join API: every join
// backend (tree-vs-tree, PRETTI, FVT) must produce the exact same pair set
// as a brute-force oracle on random and adversarial collections, and the
// sharded JoinRouter's merged answer must be byte-identical to a join over
// one unsharded index holding all the data — the same central promise the
// point-query router is tested under in test_shard.cc. The repeated
// sharded-join test is a ThreadSanitizer target (see the tsan CI job).

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "common/zipf.h"
#include "exec/join_api.h"
#include "exec/query_executor.h"
#include "join/fvt_join.h"
#include "join/pretti_join.h"
#include "join/set_collection.h"
#include "join/tree_join.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "shard/join_router.h"
#include "shard/sharded_index.h"
#include "sgtree/sg_tree.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

constexpr uint32_t kBits = 120;

SgTreeOptions TreeOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.max_entries = 8;
  return options;
}

std::unique_ptr<SgTree> BuildTree(const std::vector<Transaction>& txns,
                                  Metric metric = Metric::kHamming) {
  SgTreeOptions options = TreeOptions();
  options.metric = metric;
  auto tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : txns) tree->Insert(txn);
  return tree;
}

std::vector<ItemId> Normalized(const Transaction& txn) {
  std::vector<ItemId> items = txn.items;
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  return items;
}

// Brute-force containment oracle: r ⊆ s (the empty set is a subset of
// everything), distance = |s| - |r|, canonical (tid_a, tid_b) order.
std::vector<JoinPair> OracleContainment(const std::vector<Transaction>& r,
                                        const std::vector<Transaction>& s) {
  std::vector<JoinPair> pairs;
  for (const Transaction& tr : r) {
    const std::vector<ItemId> ri = Normalized(tr);
    for (const Transaction& ts : s) {
      const std::vector<ItemId> si = Normalized(ts);
      if (std::includes(si.begin(), si.end(), ri.begin(), ri.end())) {
        pairs.push_back({tr.tid, ts.tid,
                         static_cast<double>(si.size() - ri.size())});
      }
    }
  }
  std::sort(pairs.begin(), pairs.end(), CanonicalPairLess);
  return pairs;
}

// Brute-force similarity oracle over exact signatures — the same Distance()
// the tree join applies to leaf-entry pairs, so matching pairs carry
// bit-identical distances.
std::vector<JoinPair> OracleSimilarity(const std::vector<Transaction>& r,
                                       const std::vector<Transaction>& s,
                                       Metric metric, double epsilon) {
  std::vector<JoinPair> pairs;
  for (const Transaction& tr : r) {
    const Signature sr = Signature::FromItems(tr.items, kBits);
    for (const Transaction& ts : s) {
      const Signature ss = Signature::FromItems(ts.items, kBits);
      const double d = Distance(sr, ss, metric);
      if (d <= epsilon) pairs.push_back({tr.tid, ts.tid, d});
    }
  }
  std::sort(pairs.begin(), pairs.end(), CanonicalPairLess);
  return pairs;
}

// Both trees plus the derived PRETTI / FVT structures, with the lifetimes
// the backends require (collections outlive postings/trie outlive
// backends).
struct JoinSides {
  std::unique_ptr<SgTree> r_tree;
  std::unique_ptr<SgTree> s_tree;
  SetCollection r_sets;
  SetCollection s_sets;
  std::unique_ptr<InvertedPostings> postings;
  std::unique_ptr<FvtTrie> trie;

  explicit JoinSides(const std::vector<Transaction>& r,
                     const std::vector<Transaction>& s,
                     Metric metric = Metric::kHamming)
      : r_tree(BuildTree(r, metric)), s_tree(BuildTree(s, metric)) {
    r_sets = SetCollection::FromTree(*r_tree, {});
    s_sets = SetCollection::FromTree(*s_tree, {});
    postings = std::make_unique<InvertedPostings>(s_sets);
    trie = std::make_unique<FvtTrie>(s_sets);
  }

  TreeJoinBackend Tree() const { return {*r_tree, *s_tree}; }
  PrettiJoinBackend Pretti() const { return {r_sets, *postings}; }
  FvtJoinBackend Fvt() const { return {r_sets, *trie}; }
};

// Runs the containment join with all three backends and asserts each
// equals the brute-force oracle exactly (pairs, distances, and order).
void ExpectAllBackendsMatchOracle(const std::vector<Transaction>& r,
                                  const std::vector<Transaction>& s) {
  const std::vector<JoinPair> oracle = OracleContainment(r, s);
  const JoinSides sides(r, s);
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};

  std::vector<JoinPair> tree_pairs;
  const JoinResult tree_result =
      CollectJoin(sides.Tree(), request, &tree_pairs);
  ASSERT_TRUE(tree_result.ok()) << tree_result.error;
  EXPECT_EQ(tree_pairs, oracle) << "tree join diverged from the oracle";
  EXPECT_EQ(tree_result.pairs, oracle.size());

  std::vector<JoinPair> pretti_pairs;
  const JoinResult pretti_result =
      CollectJoin(sides.Pretti(), request, &pretti_pairs);
  ASSERT_TRUE(pretti_result.ok()) << pretti_result.error;
  EXPECT_EQ(pretti_pairs, oracle) << "pretti join diverged from the oracle";

  std::vector<JoinPair> fvt_pairs;
  const JoinResult fvt_result = CollectJoin(sides.Fvt(), request, &fvt_pairs);
  ASSERT_TRUE(fvt_result.ok()) << fvt_result.error;
  EXPECT_EQ(fvt_pairs, oracle) << "fvt join diverged from the oracle";
}

// Random sets with the given item skew; tids offset per side so the two
// collections never share a tid.
std::vector<Transaction> UniformSets(uint64_t seed, uint32_t n,
                                     uint64_t base_tid, uint32_t num_items,
                                     uint32_t max_size) {
  Rng rng(seed);
  std::vector<Transaction> txns;
  txns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Transaction txn;
    txn.tid = base_tid + i;
    const auto size = 1 + static_cast<uint32_t>(rng.UniformInt(max_size));
    txn.items = testing::RandomItems(rng, num_items, size);
    txns.push_back(std::move(txn));
  }
  return txns;
}

std::vector<Transaction> ZipfSets(uint64_t seed, uint32_t n,
                                  uint64_t base_tid, double theta) {
  Rng rng(seed);
  const ZipfSampler zipf(kBits, theta);
  std::vector<Transaction> txns;
  txns.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Transaction txn;
    txn.tid = base_tid + i;
    const auto size = 1 + static_cast<uint32_t>(rng.UniformInt(6));
    while (txn.items.size() < size) {
      const auto item = static_cast<ItemId>(zipf.Sample(rng));
      if (std::find(txn.items.begin(), txn.items.end(), item) ==
          txn.items.end()) {
        txn.items.push_back(item);
      }
    }
    std::sort(txn.items.begin(), txn.items.end());
    txns.push_back(std::move(txn));
  }
  return txns;
}

// ---------------------------------------------------------------------------
// Validation and support checking.

TEST(JoinValidationTest, ContainmentNeedsNoParameters) {
  EXPECT_EQ(ValidateJoinRequest({JoinType::kContainment, Metric::kHamming,
                                 -123.0}),
            "");
}

TEST(JoinValidationTest, MessagesNameTheOffendingValue) {
  EXPECT_EQ(ValidateJoinRequest({JoinType::kSimilarity, Metric::kJaccard, 0.0}),
            "threshold must be in (0,1] for jaccard similarity joins, got 0");
  EXPECT_EQ(ValidateJoinRequest({JoinType::kSimilarity, Metric::kDice, 1.5}),
            "threshold must be in (0,1] for dice similarity joins, got 1.5");
  EXPECT_EQ(
      ValidateJoinRequest({JoinType::kSimilarity, Metric::kHamming, -1.0}),
      "threshold must be a finite distance >= 0 for hamming similarity "
      "joins, got -1");
  EXPECT_EQ(ValidateJoinRequest(
                {JoinType::kSimilarity, Metric::kCosine,
                 std::numeric_limits<double>::quiet_NaN()}),
            "threshold must be a number for similarity joins, got NaN");
}

TEST(JoinValidationTest, ExecuteJoinSurfacesValidationWithoutRunning) {
  const JoinSides sides(UniformSets(1, 20, 100, 40, 4),
                        UniformSets(2, 20, 500, 40, 6));
  std::vector<JoinPair> pairs;
  const JoinResult result = CollectJoin(
      sides.Tree(), {JoinType::kSimilarity, Metric::kJaccard, 0.0}, &pairs);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error,
            "threshold must be in (0,1] for jaccard similarity joins, got 0");
  EXPECT_EQ(result.pairs, 0u);
  EXPECT_TRUE(pairs.empty());
}

TEST(JoinSupportTest, PrettiAndFvtRefuseSimilarity) {
  const JoinSides sides(UniformSets(3, 10, 100, 40, 4),
                        UniformSets(4, 10, 500, 40, 6));
  const JoinRequest similar{JoinType::kSimilarity, Metric::kHamming, 4.0};
  EXPECT_EQ(sides.Pretti().SupportReason(similar),
            "pretti is a containment-only join; use the tree backend for "
            "similarity joins");
  EXPECT_EQ(sides.Fvt().SupportReason(similar),
            "fvt is a containment-only join; use the tree backend for "
            "similarity joins");
  EXPECT_EQ(sides.Tree().SupportReason(similar), "");

  // The tree backend serves the trees' build-time metric only.
  const JoinRequest jaccard{JoinType::kSimilarity, Metric::kJaccard, 0.5};
  EXPECT_EQ(sides.Tree().SupportReason(jaccard),
            "tree join runs the trees' build-time metric (hamming), got "
            "jaccard");

  std::vector<JoinPair> pairs;
  const JoinResult result = CollectJoin(sides.Fvt(), similar, &pairs);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.error,
            "fvt is a containment-only join; use the tree backend for "
            "similarity joins");
  EXPECT_TRUE(pairs.empty());
}

// ---------------------------------------------------------------------------
// Golden fixture: a small join whose full answer, including the empty-set
// row and the canonical order, is pinned by hand.

TEST(GoldenJoinTest, SmallFixturePinsPairsAndCanonicalOrder) {
  const std::vector<Transaction> r = {
      {1, {1}}, {2, {1, 2}}, {3, {}}, {4, {5}}};
  const std::vector<Transaction> s = {
      {10, {1, 2, 3}}, {11, {1}}, {12, {2, 5}}};
  const std::vector<JoinPair> expected = {
      {1, 10, 2}, {1, 11, 0}, {2, 10, 1}, {3, 10, 3},
      {3, 11, 1}, {3, 12, 2}, {4, 12, 1}};
  ASSERT_EQ(OracleContainment(r, s), expected);
  ExpectAllBackendsMatchOracle(r, s);
}

// ---------------------------------------------------------------------------
// Differential containment joins: tree == pretti == fvt == oracle.

TEST(DifferentialJoinTest, ClusteredCollections) {
  const Dataset left = testing::ClusteredDataset(11, 160, kBits, 5, 10, 3);
  const Dataset right = testing::ClusteredDataset(12, 140, kBits, 5, 14, 3);
  std::vector<Transaction> r = left.transactions;
  std::vector<Transaction> s = right.transactions;
  for (Transaction& txn : r) txn.tid += 1000;
  for (Transaction& txn : s) txn.tid += 5000;
  ExpectAllBackendsMatchOracle(r, s);
}

TEST(DifferentialJoinTest, ZipfSkewedCollections) {
  ExpectAllBackendsMatchOracle(ZipfSets(21, 200, 1000, 0.9),
                               ZipfSets(22, 200, 5000, 0.9));
}

TEST(DifferentialJoinTest, DuplicateHeavyCollections) {
  // Ten distinct sets spread over 120 rows per side: identical R sets must
  // share one trie path / one probe, and every duplicate must still emit.
  Rng rng(31);
  std::vector<std::vector<ItemId>> pool;
  for (int i = 0; i < 10; ++i) {
    pool.push_back(testing::RandomItems(rng, 25, 1 + (i % 5)));
  }
  std::vector<Transaction> r, s;
  for (uint32_t i = 0; i < 120; ++i) {
    r.push_back({1000 + i, pool[rng.UniformInt(pool.size())]});
    s.push_back({5000 + i, pool[rng.UniformInt(pool.size())]});
  }
  ExpectAllBackendsMatchOracle(r, s);
}

TEST(DifferentialJoinTest, EmptySetsOnBothSides) {
  // The empty set is a subset of everything (and only a superset of other
  // empty sets); every backend must agree on those pairs.
  Rng rng(41);
  std::vector<Transaction> r, s;
  for (uint32_t i = 0; i < 60; ++i) {
    Transaction tr{1000 + i, {}};
    Transaction ts{5000 + i, {}};
    if (i % 7 != 0) {
      tr.items = testing::RandomItems(
          rng, 30, 1 + static_cast<uint32_t>(rng.UniformInt(4)));
      ts.items = testing::RandomItems(
          rng, 30, 1 + static_cast<uint32_t>(rng.UniformInt(4)));
    }
    r.push_back(std::move(tr));
    s.push_back(std::move(ts));
  }
  ExpectAllBackendsMatchOracle(r, s);
}

TEST(DifferentialJoinTest, EmptyCollections) {
  const std::vector<Transaction> some = UniformSets(51, 30, 1000, 40, 5);
  ExpectAllBackendsMatchOracle({}, some);
  ExpectAllBackendsMatchOracle(some, {});
  ExpectAllBackendsMatchOracle({}, {});
}

// ---------------------------------------------------------------------------
// Similarity joins (tree backend only).

TEST(SimilarityJoinTest, TreeMatchesBruteForceHamming) {
  const std::vector<Transaction> r = UniformSets(61, 80, 1000, 40, 6);
  const std::vector<Transaction> s = UniformSets(62, 80, 5000, 40, 6);
  const JoinSides sides(r, s);
  const JoinRequest request{JoinType::kSimilarity, Metric::kHamming, 4.0};
  std::vector<JoinPair> pairs;
  const JoinResult result = CollectJoin(sides.Tree(), request, &pairs);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(pairs, OracleSimilarity(r, s, Metric::kHamming, 4.0));
}

TEST(SimilarityJoinTest, TreeMatchesBruteForceJaccard) {
  const std::vector<Transaction> r = UniformSets(63, 80, 1000, 30, 6);
  const std::vector<Transaction> s = UniformSets(64, 80, 5000, 30, 6);
  // The tree join serves the trees' build-time metric, so the jaccard join
  // needs jaccard trees (a hamming tree refuses with a one-line reason).
  const JoinSides sides(r, s, Metric::kJaccard);
  // Threshold is the minimum similarity; the join runs at epsilon = 1 - t.
  const JoinRequest request{JoinType::kSimilarity, Metric::kJaccard, 0.5};
  std::vector<JoinPair> pairs;
  const JoinResult result = CollectJoin(sides.Tree(), request, &pairs);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(pairs, OracleSimilarity(r, s, Metric::kJaccard, 0.5));
}

// ---------------------------------------------------------------------------
// Streaming semantics: cancellation and trace consistency.

TEST(JoinSinkTest, LimitSinkCancelsEveryBackend) {
  const std::vector<Transaction> r = ZipfSets(71, 100, 1000, 0.9);
  const std::vector<Transaction> s = ZipfSets(72, 100, 5000, 0.9);
  const JoinSides sides(r, s);
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};
  const size_t total = OracleContainment(r, s).size();
  ASSERT_GT(total, 5u) << "fixture too sparse to test truncation";

  const JoinBackend* backends[] = {nullptr, nullptr, nullptr};
  const TreeJoinBackend tree = sides.Tree();
  const PrettiJoinBackend pretti = sides.Pretti();
  const FvtJoinBackend fvt = sides.Fvt();
  backends[0] = &tree;
  backends[1] = &pretti;
  backends[2] = &fvt;
  for (const JoinBackend* backend : backends) {
    std::vector<JoinPair> pairs;
    LimitJoinSink sink(&pairs, 5);
    const JoinResult result = ExecuteJoin(*backend, request, &sink);
    ASSERT_TRUE(result.ok()) << result.error;
    EXPECT_TRUE(result.truncated) << backend->name();
    EXPECT_EQ(pairs.size(), 5u) << backend->name();
    EXPECT_EQ(result.pairs, 5u) << backend->name();
  }
}

TEST(JoinTraceTest, TracesAreSelfConsistent) {
  const JoinSides sides(ZipfSets(81, 120, 1000, 0.8),
                        ZipfSets(82, 120, 5000, 0.8));
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};

  std::vector<JoinPair> pairs;
  const JoinResult tree_result = CollectJoin(sides.Tree(), request, &pairs);
  ASSERT_TRUE(tree_result.ok());
  EXPECT_EQ(CheckTraceInvariants(
                tree_result.trace,
                {.pooled = true, .strict_pruning = false, .predicate = true}),
            "");
  EXPECT_GT(tree_result.stats.nodes_accessed, 0u);

  for (int which = 0; which < 2; ++which) {
    const PrettiJoinBackend pretti = sides.Pretti();
    const FvtJoinBackend fvt = sides.Fvt();
    const JoinBackend& backend =
        which == 0 ? static_cast<const JoinBackend&>(pretti)
                   : static_cast<const JoinBackend&>(fvt);
    const JoinResult result = CollectJoin(backend, request, &pairs);
    ASSERT_TRUE(result.ok());
    // Trie walks have no buffer pool; only the relaxed invariants apply.
    EXPECT_EQ(CheckTraceInvariants(result.trace,
                                        {.pooled = false,
                                         .strict_pruning = false,
                                         .predicate = false}),
              "")
        << backend.name();
    EXPECT_GT(result.stats.nodes_accessed, 0u) << backend.name();
  }
}

// ---------------------------------------------------------------------------
// Sharded joins: the router's merged answer is byte-identical to one
// unsharded index, for every algorithm and shard count.

ShardedIndexOptions ShardOptions(uint32_t num_shards) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.tree = TreeOptions();
  return options;
}

TEST(ShardedJoinTest, ByteIdenticalToSingleIndexForEveryAlgorithm) {
  const std::vector<Transaction> r = ZipfSets(91, 150, 1000, 0.9);
  const std::vector<Transaction> s = ZipfSets(92, 150, 5000, 0.9);
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};

  // Single-index oracle: one tree per side over all the data.
  const JoinSides single(r, s);
  std::vector<JoinPair> oracle;
  ASSERT_TRUE(CollectJoin(single.Tree(), request, &oracle).ok());
  ASSERT_EQ(oracle, OracleContainment(r, s));

  QueryExecutor executor;
  for (const uint32_t left_shards : {1u, 2u, 8u}) {
    for (const uint32_t right_shards : {1u, 3u}) {
      ShardedIndex left(ShardOptions(left_shards));
      ShardedIndex right(ShardOptions(right_shards));
      ASSERT_EQ(left.InsertBatch(r), r.size());
      ASSERT_EQ(right.InsertBatch(s), s.size());
      for (const JoinAlgo algo :
           {JoinAlgo::kTree, JoinAlgo::kPretti, JoinAlgo::kFvt}) {
        JoinRouterOptions options;
        options.algo = algo;
        JoinRouter router(left, right, &executor, options);
        std::vector<JoinPair> pairs;
        const JoinResult result = router.Run(request, &pairs);
        ASSERT_TRUE(result.ok()) << result.error;
        EXPECT_EQ(pairs, oracle)
            << JoinAlgoName(algo) << " over " << left_shards << "x"
            << right_shards << " shards diverged from the single index";
        EXPECT_EQ(result.pairs, oracle.size());
      }
    }
  }
}

TEST(ShardedJoinTest, RouterFeedsJoinMetrics) {
  const std::vector<Transaction> r = UniformSets(95, 60, 1000, 40, 5);
  const std::vector<Transaction> s = UniformSets(96, 60, 5000, 40, 5);
  ShardedIndex left(ShardOptions(2));
  ShardedIndex right(ShardOptions(3));
  ASSERT_EQ(left.InsertBatch(r), r.size());
  ASSERT_EQ(right.InsertBatch(s), s.size());

  QueryExecutor executor;
  obs::MetricsRegistry metrics;
  JoinRouterOptions options;
  options.algo = JoinAlgo::kPretti;
  options.metrics = &metrics;
  JoinRouter router(left, right, &executor, options);

  std::vector<JoinPair> pairs;
  const JoinResult result =
      router.Run({JoinType::kContainment, Metric::kHamming, 0.0}, &pairs);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(metrics.GetCounter("join.requests")->Value(), 1u);
  EXPECT_EQ(metrics.GetCounter("join.rejected")->Value(), 0u);
  EXPECT_EQ(metrics.GetCounter("join.pairs")->Value(), result.pairs);
  EXPECT_EQ(metrics.GetCounter("join.fanout_tasks")->Value(), 2u * 3u);
  EXPECT_EQ(metrics.GetHistogram("join.latency_us")->Count(), 1u);

  // A malformed request is rejected at the API boundary and counted.
  const JoinResult rejected =
      router.Run({JoinType::kSimilarity, Metric::kJaccard, 0.0}, &pairs);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.error,
            "threshold must be in (0,1] for jaccard similarity joins, got 0");
  EXPECT_EQ(metrics.GetCounter("join.requests")->Value(), 2u);
  EXPECT_EQ(metrics.GetCounter("join.rejected")->Value(), 1u);
}

TEST(ShardedJoinTest, SimilarityRunsShardedThroughTreeAlgo) {
  const std::vector<Transaction> r = UniformSets(97, 70, 1000, 40, 6);
  const std::vector<Transaction> s = UniformSets(98, 70, 5000, 40, 6);
  ShardedIndex left(ShardOptions(4));
  ShardedIndex right(ShardOptions(2));
  ASSERT_EQ(left.InsertBatch(r), r.size());
  ASSERT_EQ(right.InsertBatch(s), s.size());

  QueryExecutor executor;
  JoinRouterOptions options;
  options.algo = JoinAlgo::kTree;
  JoinRouter router(left, right, &executor, options);
  const JoinRequest request{JoinType::kSimilarity, Metric::kHamming, 5.0};
  std::vector<JoinPair> pairs;
  const JoinResult result = router.Run(request, &pairs);
  ASSERT_TRUE(result.ok()) << result.error;
  EXPECT_EQ(pairs, OracleSimilarity(r, s, Metric::kHamming, 5.0));

  // The containment-only algorithms refuse sharded similarity too.
  options.algo = JoinAlgo::kPretti;
  JoinRouter pretti_router(left, right, &executor, options);
  const JoinResult refused = pretti_router.Run(request, &pairs);
  EXPECT_FALSE(refused.ok());
  EXPECT_EQ(refused.error,
            "pretti is a containment-only join; use the tree backend for "
            "similarity joins");
}

// Multi-threaded scatter-gather determinism: repeated sharded joins over a
// multi-lane executor must return the identical canonical vector every
// time. This is the join suite's ThreadSanitizer entry point.
TEST(ShardedJoinStressTest, RepeatedShardedJoinsAreDeterministic) {
  const std::vector<Transaction> r = ZipfSets(101, 180, 1000, 0.9);
  const std::vector<Transaction> s = ZipfSets(102, 180, 5000, 0.9);
  ShardedIndex left(ShardOptions(8));
  ShardedIndex right(ShardOptions(4));
  ASSERT_EQ(left.InsertBatch(r), r.size());
  ASSERT_EQ(right.InsertBatch(s), s.size());

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  QueryExecutor executor(exec_options);
  const JoinRequest request{JoinType::kContainment, Metric::kHamming, 0.0};
  const std::vector<JoinPair> oracle = OracleContainment(r, s);

  for (const JoinAlgo algo :
       {JoinAlgo::kTree, JoinAlgo::kPretti, JoinAlgo::kFvt}) {
    JoinRouterOptions options;
    options.algo = algo;
    JoinRouter router(left, right, &executor, options);
    for (int round = 0; round < 3; ++round) {
      std::vector<JoinPair> pairs;
      const JoinResult result = router.Run(request, &pairs);
      ASSERT_TRUE(result.ok()) << result.error;
      ASSERT_EQ(pairs, oracle)
          << JoinAlgoName(algo) << " round " << round << " diverged";
    }
  }
}

}  // namespace
}  // namespace sgtree
