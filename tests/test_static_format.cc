// Format-conformance tests for the static SG-tree image (static_format.h):
// the builder's byte-stability promise pinned by golden files, version /
// magic / truncation gating with one-line reasons in the LoadTree style,
// and exhaustive single-bit corruption — every flip must be rejected
// cleanly with checksums on, and must never crash with checksums off.
//
// Regenerate the golden fixtures after a deliberate format change with
//   SGTREE_REGEN_GOLDEN=1 ctest -R StaticGolden
// and review the binary diff like any other format review.

#include "static/static_format.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "sgtree/sg_tree.h"
#include "static/static_tree_backend.h"
#include "static/static_tree_builder.h"
#include "static/static_tree_view.h"
#include "storage/buffer_pool.h"

namespace sgtree {
namespace {

namespace sf = ::sgtree::static_format;

constexpr uint32_t kBits = 96;

SgTreeOptions TreeOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.max_entries = 8;
  return options;
}

// Hardcoded arithmetic transactions — deliberately not Rng-driven, so the
// golden bytes cannot drift with the random number generator.
std::vector<Transaction> DeterministicTransactions(uint32_t n) {
  std::vector<Transaction> txns;
  txns.reserve(n);
  for (uint32_t t = 0; t < n; ++t) {
    Transaction txn;
    txn.tid = t;
    const uint32_t count = 3 + t % 5;
    for (uint32_t i = 0; i < count; ++i) {
      const auto item = static_cast<ItemId>((t * 7 + i * 13) % kBits);
      if (std::find(txn.items.begin(), txn.items.end(), item) ==
          txn.items.end()) {
        txn.items.push_back(item);
      }
    }
    std::sort(txn.items.begin(), txn.items.end());
    txns.push_back(std::move(txn));
  }
  return txns;
}

std::unique_ptr<SgTree> DeterministicTree(uint32_t n) {
  auto tree = std::make_unique<SgTree>(TreeOptions());
  for (const Transaction& txn : DeterministicTransactions(n)) {
    tree->Insert(txn);
  }
  return tree;
}

std::vector<uint8_t> BuildImage(const SgTree& tree) {
  std::vector<uint8_t> bytes;
  std::string error;
  EXPECT_TRUE(BuildStaticImage(tree, &bytes, &error)) << error;
  return bytes;
}

// Recomputes the header CRC after a test patched a header field, so the
// patched field itself — not the checksum guard — is what the open rejects.
void FixHeaderCrc(std::vector<uint8_t>* bytes) {
  sf::StoreU32(bytes->data() + sf::kHeaderCrcOffset,
               Crc32c(bytes->data(), sf::kHeaderCrcOffset));
}

std::unique_ptr<StaticTreeView> OpenImage(const std::vector<uint8_t>& bytes,
                                          std::string* error,
                                          bool verify_checksums = true) {
  StaticOpenOptions options;
  options.tree = TreeOptions();
  options.verify_checksums = verify_checksums;
  return StaticTreeView::OpenFromBytes(bytes.data(), bytes.size(), options,
                                       error);
}

std::string GoldenPath(const std::string& name) {
  return std::string(SGTREE_GOLDEN_DIR) + "/" + name;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

// Compares `bytes` against the named golden fixture — or rewrites the
// fixture when SGTREE_REGEN_GOLDEN is set in the environment.
void ExpectMatchesGolden(const std::vector<uint8_t>& bytes,
                         const std::string& name) {
  const std::string path = GoldenPath(name);
  if (std::getenv("SGTREE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write golden " << path;
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
    return;
  }
  std::vector<uint8_t> golden;
  ASSERT_TRUE(ReadFileBytes(path, &golden))
      << "missing golden fixture " << path
      << " (regenerate with SGTREE_REGEN_GOLDEN=1)";
  ASSERT_EQ(bytes.size(), golden.size()) << name;
  for (size_t i = 0; i < bytes.size(); ++i) {
    ASSERT_EQ(bytes[i], golden[i])
        << name << ": first difference at byte offset " << i;
  }
}

// ---------------------------------------------------------------------------
// Byte-stability.
// ---------------------------------------------------------------------------

TEST(StaticBuilderTest, OutputIsAPureFunctionOfTheTree) {
  const std::vector<uint8_t> a = BuildImage(*DeterministicTree(60));
  const std::vector<uint8_t> b = BuildImage(*DeterministicTree(60));
  EXPECT_EQ(a, b);
}

TEST(StaticGoldenTest, SmallImageMatchesGoldenBytes) {
  ExpectMatchesGolden(BuildImage(*DeterministicTree(60)),
                      "static_v1_small.bin");
}

TEST(StaticGoldenTest, EmptyImageMatchesGoldenBytes) {
  const SgTree empty(TreeOptions());
  ExpectMatchesGolden(BuildImage(empty), "static_v1_empty.bin");
}

TEST(StaticGoldenTest, GoldenImageOpensAndAnswersLikeTheBuilder) {
  // The checked-in fixture — bytes written by a past build on a possibly
  // different host — must open and answer exactly like a freshly built
  // image. This is the cross-run, cross-host half of byte-stability.
  std::vector<uint8_t> golden;
  if (!ReadFileBytes(GoldenPath("static_v1_small.bin"), &golden)) {
    GTEST_SKIP() << "golden fixture not present";
  }
  std::string error;
  auto view = OpenImage(golden, &error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(view->size(), 60u);
  EXPECT_EQ(view->num_bits(), kBits);

  auto tree = DeterministicTree(60);
  QueryRequest request;
  request.type = QueryType::kKnn;
  request.query =
      Signature::FromItems(std::vector<ItemId>{0, 13, 26}, kBits);
  request.k = 5;
  BufferPool dynamic_pool(64);
  BufferPool static_pool(64);
  for (int type = 0; type < 6; ++type) {
    request.type = static_cast<QueryType>(type);
    request.epsilon = 10.0;
    dynamic_pool.Clear();
    static_pool.Clear();
    const QueryResult expected =
        Execute(SgTreeBackend(*tree), request, &dynamic_pool);
    const QueryResult actual =
        Execute(StaticTreeBackend(*view), request, &static_pool);
    EXPECT_EQ(expected, actual) << "query type " << type;
  }
}

// ---------------------------------------------------------------------------
// Version / magic / truncation gating.
// ---------------------------------------------------------------------------

TEST(StaticFormatGateTest, RejectsBumpedVersion) {
  std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
  sf::StoreU32(bytes.data() + sf::kVersionOffset, sf::kVersion + 1);
  FixHeaderCrc(&bytes);
  std::string error;
  EXPECT_EQ(OpenImage(bytes, &error), nullptr);
  EXPECT_EQ(error, "unsupported static format version " +
                       std::to_string(sf::kVersion + 1));
}

TEST(StaticFormatGateTest, RejectsUnknownFlags) {
  std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
  sf::StoreU32(bytes.data() + sf::kFlagsOffset, sf::kFlagSparse);
  FixHeaderCrc(&bytes);
  std::string error;
  EXPECT_EQ(OpenImage(bytes, &error), nullptr);
  EXPECT_EQ(error, "unsupported format flags");
}

TEST(StaticFormatGateTest, RejectsForeignMagic) {
  std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
  const char foreign[8] = {'S', 'G', 'T', 'R', 'E', 'E', '0', '1'};
  std::copy(foreign, foreign + 8, bytes.begin());
  FixHeaderCrc(&bytes);
  std::string error;
  EXPECT_EQ(OpenImage(bytes, &error), nullptr);
  EXPECT_EQ(error, "not a static SG-tree (bad magic)");
}

TEST(StaticFormatGateTest, RejectsTruncation) {
  const std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
  std::string error;
  // Shorter than a header: one fixed reason.
  for (const size_t n : {size_t{0}, size_t{10}, sf::kHeaderSize - 1}) {
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(n));
    EXPECT_EQ(OpenImage(prefix, &error), nullptr) << n;
    EXPECT_EQ(error, "truncated file (no header)") << n;
  }
  // A full header over a torn body: the size cross-check fires before any
  // node offset can be dereferenced.
  std::vector<uint8_t> torn(bytes.begin(), bytes.end() - 9);
  EXPECT_EQ(OpenImage(torn, &error), nullptr);
  EXPECT_NE(error.find("file size mismatch"), std::string::npos) << error;
}

TEST(StaticFormatGateTest, RejectsHostileHeaderFields) {
  struct Case {
    size_t offset;
    uint32_t value;
    std::string reason_fragment;
  };
  const std::vector<Case> cases = {
      {sf::kNumBitsOffset, 0, "invalid signature width"},
      {sf::kNumBitsOffset, sf::kMaxNumBits + 1, "invalid signature width"},
      {sf::kMaxEntriesOffset, 0, "invalid node capacity"},
      {sf::kNodeCountOffset, 0xffffffffu, "node count exceeds file"},
  };
  for (const Case& c : cases) {
    std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
    sf::StoreU32(bytes.data() + c.offset, c.value);
    FixHeaderCrc(&bytes);
    std::string error;
    EXPECT_EQ(OpenImage(bytes, &error), nullptr) << c.reason_fragment;
    EXPECT_NE(error.find(c.reason_fragment), std::string::npos) << error;
  }
}

TEST(StaticFormatGateTest, RejectsSignatureWidthMismatch) {
  const std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(20));
  StaticOpenOptions options;
  options.tree = TreeOptions();
  options.tree.num_bits = kBits + 64;  // Caller disagrees with the file.
  std::string error;
  EXPECT_EQ(StaticTreeView::OpenFromBytes(bytes.data(), bytes.size(), options,
                                          &error),
            nullptr);
  EXPECT_EQ(error,
            "signature width mismatch (file has " + std::to_string(kBits) +
                " bits)");
}

// ---------------------------------------------------------------------------
// Corruption injection: single-bit flips over the whole image.
// ---------------------------------------------------------------------------

TEST(StaticCorruptionTest, EveryBitFlipIsRejectedWithChecksumsOn) {
  // The header CRC covers [0, 84), the stored header CRC at [84, 88) is
  // compared against it, and the body CRC covers [88, file_size) — so with
  // verification on there is no bit in the file whose flip can go
  // unnoticed.
  const std::vector<uint8_t> pristine = BuildImage(*DeterministicTree(24));
  std::vector<uint8_t> bytes = pristine;
  std::string error;
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      EXPECT_EQ(OpenImage(bytes, &error), nullptr)
          << "flip at byte " << byte << " bit " << bit << " was accepted";
      EXPECT_FALSE(error.empty());
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
    }
  }
  EXPECT_EQ(bytes, pristine);
}

TEST(StaticCorruptionTest, BitFlipsWithChecksumsOffNeverCrash) {
  // With the body CRC waived, structurally consistent corruption (flipped
  // signature bits, rewritten leaf tids) opens successfully — by design, so
  // the auditor can localize damage. The contract under test: whatever
  // opens must stay memory-safe under all six query types; whatever does
  // not must fail with a reason, not a crash.
  const std::vector<uint8_t> pristine = BuildImage(*DeterministicTree(24));
  std::vector<uint8_t> bytes = pristine;
  const Signature query =
      Signature::FromItems(std::vector<ItemId>{2, 15, 28}, kBits);
  size_t opened = 0;
  for (size_t flip = 0; flip < bytes.size() * 8; flip += 3) {
    const size_t byte = flip / 8;
    const auto mask = static_cast<uint8_t>(1u << (flip % 8));
    bytes[byte] ^= mask;
    std::string error;
    auto view = OpenImage(bytes, &error, /*verify_checksums=*/false);
    if (view == nullptr) {
      EXPECT_FALSE(error.empty());
    } else {
      ++opened;
      const StaticTreeBackend backend(*view);
      for (int type = 0; type < 6; ++type) {
        QueryRequest request;
        request.type = static_cast<QueryType>(type);
        request.query = query;
        request.k = 3;
        request.epsilon = 8.0;
        const QueryResult result = Execute(backend, request);
        EXPECT_TRUE(result.ok());
      }
    }
    bytes[byte] ^= mask;
  }
  // Sanity: the sweep actually exercised the opened-but-corrupt path (all
  // signature-word flips survive the structural checks).
  EXPECT_GT(opened, 0u);
}

TEST(StaticCorruptionTest, BodyCorruptionNamesTheChecksum) {
  std::vector<uint8_t> bytes = BuildImage(*DeterministicTree(24));
  bytes[bytes.size() - 1] ^= 0x40;  // Deep in the last node record.
  std::string error;
  EXPECT_EQ(OpenImage(bytes, &error), nullptr);
  EXPECT_EQ(error, "body checksum mismatch (file is corrupt)");
  error.clear();
  // The same damage is admitted once checksums are off (it only touches a
  // signature word), which is exactly what check --static relies on.
  EXPECT_NE(OpenImage(bytes, &error, /*verify_checksums=*/false), nullptr)
      << error;
}

}  // namespace
}  // namespace sgtree
