// Tests for the transaction-size-statistics bound (the Section 6
// "statistics from the indexed data" generalization) and its integration
// into the tree.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/distance.h"
#include "common/rng.h"
#include "data/census_generator.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::RandomItems;
using ::sgtree::testing::RandomSignature;

class AreaStatsBoundTest : public ::testing::TestWithParam<Metric> {};

TEST_P(AreaStatsBoundTest, SoundForSizeConstrainedGroups) {
  Rng rng(401);
  const uint32_t bits = 200;
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t lo = 2 + static_cast<uint32_t>(rng.UniformInt(6));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(8));
    Signature cover(bits);
    std::vector<Signature> members;
    for (int g = 0; g < 5; ++g) {
      const auto size =
          lo + static_cast<uint32_t>(rng.UniformInt(hi - lo + 1));
      const Signature t =
          Signature::FromItems(RandomItems(rng, bits, size), bits);
      cover.UnionWith(t);
      members.push_back(t);
    }
    const Signature query = RandomSignature(rng, bits, 0.05);
    const double bound =
        MinDistBoundAreaStats(query, cover, GetParam(), lo, hi);
    for (const Signature& t : members) {
      EXPECT_LE(bound, Distance(query, t, GetParam()) + 1e-12)
          << MetricName(GetParam()) << " lo=" << lo << " hi=" << hi;
    }
  }
}

TEST_P(AreaStatsBoundTest, TrivialWindowEqualsGenericBound) {
  Rng rng(402);
  for (int trial = 0; trial < 100; ++trial) {
    const Signature query = RandomSignature(rng, 150, 0.08);
    const Signature cover = RandomSignature(rng, 150, 0.3);
    EXPECT_DOUBLE_EQ(
        MinDistBoundAreaStats(query, cover, GetParam(), 0, 150),
        MinDistBound(query, cover, GetParam()));
  }
}

TEST_P(AreaStatsBoundTest, NeverLooserThanGeneric) {
  Rng rng(403);
  for (int trial = 0; trial < 100; ++trial) {
    const Signature query = RandomSignature(rng, 150, 0.08);
    const Signature cover = RandomSignature(rng, 150, 0.3);
    const uint32_t lo = static_cast<uint32_t>(rng.UniformInt(20));
    const uint32_t hi = lo + static_cast<uint32_t>(rng.UniformInt(130));
    EXPECT_GE(MinDistBoundAreaStats(query, cover, GetParam(), lo, hi) + 1e-12,
              MinDistBound(query, cover, GetParam()));
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, AreaStatsBoundTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

TEST(AreaStatsBoundTest, DegenerateWindowEqualsFixedDimForHamming) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    const Signature query =
        Signature::FromItems(RandomItems(rng, 100, 8), 100);
    const Signature cover = RandomSignature(rng, 100, 0.3);
    EXPECT_DOUBLE_EQ(
        MinDistBoundAreaStats(query, cover, Metric::kHamming, 8, 8),
        MinDistBound(query, cover, Metric::kHamming, 8));
  }
}

TEST(AreaStatsBoundTest, EmptyQueryBoundIsMinArea) {
  // dist(empty, t) = |t| >= min_area.
  const Signature query(64);
  Signature cover(64);
  cover.Set(3);
  cover.Set(9);
  EXPECT_DOUBLE_EQ(
      MinDistBoundAreaStats(query, cover, Metric::kHamming, 5, 20), 5.0);
}

// ---------------------------------------------------------------------------
// Tree integration.
// ---------------------------------------------------------------------------

TEST(TreeAreaStatsTest, TracksObservedWindow) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.max_entries = 6;
  SgTree tree(options);
  EXPECT_EQ(tree.TransactionAreaBounds(), (std::pair<uint32_t, uint32_t>{
                                              0, 64}));  // Nothing seen.
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 2, 3}, 64), 1);
  tree.Insert(
      Signature::FromItems(std::vector<uint32_t>{4, 5, 6, 7, 8}, 64), 2);
  EXPECT_EQ(tree.TransactionAreaBounds(),
            (std::pair<uint32_t, uint32_t>{3, 5}));
}

TEST(TreeAreaStatsTest, FixedDimOverridesObservation) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.fixed_dimensionality = 4;
  SgTree tree(options);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 2, 3, 4}, 64),
              1);
  EXPECT_EQ(tree.TransactionAreaBounds(),
            (std::pair<uint32_t, uint32_t>{4, 4}));
}

TEST(TreeAreaStatsTest, DisabledFallsBackToTrivialWindow) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.use_area_stats = false;
  SgTree tree(options);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 2}, 64), 1);
  EXPECT_EQ(tree.TransactionAreaBounds(),
            (std::pair<uint32_t, uint32_t>{0, 64}));
}

TEST(TreeAreaStatsTest, StatsLearnFixedDimensionalityOnCensus) {
  CensusOptions copt;
  copt.num_tuples = 2000;
  copt.seed = 41;
  CensusGenerator gen(copt);
  const Dataset census = gen.Generate();

  SgTreeOptions learned;
  learned.num_bits = census.num_items;  // fixed_dimensionality NOT set.
  SgTree tree_learned(learned);
  SgTreeOptions configured = learned;
  configured.fixed_dimensionality = census.fixed_dimensionality;
  SgTree tree_configured(configured);
  for (const Transaction& txn : census.transactions) {
    tree_learned.Insert(txn);
    tree_configured.Insert(txn);
  }
  EXPECT_EQ(tree_learned.TransactionAreaBounds(),
            (std::pair<uint32_t, uint32_t>{36, 36}));

  // Identical structure + identical effective bound => identical pruning.
  QueryStats learned_stats;
  QueryStats configured_stats;
  for (const Transaction& q : gen.GenerateQueries(25)) {
    const Signature sig = Signature::FromItems(q.items, census.num_items);
    const Neighbor a = DfsNearest(
        tree_learned, sig, tree_learned.OwnPoolContext(&learned_stats));
    const Neighbor b = DfsNearest(
        tree_configured, sig,
        tree_configured.OwnPoolContext(&configured_stats));
    EXPECT_DOUBLE_EQ(a.distance, b.distance);
  }
  EXPECT_EQ(learned_stats.transactions_compared,
            configured_stats.transactions_compared);
}

TEST(TreeAreaStatsTest, ExactnessWithMixedSizes) {
  // Wildly varying transaction sizes: bounds must stay sound.
  Rng rng(42);
  Dataset dataset;
  dataset.num_items = 150;
  for (uint64_t i = 0; i < 600; ++i) {
    Transaction txn;
    txn.tid = i;
    const auto size = 1 + static_cast<uint32_t>(rng.UniformInt(40));
    txn.items = RandomItems(rng, 150, size);
    dataset.transactions.push_back(std::move(txn));
  }
  SgTreeOptions options;
  options.num_bits = 150;
  options.max_entries = 10;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  LinearScan scan(dataset);
  for (int q = 0; q < 25; ++q) {
    Signature query = RandomSignature(rng, 150, 0.05);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(
        DfsNearest(tree, query, tree.OwnPoolContext()).distance,
                     scan.Nearest(query).distance);
    EXPECT_EQ(RangeSearch(tree, query, 10.0, tree.OwnPoolContext()).size(),
              scan.Range(query, 10.0).size());
  }
}

}  // namespace
}  // namespace sgtree
