#include "common/signature.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "common/gray_code.h"
#include "common/rng.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::RandomSignature;

TEST(SignatureTest, DefaultIsEmptyWidthZero) {
  Signature sig;
  EXPECT_EQ(sig.num_bits(), 0u);
  EXPECT_EQ(sig.Area(), 0u);
  EXPECT_TRUE(sig.Empty());
}

TEST(SignatureTest, ConstructedAllZero) {
  Signature sig(100);
  EXPECT_EQ(sig.num_bits(), 100u);
  EXPECT_EQ(sig.num_words(), 2u);
  EXPECT_EQ(sig.Area(), 0u);
  for (uint32_t i = 0; i < 100; ++i) EXPECT_FALSE(sig.Test(i));
}

TEST(SignatureTest, SetTestReset) {
  Signature sig(130);
  sig.Set(0);
  sig.Set(63);
  sig.Set(64);
  sig.Set(129);
  EXPECT_TRUE(sig.Test(0));
  EXPECT_TRUE(sig.Test(63));
  EXPECT_TRUE(sig.Test(64));
  EXPECT_TRUE(sig.Test(129));
  EXPECT_FALSE(sig.Test(1));
  EXPECT_EQ(sig.Area(), 4u);
  sig.Reset(63);
  EXPECT_FALSE(sig.Test(63));
  EXPECT_EQ(sig.Area(), 3u);
}

TEST(SignatureTest, FromItemsMatchesPaperExample) {
  // Paper Figure 1: S = {a..g}; T2 = {a, b, c} -> 1110000.
  const std::vector<uint32_t> items = {0, 1, 2};
  const Signature sig = Signature::FromItems(items, 7);
  EXPECT_EQ(sig.ToString(), "1110000");
  EXPECT_EQ(sig.Area(), 3u);
}

TEST(SignatureTest, ToItemsRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    const auto items = testing::RandomItems(rng, 500, 25);
    const Signature sig = Signature::FromItems(items, 500);
    EXPECT_EQ(sig.ToItems(), items);
  }
}

TEST(SignatureTest, ClearZeroesEverything) {
  Rng rng(1);
  Signature sig = RandomSignature(rng, 300, 0.5);
  ASSERT_GT(sig.Area(), 0u);
  sig.Clear();
  EXPECT_EQ(sig.Area(), 0u);
  EXPECT_TRUE(sig.Empty());
}

TEST(SignatureTest, UnionIsCommutativeAndIdempotent) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Signature a = RandomSignature(rng, 256, 0.2);
    const Signature b = RandomSignature(rng, 256, 0.2);
    Signature ab = a;
    ab.UnionWith(b);
    Signature ba = b;
    ba.UnionWith(a);
    EXPECT_EQ(ab, ba);
    Signature aa = a;
    aa.UnionWith(a);
    EXPECT_EQ(aa, a);
    EXPECT_TRUE(ab.Contains(a));
    EXPECT_TRUE(ab.Contains(b));
  }
}

TEST(SignatureTest, IntersectWith) {
  Signature a = Signature::FromItems(std::vector<uint32_t>{1, 2, 3, 70}, 128);
  const Signature b =
      Signature::FromItems(std::vector<uint32_t>{2, 3, 4, 70}, 128);
  a.IntersectWith(b);
  EXPECT_EQ(a.ToItems(), (std::vector<uint32_t>{2, 3, 70}));
}

TEST(SignatureTest, ContainsReflexiveAndEmpty) {
  Rng rng(9);
  const Signature a = RandomSignature(rng, 200, 0.3);
  const Signature empty(200);
  EXPECT_TRUE(a.Contains(a));
  EXPECT_TRUE(a.Contains(empty));
  EXPECT_EQ(empty.Contains(a), a.Empty());
}

TEST(SignatureTest, ContainsDetectsSingleMissingBit) {
  Signature big(512);
  for (uint32_t i = 0; i < 512; i += 3) big.Set(i);
  Signature small = big;
  small.Reset(510);
  EXPECT_TRUE(big.Contains(small));
  small.Set(511);  // 511 not set in big (511 % 3 != 0).
  EXPECT_FALSE(big.Contains(small));
}

TEST(SignatureTest, CountIdentities) {
  Rng rng(11);
  for (int trial = 0; trial < 25; ++trial) {
    const Signature a = RandomSignature(rng, 320, 0.3);
    const Signature b = RandomSignature(rng, 320, 0.3);
    const uint32_t inter = Signature::IntersectCount(a, b);
    const uint32_t uni = Signature::UnionCount(a, b);
    const uint32_t x = Signature::XorCount(a, b);
    const uint32_t a_not_b = Signature::AndNotCount(a, b);
    const uint32_t b_not_a = Signature::AndNotCount(b, a);
    // Inclusion-exclusion identities.
    EXPECT_EQ(uni, a.Area() + b.Area() - inter);
    EXPECT_EQ(x, a_not_b + b_not_a);
    EXPECT_EQ(x, uni - inter);
    EXPECT_EQ(Signature::Enlargement(a, b), b_not_a);
  }
}

TEST(SignatureTest, XorCountIsZeroIffEqual) {
  Rng rng(13);
  const Signature a = RandomSignature(rng, 320, 0.4);
  Signature b = a;
  EXPECT_EQ(Signature::XorCount(a, b), 0u);
  b.Set(b.Test(5) ? 6 : 5);
  EXPECT_GT(Signature::XorCount(a, b), 0u);
}

TEST(SignatureTest, HashEqualForEqualSignatures) {
  Rng rng(17);
  SignatureHash hash;
  for (int trial = 0; trial < 10; ++trial) {
    const Signature a = RandomSignature(rng, 256, 0.3);
    const Signature b = a;
    EXPECT_EQ(hash(a), hash(b));
  }
}

TEST(SignatureTest, HashSpreadsDistinctSignatures) {
  Rng rng(19);
  SignatureHash hash;
  std::unordered_set<size_t> hashes;
  for (int trial = 0; trial < 200; ++trial) {
    hashes.insert(hash(RandomSignature(rng, 256, 0.3)));
  }
  // Collisions should be essentially absent at this scale.
  EXPECT_GT(hashes.size(), 195u);
}

// Width sweep: operations must be correct when the tail word is partial.
class SignatureWidthTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SignatureWidthTest, BoundaryBitsWork) {
  const uint32_t bits = GetParam();
  Signature sig(bits);
  sig.Set(bits - 1);
  sig.Set(0);
  EXPECT_EQ(sig.Area(), bits == 1 ? 1u : 2u);
  EXPECT_TRUE(sig.Test(bits - 1));
  const auto items = sig.ToItems();
  EXPECT_EQ(items.back(), bits - 1);
}

TEST_P(SignatureWidthTest, CountsConsistentAcrossWidths) {
  const uint32_t bits = GetParam();
  Rng rng(23 + bits);
  const Signature a = RandomSignature(rng, bits, 0.5);
  const Signature b = RandomSignature(rng, bits, 0.5);
  uint32_t expected_inter = 0;
  uint32_t expected_xor = 0;
  for (uint32_t i = 0; i < bits; ++i) {
    expected_inter += (a.Test(i) && b.Test(i)) ? 1 : 0;
    expected_xor += (a.Test(i) != b.Test(i)) ? 1 : 0;
  }
  EXPECT_EQ(Signature::IntersectCount(a, b), expected_inter);
  EXPECT_EQ(Signature::XorCount(a, b), expected_xor);
}

INSTANTIATE_TEST_SUITE_P(Widths, SignatureWidthTest,
                         ::testing::Values(1u, 7u, 63u, 64u, 65u, 127u, 128u,
                                           129u, 255u, 525u, 1000u, 1024u));

// ---------------------------------------------------------------------------
// Gray-code ordering.
// ---------------------------------------------------------------------------

// Reference: integer Gray rank for signatures that fit in one word.
uint64_t SmallGrayRank(const Signature& sig) {
  const uint64_t g = sig.words()[0];
  uint64_t x = 0;
  for (int i = 63; i >= 0; --i) {
    const uint64_t bit = (g >> i) & 1;
    const uint64_t above = i == 63 ? 0 : (x >> (i + 1)) & 1;
    x |= (bit ^ above) << i;
  }
  return x;
}

TEST(GrayCodeTest, RankMatchesScalarReferenceOneWord) {
  Rng rng(29);
  for (int trial = 0; trial < 200; ++trial) {
    const Signature sig = RandomSignature(rng, 64, 0.5);
    EXPECT_EQ(GrayRank(sig)[0], SmallGrayRank(sig)) << sig.ToString();
  }
}

TEST(GrayCodeTest, RankInvertsGrayCodeForSmallIntegers) {
  // For x in 0..255: gray(x) = x ^ (x >> 1); rank(gray(x)) must be x.
  for (uint64_t x = 0; x < 256; ++x) {
    const uint64_t g = x ^ (x >> 1);
    Signature sig(64);
    for (uint32_t b = 0; b < 64; ++b) {
      if ((g >> b) & 1) sig.Set(b);
    }
    EXPECT_EQ(GrayRank(sig)[0], x);
  }
}

TEST(GrayCodeTest, GrayLessAgreesWithRankComparison) {
  Rng rng(31);
  for (int trial = 0; trial < 100; ++trial) {
    const Signature a = RandomSignature(rng, 192, 0.4);
    const Signature b = RandomSignature(rng, 192, 0.4);
    const auto ra = GrayRank(a);
    const auto rb = GrayRank(b);
    // Compare ranks as big integers, most significant word first.
    bool less = false;
    for (size_t i = ra.size(); i-- > 0;) {
      if (ra[i] != rb[i]) {
        less = ra[i] < rb[i];
        break;
      }
    }
    EXPECT_EQ(GrayLess(a, b), less);
  }
}

TEST(GrayCodeTest, GrayLessIsStrictWeakOrder) {
  Rng rng(37);
  std::vector<Signature> sigs;
  for (int i = 0; i < 50; ++i) sigs.push_back(RandomSignature(rng, 128, 0.3));
  std::sort(sigs.begin(), sigs.end(),
            [](const Signature& a, const Signature& b) {
              return GrayLess(a, b);
            });
  for (size_t i = 0; i + 1 < sigs.size(); ++i) {
    EXPECT_FALSE(GrayLess(sigs[i + 1], sigs[i]));
  }
  EXPECT_FALSE(GrayLess(sigs[0], sigs[0]));
}

TEST(GrayCodeTest, ConsecutiveGrayCodesDifferInOneBit) {
  // Walking ranks 0..63, the codewords (= signatures) at consecutive ranks
  // differ in exactly one bit; verify our comparator sorts them in rank
  // order.
  std::vector<Signature> codes;
  for (uint64_t x = 0; x < 64; ++x) {
    const uint64_t g = x ^ (x >> 1);
    Signature sig(64);
    for (uint32_t b = 0; b < 64; ++b) {
      if ((g >> b) & 1) sig.Set(b);
    }
    codes.push_back(sig);
  }
  for (size_t i = 0; i + 1 < codes.size(); ++i) {
    EXPECT_EQ(Signature::XorCount(codes[i], codes[i + 1]), 1u);
    EXPECT_TRUE(GrayLess(codes[i], codes[i + 1]));
  }
}

}  // namespace
}  // namespace sgtree
