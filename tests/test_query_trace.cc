// The differential harness locking down the observability layer (DESIGN.md
// §6): every query type on every backend must fill a self-consistent
// QueryTrace, tracing must never change results or the legacy counters, and
// the trace's buffer split must agree exactly with the IoStats / QueryStats
// numbers the paper's Figures 6, 8 and 10 are built from.

#include "obs/query_trace.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "inverted/inverted_index.h"
#include "sgtable/sg_table.h"
#include "sgtree/join.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "storage/sharded_buffer_pool.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomItems;
using ::sgtree::testing::RandomSignature;

// ---------------------------------------------------------------------------
// SG-tree queries: the strict invariants hold for every query type.
// ---------------------------------------------------------------------------

enum class TreeQuery {
  kNearest,
  kKnn,
  kBestFirstKnn,
  kRange,
  kContainment,
  kExact,
  kSubset,
};

constexpr TreeQuery kAllTreeQueries[] = {
    TreeQuery::kNearest, TreeQuery::kKnn,   TreeQuery::kBestFirstKnn,
    TreeQuery::kRange,   TreeQuery::kContainment,
    TreeQuery::kExact,   TreeQuery::kSubset,
};

const char* TreeQueryName(TreeQuery type) {
  switch (type) {
    case TreeQuery::kNearest: return "Nearest";
    case TreeQuery::kKnn: return "Knn";
    case TreeQuery::kBestFirstKnn: return "BestFirstKnn";
    case TreeQuery::kRange: return "Range";
    case TreeQuery::kContainment: return "Containment";
    case TreeQuery::kExact: return "Exact";
    case TreeQuery::kSubset: return "Subset";
  }
  return "?";
}

/// k-NN queries have no predicate to fail, so false_drops stays 0; the
/// others verify candidates against an exact predicate.
bool HasPredicate(TreeQuery type) {
  return type == TreeQuery::kRange || type == TreeQuery::kContainment ||
         type == TreeQuery::kExact || type == TreeQuery::kSubset;
}

/// Normalized output so every query type can be compared the same way.
struct RunOutput {
  std::vector<Neighbor> neighbors;
  std::vector<uint64_t> ids;

  friend bool operator==(const RunOutput&, const RunOutput&) = default;
};

RunOutput RunTreeQuery(const SgTree& tree, TreeQuery type, const Signature& q,
                       double epsilon, const QueryContext& ctx) {
  RunOutput out;
  switch (type) {
    case TreeQuery::kNearest:
      out.neighbors.push_back(DfsNearest(tree, q, ctx));
      break;
    case TreeQuery::kKnn:
      out.neighbors = DfsKNearest(tree, q, 5, ctx);
      break;
    case TreeQuery::kBestFirstKnn:
      out.neighbors = BestFirstKNearest(tree, q, 5, ctx);
      break;
    case TreeQuery::kRange:
      out.neighbors = RangeSearch(tree, q, epsilon, ctx);
      break;
    case TreeQuery::kContainment:
      out.ids = ContainmentSearch(tree, q, ctx);
      break;
    case TreeQuery::kExact:
      out.ids = ExactSearch(tree, q, ctx);
      break;
    case TreeQuery::kSubset:
      out.ids = SubsetSearch(tree, q, ctx);
      break;
  }
  return out;
}

struct TreeFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::vector<Signature> queries;
};

TreeFixture MakeTreeFixture(uint64_t seed, Metric metric,
                            uint32_t num_transactions = 900,
                            uint32_t num_queries = 8) {
  TreeFixture f;
  f.dataset = ClusteredDataset(seed, num_transactions, 200, 8, 10, 3);
  SgTreeOptions options;
  options.num_bits = 200;
  options.max_entries = 10;
  options.metric = metric;
  options.buffer_pages = 16;
  f.tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  Rng rng(seed ^ 0xace);
  for (uint32_t i = 0; i < num_queries; ++i) {
    Signature sig = RandomSignature(rng, 200, 0.04);
    // Every third query reuses an indexed signature so exact / containment
    // queries actually produce results (and false-drop accounting is
    // exercised on both outcomes).
    if (i % 3 == 0) {
      const auto& txn =
          f.dataset.transactions[rng.UniformInt(f.dataset.size())];
      sig = Signature::FromItems(txn.items, 200);
    }
    if (sig.Empty()) sig.Set(3);
    f.queries.push_back(std::move(sig));
  }
  return f;
}

class TreeTraceTest : public ::testing::TestWithParam<Metric> {};

TEST_P(TreeTraceTest, EveryQueryTypeSatisfiesStrictInvariants) {
  TreeFixture f = MakeTreeFixture(17, GetParam());
  const double epsilon = GetParam() == Metric::kHamming ? 6.0 : 0.4;
  for (const TreeQuery type : kAllTreeQueries) {
    for (size_t i = 0; i < f.queries.size(); ++i) {
      f.tree->ResetIo();
      QueryStats stats;
      QueryTrace trace;
      RunTreeQuery(*f.tree, type, f.queries[i], epsilon,
                   f.tree->OwnPoolContext(&stats, &trace));
      TraceCheckOptions opts;
      opts.predicate = HasPredicate(type);
      EXPECT_EQ(CheckTraceInvariants(trace, opts), "")
          << TreeQueryName(type) << " query " << i;
      EXPECT_GT(trace.nodes_visited(), 0u);

      // The trace and the legacy QueryStats are filled through one funnel
      // (QueryContext) and must agree exactly.
      EXPECT_EQ(trace.nodes_visited(), stats.nodes_accessed);
      EXPECT_EQ(trace.buffer_misses, stats.random_ios);
      EXPECT_EQ(trace.candidates_verified, stats.transactions_compared);
      EXPECT_EQ(trace.signatures_tested, stats.bounds_computed);

      // Cold pool per query: the pool's own counters see the same traffic.
      EXPECT_EQ(f.tree->io_stats().random_ios, trace.buffer_misses);
      EXPECT_EQ(f.tree->io_stats().buffer_hits, trace.buffer_hits);
      EXPECT_EQ(f.tree->io_stats().page_accesses, trace.nodes_visited());
    }
  }
}

TEST_P(TreeTraceTest, TracingNeverChangesResultsOrLegacyCounters) {
  TreeFixture f = MakeTreeFixture(18, GetParam());
  const double epsilon = GetParam() == Metric::kHamming ? 6.0 : 0.4;
  for (const TreeQuery type : kAllTreeQueries) {
    for (size_t i = 0; i < f.queries.size(); ++i) {
      f.tree->ResetIo();
      QueryStats stats_off;  // Metrics "off": legacy stats only.
      const RunOutput off =
          RunTreeQuery(*f.tree, type, f.queries[i], epsilon,
                       f.tree->OwnPoolContext(&stats_off, nullptr));
      const IoStats io_off = f.tree->io_stats();

      f.tree->ResetIo();
      QueryStats stats_on;  // Metrics "on": stats + trace.
      QueryTrace trace;
      const RunOutput on =
          RunTreeQuery(*f.tree, type, f.queries[i], epsilon,
                       f.tree->OwnPoolContext(&stats_on, &trace));
      const IoStats io_on = f.tree->io_stats();

      EXPECT_EQ(on, off) << TreeQueryName(type) << " query " << i;
      EXPECT_EQ(stats_on.nodes_accessed, stats_off.nodes_accessed);
      EXPECT_EQ(stats_on.random_ios, stats_off.random_ios);
      EXPECT_EQ(stats_on.transactions_compared,
                stats_off.transactions_compared);
      EXPECT_EQ(stats_on.bounds_computed, stats_off.bounds_computed);
      EXPECT_EQ(io_on.page_accesses, io_off.page_accesses);
      EXPECT_EQ(io_on.random_ios, io_off.random_ios);

      // A fully-null context (no pool, no stats, no trace) still returns
      // identical values.
      const RunOutput bare =
          RunTreeQuery(*f.tree, type, f.queries[i], epsilon, QueryContext{});
      EXPECT_EQ(bare, off) << TreeQueryName(type) << " query " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Metrics, TreeTraceTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

TEST(TreeTraceTest, ShardedPoolSatisfiesPooledInvariant) {
  const TreeFixture f = MakeTreeFixture(19, Metric::kHamming);
  ShardedBufferPool pool(64, 4);
  const SgTree& tree = *f.tree;  // Const ref: the thread-safe entry point.
  QueryTrace total;
  for (const TreeQuery type : kAllTreeQueries) {
    for (size_t i = 0; i < f.queries.size(); ++i) {
      QueryStats stats;
      QueryTrace trace;
      const QueryContext ctx{&pool, &stats, &trace};
      RunTreeQuery(tree, type, f.queries[i], 6.0, ctx);
      TraceCheckOptions opts;
      opts.predicate = HasPredicate(type);
      EXPECT_EQ(CheckTraceInvariants(trace, opts), "")
          << TreeQueryName(type) << " query " << i;
      total += trace;
    }
  }
  // The pool stays warm across queries, so later queries must have hits.
  EXPECT_GT(total.buffer_hits, 0u);
  const IoStats merged = pool.StatsSnapshot();
  EXPECT_EQ(merged.random_ios, total.buffer_misses);
  EXPECT_EQ(merged.buffer_hits, total.buffer_hits);
  EXPECT_EQ(merged.page_accesses, total.nodes_visited());
}

TEST(TreeTraceTest, BufferMissesMatchLegacyIoStatsOnColdCache) {
  // The Figure 6 protocol: per-query random I/O against a cold 16-frame
  // buffer. The serial wrapper (legacy path) and the context form must
  // charge identical I/O, and the trace's miss count is that same number.
  TreeFixture f = MakeTreeFixture(20, Metric::kHamming);
  for (const Signature& q : f.queries) {
    f.tree->ResetIo();
    QueryStats legacy;
    const auto legacy_result = DfsKNearest(*f.tree, q, 5, &legacy);
    const uint64_t legacy_pool_ios = f.tree->io_stats().random_ios;

    f.tree->ResetIo();
    QueryStats stats;
    QueryTrace trace;
    const auto traced_result =
        DfsKNearest(*f.tree, q, 5, f.tree->OwnPoolContext(&stats, &trace));

    EXPECT_EQ(traced_result, legacy_result);
    EXPECT_EQ(stats.random_ios, legacy.random_ios);
    EXPECT_EQ(trace.buffer_misses, legacy.random_ios);
    EXPECT_EQ(trace.buffer_misses, legacy_pool_ios);
    EXPECT_EQ(f.tree->io_stats().random_ios, legacy_pool_ios);
  }
}

// ---------------------------------------------------------------------------
// Joins: several signature pairs feed one descend decision, so only the
// relaxed pruning inequality holds; everything else stays strict.
// ---------------------------------------------------------------------------

TEST(JoinTraceTest, SimilarityJoinTracesAreConsistent) {
  TreeFixture fa = MakeTreeFixture(41, Metric::kHamming, 300);
  TreeFixture fb = MakeTreeFixture(42, Metric::kHamming, 300);
  fa.tree->ResetIo();
  fb.tree->ResetIo();
  QueryStats sa, sb;
  QueryTrace ta, tb;
  const auto pairs =
      SimilarityJoin(*fa.tree, *fb.tree, 4.0,
                     fa.tree->OwnPoolContext(&sa, &ta),
                     fb.tree->OwnPoolContext(&sb, &tb));
  TraceCheckOptions join_opts;
  join_opts.strict_pruning = false;
  EXPECT_EQ(CheckTraceInvariants(ta, join_opts), "");
  EXPECT_EQ(CheckTraceInvariants(tb, join_opts), "");

  // Pair-level counters land in the primary (first) trace.
  EXPECT_EQ(ta.results, pairs.size());
  EXPECT_EQ(tb.results, 0u);
  EXPECT_GT(ta.candidates_verified, 0u);

  // Node reads are charged to each tree's own pool and context.
  EXPECT_EQ(ta.nodes_visited(), sa.nodes_accessed);
  EXPECT_EQ(tb.nodes_visited(), sb.nodes_accessed);
  EXPECT_EQ(fa.tree->io_stats().random_ios, ta.buffer_misses);
  EXPECT_EQ(fb.tree->io_stats().random_ios, tb.buffer_misses);

  // Differential against the convenience wrapper, which funnels both sides
  // into one QueryStats.
  fa.tree->ResetIo();
  fb.tree->ResetIo();
  QueryStats combined;
  const auto again = SimilarityJoin(*fa.tree, *fb.tree, 4.0, &combined);
  EXPECT_EQ(again, pairs);
  EXPECT_EQ(combined.nodes_accessed, sa.nodes_accessed + sb.nodes_accessed);
  EXPECT_EQ(combined.random_ios, sa.random_ios + sb.random_ios);
  EXPECT_EQ(combined.transactions_compared,
            sa.transactions_compared + sb.transactions_compared);
}

TEST(JoinTraceTest, ClosestPairsTracesAreConsistent) {
  TreeFixture fa = MakeTreeFixture(43, Metric::kHamming, 300);
  TreeFixture fb = MakeTreeFixture(44, Metric::kHamming, 300);
  fa.tree->ResetIo();
  fb.tree->ResetIo();
  QueryStats sa, sb;
  QueryTrace ta, tb;
  const auto best = ClosestPairs(*fa.tree, *fb.tree, 10,
                                 fa.tree->OwnPoolContext(&sa, &ta),
                                 fb.tree->OwnPoolContext(&sb, &tb));
  TraceCheckOptions join_opts;
  join_opts.strict_pruning = false;
  join_opts.predicate = false;  // k-closest-pairs has no predicate.
  EXPECT_EQ(CheckTraceInvariants(ta, join_opts), "");
  EXPECT_EQ(CheckTraceInvariants(tb, join_opts), "");
  EXPECT_EQ(ta.results, best.size());
  EXPECT_GE(ta.candidates_verified, ta.results);
  EXPECT_EQ(fa.tree->io_stats().random_ios, ta.buffer_misses);
  EXPECT_EQ(fb.tree->io_stats().random_ios, tb.buffer_misses);

  fa.tree->ResetIo();
  fb.tree->ResetIo();
  QueryStats combined;
  EXPECT_EQ(ClosestPairs(*fa.tree, *fb.tree, 10, &combined), best);
  EXPECT_EQ(combined.nodes_accessed, sa.nodes_accessed + sb.nodes_accessed);
}

// ---------------------------------------------------------------------------
// SG-table: buckets are leaves read through simulated multi-page I/O (no
// pool), but the descend-or-prune arithmetic is exact.
// ---------------------------------------------------------------------------

TEST(TableTraceTest, KnnAndRangeTracesAreConsistent) {
  const Dataset dataset = ClusteredDataset(21, 800, 150, 6, 9, 2);
  SgTableOptions topt;
  topt.clustering.num_signatures = 8;
  const SgTable table(dataset, topt);
  Rng rng(5);
  for (int i = 0; i < 8; ++i) {
    Signature q = RandomSignature(rng, 150, 0.05);
    if (q.Empty()) q.Set(0);

    QueryStats knn_stats;
    QueryTrace knn_trace;
    const auto knn =
        table.KNearest(q, 3, QueryContext{nullptr, &knn_stats, &knn_trace});
    TraceCheckOptions opts;
    opts.pooled = false;          // Simulated reads: misses >= buckets read.
    opts.strict_pruning = false;  // Buckets have no root node.
    opts.predicate = false;
    EXPECT_EQ(CheckTraceInvariants(knn_trace, opts), "") << "query " << i;
    // Every bounded bucket resolves to exactly one descend-or-prune, and
    // every descend reads one bucket — the table's analogue of the tree's
    // strict identity, minus the root.
    EXPECT_EQ(knn_trace.signatures_tested,
              knn_trace.subtrees_descended + knn_trace.subtrees_pruned);
    EXPECT_EQ(knn_trace.subtrees_descended, knn_trace.nodes_visited());
    EXPECT_EQ(knn_trace.dir_nodes_visited, 0u);
    EXPECT_GE(knn_trace.buffer_misses, knn_trace.nodes_visited());
    EXPECT_EQ(knn_trace.buffer_misses, knn_stats.random_ios);
    EXPECT_EQ(knn_trace.candidates_verified, knn_stats.transactions_compared);
    EXPECT_EQ(knn_trace.signatures_tested, knn_stats.bounds_computed);
    EXPECT_EQ(knn_trace.results, knn.size());

    QueryStats knn_alone;
    EXPECT_EQ(table.KNearest(q, 3, &knn_alone), knn) << "query " << i;
    EXPECT_EQ(knn_alone.random_ios, knn_stats.random_ios);

    QueryStats range_stats;
    QueryTrace range_trace;
    const auto range =
        table.Range(q, 5.0, QueryContext{nullptr, &range_stats, &range_trace});
    opts.predicate = true;
    EXPECT_EQ(CheckTraceInvariants(range_trace, opts), "") << "query " << i;
    EXPECT_EQ(range_trace.signatures_tested,
              range_trace.subtrees_descended + range_trace.subtrees_pruned);
    EXPECT_EQ(range_trace.results, range.size());

    QueryStats range_alone;
    EXPECT_EQ(table.Range(q, 5.0, &range_alone), range) << "query " << i;
    EXPECT_EQ(range_alone.random_ios, range_stats.random_ios);
  }
}

// ---------------------------------------------------------------------------
// Inverted file: posting lists are leaves, there is no signature pruning,
// and candidate accumulation is the verification step.
// ---------------------------------------------------------------------------

TEST(InvertedTraceTest, AllQueryTypesProduceConsistentTraces) {
  const Dataset dataset = ClusteredDataset(22, 800, 150, 6, 9, 2);
  const InvertedIndex index(dataset);
  Rng rng(6);
  TraceCheckOptions opts;
  opts.pooled = false;
  opts.strict_pruning = false;
  for (int i = 0; i < 8; ++i) {
    // Non-empty queries only: an empty Containing query answers from the
    // tid list without reading (or counting) anything.
    const std::vector<ItemId> items = RandomItems(rng, 150, 4);

    struct Case {
      const char* name;
      bool predicate;
      QueryTrace trace;
      uint64_t results;
    };
    std::vector<Case> cases;

    {
      Case c{"Containing", true, {}, 0};
      QueryStats stats, alone;
      const auto got = index.Containing(
          items, QueryContext{nullptr, &stats, &c.trace});
      EXPECT_EQ(index.Containing(items, &alone), got);
      EXPECT_EQ(alone.random_ios, stats.random_ios);
      EXPECT_EQ(c.trace.buffer_misses, stats.random_ios);
      c.results = got.size();
      cases.push_back(std::move(c));
    }
    {
      Case c{"ContainedIn", true, {}, 0};
      QueryStats stats, alone;
      const auto got = index.ContainedIn(
          items, QueryContext{nullptr, &stats, &c.trace});
      EXPECT_EQ(index.ContainedIn(items, &alone), got);
      EXPECT_EQ(c.trace.buffer_misses, stats.random_ios);
      c.results = got.size();
      cases.push_back(std::move(c));
    }
    {
      Case c{"KNearest", false, {}, 0};
      QueryStats stats, alone;
      const auto got =
          index.KNearest(items, 4, QueryContext{nullptr, &stats, &c.trace});
      EXPECT_EQ(index.KNearest(items, 4, &alone), got);
      EXPECT_EQ(c.trace.buffer_misses, stats.random_ios);
      c.results = got.size();
      cases.push_back(std::move(c));
    }
    {
      Case c{"Range", true, {}, 0};
      QueryStats stats, alone;
      const auto got =
          index.Range(items, 6.0, QueryContext{nullptr, &stats, &c.trace});
      EXPECT_EQ(index.Range(items, 6.0, &alone), got);
      EXPECT_EQ(c.trace.buffer_misses, stats.random_ios);
      c.results = got.size();
      cases.push_back(std::move(c));
    }

    for (const Case& c : cases) {
      opts.predicate = c.predicate;
      EXPECT_EQ(CheckTraceInvariants(c.trace, opts), "")
          << c.name << " query " << i;
      EXPECT_EQ(c.trace.results, c.results) << c.name;
      // One "leaf" per posting list read; no directory, no pruning.
      EXPECT_EQ(c.trace.leaf_nodes_visited, items.size()) << c.name;
      EXPECT_EQ(c.trace.dir_nodes_visited, 0u) << c.name;
      EXPECT_EQ(c.trace.signatures_tested, 0u) << c.name;
      EXPECT_EQ(c.trace.subtrees_descended, 0u) << c.name;
      EXPECT_EQ(c.trace.subtrees_pruned, 0u) << c.name;
      EXPECT_GE(c.trace.buffer_misses, c.trace.nodes_visited()) << c.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Linear scan: the honest baseline — every transaction verified, nothing
// visited or pruned.
// ---------------------------------------------------------------------------

TEST(LinearScanTraceTest, FullScanVerifiesEverythingAndPrunesNothing) {
  const Dataset dataset = ClusteredDataset(23, 500, 150, 6, 9, 2);
  const LinearScan scan(dataset);
  Rng rng(7);
  TraceCheckOptions opts;
  opts.pooled = false;  // No nodes, no pool.
  for (int i = 0; i < 6; ++i) {
    Signature q = RandomSignature(rng, 150, 0.05);
    if (q.Empty()) q.Set(0);

    auto check = [&](const QueryTrace& trace, uint64_t results,
                     bool predicate, const char* name) {
      opts.predicate = predicate;
      EXPECT_EQ(CheckTraceInvariants(trace, opts), "")
          << name << " query " << i;
      EXPECT_EQ(trace.candidates_verified, scan.size()) << name;
      EXPECT_EQ(trace.nodes_visited(), 0u) << name;
      EXPECT_EQ(trace.signatures_tested, 0u) << name;
      EXPECT_EQ(trace.buffer_misses, 0u) << name;
      EXPECT_EQ(trace.results, results) << name;
    };

    QueryTrace trace;
    const Neighbor nn =
        scan.Nearest(q, Metric::kHamming, QueryContext{nullptr, nullptr,
                                                       &trace});
    EXPECT_EQ(nn, scan.Nearest(q));
    check(trace, 1, /*predicate=*/false, "Nearest");

    trace.Reset();
    const auto knn = scan.KNearest(q, 7, Metric::kHamming,
                                   QueryContext{nullptr, nullptr, &trace});
    EXPECT_EQ(knn, scan.KNearest(q, 7));
    check(trace, knn.size(), /*predicate=*/false, "KNearest");

    trace.Reset();
    const auto range = scan.Range(q, 6.0, Metric::kHamming,
                                  QueryContext{nullptr, nullptr, &trace});
    EXPECT_EQ(range, scan.Range(q, 6.0));
    check(trace, range.size(), /*predicate=*/true, "Range");

    trace.Reset();
    const auto sup =
        scan.Containing(q, QueryContext{nullptr, nullptr, &trace});
    EXPECT_EQ(sup, scan.Containing(q));
    check(trace, sup.size(), /*predicate=*/true, "Containing");

    trace.Reset();
    const auto sub =
        scan.ContainedIn(q, QueryContext{nullptr, nullptr, &trace});
    EXPECT_EQ(sub, scan.ContainedIn(q));
    check(trace, sub.size(), /*predicate=*/true, "ContainedIn");
  }
}

// ---------------------------------------------------------------------------
// QueryTrace arithmetic and the checker itself.
// ---------------------------------------------------------------------------

TEST(QueryTraceTest, AggregationSumsEveryFieldAndResetZeroes) {
  QueryTrace a;
  a.dir_nodes_visited = 1;
  a.leaf_nodes_visited = 2;
  a.signatures_tested = 3;
  a.subtrees_descended = 4;
  a.subtrees_pruned = 5;
  a.candidates_verified = 6;
  a.false_drops = 7;
  a.results = 8;
  a.buffer_hits = 9;
  a.buffer_misses = 10;
  EXPECT_EQ(a.nodes_visited(), 3u);

  QueryTrace b = a;
  b += a;
  EXPECT_EQ(b.dir_nodes_visited, 2u);
  EXPECT_EQ(b.leaf_nodes_visited, 4u);
  EXPECT_EQ(b.signatures_tested, 6u);
  EXPECT_EQ(b.subtrees_descended, 8u);
  EXPECT_EQ(b.subtrees_pruned, 10u);
  EXPECT_EQ(b.candidates_verified, 12u);
  EXPECT_EQ(b.false_drops, 14u);
  EXPECT_EQ(b.results, 16u);
  EXPECT_EQ(b.buffer_hits, 18u);
  EXPECT_EQ(b.buffer_misses, 20u);

  a.Reset();
  EXPECT_EQ(a, QueryTrace{});
}

TEST(QueryTraceTest, CheckerReportsEveryViolation) {
  EXPECT_EQ(CheckTraceInvariants(QueryTrace{}), "");

  QueryTrace bad;
  bad.signatures_tested = 5;  // Tested but neither descended nor pruned.
  bad.results = 3;            // More results than verified candidates.
  const std::string errors = CheckTraceInvariants(bad);
  EXPECT_NE(errors.find("signatures_tested"), std::string::npos) << errors;
  EXPECT_NE(errors.find("candidates_verified"), std::string::npos) << errors;

  // The relaxed join mode still rejects more outcomes than tests.
  QueryTrace join_bad;
  join_bad.subtrees_pruned = 2;
  TraceCheckOptions join_opts;
  join_opts.strict_pruning = false;
  EXPECT_NE(CheckTraceInvariants(join_bad, join_opts), "");

  // A predicate-free query must not report false drops.
  QueryTrace knn_bad;
  knn_bad.candidates_verified = 2;
  knn_bad.false_drops = 1;
  TraceCheckOptions knn_opts;
  knn_opts.predicate = false;
  EXPECT_NE(CheckTraceInvariants(knn_bad, knn_opts), "");
}

}  // namespace
}  // namespace sgtree
