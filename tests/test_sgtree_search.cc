#include "sgtree/search.h"

#include <cmath>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/census_generator.h"
#include "data/quest_generator.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;

struct Fixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<LinearScan> scan;
  std::vector<Signature> queries;
};

Fixture MakeFixture(uint64_t seed, Metric metric,
                    uint32_t fixed_dim = 0, uint32_t num_queries = 25) {
  Fixture f;
  f.dataset = ClusteredDataset(seed, 1200, 250, 10, 12, 3);
  SgTreeOptions options;
  options.num_bits = 250;
  options.max_entries = 12;
  options.metric = metric;
  options.fixed_dimensionality = fixed_dim;
  f.tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  f.scan = std::make_unique<LinearScan>(f.dataset);
  Rng rng(seed ^ 0xabcdef);
  for (uint32_t q = 0; q < num_queries; ++q) {
    Signature sig = testing::RandomSignature(rng, 250, 0.05);
    if (sig.Empty()) sig.Set(1);
    f.queries.push_back(std::move(sig));
  }
  return f;
}

// ---------------------------------------------------------------------------
// Exactness against the linear scan, across metrics.
// ---------------------------------------------------------------------------

class SearchExactnessTest : public ::testing::TestWithParam<Metric> {};

TEST_P(SearchExactnessTest, NearestMatchesLinearScan) {
  const Fixture f = MakeFixture(1, GetParam());
  for (const Signature& q : f.queries) {
    const Neighbor expected = f.scan->Nearest(q, GetParam());
    const Neighbor actual = DfsNearest(*f.tree, q);
    EXPECT_DOUBLE_EQ(actual.distance, expected.distance);
  }
}

TEST_P(SearchExactnessTest, KNearestDistancesMatchLinearScan) {
  const Fixture f = MakeFixture(2, GetParam());
  for (uint32_t k : {1u, 3u, 10u, 50u}) {
    for (const Signature& q : f.queries) {
      const auto expected = f.scan->KNearest(q, k, GetParam());
      const auto actual = DfsKNearest(*f.tree, q, k);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance)
            << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(SearchExactnessTest, BestFirstMatchesDfs) {
  const Fixture f = MakeFixture(3, GetParam());
  for (const Signature& q : f.queries) {
    const auto dfs = DfsKNearest(*f.tree, q, 5);
    const auto bf = BestFirstKNearest(*f.tree, q, 5);
    ASSERT_EQ(dfs.size(), bf.size());
    for (size_t i = 0; i < dfs.size(); ++i) {
      EXPECT_DOUBLE_EQ(dfs[i].distance, bf[i].distance);
    }
  }
}

TEST_P(SearchExactnessTest, RangeMatchesLinearScan) {
  const Fixture f = MakeFixture(4, GetParam());
  const double epsilon = GetParam() == Metric::kHamming ? 8.0 : 0.5;
  for (const Signature& q : f.queries) {
    const auto expected = f.scan->Range(q, epsilon, GetParam());
    const auto actual = RangeSearch(*f.tree, q, epsilon);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i].tid, expected[i].tid);
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, SearchExactnessTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

// Seed sweep: NN exactness is the core claim; hammer it.
class SeedSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweepTest, NearestExactUnderHamming) {
  const Fixture f = MakeFixture(GetParam(), Metric::kHamming);
  for (const Signature& q : f.queries) {
    EXPECT_DOUBLE_EQ(DfsNearest(*f.tree, q).distance,
                     f.scan->Nearest(q).distance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Range<uint64_t>(10, 20));

// ---------------------------------------------------------------------------
// Queries on data drawn from the real generators.
// ---------------------------------------------------------------------------

TEST(SearchGeneratorTest, QuestWorkloadExact) {
  QuestOptions qopt;
  qopt.num_transactions = 3000;
  qopt.num_items = 400;
  qopt.num_patterns = 150;
  qopt.avg_transaction_size = 10;
  qopt.avg_itemset_size = 6;
  qopt.seed = 21;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  SgTreeOptions options;
  options.num_bits = 400;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  LinearScan scan(dataset);
  for (const Transaction& q : gen.GenerateQueries(30)) {
    const Signature sig = Signature::FromItems(q.items, 400);
    EXPECT_DOUBLE_EQ(DfsNearest(tree, sig).distance,
                     scan.Nearest(sig).distance);
  }
}

TEST(SearchGeneratorTest, CensusWorkloadExactWithTightBound) {
  CensusOptions copt;
  copt.num_tuples = 2500;
  copt.seed = 22;
  CensusGenerator gen(copt);
  const Dataset dataset = gen.Generate();
  SgTreeOptions options;
  options.num_bits = dataset.num_items;
  options.fixed_dimensionality = dataset.fixed_dimensionality;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  LinearScan scan(dataset);
  for (const Transaction& q : gen.GenerateQueries(30)) {
    const Signature sig = Signature::FromItems(q.items, dataset.num_items);
    EXPECT_DOUBLE_EQ(DfsNearest(tree, sig).distance,
                     scan.Nearest(sig).distance);
    const auto k5 = DfsKNearest(tree, sig, 5);
    const auto expected = scan.KNearest(sig, 5);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_DOUBLE_EQ(k5[i].distance, expected[i].distance);
    }
  }
}

TEST(SearchGeneratorTest, TightBoundPrunesMoreThanRelaxed) {
  CensusOptions copt;
  copt.num_tuples = 3000;
  copt.seed = 23;
  CensusGenerator gen(copt);
  const Dataset dataset = gen.Generate();

  SgTreeOptions relaxed;
  relaxed.num_bits = dataset.num_items;
  relaxed.use_area_stats = false;  // Truly generic bound.
  SgTreeOptions tight = relaxed;
  tight.fixed_dimensionality = dataset.fixed_dimensionality;

  SgTree tree_relaxed(relaxed);
  SgTree tree_tight(tight);
  for (const Transaction& txn : dataset.transactions) {
    tree_relaxed.Insert(txn);
    tree_tight.Insert(txn);
  }
  QueryStats stats_relaxed;
  QueryStats stats_tight;
  for (const Transaction& q : gen.GenerateQueries(40)) {
    const Signature sig = Signature::FromItems(q.items, dataset.num_items);
    const Neighbor a = DfsNearest(tree_relaxed, sig, &stats_relaxed);
    const Neighbor b = DfsNearest(tree_tight, sig, &stats_tight);
    EXPECT_DOUBLE_EQ(a.distance, b.distance);  // Same (exact) answer.
  }
  // Section 6 claim: the fixed-dimensionality bound prunes strictly better.
  EXPECT_LT(stats_tight.transactions_compared,
            stats_relaxed.transactions_compared);
}

// ---------------------------------------------------------------------------
// Containment and exact-match queries.
// ---------------------------------------------------------------------------

TEST(ContainmentTest, MatchesLinearScan) {
  const Fixture f = MakeFixture(30, Metric::kHamming);
  Rng rng(31);
  for (int trial = 0; trial < 40; ++trial) {
    // Probe with subsets of actual transactions so results are non-trivial.
    const auto& txn =
        f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    std::vector<ItemId> probe;
    for (ItemId item : txn.items) {
      if (rng.Bernoulli(0.5)) probe.push_back(item);
    }
    const Signature q = Signature::FromItems(probe, 250);
    EXPECT_EQ(ContainmentSearch(*f.tree, q), f.scan->Containing(q));
  }
}

TEST(ContainmentTest, PaperExampleItemsetQuery) {
  // Section 3: query {c, f} on the Figure 1 transactions; only T6 = {b,e,f}
  // lacks c, etc. Reproduce with the 9 signatures of Figure 2's leaves.
  SgTreeOptions options;
  options.num_bits = 6;
  options.max_entries = 4;
  SgTree tree(options);
  const std::vector<std::string> rows = {
      "100000", "100010", "001010", "001100", "001100",
      "100001", "010001", "110000", "011000"};
  for (size_t i = 0; i < rows.size(); ++i) {
    Signature sig(6);
    for (uint32_t b = 0; b < 6; ++b) {
      if (rows[i][b] == '1') sig.Set(b);
    }
    tree.Insert(sig, i + 1);
  }
  // Transactions containing items {2, 3} (0-based bits): only T4/T5
  // ("001100" twice).
  Signature q(6);
  q.Set(2);
  q.Set(3);
  EXPECT_EQ(ContainmentSearch(tree, q), (std::vector<uint64_t>{4, 5}));
}

TEST(ContainmentTest, EmptyQueryMatchesEverything) {
  const Fixture f = MakeFixture(32, Metric::kHamming);
  const Signature q(250);
  EXPECT_EQ(ContainmentSearch(*f.tree, q).size(), f.dataset.size());
}

TEST(ExactSearchTest, FindsAllDuplicates) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.max_entries = 6;
  SgTree tree(options);
  const Signature dup = Signature::FromItems(std::vector<uint32_t>{3, 9}, 64);
  Rng rng(33);
  for (uint64_t i = 0; i < 100; ++i) {
    if (i % 10 == 0) {
      tree.Insert(dup, i);
    } else {
      Signature sig = testing::RandomSignature(rng, 64, 0.2);
      if (sig == dup) sig.Set(40);
      tree.Insert(sig, i);
    }
  }
  EXPECT_EQ(ExactSearch(tree, dup),
            (std::vector<uint64_t>{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}));
}

TEST(ExactSearchTest, AbsentSignatureReturnsEmpty) {
  const Fixture f = MakeFixture(34, Metric::kHamming);
  Signature q(250);
  for (uint32_t i = 0; i < 250; ++i) q.Set(i);  // Full set: surely absent.
  EXPECT_TRUE(ExactSearch(*f.tree, q).empty());
}

// ---------------------------------------------------------------------------
// Pruning efficiency and stats accounting.
// ---------------------------------------------------------------------------

TEST(SearchStatsTest, NnComparesFarFewerThanScan) {
  // Pruning is strong for queries with a close neighbor (paper Figure 12);
  // probe with lightly perturbed data transactions.
  const Fixture f = MakeFixture(40, Metric::kHamming);
  Rng rng(40);
  QueryStats stats;
  const uint32_t num_queries = 25;
  for (uint32_t i = 0; i < num_queries; ++i) {
    const auto& txn =
        f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    Signature q = Signature::FromItems(txn.items, 250);
    for (int flips = 0; flips < 2; ++flips) {
      const auto bit = static_cast<uint32_t>(rng.UniformInt(250));
      if (q.Test(bit)) {
        q.Reset(bit);
      } else {
        q.Set(bit);
      }
    }
    DfsNearest(*f.tree, q, &stats);
  }
  const uint64_t scanned_all = num_queries * f.dataset.size();
  EXPECT_LT(stats.transactions_compared, scanned_all / 2);
  EXPECT_GT(stats.nodes_accessed, 0u);
}

TEST(SearchStatsTest, BestFirstAccessesNoMoreNodesThanDfsOverall) {
  // Best-first is optimal up to boundary ties: nodes whose bound equals the
  // final k-th distance may be read by either algorithm depending on
  // arbitrary tie order, so compare aggregates with a small tie allowance
  // rather than per query.
  const Fixture f = MakeFixture(41, Metric::kHamming);
  QueryStats dfs;
  QueryStats bf;
  for (const Signature& q : f.queries) {
    DfsKNearest(*f.tree, q, 3, &dfs);
    BestFirstKNearest(*f.tree, q, 3, &bf);
  }
  EXPECT_LE(bf.nodes_accessed,
            dfs.nodes_accessed + 2 * f.queries.size());
}

TEST(SearchStatsTest, RangeWithHugeEpsilonVisitsEverything) {
  const Fixture f = MakeFixture(42, Metric::kHamming);
  QueryStats stats;
  const auto result = RangeSearch(*f.tree, f.queries[0], 1e9, &stats);
  EXPECT_EQ(result.size(), f.dataset.size());
  EXPECT_EQ(stats.transactions_compared, f.dataset.size());
}

TEST(SearchStatsTest, RangeWithNegativeEpsilonFindsNothing) {
  const Fixture f = MakeFixture(43, Metric::kHamming);
  EXPECT_TRUE(RangeSearch(*f.tree, f.queries[0], -1.0).empty());
}

TEST(SearchStatsTest, IoDeltaRecordedPerQuery) {
  const Fixture f = MakeFixture(44, Metric::kHamming);
  f.tree->ResetIo();
  QueryStats stats;
  DfsNearest(*f.tree, f.queries[0], &stats);
  EXPECT_GT(stats.random_ios, 0u);
  EXPECT_EQ(stats.random_ios, f.tree->io_stats().random_ios);
}

TEST(SearchEdgeTest, EmptyTreeQueries) {
  SgTreeOptions options;
  options.num_bits = 64;
  SgTree tree(options);
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, 64);
  EXPECT_TRUE(std::isinf(DfsNearest(tree, q).distance));
  EXPECT_TRUE(DfsKNearest(tree, q, 5).empty());
  EXPECT_TRUE(BestFirstKNearest(tree, q, 5).empty());
  EXPECT_TRUE(RangeSearch(tree, q, 10).empty());
  EXPECT_TRUE(ContainmentSearch(tree, q).empty());
}

TEST(SearchEdgeTest, KZeroReturnsEmpty) {
  const Fixture f = MakeFixture(45, Metric::kHamming, 0, 1);
  EXPECT_TRUE(DfsKNearest(*f.tree, f.queries[0], 0).empty());
  EXPECT_TRUE(BestFirstKNearest(*f.tree, f.queries[0], 0).empty());
}

TEST(SearchEdgeTest, KLargerThanDatasetReturnsAll) {
  const Fixture f = MakeFixture(46, Metric::kHamming, 0, 1);
  const auto result = DfsKNearest(*f.tree, f.queries[0], 100000);
  EXPECT_EQ(result.size(), f.dataset.size());
}

TEST(SearchEdgeTest, QueryEqualToDataPointHasDistanceZero) {
  const Fixture f = MakeFixture(47, Metric::kHamming, 0, 1);
  const auto& txn = f.dataset.transactions[123];
  const Signature q = Signature::FromItems(txn.items, 250);
  const Neighbor nn = DfsNearest(*f.tree, q);
  EXPECT_DOUBLE_EQ(nn.distance, 0.0);
}

}  // namespace
}  // namespace sgtree
