#ifndef SGTREE_TESTS_TEST_UTIL_H_
#define SGTREE_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "common/signature.h"
#include "data/transaction.h"

namespace sgtree::testing {

/// A random signature with approximately `density * num_bits` set bits.
inline Signature RandomSignature(Rng& rng, uint32_t num_bits,
                                 double density) {
  Signature sig(num_bits);
  for (uint32_t i = 0; i < num_bits; ++i) {
    if (rng.Bernoulli(density)) sig.Set(i);
  }
  return sig;
}

/// A random sorted item set of exactly `size` distinct items.
inline std::vector<ItemId> RandomItems(Rng& rng, uint32_t num_items,
                                       uint32_t size) {
  std::vector<ItemId> items;
  while (items.size() < size) {
    const auto item = static_cast<ItemId>(rng.UniformInt(num_items));
    if (std::find(items.begin(), items.end(), item) == items.end()) {
      items.push_back(item);
    }
  }
  std::sort(items.begin(), items.end());
  return items;
}

/// A small clustered dataset: `num_clusters` random centers, each
/// transaction perturbs a center by flipping a few memberships. Gives the
/// index something meaningful to organize without a full generator.
inline Dataset ClusteredDataset(uint64_t seed, uint32_t num_transactions,
                                uint32_t num_items, uint32_t num_clusters,
                                uint32_t center_size, uint32_t noise) {
  Rng rng(seed);
  std::vector<std::vector<ItemId>> centers;
  centers.reserve(num_clusters);
  for (uint32_t c = 0; c < num_clusters; ++c) {
    centers.push_back(RandomItems(rng, num_items, center_size));
  }
  Dataset dataset;
  dataset.num_items = num_items;
  dataset.transactions.reserve(num_transactions);
  for (uint32_t t = 0; t < num_transactions; ++t) {
    const auto& center = centers[rng.UniformInt(num_clusters)];
    Signature sig = Signature::FromItems(center, num_items);
    for (uint32_t f = 0; f < noise; ++f) {
      const auto bit = static_cast<uint32_t>(rng.UniformInt(num_items));
      if (sig.Test(bit)) {
        sig.Reset(bit);
      } else {
        sig.Set(bit);
      }
    }
    Transaction txn;
    txn.tid = t;
    txn.items = sig.ToItems();
    if (txn.items.empty()) txn.items.push_back(0);
    dataset.transactions.push_back(std::move(txn));
  }
  return dataset;
}

}  // namespace sgtree::testing

#endif  // SGTREE_TESTS_TEST_UTIL_H_
