#include "sgtree/invariant_auditor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bit_ops.h"
#include "sgtree/paged_reader.h"
#include "sgtree/sg_tree.h"
#include "static/static_audit.h"
#include "static/static_format.h"
#include "static/static_tree_builder.h"
#include "static/static_tree_view.h"
#include "storage/node_format.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;

SgTreeOptions SmallOptions(uint32_t num_bits = 100) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 8;
  options.buffer_pages = 16;
  return options;
}

std::unique_ptr<SgTree> BuildTree(uint32_t num_transactions = 300) {
  auto tree = std::make_unique<SgTree>(SmallOptions());
  const Dataset dataset = ClusteredDataset(/*seed=*/42, num_transactions,
                                           /*num_items=*/100,
                                           /*num_clusters=*/6,
                                           /*center_size=*/12, /*noise=*/3);
  for (const Transaction& txn : dataset.transactions) tree->Insert(txn);
  EXPECT_GE(tree->height(), 2u) << "corruption tests need a directory level";
  return tree;
}

/// A non-root directory node id (child of the root), for corruption targets.
PageId SomeDirectoryChild(SgTree& tree) {
  const Node& root = tree.GetNodeNoCharge(tree.root());
  EXPECT_GT(root.level, 0);
  return static_cast<PageId>(root.entries[0].ref);
}

bool AnyDetailContains(const AuditReport& report, const std::string& needle) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&](const AuditViolation& v) {
                       return v.detail.find(needle) != std::string::npos;
                     });
}

// ---------------------------------------------------------------------------
// Clean trees.
// ---------------------------------------------------------------------------

TEST(InvariantAuditorTest, CleanTreePasses) {
  auto tree = BuildTree();
  const AuditReport report = AuditTree(*tree);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.stats.height, tree->height());
  EXPECT_EQ(report.stats.node_count, tree->node_count());
  EXPECT_EQ(report.stats.leaf_entries, tree->size());
  EXPECT_GT(report.stats.avg_utilization, 0.0);
  EXPECT_EQ(report.stats.avg_entry_area.size(), tree->height());
}

TEST(InvariantAuditorTest, EmptyTreePasses) {
  SgTree tree(SmallOptions());
  const AuditReport report = AuditTree(tree);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.stats.node_count, 0u);
}

TEST(InvariantAuditorTest, CleanPagedImagePasses) {
  auto tree = BuildTree();
  for (const bool compress : {false, true}) {
    const PagedTreeImage image = FlushTreeToPages(*tree, compress);
    ASSERT_NE(image.pages, nullptr);
    const AuditReport report = AuditPagedImage(image);
    EXPECT_TRUE(report.ok()) << report.Summary();
    EXPECT_EQ(report.stats.leaf_entries, tree->size());
    EXPECT_EQ(report.stats.node_count, tree->node_count());
  }
}

// ---------------------------------------------------------------------------
// In-memory corruption: each injected fault must be detected with the right
// check id and a diagnostic naming the offending page.
// ---------------------------------------------------------------------------

TEST(InvariantAuditorTest, DetectsCoverageLossFromFlippedSignatureBit) {
  auto tree = BuildTree();
  const PageId victim = SomeDirectoryChild(*tree);
  Node* node = tree->MutableNode(victim);
  ASSERT_GT(node->level, 0);
  // Drop one covered bit from a directory entry: the entry no longer covers
  // its child's union (Definition 5).
  const std::vector<uint32_t> set_bits = node->entries[0].sig.ToItems();
  ASSERT_FALSE(set_bits.empty());
  node->entries[0].sig.Reset(set_bits[0]);

  const AuditReport report = AuditTree(*tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kCoverage)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "bit")) << report.Summary();
  // The diagnostic names the page holding the broken entry.
  bool named = false;
  for (const AuditViolation& v : report.violations) {
    if (v.check == AuditCheck::kCoverage && v.page == victim) named = true;
  }
  EXPECT_TRUE(named) << report.Summary();
}

TEST(InvariantAuditorTest, DetectsOrphanNode) {
  auto tree = BuildTree();
  const PageId orphan = tree->AllocateNode(/*level=*/0);
  const AuditReport report = AuditTree(*tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kUnreachablePage)) << report.Summary();
  bool named = false;
  for (const AuditViolation& v : report.violations) {
    if (v.check == AuditCheck::kUnreachablePage && v.page == orphan) {
      named = true;
    }
  }
  EXPECT_TRUE(named) << report.Summary();
}

TEST(InvariantAuditorTest, DetectsFillFactorViolation) {
  auto tree = BuildTree();
  ASSERT_GT(tree->min_entries(), 1u);
  // Find a leaf and strip it below the minimum fill.
  PageId leaf_id = tree->root();
  while (tree->GetNodeNoCharge(leaf_id).level > 0) {
    leaf_id =
        static_cast<PageId>(tree->GetNodeNoCharge(leaf_id).entries[0].ref);
  }
  Node* leaf = tree->MutableNode(leaf_id);
  leaf->entries.resize(1);

  const AuditReport report = AuditTree(*tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kFill)) << report.Summary();
  bool named = false;
  for (const AuditViolation& v : report.violations) {
    if (v.check == AuditCheck::kFill && v.page == leaf_id) named = true;
  }
  EXPECT_TRUE(named) << report.Summary();
}

TEST(InvariantAuditorTest, DetectsDuplicateTid) {
  auto tree = BuildTree();
  PageId leaf_id = tree->root();
  while (tree->GetNodeNoCharge(leaf_id).level > 0) {
    leaf_id =
        static_cast<PageId>(tree->GetNodeNoCharge(leaf_id).entries[0].ref);
  }
  Node* leaf = tree->MutableNode(leaf_id);
  ASSERT_GE(leaf->entries.size(), 2u);
  leaf->entries[1].ref = leaf->entries[0].ref;

  const AuditReport report = AuditTree(*tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kDuplicateTid)) << report.Summary();
  // Uniqueness checking can be disabled (e.g. multiset workloads).
  AuditOptions options;
  options.check_tid_uniqueness = false;
  EXPECT_FALSE(AuditTree(*tree, options).Has(AuditCheck::kDuplicateTid));
}

TEST(InvariantAuditorTest, DetectsSignatureWidthMismatch) {
  auto tree = BuildTree();
  const PageId victim = SomeDirectoryChild(*tree);
  Node* node = tree->MutableNode(victim);
  node->entries[0].sig = Signature(13);  // Tree-wide width is 100.
  const AuditReport report = AuditTree(*tree);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kSignatureWidth)) << report.Summary();
}

TEST(InvariantAuditorTest, ViolationCapKeepsCounting) {
  auto tree = BuildTree();
  // Break every directory entry in the root's children.
  const Node& root = tree->GetNodeNoCharge(tree->root());
  std::vector<PageId> children;
  for (const Entry& entry : root.entries) {
    children.push_back(static_cast<PageId>(entry.ref));
  }
  for (const PageId child : children) {
    Node* node = tree->MutableNode(child);
    if (node->level == 0) continue;
    for (Entry& entry : node->entries) {
      const std::vector<uint32_t> bits = entry.sig.ToItems();
      if (!bits.empty()) entry.sig.Reset(bits[0]);
    }
  }
  AuditOptions options;
  options.max_violations = 2;
  const AuditReport report = AuditTree(*tree, options);
  EXPECT_FALSE(report.ok());
  EXPECT_EQ(report.violations.size(), 2u);
  EXPECT_GT(report.total_violations, 2u);
}

// ---------------------------------------------------------------------------
// Paged-image corruption.
// ---------------------------------------------------------------------------

TEST(InvariantAuditorTest, PagedDetectsCorruptSignature) {
  auto tree = BuildTree();
  const PageId victim = SomeDirectoryChild(*tree);
  Node* node = tree->MutableNode(victim);
  const std::vector<uint32_t> set_bits = node->entries[0].sig.ToItems();
  ASSERT_FALSE(set_bits.empty());
  node->entries[0].sig.Reset(set_bits[0]);

  const PagedTreeImage image = FlushTreeToPages(*tree, /*compress=*/true);
  ASSERT_NE(image.pages, nullptr);
  const AuditReport report = AuditPagedImage(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kCoverage)) << report.Summary();
}

TEST(InvariantAuditorTest, PagedDetectsOrphanPage) {
  auto tree = BuildTree();
  PagedTreeImage image = FlushTreeToPages(*tree, /*compress=*/true);
  ASSERT_NE(image.pages, nullptr);
  const PageId orphan = image.pages->Allocate();
  // Give the orphan a valid empty-leaf image so only reachability fails.
  NodeRecord record;
  std::vector<uint8_t> bytes;
  EncodeNode(record, /*compress=*/false, &bytes);
  ASSERT_TRUE(image.pages->Write(orphan, std::move(bytes)));

  const AuditReport report = AuditPagedImage(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kUnreachablePage)) << report.Summary();
}

TEST(InvariantAuditorTest, PagedDetectsDanglingReference) {
  auto tree = BuildTree();
  PagedTreeImage image = FlushTreeToPages(*tree, /*compress=*/true);
  ASSERT_NE(image.pages, nullptr);
  // Free a page the root points to: the reference now dangles.
  std::vector<uint8_t> root_bytes;
  ASSERT_TRUE(image.pages->Read(image.root, &root_bytes));
  NodeRecord root_record;
  ASSERT_TRUE(DecodeNode(root_bytes, image.num_bits, &root_record));
  ASSERT_FALSE(root_record.entries.empty());
  ASSERT_GT(root_record.level, 0);
  image.pages->Free(static_cast<PageId>(root_record.entries[0].first));

  const AuditReport report = AuditPagedImage(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kDanglingRef)) << report.Summary();
}

TEST(InvariantAuditorTest, PagedDetectsTrailingGarbage) {
  auto tree = BuildTree();
  PagedTreeImage image = FlushTreeToPages(*tree, /*compress=*/true);
  ASSERT_NE(image.pages, nullptr);
  std::vector<uint8_t> root_bytes;
  ASSERT_TRUE(image.pages->Read(image.root, &root_bytes));
  root_bytes.push_back(0xAB);
  ASSERT_TRUE(image.pages->Write(image.root, std::move(root_bytes)));

  const AuditReport report = AuditPagedImage(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kPageDecode)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "trailing")) << report.Summary();
}

TEST(InvariantAuditorTest, PagedDetectsUndecodablePage) {
  auto tree = BuildTree();
  PagedTreeImage image = FlushTreeToPages(*tree, /*compress=*/true);
  ASSERT_NE(image.pages, nullptr);
  std::vector<uint8_t> root_bytes;
  ASSERT_TRUE(image.pages->Read(image.root, &root_bytes));
  root_bytes.resize(3);  // Truncate mid-header.
  ASSERT_TRUE(image.pages->Write(image.root, std::move(root_bytes)));

  const AuditReport report = AuditPagedImage(image);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kPageDecode)) << report.Summary();
}

// ---------------------------------------------------------------------------
// Report plumbing.
// ---------------------------------------------------------------------------

TEST(InvariantAuditorTest, ViolationToStringNamesCheckAndPage) {
  AuditViolation violation;
  violation.check = AuditCheck::kCoverage;
  violation.page = 17;
  violation.detail = "entry 3 not covered";
  const std::string line = violation.ToString();
  EXPECT_NE(line.find("coverage"), std::string::npos);
  EXPECT_NE(line.find("17"), std::string::npos);
  EXPECT_NE(line.find("entry 3 not covered"), std::string::npos);
}

TEST(InvariantAuditorTest, SummaryOfCleanReportMentionsStats) {
  auto tree = BuildTree();
  const std::string summary = AuditTree(*tree).Summary();
  EXPECT_NE(summary.find("all invariants hold"), std::string::npos);
  EXPECT_NE(summary.find("height"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Static-image audits: the same semantic invariants, checked over the
// mmap'able image. Corruption is injected by patching raw image bytes and
// reopening with checksum verification off — the structurally-consistent
// damage a CRC would flag but a traversal would otherwise happily serve.
// ---------------------------------------------------------------------------

namespace sf = ::sgtree::static_format;

// Byte-level accessors over an image, mirroring the documented layout.
struct ImagePatcher {
  std::vector<uint8_t> bytes;

  uint64_t NodeOffset(uint64_t i) const {
    return sf::LoadU64(bytes.data() + sf::kHeaderSize + i * 8);
  }
  uint16_t LevelOf(uint64_t i) const {
    return sf::LoadU16(bytes.data() + NodeOffset(i));
  }
  uint16_t CountOf(uint64_t i) const {
    return sf::LoadU16(bytes.data() + NodeOffset(i) + 2);
  }
  // Byte offset of entry `e` of node `i` (the u64 ref; sig words follow).
  uint64_t EntryOffset(uint64_t i, uint64_t e, uint32_t words) const {
    return NodeOffset(i) + 8 + e * (8 + uint64_t{words} * 8);
  }
  // First leaf node holding at least two entries.
  uint64_t SomeLeaf(uint64_t node_count) const {
    for (uint64_t i = 0; i < node_count; ++i) {
      if (LevelOf(i) == 0 && CountOf(i) >= 2) return i;
    }
    ADD_FAILURE() << "no leaf with 2+ entries";
    return 0;
  }
};

ImagePatcher BuildStaticImageOf(const SgTree& tree) {
  ImagePatcher patcher;
  std::string error;
  EXPECT_TRUE(BuildStaticImage(tree, &patcher.bytes, &error)) << error;
  return patcher;
}

std::unique_ptr<StaticTreeView> OpenPatched(const ImagePatcher& patcher) {
  StaticOpenOptions options;
  options.tree = SmallOptions();
  options.verify_checksums = false;  // Admit the CRC-stale patched image.
  std::string error;
  auto view = StaticTreeView::OpenFromBytes(
      patcher.bytes.data(), patcher.bytes.size(), options, &error);
  EXPECT_NE(view, nullptr) << error;
  return view;
}

TEST(StaticAuditTest, CleanImagePasses) {
  auto tree = BuildTree();
  const ImagePatcher patcher = BuildStaticImageOf(*tree);
  auto view = OpenPatched(patcher);
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.stats.node_count, tree->node_count());
  EXPECT_EQ(report.stats.leaf_entries, tree->size());
  // The per-level area profile matches the dynamic auditor's.
  const AuditReport dynamic_report = AuditTree(*tree);
  EXPECT_EQ(report.stats.avg_entry_area, dynamic_report.stats.avg_entry_area);
  EXPECT_EQ(report.stats.avg_utilization, dynamic_report.stats.avg_utilization);
}

TEST(StaticAuditTest, EmptyImagePasses) {
  const SgTree empty(SmallOptions());
  auto view = OpenPatched(BuildStaticImageOf(empty));
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.stats.node_count, 0u);
}

TEST(StaticAuditTest, DetectsFlippedDirectorySignatureBit) {
  auto tree = BuildTree();
  ImagePatcher patcher = BuildStaticImageOf(*tree);
  const uint32_t words = WordsForBits(tree->num_bits());
  // Node 0 is the root — a directory (BuildTree guarantees height >= 2).
  ASSERT_GT(patcher.LevelOf(0), 0u);
  // Flip one in-width bit of the root's first entry signature: the entry
  // no longer equals the OR of its child's entries.
  patcher.bytes[patcher.EntryOffset(0, 0, words) + 8 + 3] ^= 0x10;  // Bit 28.
  auto view = OpenPatched(patcher);
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kCoverage)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "not the OR of child node"));
}

TEST(StaticAuditTest, DetectsDuplicateTid) {
  auto tree = BuildTree();
  ImagePatcher patcher = BuildStaticImageOf(*tree);
  const uint32_t words = WordsForBits(tree->num_bits());
  const uint64_t leaf = patcher.SomeLeaf(tree->node_count());
  // Rewrite leaf entry 0's tid to collide with entry 1's. Signatures are
  // untouched, so coverage still holds — only the tid index is corrupt.
  const uint64_t tid1 =
      sf::LoadU64(patcher.bytes.data() + patcher.EntryOffset(leaf, 1, words));
  sf::StoreU64(patcher.bytes.data() + patcher.EntryOffset(leaf, 0, words),
               tid1);
  auto view = OpenPatched(patcher);
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kDuplicateTid)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "already indexed by node"));
}

TEST(StaticAuditTest, DetectsLeafSignatureDrift) {
  auto tree = BuildTree();
  ImagePatcher patcher = BuildStaticImageOf(*tree);
  const uint32_t words = WordsForBits(tree->num_bits());
  const uint64_t leaf = patcher.SomeLeaf(tree->node_count());
  // Set an in-width bit that is clear in the leaf entry's signature: the
  // child union gains a bit its parent entry never covered.
  uint8_t* word0 =
      patcher.bytes.data() + patcher.EntryOffset(leaf, 0, words) + 8;
  uint64_t value = sf::LoadU64(word0);
  int clear_bit = -1;
  for (int b = 0; b < 64; ++b) {
    if ((value & (uint64_t{1} << b)) == 0) {
      clear_bit = b;
      break;
    }
  }
  ASSERT_GE(clear_bit, 0);
  sf::StoreU64(word0, value | (uint64_t{1} << clear_bit));
  auto view = OpenPatched(patcher);
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kCoverage)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "lost bit"));
}

TEST(StaticAuditTest, DetectsBitsBeyondSignatureWidth) {
  auto tree = BuildTree();  // 100 bits: word 1 has 28 tail bits.
  ImagePatcher patcher = BuildStaticImageOf(*tree);
  const uint32_t words = WordsForBits(tree->num_bits());
  ASSERT_EQ(words, 2u);
  const uint64_t leaf = patcher.SomeLeaf(tree->node_count());
  uint8_t* word1 =
      patcher.bytes.data() + patcher.EntryOffset(leaf, 0, words) + 8 + 8;
  sf::StoreU64(word1, sf::LoadU64(word1) | (uint64_t{1} << 60));  // Bit 124.
  auto view = OpenPatched(patcher);
  const AuditReport report = AuditStaticImage(*view);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(AuditCheck::kSignatureWidth)) << report.Summary();
  EXPECT_TRUE(AnyDetailContains(report, "beyond the signature width"));
}

}  // namespace
}  // namespace sgtree
