// Cross-cutting property tests: invariances that must hold regardless of
// insertion order, query, or configuration — the "metamorphic" checks that
// catch bugs the example-based tests cannot.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

SgTreeOptions SmallOptions(uint32_t num_bits = 150) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 9;
  return options;
}

std::vector<Transaction> Shuffled(const std::vector<Transaction>& input,
                                  uint64_t seed) {
  std::vector<Transaction> shuffled = input;
  Rng rng(seed);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
  }
  return shuffled;
}

// ---------------------------------------------------------------------------
// Insertion-order invariance of query ANSWERS (the tree shape may differ,
// the returned distances may not).
// ---------------------------------------------------------------------------

class OrderInvarianceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OrderInvarianceTest, QueryAnswersIndependentOfInsertionOrder) {
  const Dataset dataset = ClusteredDataset(GetParam(), 700, 150, 8, 10, 2);
  SgTree in_order(SmallOptions());
  SgTree shuffled(SmallOptions());
  for (const Transaction& txn : dataset.transactions) in_order.Insert(txn);
  for (const Transaction& txn :
       Shuffled(dataset.transactions, GetParam() * 31 + 7)) {
    shuffled.Insert(txn);
  }
  ASSERT_TRUE(CheckTree(in_order).ok);
  ASSERT_TRUE(CheckTree(shuffled).ok);

  Rng rng(GetParam() ^ 0xbeef);
  for (int q = 0; q < 20; ++q) {
    Signature query = RandomSignature(rng, 150, 0.06);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(DfsNearest(in_order, query).distance,
                     DfsNearest(shuffled, query).distance);
    const auto range_a = RangeSearch(in_order, query, 7.0);
    const auto range_b = RangeSearch(shuffled, query, 7.0);
    ASSERT_EQ(range_a.size(), range_b.size());
    for (size_t i = 0; i < range_a.size(); ++i) {
      EXPECT_EQ(range_a[i].tid, range_b[i].tid);
    }
    EXPECT_EQ(ContainmentSearch(in_order, query),
              ContainmentSearch(shuffled, query));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderInvarianceTest,
                         ::testing::Range<uint64_t>(600, 606));

// ---------------------------------------------------------------------------
// Delete/insert inverse: removing a batch leaves the index answering as if
// the batch never existed.
// ---------------------------------------------------------------------------

TEST(InverseUpdateTest, EraseUndoesInsert) {
  const Dataset base = ClusteredDataset(610, 500, 150, 8, 10, 2);
  const Dataset extra = ClusteredDataset(611, 200, 150, 4, 12, 3);

  SgTree with_extra(SmallOptions());
  SgTree without(SmallOptions());
  for (const Transaction& txn : base.transactions) {
    with_extra.Insert(txn);
    without.Insert(txn);
  }
  for (Transaction txn : extra.transactions) {
    txn.tid += 100000;
    with_extra.Insert(txn);
  }
  for (Transaction txn : extra.transactions) {
    txn.tid += 100000;
    ASSERT_TRUE(with_extra.Erase(txn));
  }
  ASSERT_TRUE(CheckTree(with_extra).ok);
  EXPECT_EQ(with_extra.size(), without.size());

  Rng rng(612);
  for (int q = 0; q < 20; ++q) {
    Signature query = RandomSignature(rng, 150, 0.06);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(DfsNearest(with_extra, query).distance,
                     DfsNearest(without, query).distance);
    const auto a = DfsKNearest(with_extra, query, 10);
    const auto b = DfsKNearest(without, query, 10);
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].distance, b[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Query-algebra consistencies.
// ---------------------------------------------------------------------------

struct AlgebraFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
};

AlgebraFixture MakeAlgebra(uint64_t seed) {
  AlgebraFixture f;
  f.dataset = ClusteredDataset(seed, 600, 150, 8, 10, 2);
  f.tree = std::make_unique<SgTree>(SmallOptions());
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  return f;
}

TEST(QueryAlgebraTest, KnnOfFullSizeEqualsSortedRangeOfInfinity) {
  const AlgebraFixture f = MakeAlgebra(620);
  Rng rng(621);
  const Signature query = RandomSignature(rng, 150, 0.06);
  const auto knn = DfsKNearest(*f.tree, query, 600);
  const auto range = RangeSearch(*f.tree, query, 1e12);
  ASSERT_EQ(knn.size(), range.size());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].distance, range[i].distance);
  }
}

TEST(QueryAlgebraTest, RangeIsMonotoneInEpsilon) {
  const AlgebraFixture f = MakeAlgebra(622);
  Rng rng(623);
  for (int q = 0; q < 10; ++q) {
    const Signature query = RandomSignature(rng, 150, 0.06);
    size_t previous = 0;
    for (double epsilon : {0.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
      const size_t count = RangeSearch(*f.tree, query, epsilon).size();
      EXPECT_GE(count, previous) << "epsilon=" << epsilon;
      previous = count;
    }
  }
}

TEST(QueryAlgebraTest, KnnDistancesAreMonotoneInK) {
  const AlgebraFixture f = MakeAlgebra(624);
  Rng rng(625);
  const Signature query = RandomSignature(rng, 150, 0.06);
  const auto k5 = DfsKNearest(*f.tree, query, 5);
  const auto k20 = DfsKNearest(*f.tree, query, 20);
  for (size_t i = 0; i < k5.size(); ++i) {
    EXPECT_DOUBLE_EQ(k5[i].distance, k20[i].distance);  // Prefix property.
  }
  for (size_t i = 1; i < k20.size(); ++i) {
    EXPECT_GE(k20[i].distance, k20[i - 1].distance);
  }
}

TEST(QueryAlgebraTest, ContainmentIsAntitoneInQuery) {
  // Adding items to a containment query can only shrink the result.
  const AlgebraFixture f = MakeAlgebra(626);
  Rng rng(627);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& txn =
        f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    std::vector<ItemId> probe;
    size_t previous = f.dataset.size() + 1;
    for (ItemId item : txn.items) {
      probe.push_back(item);
      const size_t count =
          ContainmentSearch(*f.tree, Signature::FromItems(probe, 150))
              .size();
      EXPECT_LE(count, previous);
      previous = count;
    }
    EXPECT_GE(previous, 1u);  // The transaction itself always qualifies.
  }
}

TEST(QueryAlgebraTest, NnDistanceZeroIffExactMatchExists) {
  const AlgebraFixture f = MakeAlgebra(628);
  Rng rng(629);
  for (int trial = 0; trial < 20; ++trial) {
    const Signature query = RandomSignature(rng, 150, 0.06);
    const bool has_exact = !ExactSearch(*f.tree, query).empty();
    const double nn = DfsNearest(*f.tree, query).distance;
    EXPECT_EQ(nn == 0.0, has_exact);
  }
}

// ---------------------------------------------------------------------------
// SG-table order invariance (hashing is per transaction, so any insertion
// order yields the same buckets for the same vertical signatures).
// ---------------------------------------------------------------------------

TEST(SgTableOrderTest, QueryAnswersIndependentOfBatchOrder) {
  const Dataset dataset = ClusteredDataset(630, 700, 150, 8, 10, 2);
  SgTableOptions options;
  options.clustering.num_signatures = 8;

  SgTable in_order(dataset, options);
  // Same co-occurrence input (the full dataset), different insert order for
  // the remainder: build from a dataset containing the first half, insert
  // the shuffled second half.
  Dataset head;
  head.num_items = dataset.num_items;
  head.transactions.assign(dataset.transactions.begin(),
                           dataset.transactions.begin() + 350);
  SgTable incremental(head, options);
  std::vector<Transaction> tail(dataset.transactions.begin() + 350,
                                dataset.transactions.end());
  for (const Transaction& txn : Shuffled(tail, 631)) {
    incremental.Insert(txn);
  }
  EXPECT_EQ(incremental.size(), in_order.size());

  // Same transactions hashed with different vertical signatures (derived
  // from half the data) still answer exactly.
  LinearScan scan(dataset);
  Rng rng(632);
  for (int q = 0; q < 20; ++q) {
    const Signature query = RandomSignature(rng, 150, 0.06);
    const double expected = scan.Nearest(query).distance;
    EXPECT_DOUBLE_EQ(in_order.Nearest(query).distance, expected);
    EXPECT_DOUBLE_EQ(incremental.Nearest(query).distance, expected);
  }
}

}  // namespace
}  // namespace sgtree
