// End-to-end scenarios exercising both indexes, the generators and the
// search algorithms together — miniature versions of the paper's
// experiments, asserting agreement rather than performance.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/census_generator.h"
#include "data/quest_generator.h"
#include "sgtable/sg_table.h"
#include "sgtree/bulk_load.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"

namespace sgtree {
namespace {

struct Workbench {
  Dataset dataset;
  std::vector<Transaction> queries;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<SgTable> table;
  std::unique_ptr<LinearScan> scan;
};

Workbench QuestBench(uint64_t seed, uint32_t d = 2500) {
  Workbench w;
  QuestOptions qopt;
  qopt.num_transactions = d;
  qopt.num_items = 400;
  qopt.num_patterns = 60;
  qopt.avg_transaction_size = 12;
  qopt.avg_itemset_size = 6;
  qopt.seed = seed;
  QuestGenerator gen(qopt);
  w.dataset = gen.Generate();
  w.queries = gen.GenerateQueries(20);

  SgTreeOptions topt;
  topt.num_bits = 400;
  topt.max_entries = 16;
  w.tree = std::make_unique<SgTree>(topt);
  for (const Transaction& txn : w.dataset.transactions) w.tree->Insert(txn);

  SgTableOptions sopt;
  sopt.clustering.num_signatures = 10;
  w.table = std::make_unique<SgTable>(w.dataset, sopt);
  w.scan = std::make_unique<LinearScan>(w.dataset);
  return w;
}

TEST(IntegrationTest, AllThreeIndexesAgreeOnQuestNn) {
  const Workbench w = QuestBench(100);
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    const double expected = w.scan->Nearest(sig).distance;
    EXPECT_DOUBLE_EQ(
        DfsNearest(*w.tree, sig, w.tree->OwnPoolContext()).distance,
        expected);
    EXPECT_DOUBLE_EQ(w.table->Nearest(sig).distance, expected);
  }
}

TEST(IntegrationTest, AllThreeIndexesAgreeOnQuestKnnAndRange) {
  const Workbench w = QuestBench(101);
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    const auto knn_scan = w.scan->KNearest(sig, 10);
    const auto knn_tree =
        DfsKNearest(*w.tree, sig, 10, w.tree->OwnPoolContext());
    const auto knn_table = w.table->KNearest(sig, 10);
    for (size_t i = 0; i < 10; ++i) {
      EXPECT_DOUBLE_EQ(knn_tree[i].distance, knn_scan[i].distance);
      EXPECT_DOUBLE_EQ(knn_table[i].distance, knn_scan[i].distance);
    }
    const auto range_scan = w.scan->Range(sig, 8.0);
    EXPECT_EQ(
        RangeSearch(*w.tree, sig, 8.0, w.tree->OwnPoolContext()).size(),
        range_scan.size());
    EXPECT_EQ(w.table->Range(sig, 8.0).size(), range_scan.size());
  }
}

TEST(IntegrationTest, CensusPipelineEndToEnd) {
  CensusOptions copt;
  copt.num_tuples = 3000;
  copt.seed = 102;
  CensusGenerator gen(copt);
  const Dataset dataset = gen.Generate();

  SgTreeOptions topt;
  topt.num_bits = dataset.num_items;
  topt.fixed_dimensionality = dataset.fixed_dimensionality;
  auto tree = BulkLoad(dataset, topt);
  ASSERT_TRUE(CheckTree(*tree).ok);

  SgTableOptions sopt;
  sopt.clustering.num_signatures = 12;
  SgTable table(dataset, sopt);
  LinearScan scan(dataset);

  for (const Transaction& q : gen.GenerateQueries(20)) {
    const Signature sig = Signature::FromItems(q.items, dataset.num_items);
    const double expected = scan.Nearest(sig).distance;
    EXPECT_DOUBLE_EQ(
        DfsNearest(*tree, sig, tree->OwnPoolContext()).distance, expected);
    EXPECT_DOUBLE_EQ(table.Nearest(sig).distance, expected);
    // Census distances are even (fixed dimensionality 36).
    EXPECT_EQ(static_cast<long long>(expected) % 2, 0);
  }
}

TEST(IntegrationTest, DynamicBatchesStayExact) {
  // Figure 17 scenario in miniature: insert batches with different seeds
  // into both structures; both must stay exact (the SG-table only loses
  // efficiency, never correctness).
  QuestOptions base;
  base.num_transactions = 800;
  base.num_items = 300;
  base.num_patterns = 100;
  base.seed = 103;
  QuestGenerator first(base);
  Dataset all = first.Generate();

  SgTreeOptions topt;
  topt.num_bits = 300;
  SgTree tree(topt);
  for (const Transaction& txn : all.transactions) tree.Insert(txn);
  SgTableOptions sopt;
  sopt.clustering.num_signatures = 10;
  SgTable table(all, sopt);

  for (uint64_t batch = 1; batch <= 3; ++batch) {
    QuestOptions bopt = base;
    bopt.seed = base.seed + batch * 17;
    QuestGenerator gen(bopt);
    Dataset extra = gen.Generate();
    for (Transaction& txn : extra.transactions) {
      txn.tid += batch * 10000;
      tree.Insert(txn);
      table.Insert(txn);
      all.transactions.push_back(txn);
    }
  }
  ASSERT_TRUE(CheckTree(tree).ok);
  LinearScan scan(all);
  QuestGenerator query_gen(base);
  for (const Transaction& q : query_gen.GenerateQueries(15)) {
    const Signature sig = Signature::FromItems(q.items, 300);
    const double expected = scan.Nearest(sig).distance;
    EXPECT_DOUBLE_EQ(
        DfsNearest(tree, sig, tree.OwnPoolContext()).distance, expected);
    EXPECT_DOUBLE_EQ(table.Nearest(sig).distance, expected);
  }
}

TEST(IntegrationTest, TreePrunesBetterThanScanOnClusteredData) {
  const Workbench w = QuestBench(104, 4000);
  QueryStats tree_stats;
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    DfsNearest(*w.tree, sig, w.tree->OwnPoolContext(&tree_stats));
  }
  const uint64_t full = w.queries.size() * w.dataset.size();
  // The headline property: the index avoids a large share of the data even
  // at this miniature scale (pruning improves with cardinality, Figure 11).
  EXPECT_LT(tree_stats.transactions_compared, full * 0.75);
}

TEST(IntegrationTest, BulkAndIncrementalTreesAgreeEverywhere) {
  const Workbench w = QuestBench(105, 1500);
  SgTreeOptions topt;
  topt.num_bits = 400;
  auto bulk = BulkLoad(w.dataset, topt);
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    EXPECT_DOUBLE_EQ(
        DfsNearest(*bulk, sig, bulk->OwnPoolContext()).distance,
        DfsNearest(*w.tree, sig, w.tree->OwnPoolContext()).distance);
  }
}

TEST(IntegrationTest, MixedWorkloadSurvivesEverything) {
  // Insert, query, delete, bulk-compare, re-insert: a downstream user's
  // session in one test.
  const Workbench w = QuestBench(106, 1200);
  ASSERT_TRUE(CheckTree(*w.tree).ok);

  // Delete a third.
  for (size_t i = 0; i < w.dataset.size(); i += 3) {
    ASSERT_TRUE(w.tree->Erase(w.dataset.transactions[i]));
  }
  ASSERT_TRUE(CheckTree(*w.tree).ok);

  // Remaining data as ground truth.
  Dataset remaining;
  remaining.num_items = 400;
  for (size_t i = 0; i < w.dataset.size(); ++i) {
    if (i % 3 != 0) remaining.transactions.push_back(w.dataset.transactions[i]);
  }
  LinearScan scan(remaining);
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    EXPECT_DOUBLE_EQ(
        DfsNearest(*w.tree, sig, w.tree->OwnPoolContext()).distance,
        scan.Nearest(sig).distance);
  }

  // Re-insert the deleted third; results must match the full scan again.
  for (size_t i = 0; i < w.dataset.size(); i += 3) {
    w.tree->Insert(w.dataset.transactions[i]);
  }
  ASSERT_TRUE(CheckTree(*w.tree).ok);
  for (const Transaction& q : w.queries) {
    const Signature sig = Signature::FromItems(q.items, 400);
    EXPECT_DOUBLE_EQ(
        DfsNearest(*w.tree, sig, w.tree->OwnPoolContext()).distance,
        w.scan->Nearest(sig).distance);
  }
}

TEST(IntegrationTest, BufferPoolReducesIosOnRepeatedQueries) {
  const Workbench w = QuestBench(107, 2000);
  w.tree->ResetIo();
  const Signature sig =
      Signature::FromItems(w.queries[0].items, 400);
  QueryStats cold;
  DfsNearest(*w.tree, sig, w.tree->OwnPoolContext(&cold));
  QueryStats warm;
  DfsNearest(*w.tree, sig, w.tree->OwnPoolContext(&warm));
  EXPECT_LT(warm.random_ios, cold.random_ios + 1);  // Warm <= cold.
  EXPECT_EQ(warm.nodes_accessed, cold.nodes_accessed);
}

}  // namespace
}  // namespace sgtree
