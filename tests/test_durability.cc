// Unit tests for the durability subsystem: CRC framing, the posix Env, the
// file-backed page store (slotted layout, ping-pong headers, free-list
// persistence, checksum detection), the write-ahead log (framing, torn-tail
// scan, reset), metadata round-trips, crash-atomic snapshot save/load, and
// the DurableTree write path (log-before-apply, group commit, checkpoint,
// reopen). Crash-schedule sweeps live in test_recovery_torture.cc.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32.h"
#include "common/file_util.h"
#include "common/signature.h"
#include "data/transaction.h"
#include "durability/byte_io.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "durability/fault_injection.h"
#include "durability/file_page_store.h"
#include "durability/meta.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "sgtree/persistence.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "storage/page_store.h"

namespace sgtree {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

Transaction MakeTxn(uint64_t tid, std::vector<ItemId> items) {
  Transaction txn;
  txn.tid = tid;
  txn.items = std::move(items);
  return txn;
}

// ---------------------------------------------------------------------------
// CRC-32C.
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVectors) {
  // The classic CRC-32C check value for "123456789".
  const char* digits = "123456789";
  EXPECT_EQ(Crc32c(reinterpret_cast<const uint8_t*>(digits), 9), 0xE3069283u);
  EXPECT_EQ(Crc32c(nullptr, 0), 0u);
}

TEST(Crc32Test, DetectsSingleBitFlips) {
  std::vector<uint8_t> data(64);
  for (size_t i = 0; i < data.size(); ++i) data[i] = uint8_t(i * 7);
  const uint32_t clean = Crc32c(data);
  for (size_t bit = 0; bit < data.size() * 8; bit += 37) {
    std::vector<uint8_t> flipped = data;
    flipped[bit / 8] ^= uint8_t(1u << (bit % 8));
    EXPECT_NE(Crc32c(flipped), clean) << "bit " << bit;
  }
}

// ---------------------------------------------------------------------------
// Byte framing.
// ---------------------------------------------------------------------------

TEST(ByteIoTest, RoundTrip) {
  std::vector<uint8_t> buf;
  AppendU8(0xAB, &buf);
  AppendU16(0xBEEF, &buf);
  AppendU32(0xDEADBEEFu, &buf);
  AppendU64(0x0123456789ABCDEFull, &buf);
  size_t offset = 0;
  uint8_t v8 = 0;
  uint16_t v16 = 0;
  uint32_t v32 = 0;
  uint64_t v64 = 0;
  ASSERT_TRUE(ReadU8(buf, &offset, &v8));
  ASSERT_TRUE(ReadU16(buf, &offset, &v16));
  ASSERT_TRUE(ReadU32(buf, &offset, &v32));
  ASSERT_TRUE(ReadU64(buf, &offset, &v64));
  EXPECT_EQ(v8, 0xAB);
  EXPECT_EQ(v16, 0xBEEF);
  EXPECT_EQ(v32, 0xDEADBEEFu);
  EXPECT_EQ(v64, 0x0123456789ABCDEFull);
  EXPECT_EQ(offset, buf.size());
}

TEST(ByteIoTest, TruncatedReadsFailWithoutAdvancing) {
  std::vector<uint8_t> buf = {1, 2, 3};
  size_t offset = 0;
  uint64_t v64 = 0;
  EXPECT_FALSE(ReadU64(buf, &offset, &v64));
  EXPECT_EQ(offset, 0u);
  uint32_t v32 = 0;
  EXPECT_FALSE(ReadU32(buf, &offset, &v32));
  EXPECT_EQ(offset, 0u);
  uint16_t v16 = 0;
  EXPECT_TRUE(ReadU16(buf, &offset, &v16));
  EXPECT_EQ(offset, 2u);
}

// ---------------------------------------------------------------------------
// Env.
// ---------------------------------------------------------------------------

TEST(EnvTest, WriteReadAppendTruncate) {
  Env* env = Env::Posix();
  const std::string path = TempPath("env_basic.bin");
  env->Delete(path);
  auto file = env->Open(path, /*create=*/true);
  ASSERT_NE(file, nullptr);
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(file->WriteAt(0, payload.data(), payload.size()));
  ASSERT_TRUE(file->Append(payload.data(), payload.size()));
  EXPECT_EQ(file->Size(), 10u);

  std::vector<uint8_t> got;
  ASSERT_TRUE(file->ReadAt(5, 5, &got));
  EXPECT_EQ(got, payload);
  // Short read at EOF returns the available prefix, not an error.
  ASSERT_TRUE(file->ReadAt(8, 100, &got));
  EXPECT_EQ(got.size(), 2u);

  ASSERT_TRUE(file->Truncate(3));
  EXPECT_EQ(file->Size(), 3u);
  ASSERT_TRUE(file->Sync());
  EXPECT_TRUE(env->FileExists(path));
  EXPECT_TRUE(env->SyncDir(path));
  EXPECT_TRUE(env->Delete(path));
  EXPECT_FALSE(env->FileExists(path));
}

TEST(EnvTest, OpenWithoutCreateFails) {
  Env* env = Env::Posix();
  EXPECT_EQ(env->Open(TempPath("definitely_missing.bin"), false), nullptr);
}

TEST(FileUtilTest, AtomicWriteFileReplacesAndReportsErrors) {
  const std::string path = TempPath("atomic.bin");
  std::string error;
  ASSERT_TRUE(AtomicWriteFile(path, {1, 2, 3}, &error)) << error;
  ASSERT_TRUE(AtomicWriteFile(path, {9, 9}, &error)) << error;
  Env* env = Env::Posix();
  auto file = env->Open(path, false);
  ASSERT_NE(file, nullptr);
  std::vector<uint8_t> got;
  ASSERT_TRUE(file->ReadAt(0, 100, &got));
  EXPECT_EQ(got, (std::vector<uint8_t>{9, 9}));
  // The staging file must not linger.
  EXPECT_FALSE(env->FileExists(path + ".tmp"));
  EXPECT_FALSE(AtomicWriteFile(TempPath("no_such_dir") + "/x", {1}, &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// File page store.
// ---------------------------------------------------------------------------

TEST(FilePageStoreTest, CreateWriteReopenRead) {
  Env* env = Env::Posix();
  const std::string path = TempPath("store_basic.sgp");
  env->Delete(path);
  std::string error;
  auto store = FilePageStore::Create(env, path, 256, &error);
  ASSERT_NE(store, nullptr) << error;
  const PageId a = store->Allocate();
  const PageId b = store->Allocate();
  ASSERT_TRUE(store->Write(a, {1, 2, 3}));
  ASSERT_TRUE(store->Write(b, std::vector<uint8_t>(256, 0x5A)));
  ASSERT_TRUE(store->WriteMeta({7, 7, 7}));
  ASSERT_TRUE(store->Sync());
  EXPECT_EQ(store->LivePages(), 2u);
  store.reset();

  store = FilePageStore::Open(env, path, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->page_size(), 256u);
  EXPECT_EQ(store->LivePages(), 2u);
  EXPECT_EQ(store->meta(), (std::vector<uint8_t>{7, 7, 7}));
  std::vector<uint8_t> payload;
  ASSERT_TRUE(store->Read(a, &payload));
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
  ASSERT_TRUE(store->Read(b, &payload));
  EXPECT_EQ(payload, std::vector<uint8_t>(256, 0x5A));
}

TEST(FilePageStoreTest, FreeListSurvivesReopen) {
  Env* env = Env::Posix();
  const std::string path = TempPath("store_freelist.sgp");
  env->Delete(path);
  std::string error;
  auto store = FilePageStore::Create(env, path, 128, &error);
  ASSERT_NE(store, nullptr) << error;
  const PageId a = store->Allocate();
  const PageId b = store->Allocate();
  const PageId c = store->Allocate();
  ASSERT_TRUE(store->Write(a, {1}));
  ASSERT_TRUE(store->Write(b, {2}));
  ASSERT_TRUE(store->Write(c, {3}));
  store->Free(b);
  ASSERT_TRUE(store->WriteMeta({}));
  ASSERT_TRUE(store->Sync());
  store.reset();

  store = FilePageStore::Open(env, path, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->LivePages(), 2u);
  std::vector<uint8_t> payload;
  EXPECT_FALSE(store->Read(b, &payload));
  // The freed slot is reusable after reopen.
  const PageId again = store->Allocate();
  EXPECT_EQ(again, b);
}

TEST(FilePageStoreTest, ReserveAndPut) {
  Env* env = Env::Posix();
  const std::string path = TempPath("store_reserve.sgp");
  env->Delete(path);
  std::string error;
  auto store = FilePageStore::Create(env, path, 128, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_TRUE(store->Reserve(5));
  EXPECT_FALSE(store->Reserve(5));  // already live
  ASSERT_TRUE(store->Put(9, {42}));
  std::vector<uint8_t> payload;
  ASSERT_TRUE(store->Read(9, &payload));
  EXPECT_EQ(payload, (std::vector<uint8_t>{42}));
  // Holes below the reserved ids are allocatable.
  const PageId id = store->Allocate();
  EXPECT_LT(id, 9u);
  EXPECT_NE(id, 5u);
}

TEST(FilePageStoreTest, ChecksumMismatchDetected) {
  Env* env = Env::Posix();
  const std::string path = TempPath("store_crc.sgp");
  env->Delete(path);
  std::string error;
  auto store = FilePageStore::Create(env, path, 128, &error);
  ASSERT_NE(store, nullptr) << error;
  const PageId a = store->Allocate();
  ASSERT_TRUE(store->Write(a, {10, 20, 30, 40}));
  ASSERT_TRUE(store->WriteMeta({}));
  ASSERT_TRUE(store->Sync());
  store.reset();

  // Flip one payload byte behind the store's back: slot 0 payload starts at
  // 4096 + 16.
  auto file = env->Open(path, false);
  ASSERT_NE(file, nullptr);
  const uint8_t evil = 99;
  ASSERT_TRUE(file->WriteAt(4096 + 16, &evil, 1));
  file.reset();

  store = FilePageStore::Open(env, path, &error);
  ASSERT_NE(store, nullptr) << error;
  std::vector<uint8_t> payload;
  EXPECT_FALSE(store->Read(a, &payload));
  EXPECT_NE(store->last_error().find("checksum"), std::string::npos);
  EXPECT_EQ(store->crc_failures(), 1u);
}

TEST(FilePageStoreTest, HeaderPingPongSurvivesTornHeaderWrite) {
  Env* env = Env::Posix();
  const std::string path = TempPath("store_header.sgp");
  env->Delete(path);
  std::string error;
  auto store = FilePageStore::Create(env, path, 128, &error);
  ASSERT_NE(store, nullptr) << error;
  ASSERT_TRUE(store->WriteMeta({1}));  // seq 1 -> copy B
  ASSERT_TRUE(store->WriteMeta({2}));  // seq 2 -> copy A
  ASSERT_TRUE(store->Sync());
  const uint64_t seq = store->meta_seq();
  store.reset();

  // Corrupt the copy holding the newest meta (seq % 2 == 0 -> copy A at 0).
  auto file = env->Open(path, false);
  ASSERT_NE(file, nullptr);
  const uint64_t offset = (seq % 2 == 0) ? 0 : 2048;
  std::vector<uint8_t> garbage(32, 0xFF);
  ASSERT_TRUE(file->WriteAt(offset + 8, garbage.data(), garbage.size()));
  file.reset();

  // The surviving copy wins: one meta step back, never an open failure.
  store = FilePageStore::Open(env, path, &error);
  ASSERT_NE(store, nullptr) << error;
  EXPECT_EQ(store->meta_seq(), seq - 1);
  EXPECT_EQ(store->meta(), (std::vector<uint8_t>{1}));
}

TEST(MemPageStoreTest, ReserveMatchesFileStoreSemantics) {
  MemPageStore store(128);
  EXPECT_TRUE(store.Reserve(3));
  EXPECT_FALSE(store.Reserve(3));
  ASSERT_TRUE(store.Write(3, {1}));
  const PageId low = store.Allocate();
  EXPECT_LT(low, 3u);
}

// ---------------------------------------------------------------------------
// WAL records and scanner.
// ---------------------------------------------------------------------------

WalRecord ImageRecord(PageId page, std::vector<uint8_t> image) {
  WalRecord record;
  record.type = WalRecordType::kPageImage;
  record.page = page;
  record.image = std::move(image);
  return record;
}

TEST(WalRecordTest, AllTypesRoundTrip) {
  std::vector<WalRecord> records;
  WalRecord cp;
  cp.type = WalRecordType::kCheckpoint;
  cp.checkpoint_seq = 42;
  records.push_back(cp);
  WalRecord alloc;
  alloc.type = WalRecordType::kAlloc;
  alloc.page = 7;
  records.push_back(alloc);
  records.push_back(ImageRecord(9, {1, 2, 3, 4}));
  WalRecord free_rec;
  free_rec.type = WalRecordType::kFree;
  free_rec.page = 3;
  records.push_back(free_rec);
  WalRecord meta;
  meta.type = WalRecordType::kTreeMeta;
  meta.meta.op_seq = 17;
  meta.meta.root = 2;
  meta.meta.height = 1;
  meta.meta.size = 100;
  meta.meta.area_lo = 5;
  meta.meta.area_hi = 90;
  meta.meta.node_count = 3;
  records.push_back(meta);

  for (const WalRecord& record : records) {
    std::vector<uint8_t> payload;
    EncodeWalRecord(record, &payload);
    WalRecord decoded;
    ASSERT_TRUE(DecodeWalRecord(payload, &decoded));
    EXPECT_EQ(decoded.type, record.type);
    EXPECT_EQ(decoded.page, record.page);
    EXPECT_EQ(decoded.checkpoint_seq, record.checkpoint_seq);
    EXPECT_EQ(decoded.image, record.image);
    EXPECT_EQ(decoded.meta, record.meta);
  }
}

TEST(WalRecordTest, MalformedPayloadsRejected) {
  WalRecord decoded;
  EXPECT_FALSE(DecodeWalRecord({}, &decoded));
  EXPECT_FALSE(DecodeWalRecord({0}, &decoded));     // type 0 invalid
  EXPECT_FALSE(DecodeWalRecord({99}, &decoded));    // unknown type
  EXPECT_FALSE(DecodeWalRecord({2}, &decoded));     // kAlloc missing page
  // Trailing junk after a fixed-size record is corruption, not padding.
  std::vector<uint8_t> payload;
  WalRecord alloc;
  alloc.type = WalRecordType::kAlloc;
  alloc.page = 1;
  EncodeWalRecord(alloc, &payload);
  payload.push_back(0);
  EXPECT_FALSE(DecodeWalRecord(payload, &decoded));
}

TEST(WalTest, AppendScanRoundTrip) {
  Env* env = Env::Posix();
  const std::string path = TempPath("wal_roundtrip.sgw");
  env->Delete(path);
  std::string error;
  auto wal = Wal::Create(env, path, &error);
  ASSERT_NE(wal, nullptr) << error;
  WalRecord cp;
  cp.type = WalRecordType::kCheckpoint;
  cp.checkpoint_seq = 1;
  ASSERT_TRUE(wal->Append(cp));
  ASSERT_TRUE(wal->Append(ImageRecord(4, {9, 8, 7})));
  ASSERT_TRUE(wal->Commit());
  EXPECT_EQ(wal->records_appended(), 2u);
  wal.reset();

  std::vector<uint8_t> region;
  ASSERT_TRUE(Wal::ReadRecordRegion(env, path, &region, &error)) << error;
  WalScanner scanner(region.data(), region.size());
  WalRecord record;
  ASSERT_TRUE(scanner.Next(&record));
  EXPECT_EQ(record.type, WalRecordType::kCheckpoint);
  EXPECT_EQ(record.checkpoint_seq, 1u);
  ASSERT_TRUE(scanner.Next(&record));
  EXPECT_EQ(record.type, WalRecordType::kPageImage);
  EXPECT_EQ(record.image, (std::vector<uint8_t>{9, 8, 7}));
  EXPECT_FALSE(scanner.Next(&record));
  EXPECT_FALSE(scanner.torn());
  EXPECT_EQ(scanner.valid_end(), region.size());
  EXPECT_EQ(scanner.records(), 2u);
}

TEST(WalTest, ScannerStopsAtTornTail) {
  Env* env = Env::Posix();
  const std::string path = TempPath("wal_torn.sgw");
  env->Delete(path);
  std::string error;
  auto wal = Wal::Create(env, path, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(ImageRecord(1, {1, 1})));
  const uint64_t clean_size = wal->size_bytes();
  ASSERT_TRUE(wal->Append(ImageRecord(2, std::vector<uint8_t>(64, 2))));
  ASSERT_TRUE(wal->Commit());
  wal.reset();

  // Tear the second record in half.
  auto file = env->Open(path, false);
  ASSERT_NE(file, nullptr);
  ASSERT_TRUE(file->Truncate(clean_size + 10));
  file.reset();

  std::vector<uint8_t> region;
  ASSERT_TRUE(Wal::ReadRecordRegion(env, path, &region, &error)) << error;
  WalScanner scanner(region.data(), region.size());
  WalRecord record;
  ASSERT_TRUE(scanner.Next(&record));
  EXPECT_FALSE(scanner.Next(&record));
  EXPECT_TRUE(scanner.torn());
  EXPECT_EQ(scanner.valid_end() + Wal::RecordRegionStart(), clean_size);
  EXPECT_EQ(scanner.records(), 1u);
}

TEST(WalTest, ScannerStopsAtCorruptPayloadAndInsaneLength) {
  Env* env = Env::Posix();
  const std::string path = TempPath("wal_corrupt.sgw");
  env->Delete(path);
  std::string error;
  auto wal = Wal::Create(env, path, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(ImageRecord(1, {5})));
  ASSERT_TRUE(wal->Append(ImageRecord(2, {6})));
  ASSERT_TRUE(wal->Commit());
  const uint64_t second_frame =
      Wal::RecordRegionStart() + (wal->size_bytes() - Wal::RecordRegionStart()) / 2;
  wal.reset();

  // Flip a payload byte of the second record: the first still scans.
  auto file = env->Open(path, false);
  ASSERT_NE(file, nullptr);
  const uint8_t evil = 0xEE;
  ASSERT_TRUE(file->WriteAt(second_frame + 9, &evil, 1));
  file.reset();

  std::vector<uint8_t> region;
  ASSERT_TRUE(Wal::ReadRecordRegion(env, path, &region, &error)) << error;
  WalScanner scanner(region.data(), region.size());
  WalRecord record;
  EXPECT_TRUE(scanner.Next(&record));
  EXPECT_FALSE(scanner.Next(&record));
  EXPECT_TRUE(scanner.torn());
  EXPECT_EQ(scanner.records(), 1u);

  // A length field past kMaxWalRecordSize is corruption, not an allocation
  // request.
  std::vector<uint8_t> insane;
  AppendU32(kMaxWalRecordSize + 1, &insane);
  AppendU32(0, &insane);
  insane.resize(insane.size() + 32, 0);
  WalScanner scanner2(insane.data(), insane.size());
  EXPECT_FALSE(scanner2.Next(&record));
  EXPECT_TRUE(scanner2.torn());
  EXPECT_EQ(scanner2.valid_end(), 0u);
}

TEST(WalTest, OpenForAppendTruncatesTornTailAndResetFolds) {
  Env* env = Env::Posix();
  const std::string path = TempPath("wal_append.sgw");
  env->Delete(path);
  std::string error;
  auto wal = Wal::Create(env, path, &error);
  ASSERT_NE(wal, nullptr) << error;
  ASSERT_TRUE(wal->Append(ImageRecord(1, {1})));
  const uint64_t clean = wal->size_bytes();
  ASSERT_TRUE(wal->Append(ImageRecord(2, {2})));
  ASSERT_TRUE(wal->Commit());
  wal.reset();

  auto file = env->Open(path, false);
  ASSERT_TRUE(file->Truncate(clean + 3));
  file.reset();

  wal = Wal::OpenForAppend(env, path, clean - Wal::RecordRegionStart(),
                           &error);
  ASSERT_NE(wal, nullptr) << error;
  EXPECT_EQ(wal->size_bytes(), clean);
  ASSERT_TRUE(wal->Append(ImageRecord(3, {3})));
  ASSERT_TRUE(wal->Commit());

  ASSERT_TRUE(wal->Reset(9));
  wal.reset();
  std::vector<uint8_t> region;
  ASSERT_TRUE(Wal::ReadRecordRegion(env, path, &region, &error)) << error;
  WalScanner scanner(region.data(), region.size());
  WalRecord record;
  ASSERT_TRUE(scanner.Next(&record));
  EXPECT_EQ(record.type, WalRecordType::kCheckpoint);
  EXPECT_EQ(record.checkpoint_seq, 9u);
  EXPECT_FALSE(scanner.Next(&record));
  EXPECT_FALSE(scanner.torn());
}

TEST(WalTest, MissingFileIsAnEmptyLog) {
  std::vector<uint8_t> region = {1, 2, 3};
  std::string error;
  ASSERT_TRUE(Wal::ReadRecordRegion(Env::Posix(), TempPath("wal_none.sgw"),
                                    &region, &error))
      << error;
  EXPECT_TRUE(region.empty());
}

// ---------------------------------------------------------------------------
// Metadata.
// ---------------------------------------------------------------------------

TEST(MetaTest, RoundTripAndTruncationRejected) {
  DurableTreeMeta meta;
  meta.num_bits = 128;
  meta.max_entries = 50;
  meta.compress = 1;
  meta.checkpoint_seq = 12;
  meta.tree.op_seq = 99;
  meta.tree.root = 4;
  meta.tree.height = 2;
  meta.tree.size = 1000;
  meta.tree.area_lo = 3;
  meta.tree.area_hi = 80;
  meta.tree.node_count = 17;

  std::vector<uint8_t> blob;
  EncodeDurableTreeMeta(meta, &blob);
  DurableTreeMeta decoded;
  ASSERT_TRUE(DecodeDurableTreeMeta(blob, &decoded));
  EXPECT_EQ(decoded.num_bits, meta.num_bits);
  EXPECT_EQ(decoded.max_entries, meta.max_entries);
  EXPECT_EQ(decoded.compress, meta.compress);
  EXPECT_EQ(decoded.checkpoint_seq, meta.checkpoint_seq);
  EXPECT_EQ(decoded.tree, meta.tree);

  for (size_t cut = 0; cut < blob.size(); ++cut) {
    std::vector<uint8_t> truncated(blob.begin(),
                                   blob.begin() + ptrdiff_t(cut));
    EXPECT_FALSE(DecodeDurableTreeMeta(truncated, &decoded)) << cut;
  }
}

TEST(MetaTest, DefaultAreaWindowIsEmptySentinel) {
  TreeMeta meta;
  EXPECT_GT(meta.area_lo, meta.area_hi);
}

// ---------------------------------------------------------------------------
// Fault injection primitives.
// ---------------------------------------------------------------------------

TEST(FaultStateTest, KillAndTornSemantics) {
  FaultPlan plan;
  plan.kill_at_write = 3;
  plan.torn_prefix_bytes = 4;
  FaultState state(plan);
  bool fail = false;
  EXPECT_EQ(state.OnWrite(10, &fail), 10u);
  EXPECT_FALSE(fail);
  EXPECT_EQ(state.OnWrite(10, &fail), 10u);
  EXPECT_FALSE(fail);
  // The fatal write applies only the torn prefix and reports failure.
  EXPECT_EQ(state.OnWrite(10, &fail), 4u);
  EXPECT_TRUE(fail);
  EXPECT_TRUE(state.dead());
  // Everything after the crash fails outright (and is not counted: the
  // counter reports writes the process issued while alive, the number a
  // clean-run sweep needs).
  EXPECT_EQ(state.OnWrite(10, &fail), 0u);
  EXPECT_TRUE(fail);
  EXPECT_EQ(state.writes_issued(), 3u);
}

TEST(FaultStateTest, ReadBitFlip) {
  FaultPlan plan;
  plan.flip_at_read = 2;
  plan.flip_bit = 9;
  FaultState state(plan);
  std::vector<uint8_t> buf = {0, 0};
  state.OnRead(&buf);
  EXPECT_EQ(buf, (std::vector<uint8_t>{0, 0}));
  state.OnRead(&buf);
  EXPECT_EQ(buf, (std::vector<uint8_t>{0, 2}));  // bit 9 = byte 1, bit 1
  state.OnRead(&buf);
  EXPECT_EQ(buf, (std::vector<uint8_t>{0, 2}));
}

// ---------------------------------------------------------------------------
// Crash-atomic snapshot persistence.
// ---------------------------------------------------------------------------

SgTreeOptions SmallOptions() {
  SgTreeOptions options;
  options.num_bits = 64;
  options.page_size = 512;
  return options;
}

TEST(PersistenceTest, SaveIsAtomicAndLoadReportsTruncation) {
  SgTreeOptions options = SmallOptions();
  SgTree tree(options);
  for (uint64_t tid = 0; tid < 40; ++tid) {
    tree.Insert(MakeTxn(tid, {ItemId(tid % 64), ItemId((tid * 7) % 64)}));
  }
  const std::string path = TempPath("snapshot.sgt");
  std::string error = "stale";
  ASSERT_TRUE(SaveTree(tree, path, &error));
  EXPECT_TRUE(error.empty());
  EXPECT_FALSE(Env::Posix()->FileExists(path + ".tmp"));

  auto loaded = LoadTree(path, options, &error);
  ASSERT_NE(loaded, nullptr) << error;
  EXPECT_EQ(loaded->size(), tree.size());

  // Every truncation point must be rejected with a clear diagnostic.
  auto file = Env::Posix()->Open(path, false);
  ASSERT_NE(file, nullptr);
  const uint64_t full = file->Size();
  file.reset();
  for (uint64_t cut : {full - 1, full / 2, uint64_t{10}, uint64_t{3}}) {
    auto trunc = Env::Posix()->Open(path, false);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(trunc->ReadAt(0, full, &bytes));
    trunc.reset();
    const std::string cut_path = TempPath("snapshot_cut.sgt");
    bytes.resize(cut);
    ASSERT_TRUE(AtomicWriteFile(cut_path, bytes));
    EXPECT_EQ(LoadTree(cut_path, options, &error), nullptr) << cut;
    EXPECT_NE(error.find("truncated"), std::string::npos)
        << "cut " << cut << ": " << error;
  }
}

TEST(PersistenceTest, BadMagicAndShapeMismatchReported) {
  const std::string path = TempPath("not_a_tree.sgt");
  ASSERT_TRUE(AtomicWriteFile(
      path, std::vector<uint8_t>{'n', 'o', 'p', 'e', 0, 0, 0, 0, 0, 0}));
  std::string error;
  SgTreeOptions options = SmallOptions();
  EXPECT_EQ(LoadTree(path, options, &error), nullptr);
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  SgTree tree(options);
  tree.Insert(MakeTxn(1, {1, 2}));
  const std::string good = TempPath("width.sgt");
  ASSERT_TRUE(SaveTree(tree, good, &error));
  SgTreeOptions wrong = options;
  wrong.num_bits = 128;
  EXPECT_EQ(LoadTree(good, wrong, &error), nullptr);
  EXPECT_NE(error.find("width"), std::string::npos) << error;
}

// ---------------------------------------------------------------------------
// DurableTree end to end.
// ---------------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = TempPath(name);
  Env* env = Env::Posix();
  env->Delete(DurableTree::PagePathFor(dir));
  env->Delete(DurableTree::WalPathFor(dir));
  return dir;
}

TEST(DurableTreeTest, InsertEraseSurviveReopen) {
  const std::string dir = FreshDir("dt_basic");
  DurableTree::Options options;
  options.tree = SmallOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  for (uint64_t tid = 0; tid < 30; ++tid) {
    ASSERT_TRUE(durable->Insert(
        MakeTxn(tid, {ItemId(tid % 64), ItemId((tid * 5) % 64)})));
  }
  ASSERT_TRUE(durable->Erase(MakeTxn(4, {4, 20})));
  EXPECT_FALSE(durable->Erase(MakeTxn(999, {1, 2})));  // absent: not logged
  const uint64_t ops = durable->op_seq();
  EXPECT_EQ(ops, 31u);
  durable.reset();

  // Reopen replays the whole log (no checkpoint was taken).
  durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->op_seq(), ops);
  EXPECT_EQ(durable->recovery_report().ops_committed, ops);
  EXPECT_EQ(durable->tree().size(), 29u);
  const std::vector<ItemId> gone_items = {4, 20};
  const Signature gone = Signature::FromItems(gone_items, 64);
  EXPECT_TRUE(ExactSearch(durable->tree(), gone,
                          durable->tree().OwnPoolContext())
                  .empty());
  const std::vector<ItemId> kept_items = {5, 25};
  const Signature kept = Signature::FromItems(kept_items, 64);
  EXPECT_EQ(ExactSearch(durable->tree(), kept,
                        durable->tree().OwnPoolContext()),
            (std::vector<uint64_t>{5}));
}

TEST(DurableTreeTest, CheckpointTruncatesLogAndReopensClean) {
  const std::string dir = FreshDir("dt_ckpt");
  DurableTree::Options options;
  options.tree = SmallOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  std::vector<Transaction> batch;
  for (uint64_t tid = 0; tid < 50; ++tid) {
    batch.push_back(MakeTxn(tid, {ItemId(tid % 64), ItemId((tid * 3) % 64),
                                  ItemId((tid * 11) % 64)}));
  }
  ASSERT_EQ(durable->InsertBatch(batch), batch.size());
  const uint64_t cp_before = durable->checkpoint_seq();
  ASSERT_TRUE(durable->Checkpoint(&error)) << error;
  EXPECT_GT(durable->checkpoint_seq(), cp_before);
  durable.reset();

  durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  // Everything lives in the page file now; replay has nothing to do.
  EXPECT_EQ(durable->recovery_report().records_replayed, 0u);
  EXPECT_EQ(durable->tree().size(), 50u);
  EXPECT_EQ(durable->op_seq(), 50u);

  // Updates after a checkpoint keep working and keep recovering.
  ASSERT_TRUE(durable->Insert(MakeTxn(100, {1, 2, 3})));
  durable.reset();
  durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->tree().size(), 51u);
}

TEST(DurableTreeTest, OpenWithoutOptionsAdoptsStoredShape) {
  const std::string dir = FreshDir("dt_shapeless");
  DurableTree::Options options;
  options.tree = SmallOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  ASSERT_TRUE(durable->Insert(MakeTxn(1, {3, 9})));
  durable.reset();

  DurableTree::Options shapeless;  // num_bits == 0: take it from the meta
  durable = DurableTree::Open(Env::Posix(), dir, shapeless, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->tree().num_bits(), 64u);
  EXPECT_EQ(durable->tree().size(), 1u);

  // A fresh directory without a shape is an error, not a guess.
  const std::string empty_dir = FreshDir("dt_shapeless_fresh");
  EXPECT_EQ(DurableTree::Open(Env::Posix(), empty_dir, shapeless, &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(DurableTreeTest, MismatchedOptionsRejected) {
  const std::string dir = FreshDir("dt_mismatch");
  DurableTree::Options options;
  options.tree = SmallOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  ASSERT_TRUE(durable->Insert(MakeTxn(1, {3, 9})));
  durable.reset();

  DurableTree::Options wrong = options;
  wrong.tree.num_bits = 128;
  EXPECT_EQ(DurableTree::Open(Env::Posix(), dir, wrong, &error), nullptr);
  EXPECT_FALSE(error.empty());
}

TEST(DurableTreeTest, WalMetricsFlow) {
  const std::string dir = FreshDir("dt_metrics");
  obs::MetricsRegistry registry;
  DurableTree::Options options;
  options.tree = SmallOptions();
  options.metrics = &registry;
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  ASSERT_TRUE(durable->Insert(MakeTxn(1, {1, 5})));
  ASSERT_TRUE(durable->Insert(MakeTxn(2, {2, 6})));
  EXPECT_GE(registry.GetCounter("wal.appends")->Value(), 4u);
  EXPECT_GE(registry.GetCounter("wal.fsyncs")->Value(), 2u);
  EXPECT_GT(registry.GetCounter("wal.bytes")->Value(), 0u);
  ASSERT_TRUE(durable->Checkpoint(&error)) << error;
  EXPECT_EQ(registry.GetCounter("checkpoint.count")->Value(), 1u);
}

TEST(DurableTreeTest, AdoptBulkLoadedIsCheckpointedAndRecoverable) {
  const std::string dir = FreshDir("dt_bulk");
  DurableTree::Options options;
  options.tree = SmallOptions();
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;

  auto loaded = std::make_unique<SgTree>(options.tree);
  for (uint64_t tid = 0; tid < 80; ++tid) {
    loaded->Insert(MakeTxn(tid, {ItemId(tid % 64), ItemId((tid * 13) % 64)}));
  }
  ASSERT_TRUE(durable->AdoptBulkLoaded(std::move(loaded), &error)) << error;
  EXPECT_EQ(durable->tree().size(), 80u);
  durable.reset();

  durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->tree().size(), 80u);
  EXPECT_EQ(durable->recovery_report().records_replayed, 0u);
  ASSERT_TRUE(durable->Insert(MakeTxn(500, {7, 11})));
  durable.reset();
  durable = DurableTree::Open(Env::Posix(), dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  EXPECT_EQ(durable->tree().size(), 81u);
}

TEST(RecoveryTest, RejectsGarbagePageFile) {
  const std::string dir = FreshDir("dt_garbage");
  ASSERT_TRUE(Env::Posix()->CreateDir(dir));
  ASSERT_TRUE(AtomicWriteFile(DurableTree::PagePathFor(dir),
                              std::vector<uint8_t>(64, 0xAB)));
  std::string error;
  EXPECT_EQ(RecoverTree(Env::Posix(), DurableTree::PagePathFor(dir),
                        DurableTree::WalPathFor(dir), &error),
            nullptr);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// AdoptNode / page-id-stable rebuild.
// ---------------------------------------------------------------------------

TEST(SgTreeAdoptTest, AdoptNodePreservesIds) {
  SgTreeOptions options = SmallOptions();
  SgTree tree(options, std::make_unique<MemPageStore>(options.page_size));
  Node* high = tree.AdoptNode(7, 0);
  ASSERT_NE(high, nullptr);
  EXPECT_EQ(high->id, 7u);
  EXPECT_EQ(high->level, 0);
  Node* low = tree.AdoptNode(2, 1);
  EXPECT_EQ(low->id, 2u);
  EXPECT_EQ(tree.node_count(), 2u);
  // Fresh allocations steer around adopted ids.
  const PageId fresh = tree.AllocateNode(0);
  EXPECT_NE(fresh, 7u);
  EXPECT_NE(fresh, 2u);
}

}  // namespace
}  // namespace sgtree
