#include "sgtree/bulk_load.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "sgtree/clustering.h"
#include "sgtree/join.h"
#include "sgtree/search.h"
#include "sgtree/tree_checker.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;

SgTreeOptions SmallOptions(uint32_t num_bits = 200) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 10;
  return options;
}

// ---------------------------------------------------------------------------
// Gray-code bulk loading.
// ---------------------------------------------------------------------------

TEST(BulkLoadTest, EmptyDataset) {
  Dataset dataset;
  dataset.num_items = 200;
  auto tree = BulkLoad(dataset, SmallOptions());
  EXPECT_TRUE(tree->empty());
  EXPECT_TRUE(CheckTree(*tree).ok);
}

TEST(BulkLoadTest, SingleTransaction) {
  Dataset dataset;
  dataset.num_items = 200;
  dataset.transactions.push_back({5, {1, 2, 3}});
  auto tree = BulkLoad(dataset, SmallOptions());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(tree->height(), 1u);
  EXPECT_TRUE(CheckTree(*tree).ok);
}

class BulkSizeTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BulkSizeTest, InvariantsHoldAcrossSizes) {
  const Dataset dataset = ClusteredDataset(20, GetParam(), 200, 8, 10, 2);
  auto tree = BulkLoad(dataset, SmallOptions());
  EXPECT_EQ(tree->size(), GetParam());
  const TreeReport report = CheckTree(*tree);
  EXPECT_TRUE(report.ok) << report.message;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BulkSizeTest,
                         ::testing::Values(2u, 9u, 10u, 11u, 99u, 100u, 101u,
                                           500u, 1234u));

TEST(BulkLoadTest, SearchResultsMatchLinearScan) {
  const Dataset dataset = ClusteredDataset(21, 800, 200, 8, 12, 3);
  auto tree = BulkLoad(dataset, SmallOptions());
  LinearScan scan(dataset);
  Rng rng(22);
  for (int q = 0; q < 25; ++q) {
    Signature query = testing::RandomSignature(rng, 200, 0.06);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(DfsNearest(*tree, query).distance,
                     scan.Nearest(query).distance);
    const auto range_tree = RangeSearch(*tree, query, 6.0);
    const auto range_scan = scan.Range(query, 6.0);
    ASSERT_EQ(range_tree.size(), range_scan.size());
  }
}

TEST(BulkLoadTest, PackedTreeIsDenserThanIncremental) {
  const Dataset dataset = ClusteredDataset(23, 1000, 200, 8, 12, 3);
  auto packed = BulkLoad(dataset, SmallOptions());
  SgTree incremental(SmallOptions());
  for (const Transaction& txn : dataset.transactions) {
    incremental.Insert(txn);
  }
  EXPECT_LT(packed->node_count(), incremental.node_count());
  const TreeReport packed_report = CheckTree(*packed);
  ASSERT_TRUE(packed_report.ok);
  EXPECT_GT(packed_report.avg_utilization, 0.8);  // 0.9 fill requested.
}

TEST(BulkLoadTest, GrayOrderClustersLeaves) {
  // Bulk loading by Gray order must produce leaf-covering entries whose
  // area is not wildly larger than the incremental tree's — i.e. real
  // clustering, not arbitrary packing. Allow generous slack; the key check
  // is that it is far below the dictionary size.
  const Dataset dataset = ClusteredDataset(24, 1500, 200, 6, 12, 2);
  auto packed = BulkLoad(dataset, SmallOptions());
  const TreeReport report = CheckTree(*packed);
  ASSERT_TRUE(report.ok);
  ASSERT_GE(report.avg_entry_area.size(), 2u);
  EXPECT_LT(report.avg_entry_area[1], 120.0);
}

TEST(BulkLoadTest, FillFractionRespected) {
  BulkLoadOptions bulk;
  bulk.fill_fraction = 0.5;
  const Dataset dataset = ClusteredDataset(25, 500, 200, 8, 10, 2);
  auto tree = BulkLoadEntries(
      [&] {
        std::vector<Entry> entries;
        for (const Transaction& txn : dataset.transactions) {
          entries.push_back(Entry{Signature::FromItems(txn.items, 200),
                                  txn.tid});
        }
        return entries;
      }(),
      SmallOptions(), bulk);
  const TreeReport report = CheckTree(*tree);
  ASSERT_TRUE(report.ok) << report.message;
  // Half-full leaves: utilization around 0.5, never above ~0.7.
  EXPECT_LT(report.avg_utilization, 0.75);
  EXPECT_GE(report.avg_utilization, 0.4);
}

TEST(BulkLoadTest, BulkTreeAcceptsUpdates) {
  const Dataset dataset = ClusteredDataset(26, 400, 200, 8, 10, 2);
  auto tree = BulkLoad(dataset, SmallOptions());
  Rng rng(27);
  for (uint64_t i = 0; i < 150; ++i) {
    Signature sig = testing::RandomSignature(rng, 200, 0.06);
    if (sig.Empty()) sig.Set(2);
    tree->Insert(sig, 10000 + i);
  }
  ASSERT_TRUE(tree->Erase(dataset.transactions[7]));
  EXPECT_EQ(tree->size(), 400u + 150u - 1u);
  EXPECT_TRUE(CheckTree(*tree).ok);
}

// ---------------------------------------------------------------------------
// Similarity join / closest pairs (reconstructed Section 4.2).
// ---------------------------------------------------------------------------

struct JoinFixture {
  Dataset da;
  Dataset db;
  std::unique_ptr<SgTree> ta;
  std::unique_ptr<SgTree> tb;
};

JoinFixture MakeJoinFixture(uint64_t seed, uint32_t size_a, uint32_t size_b) {
  JoinFixture f;
  f.da = ClusteredDataset(seed, size_a, 150, 6, 10, 2);
  f.db = ClusteredDataset(seed + 1, size_b, 150, 6, 10, 2);
  SgTreeOptions options = SmallOptions(150);
  f.ta = BulkLoad(f.da, options);
  f.tb = BulkLoad(f.db, options);
  return f;
}

std::vector<JoinPair> BruteForceJoin(const Dataset& a, const Dataset& b,
                                     double epsilon) {
  std::vector<JoinPair> result;
  for (const auto& ta : a.transactions) {
    const Signature sa = Signature::FromItems(ta.items, a.num_items);
    for (const auto& tb : b.transactions) {
      const Signature sb = Signature::FromItems(tb.items, b.num_items);
      const double d = Distance(sa, sb, Metric::kHamming);
      if (d <= epsilon) result.push_back({ta.tid, tb.tid, d});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const JoinPair& x, const JoinPair& y) {
              if (x.distance != y.distance) return x.distance < y.distance;
              if (x.tid_a != y.tid_a) return x.tid_a < y.tid_a;
              return x.tid_b < y.tid_b;
            });
  return result;
}

TEST(JoinTest, PairBoundIsSound) {
  Rng rng(30);
  for (int trial = 0; trial < 100; ++trial) {
    Signature cover_a(100);
    Signature cover_b(100);
    std::vector<Signature> as;
    std::vector<Signature> bs;
    for (int i = 0; i < 4; ++i) {
      Signature t = testing::RandomSignature(rng, 100, 0.08);
      if (t.Empty()) t.Set(static_cast<uint32_t>(rng.UniformInt(100)));
      cover_a.UnionWith(t);
      as.push_back(std::move(t));
      Signature u = testing::RandomSignature(rng, 100, 0.08);
      if (u.Empty()) u.Set(static_cast<uint32_t>(rng.UniformInt(100)));
      cover_b.UnionWith(u);
      bs.push_back(std::move(u));
    }
    const double bound = PairMinDist(cover_a, false, cover_b, false,
                                     Metric::kHamming, 0);
    for (const Signature& x : as) {
      for (const Signature& y : bs) {
        EXPECT_LE(bound, Distance(x, y, Metric::kHamming));
      }
    }
  }
}

TEST(JoinTest, SimilarityJoinMatchesBruteForce) {
  const JoinFixture f = MakeJoinFixture(31, 150, 120);
  for (double epsilon : {0.0, 2.0, 5.0, 10.0}) {
    const auto expected = BruteForceJoin(f.da, f.db, epsilon);
    const auto actual = SimilarityJoin(*f.ta, *f.tb, epsilon);
    ASSERT_EQ(actual.size(), expected.size()) << "epsilon=" << epsilon;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(actual[i], expected[i]);
    }
  }
}

TEST(JoinTest, SelfJoinContainsDiagonal) {
  const JoinFixture f = MakeJoinFixture(32, 100, 100);
  const auto pairs = SimilarityJoin(*f.ta, *f.ta, 0.0);
  // Every transaction pairs with itself at distance 0.
  std::set<uint64_t> diagonal;
  for (const auto& pair : pairs) {
    if (pair.tid_a == pair.tid_b) diagonal.insert(pair.tid_a);
  }
  EXPECT_EQ(diagonal.size(), 100u);
}

TEST(JoinTest, ClosestPairsMatchBruteForce) {
  const JoinFixture f = MakeJoinFixture(33, 120, 90);
  const auto all = BruteForceJoin(f.da, f.db, 1e9);
  for (uint32_t k : {1u, 5u, 20u}) {
    const auto actual = ClosestPairs(*f.ta, *f.tb, k);
    ASSERT_EQ(actual.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_DOUBLE_EQ(actual[i].distance, all[i].distance) << "k=" << k;
    }
  }
}

TEST(JoinTest, JoinPrunesDisjointData) {
  // Two datasets over disjoint item ranges: the join must finish without
  // comparing most transaction pairs.
  Dataset da = ClusteredDataset(34, 200, 150, 4, 8, 1);
  Dataset db = ClusteredDataset(35, 200, 150, 4, 8, 1);
  for (auto& txn : db.transactions) {
    for (auto& item : txn.items) item = (item % 60) + 90;  // Shift range.
    std::sort(txn.items.begin(), txn.items.end());
    txn.items.erase(std::unique(txn.items.begin(), txn.items.end()),
                    txn.items.end());
  }
  // Clamp da's items below 90 so the ranges are truly disjoint.
  for (auto& txn : da.transactions) {
    for (auto& item : txn.items) item = item % 90;
    std::sort(txn.items.begin(), txn.items.end());
    txn.items.erase(std::unique(txn.items.begin(), txn.items.end()),
                    txn.items.end());
  }
  auto ta = BulkLoad(da, SmallOptions(150));
  auto tb = BulkLoad(db, SmallOptions(150));
  QueryStats stats;
  const auto pairs = SimilarityJoin(*ta, *tb, 1.0, &stats);
  EXPECT_TRUE(pairs.empty());
  EXPECT_LT(stats.transactions_compared, 200u * 200u / 4);
}

TEST(JoinTest, EmptyTreeJoins) {
  const JoinFixture f = MakeJoinFixture(36, 50, 50);
  SgTree empty(SmallOptions(150));
  EXPECT_TRUE(SimilarityJoin(*f.ta, empty, 5.0).empty());
  EXPECT_TRUE(ClosestPairs(empty, *f.tb, 3).empty());
}

// ---------------------------------------------------------------------------
// Leaf-guided clustering (Section 6 future work).
// ---------------------------------------------------------------------------

TEST(ClusteringTest, PartitionsAllTransactions) {
  const Dataset dataset = ClusteredDataset(40, 600, 200, 5, 12, 2);
  SgTree tree(SmallOptions());
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const auto clusters = ClusterByLeaves(tree, 5);
  ASSERT_EQ(clusters.size(), 5u);
  std::set<uint64_t> seen;
  for (const auto& cluster : clusters) {
    EXPECT_FALSE(cluster.tids.empty());
    for (uint64_t tid : cluster.tids) {
      EXPECT_TRUE(seen.insert(tid).second) << "tid in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 600u);
}

TEST(ClusteringTest, RecoversPlantedClusters) {
  // Plant 3 well-separated clusters; leaf-guided clustering with k=3 must
  // group transactions from the same plant together for the vast majority.
  const uint32_t per_cluster = 150;
  Dataset dataset;
  dataset.num_items = 300;
  Rng rng(41);
  for (uint32_t c = 0; c < 3; ++c) {
    for (uint32_t i = 0; i < per_cluster; ++i) {
      Transaction txn;
      txn.tid = c * per_cluster + i;
      // Items inside a 40-bit band per cluster.
      txn.items = testing::RandomItems(rng, 40, 8);
      for (auto& item : txn.items) item += c * 100;
      dataset.transactions.push_back(std::move(txn));
    }
  }
  SgTree tree(SmallOptions(300));
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const auto clusters = ClusterByLeaves(tree, 3);
  ASSERT_EQ(clusters.size(), 3u);
  int pure = 0;
  int total = 0;
  for (const auto& cluster : clusters) {
    std::vector<int> counts(3, 0);
    for (uint64_t tid : cluster.tids) ++counts[tid / per_cluster];
    pure += *std::max_element(counts.begin(), counts.end());
    total += static_cast<int>(cluster.tids.size());
  }
  EXPECT_EQ(total, 450);
  EXPECT_GT(pure, 440);  // >97% purity on trivially separable data.
}

TEST(ClusteringTest, KLargerThanLeafCount) {
  Dataset dataset = ClusteredDataset(42, 20, 100, 2, 8, 1);
  SgTree tree(SmallOptions(100));
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const auto clusters = ClusterByLeaves(tree, 1000);
  EXPECT_LE(clusters.size(), 1000u);
  EXPECT_GE(clusters.size(), 1u);
}

}  // namespace
}  // namespace sgtree
