#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/buffer_pool.h"
#include "storage/codec.h"
#include "storage/node_format.h"
#include "storage/page_store.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::RandomSignature;

// ---------------------------------------------------------------------------
// Signature codec (Section 3.2 compression).
// ---------------------------------------------------------------------------

TEST(CodecTest, SparseEncodingChosenForSparseSignature) {
  // The paper's example: a 256-bit signature with ten 1s costs ~10 position
  // slots instead of 32 bitmap bytes.
  Signature sig(256);
  for (uint32_t i = 0; i < 10; ++i) sig.Set(i * 20);
  std::vector<uint8_t> out;
  EncodeSignature(sig, &out);
  EXPECT_EQ(out[0], kSparseTag);
  EXPECT_LT(out.size(), DenseEncodedSize(256));
  EXPECT_EQ(out.size(), EncodedSize(sig));
}

TEST(CodecTest, DenseEncodingChosenForDenseSignature) {
  Signature sig(256);
  for (uint32_t i = 0; i < 200; ++i) sig.Set(i);
  std::vector<uint8_t> out;
  EncodeSignature(sig, &out);
  EXPECT_EQ(out[0], kDenseTag);
  EXPECT_EQ(out.size(), DenseEncodedSize(256));
}

TEST(CodecTest, RoundTripSparse) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const Signature sig = RandomSignature(rng, 1000, 0.01);
    std::vector<uint8_t> out;
    EncodeSignature(sig, &out);
    size_t offset = 0;
    Signature decoded;
    ASSERT_TRUE(DecodeSignature(out, &offset, 1000, &decoded));
    EXPECT_EQ(decoded, sig);
    EXPECT_EQ(offset, out.size());
  }
}

TEST(CodecTest, RoundTripDense) {
  Rng rng(2);
  for (int trial = 0; trial < 50; ++trial) {
    const Signature sig = RandomSignature(rng, 525, 0.6);
    std::vector<uint8_t> out;
    EncodeSignature(sig, &out);
    size_t offset = 0;
    Signature decoded;
    ASSERT_TRUE(DecodeSignature(out, &offset, 525, &decoded));
    EXPECT_EQ(decoded, sig);
  }
}

TEST(CodecTest, RoundTripConcatenatedStream) {
  Rng rng(3);
  std::vector<Signature> sigs;
  std::vector<uint8_t> out;
  for (int i = 0; i < 20; ++i) {
    sigs.push_back(RandomSignature(rng, 300, i % 2 == 0 ? 0.02 : 0.5));
    EncodeSignature(sigs.back(), &out);
  }
  size_t offset = 0;
  for (const Signature& expected : sigs) {
    Signature decoded;
    ASSERT_TRUE(DecodeSignature(out, &offset, 300, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(offset, out.size());
}

TEST(CodecTest, EmptyAndFullSignatures) {
  for (uint32_t bits : {1u, 64u, 65u, 525u}) {
    Signature empty(bits);
    Signature full(bits);
    for (uint32_t i = 0; i < bits; ++i) full.Set(i);
    for (const Signature& sig : {empty, full}) {
      std::vector<uint8_t> out;
      EncodeSignature(sig, &out);
      size_t offset = 0;
      Signature decoded;
      ASSERT_TRUE(DecodeSignature(out, &offset, bits, &decoded));
      EXPECT_EQ(decoded, sig);
    }
  }
}

TEST(CodecTest, EncodedSizePredictsActual) {
  Rng rng(4);
  for (double density : {0.0, 0.005, 0.02, 0.1, 0.5, 1.0}) {
    const Signature sig = RandomSignature(rng, 800, density);
    std::vector<uint8_t> out;
    EncodeSignature(sig, &out);
    EXPECT_EQ(out.size(), EncodedSize(sig)) << "density=" << density;
  }
}

TEST(CodecTest, RejectsTruncatedInput) {
  Signature sig(128);
  sig.Set(5);
  std::vector<uint8_t> out;
  EncodeSignature(sig, &out);
  out.resize(out.size() - 1);
  size_t offset = 0;
  Signature decoded;
  EXPECT_FALSE(DecodeSignature(out, &offset, 128, &decoded));
}

TEST(CodecTest, RejectsOutOfRangePosition) {
  // Sparse encoding claiming bit 200 in a 128-bit signature.
  std::vector<uint8_t> bad = {kSparseTag, 1, 0, 200, 0};
  size_t offset = 0;
  Signature decoded;
  EXPECT_FALSE(DecodeSignature(bad, &offset, 128, &decoded));
}

TEST(CodecTest, RejectsUnknownTag) {
  std::vector<uint8_t> bad = {42, 0, 0};
  size_t offset = 0;
  Signature decoded;
  EXPECT_FALSE(DecodeSignature(bad, &offset, 128, &decoded));
}

TEST(CodecTest, RejectsDenseWithTrailingGarbageBits) {
  // Dense payload for 4 bits with a bit set beyond num_bits.
  std::vector<uint8_t> bad = {kDenseTag, 0xF0};
  size_t offset = 0;
  Signature decoded;
  EXPECT_FALSE(DecodeSignature(bad, &offset, 4, &decoded));
}

// ---------------------------------------------------------------------------
// Node format.
// ---------------------------------------------------------------------------

NodeRecord MakeRecord(Rng& rng, uint16_t level, int entries, uint32_t bits,
                      double density) {
  NodeRecord record;
  record.level = level;
  for (int i = 0; i < entries; ++i) {
    record.entries.emplace_back(rng.NextU64(),
                                RandomSignature(rng, bits, density));
  }
  return record;
}

class NodeFormatTest : public ::testing::TestWithParam<bool> {};

TEST_P(NodeFormatTest, RoundTrip) {
  Rng rng(5);
  const bool compress = GetParam();
  for (uint16_t level : {0, 1, 3}) {
    const NodeRecord record = MakeRecord(rng, level, 17, 500, 0.03);
    std::vector<uint8_t> out;
    EncodeNode(record, compress, &out);
    EXPECT_EQ(out.size(), EncodedNodeSize(record, compress));
    NodeRecord decoded;
    ASSERT_TRUE(DecodeNode(out, 500, &decoded));
    EXPECT_EQ(decoded.level, record.level);
    ASSERT_EQ(decoded.entries.size(), record.entries.size());
    for (size_t i = 0; i < record.entries.size(); ++i) {
      EXPECT_EQ(decoded.entries[i].first, record.entries[i].first);
      EXPECT_EQ(decoded.entries[i].second, record.entries[i].second);
    }
  }
}

TEST_P(NodeFormatTest, EmptyNodeRoundTrip) {
  NodeRecord record;
  record.level = 2;
  std::vector<uint8_t> out;
  EncodeNode(record, GetParam(), &out);
  NodeRecord decoded;
  ASSERT_TRUE(DecodeNode(out, 100, &decoded));
  EXPECT_EQ(decoded.level, 2);
  EXPECT_TRUE(decoded.entries.empty());
}

INSTANTIATE_TEST_SUITE_P(CompressOnOff, NodeFormatTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compressed" : "dense";
                         });

TEST(NodeFormatTest, CompressionShrinksSparseNodes) {
  Rng rng(6);
  const NodeRecord record = MakeRecord(rng, 0, 20, 1000, 0.01);
  EXPECT_LT(EncodedNodeSize(record, true), EncodedNodeSize(record, false));
}

TEST(NodeFormatTest, RejectsTruncatedNode) {
  Rng rng(7);
  const NodeRecord record = MakeRecord(rng, 0, 5, 200, 0.1);
  std::vector<uint8_t> out;
  EncodeNode(record, true, &out);
  out.resize(out.size() / 2);
  NodeRecord decoded;
  EXPECT_FALSE(DecodeNode(out, 200, &decoded));
}

TEST(NodeFormatTest, UncompressedEntrySizeMatchesEncoding) {
  Rng rng(8);
  NodeRecord record = MakeRecord(rng, 0, 1, 333, 0.9);
  EXPECT_EQ(EncodedNodeSize(record, false),
            4 + UncompressedEntrySize(333));
}

// ---------------------------------------------------------------------------
// Page store.
// ---------------------------------------------------------------------------

TEST(PageStoreTest, AllocateWriteRead) {
  MemPageStore store(64);
  const PageId id = store.Allocate();
  ASSERT_TRUE(store.Write(id, {1, 2, 3}));
  std::vector<uint8_t> payload;
  ASSERT_TRUE(store.Read(id, &payload));
  EXPECT_EQ(payload, (std::vector<uint8_t>{1, 2, 3}));
}

TEST(PageStoreTest, RejectsOversizedPayload) {
  MemPageStore store(4);
  const PageId id = store.Allocate();
  EXPECT_FALSE(store.Write(id, {1, 2, 3, 4, 5}));
  EXPECT_TRUE(store.Write(id, {1, 2, 3, 4}));
}

TEST(PageStoreTest, FreeListReusesIds) {
  MemPageStore store;
  const PageId a = store.Allocate();
  const PageId b = store.Allocate();
  EXPECT_NE(a, b);
  store.Free(a);
  EXPECT_EQ(store.LivePages(), 1u);
  const PageId c = store.Allocate();
  EXPECT_EQ(c, a);  // Reused.
  EXPECT_EQ(store.TotalPages(), 2u);
}

TEST(PageStoreTest, ReadOfFreedPageFails) {
  MemPageStore store;
  const PageId id = store.Allocate();
  ASSERT_TRUE(store.Write(id, {9}));
  store.Free(id);
  std::vector<uint8_t> payload;
  EXPECT_FALSE(store.Read(id, &payload));
  EXPECT_FALSE(store.Write(id, {1}));
}

TEST(PageStoreTest, InvalidIdRejected) {
  MemPageStore store;
  std::vector<uint8_t> payload;
  EXPECT_FALSE(store.Read(123, &payload));
}

// ---------------------------------------------------------------------------
// Buffer pool.
// ---------------------------------------------------------------------------

TEST(BufferPoolTest, FirstAccessIsMissSecondIsHit) {
  BufferPool pool(4);
  EXPECT_FALSE(pool.Touch(1));
  EXPECT_TRUE(pool.Touch(1));
  EXPECT_EQ(pool.stats().random_ios, 1u);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);
  EXPECT_EQ(pool.stats().page_accesses, 2u);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(2);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(3);              // Evicts 1.
  EXPECT_TRUE(pool.Touch(3));
  EXPECT_TRUE(pool.Touch(2));
  EXPECT_FALSE(pool.Touch(1));  // Was evicted.
}

TEST(BufferPoolTest, TouchRefreshesRecency) {
  BufferPool pool(2);
  pool.Touch(1);
  pool.Touch(2);
  pool.Touch(1);  // 1 becomes MRU; 2 is now LRU.
  pool.Touch(3);  // Evicts 2.
  EXPECT_TRUE(pool.Touch(1));
  EXPECT_FALSE(pool.Touch(2));
}

TEST(BufferPoolTest, ZeroCapacityChargesEveryAccess) {
  BufferPool pool(0);
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(pool.Touch(7));
  EXPECT_EQ(pool.stats().random_ios, 5u);
  EXPECT_EQ(pool.ResidentPages(), 0u);
}

TEST(BufferPoolTest, EvictDropsPage) {
  BufferPool pool(4);
  pool.Touch(1);
  pool.Evict(1);
  EXPECT_FALSE(pool.Touch(1));
}

TEST(BufferPoolTest, ClearKeepsStats) {
  BufferPool pool(4);
  pool.Touch(1);
  pool.Touch(1);
  pool.Clear();
  EXPECT_EQ(pool.ResidentPages(), 0u);
  EXPECT_EQ(pool.stats().buffer_hits, 1u);
  EXPECT_FALSE(pool.Touch(1));
}

TEST(BufferPoolTest, ResizeShrinkEvicts) {
  BufferPool pool(4);
  for (PageId id = 1; id <= 4; ++id) pool.Touch(id);
  pool.Resize(2);
  EXPECT_EQ(pool.ResidentPages(), 2u);
  EXPECT_TRUE(pool.Touch(4));   // Most recent survive.
  EXPECT_TRUE(pool.Touch(3));
  EXPECT_FALSE(pool.Touch(1));  // Oldest evicted.
}

TEST(BufferPoolTest, HitRatio) {
  BufferPool pool(8);
  pool.Touch(1);
  pool.Touch(1);
  pool.Touch(1);
  pool.Touch(2);
  EXPECT_DOUBLE_EQ(pool.stats().HitRatio(), 0.5);
}

TEST(BufferPoolTest, HitRatioOfUntouchedPoolIsNan) {
  // An untouched pool has no hit rate; 0.0 would read as "everything
  // missed". The exporters render the NaN as "n/a".
  BufferPool pool(8);
  EXPECT_TRUE(std::isnan(pool.stats().HitRatio()));
  pool.Touch(1);
  EXPECT_DOUBLE_EQ(pool.stats().HitRatio(), 0.0);  // One genuine miss.
}

TEST(BufferPoolTest, WriteMakesResident) {
  BufferPool pool(4);
  pool.TouchWrite(5);
  EXPECT_TRUE(pool.Touch(5));
  EXPECT_EQ(pool.stats().page_writes, 1u);
}

}  // namespace
}  // namespace sgtree
