// Serving front end tests (DESIGN.md §10): protocol codec bijection, the
// result cache's epoch-keyed invalidation, lock-free admission, the
// adaptive batcher's flush triggers, and — the load-bearing part — the
// end-to-end differential proof that answers served over TCP are
// byte-identical to direct QueryRouter execution for all six query types,
// cached or uncached, replicated or not, hedged or not. The concurrent
// suites double as ThreadSanitizer targets (tsan CI job).

#include "server/server.h"

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "net/socket.h"
#include "server/admission.h"
#include "server/batcher.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "tests/test_util.h"

namespace sgtree {
namespace serve {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

constexpr uint32_t kBits = 120;

SgTreeOptions TreeOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.max_entries = 8;
  return options;
}

ShardedIndexOptions ShardOptions(uint32_t num_shards) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.tree = TreeOptions();
  return options;
}

std::vector<QueryRequest> MixedBatch(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<QueryRequest> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRequest request;
    request.type = static_cast<QueryType>(i % 6);
    request.query = RandomSignature(rng, kBits, 0.07);
    request.k = 1 + static_cast<uint32_t>(i % 7);
    request.epsilon = 6.0 + static_cast<double>(i % 5);
    batch.push_back(std::move(request));
  }
  return batch;
}

// ---------------------------------------------------------------------------
// Protocol codec.

TEST(ServeProtocol, RequestRoundTripsForAllTypes) {
  for (const QueryRequest& request : MixedBatch(11, 12)) {
    const std::vector<uint8_t> bytes = EncodeRequest(request);
    QueryRequest decoded;
    std::string error;
    ASSERT_TRUE(DecodeRequest(bytes.data(), bytes.size(), &decoded, &error))
        << error;
    EXPECT_EQ(decoded.type, request.type);
    EXPECT_TRUE(decoded.query == request.query);
    // Only the parameters the type consumes survive the wire.
    if (request.type == QueryType::kKnn ||
        request.type == QueryType::kBestFirstKnn) {
      EXPECT_EQ(decoded.k, request.k);
    }
    if (request.type == QueryType::kRange) {
      EXPECT_EQ(decoded.epsilon, request.epsilon);
    }
    // Bijection: re-encoding reproduces the input bytes (the cache-key
    // property).
    EXPECT_EQ(EncodeRequest(decoded), bytes);
  }
}

TEST(ServeProtocol, RequestDecodeRejectsMalformedBytes) {
  QueryRequest request;
  request.type = QueryType::kKnn;
  request.query = Signature(kBits);
  request.query.Set(3);
  request.k = 5;
  std::vector<uint8_t> bytes = EncodeRequest(request);
  QueryRequest decoded;
  std::string error;

  // Trailing byte.
  std::vector<uint8_t> trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(
      DecodeRequest(trailing.data(), trailing.size(), &decoded, &error));
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;

  // Truncation at every prefix length must fail, never crash.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(DecodeRequest(bytes.data(), len, &decoded, &error))
        << "accepted a " << len << "-byte prefix";
  }

  // Unknown type byte.
  std::vector<uint8_t> bad_type = bytes;
  bad_type[0] = 99;
  EXPECT_FALSE(
      DecodeRequest(bad_type.data(), bad_type.size(), &decoded, &error));

  // Bits set beyond the declared width (a non-canonical encoding would
  // split cache keys).
  std::vector<uint8_t> padded = bytes;
  padded[5 + (kBits / 8)] |= 0x80;  // kBits=120: byte 15 of the signature.
  EXPECT_FALSE(DecodeRequest(padded.data(), padded.size(), &decoded, &error));
  EXPECT_NE(error.find("beyond"), std::string::npos) << error;

  // Zero-width and oversized signatures.
  std::vector<uint8_t> zero = {0, 0, 0, 0, 0};
  EXPECT_FALSE(DecodeRequest(zero.data(), zero.size(), &decoded, &error));
}

TEST(ServeProtocol, AnswerRoundTrips) {
  QueryResult result;
  result.neighbors.push_back(Neighbor{42, 1.5});
  result.neighbors.push_back(Neighbor{7, 2.25});
  result.ids = {1, 2, 30000000000ull};
  const std::vector<uint8_t> bytes = EncodeAnswer(result);
  QueryResult decoded;
  std::string error;
  ASSERT_TRUE(DecodeAnswer(bytes.data(), bytes.size(), &decoded, &error))
      << error;
  EXPECT_EQ(decoded.neighbors, result.neighbors);
  EXPECT_EQ(decoded.ids, result.ids);
  EXPECT_TRUE(decoded.ok());

  QueryResult failed;
  failed.error = "k must be > 0, got 0";
  const std::vector<uint8_t> err_bytes = EncodeAnswer(failed);
  ASSERT_TRUE(
      DecodeAnswer(err_bytes.data(), err_bytes.size(), &decoded, &error));
  EXPECT_EQ(decoded.error, failed.error);
}

// ---------------------------------------------------------------------------
// Result cache.

TEST(ResultCacheTest, HitMissEvictClear) {
  ResultCache cache(32);
  const std::vector<uint8_t> payload = {1, 2, 3};
  std::vector<uint8_t> got;
  EXPECT_FALSE(cache.Get("a", &got));
  cache.Put("a", payload);
  ASSERT_TRUE(cache.Get("a", &got));
  EXPECT_EQ(got, payload);
  EXPECT_EQ(cache.size(), 1u);
  cache.Clear();
  EXPECT_FALSE(cache.Get("a", &got));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedPerStripe) {
  // Capacity 16 over 16 stripes = 1 entry per stripe: a second key landing
  // on an occupied stripe must evict its tenant.
  ResultCache cache(16);
  for (int i = 0; i < 64; ++i) {
    cache.Put("key" + std::to_string(i), {static_cast<uint8_t>(i)});
  }
  EXPECT_LE(cache.size(), 16u);
}

TEST(ResultCacheTest, EpochPrefixSeparatesKeys) {
  const std::vector<uint8_t> request = {9, 9, 9};
  EXPECT_NE(ResultCache::Key(1, request), ResultCache::Key(2, request));
  ResultCache cache(32);
  cache.Put(ResultCache::Key(1, request), {1});
  std::vector<uint8_t> got;
  EXPECT_FALSE(cache.Get(ResultCache::Key(2, request), &got));
  EXPECT_TRUE(cache.Get(ResultCache::Key(1, request), &got));
}

TEST(ResultCacheTest, ZeroCapacityDisables) {
  ResultCache cache(0);
  cache.Put("a", {1});
  std::vector<uint8_t> got;
  EXPECT_FALSE(cache.Get("a", &got));
  EXPECT_EQ(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// Admission.

TEST(AdmissionTest, ShedsPastBudgetAndRecovers) {
  AdmissionController admission(2);
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_TRUE(admission.TryAdmit());
  EXPECT_FALSE(admission.TryAdmit());
  EXPECT_EQ(admission.inflight(), 2u);
  admission.Release();
  EXPECT_TRUE(admission.TryAdmit());
  admission.Release();
  admission.Release();
  EXPECT_EQ(admission.inflight(), 0u);
}

TEST(AdmissionTest, ConcurrentAdmitsNeverExceedBudget) {
  AdmissionController admission(8);
  std::atomic<uint32_t> peak{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&admission, &peak] {
      for (int i = 0; i < 2000; ++i) {
        AdmissionSlot slot(&admission);
        if (slot.admitted()) {
          const uint32_t now = admission.inflight();
          uint32_t prev = peak.load(std::memory_order_relaxed);
          while (now > prev && !peak.compare_exchange_weak(
                                   prev, now, std::memory_order_relaxed)) {
          }
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(peak.load(), 8u);
  EXPECT_EQ(admission.inflight(), 0u);
}

// ---------------------------------------------------------------------------
// Batcher.

TEST(BatcherTest, FlushesOnSize) {
  BatcherOptions options;
  options.max_batch = 4;
  options.min_linger_us = 500'000;  // Long linger: only size can flush fast.
  options.max_linger_us = 500'000;
  options.num_dispatchers = 1;
  std::atomic<size_t> max_batch_seen{0};
  Batcher batcher(options, [&max_batch_seen](
                               const std::vector<QueryRequest>& requests,
                               Batcher::Completion done) {
    size_t prev = max_batch_seen.load();
    while (requests.size() > prev &&
           !max_batch_seen.compare_exchange_weak(prev, requests.size())) {
    }
    done(std::vector<QueryResult>(requests.size()));
  });
  batcher.Start();
  std::vector<std::shared_ptr<PendingQuery>> pendings;
  QueryRequest request;
  request.query = Signature(kBits);
  for (int i = 0; i < 8; ++i) pendings.push_back(batcher.Submit(request));
  for (const auto& pending : pendings) {
    ASSERT_NE(pending, nullptr);
    pending->Wait();
  }
  batcher.Stop();
  // 8 requests against a 500 ms linger: without the size trigger the test
  // would take over a second; the size-4 flush makes it instant.
  EXPECT_GE(max_batch_seen.load(), 2u);
  EXPECT_LE(max_batch_seen.load(), 4u);
}

TEST(BatcherTest, FlushesOnDeadline) {
  BatcherOptions options;
  options.max_batch = 1000;  // Size can never trigger.
  options.min_linger_us = 5'000;
  options.max_linger_us = 5'000;
  options.num_dispatchers = 1;
  Batcher batcher(options,
                  [](const std::vector<QueryRequest>& requests,
                     Batcher::Completion done) {
                    done(std::vector<QueryResult>(requests.size()));
                  });
  batcher.Start();
  QueryRequest request;
  request.query = Signature(kBits);
  const auto start = std::chrono::steady_clock::now();
  auto pending = batcher.Submit(request);
  ASSERT_NE(pending, nullptr);
  pending->Wait();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  batcher.Stop();
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);
}

TEST(BatcherTest, StopFailsStragglersInsteadOfHanging) {
  BatcherOptions options;
  options.num_dispatchers = 1;
  Batcher batcher(options,
                  [](const std::vector<QueryRequest>& requests,
                     Batcher::Completion done) {
                    done(std::vector<QueryResult>(requests.size()));
                  });
  batcher.Start();
  batcher.Stop();
  QueryRequest request;
  request.query = Signature(kBits);
  EXPECT_EQ(batcher.Submit(request), nullptr);
}

TEST(BatcherTest, LingerAdaptsTowardBudget) {
  BatcherOptions options;
  options.max_batch = 1;
  options.min_linger_us = 0;
  options.max_linger_us = 10'000;
  options.latency_budget_us = 1'000'000;  // Huge budget: linger opens fully.
  options.num_dispatchers = 1;
  obs::MetricsRegistry registry;
  Batcher batcher(options,
                  [](const std::vector<QueryRequest>& requests,
                     Batcher::Completion done) {
                    done(std::vector<QueryResult>(requests.size()));
                  });
  batcher.BindMetrics(nullptr, nullptr,
                      registry.GetHistogram("test.exec_us"));
  batcher.Start();
  QueryRequest request;
  request.query = Signature(kBits);
  batcher.Submit(request)->Wait();
  batcher.Stop();
  // Exec is microseconds against a 1 s budget: the window must sit at the
  // configured maximum.
  EXPECT_EQ(batcher.linger_us(), 10'000);
}

// ---------------------------------------------------------------------------
// End-to-end server fixtures.

struct DirectOracle {
  explicit DirectOracle(const ShardedIndex& index)
      : executor(MakeExecOptions()), router(index, &executor) {}

  static QueryExecutorOptions MakeExecOptions() {
    QueryExecutorOptions options;
    options.num_threads = 2;
    return options;
  }

  std::vector<QueryResult> Run(const std::vector<QueryRequest>& batch) {
    return router.Run(batch);
  }

  QueryExecutor executor;
  QueryRouter router;
};

// The differential proof: every served answer must be byte-identical (in
// the wire encoding, which covers neighbors / ids / error but not timing)
// to direct QueryRouter execution on the same index.
void ExpectServedMatchesDirect(Client* client, DirectOracle* oracle,
                               const std::vector<QueryRequest>& batch,
                               const std::string& label) {
  const std::vector<QueryResult> expected = oracle->Run(batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryResult served;
    ASSERT_EQ(client->Query(batch[i], &served), Client::Status::kOk)
        << label << " query " << i << ": " << client->error();
    EXPECT_EQ(EncodeAnswer(served), EncodeAnswer(expected[i]))
        << label << " query " << i << " diverged (type "
        << static_cast<int>(batch[i].type) << ")";
  }
}

TEST(ServeEndToEnd, DynamicIndexServesAllSixTypesByteIdentical) {
  const Dataset dataset = ClusteredDataset(71, 600, kBits, 8, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(2));
  ASSERT_NE(index, nullptr);
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000))
      << client.error();
  DirectOracle oracle(*index);
  const std::vector<QueryRequest> batch = MixedBatch(72, 36);
  ExpectServedMatchesDirect(&client, &oracle, batch, "uncached");
  // Second pass: every request is now a cache hit and must return the very
  // same bytes.
  ExpectServedMatchesDirect(&client, &oracle, batch, "cached");
  EXPECT_GT(server->metrics()->GetCounter("serve.cache.hits")->Value(), 0u);
  server->Stop();
}

TEST(ServeEndToEnd, ValidationErrorsCarryOffendingValue) {
  const Dataset dataset = ClusteredDataset(73, 200, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));

  QueryRequest bad_k;
  bad_k.type = QueryType::kKnn;
  bad_k.query = Signature(kBits);
  bad_k.query.Set(1);
  bad_k.k = 0;
  QueryResult result;
  ASSERT_EQ(client.Query(bad_k, &result), Client::Status::kOk);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("got 0"), std::string::npos) << result.error;

  QueryRequest bad_eps;
  bad_eps.type = QueryType::kRange;
  bad_eps.query = bad_k.query;
  bad_eps.epsilon = -3.5;
  ASSERT_EQ(client.Query(bad_eps, &result), Client::Status::kOk);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("got -3.5"), std::string::npos) << result.error;
  server->Stop();
}

TEST(ServeEndToEnd, InsertBumpsEpochClearsCacheAndChangesAnswers) {
  const Dataset dataset = ClusteredDataset(75, 400, kBits, 6, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(2));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));

  // Prime the cache with an exact-match probe for a signature NOT in the
  // dataset yet.
  Rng rng(76);
  std::vector<ItemId> items = testing::RandomItems(rng, kBits, 9);
  QueryRequest probe;
  probe.type = QueryType::kExact;
  probe.query = Signature::FromItems(items, kBits);
  QueryResult before;
  ASSERT_EQ(client.Query(probe, &before), Client::Status::kOk);
  EXPECT_TRUE(before.ids.empty());
  ASSERT_EQ(client.Query(probe, &before), Client::Status::kOk);  // Hit.
  EXPECT_GT(server->result_cache()->size(), 0u);
  const uint64_t epoch_before = server->epoch();

  // Insert a transaction with exactly that signature.
  Transaction txn;
  txn.tid = 1'000'000;
  txn.items = items;
  bool accepted = false;
  std::string message;
  uint64_t epoch_after = 0;
  ASSERT_EQ(client.Insert(txn, &accepted, &message, &epoch_after),
            Client::Status::kOk);
  EXPECT_TRUE(accepted) << message;
  EXPECT_EQ(epoch_after, epoch_before + 1);
  // The invalidation rule: epoch bumped AND cache cleared.
  EXPECT_EQ(server->result_cache()->size(), 0u);

  // A stale cached answer would still say "no match"; the fresh answer
  // must see the insert.
  QueryResult after;
  ASSERT_EQ(client.Query(probe, &after), Client::Status::kOk);
  ASSERT_EQ(after.ids.size(), 1u);
  EXPECT_EQ(after.ids[0], txn.tid);

  // And the served answer still matches direct execution post-insert.
  DirectOracle oracle(*index);
  ExpectServedMatchesDirect(&client, &oracle, MixedBatch(77, 18),
                            "post-insert");
  server->Stop();
}

TEST(ServeEndToEnd, BusySheddingPastInflightBudget) {
  const Dataset dataset = ClusteredDataset(79, 200, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  options.max_inflight = 0;  // Shed everything: deterministic BUSY.
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  QueryRequest request;
  request.type = QueryType::kKnn;
  request.query = Signature(kBits);
  request.query.Set(2);
  request.k = 1;
  QueryResult result;
  EXPECT_EQ(client.Query(request, &result), Client::Status::kBusy);
  // The connection survives a BUSY; a ping still works.
  EXPECT_EQ(client.Ping(), Client::Status::kOk);
  EXPECT_GT(server->metrics()->GetCounter("serve.shed")->Value(), 0u);
  server->Stop();
}

class ReplicatedServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset dataset = ClusteredDataset(81, 700, kBits, 8, 10, 2);
    ShardedIndex dynamic_index(ShardOptions(2));
    ASSERT_EQ(dynamic_index.InsertBatch(dataset.transactions),
              dataset.transactions.size());
    manifest_ = ::testing::TempDir() + "/sgtree_serve_replicated.idx";
    std::string error;
    ASSERT_TRUE(dynamic_index.SaveStatic(manifest_, &error)) << error;
    index_ = ShardedIndex::Load(manifest_, ShardOptions(2), &error);
    ASSERT_NE(index_, nullptr) << error;
    ASSERT_TRUE(index_->static_mode());
  }

  std::unique_ptr<Server> MakeServer(uint32_t replicas, bool always_hedge) {
    ServerOptions options;
    options.replicas.num_replicas = replicas;
    options.replicas.manifest_path = manifest_;
    options.replicas.index_options = ShardOptions(2);
    if (always_hedge) {
      // Zero delay: every batch hedges, maximizing the chance the hedge
      // wins — served answers must be identical either way.
      options.replicas.hedge_delay_floor_us = 0;
      options.replicas.hedge_delay_cap_us = 0;
    }
    std::string error;
    auto server = Server::Create(index_.get(), options, &error);
    EXPECT_NE(server, nullptr) << error;
    if (server != nullptr) {
      EXPECT_TRUE(server->Start(&error)) << error;
    }
    return server;
  }

  std::string manifest_;
  std::unique_ptr<ShardedIndex> index_;
};

TEST_F(ReplicatedServeTest, ReplicatedAndHedgedAnswersAreByteIdentical) {
  auto server = MakeServer(/*replicas=*/3, /*always_hedge=*/true);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(server->replica_set()->num_replicas(), 3u);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  DirectOracle oracle(*index_);
  ExpectServedMatchesDirect(&client, &oracle, MixedBatch(82, 30), "hedged");
  server->Stop();
}

TEST_F(ReplicatedServeTest, KillOneReplicaMidStreamDegradesGracefully) {
  auto server = MakeServer(/*replicas=*/3, /*always_hedge=*/true);
  ASSERT_NE(server, nullptr);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  DirectOracle oracle(*index_);
  const std::vector<QueryRequest> batch = MixedBatch(83, 24);
  ExpectServedMatchesDirect(&client, &oracle, batch, "three live");

  server->replica_set()->FailReplica(1);
  EXPECT_EQ(server->replica_set()->live_replicas(), 2u);
  ExpectServedMatchesDirect(&client, &oracle, batch, "two live");

  server->replica_set()->FailReplica(2);
  EXPECT_EQ(server->replica_set()->live_replicas(), 1u);
  // One replica left: hedging silently degrades to none, answers still
  // byte-identical.
  ExpectServedMatchesDirect(&client, &oracle, batch, "one live");

  server->replica_set()->FailReplica(0);
  // Zero live replicas: requests fail with an explicit error answer, not a
  // hang or a crash. (The cache may still serve entries computed earlier,
  // so probe with a fresh request.)
  QueryRequest fresh;
  fresh.type = QueryType::kKnn;
  Rng rng(84);
  fresh.query = RandomSignature(rng, kBits, 0.5);
  fresh.k = 3;
  QueryResult result;
  ASSERT_EQ(client.Query(fresh, &result), Client::Status::kOk);
  EXPECT_FALSE(result.ok());
  EXPECT_NE(result.error.find("no live replicas"), std::string::npos)
      << result.error;
  server->Stop();
}

TEST_F(ReplicatedServeTest, StaticIndexRefusesMutation) {
  auto server = MakeServer(/*replicas=*/1, /*always_hedge=*/false);
  ASSERT_NE(server, nullptr);
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  Transaction txn;
  txn.tid = 5;
  txn.items = {1, 2, 3};
  bool accepted = true;
  std::string message;
  uint64_t epoch = 99;
  ASSERT_EQ(client.Insert(txn, &accepted, &message, &epoch),
            Client::Status::kOk);
  EXPECT_FALSE(accepted);
  EXPECT_NE(message.find("immutable"), std::string::npos) << message;
  EXPECT_EQ(epoch, 0u);  // Refused mutations must not bump the epoch.
  server->Stop();
}

TEST(ServeEndToEnd, AdminSurface) {
  const Dataset dataset = ClusteredDataset(85, 200, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));

  EXPECT_EQ(client.Ping(), Client::Status::kOk);
  uint64_t epoch = 77;
  ASSERT_EQ(client.GetEpoch(&epoch), Client::Status::kOk);
  EXPECT_EQ(epoch, 0u);

  QueryRequest request;
  request.type = QueryType::kKnn;
  request.query = Signature(kBits);
  request.query.Set(9);
  request.k = 2;
  QueryResult result;
  ASSERT_EQ(client.Query(request, &result), Client::Status::kOk);

  std::string json;
  ASSERT_EQ(client.GetMetrics(0, &json), Client::Status::kOk);
  EXPECT_NE(json.find("serve.requests"), std::string::npos);
  EXPECT_NE(json.find("serve.request_us"), std::string::npos);
  std::string prom;
  ASSERT_EQ(client.GetMetrics(1, &prom), Client::Status::kOk);
  // Prometheus names are sanitized: dots become underscores.
  EXPECT_NE(prom.find("serve_requests"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  server->Stop();
}

// ---------------------------------------------------------------------------
// Protocol robustness against hostile/broken peers.

TEST(ServeRobustness, RejectsBadPreamble) {
  const Dataset dataset = ClusteredDataset(87, 100, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;

  net::Socket raw =
      net::Socket::ConnectTcp("127.0.0.1", server->port(), 5000, &error);
  ASSERT_TRUE(raw.valid()) << error;
  const char garbage[8] = {'H', 'T', 'T', 'P', '/', '1', '.', '1'};
  ASSERT_EQ(raw.SendAll(garbage, sizeof(garbage), 5000, &error),
            net::IoStatus::kOk);
  // The server must close without echoing.
  uint8_t byte = 0;
  EXPECT_EQ(raw.RecvAll(&byte, 1, 5000, &error), net::IoStatus::kClosed);
  EXPECT_GT(server->metrics()->GetCounter("serve.protocol_errors")->Value(),
            0u);
  server->Stop();
}

TEST(ServeRobustness, RejectsOversizedAndMalformedFrames) {
  const Dataset dataset = ClusteredDataset(89, 100, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;

  // Handshake by hand, then send a frame whose length field is absurd.
  net::Socket raw =
      net::Socket::ConnectTcp("127.0.0.1", server->port(), 5000, &error);
  ASSERT_TRUE(raw.valid()) << error;
  uint8_t preamble[kPreambleBytes];
  std::memcpy(preamble, kPreambleMagic, 4);
  const uint32_t version = kProtocolVersion;
  std::memcpy(preamble + 4, &version, 4);
  ASSERT_EQ(raw.SendAll(preamble, sizeof(preamble), 5000, &error),
            net::IoStatus::kOk);
  uint8_t echo[kPreambleBytes];
  ASSERT_EQ(raw.RecvAll(echo, sizeof(echo), 5000, &error),
            net::IoStatus::kOk);
  const uint32_t huge = kMaxFrameBytes + 1;
  uint8_t frame[4];
  std::memcpy(frame, &huge, 4);
  ASSERT_EQ(raw.SendAll(frame, 4, 5000, &error), net::IoStatus::kOk);
  // Expect an error frame, then close.
  uint8_t header[5];
  ASSERT_EQ(raw.RecvAll(header, 5, 5000, &error), net::IoStatus::kOk);
  EXPECT_EQ(header[4], static_cast<uint8_t>(FrameType::kError));

  // A malformed query payload (truncated signature) also earns an error
  // frame and a close — through the client this surfaces as kServerError.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  // Unknown frame type via a fresh raw connection.
  net::Socket raw2 =
      net::Socket::ConnectTcp("127.0.0.1", server->port(), 5000, &error);
  ASSERT_TRUE(raw2.valid());
  ASSERT_EQ(raw2.SendAll(preamble, sizeof(preamble), 5000, &error),
            net::IoStatus::kOk);
  ASSERT_EQ(raw2.RecvAll(echo, sizeof(echo), 5000, &error),
            net::IoStatus::kOk);
  const std::vector<uint8_t> bogus =
      EncodeFrame(static_cast<FrameType>(200), {1, 2, 3});
  ASSERT_EQ(raw2.SendAll(bogus.data(), bogus.size(), 5000, &error),
            net::IoStatus::kOk);
  uint8_t header2[5];
  ASSERT_EQ(raw2.RecvAll(header2, 5, 5000, &error), net::IoStatus::kOk);
  EXPECT_EQ(header2[4], static_cast<uint8_t>(FrameType::kError));
  server->Stop();
}

// ---------------------------------------------------------------------------
// Concurrency (ThreadSanitizer targets).

TEST(ServeConcurrency, ManyClientsAgainstReplicatedStaticIndex) {
  const Dataset dataset = ClusteredDataset(91, 500, kBits, 8, 10, 2);
  ShardedIndex dynamic_index(ShardOptions(2));
  ASSERT_EQ(dynamic_index.InsertBatch(dataset.transactions),
            dataset.transactions.size());
  const std::string manifest =
      ::testing::TempDir() + "/sgtree_serve_stress.idx";
  std::string error;
  ASSERT_TRUE(dynamic_index.SaveStatic(manifest, &error)) << error;
  auto index = ShardedIndex::Load(manifest, ShardOptions(2), &error);
  ASSERT_NE(index, nullptr) << error;

  ServerOptions options;
  options.replicas.num_replicas = 2;
  options.replicas.manifest_path = manifest;
  options.replicas.index_options = ShardOptions(2);
  options.replicas.hedge_delay_floor_us = 0;  // Hedge aggressively.
  options.replicas.hedge_delay_cap_us = 200;
  options.batcher.num_dispatchers = 3;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;

  constexpr int kClients = 6;
  constexpr int kQueriesPerClient = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([c, port = server->port(), &failures] {
      Client client;
      if (!client.Connect("127.0.0.1", port, 5000)) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<QueryRequest> batch =
          MixedBatch(100 + static_cast<uint64_t>(c), kQueriesPerClient);
      for (const QueryRequest& request : batch) {
        QueryResult result;
        if (client.Query(request, &result) != Client::Status::kOk ||
            !result.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Kill a replica while the clients hammer away: nobody may fail.
  server->replica_set()->FailReplica(1);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  server->Stop();
}

TEST(ServeConcurrency, QueriesRaceInsertsWithoutTornAnswers) {
  const Dataset dataset = ClusteredDataset(93, 400, kBits, 6, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(2));
  ServerOptions options;
  options.cache_entries = 256;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;

  std::atomic<int> failures{0};
  std::thread writer([port = server->port(), &failures] {
    Client client;
    if (!client.Connect("127.0.0.1", port, 5000)) {
      failures.fetch_add(1);
      return;
    }
    Rng rng(94);
    for (int i = 0; i < 30; ++i) {
      Transaction txn;
      txn.tid = 2'000'000 + static_cast<uint64_t>(i);
      txn.items = testing::RandomItems(rng, kBits, 8);
      bool accepted = false;
      std::string message;
      uint64_t epoch = 0;
      if (client.Insert(txn, &accepted, &message, &epoch) !=
              Client::Status::kOk ||
          !accepted) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> readers;
  for (int c = 0; c < 4; ++c) {
    readers.emplace_back([c, port = server->port(), &failures] {
      Client client;
      if (!client.Connect("127.0.0.1", port, 5000)) {
        failures.fetch_add(1);
        return;
      }
      const std::vector<QueryRequest> batch =
          MixedBatch(200 + static_cast<uint64_t>(c), 40);
      for (const QueryRequest& request : batch) {
        QueryResult result;
        if (client.Query(request, &result) != Client::Status::kOk ||
            !result.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(server->epoch(), 30u);

  // After the dust settles, served answers equal direct execution on the
  // final index state.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  DirectOracle oracle(*index);
  ExpectServedMatchesDirect(&client, &oracle, MixedBatch(95, 18),
                            "post-race");
  server->Stop();
}

TEST(ServeEndToEnd, StopUnblocksIdleConnections) {
  const Dataset dataset = ClusteredDataset(97, 100, kBits, 4, 10, 2);
  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(1));
  ServerOptions options;
  std::string error;
  auto server = Server::Create(index.get(), options, &error);
  ASSERT_NE(server, nullptr) << error;
  ASSERT_TRUE(server->Start(&error)) << error;
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server->port(), 5000));
  ASSERT_EQ(client.Ping(), Client::Status::kOk);
  // Stop with an idle connection parked in the frame-length read: Stop()
  // must not hang (the Shutdown() path unblocks the reader).
  server->Stop();
  EXPECT_NE(client.Ping(), Client::Status::kOk);
}

}  // namespace
}  // namespace serve
}  // namespace sgtree
