// Tests for the sgtree_cli command-line tool (driven through RunCli) and
// its flag parser.

#include "tools/cli.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "tools/command_line.h"

namespace sgtree {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult RunArgs(const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Flag parser.
// ---------------------------------------------------------------------------

TEST(CommandLineTest, PositionalAndFlags) {
  CommandLine cmd({"query", "nn", "--index", "x.idx", "--k", "5"});
  ASSERT_TRUE(cmd.error().empty());
  EXPECT_EQ(cmd.positional(), (std::vector<std::string>{"query", "nn"}));
  EXPECT_EQ(cmd.StringOr("index", ""), "x.idx");
  EXPECT_EQ(cmd.IntOr("k", 1), 5);
  EXPECT_TRUE(cmd.UnusedFlags().empty());
}

TEST(CommandLineTest, DefaultsApply) {
  CommandLine cmd({"build"});
  EXPECT_EQ(cmd.IntOr("page", 4096), 4096);
  EXPECT_DOUBLE_EQ(cmd.DoubleOr("eps", 2.5), 2.5);
  EXPECT_FALSE(cmd.GetString("missing").has_value());
}

TEST(CommandLineTest, UnusedFlagsDetected) {
  CommandLine cmd({"stats", "--index", "a", "--typo", "1"});
  EXPECT_EQ(cmd.StringOr("index", ""), "a");
  EXPECT_EQ(cmd.UnusedFlags(), std::vector<std::string>{"typo"});
}

TEST(CommandLineTest, MissingValueIsError) {
  CommandLine cmd({"stats", "--index"});
  EXPECT_FALSE(cmd.error().empty());
}

TEST(CommandLineTest, StrayPositionalAfterFlagIsError) {
  CommandLine cmd({"stats", "--index", "a", "oops"});
  EXPECT_FALSE(cmd.error().empty());
}

// ---------------------------------------------------------------------------
// CLI end-to-end.
// ---------------------------------------------------------------------------

TEST(CliTest, NoArgsShowsUsage) {
  const CliResult r = RunArgs({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("usage"), std::string::npos);
}

TEST(CliTest, UnknownCommandFails) {
  const CliResult r = RunArgs({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(CliTest, GenBuildStatsQueryPipeline) {
  const std::string data = TempPath("cli_data.txt");
  const std::string index = TempPath("cli_index.bin");

  CliResult r = RunArgs({"gen", "quest", "--out", data, "--d", "1500", "--items",
                     "200", "--patterns", "60", "--seed", "9"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("1500 transactions"), std::string::npos);

  r = RunArgs({"build", "--data", data, "--out", index, "--split", "avg"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("indexed 1500"), std::string::npos);

  r = RunArgs({"stats", "--index", index});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("transactions: 1500"), std::string::npos);
  EXPECT_NE(r.out.find("invariants: OK"), std::string::npos);

  r = RunArgs({"query", "nn", "--index", index, "--q", "1 2 3", "--k", "3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("query 0:"), std::string::npos);
  EXPECT_NE(r.out.find("compared"), std::string::npos);

  r = RunArgs({"query", "range", "--index", index, "--q", "1 2 3", "--eps",
           "8"});
  ASSERT_EQ(r.code, 0) << r.err;

  r = RunArgs({"query", "contain", "--index", index, "--q", "1"});
  ASSERT_EQ(r.code, 0) << r.err;

  r = RunArgs({"check", "--index", index});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("in-memory audit: all invariants hold"),
            std::string::npos);
  EXPECT_NE(r.out.find("paged audit: all invariants hold"),
            std::string::npos);

  r = RunArgs({"check", "--index", index, "--paged", "0"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("paged audit"), std::string::npos);

  std::remove(data.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, CheckRequiresIndex) {
  CliResult r = RunArgs({"check"});
  EXPECT_NE(r.code, 0);
  r = RunArgs({"check", "--index", TempPath("cli_no_such_index.bin")});
  EXPECT_NE(r.code, 0);
}

TEST(CliTest, CensusGeneratorAndBulkBuild) {
  const std::string data = TempPath("cli_census.txt");
  const std::string index = TempPath("cli_census.bin");
  CliResult r =
      RunArgs({"gen", "census", "--out", data, "--tuples", "1200"});
  ASSERT_EQ(r.code, 0) << r.err;

  for (const std::string bulk : {"gray", "bisect", "minhash"}) {
    r = RunArgs({"build", "--data", data, "--out", index, "--bulk", bulk});
    ASSERT_EQ(r.code, 0) << bulk << ": " << r.err;
    r = RunArgs({"stats", "--index", index});
    ASSERT_EQ(r.code, 0);
    EXPECT_NE(r.out.find("invariants: OK"), std::string::npos) << bulk;
  }
  std::remove(data.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, QueryWithMetricFlag) {
  const std::string data = TempPath("cli_metric.txt");
  const std::string index = TempPath("cli_metric.bin");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "500", "--items",
                 "100", "--patterns", "30"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);
  for (const std::string metric : {"hamming", "jaccard", "dice", "cosine"}) {
    const CliResult r = RunArgs({"query", "nn", "--index", index, "--q", "1 2",
                             "--metric", metric});
    EXPECT_EQ(r.code, 0) << metric << ": " << r.err;
  }
  const CliResult bad =
      RunArgs({"query", "nn", "--index", index, "--q", "1", "--metric", "l2"});
  EXPECT_EQ(bad.code, 1);
  std::remove(data.c_str());
  std::remove(index.c_str());
}

TEST(CliTest, QueriesFromFile) {
  const std::string data = TempPath("cli_qf_data.txt");
  const std::string index = TempPath("cli_qf.bin");
  const std::string queries = TempPath("cli_qf_queries.txt");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "800", "--items",
                 "150", "--patterns", "40"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);
  {
    std::ofstream out(queries);
    out << "150 0 2\n0 3 14 15\n1 7 8\n";
  }
  const CliResult r =
      RunArgs({"query", "nn", "--index", index, "--queries", queries});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("query 0:"), std::string::npos);
  EXPECT_NE(r.out.find("query 1:"), std::string::npos);
  std::remove(data.c_str());
  std::remove(index.c_str());
  std::remove(queries.c_str());
}

TEST(CommandLineTest, InlineEqualsSyntax) {
  CommandLine cmd({"query", "nn", "--index=x.idx", "--k=5", "--eps", "2.5"});
  ASSERT_TRUE(cmd.error().empty());
  EXPECT_EQ(cmd.positional(), (std::vector<std::string>{"query", "nn"}));
  EXPECT_EQ(cmd.StringOr("index", ""), "x.idx");
  EXPECT_EQ(cmd.IntOr("k", 1), 5);
  EXPECT_DOUBLE_EQ(cmd.DoubleOr("eps", 0), 2.5);
  EXPECT_TRUE(cmd.UnusedFlags().empty());

  // "--flag=" carries an explicit empty value.
  CommandLine empty_value({"stats", "--index="});
  ASSERT_TRUE(empty_value.error().empty());
  EXPECT_EQ(empty_value.StringOr("index", "fallback"), "");
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream content;
  content << in.rdbuf();
  return content.str();
}

TEST(CliTest, StatsAndQueryExportMetrics) {
  const std::string data = TempPath("cli_obs_data.txt");
  const std::string index = TempPath("cli_obs.bin");
  const std::string stats_json = TempPath("cli_obs_stats.json");
  const std::string query_json = TempPath("cli_obs_query.json");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "800", "--items",
                 "150", "--patterns", "40"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);

  // stats prints the pool counters and exports them as registry JSON.
  CliResult r = RunArgs({"stats", "--index", index, "--metrics-json",
                         stats_json});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("buffer:"), std::string::npos);
  EXPECT_NE(r.out.find("hit ratio"), std::string::npos);
  EXPECT_NE(r.out.find("wrote metrics " + stats_json), std::string::npos);
  const std::string stats_export = ReadFile(stats_json);
  EXPECT_NE(stats_export.find("\"counters\""), std::string::npos);
  EXPECT_NE(stats_export.find("\"tree.transactions\":800"),
            std::string::npos);
  EXPECT_NE(stats_export.find("\"buffer.accesses\""), std::string::npos);
  EXPECT_NE(stats_export.find("\"histograms\""), std::string::npos);

  // query with --trace=1 prints the per-query pruning breakdown (and the
  // inline --flag=value syntax reaches the parser end to end).
  r = RunArgs({"query", "nn", "--index", index, "--q", "1 2 3", "--k=3",
               "--trace=1", "--metrics-json=" + query_json});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("  trace: nodes="), std::string::npos);
  EXPECT_NE(r.out.find(" misses="), std::string::npos);
  EXPECT_NE(r.out.find("wrote metrics " + query_json), std::string::npos);
  const std::string query_export = ReadFile(query_json);
  EXPECT_NE(query_export.find("\"query.queries\":1"), std::string::npos);
  EXPECT_NE(query_export.find("\"query.random_ios\""), std::string::npos);
  EXPECT_NE(query_export.find("\"query.latency_us\""), std::string::npos);
  EXPECT_NE(query_export.find("\"p50\""), std::string::npos);

  // Without --trace the breakdown stays off.
  r = RunArgs({"query", "nn", "--index", index, "--q", "1 2 3"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.find("  trace:"), std::string::npos);

  std::remove(data.c_str());
  std::remove(index.c_str());
  std::remove(stats_json.c_str());
  std::remove(query_json.c_str());
}

// --json 1 turns the stats / static-info reports into one machine-readable
// JSON object on stdout (the human text disappears entirely) so ops tooling
// scrapes fields instead of parsing prose.
TEST(CliTest, StatsAndStaticInfoEmitJson) {
  const std::string data = TempPath("cli_json_data.txt");
  const std::string index = TempPath("cli_json_index.bin");
  const std::string image = TempPath("cli_json_static.sgt");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "700", "--items",
                 "150", "--patterns", "40"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);
  ASSERT_EQ(
      RunArgs({"build", "--data", data, "--out", image, "--static", "1"}).code,
      0);

  CliResult r = RunArgs({"stats", "--index", index, "--json", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"transactions\": 700"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"invariants_ok\": true"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"buffer\": {\"accesses\":"), std::string::npos);
  EXPECT_NE(r.out.find("\"avg_entry_area\": ["), std::string::npos);
  EXPECT_EQ(r.out.find("transactions: "), std::string::npos)
      << "human text leaked into the JSON report";

  r = RunArgs({"static-info", "--index", image, "--json", "1"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_EQ(r.out.front(), '{');
  EXPECT_NE(r.out.find("\"format_version\": "), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"transactions\": 700"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("\"file_size\": "), std::string::npos);
  EXPECT_NE(r.out.find("\"checksums_verified\": true"), std::string::npos);
  EXPECT_EQ(r.out.find("format version:"), std::string::npos);

  // --json 0 keeps the human report.
  r = RunArgs({"stats", "--index", index, "--json", "0"});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("transactions: 700"), std::string::npos);

  std::remove(data.c_str());
  std::remove(index.c_str());
  std::remove(image.c_str());
}

TEST(CliTest, ErrorPaths) {
  EXPECT_EQ(RunArgs({"gen", "quest"}).code, 1);                    // No --out.
  EXPECT_EQ(RunArgs({"gen", "warehouse", "--out", "/tmp/x"}).code, 1);
  EXPECT_EQ(RunArgs({"build", "--data", "/nonexistent", "--out", "/tmp/x"}).code,
            1);
  EXPECT_EQ(RunArgs({"stats", "--index", "/nonexistent"}).code, 1);
  EXPECT_EQ(RunArgs({"query", "nn", "--index", "/nonexistent", "--q", "1"}).code,
            1);
  const std::string data = TempPath("cli_err_data.txt");
  const std::string index = TempPath("cli_err.bin");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "200", "--items",
                 "50", "--patterns", "20"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);
  // Out-of-range item in --q.
  EXPECT_EQ(RunArgs({"query", "nn", "--index", index, "--q", "999"}).code, 1);
  // Query without --q/--queries.
  EXPECT_EQ(RunArgs({"query", "nn", "--index", index}).code, 1);
  // Unknown flag.
  EXPECT_EQ(
      RunArgs({"query", "nn", "--index", index, "--q", "1", "--frob", "1"}).code,
      1);
  std::remove(data.c_str());
  std::remove(index.c_str());
}

// ---------------------------------------------------------------------------
// Collection-level joins.
// ---------------------------------------------------------------------------

TEST(CliTest, JoinRunsEveryAlgorithmWithIdenticalPairCounts) {
  const std::string left_data = TempPath("cli_join_l.txt");
  const std::string right_data = TempPath("cli_join_r.txt");
  const std::string left = TempPath("cli_join_l.bin");
  const std::string right = TempPath("cli_join_r.bin");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", left_data, "--d", "300",
                 "--items", "80", "--patterns", "20", "--seed", "3"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", right_data, "--d", "300",
                 "--items", "80", "--patterns", "20", "--seed", "4"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", left_data, "--out", left}).code, 0);
  ASSERT_EQ(RunArgs({"build", "--data", right_data, "--out", right}).code, 0);

  // All three algorithms report the same pair count in --json mode.
  std::string pairs_field;
  for (const std::string algo : {"tree", "pretti", "fvt"}) {
    const CliResult r = RunArgs({"join", "contain", "--left", left, "--right",
                             right, "--algo", algo, "--json", "1"});
    ASSERT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("\"join\": \"contain\""), std::string::npos);
    EXPECT_NE(r.out.find("\"algo\": \"" + algo + "\""), std::string::npos);
    const size_t at = r.out.find("\"pairs\": ");
    ASSERT_NE(at, std::string::npos) << r.out;
    const std::string field = r.out.substr(at, r.out.find(',', at) - at);
    if (pairs_field.empty()) {
      pairs_field = field;
    } else {
      EXPECT_EQ(field, pairs_field) << algo;
    }
  }

  // Human-readable mode prints the summary line.
  const CliResult human = RunArgs(
      {"join", "contain", "--left", left, "--right", right, "--limit", "5"});
  ASSERT_EQ(human.code, 0) << human.err;
  EXPECT_NE(human.out.find("pairs via pretti"), std::string::npos);

  // A similarity join needs the tree backend; the trees were built with
  // the default hamming metric, so a hamming threshold works end to end.
  const CliResult similar =
      RunArgs({"join", "similar", "--left", left, "--right", right, "--algo",
           "tree", "--threshold", "6", "--json", "1"});
  ASSERT_EQ(similar.code, 0) << similar.err;
  EXPECT_NE(similar.out.find("\"join\": \"similar\""), std::string::npos);

  std::remove(left_data.c_str());
  std::remove(right_data.c_str());
  std::remove(left.c_str());
  std::remove(right.c_str());
}

TEST(CliTest, JoinValidationAndSupportErrorsExitNonzero) {
  const std::string data = TempPath("cli_join_e.txt");
  const std::string index = TempPath("cli_join_e.bin");
  ASSERT_EQ(RunArgs({"gen", "quest", "--out", data, "--d", "120", "--items",
                 "40", "--patterns", "10"})
                .code,
            0);
  ASSERT_EQ(RunArgs({"build", "--data", data, "--out", index}).code, 0);

  // Malformed threshold: exit 1 with the offending value in the message.
  CliResult r = RunArgs({"join", "similar", "--left", index, "--right", index,
                     "--algo", "tree", "--metric", "jaccard", "--threshold",
                     "0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(
      r.err.find(
          "threshold must be in (0,1] for jaccard similarity joins, got 0"),
      std::string::npos)
      << r.err;

  // Containment-only backend asked for a similarity join: exit 1 with the
  // support reason.
  r = RunArgs({"join", "similar", "--left", index, "--right", index, "--algo",
           "fvt", "--threshold", "4"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("fvt is a containment-only join"), std::string::npos)
      << r.err;

  // Unknown algorithm and missing inputs.
  EXPECT_EQ(RunArgs({"join", "contain", "--left", index, "--right", index,
                 "--algo", "quadratic"})
                .code,
            1);
  EXPECT_EQ(RunArgs({"join", "contain", "--left", index}).code, 1);
  EXPECT_EQ(RunArgs({"join", "frobnicate", "--left", index, "--right", index})
                .code,
            1);

  std::remove(data.c_str());
  std::remove(index.c_str());
}

}  // namespace
}  // namespace sgtree
