#include "common/distance.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::RandomItems;
using ::sgtree::testing::RandomSignature;

Signature FromItems(std::initializer_list<uint32_t> items, uint32_t bits) {
  return Signature::FromItems(std::vector<uint32_t>(items), bits);
}

TEST(DistanceTest, HammingBasics) {
  const Signature a = FromItems({0, 1, 2}, 16);
  const Signature b = FromItems({1, 2, 3, 4}, 16);
  // Symmetric difference {0, 3, 4}.
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kHamming), 3.0);
  EXPECT_DOUBLE_EQ(Distance(a, a, Metric::kHamming), 0.0);
}

TEST(DistanceTest, JaccardBasics) {
  const Signature a = FromItems({0, 1, 2}, 16);
  const Signature b = FromItems({1, 2, 3}, 16);
  // |intersection| = 2, |union| = 4.
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kJaccard), 0.5);
  EXPECT_DOUBLE_EQ(Distance(a, a, Metric::kJaccard), 0.0);
  const Signature empty(16);
  EXPECT_DOUBLE_EQ(Distance(empty, empty, Metric::kJaccard), 0.0);
  EXPECT_DOUBLE_EQ(Distance(a, empty, Metric::kJaccard), 1.0);
}

TEST(DistanceTest, DiceBasics) {
  const Signature a = FromItems({0, 1, 2}, 16);
  const Signature b = FromItems({1, 2, 3}, 16);
  // 1 - 2*2/(3+3).
  EXPECT_NEAR(Distance(a, b, Metric::kDice), 1.0 / 3, 1e-12);
  EXPECT_DOUBLE_EQ(Distance(a, a, Metric::kDice), 0.0);
}

TEST(DistanceTest, MetricNames) {
  EXPECT_EQ(MetricName(Metric::kHamming), "hamming");
  EXPECT_EQ(MetricName(Metric::kJaccard), "jaccard");
  EXPECT_EQ(MetricName(Metric::kDice), "dice");
}

// Metric axioms, checked over random signatures for every metric.
class MetricAxiomsTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricAxiomsTest, NonNegativeAndSymmetric) {
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    const Signature a = RandomSignature(rng, 200, 0.2);
    const Signature b = RandomSignature(rng, 200, 0.2);
    const double dab = Distance(a, b, GetParam());
    const double dba = Distance(b, a, GetParam());
    EXPECT_GE(dab, 0.0);
    EXPECT_DOUBLE_EQ(dab, dba);
  }
}

TEST_P(MetricAxiomsTest, IdentityOfIndiscernibles) {
  Rng rng(103);
  for (int trial = 0; trial < 50; ++trial) {
    const Signature a = RandomSignature(rng, 200, 0.2);
    EXPECT_DOUBLE_EQ(Distance(a, a, GetParam()), 0.0);
    Signature b = a;
    const uint32_t flip = static_cast<uint32_t>(rng.UniformInt(200));
    if (b.Test(flip)) {
      b.Reset(flip);
    } else {
      b.Set(flip);
    }
    EXPECT_GT(Distance(a, b, GetParam()), 0.0);
  }
}

TEST_P(MetricAxiomsTest, TriangleInequality) {
  // Hamming and Jaccard are metrics; Dice and cosine violate the triangle
  // inequality in general, so they are excluded from this check.
  if (GetParam() == Metric::kDice || GetParam() == Metric::kCosine) {
    GTEST_SKIP();
  }
  Rng rng(107);
  for (int trial = 0; trial < 100; ++trial) {
    const Signature a = RandomSignature(rng, 128, 0.3);
    const Signature b = RandomSignature(rng, 128, 0.3);
    const Signature c = RandomSignature(rng, 128, 0.3);
    const double ab = Distance(a, b, GetParam());
    const double bc = Distance(b, c, GetParam());
    const double ac = Distance(a, c, GetParam());
    EXPECT_LE(ac, ab + bc + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricAxiomsTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

// ---------------------------------------------------------------------------
// Lower-bound soundness: MinDistBound(q, cover) <= Distance(q, t) for every
// t whose signature is contained in the cover — the property every pruning
// decision in the tree relies on.
// ---------------------------------------------------------------------------

class BoundSoundnessTest : public ::testing::TestWithParam<Metric> {};

TEST_P(BoundSoundnessTest, BoundNeverExceedsTrueDistance) {
  Rng rng(211);
  const uint32_t bits = 300;
  for (int trial = 0; trial < 200; ++trial) {
    // Build a group of transactions and its covering signature.
    Signature cover(bits);
    std::vector<Signature> members;
    const int group = 1 + static_cast<int>(rng.UniformInt(8));
    for (int g = 0; g < group; ++g) {
      Signature t = RandomSignature(rng, bits, 0.05);
      if (t.Empty()) t.Set(static_cast<uint32_t>(rng.UniformInt(bits)));
      cover.UnionWith(t);
      members.push_back(std::move(t));
    }
    const Signature query = RandomSignature(rng, bits, 0.05);
    const double bound = MinDistBound(query, cover, GetParam());
    for (const Signature& t : members) {
      EXPECT_LE(bound, Distance(query, t, GetParam()) + 1e-12)
          << MetricName(GetParam());
    }
  }
}

TEST_P(BoundSoundnessTest, BoundIsZeroWhenCoverContainsQuery) {
  Rng rng(223);
  for (int trial = 0; trial < 30; ++trial) {
    const Signature query = RandomSignature(rng, 200, 0.1);
    Signature cover = query;
    cover.UnionWith(RandomSignature(rng, 200, 0.1));
    EXPECT_DOUBLE_EQ(MinDistBound(query, cover, GetParam()), 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, BoundSoundnessTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

TEST(BoundTest, HammingBoundCountsMissingQueryItems) {
  const Signature query = FromItems({0, 1, 2, 3}, 64);
  const Signature cover = FromItems({1, 3, 10, 11, 12}, 64);
  // Items 0 and 2 of the query cannot occur below the cover.
  EXPECT_DOUBLE_EQ(MinDistBound(query, cover, Metric::kHamming), 2.0);
}

TEST(BoundTest, FixedDimensionalityBoundIsTighterAndSound) {
  Rng rng(227);
  const uint32_t bits = 120;
  const uint32_t d = 8;  // Every tuple has exactly 8 items.
  for (int trial = 0; trial < 200; ++trial) {
    Signature cover(bits);
    std::vector<Signature> members;
    const int group = 1 + static_cast<int>(rng.UniformInt(6));
    for (int g = 0; g < group; ++g) {
      const Signature t =
          Signature::FromItems(RandomItems(rng, bits, d), bits);
      cover.UnionWith(t);
      members.push_back(t);
    }
    const Signature query =
        Signature::FromItems(RandomItems(rng, bits, d), bits);
    const double relaxed = MinDistBound(query, cover, Metric::kHamming);
    const double tight = MinDistBound(query, cover, Metric::kHamming, d);
    EXPECT_GE(tight, relaxed);  // Section 6: strictly stricter in general.
    for (const Signature& t : members) {
      EXPECT_LE(tight, Distance(query, t, Metric::kHamming) + 1e-12);
    }
  }
}

TEST(BoundTest, FixedDimBoundExactForSingletonGroup) {
  // With a single d-sized tuple below the cover, the tightened bound equals
  // the true distance.
  Rng rng(229);
  for (int trial = 0; trial < 50; ++trial) {
    const auto t_items = RandomItems(rng, 100, 6);
    const auto q_items = RandomItems(rng, 100, 6);
    const Signature t = Signature::FromItems(t_items, 100);
    const Signature q = Signature::FromItems(q_items, 100);
    EXPECT_DOUBLE_EQ(MinDistBound(q, t, Metric::kHamming, 6),
                     Distance(q, t, Metric::kHamming));
  }
}

TEST(BoundTest, JaccardBoundMatchesPaperFormula) {
  const Signature query = FromItems({0, 1, 2, 3}, 64);
  const Signature cover = FromItems({0, 1, 9}, 64);
  // Upper similarity bound |q AND cover| / |q| = 2/4.
  EXPECT_DOUBLE_EQ(MinDistBound(query, cover, Metric::kJaccard), 0.5);
}

TEST(BoundTest, EmptyQueryIsConservative) {
  const Signature query(64);
  const Signature cover = FromItems({1, 2, 3}, 64);
  EXPECT_DOUBLE_EQ(MinDistBound(query, cover, Metric::kHamming), 0.0);
  EXPECT_DOUBLE_EQ(MinDistBound(query, cover, Metric::kJaccard), 0.0);
  EXPECT_DOUBLE_EQ(MinDistBound(query, cover, Metric::kDice), 0.0);
}

}  // namespace
}  // namespace sgtree
