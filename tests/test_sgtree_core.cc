#include "sgtree/sg_tree.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sgtree/choose_subtree.h"
#include "sgtree/split.h"
#include "sgtree/tree_checker.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

SgTreeOptions SmallOptions(uint32_t num_bits = 100) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 8;
  options.buffer_pages = 16;
  return options;
}

// ---------------------------------------------------------------------------
// Options / capacity derivation.
// ---------------------------------------------------------------------------

TEST(SgTreeOptionsTest, CapacityDerivedFromPageSize) {
  SgTreeOptions options;
  options.num_bits = 1000;  // 126 dense bytes + tag + 8-byte ref = 134.
  options.page_size = 4096;
  const uint32_t capacity = options.ResolvedMaxEntries();
  // "In practice C is in the order of several tens" — 4K pages, 1000-bit
  // signatures: around 30 entries.
  EXPECT_GE(capacity, 20u);
  EXPECT_LE(capacity, 40u);
  EXPECT_EQ(capacity, (4096u - 4) / (8 + 1 + 125));
}

TEST(SgTreeOptionsTest, ExplicitCapacityWins) {
  SgTreeOptions options;
  options.num_bits = 1000;
  options.max_entries = 12;
  EXPECT_EQ(options.ResolvedMaxEntries(), 12u);
  EXPECT_EQ(options.ResolvedMinEntries(), 4u);  // 40% of 12, <= M/2.
}

TEST(SgTreeOptionsTest, MinEntriesClampedToHalf) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.max_entries = 4;
  options.min_fill_fraction = 0.9;
  EXPECT_EQ(options.ResolvedMinEntries(), 2u);
}

// ---------------------------------------------------------------------------
// ChooseSubtree (Section 3.1 cases).
// ---------------------------------------------------------------------------

Entry MakeEntry(std::initializer_list<uint32_t> items, uint64_t ref,
                uint32_t bits = 32) {
  return Entry{Signature::FromItems(std::vector<uint32_t>(items), bits), ref};
}

TEST(ChooseSubtreeTest, SingleContainingEntryWins) {
  Node node;
  node.level = 1;
  node.entries.push_back(MakeEntry({0, 1, 2, 3, 4, 5, 6, 7}, 0));
  node.entries.push_back(MakeEntry({10, 11, 12}, 1));
  const Signature sig = Signature::FromItems(std::vector<uint32_t>{10, 12}, 32);
  EXPECT_EQ(ChooseSubtree(node, sig, ChooseSubtreePolicy::kMinEnlargement),
            1u);
}

TEST(ChooseSubtreeTest, MultipleContainingPicksMinArea) {
  Node node;
  node.level = 1;
  node.entries.push_back(MakeEntry({0, 1, 2, 3, 4, 5, 6, 7}, 0));
  node.entries.push_back(MakeEntry({0, 1, 2}, 1));  // Smaller area.
  node.entries.push_back(MakeEntry({0, 1, 2, 3, 4}, 2));
  const Signature sig = Signature::FromItems(std::vector<uint32_t>{0, 2}, 32);
  EXPECT_EQ(ChooseSubtree(node, sig, ChooseSubtreePolicy::kMinEnlargement),
            1u);
  // Containment beats enlargement under both policies.
  EXPECT_EQ(ChooseSubtree(node, sig, ChooseSubtreePolicy::kMinOverlap), 1u);
}

TEST(ChooseSubtreeTest, NoContainingPicksMinEnlargement) {
  Node node;
  node.level = 1;
  node.entries.push_back(MakeEntry({0, 1, 2, 3}, 0));    // Needs 2 new bits.
  node.entries.push_back(MakeEntry({8, 9, 10, 20}, 1));  // Needs 1 new bit.
  const Signature sig =
      Signature::FromItems(std::vector<uint32_t>{8, 9, 21}, 32);
  EXPECT_EQ(ChooseSubtree(node, sig, ChooseSubtreePolicy::kMinEnlargement),
            1u);
}

TEST(ChooseSubtreeTest, EnlargementTieBrokenByArea) {
  Node node;
  node.level = 1;
  node.entries.push_back(MakeEntry({0, 1, 2, 3, 4}, 0));  // Area 5.
  node.entries.push_back(MakeEntry({10, 11}, 1));         // Area 2.
  // One new bit for either entry.
  const Signature sig = Signature::FromItems(std::vector<uint32_t>{20}, 32);
  EXPECT_EQ(ChooseSubtree(node, sig, ChooseSubtreePolicy::kMinEnlargement),
            1u);
}

TEST(ChooseSubtreeTest, MinOverlapAvoidsSharedGrowth) {
  Node node;
  node.level = 1;
  // Entry 0 overlaps entry 2 heavily if enlarged towards {4,5}; entry 1
  // grows the same amount without new overlap.
  node.entries.push_back(MakeEntry({0, 1, 2, 3}, 0));
  node.entries.push_back(MakeEntry({20, 21, 22, 23}, 1));
  node.entries.push_back(MakeEntry({4, 5, 6, 7}, 2));
  const Signature sig = Signature::FromItems(std::vector<uint32_t>{4, 5}, 32);
  // {4,5} is contained in entry 2 — containment wins. Use {5, 30} instead:
  const Signature sig2 =
      Signature::FromItems(std::vector<uint32_t>{5, 30}, 32);
  // Enlargement: e0 += 2, e1 += 2, e2 += 1 -> min-enlargement picks e2.
  EXPECT_EQ(ChooseSubtree(node, sig2, ChooseSubtreePolicy::kMinEnlargement),
            2u);
  (void)sig;
}

// ---------------------------------------------------------------------------
// Split policies.
// ---------------------------------------------------------------------------

class SplitPolicyTest : public ::testing::TestWithParam<SplitPolicy> {};

TEST_P(SplitPolicyTest, PreservesEntriesAndRespectsMinFill) {
  Rng rng(55);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t n = 9;
    const uint32_t min_entries = 3;
    std::vector<Entry> entries;
    std::set<uint64_t> refs;
    for (uint32_t i = 0; i < n; ++i) {
      entries.push_back(Entry{RandomSignature(rng, 64, 0.2), i});
      refs.insert(i);
    }
    const SplitResult result =
        SplitEntries(std::move(entries), GetParam(), min_entries, 64);
    EXPECT_GE(result.first.size(), min_entries);
    EXPECT_GE(result.second.size(), min_entries);
    EXPECT_EQ(result.first.size() + result.second.size(), n);
    std::set<uint64_t> seen;
    for (const Entry& e : result.first) seen.insert(e.ref);
    for (const Entry& e : result.second) seen.insert(e.ref);
    EXPECT_EQ(seen, refs);  // No entry lost or duplicated.
  }
}

TEST_P(SplitPolicyTest, SeparatesTwoObviousClusters) {
  // Two tight disjoint item blocks (intra-cluster distance 2, inter 6) must
  // end up in different groups under every policy.
  std::vector<Entry> entries;
  entries.push_back(MakeEntry({0, 1, 2}, 0, 64));
  entries.push_back(MakeEntry({0, 1, 3}, 1, 64));
  entries.push_back(MakeEntry({0, 2, 3}, 2, 64));
  entries.push_back(MakeEntry({1, 2, 3}, 3, 64));
  entries.push_back(MakeEntry({40, 41, 42}, 100, 64));
  entries.push_back(MakeEntry({40, 41, 43}, 101, 64));
  entries.push_back(MakeEntry({40, 42, 43}, 102, 64));
  entries.push_back(MakeEntry({41, 42, 43}, 103, 64));
  const SplitResult result = SplitEntries(std::move(entries), GetParam(), 3, 64);
  auto side = [](const Entry& e) { return e.ref < 100 ? 0 : 1; };
  for (const auto& group : {result.first, result.second}) {
    ASSERT_FALSE(group.empty());
    const int expected = side(group.front());
    for (const Entry& e : group) EXPECT_EQ(side(e), expected);
  }
}

TEST_P(SplitPolicyTest, MinimumInputOfTwo) {
  std::vector<Entry> entries;
  entries.push_back(MakeEntry({1, 2}, 0, 64));
  entries.push_back(MakeEntry({5, 6}, 1, 64));
  const SplitResult result =
      SplitEntries(std::move(entries), GetParam(), 1, 64);
  EXPECT_EQ(result.first.size(), 1u);
  EXPECT_EQ(result.second.size(), 1u);
}

TEST_P(SplitPolicyTest, IdenticalSignaturesStillBalance) {
  std::vector<Entry> entries;
  for (uint32_t i = 0; i < 10; ++i) {
    entries.push_back(MakeEntry({3, 4, 5}, i, 64));
  }
  const SplitResult result =
      SplitEntries(std::move(entries), GetParam(), 4, 64);
  EXPECT_GE(result.first.size(), 4u);
  EXPECT_GE(result.second.size(), 4u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SplitPolicyTest,
                         ::testing::Values(SplitPolicy::kLinear,
                                           SplitPolicy::kQuadratic,
                                           SplitPolicy::kAverage,
                                           SplitPolicy::kMinimum),
                         [](const auto& info) {
                           return SplitPolicyName(info.param);
                         });

// ---------------------------------------------------------------------------
// Tree construction invariants.
// ---------------------------------------------------------------------------

TEST(SgTreeTest, EmptyTree) {
  SgTree tree(SmallOptions());
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.node_count(), 0u);
  const TreeReport report = CheckTree(tree);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(SgTreeTest, SingleInsert) {
  SgTree tree(SmallOptions());
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 5, 7}, 100), 42);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  const Node& root = tree.GetNodeNoCharge(tree.root());
  EXPECT_TRUE(root.IsLeaf());
  ASSERT_EQ(root.Count(), 1u);
  EXPECT_EQ(root.entries[0].ref, 42u);
}

TEST(SgTreeTest, RootSplitsGrowHeight) {
  SgTree tree(SmallOptions());
  Rng rng(66);
  for (uint64_t i = 0; i < 9; ++i) {  // Capacity 8: the 9th forces a split.
    tree.Insert(RandomSignature(rng, 100, 0.1), i);
  }
  EXPECT_EQ(tree.height(), 2u);
  const TreeReport report = CheckTree(tree);
  EXPECT_TRUE(report.ok) << report.message;
}

class TreeInvariantTest
    : public ::testing::TestWithParam<std::tuple<SplitPolicy,
                                                 ChooseSubtreePolicy>> {};

TEST_P(TreeInvariantTest, ThousandInsertsKeepInvariants) {
  SgTreeOptions options = SmallOptions(200);
  options.split_policy = std::get<0>(GetParam());
  options.choose_policy = std::get<1>(GetParam());
  SgTree tree(options);
  const Dataset dataset = ClusteredDataset(77, 1000, 200, 12, 10, 3);
  for (const Transaction& txn : dataset.transactions) {
    tree.Insert(txn);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GE(tree.height(), 3u);
  const TreeReport report = CheckTree(tree);
  EXPECT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.leaf_entries, 1000u);
  // 40% minimum fill must hold on average with margin.
  EXPECT_GE(report.avg_utilization, 0.4);
}

INSTANTIATE_TEST_SUITE_P(
    PolicyMatrix, TreeInvariantTest,
    ::testing::Combine(::testing::Values(SplitPolicy::kLinear,
                                         SplitPolicy::kQuadratic,
                                         SplitPolicy::kAverage,
                                         SplitPolicy::kMinimum),
                       ::testing::Values(ChooseSubtreePolicy::kMinEnlargement,
                                         ChooseSubtreePolicy::kMinOverlap)),
    [](const auto& info) {
      return SplitPolicyName(std::get<0>(info.param)) + "_" +
             ChooseSubtreePolicyName(std::get<1>(info.param));
    });

TEST(SgTreeTest, DirectorySignaturesCoverEveryInsertedTransaction) {
  SgTree tree(SmallOptions(150));
  Rng rng(88);
  std::vector<Signature> inserted;
  for (uint64_t i = 0; i < 300; ++i) {
    Signature sig = RandomSignature(rng, 150, 0.08);
    if (sig.Empty()) sig.Set(0);
    tree.Insert(sig, i);
    inserted.push_back(std::move(sig));
  }
  const Node& root = tree.GetNodeNoCharge(tree.root());
  const Signature root_cover = root.UnionSignature(150);
  for (const Signature& sig : inserted) {
    EXPECT_TRUE(root_cover.Contains(sig));
  }
}

TEST(SgTreeTest, ClusteredDataProducesSmallerAreasThanShuffledClusters) {
  // Sanity of the quality goal: with the clustering split, leaf-level
  // directory areas on clustered data stay far below the dictionary size.
  SgTreeOptions options = SmallOptions(300);
  options.max_entries = 16;
  SgTree tree(options);
  const Dataset dataset = ClusteredDataset(99, 800, 300, 8, 12, 2);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const TreeReport report = CheckTree(tree);
  ASSERT_TRUE(report.ok) << report.message;
  ASSERT_GE(report.avg_entry_area.size(), 2u);
  // Level-1 entries cover whole leaves; on well-clustered data their area
  // stays near the cluster footprint (~12-25 bits), not the full 300.
  EXPECT_LT(report.avg_entry_area[1], 150.0);
}

TEST(SgTreeTest, NodeCountTracksAllocations) {
  SgTree tree(SmallOptions());
  Rng rng(111);
  for (uint64_t i = 0; i < 200; ++i) {
    tree.Insert(RandomSignature(rng, 100, 0.1), i);
  }
  const TreeReport report = CheckTree(tree);
  ASSERT_TRUE(report.ok) << report.message;
  EXPECT_EQ(report.node_count, tree.node_count());
  EXPECT_EQ(tree.LiveNodes().size(), tree.node_count());
}

TEST(SgTreeTest, InsertsChargeBufferPool) {
  SgTree tree(SmallOptions());
  Rng rng(112);
  for (uint64_t i = 0; i < 100; ++i) {
    tree.Insert(RandomSignature(rng, 100, 0.1), i);
  }
  EXPECT_GT(tree.io_stats().page_accesses, 0u);
  EXPECT_GT(tree.io_stats().page_writes, 0u);
}

TEST(SgTreeTest, DuplicateSignaturesSupported) {
  SgTree tree(SmallOptions());
  const Signature sig =
      Signature::FromItems(std::vector<uint32_t>{1, 2, 3}, 100);
  for (uint64_t i = 0; i < 50; ++i) tree.Insert(sig, i);
  EXPECT_EQ(tree.size(), 50u);
  const TreeReport report = CheckTree(tree);
  EXPECT_TRUE(report.ok) << report.message;
}

}  // namespace
}  // namespace sgtree
