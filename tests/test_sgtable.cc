#include "sgtable/sg_table.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/quest_generator.h"
#include "sgtable/cooccurrence.h"
#include "sgtable/item_clustering.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;

// ---------------------------------------------------------------------------
// Co-occurrence matrix.
// ---------------------------------------------------------------------------

Dataset TinyDataset() {
  // Figure 1 of the paper: S = {a..g} as items 0..6.
  Dataset dataset;
  dataset.num_items = 7;
  dataset.transactions = {
      {1, {2, 3}},           // T1 = {c, d}
      {2, {0, 1, 2}},        // T2 = {a, b, c}
      {3, {0, 1, 4}},        // T3 = {a, b, e}
      {4, {1, 3, 5, 6}},     // T4 = {b, d, f, g}
      {5, {0, 1, 2, 3, 4}},  // T5 = {a, b, c, d, e}
      {6, {1, 4, 5}},        // T6 = {b, e, f}
  };
  return dataset;
}

TEST(CooccurrenceTest, CountsMatchManualTally) {
  const Dataset dataset = TinyDataset();
  CooccurrenceMatrix matrix(dataset);
  EXPECT_EQ(matrix.num_items(), 7u);
  EXPECT_EQ(matrix.transactions_scanned(), 6u);
  // a & b co-occur in T2, T3, T5.
  EXPECT_EQ(matrix.Count(0, 1), 3u);
  EXPECT_EQ(matrix.Count(1, 0), 3u);  // Symmetric.
  // c & d co-occur in T1, T5.
  EXPECT_EQ(matrix.Count(2, 3), 2u);
  // f & g co-occur in T4 only.
  EXPECT_EQ(matrix.Count(5, 6), 1u);
  // a & g never co-occur.
  EXPECT_EQ(matrix.Count(0, 6), 0u);
}

TEST(CooccurrenceTest, SupportOnDiagonal) {
  const Dataset dataset = TinyDataset();
  CooccurrenceMatrix matrix(dataset);
  EXPECT_EQ(matrix.Support(1), 5u);  // b appears in T2..T6.
  EXPECT_EQ(matrix.Count(1, 1), 5u);
  EXPECT_EQ(matrix.Support(6), 1u);
}

TEST(CooccurrenceTest, SamplingCapRespected) {
  const Dataset dataset = TinyDataset();
  CooccurrenceMatrix matrix(dataset, 2);
  EXPECT_EQ(matrix.transactions_scanned(), 2u);
  EXPECT_EQ(matrix.Count(0, 1), 1u);  // Only T1, T2 scanned.
}

// ---------------------------------------------------------------------------
// Item clustering.
// ---------------------------------------------------------------------------

TEST(ItemClusteringTest, GroupsCorrelatedItems) {
  // Three planted item blocks that always co-occur.
  Dataset dataset;
  dataset.num_items = 9;
  Rng rng(1);
  for (uint64_t t = 0; t < 300; ++t) {
    const uint32_t block = static_cast<uint32_t>(rng.UniformInt(3));
    dataset.transactions.push_back(
        {t, {block * 3, block * 3 + 1, block * 3 + 2}});
  }
  CooccurrenceMatrix matrix(dataset);
  ItemClusteringOptions options;
  options.num_signatures = 3;
  options.critical_mass_fraction = 1.0;  // Effectively off.
  const auto groups = ClusterItems(matrix, options);
  ASSERT_EQ(groups.size(), 3u);
  std::set<std::vector<ItemId>> expected = {
      {0, 1, 2}, {3, 4, 5}, {6, 7, 8}};
  std::set<std::vector<ItemId>> actual;
  for (const auto& group : groups) actual.insert(group.items);
  EXPECT_EQ(actual, expected);
}

TEST(ItemClusteringTest, GroupsAreDisjoint) {
  const Dataset dataset = ClusteredDataset(2, 500, 120, 8, 10, 2);
  CooccurrenceMatrix matrix(dataset);
  ItemClusteringOptions options;
  options.num_signatures = 10;
  const auto groups = ClusterItems(matrix, options);
  EXPECT_LE(groups.size(), 10u);
  std::set<ItemId> seen;
  for (const auto& group : groups) {
    EXPECT_FALSE(group.items.empty());
    for (ItemId item : group.items) {
      EXPECT_TRUE(seen.insert(item).second) << "item in two groups";
    }
  }
}

TEST(ItemClusteringTest, CriticalMassFreezesHeavyClusters) {
  // With a tiny critical mass every cluster freezes almost immediately, so
  // groups stay small; with it off the groups grow larger.
  const Dataset dataset = ClusteredDataset(3, 500, 60, 4, 12, 1);
  CooccurrenceMatrix matrix(dataset);
  ItemClusteringOptions tight;
  tight.num_signatures = 8;
  tight.critical_mass_fraction = 0.01;
  ItemClusteringOptions loose = tight;
  loose.critical_mass_fraction = 1.0;
  const auto tight_groups = ClusterItems(matrix, tight);
  const auto loose_groups = ClusterItems(matrix, loose);
  size_t tight_max = 0;
  size_t loose_max = 0;
  for (const auto& group : tight_groups) {
    tight_max = std::max(tight_max, group.items.size());
  }
  for (const auto& group : loose_groups) {
    loose_max = std::max(loose_max, group.items.size());
  }
  EXPECT_LE(tight_max, loose_max);
}

TEST(ItemClusteringTest, NeverExceedsRequestedCount) {
  const Dataset dataset = ClusteredDataset(4, 300, 100, 6, 8, 2);
  CooccurrenceMatrix matrix(dataset);
  for (uint32_t k : {1u, 4u, 16u, 64u}) {
    ItemClusteringOptions options;
    options.num_signatures = k;
    EXPECT_LE(ClusterItems(matrix, options).size(), k);
  }
}

// ---------------------------------------------------------------------------
// SG-table construction and hashing.
// ---------------------------------------------------------------------------

SgTableOptions SmallTableOptions() {
  SgTableOptions options;
  options.clustering.num_signatures = 8;
  options.activation_threshold = 2;
  return options;
}

TEST(SgTableTest, HashesEveryTransaction) {
  const Dataset dataset = ClusteredDataset(5, 800, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  EXPECT_EQ(table.size(), 800u);
  EXPECT_GT(table.occupied_buckets(), 1u);
  size_t total = 0;
  (void)total;
  EXPECT_LE(table.vertical_signatures().size(), 8u);
}

TEST(SgTableTest, ActivationCodeMatchesDefinition) {
  const Dataset dataset = ClusteredDataset(6, 400, 150, 8, 10, 2);
  SgTableOptions options = SmallTableOptions();
  SgTable table(dataset, options);
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const Signature sig = testing::RandomSignature(rng, 150, 0.08);
    const uint64_t code = table.ActivationCode(sig);
    for (size_t i = 0; i < table.vertical_signatures().size(); ++i) {
      const Signature group = Signature::FromItems(
          table.vertical_signatures()[i].items, 150);
      const bool activated =
          Signature::IntersectCount(sig, group) >= 2;  // theta = 2.
      EXPECT_EQ(((code >> i) & 1) != 0, activated);
    }
  }
}

TEST(SgTableTest, PaperFigure1Activation) {
  // Figure 1: groups A={a,e}, B={c,d}, C={b,f,g}, theta=2.
  // T5 = {a,b,c,d,e} activates A (a,e) and B (c,d) but not C (only b).
  Dataset dataset = TinyDataset();
  SgTableOptions options;
  options.activation_threshold = 2;
  options.clustering.num_signatures = 3;
  SgTable table(dataset, options);
  // Build the activation by hand against the paper's groups rather than the
  // learned ones: use ActivationCode only for learned groups; here we just
  // verify T1 = {c,d} lands in a different bucket than T5 = {a,b,c,d,e}
  // when their activations differ. The core check: identical transactions
  // share a bucket.
  const Signature t1 = Signature::FromItems(std::vector<uint32_t>{2, 3}, 7);
  const Signature t1_dup =
      Signature::FromItems(std::vector<uint32_t>{2, 3}, 7);
  EXPECT_EQ(table.ActivationCode(t1), table.ActivationCode(t1_dup));
}

TEST(SgTableTest, InsertAddsToExistingBuckets) {
  const Dataset dataset = ClusteredDataset(8, 300, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  const size_t before = table.size();
  Transaction extra;
  extra.tid = 99999;
  extra.items = dataset.transactions[0].items;
  table.Insert(extra);
  EXPECT_EQ(table.size(), before + 1);
  // The new transaction must now be the 0-distance NN of itself.
  const Signature q = Signature::FromItems(extra.items, 150);
  EXPECT_DOUBLE_EQ(table.Nearest(q).distance, 0.0);
}

// ---------------------------------------------------------------------------
// Bucket bound soundness and search exactness — the crux of the baseline.
// ---------------------------------------------------------------------------

TEST(SgTableTest, BucketBoundIsSound) {
  const Dataset dataset = ClusteredDataset(9, 600, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  Rng rng(10);
  for (int trial = 0; trial < 30; ++trial) {
    const Signature q = testing::RandomSignature(rng, 150, 0.08);
    // For every transaction: its distance must be >= its bucket's bound.
    for (const Transaction& txn : dataset.transactions) {
      const Signature sig = Signature::FromItems(txn.items, 150);
      const uint64_t code = table.ActivationCode(sig);
      EXPECT_LE(table.BucketBound(q, code),
                Distance(q, sig, Metric::kHamming))
          << "tid " << txn.tid;
    }
  }
}

TEST(SgTableTest, NearestMatchesLinearScan) {
  const Dataset dataset = ClusteredDataset(11, 900, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  LinearScan scan(dataset);
  Rng rng(12);
  for (int q = 0; q < 40; ++q) {
    Signature query = testing::RandomSignature(rng, 150, 0.07);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(table.Nearest(query).distance,
                     scan.Nearest(query).distance);
  }
}

TEST(SgTableTest, KNearestMatchesLinearScan) {
  const Dataset dataset = ClusteredDataset(13, 700, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  LinearScan scan(dataset);
  Rng rng(14);
  for (uint32_t k : {1u, 5u, 25u}) {
    for (int q = 0; q < 15; ++q) {
      const Signature query = testing::RandomSignature(rng, 150, 0.07);
      const auto expected = scan.KNearest(query, k);
      const auto actual = table.KNearest(query, k);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
      }
    }
  }
}

TEST(SgTableTest, RangeMatchesLinearScan) {
  const Dataset dataset = ClusteredDataset(15, 700, 150, 8, 10, 2);
  SgTable table(dataset, SmallTableOptions());
  LinearScan scan(dataset);
  Rng rng(16);
  for (double epsilon : {2.0, 6.0, 12.0}) {
    for (int q = 0; q < 10; ++q) {
      const Signature query = testing::RandomSignature(rng, 150, 0.07);
      const auto expected = scan.Range(query, epsilon);
      const auto actual = table.Range(query, epsilon);
      ASSERT_EQ(actual.size(), expected.size()) << "epsilon=" << epsilon;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].tid, expected[i].tid);
      }
    }
  }
}

TEST(SgTableTest, QuestWorkloadExact) {
  QuestOptions qopt;
  qopt.num_transactions = 2000;
  qopt.num_items = 300;
  qopt.num_patterns = 120;
  qopt.seed = 17;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  SgTableOptions options = SmallTableOptions();
  options.clustering.num_signatures = 10;
  SgTable table(dataset, options);
  LinearScan scan(dataset);
  for (const Transaction& q : gen.GenerateQueries(25)) {
    const Signature query = Signature::FromItems(q.items, 300);
    EXPECT_DOUBLE_EQ(table.Nearest(query).distance,
                     scan.Nearest(query).distance);
  }
}

TEST(SgTableTest, PruningSkipsBuckets) {
  const Dataset dataset = ClusteredDataset(18, 2000, 150, 8, 10, 1);
  SgTable table(dataset, SmallTableOptions());
  QueryStats stats;
  // Query near an actual transaction: close NN means strong pruning.
  const Signature query =
      Signature::FromItems(dataset.transactions[0].items, 150);
  table.Nearest(query, &stats);
  EXPECT_LT(stats.transactions_compared, dataset.size());
  EXPECT_GT(stats.random_ios, 0u);
}

TEST(SgTableTest, ThetaOneActivatesOnAnyOverlap) {
  const Dataset dataset = ClusteredDataset(19, 300, 150, 8, 10, 2);
  SgTableOptions options = SmallTableOptions();
  options.activation_threshold = 1;
  SgTable table(dataset, options);
  LinearScan scan(dataset);
  Rng rng(20);
  for (int q = 0; q < 20; ++q) {
    const Signature query = testing::RandomSignature(rng, 150, 0.07);
    EXPECT_DOUBLE_EQ(table.Nearest(query).distance,
                     scan.Nearest(query).distance);
  }
}

TEST(SgTableTest, EmptyDataset) {
  Dataset dataset;
  dataset.num_items = 50;
  SgTable table(dataset, SmallTableOptions());
  EXPECT_EQ(table.size(), 0u);
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, 50);
  EXPECT_TRUE(table.KNearest(q, 3).empty());
  EXPECT_TRUE(table.Range(q, 5).empty());
}

}  // namespace
}  // namespace sgtree
