// Tests for the parallel query engine and the concurrent storage layer:
// the flat-array LRU against a reference model, the sharded pool's lock
// striping and stats merging, and the QueryExecutor's central promise —
// parallel batches are byte-identical to the serial path for every query
// type and metric. The stress tests at the bottom are the ThreadSanitizer
// targets (see the tsan CI job).

#include "exec/query_executor.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <iterator>
#include <list>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "exec/index_backend.h"
#include "common/rng.h"
#include "common/sync.h"
#include "inverted/inverted_index.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

// ---------------------------------------------------------------------------
// Flat-array LRU vs a straightforward std::list reference model.
// ---------------------------------------------------------------------------

/// The obviously-correct LRU the BufferPool used to be: a recency list plus
/// hit/miss counters. The flat intrusive rewrite must be indistinguishable.
class ReferenceLru {
 public:
  explicit ReferenceLru(uint32_t capacity) : capacity_(capacity) {}

  bool Touch(PageId id) {
    auto it = std::find(lru_.begin(), lru_.end(), id);
    if (it != lru_.end()) {
      lru_.erase(it);
      lru_.push_front(id);
      ++hits_;
      return true;
    }
    ++misses_;
    if (capacity_ == 0) return false;
    if (lru_.size() == capacity_) lru_.pop_back();
    lru_.push_front(id);
    return false;
  }

  void TouchWrite(PageId id) {
    // Same residency effect as Touch, but writes are not classified as
    // buffer hits or random I/Os (matching BufferPool::TouchWrite).
    auto it = std::find(lru_.begin(), lru_.end(), id);
    if (it != lru_.end()) {
      lru_.erase(it);
      lru_.push_front(id);
      return;
    }
    if (capacity_ == 0) return;
    if (lru_.size() == capacity_) lru_.pop_back();
    lru_.push_front(id);
  }

  void Evict(PageId id) {
    auto it = std::find(lru_.begin(), lru_.end(), id);
    if (it != lru_.end()) lru_.erase(it);
  }

  void Clear() { lru_.clear(); }

  size_t resident() const { return lru_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  uint32_t capacity_;
  std::list<PageId> lru_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

TEST(BufferPoolModelTest, RandomOpsMatchReferenceModel) {
  for (uint32_t capacity : {0u, 1u, 2u, 7u, 64u}) {
    BufferPool pool(capacity);
    ReferenceLru model(capacity);
    Rng rng(42 + capacity);
    for (int op = 0; op < 20000; ++op) {
      const auto id = static_cast<PageId>(rng.UniformInt(100));
      const auto action = rng.UniformInt(100);
      if (action < 80) {
        ASSERT_EQ(pool.Touch(id), model.Touch(id))
            << "capacity=" << capacity << " op=" << op << " page=" << id;
      } else if (action < 90) {
        pool.Evict(id);
        model.Evict(id);
      } else if (action < 95) {
        pool.TouchWrite(id);
        model.TouchWrite(id);
      } else {
        pool.Clear();
        model.Clear();
      }
      ASSERT_EQ(pool.ResidentPages(), model.resident());
    }
    EXPECT_EQ(pool.stats().buffer_hits, model.hits());
  }
}

TEST(BufferPoolModelTest, ResizeKeepsMostRecentAndMatchesModelAfter) {
  BufferPool pool(32);
  ReferenceLru model(8);
  for (PageId id = 0; id < 32; ++id) pool.Touch(id);
  pool.Resize(8);
  // Pages 24..31 survive (most recent 8); re-touching them must all hit.
  for (PageId id = 24; id < 32; ++id) {
    model.Touch(id);  // Model starts empty: prime it to the same state.
  }
  ASSERT_EQ(pool.ResidentPages(), 8u);
  Rng rng(7);
  for (int op = 0; op < 5000; ++op) {
    const auto id = static_cast<PageId>(rng.UniformInt(48));
    ASSERT_EQ(pool.Touch(id), model.Touch(id)) << "op=" << op;
  }
}

// ---------------------------------------------------------------------------
// ShardedBufferPool.
// ---------------------------------------------------------------------------

TEST(ShardedBufferPoolTest, SingleThreadBehavesLikeLruPerShard) {
  ShardedBufferPool pool(64, 4);
  // A page is resident after a touch and hits on re-touch.
  EXPECT_FALSE(pool.Touch(17));
  EXPECT_TRUE(pool.Touch(17));
  const IoStats merged = pool.StatsSnapshot();
  EXPECT_EQ(merged.random_ios, 1u);
  EXPECT_EQ(merged.buffer_hits, 1u);
  EXPECT_EQ(pool.ResidentPages(), 1u);
  pool.Evict(17);
  EXPECT_EQ(pool.ResidentPages(), 0u);
  EXPECT_FALSE(pool.Touch(17));
  pool.Clear();
  EXPECT_EQ(pool.ResidentPages(), 0u);
  // Stats survive Clear, matching BufferPool semantics.
  EXPECT_EQ(pool.StatsSnapshot().random_ios, 2u);
  pool.ResetStats();
  EXPECT_EQ(pool.StatsSnapshot().random_ios, 0u);
}

TEST(ShardedBufferPoolTest, CapacityIsDistributedAcrossShards) {
  // 10 frames over 4 shards: 3+3+2+2. Whatever the distribution, the pool
  // as a whole must never hold more than 10 pages.
  ShardedBufferPool pool(10, 4);
  for (PageId id = 0; id < 1000; ++id) pool.Touch(id);
  EXPECT_LE(pool.ResidentPages(), 10u);
  EXPECT_GT(pool.ResidentPages(), 0u);
}

TEST(ShardedBufferPoolTest, ZeroShardsClampsToOne) {
  ShardedBufferPool pool(8, 0);
  EXPECT_FALSE(pool.Touch(1));
  EXPECT_TRUE(pool.Touch(1));
}

TEST(ShardedBufferPoolTest, ConcurrentTouchesLoseNoStats) {
  // Every touch is classified as exactly one hit or miss; with all threads
  // hammering the same small id range, hits + misses must equal the total
  // number of touches regardless of interleaving. Run under TSAN this also
  // exercises the per-shard locking.
  ShardedBufferPool pool(16, 4);
  constexpr int kThreads = 8;
  constexpr int kTouchesPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kTouchesPerThread; ++i) {
        pool.Touch(static_cast<PageId>(rng.UniformInt(64)));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const IoStats merged = pool.StatsSnapshot();
  EXPECT_EQ(merged.random_ios + merged.buffer_hits,
            static_cast<uint64_t>(kThreads) * kTouchesPerThread);
  EXPECT_LE(pool.ResidentPages(), 16u);
}

// ---------------------------------------------------------------------------
// QueryExecutor: parallel == serial, byte for byte.
// ---------------------------------------------------------------------------

struct ExecFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::vector<BatchQuery> batch;
};

ExecFixture MakeExecFixture(uint64_t seed, Metric metric,
                            uint32_t num_queries = 60) {
  ExecFixture f;
  f.dataset = ClusteredDataset(seed, 900, 200, 8, 10, 3);
  SgTreeOptions options;
  options.num_bits = 200;
  options.max_entries = 10;
  options.metric = metric;
  f.tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);

  Rng rng(seed ^ 0x5eed);
  const QueryType kTypes[] = {QueryType::kKnn,         QueryType::kBestFirstKnn,
                              QueryType::kRange,       QueryType::kContainment,
                              QueryType::kExact,       QueryType::kSubset};
  for (uint32_t i = 0; i < num_queries; ++i) {
    BatchQuery q;
    q.type = kTypes[i % std::size(kTypes)];
    Signature sig = RandomSignature(rng, 200, 0.04);
    if (sig.Empty()) sig.Set(3);
    // Exact queries only make sense for signatures actually in the data;
    // reuse a transaction's signature for some of them.
    if (q.type == QueryType::kExact && i % 2 == 0) {
      const auto& txn =
          f.dataset.transactions[rng.UniformInt(f.dataset.size())];
      sig = Signature::FromItems(txn.items, 200);
    }
    q.query = std::move(sig);
    q.k = 1 + static_cast<uint32_t>(rng.UniformInt(10));
    q.epsilon = metric == Metric::kHamming ? 6.0 : 0.4;
    f.batch.push_back(std::move(q));
  }
  return f;
}

void ExpectBatchesIdentical(const std::vector<QueryResult>& a,
                            const std::vector<QueryResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].neighbors, b[i].neighbors) << "query " << i;
    EXPECT_EQ(a[i].ids, b[i].ids) << "query " << i;
    EXPECT_EQ(a[i].stats.nodes_accessed, b[i].stats.nodes_accessed)
        << "query " << i;
    EXPECT_EQ(a[i].stats.random_ios, b[i].stats.random_ios) << "query " << i;
    EXPECT_EQ(a[i].stats.transactions_compared,
              b[i].stats.transactions_compared)
        << "query " << i;
    EXPECT_EQ(a[i].stats.bounds_computed, b[i].stats.bounds_computed)
        << "query " << i;
    EXPECT_EQ(a[i].trace, b[i].trace) << "query " << i;
  }
}

class ExecutorDeterminismTest : public ::testing::TestWithParam<Metric> {};

TEST_P(ExecutorDeterminismTest, ParallelMatchesSerialAllQueryTypes) {
  const ExecFixture f = MakeExecFixture(11, GetParam());
  const auto serial = QueryExecutor::RunSerial(*f.tree, f.batch, 16);
  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    QueryExecutorOptions options;
    options.num_threads = threads;
    options.buffer_pages = 16;
    QueryExecutor executor(options);
    ASSERT_EQ(executor.num_threads(), threads);
    const auto parallel = executor.Run(SgTreeBackend(*f.tree), f.batch);
    ExpectBatchesIdentical(parallel, serial);
  }
}

TEST_P(ExecutorDeterminismTest, RepeatedRunsAreIdentical) {
  const ExecFixture f = MakeExecFixture(12, GetParam());
  QueryExecutorOptions options;
  options.num_threads = 4;
  options.buffer_pages = 16;
  QueryExecutor executor(options);
  const auto first = executor.Run(SgTreeBackend(*f.tree), f.batch);
  const auto second = executor.Run(SgTreeBackend(*f.tree), f.batch);
  ExpectBatchesIdentical(first, second);
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, ExecutorDeterminismTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

TEST(ExecutorTest, MatchesDirectSearchCalls) {
  ExecFixture f = MakeExecFixture(13, Metric::kHamming, 24);
  QueryExecutor executor({.num_threads = 3, .buffer_pages = 16});
  const auto results = executor.Run(SgTreeBackend(*f.tree), f.batch);
  ASSERT_EQ(results.size(), f.batch.size());
  for (size_t i = 0; i < f.batch.size(); ++i) {
    const BatchQuery& q = f.batch[i];
    f.tree->ResetIo();
    f.tree->buffer_pool().Resize(16);
    f.tree->buffer_pool().Clear();
    switch (q.type) {
      case QueryType::kKnn:
        EXPECT_EQ(results[i].neighbors,
                  DfsKNearest(*f.tree, q.query, q.k,
                              f.tree->OwnPoolContext()));
        break;
      case QueryType::kBestFirstKnn:
        EXPECT_EQ(results[i].neighbors,
                  BestFirstKNearest(*f.tree, q.query, q.k,
                                    f.tree->OwnPoolContext()));
        break;
      case QueryType::kRange:
        EXPECT_EQ(results[i].neighbors,
                  RangeSearch(*f.tree, q.query, q.epsilon,
                              f.tree->OwnPoolContext()));
        break;
      case QueryType::kContainment:
        EXPECT_EQ(results[i].ids,
                  ContainmentSearch(*f.tree, q.query,
                                    f.tree->OwnPoolContext()));
        break;
      case QueryType::kExact:
        EXPECT_EQ(results[i].ids,
                  ExactSearch(*f.tree, q.query, f.tree->OwnPoolContext()));
        break;
      case QueryType::kSubset:
        EXPECT_EQ(results[i].ids,
                  SubsetSearch(*f.tree, q.query, f.tree->OwnPoolContext()));
        break;
    }
  }
}

TEST(ExecutorTest, BatchStatsEqualSumOfPerQueryStats) {
  const ExecFixture f = MakeExecFixture(14, Metric::kHamming);
  QueryExecutor executor({.num_threads = 4, .buffer_pages = 16});
  const auto results = executor.Run(SgTreeBackend(*f.tree), f.batch);
  QueryStats sum;
  for (const QueryResult& r : results) sum += r.stats;
  EXPECT_EQ(executor.batch_stats().nodes_accessed, sum.nodes_accessed);
  EXPECT_EQ(executor.batch_stats().random_ios, sum.random_ios);
  EXPECT_EQ(executor.batch_stats().transactions_compared,
            sum.transactions_compared);
  EXPECT_EQ(executor.batch_stats().bounds_computed, sum.bounds_computed);
}

TEST(ExecutorTest, BatchReportAggregatesPerQueryTraces) {
  const ExecFixture f = MakeExecFixture(16, Metric::kHamming);
  QueryExecutor executor({.num_threads = 4, .buffer_pages = 16});
  const auto results = executor.Run(SgTreeBackend(*f.tree), f.batch);

  QueryTrace sum;
  for (const QueryResult& r : results) sum += r.trace;
  const BatchReport& report = executor.last_batch_report();
  EXPECT_EQ(report.queries, f.batch.size());
  EXPECT_EQ(report.trace, sum);
  EXPECT_EQ(report.stats.nodes_accessed,
            executor.batch_stats().nodes_accessed);
  EXPECT_EQ(report.stats.random_ios, executor.batch_stats().random_ios);
  EXPECT_GT(report.wall_ms, 0.0);
  EXPECT_LE(report.p50_us, report.p95_us);
  EXPECT_LE(report.p95_us, report.p99_us);
  EXPECT_GT(report.p99_us, 0.0);

  // Every per-query trace is self-consistent and in lockstep with its
  // QueryStats, serial or parallel alike.
  for (size_t i = 0; i < results.size(); ++i) {
    TraceCheckOptions opts;
    const QueryType type = f.batch[i].type;
    opts.predicate = type != QueryType::kKnn &&
                     type != QueryType::kBestFirstKnn;
    EXPECT_EQ(CheckTraceInvariants(results[i].trace, opts), "")
        << "query " << i;
    EXPECT_EQ(results[i].trace.buffer_misses, results[i].stats.random_ios)
        << "query " << i;
    EXPECT_EQ(results[i].trace.nodes_visited(),
              results[i].stats.nodes_accessed)
        << "query " << i;
  }

  // The serial oracle produces the identical aggregate trace.
  const auto serial = QueryExecutor::RunSerial(*f.tree, f.batch, 16);
  QueryTrace serial_sum;
  for (const QueryResult& r : serial) serial_sum += r.trace;
  EXPECT_EQ(serial_sum, sum);
}

TEST(ExecutorTest, MetricsRegistryIsFedByEachBatch) {
  const ExecFixture f = MakeExecFixture(17, Metric::kHamming);
  obs::MetricsRegistry registry;
  QueryExecutorOptions options;
  options.num_threads = 4;
  options.buffer_pages = 16;
  options.metrics = &registry;
  QueryExecutor executor(options);
  executor.Run(SgTreeBackend(*f.tree), f.batch);

  const BatchReport& report = executor.last_batch_report();
  EXPECT_EQ(registry.GetCounter("exec.queries")->Value(), f.batch.size());
  EXPECT_EQ(registry.GetCounter("exec.nodes_visited")->Value(),
            report.trace.nodes_visited());
  EXPECT_EQ(registry.GetCounter("exec.random_ios")->Value(),
            report.stats.random_ios);
  EXPECT_EQ(registry.GetCounter("exec.signatures_tested")->Value(),
            report.trace.signatures_tested);
  EXPECT_EQ(registry.GetCounter("exec.subtrees_pruned")->Value(),
            report.trace.subtrees_pruned);
  EXPECT_EQ(registry.GetCounter("exec.candidates_verified")->Value(),
            report.trace.candidates_verified);
  EXPECT_EQ(registry.GetCounter("exec.results")->Value(),
            report.trace.results);
  EXPECT_EQ(registry.GetHistogram("exec.query_latency_us")->Count(),
            f.batch.size());

  // Counters are monotonic: a second batch doubles them.
  executor.Run(SgTreeBackend(*f.tree), f.batch);
  EXPECT_EQ(registry.GetCounter("exec.queries")->Value(),
            2 * f.batch.size());
  EXPECT_EQ(registry.GetHistogram("exec.query_latency_us")->Count(),
            2 * f.batch.size());
}

TEST(ExecutorTest, BatchReportCountsRejectedRequests) {
  ExecFixture f = MakeExecFixture(19, Metric::kHamming, 12);
  f.batch[2].type = QueryType::kKnn;
  f.batch[2].k = 0;  // Fails validation.
  f.batch[7].type = QueryType::kRange;
  f.batch[7].epsilon = -2.0;  // Fails validation.
  obs::MetricsRegistry registry;
  QueryExecutorOptions options;
  options.num_threads = 2;
  options.buffer_pages = 16;
  options.metrics = &registry;
  QueryExecutor executor(options);
  const auto results = executor.Run(SgTreeBackend(*f.tree), f.batch);
  EXPECT_FALSE(results[2].ok());
  EXPECT_FALSE(results[7].ok());
  const BatchReport& report = executor.last_batch_report();
  EXPECT_EQ(report.queries, f.batch.size());
  EXPECT_EQ(report.rejected, 2u);
  EXPECT_EQ(registry.GetCounter("exec.queries")->Value(), f.batch.size());
  EXPECT_EQ(registry.GetCounter("exec.rejected")->Value(), 2u);
  // Rejected queries are untimed: only the valid ones feed the histogram.
  EXPECT_EQ(registry.GetHistogram("exec.query_latency_us")->Count(),
            f.batch.size() - 2);
}

TEST(ExecutorTest, EmptyBatchAndEmptyTree) {
  QueryExecutor executor({.num_threads = 2});
  SgTreeOptions options;
  options.num_bits = 64;
  SgTree empty_tree(options);
  EXPECT_TRUE(executor.Run(SgTreeBackend(empty_tree), {}).empty());
  BatchQuery q;
  q.query = Signature(64);
  q.query.Set(1);
  const auto results = executor.Run(SgTreeBackend(empty_tree), {q});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_TRUE(results[0].neighbors.empty());
}

TEST(ExecutorTest, SharedShardedPoolReturnsSameValues) {
  // With a shared pool, per-query I/O counts depend on scheduling, but the
  // query *values* must still match the serial oracle exactly.
  const ExecFixture f = MakeExecFixture(15, Metric::kHamming);
  const auto serial = QueryExecutor::RunSerial(*f.tree, f.batch, 16);
  QueryExecutorOptions options;
  options.num_threads = 4;
  options.buffer_pages = 64;
  options.pool_shards = 4;
  QueryExecutor executor(options);
  ASSERT_NE(executor.shared_pool(), nullptr);
  const auto parallel = executor.Run(SgTreeBackend(*f.tree), f.batch);
  ASSERT_EQ(parallel.size(), serial.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(parallel[i].neighbors, serial[i].neighbors) << "query " << i;
    EXPECT_EQ(parallel[i].ids, serial[i].ids) << "query " << i;
  }
}

TEST(ExecutorTest, ParallelForVisitsEachIndexExactlyOnce) {
  QueryExecutor executor({.num_threads = 4});
  constexpr size_t kN = 10000;
  std::vector<std::atomic<uint32_t>> visits(kN);
  executor.ParallelFor(kN, [&](size_t i, uint32_t worker_id) {
    ASSERT_LT(worker_id, executor.num_threads());
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(visits[i].load(), 1u) << "index " << i;
  }
}

TEST(ExecutorTest, ParallelApplyVisitsEachIndexExactlyOnce) {
  // Same contract as ParallelFor, through the devirtualized typed-body
  // path, across chunk policies: auto (0), per-item (1), and a chunk size
  // that does not divide the lane ranges evenly (7).
  for (uint32_t max_chunk : {0u, 1u, 7u}) {
    QueryExecutorOptions options;
    options.num_threads = 4;
    options.max_chunk = max_chunk;
    QueryExecutor executor(options);
    constexpr size_t kN = 10000;
    std::vector<std::atomic<uint32_t>> visits(kN);
    executor.ParallelApply(kN, [&](size_t i, uint32_t worker_id) {
      ASSERT_LT(worker_id, executor.num_threads());
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1u)
          << "index " << i << " max_chunk " << max_chunk;
    }
  }
}

TEST(ExecutorTest, ChunkPolicyDoesNotChangeAnswers) {
  // Chunked claiming and work stealing change WHICH lane runs a query, but
  // in private-pool mode every lane's pool starts from the same Clear()ed
  // state per query — so every chunk policy must be byte-identical to the
  // serial oracle, stats and traces included.
  const ExecFixture f = MakeExecFixture(18, Metric::kHamming);
  const auto serial = QueryExecutor::RunSerial(*f.tree, f.batch, 16);
  for (uint32_t max_chunk : {0u, 1u, 7u}) {
    for (uint32_t threads : {2u, 8u}) {
      QueryExecutorOptions options;
      options.num_threads = threads;
      options.buffer_pages = 16;
      options.max_chunk = max_chunk;
      QueryExecutor executor(options);
      const auto parallel = executor.Run(SgTreeBackend(*f.tree), f.batch);
      ExpectBatchesIdentical(parallel, serial);
    }
  }
}

TEST(ExecutorTest, SingleLaneRunsEntirelyOnCallingThread) {
  // num_threads = 1 means ZERO spawned workers: the calling thread is the
  // one lane, so batch execution must happen on this very thread.
  QueryExecutor executor({.num_threads = 1});
  EXPECT_EQ(executor.num_threads(), 1u);
  const std::thread::id caller = std::this_thread::get_id();
  size_t visited = 0;
  executor.ParallelApply(257, [&](size_t, uint32_t worker_id) {
    ASSERT_EQ(std::this_thread::get_id(), caller);
    ASSERT_EQ(worker_id, 0u);
    ++visited;  // Safe: single lane.
  });
  EXPECT_EQ(visited, 257u);
}

TEST(ExecutorTest, CallerParticipatesInMultiLaneRuns) {
  // The calling thread is always the last lane; with enough items its lane
  // range is non-empty, so at least one item must run on the caller.
  QueryExecutor executor({.num_threads = 4});
  const std::thread::id caller = std::this_thread::get_id();
  std::atomic<uint32_t> on_caller{0};
  executor.ParallelApply(4096, [&](size_t, uint32_t) {
    if (std::this_thread::get_id() == caller) {
      on_caller.fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_GT(on_caller.load(), 0u);
}

TEST(ExecutorTest, TableBatchMatchesDirectCalls) {
  const Dataset dataset = ClusteredDataset(21, 800, 150, 6, 9, 2);
  SgTableOptions topt;
  topt.clustering.num_signatures = 8;
  const SgTable table(dataset, topt);
  Rng rng(99);
  std::vector<BatchQuery> batch;
  for (int i = 0; i < 20; ++i) {
    BatchQuery q;
    q.type = i % 2 == 0 ? QueryType::kKnn : QueryType::kRange;
    q.query = RandomSignature(rng, 150, 0.05);
    if (q.query.Empty()) q.query.Set(0);
    q.k = 3;
    q.epsilon = 5.0;
    batch.push_back(std::move(q));
  }
  QueryExecutor executor({.num_threads = 4});
  const auto results = executor.Run(SgTableBackend(table), batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryStats stats;
    const auto expected =
        batch[i].type == QueryType::kKnn
            ? table.KNearest(batch[i].query, batch[i].k, &stats)
            : table.Range(batch[i].query, batch[i].epsilon, &stats);
    EXPECT_EQ(results[i].neighbors, expected) << "query " << i;
    EXPECT_EQ(results[i].stats.random_ios, stats.random_ios) << "query " << i;
  }
}

TEST(ExecutorTest, InvertedBatchMatchesDirectCalls) {
  const Dataset dataset = ClusteredDataset(22, 800, 150, 6, 9, 2);
  const InvertedIndex index(dataset);
  Rng rng(98);
  std::vector<BatchQuery> batch;
  const QueryType kTypes[] = {QueryType::kKnn, QueryType::kRange,
                              QueryType::kContainment, QueryType::kSubset};
  for (int i = 0; i < 20; ++i) {
    BatchQuery q;
    q.type = kTypes[i % std::size(kTypes)];
    q.query = RandomSignature(rng, 150, 0.03);
    if (q.query.Empty()) q.query.Set(0);
    q.k = 4;
    q.epsilon = 6.0;
    batch.push_back(std::move(q));
  }
  QueryExecutor executor({.num_threads = 4});
  const auto results = executor.Run(InvertedIndexBackend(index), batch);
  ASSERT_EQ(results.size(), batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const auto items = batch[i].query.ToItems();
    switch (batch[i].type) {
      case QueryType::kKnn:
        EXPECT_EQ(results[i].neighbors, index.KNearest(items, batch[i].k));
        break;
      case QueryType::kRange:
        EXPECT_EQ(results[i].neighbors,
                  index.Range(items, batch[i].epsilon));
        break;
      case QueryType::kContainment:
        EXPECT_EQ(results[i].ids, index.Containing(items));
        break;
      case QueryType::kSubset:
        EXPECT_EQ(results[i].ids, index.ContainedIn(items));
        break;
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// Stress: the ThreadSanitizer targets.
// ---------------------------------------------------------------------------

TEST(ExecutorStressTest, ManyThreadsSmallSharedPool) {
  // 8 workers against a deliberately tiny 2-shard pool: maximum lock
  // contention and constant eviction. Values must still match the oracle.
  const ExecFixture f = MakeExecFixture(31, Metric::kHamming, 120);
  const auto serial = QueryExecutor::RunSerial(*f.tree, f.batch, 4);
  QueryExecutorOptions options;
  options.num_threads = 8;
  options.buffer_pages = 4;
  options.pool_shards = 2;
  QueryExecutor executor(options);
  for (int round = 0; round < 3; ++round) {
    const auto parallel = executor.Run(SgTreeBackend(*f.tree), f.batch);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      ASSERT_EQ(parallel[i].neighbors, serial[i].neighbors)
          << "round " << round << " query " << i;
      ASSERT_EQ(parallel[i].ids, serial[i].ids)
          << "round " << round << " query " << i;
    }
  }
}

TEST(ExecutorStressTest, ManyThreadsPrivatePoolsRepeatedBatches) {
  const ExecFixture f = MakeExecFixture(32, Metric::kJaccard, 120);
  QueryExecutorOptions options;
  options.num_threads = 8;
  options.buffer_pages = 8;
  QueryExecutor executor(options);
  const auto first = executor.Run(SgTreeBackend(*f.tree), f.batch);
  for (int round = 0; round < 3; ++round) {
    const auto again = executor.Run(SgTreeBackend(*f.tree), f.batch);
    ExpectBatchesIdentical(again, first);
  }
}

TEST(ExecutorStressTest, SkewedWorkIsRebalancedByStealing) {
  // One lane's contiguous range holds nearly all the work: items in the
  // first quarter are ~1000x more expensive than the rest. Stealing must
  // still visit every index exactly once (TSAN checks the claim/steal CAS
  // protocol and the stolen-range installation for races).
  QueryExecutorOptions options;
  options.num_threads = 8;
  QueryExecutor executor(options);
  constexpr size_t kN = 2048;
  std::vector<std::atomic<uint32_t>> visits(kN);
  std::atomic<uint64_t> checksum{0};
  for (int round = 0; round < 3; ++round) {
    for (auto& v : visits) v.store(0, std::memory_order_relaxed);
    executor.ParallelApply(kN, [&](size_t i, uint32_t) {
      uint64_t acc = i;
      const int spins = i < kN / 4 ? 20000 : 20;
      for (int s = 0; s < spins; ++s) acc = acc * 6364136223846793005ULL + 1;
      checksum.fetch_add(acc | 1, std::memory_order_relaxed);
      visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(visits[i].load(), 1u) << "round " << round << " index " << i;
    }
  }
  EXPECT_NE(checksum.load(), 0u);
}

TEST(ExecutorStressTest, ExecutorsConstructedAndDestroyedRepeatedly) {
  // Start-up/shutdown races: workers parked on the epoch futex must see
  // the shutdown flag and exit; destruction joins everything.
  const ExecFixture f = MakeExecFixture(33, Metric::kHamming, 16);
  for (int round = 0; round < 10; ++round) {
    QueryExecutor executor(
        {.num_threads = 4, .buffer_pages = 8});
    const auto results = executor.Run(SgTreeBackend(*f.tree), f.batch);
    ASSERT_EQ(results.size(), f.batch.size());
  }
}

// ---------------------------------------------------------------------------
// Stress: the annotated sync wrappers (common/sync.h). This binary runs
// under TSAN in CI, so these tests check the wrappers' actual
// happens-before edges across real interleavings — the dynamic complement
// to the compile-time analysis, which only proves lock *discipline*.
// ---------------------------------------------------------------------------

// Minimal class written in the repo's annotation style: guarded field,
// EXCLUDES on public entry points, TryLock branch tracked by the analysis.
class LockedCounter {
 public:
  void Add(int n) SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    value_ += n;
  }

  bool TryAdd(int n) SGTREE_EXCLUDES(mu_) {
    if (!mu_.TryLock()) return false;
    value_ += n;
    mu_.Unlock();
    return true;
  }

  int value() const SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return value_;
  }

 private:
  mutable Mutex mu_;
  int value_ SGTREE_GUARDED_BY(mu_) = 0;
};

// Bounded queue driving both CondVar::Wait paths (full and empty) plus
// Signal hand-off under a deliberately tiny capacity.
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  void Push(int value) SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    mu_.AssertHeld();
    while (items_.size() >= capacity_) not_full_.Wait(&mu_);
    items_.push_back(value);
    not_empty_.Signal();
  }

  int Pop() SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    while (items_.empty()) not_empty_.Wait(&mu_);
    const int value = items_.front();
    items_.pop_front();
    not_full_.Signal();
    return value;
  }

 private:
  const size_t capacity_;
  Mutex mu_;
  CondVar not_empty_;
  CondVar not_full_;
  std::deque<int> items_ SGTREE_GUARDED_BY(mu_);
};

TEST(SyncWrapperStressTest, MutexLockSerializesWriters) {
  LockedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < 10000; ++i) counter.Add(1);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 80000);
}

TEST(SyncWrapperStressTest, TryLockStaysExclusiveUnderContention) {
  // Every writer retries failed TryLocks until its quota lands, so the
  // final count is exact iff TryLock never let two threads in at once.
  LockedCounter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&counter] {
      int done = 0;
      while (done < 2000) {
        if (counter.TryAdd(1)) ++done;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter.value(), 16000);
}

TEST(SyncWrapperStressTest, CondVarBoundedQueueHandsOffEveryItem) {
  BoundedQueue queue(4);  // Tiny: both Wait() loops run constantly.
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 2500;
  constexpr int kTotalItems = kProducers * kPerProducer;
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        queue.Push(p * kPerProducer + i);
      }
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&queue, &sum] {
      for (int i = 0; i < kTotalItems / kConsumers; ++i) {
        sum.fetch_add(queue.Pop(), std::memory_order_relaxed);
      }
    });
  }
  for (auto& th : threads) th.join();
  // Items were 0..kTotalItems-1, each popped exactly once.
  constexpr long long kExpected =
      static_cast<long long>(kTotalItems) * (kTotalItems - 1) / 2;
  EXPECT_EQ(sum.load(std::memory_order_relaxed), kExpected);
}

}  // namespace
}  // namespace sgtree
