// Tests for the unified query API (exec/query_api.h): boundary validation,
// the Execute() dispatch, and the IndexBackend adapters against the native
// entry points they wrap.

#include "exec/query_api.h"

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "exec/index_backend.h"
#include "exec/query_executor.h"
#include "inverted/inverted_index.h"
#include "sgtable/sg_table.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

constexpr uint32_t kBits = 120;

struct Fixture {
  Fixture() : dataset(ClusteredDataset(900, 500, kBits, 8, 10, 2)) {
    SgTreeOptions options;
    options.num_bits = kBits;
    options.max_entries = 8;
    tree = std::make_unique<SgTree>(options);
    for (const Transaction& txn : dataset.transactions) tree->Insert(txn);
    scan = std::make_unique<LinearScan>(dataset);
  }

  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<LinearScan> scan;
};

QueryRequest Request(QueryType type, const Signature& query, uint32_t k = 3,
                     double epsilon = 8.0) {
  QueryRequest request;
  request.type = type;
  request.query = query;
  request.k = k;
  request.epsilon = epsilon;
  return request;
}

// ---------------------------------------------------------------------------
// Boundary validation.
// ---------------------------------------------------------------------------

TEST(ValidateRequestTest, KnnRequiresPositiveK) {
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, kBits);
  for (QueryType type : {QueryType::kKnn, QueryType::kBestFirstKnn}) {
    EXPECT_FALSE(ValidateRequest(Request(type, q, 0)).empty());
    EXPECT_TRUE(ValidateRequest(Request(type, q, 1)).empty());
  }
}

TEST(ValidateRequestTest, RangeRequiresNonNegativeEpsilon) {
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, kBits);
  EXPECT_FALSE(
      ValidateRequest(Request(QueryType::kRange, q, 1, -0.5)).empty());
  EXPECT_FALSE(
      ValidateRequest(Request(QueryType::kRange, q, 1,
                              std::nan("")))
          .empty());
  EXPECT_TRUE(ValidateRequest(Request(QueryType::kRange, q, 1, 0.0)).empty());
}

// The messages must name the offending value — a rejection that does not
// say what was passed sends the caller to a debugger.
TEST(ValidateRequestTest, MessagesIncludeOffendingValue) {
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, kBits);
  for (QueryType type : {QueryType::kKnn, QueryType::kBestFirstKnn}) {
    const std::string message = ValidateRequest(Request(type, q, 0));
    EXPECT_NE(message.find("k must be > 0"), std::string::npos) << message;
    EXPECT_NE(message.find("got 0"), std::string::npos) << message;
  }
  const std::string neg =
      ValidateRequest(Request(QueryType::kRange, q, 1, -3.0));
  EXPECT_NE(neg.find("epsilon must be >= 0"), std::string::npos) << neg;
  EXPECT_NE(neg.find("got -3"), std::string::npos) << neg;
  const std::string frac =
      ValidateRequest(Request(QueryType::kRange, q, 1, -0.25));
  EXPECT_NE(frac.find("got -0.25"), std::string::npos) << frac;
  const std::string nan_message =
      ValidateRequest(Request(QueryType::kRange, q, 1, std::nan("")));
  EXPECT_NE(nan_message.find("got NaN"), std::string::npos) << nan_message;
}

TEST(ValidateRequestTest, IdQueriesIgnoreKAndEpsilon) {
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1}, kBits);
  for (QueryType type :
       {QueryType::kContainment, QueryType::kExact, QueryType::kSubset}) {
    EXPECT_TRUE(ValidateRequest(Request(type, q, 0, -1.0)).empty());
  }
}

TEST(ExecuteTest, InvalidRequestYieldsEmptyErrorResult) {
  Fixture f;
  const Signature q = Signature::FromItems(std::vector<uint32_t>{1, 2}, kBits);
  for (const QueryRequest& bad :
       {Request(QueryType::kKnn, q, 0), Request(QueryType::kRange, q, 1, -1)}) {
    const QueryResult result = Execute(SgTreeBackend(*f.tree), bad);
    EXPECT_FALSE(result.ok());
    EXPECT_TRUE(result.neighbors.empty());
    EXPECT_TRUE(result.ids.empty());
    // The backend never ran: no work was charged, nothing was timed.
    EXPECT_EQ(result.stats.nodes_accessed, 0u);
    EXPECT_EQ(result.trace.nodes_visited(), 0u);
    EXPECT_EQ(result.elapsed_us, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Adapter support matrix: Supports() is honest, and running an unsupported
// type through Execute yields an empty (non-error) result.
// ---------------------------------------------------------------------------

TEST(BackendSupportTest, MatrixMatchesDocumentedCapabilities) {
  Fixture f;
  SgTableOptions topt;
  const SgTable table(f.dataset, topt);
  const InvertedIndex inverted(f.dataset);

  const SgTreeBackend tree_backend(*f.tree);
  const SgTableBackend table_backend(table);
  const InvertedIndexBackend inverted_backend(inverted);
  const LinearScanBackend scan_backend(*f.scan);

  for (QueryType type :
       {QueryType::kKnn, QueryType::kBestFirstKnn, QueryType::kRange,
        QueryType::kContainment, QueryType::kExact, QueryType::kSubset}) {
    EXPECT_TRUE(tree_backend.Supports(type));
    const bool distance_type = type == QueryType::kKnn ||
                               type == QueryType::kBestFirstKnn ||
                               type == QueryType::kRange;
    EXPECT_EQ(table_backend.Supports(type), distance_type);
    EXPECT_EQ(inverted_backend.Supports(type), type != QueryType::kExact);
    EXPECT_EQ(scan_backend.Supports(type), type != QueryType::kExact);
  }

  // Unsupported type: empty result, not an error.
  const Signature q = Signature::FromItems(std::vector<uint32_t>{2, 5}, kBits);
  const QueryResult r =
      Execute(table_backend, Request(QueryType::kContainment, q));
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.ids.empty());
}

TEST(BackendSupportTest, ReasonsNameTheBackendAndTheAlternative) {
  Fixture f;
  SgTableOptions topt;
  const SgTable table(f.dataset, topt);
  const InvertedIndex inverted(f.dataset);

  const SgTableBackend table_backend(table);
  const InvertedIndexBackend inverted_backend(inverted);
  const LinearScanBackend scan_backend(*f.scan);

  EXPECT_EQ(table_backend.SupportReason(QueryType::kContainment),
            "sgtable indexes Hamming-distance buckets only; set predicates "
            "need the sgtree, inverted, or linear_scan backend");
  EXPECT_EQ(inverted_backend.SupportReason(QueryType::kExact),
            "the inverted file stores posting lists, not signatures; exact "
            "match needs the sgtree backend");
  EXPECT_EQ(scan_backend.SupportReason(QueryType::kExact),
            "the linear scan exposes no signature-equality entry point; "
            "exact match needs the sgtree backend");
  // Supported combos report an empty reason (the Supports() contract).
  EXPECT_EQ(table_backend.SupportReason(QueryType::kKnn), "");
  EXPECT_EQ(inverted_backend.SupportReason(QueryType::kSubset), "");
}

TEST(BackendSupportTest, JoinCapabilityColumn) {
  Fixture f;
  SgTableOptions topt;
  const SgTable table(f.dataset, topt);
  const InvertedIndex inverted(f.dataset);

  // Only tree-shaped backends can enumerate per-transaction item sets, so
  // only they qualify as collection-join inputs.
  EXPECT_EQ(SgTreeBackend(*f.tree).JoinInputReason(), "");
  EXPECT_EQ(SgTableBackend(table).JoinInputReason(),
            "sgtable stores signature buckets, not per-transaction item "
            "sets; join from an sgtree-backed index instead");
  EXPECT_EQ(InvertedIndexBackend(inverted).JoinInputReason(),
            "the inverted file stores per-item posting lists, not "
            "per-transaction item sets; join from an sgtree-backed index "
            "instead");
  // LinearScanBackend inherits the default refusal, which names it.
  EXPECT_EQ(LinearScanBackend(*f.scan).JoinInputReason(),
            "backend 'linear_scan' cannot enumerate per-transaction item "
            "sets; join from an sgtree-backed index instead");
}

// ---------------------------------------------------------------------------
// Execute() against the native entry points it replaces.
// ---------------------------------------------------------------------------

TEST(ExecuteTest, SgTreeBackendMatchesDirectCalls) {
  Fixture f;
  Rng rng(901);
  BufferPool pool(64);
  for (int trial = 0; trial < 10; ++trial) {
    const Signature q = RandomSignature(rng, kBits, 0.07);

    pool.Clear();
    auto knn = Execute(SgTreeBackend(*f.tree), Request(QueryType::kKnn, q),
                       &pool);
    EXPECT_EQ(knn.neighbors,
              DfsKNearest(*f.tree, q, 3, f.tree->OwnPoolContext()));

    auto best =
        Execute(SgTreeBackend(*f.tree), Request(QueryType::kBestFirstKnn, q));
    EXPECT_EQ(best.neighbors,
              BestFirstKNearest(*f.tree, q, 3, f.tree->OwnPoolContext()));

    auto range = Execute(SgTreeBackend(*f.tree), Request(QueryType::kRange, q));
    EXPECT_EQ(range.neighbors,
              RangeSearch(*f.tree, q, 8.0, f.tree->OwnPoolContext()));

    auto contain =
        Execute(SgTreeBackend(*f.tree), Request(QueryType::kContainment, q));
    EXPECT_EQ(contain.ids,
              ContainmentSearch(*f.tree, q, f.tree->OwnPoolContext()));

    auto exact = Execute(SgTreeBackend(*f.tree), Request(QueryType::kExact, q));
    EXPECT_EQ(exact.ids, ExactSearch(*f.tree, q, f.tree->OwnPoolContext()));

    auto subset =
        Execute(SgTreeBackend(*f.tree), Request(QueryType::kSubset, q));
    EXPECT_EQ(subset.ids,
              SubsetSearch(*f.tree, q, f.tree->OwnPoolContext()));
  }
}

TEST(ExecuteTest, LinearScanBackendMatchesTreeAnswers) {
  // The scan through the unified API is the same oracle the legacy tests
  // used directly: tree and scan must agree on every supported type.
  Fixture f;
  Rng rng(902);
  const LinearScanBackend scan_backend(*f.scan);
  const SgTreeBackend tree_backend(*f.tree);
  for (int trial = 0; trial < 10; ++trial) {
    const Signature q = RandomSignature(rng, kBits, 0.07);
    for (QueryType type :
         {QueryType::kKnn, QueryType::kRange, QueryType::kContainment,
          QueryType::kSubset}) {
      const QueryResult via_tree = Execute(tree_backend, Request(type, q));
      const QueryResult via_scan = Execute(scan_backend, Request(type, q));
      EXPECT_EQ(via_tree.neighbors, via_scan.neighbors) << "trial " << trial;
      EXPECT_EQ(via_tree.ids, via_scan.ids) << "trial " << trial;
    }
  }
}

// The next two tests pin the [[deprecated]] shims to the unified API until
// the shims are removed (DESIGN.md section 11.4) — they are the only
// in-tree callers allowed to use them, hence the scoped suppression.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ExecuteTest, LegacyKernelsAreThinWrappers) {
  Fixture f;
  Rng rng(903);
  BufferPool pool_a(64);
  BufferPool pool_b(64);
  for (int trial = 0; trial < 5; ++trial) {
    const Signature q = RandomSignature(rng, kBits, 0.07);
    for (QueryType type :
         {QueryType::kKnn, QueryType::kBestFirstKnn, QueryType::kRange,
          QueryType::kContainment, QueryType::kExact, QueryType::kSubset}) {
      pool_a.Clear();
      pool_b.Clear();
      const QueryRequest request = Request(type, q);
      const QueryResult via_api =
          Execute(SgTreeBackend(*f.tree), request, &pool_a);
      const QueryResult via_legacy = ExecuteTreeQuery(*f.tree, request,
                                                      &pool_b);
      EXPECT_EQ(via_api, via_legacy) << "trial " << trial;
    }
  }
}

TEST(ExecutorGenericRunTest, MatchesTypedOverload) {
  Fixture f;
  Rng rng(904);
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 40; ++i) {
    const auto type = static_cast<QueryType>(i % 6);
    batch.push_back(Request(type, RandomSignature(rng, kBits, 0.07)));
  }
  QueryExecutorOptions options;
  options.num_threads = 3;
  options.buffer_pages = 16;
  QueryExecutor executor(options);
  const auto generic = executor.Run(SgTreeBackend(*f.tree), batch);
  const auto typed = executor.Run(*f.tree, batch);
  ASSERT_EQ(generic.size(), typed.size());
  for (size_t i = 0; i < generic.size(); ++i) {
    EXPECT_EQ(generic[i], typed[i]) << "query " << i;
  }
}

#pragma GCC diagnostic pop

TEST(ExecutorGenericRunTest, InvalidRequestsSurfaceInBatchOrder) {
  Fixture f;
  const Signature q = Signature::FromItems(std::vector<uint32_t>{4, 9}, kBits);
  std::vector<QueryRequest> batch = {Request(QueryType::kKnn, q, 3),
                                     Request(QueryType::kKnn, q, 0),
                                     Request(QueryType::kRange, q, 1, -2.0)};
  QueryExecutor executor;
  const auto results = executor.Run(SgTreeBackend(*f.tree), batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[1].neighbors.empty());
  EXPECT_TRUE(results[2].neighbors.empty());
}

}  // namespace
}  // namespace sgtree
