// Unit tests for the observability primitives: sharded counters and
// histograms, percentile math, registry semantics, and the JSON/Prometheus
// exporters (golden-output tests). The concurrent stress tests at the
// bottom are ThreadSanitizer targets (see the tsan CI job).

#include "obs/metrics.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/export.h"

namespace sgtree {
namespace obs {
namespace {

// ---------------------------------------------------------------------------
// Counter.
// ---------------------------------------------------------------------------

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter("test.counter");
  EXPECT_EQ(counter.name(), "test.counter");
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(CounterTest, MergesAcrossThreadShards) {
  // Each thread lands in some shard; Value() must see the union no matter
  // how the threads were distributed over the shard slots.
  Counter counter("shard.merge");
  constexpr int kThreads = 2 * static_cast<int>(kMetricShards);
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
}

TEST(CounterTest, ThisThreadShardIsStableAndInRange) {
  const uint32_t shard = ThisThreadShard();
  EXPECT_LT(shard, kMetricShards);
  EXPECT_EQ(ThisThreadShard(), shard);  // Stable within one thread.
}

// ---------------------------------------------------------------------------
// Histogram.
// ---------------------------------------------------------------------------

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h("bounds", {1.0, 2.0, 5.0});
  h.Observe(-3.0);  // Below everything -> first bucket.
  h.Observe(0.0);
  h.Observe(1.0);   // le="1" is inclusive.
  h.Observe(1.5);
  h.Observe(2.0);
  h.Observe(5.0);
  h.Observe(5.1);   // Above the last bound -> overflow.
  h.Observe(1e12);
  const std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // 3 finite bounds + overflow.
  EXPECT_EQ(counts[0], 3u);      // -3, 0, 1
  EXPECT_EQ(counts[1], 2u);      // 1.5, 2
  EXPECT_EQ(counts[2], 1u);      // 5
  EXPECT_EQ(counts[3], 2u);      // 5.1, 1e12
  EXPECT_EQ(h.Count(), 8u);
}

TEST(HistogramTest, SumAccumulatesObservedValues) {
  Histogram h("sum", {10.0});
  h.Observe(1.5);
  h.Observe(2.5);
  h.Observe(100.0);  // Overflow observations still count into the sum.
  EXPECT_DOUBLE_EQ(h.Sum(), 104.0);
  h.Reset();
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
}

TEST(HistogramTest, ExactPercentilesOnKnownDistribution) {
  // Bounds at every integer 1..10 and one observation per integer: bucket
  // edges coincide with the data, so nearest-rank percentiles are exact.
  std::vector<double> bounds;
  for (int i = 1; i <= 10; ++i) bounds.push_back(i);
  Histogram h("exact", bounds);
  for (int i = 1; i <= 10; ++i) h.Observe(i);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);   // rank ceil(5.0) = 5.
  EXPECT_DOUBLE_EQ(h.Percentile(95), 10.0);  // rank ceil(9.5) = 10.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 10.0);  // rank ceil(9.9) = 10.
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 1.0);    // Rank clamps to 1.
  EXPECT_DOUBLE_EQ(h.Percentile(10), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(25), 3.0);   // rank ceil(2.5) = 3.
}

TEST(HistogramTest, PercentileOfSkewedDistribution) {
  Histogram h("skew", {1.0, 2.0, 5.0, 10.0});
  for (int i = 0; i < 98; ++i) h.Observe(1.0);
  h.Observe(4.0);
  h.Observe(9.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(98), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 5.0);   // The 99th sample sits in (2,5].
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
}

TEST(HistogramTest, PercentileIsNanWhenEmptyAndInfOnOverflow) {
  Histogram h("edges", {1.0});
  EXPECT_TRUE(std::isnan(h.Percentile(50)));
  h.Observe(99.0);  // Only observation lands in the overflow bucket.
  EXPECT_TRUE(std::isinf(h.Percentile(50)));
}

TEST(HistogramTest, DefaultLatencyBucketsAreSortedFinite) {
  const std::vector<double> bounds = LatencyBucketsUs();
  ASSERT_GE(bounds.size(), 2u);
  for (size_t i = 0; i < bounds.size(); ++i) {
    EXPECT_TRUE(std::isfinite(bounds[i]));
    if (i > 0) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);  // 1 us floor.
}

// ---------------------------------------------------------------------------
// MetricsRegistry.
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  Histogram* h1 = registry.GetHistogram("h", {1.0, 2.0});
  Histogram* h2 = registry.GetHistogram("h", {99.0});  // Bounds ignored.
  EXPECT_EQ(h1, h2);
  ASSERT_EQ(h1->bounds().size(), 2u);
  EXPECT_DOUBLE_EQ(h1->bounds()[0], 1.0);
}

TEST(MetricsRegistryTest, SnapshotsAreSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zeta");
  registry.GetCounter("alpha");
  registry.GetCounter("mid");
  const std::vector<const Counter*> counters = registry.Counters();
  ASSERT_EQ(counters.size(), 3u);
  EXPECT_EQ(counters[0]->name(), "alpha");
  EXPECT_EQ(counters[1]->name(), "mid");
  EXPECT_EQ(counters[2]->name(), "zeta");
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsRegistrations) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(7);
  registry.GetHistogram("h", {1.0})->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(registry.GetCounter("c")->Value(), 0u);
  EXPECT_EQ(registry.GetHistogram("h")->Count(), 0u);
  EXPECT_EQ(registry.Counters().size(), 1u);
  EXPECT_EQ(registry.Histograms().size(), 1u);
}

TEST(MetricsRegistryTest, DefaultHistogramGetsLatencyBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat");
  EXPECT_EQ(h->bounds(), LatencyBucketsUs());
}

// ---------------------------------------------------------------------------
// Exporters: golden output.
// ---------------------------------------------------------------------------

MetricsRegistry* GoldenRegistry() {
  auto* registry = new MetricsRegistry;
  registry->GetCounter("cache.hits")->Increment(3);
  Histogram* h = registry->GetHistogram("lat", {1.0, 2.0});
  h->Observe(1.0);
  h->Observe(3.0);
  return registry;
}

TEST(ExportTest, JsonGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  // p50 lands on the first bucket edge (1); p95/p99 land in the overflow
  // bucket, whose "bound" is +Inf and therefore exported as null.
  EXPECT_EQ(ToJson(*registry),
            "{\"counters\":{\"cache.hits\":3},"
            "\"histograms\":{\"lat\":{\"bounds\":[1,2],\"counts\":[1,0,1],"
            "\"count\":2,\"sum\":4,\"p50\":1,\"p95\":null,\"p99\":null}}}");
}

TEST(ExportTest, PrometheusGolden) {
  std::unique_ptr<MetricsRegistry> registry(GoldenRegistry());
  // Dots are sanitized to underscores; buckets are cumulative and include
  // the le="+Inf" catch-all, per the text exposition format.
  EXPECT_EQ(ToPrometheus(*registry),
            "# TYPE cache_hits counter\n"
            "cache_hits 3\n"
            "# TYPE lat histogram\n"
            "lat_bucket{le=\"1\"} 1\n"
            "lat_bucket{le=\"2\"} 1\n"
            "lat_bucket{le=\"+Inf\"} 2\n"
            "lat_sum 4\n"
            "lat_count 2\n");
}

TEST(ExportTest, EmptyRegistryExports) {
  MetricsRegistry registry;
  EXPECT_EQ(ToJson(registry), "{\"counters\":{},\"histograms\":{}}");
  EXPECT_EQ(ToPrometheus(registry), "");
}

TEST(ExportTest, EmptyHistogramExportsNullPercentiles) {
  MetricsRegistry registry;
  registry.GetHistogram("empty", {1.0});
  EXPECT_EQ(ToJson(registry),
            "{\"counters\":{},\"histograms\":{\"empty\":{\"bounds\":[1],"
            "\"counts\":[0,0],\"count\":0,\"sum\":0,\"p50\":null,"
            "\"p95\":null,\"p99\":null}}}");
}

TEST(ExportTest, PrometheusNameSanitization) {
  MetricsRegistry registry;
  registry.GetCounter("sgtree.pool/hits-total")->Increment(1);
  const std::string text = ToPrometheus(registry);
  EXPECT_NE(text.find("sgtree_pool_hits_total 1"), std::string::npos);
  EXPECT_EQ(text.find('/'), std::string::npos);
}

// ---------------------------------------------------------------------------
// Concurrency stress (ThreadSanitizer targets).
// ---------------------------------------------------------------------------

TEST(MetricsStressTest, ConcurrentCounterAndHistogramLoseNothing) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("stress.counter");
  Histogram* histogram = registry.GetHistogram("stress.hist", {2.0, 5.0});
  constexpr int kThreads = 8;
  constexpr int kOps = 50'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, histogram] {
      for (int i = 0; i < kOps; ++i) {
        counter->Increment();
        histogram->Observe(static_cast<double>(i % 10));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), static_cast<uint64_t>(kThreads) * kOps);
  EXPECT_EQ(histogram->Count(), static_cast<uint64_t>(kThreads) * kOps);
  // Per thread: 5000 repetitions of 0+1+...+9 = 45 -> 225000 each.
  EXPECT_DOUBLE_EQ(histogram->Sum(), kThreads * (kOps / 10) * 45.0);
  // Values 0,1,2 -> bucket le=2; 3,4,5 -> le=5; 6..9 -> overflow.
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], static_cast<uint64_t>(kThreads) * kOps * 3 / 10);
  EXPECT_EQ(counts[1], static_cast<uint64_t>(kThreads) * kOps * 3 / 10);
  EXPECT_EQ(counts[2], static_cast<uint64_t>(kThreads) * kOps * 4 / 10);
}

TEST(MetricsStressTest, ConcurrentRegistryLookupsReturnOnePointer) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.GetCounter("contended");
      c->Increment();
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[0], seen[t]);
  EXPECT_EQ(registry.GetCounter("contended")->Value(),
            static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace obs
}  // namespace sgtree
