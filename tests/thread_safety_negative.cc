// Negative-compile proof that the thread-safety analysis is actually
// armed. This file is NEVER linked into a test binary: the ctest case
// `thread_safety_negative` (clang builds only; see tests/CMakeLists.txt)
// compiles it with -fsyntax-only -Wthread-safety and passes iff the
// compiler emits the expected "requires holding mutex" diagnostic for the
// two canonical mistakes below. If someone breaks the SGTREE_* macro
// plumbing — say, a refactor makes them expand to nothing under clang —
// every annotation in the tree silently stops being checked; this test is
// the tripwire.
//
// Keep this file minimal and self-contained: it must stay compilable
// except for the deliberate violations.

#include "common/sync.h"

namespace {

class Account {
 public:
  // Deliberate violation 1: unguarded read of a guarded field.
  int UnguardedRead() const { return balance_; }

  // Deliberate violation 2: calling a REQUIRES method without the lock.
  void UnguardedDeposit(int amount) { DepositLocked(amount); }

  // Correctly locked path — must NOT be diagnosed.
  void Deposit(int amount) SGTREE_EXCLUDES(mu_) {
    sgtree::MutexLock lock(&mu_);
    DepositLocked(amount);
  }

 private:
  void DepositLocked(int amount) SGTREE_REQUIRES(mu_) { balance_ += amount; }

  mutable sgtree::Mutex mu_;
  int balance_ SGTREE_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  account.UnguardedDeposit(2);
  return account.UnguardedRead();
}
