// Differential tests for the static mmap'ed SG-tree: the StaticTreeBackend
// must be byte-identical to the dynamic SgTreeBackend — full QueryResult
// equality, counters and traces included — for all six query types, through
// both the mmap (Open) and buffered (OpenFromBytes) paths, standalone and
// behind the sharded scatter-gather router, and under concurrent readers
// sharing one view (the TSAN target).

#include "static/static_tree_view.h"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "durability/fault_injection.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "sgtree/sg_tree.h"
#include "static/static_tree_backend.h"
#include "static/static_tree_builder.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

constexpr uint32_t kBits = 120;

SgTreeOptions TreeOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.max_entries = 8;
  return options;
}

// A mixed batch cycling through all six query types (test_shard.cc's
// protocol, so the two suites grade the same workload).
std::vector<QueryRequest> MixedBatch(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<QueryRequest> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRequest request;
    request.type = static_cast<QueryType>(i % 6);
    request.query = RandomSignature(rng, kBits, 0.07);
    request.k = 1 + static_cast<uint32_t>(i % 7);
    request.epsilon = 6.0 + static_cast<double>(i % 5);
    batch.push_back(std::move(request));
  }
  return batch;
}

// Runs `batch` through `backend` under the cold-cache protocol: a private
// pool cleared per query, so counters are a pure function of the input.
std::vector<QueryResult> RunBatch(const IndexBackend& backend,
                                  const std::vector<QueryRequest>& batch) {
  BufferPool pool(64);
  std::vector<QueryResult> out;
  out.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    pool.Clear();
    out.push_back(Execute(backend, request, &pool));
  }
  return out;
}

// Full equality — values, stats, AND trace (operator== excludes only the
// wall time). This is the byte-identical contract, not just same answers.
void ExpectIdenticalResults(const std::vector<QueryResult>& expected,
                            const std::vector<QueryResult>& actual,
                            const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i], actual[i]) << label << " query " << i;
  }
}

struct Fixture {
  explicit Fixture(uint32_t num_transactions = 900)
      : dataset(ClusteredDataset(71, num_transactions, kBits, 8, 10, 2)),
        tree(TreeOptions()) {
    for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
    std::string error;
    EXPECT_TRUE(BuildStaticImage(tree, &image, &error)) << error;
    StaticOpenOptions options;
    options.tree = TreeOptions();
    view = StaticTreeView::OpenFromBytes(image.data(), image.size(), options,
                                         &error);
    EXPECT_NE(view, nullptr) << error;
  }

  Dataset dataset;
  SgTree tree;
  std::vector<uint8_t> image;
  std::unique_ptr<StaticTreeView> view;
};

// ---------------------------------------------------------------------------
// The header mirrors the tree.
// ---------------------------------------------------------------------------

TEST(StaticTreeViewTest, HeaderMatchesSourceTree) {
  Fixture f;
  EXPECT_EQ(f.view->size(), f.tree.size());
  EXPECT_EQ(f.view->node_count(), f.tree.node_count());
  EXPECT_EQ(f.view->height(), f.tree.height());
  EXPECT_EQ(f.view->num_bits(), f.tree.num_bits());
  EXPECT_EQ(f.view->max_entries(), f.tree.max_entries());
  EXPECT_EQ(f.view->file_size(), f.image.size());
  EXPECT_EQ(f.view->TransactionAreaBounds(), f.tree.TransactionAreaBounds());
  EXPECT_FALSE(f.view->zero_copy());  // OpenFromBytes copies.
}

TEST(StaticTreeViewTest, EmptyTreeRoundTrips) {
  const SgTree empty(TreeOptions());
  std::vector<uint8_t> image;
  std::string error;
  ASSERT_TRUE(BuildStaticImage(empty, &image, &error)) << error;
  StaticOpenOptions options;
  options.tree = TreeOptions();
  auto view =
      StaticTreeView::OpenFromBytes(image.data(), image.size(), options,
                                    &error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(view->size(), 0u);
  EXPECT_EQ(view->root(), kInvalidPageId);
  ExpectIdenticalResults(RunBatch(SgTreeBackend(empty), MixedBatch(72, 12)),
                         RunBatch(StaticTreeBackend(*view), MixedBatch(72, 12)),
                         "empty");
}

TEST(StaticTreeBackendTest, SupportsAllSixQueryTypes) {
  Fixture f(60);
  const StaticTreeBackend backend(*f.view);
  EXPECT_STREQ(backend.name(), "static");
  for (int type = 0; type < 6; ++type) {
    EXPECT_TRUE(backend.Supports(static_cast<QueryType>(type))) << type;
  }
  // Static images cannot feed collection-level joins: the support matrix
  // says so with a reason pointing at the dynamic forms.
  EXPECT_EQ(backend.JoinInputReason(),
            "static images serve point queries only; joins walk dynamic "
            "trees — load the snapshot (v1) or durable form to join");
}

// ---------------------------------------------------------------------------
// The differential core: static == dynamic, byte for byte.
// ---------------------------------------------------------------------------

TEST(StaticDifferentialTest, AllQueryTypesIdenticalToDynamicTree) {
  Fixture f;
  const std::vector<QueryRequest> batch = MixedBatch(73, 72);
  ExpectIdenticalResults(RunBatch(SgTreeBackend(f.tree), batch),
                         RunBatch(StaticTreeBackend(*f.view), batch),
                         "buffered view");
}

TEST(StaticDifferentialTest, UntracedContextIdenticalToDynamicTree) {
  // A fully bare context (no pool, no stats, no trace) drives the exact
  // same traversal: values must still match, and nothing may be charged.
  Fixture f(500);
  const std::vector<QueryRequest> batch = MixedBatch(74, 36);
  const SgTreeBackend dynamic_backend(f.tree);
  const StaticTreeBackend static_backend(*f.view);
  for (size_t i = 0; i < batch.size(); ++i) {
    QueryResult expected;
    QueryResult actual;
    ExecuteInto(dynamic_backend, batch[i], /*pool=*/nullptr, &expected);
    ExecuteInto(static_backend, batch[i], /*pool=*/nullptr, &actual);
    EXPECT_EQ(expected, actual) << "query " << i;
    EXPECT_EQ(actual.stats.random_ios, 0u) << "query " << i;
  }
}

TEST(StaticDifferentialTest, MmapOpenIdenticalToBufferedOpen) {
  Fixture f;
  const std::string path = ::testing::TempDir() + "/sgtree_static_diff.sgi";
  std::string error;
  ASSERT_TRUE(BuildStaticTree(f.tree, path, &error)) << error;

  StaticOpenOptions options;
  options.tree = TreeOptions();
  auto mapped = StaticTreeView::Open(Env::Posix(), path, options, &error);
  ASSERT_NE(mapped, nullptr) << error;
  EXPECT_TRUE(mapped->zero_copy());

  const std::vector<QueryRequest> batch = MixedBatch(75, 48);
  ExpectIdenticalResults(RunBatch(StaticTreeBackend(*f.view), batch),
                         RunBatch(StaticTreeBackend(*mapped), batch), "mmap");
  // And both match the dynamic tree, closing the triangle.
  ExpectIdenticalResults(RunBatch(SgTreeBackend(f.tree), batch),
                         RunBatch(StaticTreeBackend(*mapped), batch),
                         "mmap vs dynamic");
  std::remove(path.c_str());
}

TEST(StaticDifferentialTest, WrappingEnvFallbackIdenticalToPosixMmap) {
  // A wrapping Env (no MapReadOnly override of its own) serves the image
  // through the read-into-buffer fallback; answers must not depend on
  // which path produced the bytes.
  Fixture f(500);
  const std::string path = ::testing::TempDir() + "/sgtree_static_fb.sgi";
  std::string error;
  ASSERT_TRUE(BuildStaticTree(f.tree, path, &error)) << error;

  FaultState state;  // No faults planned: a pure pass-through wrapper.
  FaultInjectingEnv env(Env::Posix(), &state);
  StaticOpenOptions options;
  options.tree = TreeOptions();
  auto fallback = StaticTreeView::Open(&env, path, options, &error);
  ASSERT_NE(fallback, nullptr) << error;
  EXPECT_FALSE(fallback->zero_copy());

  const std::vector<QueryRequest> batch = MixedBatch(76, 36);
  ExpectIdenticalResults(RunBatch(SgTreeBackend(f.tree), batch),
                         RunBatch(StaticTreeBackend(*fallback), batch),
                         "fallback env");
  std::remove(path.c_str());
}

TEST(StaticDifferentialTest, ExportStaticSnapshotsADurableTree) {
  const Dataset dataset = ClusteredDataset(77, 300, kBits, 6, 10, 2);
  const std::string dir = ::testing::TempDir() + "/sgtree_static_export";
  Env* env = Env::Posix();
  env->CreateDir(dir);
  env->Delete(DurableTree::PagePathFor(dir));
  env->Delete(DurableTree::WalPathFor(dir));

  DurableTree::Options options;
  options.tree = TreeOptions();
  std::string error;
  auto durable = DurableTree::Open(env, dir, options, &error);
  ASSERT_NE(durable, nullptr) << error;
  for (const Transaction& txn : dataset.transactions) {
    ASSERT_TRUE(durable->Insert(txn));
  }

  const std::string path = dir + "/export.sgi";
  ASSERT_TRUE(ExportStatic(*durable, path, &error)) << error;
  StaticOpenOptions open_options;
  open_options.tree = TreeOptions();
  auto view = StaticTreeView::Open(env, path, open_options, &error);
  ASSERT_NE(view, nullptr) << error;
  EXPECT_EQ(view->size(), dataset.transactions.size());

  const std::vector<QueryRequest> batch = MixedBatch(78, 30);
  ExpectIdenticalResults(RunBatch(SgTreeBackend(durable->tree()), batch),
                         RunBatch(StaticTreeBackend(*view), batch),
                         "exported");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Sharded static mode: SaveStatic / Load / router equivalence.
// ---------------------------------------------------------------------------

class StaticShardCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StaticShardCountTest, RouterIdenticalToDynamicShards) {
  const uint32_t num_shards = GetParam();
  const Dataset dataset = ClusteredDataset(79, 1000, kBits, 8, 10, 2);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = num_shards;
  shard_options.tree = TreeOptions();
  ShardedIndex dynamic_index(shard_options);
  ASSERT_EQ(dynamic_index.InsertBatch(dataset.transactions),
            dataset.transactions.size());

  const std::string path = ::testing::TempDir() + "/sgtree_static_shards_" +
                           std::to_string(num_shards) + ".idx";
  std::string error;
  ASSERT_TRUE(dynamic_index.SaveStatic(path, &error)) << error;
  auto static_index = ShardedIndex::Load(path, shard_options, &error);
  ASSERT_NE(static_index, nullptr) << error;
  ASSERT_TRUE(static_index->static_mode());
  EXPECT_EQ(static_index->num_shards(), num_shards);
  EXPECT_EQ(static_index->size(), dynamic_index.size());
  EXPECT_EQ(static_index->node_count(), dynamic_index.node_count());

  const std::vector<QueryRequest> batch = MixedBatch(80, 48);
  QueryExecutorOptions exec_options;
  exec_options.num_threads = 3;
  QueryExecutor executor(exec_options);
  // Shared bound off + cold per sub-query: per-shard counters are pure
  // functions of the input, so FULL results must match across the two
  // index flavors.
  QueryRouterOptions router_options;
  router_options.shared_knn_bound = false;
  router_options.cold_per_subquery = true;
  QueryRouter dynamic_router(dynamic_index, &executor, router_options);
  QueryRouter static_router(*static_index, &executor, router_options);
  const std::vector<QueryResult> expected = dynamic_router.Run(batch);
  const std::vector<QueryResult> actual = static_router.Run(batch);
  ExpectIdenticalResults(expected, actual,
                         "shards=" + std::to_string(num_shards));

  // Values also match a single dynamic tree over the same data (the
  // router's own contract, now extended to the static flavor).
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  const std::vector<QueryResult> oracle =
      RunBatch(SgTreeBackend(single), batch);
  ASSERT_EQ(oracle.size(), actual.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(oracle[i].neighbors, actual[i].neighbors) << "query " << i;
    EXPECT_EQ(oracle[i].ids, actual[i].ids) << "query " << i;
    EXPECT_EQ(oracle[i].error, actual[i].error) << "query " << i;
  }

  std::remove(path.c_str());
  for (uint32_t s = 0; s < num_shards; ++s) {
    std::remove(ShardedIndex::ShardSnapshotPath(path, s).c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, StaticShardCountTest,
                         ::testing::Values(1u, 2u, 8u));

TEST(StaticShardedIndexTest, StaticModeIsImmutable) {
  const Dataset dataset = ClusteredDataset(81, 200, kBits, 6, 10, 2);
  ShardedIndexOptions shard_options;
  shard_options.num_shards = 2;
  shard_options.tree = TreeOptions();
  ShardedIndex dynamic_index(shard_options);
  dynamic_index.InsertBatch(dataset.transactions);

  const std::string path =
      ::testing::TempDir() + "/sgtree_static_immutable.idx";
  std::string error;
  ASSERT_TRUE(dynamic_index.SaveStatic(path, &error)) << error;
  auto loaded = ShardedIndex::Load(path, shard_options, &error);
  ASSERT_NE(loaded, nullptr) << error;
  ASSERT_TRUE(loaded->static_mode());

  Transaction txn;
  txn.tid = 999'999;
  txn.items = {1, 2, 3};
  EXPECT_FALSE(loaded->Insert(txn));
  EXPECT_FALSE(loaded->Erase(txn));
  EXPECT_EQ(loaded->InsertBatch({txn}), 0u);
  EXPECT_EQ(loaded->size(), dataset.transactions.size());  // Unchanged.
  EXPECT_FALSE(loaded->Save(path + ".resave", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(loaded->SaveStatic(path + ".resave", &error));

  std::remove(path.c_str());
  for (uint32_t s = 0; s < 2; ++s) {
    std::remove(ShardedIndex::ShardSnapshotPath(path, s).c_str());
  }
}

// ---------------------------------------------------------------------------
// Concurrency: many threads, one shared view (the TSAN target).
// ---------------------------------------------------------------------------

TEST(StaticStressTest, ManyThreadsOneSharedViewMatchSerial) {
  Fixture f(1000);
  const std::vector<QueryRequest> batch = MixedBatch(82, 60);
  const std::vector<QueryResult> expected =
      RunBatch(StaticTreeBackend(*f.view), batch);

  constexpr int kThreads = 8;
  std::vector<std::vector<QueryResult>> per_thread(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        // Each thread its own pool and results; the view itself is the
        // only shared state — immutable, so no synchronization.
        per_thread[t] = RunBatch(StaticTreeBackend(*f.view), batch);
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  for (int t = 0; t < kThreads; ++t) {
    ExpectIdenticalResults(expected, per_thread[t],
                           "thread " + std::to_string(t));
  }
}

}  // namespace
}  // namespace sgtree
