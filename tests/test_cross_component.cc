// Cross-component coverage: the newer components (incremental iterator,
// paged reader, joins) under the non-default metrics and the categorical
// fixed-dimensionality configuration — combinations the per-component
// suites do not reach.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/census_generator.h"
#include "sgtree/bulk_load.h"
#include "sgtree/incremental.h"
#include "sgtree/join.h"
#include "sgtree/paged_reader.h"
#include "sgtree/search.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

class MetricVariantTest : public ::testing::TestWithParam<Metric> {};

TEST_P(MetricVariantTest, IncrementalIteratorExact) {
  const Dataset dataset = ClusteredDataset(700, 600, 180, 8, 10, 2);
  SgTreeOptions options;
  options.num_bits = 180;
  options.max_entries = 10;
  options.metric = GetParam();
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  LinearScan scan(dataset);
  Rng rng(701);
  for (int q = 0; q < 8; ++q) {
    Signature query = RandomSignature(rng, 180, 0.05);
    if (query.Empty()) query.Set(0);
    const auto expected = scan.KNearest(query, 12, GetParam());
    NearestIterator it(tree, query);
    for (size_t i = 0; i < expected.size(); ++i) {
      const auto n = it.Next();
      ASSERT_TRUE(n.has_value());
      EXPECT_DOUBLE_EQ(n->distance, expected[i].distance)
          << MetricName(GetParam()) << " i=" << i;
    }
  }
}

TEST_P(MetricVariantTest, PagedReaderExact) {
  const Dataset dataset = ClusteredDataset(702, 700, 180, 8, 10, 2);
  SgTreeOptions options;
  options.num_bits = 180;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const PagedTreeImage image = FlushTreeToPages(tree, true);
  ASSERT_NE(image.pages, nullptr);
  PagedReader::Options ropt;
  ropt.metric = GetParam();
  ropt.cache_pages = 8;
  PagedReader reader(&image, ropt);
  LinearScan scan(dataset);
  Rng rng(703);
  for (int q = 0; q < 10; ++q) {
    Signature query = RandomSignature(rng, 180, 0.05);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(reader.Nearest(query).distance,
                     scan.Nearest(query, GetParam()).distance)
        << MetricName(GetParam());
  }
}

TEST_P(MetricVariantTest, SimilarityJoinExact) {
  const Dataset da = ClusteredDataset(704, 120, 120, 5, 9, 2);
  const Dataset db = ClusteredDataset(705, 100, 120, 5, 9, 2);
  SgTreeOptions options;
  options.num_bits = 120;
  options.max_entries = 8;
  options.metric = GetParam();
  auto ta = BulkLoad(da, options);
  auto tb = BulkLoad(db, options);
  const double epsilon = GetParam() == Metric::kHamming ? 6.0 : 0.6;
  const auto pairs = SimilarityJoin(*ta, *tb, epsilon);
  // Brute force.
  uint64_t expected = 0;
  for (const auto& x : da.transactions) {
    const Signature sx = Signature::FromItems(x.items, 120);
    for (const auto& y : db.transactions) {
      const Signature sy = Signature::FromItems(y.items, 120);
      if (Distance(sx, sy, GetParam()) <= epsilon) ++expected;
    }
  }
  EXPECT_EQ(pairs.size(), expected) << MetricName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllMetrics, MetricVariantTest,
                         ::testing::Values(Metric::kHamming, Metric::kJaccard,
                                           Metric::kDice, Metric::kCosine),
                         [](const auto& info) {
                           return MetricName(info.param);
                         });

// ---------------------------------------------------------------------------
// Categorical (fixed-dim) configuration through the newer components.
// ---------------------------------------------------------------------------

struct CensusFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<LinearScan> scan;
  std::vector<Signature> queries;
};

CensusFixture MakeCensus(uint64_t seed) {
  CensusFixture f;
  CensusOptions copt;
  copt.num_tuples = 1500;
  copt.seed = seed;
  CensusGenerator gen(copt);
  f.dataset = gen.Generate();
  SgTreeOptions options;
  options.num_bits = f.dataset.num_items;
  options.fixed_dimensionality = f.dataset.fixed_dimensionality;
  options.max_entries = 12;  // Fine-grained leaves at this small scale.
  f.tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  f.scan = std::make_unique<LinearScan>(f.dataset);
  for (const Transaction& q : gen.GenerateQueries(10)) {
    f.queries.push_back(Signature::FromItems(q.items, f.dataset.num_items));
  }
  return f;
}

TEST(CensusCrossTest, IncrementalIteratorUsesTightBound) {
  const CensusFixture f = MakeCensus(710);
  for (const Signature& q : f.queries) {
    const auto expected = f.scan->KNearest(q, 8);
    QueryStats stats;
    NearestIterator it(*f.tree, q, &stats);
    for (size_t i = 0; i < expected.size(); ++i) {
      const auto n = it.Next();
      ASSERT_TRUE(n.has_value());
      EXPECT_DOUBLE_EQ(n->distance, expected[i].distance);
    }
  }
  // Pruning assertion on a near query (one attribute flipped from a real
  // tuple): the first neighbor must surface without a full traversal.
  Signature near = Signature::FromItems(f.dataset.transactions[17].items,
                                        f.dataset.num_items);
  const auto items = near.ToItems();
  near.Reset(items[0]);
  near.Set(items[0] == 0 ? 1 : items[0] - 1);
  QueryStats stats;
  NearestIterator it(*f.tree, near, &stats);
  ASSERT_TRUE(it.Next().has_value());
  EXPECT_LT(stats.transactions_compared, f.dataset.size() / 2);
}

TEST(CensusCrossTest, PagedImageCarriesAreaStats) {
  const CensusFixture f = MakeCensus(711);
  const PagedTreeImage image = FlushTreeToPages(*f.tree, true);
  ASSERT_NE(image.pages, nullptr);
  EXPECT_EQ(image.area_lo, 36u);
  EXPECT_EQ(image.area_hi, 36u);
  PagedReader reader(&image, {});
  for (const Signature& q : f.queries) {
    EXPECT_DOUBLE_EQ(reader.Nearest(q).distance,
                     f.scan->Nearest(q).distance);
  }
}

TEST(CensusCrossTest, AllNearestOnCategoricalData) {
  const CensusFixture f = MakeCensus(712);
  for (const Signature& q : f.queries) {
    const auto ties = AllNearest(*f.tree, q);
    ASSERT_FALSE(ties.empty());
    const double best = f.scan->Nearest(q).distance;
    for (const Neighbor& n : ties) EXPECT_DOUBLE_EQ(n.distance, best);
    // Census distances are even; ties respect that.
    EXPECT_EQ(static_cast<long long>(best) % 2, 0);
  }
}

TEST(CensusCrossTest, ClosestPairsUseFixedDimBound) {
  CensusFixture a = MakeCensus(713);
  CensusFixture b = MakeCensus(714);
  const auto pairs = ClosestPairs(*a.tree, *b.tree, 3);
  ASSERT_EQ(pairs.size(), 3u);
  // Verify the best pair against a (sampled) brute force: the reported
  // distance must be achievable and minimal over the full cross product.
  double best = 1e18;
  for (const auto& x : a.dataset.transactions) {
    const Signature sx = Signature::FromItems(x.items, a.dataset.num_items);
    for (const auto& y : b.dataset.transactions) {
      const Signature sy =
          Signature::FromItems(y.items, b.dataset.num_items);
      best = std::min(best, Distance(sx, sy, Metric::kHamming));
    }
  }
  EXPECT_DOUBLE_EQ(pairs.front().distance, best);
}

}  // namespace
}  // namespace sgtree
