#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "data/census_generator.h"
#include "data/dataset_io.h"
#include "data/dictionary.h"
#include "data/quest_generator.h"

namespace sgtree {
namespace {

// ---------------------------------------------------------------------------
// Categorical schema.
// ---------------------------------------------------------------------------

TEST(CategoricalSchemaTest, OffsetsAndTotals) {
  CategoricalSchema schema({3, 5, 2});
  EXPECT_EQ(schema.num_attributes(), 3u);
  EXPECT_EQ(schema.total_values(), 10u);
  EXPECT_EQ(schema.offset(0), 0u);
  EXPECT_EQ(schema.offset(1), 3u);
  EXPECT_EQ(schema.offset(2), 8u);
  EXPECT_EQ(schema.Encode(1, 4), 7u);
}

TEST(CategoricalSchemaTest, DecodeInvertsEncode) {
  CategoricalSchema schema({4, 1, 7, 2, 9});
  for (uint32_t a = 0; a < schema.num_attributes(); ++a) {
    for (uint32_t v = 0; v < schema.domain_size(a); ++v) {
      const auto [attr, value] = schema.Decode(schema.Encode(a, v));
      EXPECT_EQ(attr, a);
      EXPECT_EQ(value, v);
    }
  }
}

TEST(CategoricalSchemaTest, CensusShapeMatchesPaper) {
  const auto sizes = CategoricalSchema::CensusDomainSizes();
  EXPECT_EQ(sizes.size(), 36u);  // 36 categorical attributes.
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), 0u), 525u);
  EXPECT_EQ(*std::min_element(sizes.begin(), sizes.end()), 2u);
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 53u);
}

// ---------------------------------------------------------------------------
// Quest generator.
// ---------------------------------------------------------------------------

QuestOptions SmallQuest() {
  QuestOptions options;
  options.num_transactions = 2000;
  options.avg_transaction_size = 10;
  options.avg_itemset_size = 6;
  options.num_items = 200;
  options.num_patterns = 100;
  options.seed = 5;
  return options;
}

TEST(QuestGeneratorTest, LabelFollowsPaperNaming) {
  QuestOptions options;
  options.avg_transaction_size = 10;
  options.avg_itemset_size = 6;
  options.num_transactions = 200'000;
  EXPECT_EQ(options.Label(), "T10.I6.D200K");
}

TEST(QuestGeneratorTest, ProducesRequestedCardinality) {
  QuestGenerator gen(SmallQuest());
  const Dataset dataset = gen.Generate();
  EXPECT_EQ(dataset.transactions.size(), 2000u);
  EXPECT_EQ(dataset.num_items, 200u);
  EXPECT_EQ(dataset.fixed_dimensionality, 0u);
}

TEST(QuestGeneratorTest, TransactionsAreSortedUniqueInRange) {
  QuestGenerator gen(SmallQuest());
  const Dataset dataset = gen.Generate();
  for (const Transaction& txn : dataset.transactions) {
    ASSERT_FALSE(txn.items.empty());
    for (size_t i = 0; i < txn.items.size(); ++i) {
      EXPECT_LT(txn.items[i], 200u);
      if (i > 0) {
        EXPECT_LT(txn.items[i - 1], txn.items[i]);
      }
    }
  }
}

TEST(QuestGeneratorTest, TidsAreSequential) {
  QuestGenerator gen(SmallQuest());
  const Dataset dataset = gen.Generate();
  for (size_t i = 0; i < dataset.transactions.size(); ++i) {
    EXPECT_EQ(dataset.transactions[i].tid, i);
  }
}

TEST(QuestGeneratorTest, MeanSizeTracksT) {
  for (double t : {5.0, 10.0, 20.0}) {
    QuestOptions options = SmallQuest();
    options.num_transactions = 4000;
    options.avg_transaction_size = t;
    options.num_items = 1000;
    QuestGenerator gen(options);
    const Dataset dataset = gen.Generate();
    double sum = 0;
    for (const auto& txn : dataset.transactions) sum += txn.items.size();
    const double mean = sum / dataset.transactions.size();
    // Corruption and dedup pull the realized mean below T a bit; it must
    // still scale with T.
    EXPECT_GT(mean, t * 0.5) << "T=" << t;
    EXPECT_LT(mean, t * 1.5) << "T=" << t;
  }
}

TEST(QuestGeneratorTest, DeterministicPerSeed) {
  QuestGenerator a(SmallQuest());
  QuestGenerator b(SmallQuest());
  const Dataset da = a.Generate();
  const Dataset db = b.Generate();
  ASSERT_EQ(da.transactions.size(), db.transactions.size());
  for (size_t i = 0; i < da.transactions.size(); ++i) {
    EXPECT_EQ(da.transactions[i].items, db.transactions[i].items);
  }
}

TEST(QuestGeneratorTest, DifferentSeedsDiffer) {
  QuestOptions other = SmallQuest();
  other.seed = 6;
  QuestGenerator a(SmallQuest());
  QuestGenerator b(other);
  const Dataset da = a.Generate();
  const Dataset db = b.Generate();
  int differing = 0;
  for (size_t i = 0; i < 100; ++i) {
    if (da.transactions[i].items != db.transactions[i].items) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(QuestGeneratorTest, QueriesShareDistributionButNotData) {
  QuestGenerator gen(SmallQuest());
  const Dataset dataset = gen.Generate();
  const auto queries = gen.GenerateQueries(100);
  EXPECT_EQ(queries.size(), 100u);
  // The queries come from the same pattern pool, so their items are drawn
  // from the same dictionary and sizes are comparable.
  double q_sum = 0;
  for (const auto& q : queries) {
    ASSERT_FALSE(q.items.empty());
    q_sum += q.items.size();
  }
  double d_sum = 0;
  for (const auto& t : dataset.transactions) d_sum += t.items.size();
  const double q_mean = q_sum / queries.size();
  const double d_mean = d_sum / dataset.transactions.size();
  EXPECT_NEAR(q_mean, d_mean, d_mean * 0.35);
}

TEST(QuestGeneratorTest, DataIsClusteredNotUniform) {
  // Transactions generated from shared patterns must have far more frequent
  // item pairs than independent uniform draws would produce.
  QuestGenerator gen(SmallQuest());
  const Dataset dataset = gen.Generate();
  std::map<std::pair<ItemId, ItemId>, int> pair_counts;
  for (const auto& txn : dataset.transactions) {
    for (size_t i = 0; i < txn.items.size(); ++i) {
      for (size_t j = i + 1; j < txn.items.size(); ++j) {
        ++pair_counts[{txn.items[i], txn.items[j]}];
      }
    }
  }
  int max_pair = 0;
  for (const auto& [pair, count] : pair_counts) {
    max_pair = std::max(max_pair, count);
  }
  // Uniform expectation per pair: ~2000 * C(10,2)/C(200,2) ~ 4.5.
  EXPECT_GT(max_pair, 40);
}

// ---------------------------------------------------------------------------
// Census generator.
// ---------------------------------------------------------------------------

CensusOptions SmallCensus() {
  CensusOptions options;
  options.num_tuples = 1000;
  options.seed = 3;
  return options;
}

TEST(CensusGeneratorTest, FixedDimensionality) {
  CensusGenerator gen(SmallCensus());
  const Dataset dataset = gen.Generate();
  EXPECT_EQ(dataset.num_items, 525u);
  EXPECT_EQ(dataset.fixed_dimensionality, 36u);
  for (const Transaction& tuple : dataset.transactions) {
    EXPECT_EQ(tuple.items.size(), 36u);
  }
}

TEST(CensusGeneratorTest, ExactlyOneValuePerAttribute) {
  CensusGenerator gen(SmallCensus());
  const Dataset dataset = gen.Generate();
  const CategoricalSchema& schema = gen.schema();
  for (const Transaction& tuple : dataset.transactions) {
    std::set<uint32_t> attrs;
    for (ItemId item : tuple.items) {
      const auto [attr, value] = schema.Decode(item);
      EXPECT_LT(value, schema.domain_size(attr));
      attrs.insert(attr);
    }
    EXPECT_EQ(attrs.size(), 36u);
  }
}

TEST(CensusGeneratorTest, ItemsSortedAscending) {
  CensusGenerator gen(SmallCensus());
  const Dataset dataset = gen.Generate();
  for (const Transaction& tuple : dataset.transactions) {
    EXPECT_TRUE(std::is_sorted(tuple.items.begin(), tuple.items.end()));
  }
}

TEST(CensusGeneratorTest, DeterministicPerSeed) {
  CensusGenerator a(SmallCensus());
  CensusGenerator b(SmallCensus());
  const Dataset da = a.Generate();
  const Dataset db = b.Generate();
  for (size_t i = 0; i < da.transactions.size(); ++i) {
    EXPECT_EQ(da.transactions[i].items, db.transactions[i].items);
  }
}

TEST(CensusGeneratorTest, TuplesAreCorrelated) {
  // Cluster affinity must create dense neighborhoods: the mean
  // nearest-neighbor distance with affinity 0.7 must be far below the
  // affinity-0 (independent Zipf draws) baseline. Global pairwise means
  // barely move — what the index exploits is exactly the NN structure.
  auto mean_nn = [](const Dataset& dataset) {
    const size_t n = 300;
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      int best = 1000;
      for (size_t j = 0; j < n; ++j) {
        if (i == j) continue;
        const auto& a = dataset.transactions[i].items;
        const auto& b = dataset.transactions[j].items;
        int common = 0;
        size_t x = 0;
        size_t y = 0;
        while (x < a.size() && y < b.size()) {
          if (a[x] == b[y]) {
            ++common;
            ++x;
            ++y;
          } else if (a[x] < b[y]) {
            ++x;
          } else {
            ++y;
          }
        }
        best = std::min(best, 2 * (36 - common));
      }
      sum += best;
    }
    return sum / n;
  };
  CensusGenerator correlated(SmallCensus());
  CensusOptions indep_options = SmallCensus();
  indep_options.cluster_affinity = 0.0;
  CensusGenerator independent(indep_options);
  const double d_corr = mean_nn(correlated.Generate());
  const double d_indep = mean_nn(independent.Generate());
  EXPECT_LT(d_corr, d_indep * 0.8);
}

TEST(CensusGeneratorTest, QueriesDifferFromData) {
  CensusGenerator gen(SmallCensus());
  const Dataset dataset = gen.Generate();
  const auto queries = gen.GenerateQueries(50);
  EXPECT_EQ(queries.size(), 50u);
  for (const auto& q : queries) EXPECT_EQ(q.items.size(), 36u);
}

// ---------------------------------------------------------------------------
// Dataset I/O.
// ---------------------------------------------------------------------------

TEST(DatasetIoTest, SaveLoadRoundTrip) {
  QuestOptions options = SmallQuest();
  options.num_transactions = 200;
  QuestGenerator gen(options);
  const Dataset dataset = gen.Generate();
  const std::string path = ::testing::TempDir() + "/sgtree_dataset.txt";
  ASSERT_TRUE(SaveDataset(dataset, path));
  Dataset loaded;
  ASSERT_TRUE(LoadDataset(path, &loaded));
  EXPECT_EQ(loaded.num_items, dataset.num_items);
  EXPECT_EQ(loaded.fixed_dimensionality, dataset.fixed_dimensionality);
  ASSERT_EQ(loaded.transactions.size(), dataset.transactions.size());
  for (size_t i = 0; i < dataset.transactions.size(); ++i) {
    EXPECT_EQ(loaded.transactions[i].tid, dataset.transactions[i].tid);
    EXPECT_EQ(loaded.transactions[i].items, dataset.transactions[i].items);
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadMissingFileFails) {
  Dataset dataset;
  EXPECT_FALSE(LoadDataset("/nonexistent/path/data.txt", &dataset));
}

TEST(DatasetIoTest, LoadRejectsUnsortedItems) {
  const std::string path = ::testing::TempDir() + "/sgtree_bad.txt";
  {
    std::ofstream out(path);
    out << "10 0 1\n0 5 3\n";  // 5 before 3: unsorted.
  }
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(path, &dataset));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsOutOfRangeItem) {
  const std::string path = ::testing::TempDir() + "/sgtree_bad2.txt";
  {
    std::ofstream out(path);
    out << "10 0 1\n0 3 25\n";  // 25 >= num_items.
  }
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(path, &dataset));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, LoadRejectsTruncatedFile) {
  const std::string path = ::testing::TempDir() + "/sgtree_bad3.txt";
  {
    std::ofstream out(path);
    out << "10 0 5\n0 1 2\n";  // Claims 5 transactions, has 1.
  }
  Dataset dataset;
  EXPECT_FALSE(LoadDataset(path, &dataset));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgtree
