#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "sgtree/persistence.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

SgTreeOptions SmallOptions(uint32_t num_bits = 120) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 8;
  return options;
}

Signature SigOf(const Transaction& txn, uint32_t bits) {
  return Signature::FromItems(txn.items, bits);
}

// ---------------------------------------------------------------------------
// Deletion.
// ---------------------------------------------------------------------------

TEST(EraseTest, EraseFromSingleLeaf) {
  SgTree tree(SmallOptions());
  const Signature sig =
      Signature::FromItems(std::vector<uint32_t>{1, 2}, 120);
  tree.Insert(sig, 7);
  EXPECT_TRUE(tree.Erase(sig, 7));
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.node_count(), 0u);
}

TEST(EraseTest, EraseMissingReturnsFalse) {
  SgTree tree(SmallOptions());
  const Signature sig =
      Signature::FromItems(std::vector<uint32_t>{1, 2}, 120);
  tree.Insert(sig, 7);
  EXPECT_FALSE(tree.Erase(sig, 8));  // Wrong tid.
  const Signature other =
      Signature::FromItems(std::vector<uint32_t>{1, 3}, 120);
  EXPECT_FALSE(tree.Erase(other, 7));  // Wrong signature.
  EXPECT_EQ(tree.size(), 1u);
}

TEST(EraseTest, EraseHalfTheTreeKeepsInvariants) {
  const Dataset dataset = ClusteredDataset(5, 600, 120, 8, 10, 2);
  SgTree tree(SmallOptions());
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);

  for (size_t i = 0; i < dataset.size(); i += 2) {
    ASSERT_TRUE(tree.Erase(dataset.transactions[i]))
        << "tid " << dataset.transactions[i].tid;
  }
  EXPECT_EQ(tree.size(), dataset.size() / 2);
  const TreeReport report = CheckTree(tree);
  EXPECT_TRUE(report.ok) << report.message;

  // Remaining transactions must still be findable; deleted ones must not.
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Signature sig = SigOf(dataset.transactions[i], 120);
    const auto found = ExactSearch(tree, sig);
    const bool deleted = i % 2 == 0;
    const bool present =
        std::find(found.begin(), found.end(), dataset.transactions[i].tid) !=
        found.end();
    EXPECT_EQ(present, !deleted) << "tid " << i;
  }
}

TEST(EraseTest, EraseEverythingEmptiesTree) {
  const Dataset dataset = ClusteredDataset(6, 300, 120, 6, 10, 2);
  SgTree tree(SmallOptions());
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  for (const Transaction& txn : dataset.transactions) {
    ASSERT_TRUE(tree.Erase(txn));
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.node_count(), 0u);
  EXPECT_TRUE(CheckTree(tree).ok);
}

TEST(EraseTest, SignaturesShrinkAfterDeletes) {
  // Deleting the only transaction holding a rare item must remove that item
  // from every ancestor signature (signatures are recomputed, not just
  // grown).
  SgTree tree(SmallOptions());
  Rng rng(7);
  for (uint64_t i = 0; i < 200; ++i) {
    Signature sig = RandomSignature(rng, 120, 0.05);
    sig.Reset(119);  // Bit 119 reserved.
    if (sig.Empty()) sig.Set(0);
    tree.Insert(sig, i);
  }
  Signature rare = Signature::FromItems(std::vector<uint32_t>{0, 119}, 120);
  tree.Insert(rare, 999);
  EXPECT_TRUE(
      tree.GetNodeNoCharge(tree.root()).UnionSignature(120).Test(119));
  ASSERT_TRUE(tree.Erase(rare, 999));
  EXPECT_FALSE(
      tree.GetNodeNoCharge(tree.root()).UnionSignature(120).Test(119));
  EXPECT_TRUE(CheckTree(tree).ok);
}

TEST(EraseTest, RandomInsertEraseChurnKeepsInvariantsAndExactness) {
  SgTree tree(SmallOptions(150));
  Rng rng(8);
  std::vector<std::pair<Signature, uint64_t>> live;
  uint64_t next_tid = 0;
  for (int step = 0; step < 1500; ++step) {
    const bool insert = live.empty() || rng.Bernoulli(0.6);
    if (insert) {
      Signature sig = RandomSignature(rng, 150, 0.07);
      if (sig.Empty()) sig.Set(3);
      tree.Insert(sig, next_tid);
      live.emplace_back(std::move(sig), next_tid);
      ++next_tid;
    } else {
      const size_t victim = rng.UniformInt(live.size());
      ASSERT_TRUE(tree.Erase(live[victim].first, live[victim].second));
      live.erase(live.begin() + victim);
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  const TreeReport report = CheckTree(tree);
  ASSERT_TRUE(report.ok) << report.message;

  // NN results must match a scan over the live set.
  Dataset live_dataset;
  live_dataset.num_items = 150;
  for (const auto& [sig, tid] : live) {
    Transaction txn;
    txn.tid = tid;
    txn.items = sig.ToItems();
    live_dataset.transactions.push_back(std::move(txn));
  }
  LinearScan scan(live_dataset);
  for (int q = 0; q < 15; ++q) {
    const Signature query = RandomSignature(rng, 150, 0.07);
    EXPECT_DOUBLE_EQ(DfsNearest(tree, query).distance,
                     scan.Nearest(query).distance);
  }
}

TEST(EraseTest, HeightShrinksWhenTreeDrains) {
  SgTree tree(SmallOptions());
  Rng rng(9);
  std::vector<std::pair<Signature, uint64_t>> entries;
  for (uint64_t i = 0; i < 500; ++i) {
    Signature sig = RandomSignature(rng, 120, 0.08);
    if (sig.Empty()) sig.Set(0);
    tree.Insert(sig, i);
    entries.emplace_back(std::move(sig), i);
  }
  const uint32_t tall = tree.height();
  ASSERT_GE(tall, 3u);
  for (size_t i = 0; i < 490; ++i) {
    ASSERT_TRUE(tree.Erase(entries[i].first, entries[i].second));
  }
  EXPECT_LT(tree.height(), tall);
  EXPECT_TRUE(CheckTree(tree).ok);
}

// ---------------------------------------------------------------------------
// Persistence.
// ---------------------------------------------------------------------------

class PersistenceTest : public ::testing::TestWithParam<bool> {};

TEST_P(PersistenceTest, SaveLoadRoundTripPreservesStructure) {
  const Dataset dataset = ClusteredDataset(10, 400, 120, 8, 10, 2);
  SgTreeOptions options = SmallOptions();
  options.compress = GetParam();
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);

  // Parameter-unique path: ctest runs the two instances concurrently, and
  // a shared file would race between one instance's save and the other's
  // cleanup.
  const std::string path = ::testing::TempDir() +
                           (GetParam() ? "/sgtree_save_compressed.bin"
                                       : "/sgtree_save_dense.bin");
  ASSERT_TRUE(SaveTree(tree, path));
  auto loaded = LoadTree(path, options);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->size(), tree.size());
  EXPECT_EQ(loaded->height(), tree.height());
  EXPECT_EQ(loaded->node_count(), tree.node_count());
  const TreeReport report = CheckTree(*loaded);
  EXPECT_TRUE(report.ok) << report.message;

  // Loaded tree answers identically.
  LinearScan scan(dataset);
  Rng rng(11);
  for (int q = 0; q < 20; ++q) {
    const Signature query = RandomSignature(rng, 120, 0.07);
    EXPECT_DOUBLE_EQ(DfsNearest(*loaded, query).distance,
                     scan.Nearest(query).distance);
  }
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(CompressOnOff, PersistenceTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compressed" : "dense";
                         });

TEST(PersistenceTest, EmptyTreeRoundTrip) {
  SgTree tree(SmallOptions());
  const std::string path = ::testing::TempDir() + "/sgtree_empty.bin";
  ASSERT_TRUE(SaveTree(tree, path));
  auto loaded = LoadTree(path, SmallOptions());
  ASSERT_NE(loaded, nullptr);
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/sgtree_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a tree";
  }
  EXPECT_EQ(LoadTree(path, SmallOptions()), nullptr);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadRejectsWidthMismatch) {
  SgTree tree(SmallOptions(120));
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{3}, 120), 1);
  const std::string path = ::testing::TempDir() + "/sgtree_width.bin";
  ASSERT_TRUE(SaveTree(tree, path));
  SgTreeOptions wrong = SmallOptions(200);
  EXPECT_EQ(LoadTree(path, wrong), nullptr);
  std::remove(path.c_str());
}

TEST(PersistenceTest, LoadedTreeAcceptsFurtherUpdates) {
  const Dataset dataset = ClusteredDataset(12, 300, 120, 6, 10, 2);
  SgTree tree(SmallOptions());
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const std::string path = ::testing::TempDir() + "/sgtree_update.bin";
  ASSERT_TRUE(SaveTree(tree, path));
  auto loaded = LoadTree(path, SmallOptions());
  ASSERT_NE(loaded, nullptr);

  Rng rng(13);
  for (uint64_t i = 0; i < 200; ++i) {
    Signature sig = RandomSignature(rng, 120, 0.07);
    if (sig.Empty()) sig.Set(1);
    loaded->Insert(sig, 1000 + i);
  }
  ASSERT_TRUE(loaded->Erase(dataset.transactions[0]));
  EXPECT_EQ(loaded->size(), 300u + 200u - 1u);
  const TreeReport report = CheckTree(*loaded);
  EXPECT_TRUE(report.ok) << report.message;
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sgtree
