// Robustness and failure-injection tests: malformed inputs into the codecs
// and persistence layer, adversarial tree shapes, and parameterized
// capacity sweeps of the structural invariants.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "sgtree/persistence.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"
#include "storage/codec.h"
#include "storage/node_format.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

// ---------------------------------------------------------------------------
// Codec fuzzing: random bytes must never crash and never decode into an
// out-of-contract signature.
// ---------------------------------------------------------------------------

TEST(CodecFuzzTest, RandomBytesDecodeSafely) {
  Rng rng(500);
  for (int trial = 0; trial < 2000; ++trial) {
    const size_t length = rng.UniformInt(64);
    std::vector<uint8_t> garbage(length);
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    size_t offset = 0;
    Signature sig;
    const uint32_t bits = 1 + static_cast<uint32_t>(rng.UniformInt(300));
    if (DecodeSignature(garbage, &offset, bits, &sig)) {
      // If it decodes, the result must honor the contract.
      EXPECT_EQ(sig.num_bits(), bits);
      EXPECT_LE(offset, garbage.size());
      for (uint32_t item : sig.ToItems()) EXPECT_LT(item, bits);
    }
  }
}

TEST(CodecFuzzTest, TruncationAtEveryByteFailsOrRoundTrips) {
  Rng rng(501);
  const Signature sig = RandomSignature(rng, 256, 0.05);
  std::vector<uint8_t> encoded;
  EncodeSignature(sig, &encoded);
  for (size_t cut = 0; cut < encoded.size(); ++cut) {
    std::vector<uint8_t> prefix(encoded.begin(), encoded.begin() + cut);
    size_t offset = 0;
    Signature decoded;
    EXPECT_FALSE(DecodeSignature(prefix, &offset, 256, &decoded))
        << "cut=" << cut;
  }
  size_t offset = 0;
  Signature decoded;
  EXPECT_TRUE(DecodeSignature(encoded, &offset, 256, &decoded));
  EXPECT_EQ(decoded, sig);
}

TEST(NodeFormatFuzzTest, RandomBytesDecodeSafely) {
  Rng rng(502);
  for (int trial = 0; trial < 1000; ++trial) {
    const size_t length = rng.UniformInt(256);
    std::vector<uint8_t> garbage(length);
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.NextU64());
    }
    NodeRecord record;
    if (DecodeNode(garbage, 128, &record)) {
      for (const auto& [ref, sig] : record.entries) {
        EXPECT_EQ(sig.num_bits(), 128u);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Persistence corruption injection.
// ---------------------------------------------------------------------------

class PersistenceCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Dataset dataset = ClusteredDataset(510, 300, 120, 6, 10, 2);
    SgTreeOptions options;
    options.num_bits = 120;
    options.max_entries = 8;
    tree_ = std::make_unique<SgTree>(options);
    for (const Transaction& txn : dataset.transactions) tree_->Insert(txn);
    // Test-unique path: ctest runs the fixture's tests concurrently, and a
    // shared file would race between one test's writes and the other's
    // TearDown cleanup.
    path_ = ::testing::TempDir() + "/sgtree_corrupt_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".bin";
    ASSERT_TRUE(SaveTree(*tree_, path_));
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(in), {});
    options_ = options;
  }

  void TearDown() override { std::remove(path_.c_str()); }

  void WriteBytes(const std::vector<char>& bytes) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  std::unique_ptr<SgTree> tree_;
  SgTreeOptions options_;
  std::string path_;
  std::vector<char> bytes_;
};

TEST_F(PersistenceCorruptionTest, TruncationsNeverCrash) {
  // Truncate at a spread of offsets; loading must fail cleanly or, for a
  // full-length file, succeed.
  for (size_t cut = 0; cut < bytes_.size(); cut += 97) {
    WriteBytes(std::vector<char>(bytes_.begin(), bytes_.begin() + cut));
    EXPECT_EQ(LoadTree(path_, options_), nullptr) << "cut=" << cut;
  }
  WriteBytes(bytes_);
  EXPECT_NE(LoadTree(path_, options_), nullptr);
}

TEST_F(PersistenceCorruptionTest, BitFlipsLoadCleanlyOrFail) {
  // Flip one byte at a spread of positions. The loader may reject the file
  // or produce a tree; it must never crash, and an accepted tree must pass
  // at least basic accounting (traversal via CheckTree terminates).
  Rng rng(511);
  for (size_t pos = 8; pos < bytes_.size(); pos += 131) {
    std::vector<char> mutated = bytes_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteBytes(mutated);
    auto loaded = LoadTree(path_, options_);
    if (loaded != nullptr) {
      (void)CheckTree(*loaded);  // Must terminate without crashing.
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial tree shapes.
// ---------------------------------------------------------------------------

TEST(AdversarialShapeTest, AllIdenticalTransactions) {
  SgTreeOptions options;
  options.num_bits = 64;
  options.max_entries = 5;
  SgTree tree(options);
  const Signature sig =
      Signature::FromItems(std::vector<uint32_t>{7, 8, 9}, 64);
  for (uint64_t i = 0; i < 300; ++i) tree.Insert(sig, i);
  EXPECT_TRUE(CheckTree(tree).ok);
  EXPECT_EQ(ContainmentSearch(tree, sig).size(), 300u);
  EXPECT_DOUBLE_EQ(DfsNearest(tree, sig).distance, 0.0);
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(tree.Erase(sig, i));
  }
  EXPECT_TRUE(tree.empty());
}

TEST(AdversarialShapeTest, StrictlyNestedSignatures) {
  // t_i = {0, 1, ..., i}: every signature contains all previous ones, the
  // worst case for containment-based ChooseSubtree.
  SgTreeOptions options;
  options.num_bits = 128;
  options.max_entries = 6;
  SgTree tree(options);
  std::vector<uint32_t> items;
  for (uint32_t i = 0; i < 120; ++i) {
    items.push_back(i);
    tree.Insert(Signature::FromItems(items, 128), i);
  }
  EXPECT_TRUE(CheckTree(tree).ok);
  // The singleton {0} has exactly one superset chain; containment query for
  // the largest prefix set must return only the largest transactions.
  const auto holders =
      ContainmentSearch(tree, Signature::FromItems(items, 128));
  EXPECT_EQ(holders, (std::vector<uint64_t>{119}));
}

TEST(AdversarialShapeTest, SingletonTransactionsEveryItem) {
  SgTreeOptions options;
  options.num_bits = 256;
  options.max_entries = 8;
  SgTree tree(options);
  for (uint32_t i = 0; i < 256; ++i) {
    tree.Insert(Signature::FromItems(std::vector<uint32_t>{i}, 256), i);
  }
  EXPECT_TRUE(CheckTree(tree).ok);
  // NN of {i} is itself at distance 0.
  for (uint32_t i = 0; i < 256; i += 37) {
    const Signature q = Signature::FromItems(std::vector<uint32_t>{i}, 256);
    EXPECT_DOUBLE_EQ(DfsNearest(tree, q).distance, 0.0);
  }
}

// Capacity sweep: invariants and exactness across node capacities,
// including the minimum legal capacity.
class CapacitySweepTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CapacitySweepTest, InvariantsAndExactness) {
  SgTreeOptions options;
  options.num_bits = 150;
  options.max_entries = GetParam();
  SgTree tree(options);
  const Dataset dataset = ClusteredDataset(520, 500, 150, 8, 10, 2);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const TreeReport report = CheckTree(tree);
  ASSERT_TRUE(report.ok) << report.message;
  LinearScan scan(dataset);
  Rng rng(521);
  for (int q = 0; q < 10; ++q) {
    Signature query = RandomSignature(rng, 150, 0.06);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(DfsNearest(tree, query).distance,
                     scan.Nearest(query).distance);
  }
  // Delete a slice and recheck.
  for (size_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree.Erase(dataset.transactions[i]));
  }
  EXPECT_TRUE(CheckTree(tree).ok);
}

INSTANTIATE_TEST_SUITE_P(Capacities, CapacitySweepTest,
                         ::testing::Values(4u, 5u, 8u, 16u, 33u, 64u, 128u));

// Min-fill sweep: legality of the fill fraction range.
class MinFillSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(MinFillSweepTest, InvariantsHold) {
  SgTreeOptions options;
  options.num_bits = 100;
  options.max_entries = 10;
  options.min_fill_fraction = GetParam();
  SgTree tree(options);
  Rng rng(522);
  for (uint64_t i = 0; i < 400; ++i) {
    Signature sig = RandomSignature(rng, 100, 0.08);
    if (sig.Empty()) sig.Set(0);
    tree.Insert(sig, i);
  }
  EXPECT_TRUE(CheckTree(tree).ok);
}

INSTANTIATE_TEST_SUITE_P(Fills, MinFillSweepTest,
                         ::testing::Values(0.1, 0.25, 0.4, 0.5));

}  // namespace
}  // namespace sgtree
