// Unit tests for the shared nearest-rank percentile helper (obs/percentile.h)
// that the executor batch reports, the router batch reports, and the bench
// tables all use — one definition, tested once.

#include "obs/percentile.h"

#include <vector>

#include <gtest/gtest.h>

namespace sgtree {
namespace obs {
namespace {

TEST(PercentileTest, EmptySampleYieldsZero) {
  const std::vector<double> empty;
  EXPECT_EQ(NearestRankPercentile(empty, 0), 0.0);
  EXPECT_EQ(NearestRankPercentile(empty, 50), 0.0);
  EXPECT_EQ(NearestRankPercentile(empty, 100), 0.0);
}

TEST(PercentileTest, SingleSampleIsEveryPercentile) {
  const std::vector<double> one{7.5};
  EXPECT_EQ(NearestRankPercentile(one, 0), 7.5);
  EXPECT_EQ(NearestRankPercentile(one, 50), 7.5);
  EXPECT_EQ(NearestRankPercentile(one, 99), 7.5);
  EXPECT_EQ(NearestRankPercentile(one, 100), 7.5);
}

TEST(PercentileTest, NearestRankDefinition) {
  // Nearest rank: rank = ceil(p/100 * n), clamped to [1, n], 1-indexed.
  const std::vector<double> v{10, 20, 30, 40, 50, 60, 70, 80, 90, 100};
  EXPECT_EQ(NearestRankPercentile(v, 0), 10.0);    // rank clamps up to 1.
  EXPECT_EQ(NearestRankPercentile(v, 10), 10.0);   // ceil(1.0)  = 1.
  EXPECT_EQ(NearestRankPercentile(v, 11), 20.0);   // ceil(1.1)  = 2.
  EXPECT_EQ(NearestRankPercentile(v, 50), 50.0);   // ceil(5.0)  = 5.
  EXPECT_EQ(NearestRankPercentile(v, 95), 100.0);  // ceil(9.5)  = 10.
  EXPECT_EQ(NearestRankPercentile(v, 99), 100.0);  // ceil(9.9)  = 10.
  EXPECT_EQ(NearestRankPercentile(v, 100), 100.0);
}

TEST(PercentileTest, P99OnOneHundredSamplesIsTheSecondLargest) {
  // The classic sanity check: with exactly 100 samples, p99 is sample #99.
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(static_cast<double>(i));
  EXPECT_EQ(NearestRankPercentile(v, 99), 99.0);
  EXPECT_EQ(NearestRankPercentile(v, 50), 50.0);
  EXPECT_EQ(NearestRankPercentile(v, 1), 1.0);
}

TEST(PercentileTest, DuplicateValuesAreCountedPerSample) {
  const std::vector<double> v{1, 1, 1, 1, 9};
  EXPECT_EQ(NearestRankPercentile(v, 50), 1.0);
  EXPECT_EQ(NearestRankPercentile(v, 80), 1.0);  // ceil(4.0) = 4.
  EXPECT_EQ(NearestRankPercentile(v, 81), 9.0);  // ceil(4.05) = 5.
}

TEST(PercentileTest, SortAndPercentileSortsInPlace) {
  std::vector<double> v{30, 10, 50, 20, 40};
  EXPECT_EQ(SortAndPercentile(v, 50), 30.0);
  const std::vector<double> sorted{10, 20, 30, 40, 50};
  EXPECT_EQ(v, sorted);  // The in-place sort is part of the contract.
  EXPECT_EQ(NearestRankPercentile(v, 95), 50.0);
}

}  // namespace
}  // namespace obs
}  // namespace sgtree
