// Tests for the inverted-file index and the SG-tree's subset query,
// cross-checked against the linear scan and each other.

#include "inverted/inverted_index.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/quest_generator.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomItems;

struct Fixture {
  Dataset dataset;
  std::unique_ptr<InvertedIndex> inverted;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<LinearScan> scan;
};

Fixture MakeFixture(uint64_t seed, uint32_t n = 800) {
  Fixture f;
  f.dataset = ClusteredDataset(seed, n, 150, 8, 10, 2);
  f.inverted = std::make_unique<InvertedIndex>(f.dataset);
  SgTreeOptions options;
  options.num_bits = 150;
  options.max_entries = 10;
  f.tree = std::make_unique<SgTree>(options);
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  f.scan = std::make_unique<LinearScan>(f.dataset);
  return f;
}

TEST(InvertedIndexTest, BuildCountsEverything) {
  const Fixture f = MakeFixture(1);
  EXPECT_EQ(f.inverted->size(), f.dataset.size());
  EXPECT_EQ(f.inverted->num_items(), 150u);
}

TEST(InvertedIndexTest, ContainingMatchesScan) {
  const Fixture f = MakeFixture(2);
  Rng rng(3);
  for (int trial = 0; trial < 40; ++trial) {
    // Probe with prefixes of real transactions (non-trivial results).
    const auto& txn = f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    const size_t take = 1 + rng.UniformInt(txn.items.size());
    std::vector<ItemId> probe(txn.items.begin(), txn.items.begin() + take);
    const Signature probe_sig = Signature::FromItems(probe, 150);
    EXPECT_EQ(f.inverted->Containing(probe), f.scan->Containing(probe_sig));
  }
}

TEST(InvertedIndexTest, ContainingEmptyQueryReturnsAll) {
  const Fixture f = MakeFixture(4, 100);
  EXPECT_EQ(f.inverted->Containing({}).size(), 100u);
}

TEST(InvertedIndexTest, ContainedInMatchesScanAndTree) {
  const Fixture f = MakeFixture(5);
  Rng rng(6);
  for (int trial = 0; trial < 40; ++trial) {
    // Union of two transactions: plenty of subsets exist.
    const auto& a = f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    const auto& b = f.dataset.transactions[rng.UniformInt(f.dataset.size())];
    Signature query_sig = Signature::FromItems(a.items, 150);
    query_sig.UnionWith(Signature::FromItems(b.items, 150));
    const auto query_items = query_sig.ToItems();

    const auto expected = f.scan->ContainedIn(query_sig);
    EXPECT_EQ(f.inverted->ContainedIn(query_items), expected);
    EXPECT_EQ(SubsetSearch(*f.tree, query_sig), expected);
    EXPECT_FALSE(expected.empty());  // a and b themselves qualify.
  }
}

TEST(InvertedIndexTest, KNearestMatchesScan) {
  const Fixture f = MakeFixture(7);
  Rng rng(8);
  for (uint32_t k : {1u, 5u, 20u}) {
    for (int trial = 0; trial < 15; ++trial) {
      const auto query = RandomItems(rng, 150, 1 + rng.UniformInt(15));
      const Signature query_sig = Signature::FromItems(query, 150);
      const auto expected = f.scan->KNearest(query_sig, k);
      const auto actual = f.inverted->KNearest(query, k);
      ASSERT_EQ(actual.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance)
            << "k=" << k << " i=" << i;
        EXPECT_EQ(actual[i].tid, expected[i].tid);
      }
    }
  }
}

TEST(InvertedIndexTest, KNearestFallbackCoversDisjointNeighbors) {
  // Dataset where the nearest neighbor shares NO item with the query: the
  // size-sorted fallback must find it.
  Dataset dataset;
  dataset.num_items = 100;
  dataset.transactions.push_back({0, {50}});                 // Size 1.
  dataset.transactions.push_back({1, {60, 61, 62, 63, 64}}); // Size 5.
  for (uint64_t i = 2; i < 20; ++i) {
    dataset.transactions.push_back(
        {i, {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}});  // Share some items.
  }
  InvertedIndex index(dataset);
  // Query {20, 21}: disjoint from everything. NN = tid 0 at distance 3.
  const auto result = index.KNearest({20, 21}, 2);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0].tid, 0u);
  EXPECT_DOUBLE_EQ(result[0].distance, 3.0);
  EXPECT_EQ(result[1].tid, 1u);
  EXPECT_DOUBLE_EQ(result[1].distance, 7.0);
}

TEST(InvertedIndexTest, RangeMatchesScan) {
  const Fixture f = MakeFixture(9);
  Rng rng(10);
  for (double epsilon : {2.0, 6.0, 14.0}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto query = RandomItems(rng, 150, 1 + rng.UniformInt(12));
      const Signature query_sig = Signature::FromItems(query, 150);
      const auto expected = f.scan->Range(query_sig, epsilon);
      const auto actual = f.inverted->Range(query, epsilon);
      ASSERT_EQ(actual.size(), expected.size()) << "eps=" << epsilon;
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(actual[i].tid, expected[i].tid);
      }
    }
  }
}

TEST(InvertedIndexTest, InsertAppends) {
  Fixture f = MakeFixture(11, 200);
  Transaction extra;
  extra.tid = 9999;
  extra.items = {3, 4, 5};
  f.inverted->Insert(extra);
  EXPECT_EQ(f.inverted->size(), 201u);
  const auto found = f.inverted->Containing({3, 4, 5});
  EXPECT_NE(std::find(found.begin(), found.end(), 9999u), found.end());
  const auto nn = f.inverted->KNearest({3, 4, 5}, 1);
  EXPECT_DOUBLE_EQ(nn[0].distance, 0.0);
}

TEST(InvertedIndexTest, StatsChargePostingPages) {
  const Fixture f = MakeFixture(12);
  QueryStats stats;
  f.inverted->Containing({1, 2, 3}, &stats);
  EXPECT_EQ(stats.nodes_accessed, 3u);   // Three lists read.
  EXPECT_GE(stats.random_ios, 3u);       // At least a page each.
}

TEST(InvertedIndexTest, QuestWorkloadAgreement) {
  QuestOptions qopt;
  qopt.num_transactions = 2000;
  qopt.num_items = 300;
  qopt.num_patterns = 80;
  qopt.seed = 13;
  QuestGenerator gen(qopt);
  const Dataset dataset = gen.Generate();
  InvertedIndex index(dataset);
  LinearScan scan(dataset);
  for (const Transaction& q : gen.GenerateQueries(20)) {
    const Signature sig = Signature::FromItems(q.items, 300);
    const auto expected = scan.KNearest(sig, 5);
    const auto actual = index.KNearest(q.items, 5);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(actual[i].distance, expected[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// SG-tree subset query.
// ---------------------------------------------------------------------------

TEST(SubsetSearchTest, MatchesScan) {
  const Fixture f = MakeFixture(14);
  Rng rng(15);
  for (int trial = 0; trial < 30; ++trial) {
    const Signature query = Signature::FromItems(
        RandomItems(rng, 150, 20 + rng.UniformInt(40)), 150);
    EXPECT_EQ(SubsetSearch(*f.tree, query), f.scan->ContainedIn(query));
  }
}

TEST(SubsetSearchTest, EmptyQueryMatchesNothing) {
  const Fixture f = MakeFixture(16, 100);
  EXPECT_TRUE(SubsetSearch(*f.tree, Signature(150)).empty());
}

TEST(SubsetSearchTest, FullQueryMatchesEverything) {
  const Fixture f = MakeFixture(17, 100);
  Signature full(150);
  for (uint32_t i = 0; i < 150; ++i) full.Set(i);
  EXPECT_EQ(SubsetSearch(*f.tree, full).size(), 100u);
}

}  // namespace
}  // namespace sgtree
