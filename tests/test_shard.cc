// Tests for the sharded index layer: the tid partition function, the
// scatter-gather router's central promise — answers byte-identical to one
// SG-tree over the same data, for every query type and shard count — plus
// snapshot persistence, durable (per-shard WAL) operation, and a
// kill-one-shard crash-recovery torture. The multithreaded stress tests are
// ThreadSanitizer targets (see the tsan CI job).

#include "shard/sharded_index.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "durability/env.h"
#include "durability/fault_injection.h"
#include "exec/index_backend.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "shard/query_router.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"
#include "storage/buffer_pool.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

constexpr uint32_t kBits = 120;

SgTreeOptions TreeOptions() {
  SgTreeOptions options;
  options.num_bits = kBits;
  options.max_entries = 8;
  return options;
}

ShardedIndexOptions ShardOptions(uint32_t num_shards) {
  ShardedIndexOptions options;
  options.num_shards = num_shards;
  options.tree = TreeOptions();
  return options;
}

// A mixed batch cycling through all six query types.
std::vector<QueryRequest> MixedBatch(uint64_t seed, size_t n) {
  Rng rng(seed);
  std::vector<QueryRequest> batch;
  batch.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    QueryRequest request;
    request.type = static_cast<QueryType>(i % 6);
    request.query = RandomSignature(rng, kBits, 0.07);
    request.k = 1 + static_cast<uint32_t>(i % 7);
    request.epsilon = 6.0 + static_cast<double>(i % 5);
    batch.push_back(std::move(request));
  }
  return batch;
}

// Serial single-tree oracle: one private pool cleared per query, the same
// cold-cache protocol the router applies per shard task.
std::vector<QueryResult> SingleTreeReference(
    const SgTree& tree, const std::vector<QueryRequest>& batch) {
  BufferPool pool(64);
  std::vector<QueryResult> out;
  out.reserve(batch.size());
  for (const QueryRequest& request : batch) {
    pool.Clear();
    out.push_back(Execute(SgTreeBackend(tree), request, &pool));
  }
  return out;
}

// Result VALUES must match: neighbors, ids, and the error flag. Counters
// and timings are intentionally excluded (a sharded run sums per-shard
// work, which differs from the single tree's).
void ExpectSameAnswers(const std::vector<QueryResult>& expected,
                       const std::vector<QueryResult>& actual,
                       const std::string& label) {
  ASSERT_EQ(expected.size(), actual.size()) << label;
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].neighbors, actual[i].neighbors)
        << label << " query " << i;
    EXPECT_EQ(expected[i].ids, actual[i].ids) << label << " query " << i;
    EXPECT_EQ(expected[i].error, actual[i].error) << label << " query " << i;
  }
}

// ---------------------------------------------------------------------------
// The partition function.
// ---------------------------------------------------------------------------

TEST(ShardOfTest, SingleShardTakesEverything) {
  for (uint64_t tid : {0ull, 1ull, 12345ull, ~0ull}) {
    EXPECT_EQ(ShardedIndex::ShardOf(tid, 1), 0u);
  }
}

TEST(ShardOfTest, IsAPureFunctionOfTidAndCount) {
  Rng rng(40);
  for (int trial = 0; trial < 1000; ++trial) {
    const uint64_t tid = rng.NextU64();
    for (uint32_t n : {2u, 3u, 8u, 64u}) {
      const uint32_t shard = ShardedIndex::ShardOf(tid, n);
      EXPECT_LT(shard, n);
      EXPECT_EQ(shard, ShardedIndex::ShardOf(tid, n));
    }
  }
}

TEST(ShardOfTest, SequentialTidsSpreadEvenly) {
  // Sequential tids are the common case (generators number 0..n-1); the
  // splitmix64 finalizer must not let them pile onto one shard.
  constexpr uint32_t kShards = 8;
  constexpr uint64_t kTids = 80'000;
  std::vector<uint64_t> counts(kShards, 0);
  for (uint64_t tid = 0; tid < kTids; ++tid) {
    ++counts[ShardedIndex::ShardOf(tid, kShards)];
  }
  const auto expected = static_cast<double>(kTids) / kShards;
  for (uint32_t s = 0; s < kShards; ++s) {
    EXPECT_GT(static_cast<double>(counts[s]), 0.9 * expected) << "shard " << s;
    EXPECT_LT(static_cast<double>(counts[s]), 1.1 * expected) << "shard " << s;
  }
}

// ---------------------------------------------------------------------------
// Scatter-gather vs the single tree: the byte-identical contract.
// ---------------------------------------------------------------------------

class ShardCountTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ShardCountTest, AllQueryTypesMatchSingleTree) {
  const uint32_t num_shards = GetParam();
  const Dataset dataset = ClusteredDataset(41, 1200, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);

  ShardedIndex index(ShardOptions(num_shards));
  EXPECT_EQ(index.InsertBatch(dataset.transactions),
            dataset.transactions.size());
  EXPECT_EQ(index.size(), dataset.transactions.size());
  for (uint32_t s = 0; s < num_shards; ++s) {
    EXPECT_TRUE(CheckTree(index.shard(s)).ok) << "shard " << s;
  }

  const std::vector<QueryRequest> batch = MixedBatch(42, 48);
  const std::vector<QueryResult> expected = SingleTreeReference(single, batch);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 3;
  QueryExecutor executor(exec_options);
  for (const bool shared_bound : {true, false}) {
    QueryRouterOptions router_options;
    router_options.shared_knn_bound = shared_bound;
    QueryRouter router(index, &executor, router_options);
    ExpectSameAnswers(expected, router.Run(batch),
                      "shards=" + std::to_string(num_shards) +
                          " shared_bound=" + std::to_string(shared_bound));
  }
}

TEST_P(ShardCountTest, BulkLoadedShardsMatchSingleTree) {
  const uint32_t num_shards = GetParam();
  const Dataset dataset = ClusteredDataset(43, 900, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);

  auto index = ShardedIndex::BulkLoad(dataset, ShardOptions(num_shards));
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->size(), dataset.transactions.size());

  const std::vector<QueryRequest> batch = MixedBatch(44, 36);
  QueryExecutor executor;
  QueryRouter router(*index, &executor);
  // Canonical tie resolution (sgtree/search.h) makes the answers
  // independent of tree shape, so a bulk-loaded index must agree with the
  // insert-built single tree too.
  ExpectSameAnswers(SingleTreeReference(single, batch), router.Run(batch),
                    "bulk shards=" + std::to_string(num_shards));
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, ShardCountTest,
                         ::testing::Values(1u, 2u, 8u));

TEST(QueryRouterTest, EverySchedulingModeMatchesSingleTree) {
  // The scheduling knobs (shard-major slicing, overlapped merge, the
  // per-sub-query cold-cache protocol, the slice size) change WHEN and
  // WHERE sub-queries run and how the pool warms — never the answers. All
  // eight mode corners, plus forced slice geometries, must reproduce the
  // single-tree oracle for the full six-type mix.
  const Dataset dataset = ClusteredDataset(61, 1000, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(4));
  index.InsertBatch(dataset.transactions);

  const std::vector<QueryRequest> batch = MixedBatch(62, 42);
  const std::vector<QueryResult> expected = SingleTreeReference(single, batch);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  QueryExecutor executor(exec_options);
  for (const bool shard_major : {true, false}) {
    for (const bool overlap_merge : {true, false}) {
      for (const bool cold : {true, false}) {
        QueryRouterOptions router_options;
        router_options.shard_major = shard_major;
        router_options.overlap_merge = overlap_merge;
        router_options.cold_per_subquery = cold;
        QueryRouter router(index, &executor, router_options);
        ExpectSameAnswers(expected, router.Run(batch),
                          "shard_major=" + std::to_string(shard_major) +
                              " overlap=" + std::to_string(overlap_merge) +
                              " cold=" + std::to_string(cold));
      }
    }
  }
  for (const uint32_t queries_per_task : {1u, 5u, 100u}) {
    QueryRouterOptions router_options;
    router_options.queries_per_task = queries_per_task;
    QueryRouter router(index, &executor, router_options);
    ExpectSameAnswers(expected, router.Run(batch),
                      "queries_per_task=" + std::to_string(queries_per_task));
  }
}

TEST(QueryRouterTest, ColdProtocolCountersAreGeometryIndependent) {
  // With the per-sub-query cold-cache protocol and the shared bound off,
  // every (query, shard) part runs from an empty pool — so full results,
  // counters included, must not depend on slicing mode, slice size, or
  // lane count.
  const Dataset dataset = ClusteredDataset(63, 700, kBits, 8, 10, 2);
  ShardedIndex index(ShardOptions(3));
  index.InsertBatch(dataset.transactions);
  const std::vector<QueryRequest> batch = MixedBatch(64, 24);

  auto run = [&](uint32_t threads, bool shard_major,
                 uint32_t queries_per_task) {
    QueryExecutorOptions exec_options;
    exec_options.num_threads = threads;
    QueryExecutor executor(exec_options);
    QueryRouterOptions router_options;
    router_options.shared_knn_bound = false;
    router_options.cold_per_subquery = true;
    router_options.shard_major = shard_major;
    router_options.queries_per_task = queries_per_task;
    QueryRouter router(index, &executor, router_options);
    return router.Run(batch);
  };
  const auto reference = run(1, false, 0);  // Serial legacy grid.
  struct Config {
    uint32_t threads;
    bool shard_major;
    uint32_t queries_per_task;
  };
  for (const Config& c : std::vector<Config>{
           {1, true, 0}, {4, true, 0}, {4, true, 3}, {4, false, 0}}) {
    const auto results = run(c.threads, c.shard_major, c.queries_per_task);
    ASSERT_EQ(results.size(), reference.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i], reference[i])
          << "threads=" << c.threads << " shard_major=" << c.shard_major
          << " qpt=" << c.queries_per_task << " query " << i;
    }
  }
}

TEST(QueryRouterTest, RepeatedRunsAreFullyDeterministic) {
  const Dataset dataset = ClusteredDataset(45, 800, kBits, 8, 10, 2);
  ShardedIndex index(ShardOptions(4));
  index.InsertBatch(dataset.transactions);
  const std::vector<QueryRequest> batch = MixedBatch(46, 30);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  QueryExecutor executor(exec_options);
  // Shared bound off + private pools: per-shard counters are a pure
  // function of the input, so whole results (values AND counters) must be
  // identical run over run.
  QueryRouterOptions router_options;
  router_options.shared_knn_bound = false;
  QueryRouter router(index, &executor, router_options);
  const std::vector<QueryResult> first = router.Run(batch);
  for (int run = 0; run < 3; ++run) {
    const std::vector<QueryResult> again = router.Run(batch);
    ASSERT_EQ(again.size(), first.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_EQ(first[i], again[i]) << "run " << run << " query " << i;
    }
  }
}

TEST(QueryRouterTest, InvalidRequestsAreNotFannedOut) {
  const Dataset dataset = ClusteredDataset(47, 300, kBits, 6, 10, 2);
  ShardedIndex index(ShardOptions(2));
  index.InsertBatch(dataset.transactions);
  QueryExecutor executor;
  QueryRouter router(index, &executor);

  std::vector<QueryRequest> batch = MixedBatch(48, 4);
  batch[1].type = QueryType::kKnn;
  batch[1].k = 0;
  batch[3].type = QueryType::kRange;
  batch[3].epsilon = -1.0;
  const auto results = router.Run(batch);
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_TRUE(results[2].ok());
  EXPECT_FALSE(results[3].ok());
  EXPECT_TRUE(results[1].neighbors.empty());
  EXPECT_EQ(results[1].stats.nodes_accessed, 0u);

  // The report distinguishes batch size from rejects; rejected queries
  // contribute no latency samples and no counters.
  const BatchReport& report = router.last_batch_report();
  EXPECT_EQ(report.queries, 4u);
  EXPECT_EQ(report.rejected, 2u);
}

// Degenerate batch shapes. The serving layer leans on these: an adaptive
// batcher can legitimately flush a single request (deadline fired first) or
// a batch holding byte-identical duplicates (two clients asked the same
// thing before the cache had it), and the result-cache keying assumes each
// duplicate gets its own, equal answer in order.
TEST(QueryRouterTest, EmptyBatchYieldsEmptyResults) {
  const Dataset dataset = ClusteredDataset(51, 300, kBits, 6, 10, 2);
  ShardedIndex index(ShardOptions(4));
  index.InsertBatch(dataset.transactions);
  QueryExecutor executor;
  QueryRouter router(index, &executor);

  const std::vector<QueryResult> results = router.Run({});
  EXPECT_TRUE(results.empty());
  EXPECT_EQ(router.last_batch_report().queries, 0u);
  EXPECT_EQ(router.last_batch_report().rejected, 0u);

  // The router is still healthy afterwards: a real batch runs normally.
  const auto batch = MixedBatch(51, 6);
  EXPECT_EQ(router.Run(batch).size(), batch.size());
}

TEST(QueryRouterTest, SingleQueryOnEightShardFleetMatchesSingleTree) {
  const Dataset dataset = ClusteredDataset(53, 900, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(8));
  index.InsertBatch(dataset.transactions);
  QueryExecutor executor;
  QueryRouter router(index, &executor);

  // Every type, one at a time: the fan-out runs 8 shard tasks for ONE
  // query and the merge must still be byte-identical to the single tree.
  const std::vector<QueryRequest> all = MixedBatch(53, 6);
  for (size_t i = 0; i < all.size(); ++i) {
    const std::vector<QueryRequest> one = {all[i]};
    ExpectSameAnswers(SingleTreeReference(single, one), router.Run(one),
                      "single query " + std::to_string(i));
  }
}

TEST(QueryRouterTest, DuplicateRequestsGetIdenticalAnswersInOrder) {
  const Dataset dataset = ClusteredDataset(55, 600, kBits, 6, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(4));
  index.InsertBatch(dataset.transactions);
  QueryExecutor executor;
  QueryRouter router(index, &executor);

  // Triplicate every request, interleaved so duplicates are not adjacent.
  const std::vector<QueryRequest> distinct = MixedBatch(55, 6);
  std::vector<QueryRequest> batch;
  for (int round = 0; round < 3; ++round) {
    for (const QueryRequest& request : distinct) batch.push_back(request);
  }
  const std::vector<QueryResult> results = router.Run(batch);
  ExpectSameAnswers(SingleTreeReference(single, batch), results,
                    "duplicated batch");
  ASSERT_EQ(results.size(), 3 * distinct.size());
  for (size_t i = 0; i < distinct.size(); ++i) {
    for (int round = 1; round < 3; ++round) {
      const QueryResult& first = results[i];
      const QueryResult& again = results[i + round * distinct.size()];
      EXPECT_EQ(first.neighbors, again.neighbors) << "query " << i;
      EXPECT_EQ(first.ids, again.ids) << "query " << i;
      EXPECT_EQ(first.error, again.error) << "query " << i;
    }
  }
}

TEST(QueryRouterTest, FeedsShardMetrics) {
  const Dataset dataset = ClusteredDataset(49, 400, kBits, 6, 10, 2);
  ShardedIndex index(ShardOptions(3));
  index.InsertBatch(dataset.transactions);
  QueryExecutor executor;
  obs::MetricsRegistry registry;
  QueryRouterOptions router_options;
  router_options.metrics = &registry;
  QueryRouter router(index, &executor, router_options);
  const auto batch = MixedBatch(50, 12);
  router.Run(batch);

  EXPECT_EQ(registry.GetCounter("shard.queries")->Value(), 12u);
  EXPECT_EQ(registry.GetCounter("shard.rejected")->Value(), 0u);
  EXPECT_EQ(registry.GetCounter("shard.fanout_tasks")->Value(), 36u);
  for (uint32_t s = 0; s < 3; ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    EXPECT_EQ(registry.GetCounter(prefix + "queries")->Value(), 12u);
  }
  EXPECT_GT(router.last_batch_report().p99_us, 0.0);
  EXPECT_EQ(router.last_batch_report().queries, 12u);
}

// ---------------------------------------------------------------------------
// Concurrency: the TSAN targets. Shared sharded buffer pool + shared k-NN
// bound + multiple workers, graded against the serial oracle.
// ---------------------------------------------------------------------------

TEST(ShardStressTest, SharedPoolManyWorkersMatchesSerialOracle) {
  const Dataset dataset = ClusteredDataset(51, 1000, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(8));
  index.InsertBatch(dataset.transactions);

  const std::vector<QueryRequest> batch = MixedBatch(52, 96);
  const std::vector<QueryResult> expected = SingleTreeReference(single, batch);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  QueryExecutor executor(exec_options);
  QueryRouterOptions router_options;
  router_options.pool_shards = 4;  // One shared pool, all workers.
  router_options.buffer_pages = 128;
  QueryRouter router(index, &executor, router_options);
  for (int run = 0; run < 3; ++run) {
    // Values stay byte-identical even though cache hits (and thus
    // counters) are schedule-dependent under the shared pool.
    ExpectSameAnswers(expected, router.Run(batch),
                      "sharedpool run=" + std::to_string(run));
  }
}

TEST(ShardStressTest, SharedBoundManyWorkersMatchesSerialOracle) {
  const Dataset dataset = ClusteredDataset(53, 1000, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(8));
  index.InsertBatch(dataset.transactions);

  // All-kNN batch to hammer the shared atomic bound from every worker.
  Rng rng(54);
  std::vector<QueryRequest> batch;
  for (int i = 0; i < 120; ++i) {
    QueryRequest request;
    request.type =
        i % 2 == 0 ? QueryType::kKnn : QueryType::kBestFirstKnn;
    request.query = RandomSignature(rng, kBits, 0.07);
    request.k = 1 + static_cast<uint32_t>(i % 10);
    batch.push_back(std::move(request));
  }
  const std::vector<QueryResult> expected = SingleTreeReference(single, batch);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 4;
  QueryExecutor executor(exec_options);
  QueryRouter router(index, &executor);  // shared_knn_bound on by default.
  for (int run = 0; run < 3; ++run) {
    ExpectSameAnswers(expected, router.Run(batch),
                      "sharedbound run=" + std::to_string(run));
  }
}

TEST(ShardStressTest, OverlappedMergeTinySlicesMatchesSerialOracle) {
  // Worst case for the overlapped merge: single-query slices (maximum
  // countdown contention — all 8 shards of a query can finish on different
  // lanes at once), a shared pool, the shared bound, and stealing-prone
  // skew from the mixed batch. TSAN checks the per-query countdown and the
  // merge-once guarantee; the oracle checks the answers.
  const Dataset dataset = ClusteredDataset(65, 1000, kBits, 8, 10, 2);
  SgTree single(TreeOptions());
  for (const Transaction& txn : dataset.transactions) single.Insert(txn);
  ShardedIndex index(ShardOptions(8));
  index.InsertBatch(dataset.transactions);

  const std::vector<QueryRequest> batch = MixedBatch(66, 96);
  const std::vector<QueryResult> expected = SingleTreeReference(single, batch);

  QueryExecutorOptions exec_options;
  exec_options.num_threads = 8;
  exec_options.max_chunk = 1;  // Per-item claiming: maximum interleaving.
  QueryExecutor executor(exec_options);
  QueryRouterOptions router_options;
  router_options.pool_shards = 4;
  router_options.buffer_pages = 64;
  router_options.queries_per_task = 1;
  QueryRouter router(index, &executor, router_options);
  for (int run = 0; run < 3; ++run) {
    ExpectSameAnswers(expected, router.Run(batch),
                      "overlap run=" + std::to_string(run));
  }
}

// ---------------------------------------------------------------------------
// Snapshot persistence.
// ---------------------------------------------------------------------------

TEST(ShardedIndexPersistenceTest, SaveLoadRoundTripAnswersIdentically) {
  const Dataset dataset = ClusteredDataset(55, 700, kBits, 8, 10, 2);
  ShardedIndex index(ShardOptions(4));
  index.InsertBatch(dataset.transactions);

  const std::string path =
      ::testing::TempDir() + "/sgtree_sharded_roundtrip.idx";
  std::string error;
  ASSERT_TRUE(index.Save(path, &error)) << error;
  auto loaded = ShardedIndex::Load(path, ShardOptions(1), &error);
  ASSERT_NE(loaded, nullptr) << error;
  // The manifest, not the caller, decides the shard count.
  EXPECT_EQ(loaded->num_shards(), 4u);
  EXPECT_EQ(loaded->size(), index.size());

  const auto batch = MixedBatch(56, 24);
  QueryExecutor executor;
  QueryRouter router_a(index, &executor);
  const auto expected = router_a.Run(batch);
  QueryRouter router_b(*loaded, &executor);
  ExpectSameAnswers(expected, router_b.Run(batch), "loaded");

  std::remove(path.c_str());
  for (uint32_t s = 0; s < 4; ++s) {
    std::remove(ShardedIndex::ShardSnapshotPath(path, s).c_str());
  }
}

TEST(ShardedIndexPersistenceTest, LoadRejectsGarbageManifest) {
  const std::string path = ::testing::TempDir() + "/sgtree_sharded_bad.idx";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a manifest";
  }
  std::string error;
  EXPECT_EQ(ShardedIndex::Load(path, ShardOptions(1), &error), nullptr);
  EXPECT_FALSE(error.empty());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Durable shards.
// ---------------------------------------------------------------------------

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  Env* env = Env::Posix();
  env->CreateDir(dir);
  // Start from a clean slate: remove any per-shard state a previous run
  // left behind.
  for (uint32_t s = 0; s < 16; ++s) {
    const std::string shard_dir = ShardedIndex::ShardDirFor(dir, s);
    env->Delete(DurableTree::PagePathFor(shard_dir));
    env->Delete(DurableTree::WalPathFor(shard_dir));
  }
  return dir;
}

TEST(ShardedDurableTest, ReopenedIndexAnswersIdentically) {
  const Dataset dataset = ClusteredDataset(57, 400, kBits, 6, 10, 2);
  const std::string dir = FreshDir("sharded_durable_reopen");
  const auto batch = MixedBatch(58, 24);
  QueryExecutor executor;

  std::vector<QueryResult> before;
  {
    std::string error;
    auto index =
        ShardedIndex::OpenDurable(Env::Posix(), dir, ShardOptions(3), &error);
    ASSERT_NE(index, nullptr) << error;
    ASSERT_TRUE(index->durable());
    EXPECT_EQ(index->InsertBatch(dataset.transactions),
              dataset.transactions.size());
    QueryRouter router(*index, &executor);
    before = router.Run(batch);
  }  // Close (destructors flush nothing extra: the WAL already has it all).

  std::string error;
  auto reopened =
      ShardedIndex::OpenDurable(Env::Posix(), dir, ShardOptions(3), &error);
  ASSERT_NE(reopened, nullptr) << error;
  EXPECT_EQ(reopened->size(), dataset.transactions.size());
  QueryRouter router(*reopened, &executor);
  ExpectSameAnswers(before, router.Run(batch), "reopened");

  // And the recovered shards must equal a never-persisted in-memory build.
  ShardedIndex in_memory(ShardOptions(3));
  in_memory.InsertBatch(dataset.transactions);
  QueryRouter reference(in_memory, &executor);
  ExpectSameAnswers(reference.Run(batch), router.Run(batch), "vs in-memory");
}

// Kill-one-shard torture: a serial insert workload runs over the
// fault-injecting env; the kill point lands inside one shard's WAL, after
// which every shard's writes fail (the process is dead). On reopen with a
// clean env, exactly the acknowledged inserts must be present and the
// answers must match a never-crashed in-memory index over the same acked
// prefix.
TEST(ShardedDurableTest, KillMidWriteLosesNothingAcknowledged) {
  constexpr uint32_t kShards = 3;
  const Dataset dataset = ClusteredDataset(59, 60, kBits, 6, 10, 2);

  // Clean instrumented pass: count the writes the full workload issues.
  uint64_t open_writes = 0;
  uint64_t total_writes = 0;
  {
    FaultState state;
    FaultInjectingEnv env(Env::Posix(), &state);
    const std::string dir = FreshDir("sharded_torture_clean");
    std::string error;
    auto index =
        ShardedIndex::OpenDurable(&env, dir, ShardOptions(kShards), &error);
    ASSERT_NE(index, nullptr) << error;
    open_writes = state.writes_issued();
    for (const Transaction& txn : dataset.transactions) {
      ASSERT_TRUE(index->Insert(txn));
    }
    total_writes = state.writes_issued();
  }
  ASSERT_GT(total_writes, open_writes);

  // Sweep kill points across the insert phase, with and without a torn
  // tail on the fatal write.
  const uint64_t span = total_writes - open_writes;
  struct Trial {
    uint64_t kill;
    uint64_t torn;
  };
  const std::vector<Trial> trials = {
      {open_writes + 1, UINT64_MAX},
      {open_writes + span / 3, UINT64_MAX},
      {open_writes + span / 2, 3},  // Torn: 3 bytes of the record land.
      {open_writes + 2 * span / 3, UINT64_MAX},
      {total_writes - 1, 5},
  };
  for (size_t t = 0; t < trials.size(); ++t) {
    SCOPED_TRACE("trial " + std::to_string(t) + " kill_at_write=" +
                 std::to_string(trials[t].kill));
    FaultPlan plan;
    plan.kill_at_write = trials[t].kill;
    plan.torn_prefix_bytes = trials[t].torn;
    FaultState state(plan);
    FaultInjectingEnv env(Env::Posix(), &state);
    const std::string dir = FreshDir("sharded_torture_" + std::to_string(t));

    std::vector<Transaction> acked;
    {
      std::string error;
      auto index =
          ShardedIndex::OpenDurable(&env, dir, ShardOptions(kShards), &error);
      ASSERT_NE(index, nullptr) << error;  // Kill points start after open.
      for (const Transaction& txn : dataset.transactions) {
        if (!index->Insert(txn)) break;  // The shard's WAL is dead.
        acked.push_back(txn);
      }
      EXPECT_LT(acked.size(), dataset.transactions.size());
    }

    // Recover with a clean env: per-shard recovery must surface exactly
    // the acknowledged prefix.
    std::string error;
    auto recovered = ShardedIndex::OpenDurable(Env::Posix(), dir,
                                               ShardOptions(kShards), &error);
    ASSERT_NE(recovered, nullptr) << error;
    EXPECT_EQ(recovered->size(), acked.size());
    for (uint32_t s = 0; s < kShards; ++s) {
      EXPECT_TRUE(CheckTree(recovered->shard(s)).ok) << "shard " << s;
    }

    ShardedIndex reference(ShardOptions(kShards));
    for (const Transaction& txn : acked) {
      ASSERT_TRUE(reference.Insert(txn));
    }
    QueryExecutor executor;
    const auto batch = MixedBatch(60 + t, 18);
    QueryRouter recovered_router(*recovered, &executor);
    QueryRouter reference_router(reference, &executor);
    ExpectSameAnswers(reference_router.Run(batch),
                      recovered_router.Run(batch), "recovered");
  }
}

}  // namespace
}  // namespace sgtree
