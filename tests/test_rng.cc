#include "common/rng.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/zipf.h"

namespace sgtree {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(12345);
  Rng b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng rng(0);
  uint64_t ored = 0;
  for (int i = 0; i < 16; ++i) ored |= rng.NextU64();
  EXPECT_NE(ored, 0u);
}

TEST(RngTest, UniformIntStaysInBounds) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversSmallRange) {
  Rng rng(8);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 6000; ++i) {
    ++counts[rng.UniformInt(6)];
  }
  for (int c : counts) {
    EXPECT_GT(c, 800);  // ~1000 expected per cell.
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, PoissonMeanIsClose) {
  Rng rng(10);
  for (double mean : {1.0, 6.0, 10.0, 30.0, 100.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(mean);
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.1) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(11);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.Poisson(0.0), 0u);
}

TEST(RngTest, ExponentialMeanIsClose) {
  Rng rng(12);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, NormalMomentsAreClose) {
  Rng rng(13);
  const int n = 20000;
  double sum = 0;
  double sq = 0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(99);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, Theta0IsUniform) {
  Rng rng(14);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_GT(c, 1600);
    EXPECT_LT(c, 2400);
  }
}

TEST(ZipfTest, SkewPrefersLowRanks) {
  Rng rng(15);
  ZipfSampler zipf(50, 1.0);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], 3 * counts[25]);
  // Rank-0 frequency under theta=1 over 50 values is 1/H_50 ~ 0.222.
  EXPECT_NEAR(counts[0] / 20000.0, 0.222, 0.03);
}

TEST(ZipfTest, AllValuesReachable) {
  Rng rng(16);
  ZipfSampler zipf(5, 0.9);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_GT(c, 0);
}

TEST(ZipfTest, SingleValueDomain) {
  Rng rng(17);
  ZipfSampler zipf(1, 0.9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(rng), 0u);
}

}  // namespace
}  // namespace sgtree
