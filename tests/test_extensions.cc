// Tests for the extension features: cosine metric, incremental NN
// iteration / all-ties NN, the paged reader, and the alternative bulk-load
// orders.

#include <algorithm>
#include <cmath>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "baseline/linear_scan.h"
#include "common/rng.h"
#include "data/quest_generator.h"
#include "sgtree/bulk_load.h"
#include "sgtree/incremental.h"
#include "sgtree/paged_reader.h"
#include "sgtree/search.h"
#include "sgtree/tree_checker.h"
#include "tests/test_util.h"

namespace sgtree {
namespace {

using ::sgtree::testing::ClusteredDataset;
using ::sgtree::testing::RandomSignature;

SgTreeOptions SmallOptions(uint32_t num_bits = 200) {
  SgTreeOptions options;
  options.num_bits = num_bits;
  options.max_entries = 10;
  return options;
}

// ---------------------------------------------------------------------------
// Cosine metric.
// ---------------------------------------------------------------------------

TEST(CosineTest, BasicValues) {
  const auto a = Signature::FromItems(std::vector<uint32_t>{0, 1, 2, 3}, 32);
  const auto b = Signature::FromItems(std::vector<uint32_t>{2, 3, 4, 5}, 32);
  // |AND| = 2, sqrt(4*4) = 4.
  EXPECT_DOUBLE_EQ(Distance(a, b, Metric::kCosine), 0.5);
  EXPECT_DOUBLE_EQ(Distance(a, a, Metric::kCosine), 0.0);
  const Signature empty(32);
  EXPECT_DOUBLE_EQ(Distance(a, empty, Metric::kCosine), 1.0);
  EXPECT_DOUBLE_EQ(Distance(empty, empty, Metric::kCosine), 0.0);
}

TEST(CosineTest, BoundIsSound) {
  Rng rng(301);
  for (int trial = 0; trial < 200; ++trial) {
    Signature cover(200);
    std::vector<Signature> members;
    for (int g = 0; g < 5; ++g) {
      Signature t = RandomSignature(rng, 200, 0.06);
      if (t.Empty()) t.Set(static_cast<uint32_t>(rng.UniformInt(200)));
      cover.UnionWith(t);
      members.push_back(std::move(t));
    }
    const Signature query = RandomSignature(rng, 200, 0.06);
    const double bound = MinDistBound(query, cover, Metric::kCosine);
    for (const Signature& t : members) {
      EXPECT_LE(bound, Distance(query, t, Metric::kCosine) + 1e-12);
    }
  }
}

TEST(CosineTest, TreeSearchExact) {
  const Dataset dataset = ClusteredDataset(302, 900, 200, 8, 10, 3);
  SgTreeOptions options = SmallOptions();
  options.metric = Metric::kCosine;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  LinearScan scan(dataset);
  Rng rng(303);
  for (int q = 0; q < 25; ++q) {
    Signature query = RandomSignature(rng, 200, 0.05);
    if (query.Empty()) query.Set(1);
    EXPECT_DOUBLE_EQ(
        DfsNearest(tree, query, tree.OwnPoolContext()).distance,
                     scan.Nearest(query, Metric::kCosine).distance);
    const auto knn = DfsKNearest(tree, query, 7, tree.OwnPoolContext());
    const auto expected = scan.KNearest(query, 7, Metric::kCosine);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(knn[i].distance, expected[i].distance);
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental NN iteration.
// ---------------------------------------------------------------------------

struct IteratorFixture {
  Dataset dataset;
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<LinearScan> scan;
};

IteratorFixture MakeIteratorFixture(uint64_t seed) {
  IteratorFixture f;
  f.dataset = ClusteredDataset(seed, 800, 200, 8, 10, 3);
  f.tree = std::make_unique<SgTree>(SmallOptions());
  for (const Transaction& txn : f.dataset.transactions) f.tree->Insert(txn);
  f.scan = std::make_unique<LinearScan>(f.dataset);
  return f;
}

TEST(NearestIteratorTest, YieldsAscendingDistances) {
  const IteratorFixture f = MakeIteratorFixture(310);
  Rng rng(311);
  const Signature query = RandomSignature(rng, 200, 0.05);
  NearestIterator it(*f.tree, query);
  double previous = -1;
  int count = 0;
  while (auto n = it.Next()) {
    EXPECT_GE(n->distance, previous);
    previous = n->distance;
    ++count;
  }
  EXPECT_EQ(count, 800);
}

TEST(NearestIteratorTest, PrefixMatchesKNearest) {
  const IteratorFixture f = MakeIteratorFixture(312);
  Rng rng(313);
  for (int trial = 0; trial < 10; ++trial) {
    const Signature query = RandomSignature(rng, 200, 0.05);
    const auto expected = f.scan->KNearest(query, 15);
    NearestIterator it(*f.tree, query);
    for (size_t i = 0; i < expected.size(); ++i) {
      const auto n = it.Next();
      ASSERT_TRUE(n.has_value());
      EXPECT_DOUBLE_EQ(n->distance, expected[i].distance) << "i=" << i;
      EXPECT_EQ(n->tid, expected[i].tid) << "i=" << i;  // Tid tie order.
    }
  }
}

TEST(NearestIteratorTest, PeekDoesNotAdvance) {
  const IteratorFixture f = MakeIteratorFixture(314);
  Rng rng(315);
  const Signature query = RandomSignature(rng, 200, 0.05);
  NearestIterator it(*f.tree, query);
  const double peeked = it.PeekDistance();
  EXPECT_DOUBLE_EQ(it.PeekDistance(), peeked);
  const auto n = it.Next();
  ASSERT_TRUE(n.has_value());
  EXPECT_DOUBLE_EQ(n->distance, peeked);
}

TEST(NearestIteratorTest, EarlyStopTouchesFewNodes) {
  const IteratorFixture f = MakeIteratorFixture(316);
  // Query = an existing transaction: the first neighbor is distance 0.
  const Signature query =
      Signature::FromItems(f.dataset.transactions[100].items, 200);
  QueryStats stats;
  NearestIterator it(*f.tree, query, &stats);
  ASSERT_TRUE(it.Next().has_value());
  // Fetching one neighbor must not traverse the whole tree.
  EXPECT_LT(stats.nodes_accessed, f.tree->node_count() / 2);
}

TEST(NearestIteratorTest, EmptyTree) {
  SgTree tree(SmallOptions());
  NearestIterator it(tree, Signature(200));
  EXPECT_TRUE(std::isinf(it.PeekDistance()));
  EXPECT_FALSE(it.Next().has_value());
}

TEST(AllNearestTest, ReturnsExactlyTheTies) {
  SgTree tree(SmallOptions(64));
  // Three transactions at distance 1 from the query, others farther.
  const auto query = Signature::FromItems(std::vector<uint32_t>{1, 2, 3}, 64);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 2}, 64), 10);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{2, 3}, 64), 11);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1, 2, 3, 4}, 64),
              12);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{5, 6, 7}, 64), 13);
  tree.Insert(Signature::FromItems(std::vector<uint32_t>{1}, 64), 14);
  const auto ties = AllNearest(tree, query);
  ASSERT_EQ(ties.size(), 3u);
  EXPECT_EQ(ties[0].tid, 10u);
  EXPECT_EQ(ties[1].tid, 11u);
  EXPECT_EQ(ties[2].tid, 12u);
  for (const Neighbor& n : ties) EXPECT_DOUBLE_EQ(n.distance, 1.0);
}

TEST(AllNearestTest, MatchesScanTieCount) {
  const IteratorFixture f = MakeIteratorFixture(317);
  Rng rng(318);
  for (int trial = 0; trial < 20; ++trial) {
    const Signature query = RandomSignature(rng, 200, 0.05);
    const auto ties = AllNearest(*f.tree, query);
    ASSERT_FALSE(ties.empty());
    const double best = f.scan->Nearest(query).distance;
    size_t expected = 0;
    for (const auto& n : f.scan->KNearest(query, 800)) {
      if (n.distance == best) ++expected;
    }
    EXPECT_EQ(ties.size(), expected);
    for (const Neighbor& n : ties) EXPECT_DOUBLE_EQ(n.distance, best);
  }
}

// ---------------------------------------------------------------------------
// Paged reader.
// ---------------------------------------------------------------------------

class PagedReaderTest : public ::testing::TestWithParam<bool> {};

TEST_P(PagedReaderTest, MatchesInMemoryTree) {
  const Dataset dataset = ClusteredDataset(320, 1000, 200, 8, 10, 3);
  SgTreeOptions options;
  options.num_bits = 200;  // Page-derived capacity: images must fit pages.
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);

  const PagedTreeImage image = FlushTreeToPages(tree, GetParam());
  ASSERT_NE(image.pages, nullptr);
  EXPECT_EQ(image.size, tree.size());
  PagedReader::Options reader_options;
  reader_options.cache_pages = 16;
  PagedReader reader(&image, reader_options);

  LinearScan scan(dataset);
  Rng rng(321);
  for (int q = 0; q < 20; ++q) {
    Signature query = RandomSignature(rng, 200, 0.05);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(reader.Nearest(query).distance,
                     scan.Nearest(query).distance);
    const auto knn = reader.KNearest(query, 8);
    const auto expected = scan.KNearest(query, 8);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_DOUBLE_EQ(knn[i].distance, expected[i].distance);
    }
    const auto range = reader.Range(query, 6.0);
    EXPECT_EQ(range.size(), scan.Range(query, 6.0).size());
  }
}

INSTANTIATE_TEST_SUITE_P(CompressOnOff, PagedReaderTest, ::testing::Bool(),
                         [](const auto& info) {
                           return info.param ? "compressed" : "dense";
                         });

TEST(PagedReaderTest, ContainmentMatchesTree) {
  const Dataset dataset = ClusteredDataset(322, 600, 200, 6, 10, 2);
  SgTreeOptions options;
  options.num_bits = 200;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const PagedTreeImage image = FlushTreeToPages(tree, true);
  ASSERT_NE(image.pages, nullptr);
  PagedReader reader(&image, {});
  Rng rng(323);
  for (int trial = 0; trial < 20; ++trial) {
    const auto& txn = dataset.transactions[rng.UniformInt(dataset.size())];
    std::vector<ItemId> probe(txn.items.begin(),
                              txn.items.begin() +
                                  std::min<size_t>(3, txn.items.size()));
    const Signature q = Signature::FromItems(probe, 200);
    EXPECT_EQ(reader.Containing(q),
              ContainmentSearch(tree, q, tree.OwnPoolContext()));
  }
}

TEST(PagedReaderTest, BoundedCacheStaysBounded) {
  const Dataset dataset = ClusteredDataset(324, 2000, 200, 8, 10, 3);
  SgTreeOptions options;
  options.num_bits = 200;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const PagedTreeImage image = FlushTreeToPages(tree, true);
  ASSERT_NE(image.pages, nullptr);

  PagedReader::Options tiny;
  tiny.cache_pages = 4;  // Far below the node count.
  PagedReader reader(&image, tiny);
  LinearScan scan(dataset);
  Rng rng(325);
  for (int q = 0; q < 10; ++q) {
    Signature query = RandomSignature(rng, 200, 0.05);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(reader.Nearest(query).distance,
                     scan.Nearest(query).distance);
  }
  EXPECT_GT(reader.pages_decoded(), 0u);
}

TEST(PagedReaderTest, WarmCacheDecodesLess) {
  const Dataset dataset = ClusteredDataset(326, 1500, 200, 8, 10, 3);
  SgTreeOptions options;
  options.num_bits = 200;
  SgTree tree(options);
  for (const Transaction& txn : dataset.transactions) tree.Insert(txn);
  const PagedTreeImage image = FlushTreeToPages(tree, true);
  PagedReader::Options big;
  big.cache_pages = 4096;
  PagedReader reader(&image, big);
  const Signature query =
      Signature::FromItems(dataset.transactions[3].items, 200);
  QueryStats cold;
  reader.KNearest(query, 5, &cold);
  QueryStats warm;
  reader.KNearest(query, 5, &warm);
  EXPECT_EQ(warm.random_ios, 0u);  // Everything cached.
  EXPECT_EQ(warm.nodes_accessed, cold.nodes_accessed);
}

TEST(PagedReaderTest, EmptyTreeImage) {
  SgTree tree(SmallOptions());
  const PagedTreeImage image = FlushTreeToPages(tree, true);
  ASSERT_NE(image.pages, nullptr);
  PagedReader reader(&image, {});
  EXPECT_TRUE(reader.KNearest(Signature(200), 3).empty());
  EXPECT_TRUE(reader.Range(Signature(200), 5).empty());
}

// ---------------------------------------------------------------------------
// Bulk-load orders.
// ---------------------------------------------------------------------------

class BulkOrderTest : public ::testing::TestWithParam<BulkLoadOrder> {};

TEST_P(BulkOrderTest, InvariantsAndExactness) {
  const Dataset dataset = ClusteredDataset(330, 1200, 200, 8, 12, 3);
  BulkLoadOptions bulk;
  bulk.order = GetParam();
  auto tree = BulkLoad(dataset, SmallOptions(), bulk);
  EXPECT_EQ(tree->size(), dataset.size());
  const TreeReport report = CheckTree(*tree);
  ASSERT_TRUE(report.ok) << report.message;
  EXPECT_GT(report.avg_utilization, 0.8);

  LinearScan scan(dataset);
  Rng rng(331);
  for (int q = 0; q < 15; ++q) {
    Signature query = RandomSignature(rng, 200, 0.05);
    if (query.Empty()) query.Set(0);
    EXPECT_DOUBLE_EQ(
        DfsNearest(*tree, query, tree->OwnPoolContext()).distance,
                     scan.Nearest(query).distance);
  }
}

TEST_P(BulkOrderTest, OrderingActuallyClusters) {
  // Every ordering must beat a random shuffle on leaf-level entry area.
  const Dataset dataset = ClusteredDataset(332, 1500, 300, 6, 14, 2);
  BulkLoadOptions bulk;
  bulk.order = GetParam();
  auto tree = BulkLoad(dataset, SmallOptions(300), bulk);
  const TreeReport report = CheckTree(*tree);
  ASSERT_TRUE(report.ok);

  // Shuffled baseline: pack entries in tid order scrambled by a fixed RNG.
  std::vector<Entry> shuffled;
  for (const Transaction& txn : dataset.transactions) {
    shuffled.push_back(Entry{Signature::FromItems(txn.items, 300), txn.tid});
  }
  Rng rng(333);
  for (size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.UniformInt(i)]);
  }
  // Pack without sorting by building with gray order on a pre-shuffled
  // input is not possible through the public API, so compute the shuffled
  // leaf areas directly.
  const uint32_t leaf_size = 9;  // 0.9 * 10.
  double shuffled_area_sum = 0;
  uint32_t shuffled_leaves = 0;
  for (size_t i = 0; i < shuffled.size(); i += leaf_size) {
    Signature cover(300);
    for (size_t j = i; j < std::min(shuffled.size(), i + leaf_size); ++j) {
      cover.UnionWith(shuffled[j].sig);
    }
    shuffled_area_sum += cover.Area();
    ++shuffled_leaves;
  }
  const double shuffled_avg = shuffled_area_sum / shuffled_leaves;
  ASSERT_GE(report.avg_entry_area.size(), 2u);
  EXPECT_LT(report.avg_entry_area[1], shuffled_avg * 0.8)
      << BulkLoadOrderName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllOrders, BulkOrderTest,
                         ::testing::Values(BulkLoadOrder::kGrayCode,
                                           BulkLoadOrder::kClusterPartition,
                                           BulkLoadOrder::kMinHash),
                         [](const auto& info) {
                           std::string name = BulkLoadOrderName(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

}  // namespace
}  // namespace sgtree
