#include "join/fvt_join.h"

#include <algorithm>
#include <numeric>

namespace sgtree {
namespace {

// Mutable trie used during construction; flattened into FvtTrie's
// pointer-free arrays once the shape is final.
struct BuildNode {
  ItemId item = 0;
  std::vector<std::pair<ItemId, uint32_t>> children;  // Sorted by item.
  std::vector<uint32_t> ends;  // S rows terminating exactly here.
};

}  // namespace

FvtTrie::FvtTrie(const SetCollection& s) : s_(&s) {
  std::vector<BuildNode> build(1);  // Root.
  for (uint32_t row = 0; row < s.size(); ++row) {
    uint32_t node = 0;
    for (const ItemId item : s.items[row]) {
      auto& children = build[node].children;
      const auto it = std::lower_bound(
          children.begin(), children.end(), item,
          [](const std::pair<ItemId, uint32_t>& child, ItemId value) {
            return child.first < value;
          });
      if (it != children.end() && it->first == item) {
        node = it->second;
      } else {
        const uint32_t child = static_cast<uint32_t>(build.size());
        build[node].children.insert(it, {item, child});
        build.emplace_back();
        build.back().item = item;
        node = child;
      }
    }
    build[node].ends.push_back(row);
  }

  // Preorder flatten: a node's subtree rows are its own ends followed by
  // its children's, so every subtree is one contiguous slice. Each node's
  // child block is reserved before recursing so it stays contiguous, and
  // filled with the children's final indices as the recursion returns.
  nodes_.reserve(build.size());
  children_.reserve(build.size() - 1);
  subtree_ends_.reserve(s.size());
  auto flatten = [&](auto&& self, uint32_t b) -> uint32_t {
    const uint32_t idx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[idx].item = build[b].item;
    nodes_[idx].ends_begin = static_cast<uint32_t>(subtree_ends_.size());
    subtree_ends_.insert(subtree_ends_.end(), build[b].ends.begin(),
                         build[b].ends.end());
    const uint32_t block = static_cast<uint32_t>(children_.size());
    nodes_[idx].children_begin = block;
    nodes_[idx].children_end =
        block + static_cast<uint32_t>(build[b].children.size());
    children_.resize(children_.size() + build[b].children.size());
    for (size_t c = 0; c < build[b].children.size(); ++c) {
      children_[block + c] = self(self, build[b].children[c].second);
    }
    nodes_[idx].ends_end = static_cast<uint32_t>(subtree_ends_.size());
    return idx;
  };
  flatten(flatten, 0);
}

FvtJoinBackend::FvtJoinBackend(const SetCollection& r, const FvtTrie& s)
    : r_(&r), s_(&s) {
  probe_order_.resize(r.size());
  std::iota(probe_order_.begin(), probe_order_.end(), 0u);
  // Identical sets adjacent (ties keep row order): duplicates share one
  // trie descent in Run.
  std::stable_sort(probe_order_.begin(), probe_order_.end(),
                   [&](uint32_t x, uint32_t y) {
                     return r.items[x] < r.items[y];
                   });
}

std::string FvtJoinBackend::SupportReason(const JoinRequest& request) const {
  if (request.type == JoinType::kSimilarity) {
    return "fvt is a containment-only join; use the tree backend for "
           "similarity joins";
  }
  return std::string();
}

void FvtJoinBackend::Probe(uint32_t node_idx, std::span<const ItemId> probe,
                           size_t matched, const QueryContext& ctx,
                           std::vector<uint32_t>* hits) const {
  const FvtTrie::NodeRec& node = s_->node(node_idx);
  ctx.CountNode(node.children_begin == node.children_end);
  if (matched == probe.size()) {
    // Every set at or below this node extends the fully-matched path, so
    // the whole preorder slice joins — candidate-free emission.
    const std::span<const uint32_t> ends = s_->SubtreeEnds(node);
    hits->insert(hits->end(), ends.begin(), ends.end());
    return;
  }
  const ItemId want = probe[matched];
  for (const uint32_t child_idx : s_->Children(node)) {
    const ItemId item = s_->node(child_idx).item;
    ctx.CountBounds(1);
    if (item > want) {
      // Path items ascend: no set below any later child contains `want`.
      ctx.TracePruned(1);
      break;
    }
    ctx.TraceDescended(1);
    Probe(child_idx, probe, matched + (item == want ? 1 : 0), ctx, hits);
  }
}

bool FvtJoinBackend::Run(const JoinRequest& /*request*/,
                         const QueryContext& ctx, JoinSink* sink) const {
  const SetCollection& s = s_->collection();
  std::vector<uint32_t> hits;
  size_t i = 0;
  while (i < probe_order_.size()) {
    const uint32_t first_row = probe_order_[i];
    const std::vector<ItemId>& probe = r_->items[first_row];
    size_t group_end = i + 1;
    while (group_end < probe_order_.size() &&
           r_->items[probe_order_[group_end]] == probe) {
      ++group_end;
    }
    hits.clear();
    Probe(0, probe, 0, ctx, &hits);
    const double gap_base = static_cast<double>(probe.size());
    for (; i < group_end; ++i) {
      const uint32_t r_row = probe_order_[i];
      for (const uint32_t s_row : hits) {
        ctx.CountVerified(1);
        ctx.TraceResults(1);
        const double gap =
            static_cast<double>(s.items[s_row].size()) - gap_base;
        if (!sink->OnPair({r_->tids[r_row], s.tids[s_row], gap})) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace sgtree
