#ifndef SGTREE_JOIN_TREE_JOIN_H_
#define SGTREE_JOIN_TREE_JOIN_H_

#include <cstdint>
#include <string>

#include "exec/join_api.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// The baseline JoinBackend: wraps the synchronized tree-vs-tree traversals
/// in sgtree/join.h (SimilarityJoinInto / ContainmentJoinInto) behind the
/// collection-level join API. The only backend that serves kSimilarity;
/// for kContainment it is the naive baseline the PRETTI and FVT backends
/// are benched against.
///
/// Each Run builds two private buffer pools — page ids are tree-local, so
/// the two trees must never share one pool — and charges both trees' node
/// reads plus the pair-level counters into the caller's stats/trace.
class TreeJoinBackend : public JoinBackend {
 public:
  /// `r` and `s` must share signature width and outlive the backend.
  /// `buffer_pages` sizes each side's per-run pool.
  TreeJoinBackend(const SgTree& r, const SgTree& s,
                  uint32_t buffer_pages = 64);

  const char* name() const override { return "tree"; }
  std::string SupportReason(const JoinRequest& request) const override;
  bool Run(const JoinRequest& request, const QueryContext& ctx,
           JoinSink* sink) const override;

 private:
  const SgTree* r_;
  const SgTree* s_;
  uint32_t buffer_pages_;
};

}  // namespace sgtree

#endif  // SGTREE_JOIN_TREE_JOIN_H_
