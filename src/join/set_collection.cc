#include "join/set_collection.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace sgtree {
namespace {

// Sorts the parallel arrays by tid without copying the item vectors twice.
void SortByTid(SetCollection* collection) {
  const size_t n = collection->size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
    return collection->tids[x] < collection->tids[y];
  });
  std::vector<uint64_t> tids(n);
  std::vector<std::vector<ItemId>> items(n);
  for (size_t i = 0; i < n; ++i) {
    tids[i] = collection->tids[order[i]];
    items[i] = std::move(collection->items[order[i]]);
  }
  collection->tids = std::move(tids);
  collection->items = std::move(items);
}

void WalkLeaves(const SgTree& tree, const QueryContext& ctx, PageId id,
                SetCollection* out) {
  const Node& node = tree.GetNode(id, ctx);
  ctx.CountNode(node.IsLeaf());
  if (node.IsLeaf()) {
    for (const Entry& entry : node.entries) {
      out->tids.push_back(entry.ref);
      out->items.push_back(entry.sig.ToItems());
    }
    return;
  }
  for (const Entry& entry : node.entries) {
    WalkLeaves(tree, ctx, static_cast<PageId>(entry.ref), out);
  }
}

}  // namespace

SetCollection SetCollection::FromDataset(const Dataset& dataset) {
  SetCollection out;
  out.num_bits = dataset.num_items;
  out.tids.reserve(dataset.size());
  out.items.reserve(dataset.size());
  for (const Transaction& txn : dataset.transactions) {
    out.tids.push_back(txn.tid);
    std::vector<ItemId> items = txn.items;
    std::sort(items.begin(), items.end());
    items.erase(std::unique(items.begin(), items.end()), items.end());
    out.items.push_back(std::move(items));
  }
  SortByTid(&out);
  return out;
}

SetCollection SetCollection::FromTree(const SgTree& tree,
                                      const QueryContext& ctx) {
  SetCollection out;
  out.num_bits = tree.num_bits();
  out.tids.reserve(tree.size());
  out.items.reserve(tree.size());
  if (tree.root() != kInvalidPageId) {
    WalkLeaves(tree, ctx, tree.root(), &out);
  }
  SortByTid(&out);
  return out;
}

}  // namespace sgtree
