#ifndef SGTREE_JOIN_PRETTI_JOIN_H_
#define SGTREE_JOIN_PRETTI_JOIN_H_

#include <cstdint>
#include <vector>

#include "exec/join_api.h"
#include "join/set_collection.h"

namespace sgtree {

/// Inverted index over the S (superset) side of a containment join: one
/// ascending posting list of S row indices per item. Immutable after
/// construction, so a sharded join builds it once per S partition and
/// shares it read-only across every R-shard task.
class InvertedPostings {
 public:
  explicit InvertedPostings(const SetCollection& s);

  const SetCollection& collection() const { return *s_; }

  /// Rows of S containing `item`, ascending. Items outside the dictionary
  /// have an empty posting list (a join side built over a wider dictionary
  /// may probe items S never saw).
  const std::vector<uint32_t>& Posting(ItemId item) const;

  /// |Posting(item)| — the item frequency PRETTI orders prefixes by.
  size_t Frequency(ItemId item) const;

 private:
  const SetCollection* s_;
  std::vector<std::vector<uint32_t>> postings_;
};

/// PRETTI-style containment join (Jampani & Pudi's PRETTI, revisited as
/// PIEJoin by Bouros/Mamoulis et al.): a prefix tree over the R side whose
/// paths order items rarest-in-S first, walked depth-first while
/// intersecting S posting lists incrementally. At a trie node whose path
/// spells a complete R set, the surviving candidate list is exactly the
/// supersets of that set — identical R sets share one path, so duplicate
/// sets pay for their intersections once.
///
/// Containment-only: similarity requests are refused via SupportReason.
class PrettiJoinBackend : public JoinBackend {
 public:
  /// Builds the R-side prefix tree; `s` must outlive the backend.
  PrettiJoinBackend(const SetCollection& r, const InvertedPostings& s);

  const char* name() const override { return "pretti"; }
  std::string SupportReason(const JoinRequest& request) const override;
  bool Run(const JoinRequest& request, const QueryContext& ctx,
           JoinSink* sink) const override;

 private:
  struct TrieNode {
    ItemId item = 0;
    std::vector<std::pair<ItemId, uint32_t>> children;  // Sorted by item.
    std::vector<uint32_t> ends;  // R rows whose set is this node's path.
  };

  bool Walk(uint32_t node_idx, const std::vector<uint32_t>& candidates,
            size_t depth, const QueryContext& ctx, JoinSink* sink,
            std::vector<std::vector<uint32_t>>* scratch) const;

  const SetCollection* r_;
  const InvertedPostings* s_;
  std::vector<TrieNode> nodes_;  // nodes_[0] is the root (no item).
};

}  // namespace sgtree

#endif  // SGTREE_JOIN_PRETTI_JOIN_H_
