#include "join/pretti_join.h"

#include <algorithm>

namespace sgtree {
namespace {

const std::vector<uint32_t> kEmptyPosting;

}  // namespace

InvertedPostings::InvertedPostings(const SetCollection& s) : s_(&s) {
  postings_.resize(s.num_bits);
  for (uint32_t row = 0; row < s.size(); ++row) {
    for (const ItemId item : s.items[row]) {
      if (item >= postings_.size()) postings_.resize(item + size_t{1});
      postings_[item].push_back(row);
    }
  }
}

const std::vector<uint32_t>& InvertedPostings::Posting(ItemId item) const {
  if (item >= postings_.size()) return kEmptyPosting;
  return postings_[item];
}

size_t InvertedPostings::Frequency(ItemId item) const {
  return Posting(item).size();
}

PrettiJoinBackend::PrettiJoinBackend(const SetCollection& r,
                                     const InvertedPostings& s)
    : r_(&r), s_(&s) {
  nodes_.emplace_back();  // Root.
  std::vector<ItemId> path;
  for (uint32_t row = 0; row < r.size(); ++row) {
    // Rarest-in-S first: the first posting intersection is the smallest,
    // and every refinement can only shrink it. Ties break on item id so
    // identical sets deterministically share one path.
    path = r.items[row];
    std::sort(path.begin(), path.end(), [&](ItemId x, ItemId y) {
      const size_t fx = s.Frequency(x);
      const size_t fy = s.Frequency(y);
      if (fx != fy) return fx < fy;
      return x < y;
    });
    uint32_t node = 0;
    for (const ItemId item : path) {
      auto& children = nodes_[node].children;
      const auto it = std::lower_bound(
          children.begin(), children.end(), item,
          [](const std::pair<ItemId, uint32_t>& child, ItemId value) {
            return child.first < value;
          });
      if (it != children.end() && it->first == item) {
        node = it->second;
      } else {
        const uint32_t child = static_cast<uint32_t>(nodes_.size());
        nodes_[node].children.insert(it, {item, child});
        nodes_.emplace_back();
        nodes_.back().item = item;
        node = child;
      }
    }
    nodes_[node].ends.push_back(row);
  }
}

std::string PrettiJoinBackend::SupportReason(const JoinRequest& request) const {
  if (request.type == JoinType::kSimilarity) {
    return "pretti is a containment-only join; use the tree backend for "
           "similarity joins";
  }
  return std::string();
}

bool PrettiJoinBackend::Walk(uint32_t node_idx,
                             const std::vector<uint32_t>& candidates,
                             size_t depth, const QueryContext& ctx,
                             JoinSink* sink,
                             std::vector<std::vector<uint32_t>>* scratch) const {
  const TrieNode& node = nodes_[node_idx];
  ctx.CountNode(!node.ends.empty());
  const SetCollection& s = s_->collection();
  for (const uint32_t r_row : node.ends) {
    const double gap_base = static_cast<double>(r_->items[r_row].size());
    for (const uint32_t s_row : candidates) {
      ctx.CountVerified(1);
      ctx.TraceResults(1);
      const double gap =
          static_cast<double>(s.items[s_row].size()) - gap_base;
      if (!sink->OnPair({r_->tids[r_row], s.tids[s_row], gap})) return false;
    }
  }
  for (const auto& [item, child] : node.children) {
    // One descend-or-prune decision per trie edge: intersect the surviving
    // candidates with the item's posting list (a simulated posting read).
    ctx.CountBounds(1);
    ctx.ChargeSimulatedIo(1);
    const std::vector<uint32_t>& posting = s_->Posting(item);
    // `scratch` was sized to the trie depth up front; growing it here would
    // move the inner vectors and dangle the caller's `candidates` reference.
    std::vector<uint32_t>& next = (*scratch)[depth];
    next.clear();
    std::set_intersection(candidates.begin(), candidates.end(),
                          posting.begin(), posting.end(),
                          std::back_inserter(next));
    if (next.empty()) {
      ctx.TracePruned(1);
      continue;
    }
    ctx.TraceDescended(1);
    if (!Walk(child, next, depth + 1, ctx, sink, scratch)) return false;
  }
  return true;
}

bool PrettiJoinBackend::Run(const JoinRequest& /*request*/,
                            const QueryContext& ctx, JoinSink* sink) const {
  // Root candidates: every S row (the empty prefix is contained anywhere).
  std::vector<uint32_t> all(s_->collection().size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<uint32_t>(i);
  size_t max_depth = 0;
  for (const std::vector<ItemId>& items : r_->items) {
    max_depth = std::max(max_depth, items.size());
  }
  // One intersection buffer per trie level, sized once — Walk holds
  // references into this across recursion.
  std::vector<std::vector<uint32_t>> scratch(max_depth);
  return Walk(0, all, 0, ctx, sink, &scratch);
}

}  // namespace sgtree
