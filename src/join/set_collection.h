#ifndef SGTREE_JOIN_SET_COLLECTION_H_
#define SGTREE_JOIN_SET_COLLECTION_H_

#include <cstdint>
#include <vector>

#include "data/transaction.h"
#include "sgtree/sg_tree.h"
#include "storage/query_context.h"

namespace sgtree {

/// One side of a collection-level join: transaction ids alongside their
/// item sets, held as parallel arrays. Items are sorted ascending and
/// duplicate-free; rows are sorted by tid so a collection extracted from a
/// dataset and one extracted from a tree over the same data are identical,
/// which is what lets the differential tests compare backends built from
/// either source.
struct SetCollection {
  uint32_t num_bits = 0;
  std::vector<uint64_t> tids;
  std::vector<std::vector<ItemId>> items;

  size_t size() const { return tids.size(); }

  /// Normalizes (sorts + dedupes) each transaction's items. Rows sorted by
  /// tid.
  static SetCollection FromDataset(const Dataset& dataset);

  /// Leaf walk over `tree`: every leaf entry's signature expands to its
  /// item set, charging node reads to `ctx` (pass {} to walk uncharged).
  /// Rows sorted by tid.
  static SetCollection FromTree(const SgTree& tree, const QueryContext& ctx);
};

}  // namespace sgtree

#endif  // SGTREE_JOIN_SET_COLLECTION_H_
