#include "join/tree_join.h"

#include <string>

#include "common/distance.h"
#include "storage/buffer_pool.h"

namespace sgtree {

TreeJoinBackend::TreeJoinBackend(const SgTree& r, const SgTree& s,
                                 uint32_t buffer_pages)
    : r_(&r), s_(&s), buffer_pages_(buffer_pages) {}

std::string TreeJoinBackend::SupportReason(const JoinRequest& request) const {
  if (r_->num_bits() != s_->num_bits()) {
    return "tree join requires both trees to share signature width, got " +
           std::to_string(r_->num_bits()) + " vs " +
           std::to_string(s_->num_bits());
  }
  if (request.type == JoinType::kSimilarity &&
      request.metric != r_->options().metric) {
    // The traversal prunes with the bounds the tree was built for; a
    // different request metric would silently answer the wrong join.
    return "tree join runs the trees' build-time metric (" +
           MetricName(r_->options().metric) + "), got " +
           MetricName(request.metric);
  }
  return std::string();
}

bool TreeJoinBackend::Run(const JoinRequest& request, const QueryContext& ctx,
                          JoinSink* sink) const {
  BufferPool pool_r(buffer_pages_);
  BufferPool pool_s(buffer_pages_);
  const QueryContext ctx_r{&pool_r, ctx.stats, ctx.trace};
  const QueryContext ctx_s{&pool_s, ctx.stats, ctx.trace};
  if (request.type == JoinType::kContainment) {
    return ContainmentJoinInto(*r_, *s_, ctx_r, ctx_s, sink);
  }
  return SimilarityJoinInto(*r_, *s_, JoinDistanceBound(request), ctx_r,
                            ctx_s, sink);
}

}  // namespace sgtree
