#ifndef SGTREE_JOIN_FVT_JOIN_H_
#define SGTREE_JOIN_FVT_JOIN_H_

#include <cstdint>
#include <span>
#include <vector>

#include "exec/join_api.h"
#include "join/set_collection.h"

namespace sgtree {

/// Filter-and-verification tree over the S (superset) side of a containment
/// join: a trie whose paths spell S item sets in ascending item order, with
/// every subtree's end rows flattened into one contiguous [begin, end)
/// slice of a preorder array. Once a probe set is fully matched at a node,
/// its supersets are exactly that slice — emitted directly, no candidate
/// lists and no verification. Immutable after construction, so a sharded
/// join builds it once per S partition and shares it read-only.
class FvtTrie {
 public:
  explicit FvtTrie(const SetCollection& s);

  const SetCollection& collection() const { return *s_; }

  struct NodeRec {
    ItemId item = 0;
    uint32_t children_begin = 0;  // Into children(), sorted by item.
    uint32_t children_end = 0;
    uint32_t ends_begin = 0;  // Into subtree_ends(): every S row whose set
    uint32_t ends_end = 0;    // terminates at or below this node.
  };

  const NodeRec& node(uint32_t idx) const { return nodes_[idx]; }
  std::span<const uint32_t> Children(const NodeRec& node) const {
    return {children_.data() + node.children_begin,
            children_.data() + node.children_end};
  }
  std::span<const uint32_t> SubtreeEnds(const NodeRec& node) const {
    return {subtree_ends_.data() + node.ends_begin,
            subtree_ends_.data() + node.ends_end};
  }

 private:
  const SetCollection* s_;
  std::vector<NodeRec> nodes_;      // nodes_[0] is the root (no item).
  std::vector<uint32_t> children_;  // Node indices, grouped per parent.
  std::vector<uint32_t> subtree_ends_;  // S rows in preorder.
};

/// FVT-style candidate-free containment join: probes each distinct R set
/// down the S trie, consuming probe items on matching edges and skipping
/// over smaller ones (path items ascend, so an edge larger than the next
/// unmatched item prunes the rest of the children). Identical R sets are
/// grouped so duplicates pay for one descent.
///
/// Containment-only: similarity requests are refused via SupportReason.
class FvtJoinBackend : public JoinBackend {
 public:
  /// `r` and `s` must outlive the backend.
  FvtJoinBackend(const SetCollection& r, const FvtTrie& s);

  const char* name() const override { return "fvt"; }
  std::string SupportReason(const JoinRequest& request) const override;
  bool Run(const JoinRequest& request, const QueryContext& ctx,
           JoinSink* sink) const override;

 private:
  void Probe(uint32_t node_idx, std::span<const ItemId> probe, size_t matched,
             const QueryContext& ctx, std::vector<uint32_t>* hits) const;

  const SetCollection* r_;
  const FvtTrie* s_;
  std::vector<uint32_t> probe_order_;  // R rows, identical sets adjacent.
};

}  // namespace sgtree

#endif  // SGTREE_JOIN_FVT_JOIN_H_
