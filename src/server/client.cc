#include "server/client.h"

#include <cstring>

#include "durability/byte_io.h"

namespace sgtree {
namespace serve {

bool Client::Connect(const std::string& host, uint16_t port, int timeout_ms) {
  timeout_ms_ = timeout_ms;
  socket_ = net::Socket::ConnectTcp(host, port, timeout_ms, &error_);
  if (!socket_.valid()) return false;
  uint8_t preamble[kPreambleBytes];
  std::memcpy(preamble, kPreambleMagic, 4);
  const uint32_t version = kProtocolVersion;
  std::memcpy(preamble + 4, &version, 4);
  if (socket_.SendAll(preamble, sizeof(preamble), timeout_ms_, &error_) !=
      net::IoStatus::kOk) {
    socket_.Close();
    return false;
  }
  uint8_t echo[kPreambleBytes];
  if (socket_.RecvAll(echo, sizeof(echo), timeout_ms_, &error_) !=
      net::IoStatus::kOk) {
    socket_.Close();
    return false;
  }
  if (std::memcmp(echo, preamble, sizeof(echo)) != 0) {
    error_ = "server echoed a different preamble (version mismatch?)";
    socket_.Close();
    return false;
  }
  return true;
}

Client::Status Client::Exchange(FrameType type,
                                const std::vector<uint8_t>& payload,
                                FrameType* resp_type,
                                std::vector<uint8_t>* resp_payload) {
  if (!socket_.valid()) {
    error_ = "not connected";
    return Status::kTransport;
  }
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  if (socket_.SendAll(frame.data(), frame.size(), timeout_ms_, &error_) !=
      net::IoStatus::kOk) {
    socket_.Close();
    return Status::kTransport;
  }
  uint8_t header[4];
  if (socket_.RecvAll(header, 4, timeout_ms_, &error_) != net::IoStatus::kOk) {
    socket_.Close();
    return Status::kTransport;
  }
  uint32_t length = 0;
  for (int b = 0; b < 4; ++b) {
    length |= static_cast<uint32_t>(header[b]) << (8 * b);
  }
  if (length == 0 || length > kMaxFrameBytes) {
    error_ = "response frame length out of range";
    socket_.Close();
    return Status::kTransport;
  }
  uint8_t raw_type = 0;
  if (socket_.RecvAll(&raw_type, 1, timeout_ms_, &error_) !=
      net::IoStatus::kOk) {
    socket_.Close();
    return Status::kTransport;
  }
  resp_payload->resize(length - 1);
  if (length > 1 &&
      socket_.RecvAll(resp_payload->data(), resp_payload->size(), timeout_ms_,
                      &error_) != net::IoStatus::kOk) {
    socket_.Close();
    return Status::kTransport;
  }
  *resp_type = static_cast<FrameType>(raw_type);
  if (*resp_type == FrameType::kBusy) return Status::kBusy;
  if (*resp_type == FrameType::kError) {
    // u32 len | message. The server closes after an error frame.
    size_t offset = 0;
    uint32_t len = 0;
    error_ = "server error";
    if (resp_payload->size() >= 4) {
      for (int b = 0; b < 4; ++b) {
        len |= static_cast<uint32_t>((*resp_payload)[static_cast<size_t>(b)])
               << (8 * b);
      }
      offset = 4;
      if (offset + len <= resp_payload->size()) {
        error_.assign(
            reinterpret_cast<const char*>(resp_payload->data() + offset), len);
      }
    }
    socket_.Close();
    return Status::kServerError;
  }
  return Status::kOk;
}

Client::Status Client::Query(const QueryRequest& request,
                             QueryResult* result) {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  const Status status =
      Exchange(FrameType::kQuery, EncodeRequest(request), &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kAnswer) {
    error_ = "expected an answer frame, got type " +
             std::to_string(static_cast<int>(resp_type));
    socket_.Close();
    return Status::kTransport;
  }
  if (!DecodeAnswer(resp.data(), resp.size(), result, &error_)) {
    socket_.Close();
    return Status::kTransport;
  }
  return Status::kOk;
}

Client::Status Client::DecodeOpAck(const std::vector<uint8_t>& payload,
                                   bool* accepted, std::string* message,
                                   uint64_t* epoch_after) {
  if (payload.size() < 13) {
    error_ = "op ack truncated";
    socket_.Close();
    return Status::kTransport;
  }
  *accepted = payload[0] != 0;
  uint32_t len = 0;
  for (int b = 0; b < 4; ++b) {
    len |= static_cast<uint32_t>(payload[1 + static_cast<size_t>(b)])
           << (8 * b);
  }
  if (5 + size_t{len} + 8 != payload.size()) {
    error_ = "op ack has inconsistent lengths";
    socket_.Close();
    return Status::kTransport;
  }
  message->assign(reinterpret_cast<const char*>(payload.data() + 5), len);
  uint64_t epoch = 0;
  for (int b = 0; b < 8; ++b) {
    epoch |= static_cast<uint64_t>(payload[5 + len + static_cast<size_t>(b)])
             << (8 * b);
  }
  *epoch_after = epoch;
  return Status::kOk;
}

Client::Status Client::Insert(const Transaction& txn, bool* accepted,
                              std::string* message, uint64_t* epoch_after) {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  const Status status =
      Exchange(FrameType::kInsert, EncodeInsert(txn), &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kOpAck) {
    error_ = "expected an op ack frame";
    socket_.Close();
    return Status::kTransport;
  }
  return DecodeOpAck(resp, accepted, message, epoch_after);
}

Client::Status Client::Checkpoint(bool* accepted, std::string* message,
                                  uint64_t* epoch_after) {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  const Status status =
      Exchange(FrameType::kCheckpoint, {}, &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kOpAck) {
    error_ = "expected an op ack frame";
    socket_.Close();
    return Status::kTransport;
  }
  return DecodeOpAck(resp, accepted, message, epoch_after);
}

Client::Status Client::Ping() {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  const Status status = Exchange(FrameType::kPing, {}, &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kPong || !resp.empty()) {
    error_ = "expected an empty pong frame";
    socket_.Close();
    return Status::kTransport;
  }
  return Status::kOk;
}

Client::Status Client::GetEpoch(uint64_t* epoch) {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  const Status status = Exchange(FrameType::kEpochReq, {}, &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kEpochResp || resp.size() != 8) {
    error_ = "expected an 8-byte epoch frame";
    socket_.Close();
    return Status::kTransport;
  }
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<uint64_t>(resp[static_cast<size_t>(b)]) << (8 * b);
  }
  *epoch = value;
  return Status::kOk;
}

Client::Status Client::GetMetrics(uint8_t format, std::string* body) {
  FrameType resp_type;
  std::vector<uint8_t> resp;
  std::vector<uint8_t> payload;
  if (format != 0) payload.push_back(format);
  const Status status =
      Exchange(FrameType::kMetricsReq, payload, &resp_type, &resp);
  if (status != Status::kOk) return status;
  if (resp_type != FrameType::kMetricsResp) {
    error_ = "expected a metrics frame";
    socket_.Close();
    return Status::kTransport;
  }
  body->assign(resp.begin(), resp.end());
  return Status::kOk;
}

}  // namespace serve
}  // namespace sgtree
