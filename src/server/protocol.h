#ifndef SGTREE_SERVER_PROTOCOL_H_
#define SGTREE_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction.h"
#include "exec/query_api.h"

namespace sgtree {
namespace serve {

/// The sgtree_serve wire protocol (DESIGN.md §10): length-prefixed binary
/// frames over TCP, all integers little-endian.
///
/// Connection preamble: the client sends 8 bytes — "SGRV" + u32 protocol
/// version — and the server echoes the same 8 bytes back (or closes on a
/// version it does not speak). After the handshake both directions carry
/// frames:
///
///     u32 length | u8 type | payload[length - 1]
///
/// `length` covers the type byte plus the payload, so a frame is never
/// empty and a reader can pre-validate the allocation against
/// kMaxFrameBytes before touching the payload.
///
/// Query payloads use the CANONICAL REQUEST ENCODING — a pure function of
/// the semantically relevant request fields (the query type, the signature,
/// and only the parameters that type consumes: k for the k-NN types,
/// epsilon for range). Two requests that must return the same answer
/// therefore encode to the same bytes, which is what lets the result cache
/// key on (backend epoch, canonical bytes) without a normalization pass.
///
/// Answer payloads carry the VALUE part of a QueryResult — neighbors, ids,
/// error — not its counters or trace: those are schedule- and
/// cache-dependent, while the value is the part the differential suite
/// proves byte-identical to a direct QueryRouter execution.

inline constexpr char kPreambleMagic[4] = {'S', 'G', 'R', 'V'};
inline constexpr uint32_t kProtocolVersion = 1;
inline constexpr size_t kPreambleBytes = 8;

/// Hostile-input cap on a frame's length field (covers the largest sane
/// range-query answer by orders of magnitude).
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Cap on the signature width a request may declare — matches the widest
/// dictionary the generators produce, and bounds the decode allocation.
inline constexpr uint32_t kMaxRequestBits = 1u << 24;

enum class FrameType : uint8_t {
  kQuery = 1,        // client -> server: canonical request bytes.
  kAnswer = 2,       // server -> client: answer encoding.
  kBusy = 3,         // server -> client: admission controller shed this
                     // request; empty payload. Retry later.
  kError = 4,        // server -> client: protocol-level failure (malformed
                     // frame, unknown type); u32 len + message. The
                     // connection closes after an error frame.
  kPing = 5,         // client -> server: empty.
  kPong = 6,         // server -> client: empty.
  kInsert = 7,       // client -> server: u64 tid | u32 n | u32 item[n].
  kOpAck = 8,        // server -> client: u8 ok | u32 len | error bytes |
                     //                   u64 epoch (post-op).
  kCheckpoint = 9,   // client -> server: empty. Durable: folds the WAL.
  kEpochReq = 10,    // client -> server: empty.
  kEpochResp = 11,   // server -> client: u64 epoch.
  kMetricsReq = 12,  // client -> server: empty = JSON, or one byte
                     // u8 format (0 = JSON, 1 = Prometheus text) — the
                     // admin scrape endpoint.
  kMetricsResp = 13, // server -> client: metrics registry export bytes.
};

/// Serialized frame ready to write: length prefix + type + payload.
std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload);

/// Canonical request encoding:
///   u8 type | u32 num_bits | u64 word[WordsForBits(num_bits)]
///   | kKnn / kBestFirstKnn: u32 k
///   | kRange:               u64 epsilon IEEE-754 bits
///   | others:               (nothing)
std::vector<uint8_t> EncodeRequest(const QueryRequest& request);

/// Decodes a canonical request payload. Rejects unknown types, widths over
/// kMaxRequestBits, and any trailing or missing bytes (the encoding is a
/// bijection — anything else would split cache keys). Returns false with a
/// one-line reason.
bool DecodeRequest(const uint8_t* data, size_t size, QueryRequest* request,
                   std::string* error);

/// Answer encoding:
///   u8 ok
///   | ok = 0: u32 len | error bytes
///   | ok = 1: u32 n  | n x (u64 tid, u64 distance IEEE-754 bits)
///             u32 m  | m x u64 id
std::vector<uint8_t> EncodeAnswer(const QueryResult& result);

/// Decodes an answer payload into result->neighbors / ids / error (stats,
/// trace and timing are left default — the wire does not carry them).
bool DecodeAnswer(const uint8_t* data, size_t size, QueryResult* result,
                  std::string* error);

/// Insert payload codec (kInsert frames).
std::vector<uint8_t> EncodeInsert(const Transaction& txn);
bool DecodeInsert(const uint8_t* data, size_t size, Transaction* txn,
                  std::string* error);

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_PROTOCOL_H_
