#ifndef SGTREE_SERVER_RESULT_CACHE_H_
#define SGTREE_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.h"
#include "obs/metrics.h"

namespace sgtree {
namespace serve {

/// Query-result cache of the serving front end: maps (backend epoch,
/// canonical request bytes) to the encoded answer payload that was served
/// for it. Because the value is the exact byte string written to the wire,
/// a hit is byte-identical to a recomputation by construction — the
/// differential suite leans on this.
///
/// Invalidation rule (DESIGN.md §10): the server bumps its epoch on every
/// successful insert / checkpoint and clears the cache. The epoch is ALSO
/// the first 8 bytes of every key, so even a racing reader that looked up
/// between the data change and the clear can only hit an entry whose key
/// carries the old epoch — i.e. an answer that was correct for the epoch
/// the reader captured. A result computed while the epoch moved is never
/// stored (the server re-checks the epoch before Put).
///
/// Lock discipline: kStripes independent stripes, each an LRU list + index
/// map under its own annotated Mutex; a key's stripe is a pure function of
/// its bytes, so two operations contend only when they touch the same
/// stripe. No lock is ever held across a backend call.
class ResultCache {
 public:
  /// `max_entries` is the total capacity across stripes (rounded up to at
  /// least one entry per stripe). 0 disables the cache: Get always misses,
  /// Put drops.
  explicit ResultCache(size_t max_entries);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cache key of a request under `epoch`: 8 epoch bytes + the
  /// canonical request encoding.
  static std::string Key(uint64_t epoch,
                         const std::vector<uint8_t>& canonical_request);

  /// On hit, copies the payload into `*payload` and refreshes LRU order.
  bool Get(const std::string& key, std::vector<uint8_t>* payload);

  /// Inserts (or refreshes) `key`, evicting the stripe's LRU tail when
  /// full.
  void Put(const std::string& key, const std::vector<uint8_t>& payload);

  /// Drops every entry (the insert/checkpoint invalidation path).
  void Clear();

  size_t size() const;

  /// Binds hit/miss/eviction counters (may be null to unbind).
  void BindMetrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Counter* evictions);

 private:
  static constexpr size_t kStripes = 16;

  struct Entry {
    std::string key;
    std::vector<uint8_t> payload;
  };

  struct Stripe {
    mutable Mutex mu;
    /// Front = most recently used.
    std::list<Entry> lru SGTREE_GUARDED_BY(mu);
    std::unordered_map<std::string, std::list<Entry>::iterator> index
        SGTREE_GUARDED_BY(mu);
  };

  Stripe& StripeFor(const std::string& key);

  size_t per_stripe_capacity_;
  Stripe stripes_[kStripes];
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_RESULT_CACHE_H_
