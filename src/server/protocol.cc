#include "server/protocol.h"

#include <bit>
#include <cstring>

#include "common/bit_ops.h"
#include "durability/byte_io.h"

namespace sgtree {
namespace serve {
namespace {

/// Bounds-checked little-endian readers over a raw buffer; same contract
/// as durability/byte_io.h (advance only on success) without copying the
/// payload into a vector first.
bool ReadU8(const uint8_t* data, size_t size, size_t* offset, uint8_t* v) {
  if (*offset + 1 > size) return false;
  *v = data[*offset];
  *offset += 1;
  return true;
}

bool ReadU32(const uint8_t* data, size_t size, size_t* offset, uint32_t* v) {
  if (*offset + 4 > size) return false;
  uint32_t value = 0;
  for (int b = 0; b < 4; ++b) {
    value |= static_cast<uint32_t>(data[*offset + static_cast<size_t>(b)])
             << (8 * b);
  }
  *offset += 4;
  *v = value;
  return true;
}

bool ReadU64(const uint8_t* data, size_t size, size_t* offset, uint64_t* v) {
  if (*offset + 8 > size) return false;
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<uint64_t>(data[*offset + static_cast<size_t>(b)])
             << (8 * b);
  }
  *offset += 8;
  *v = value;
  return true;
}

bool KnownType(uint8_t type) {
  return type <= static_cast<uint8_t>(QueryType::kSubset);
}

}  // namespace

std::vector<uint8_t> EncodeFrame(FrameType type,
                                 const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(5 + payload.size());
  AppendU32(static_cast<uint32_t>(payload.size() + 1), &frame);
  AppendU8(static_cast<uint8_t>(type), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  return frame;
}

std::vector<uint8_t> EncodeRequest(const QueryRequest& request) {
  std::vector<uint8_t> out;
  const auto words = request.query.words();
  out.reserve(1 + 4 + words.size() * 8 + 8);
  AppendU8(static_cast<uint8_t>(request.type), &out);
  AppendU32(request.query.num_bits(), &out);
  for (const uint64_t word : words) AppendU64(word, &out);
  switch (request.type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      AppendU32(request.k, &out);
      break;
    case QueryType::kRange:
      AppendU64(std::bit_cast<uint64_t>(request.epsilon), &out);
      break;
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      break;  // Signature-only: k / epsilon are not part of the answer.
  }
  return out;
}

bool DecodeRequest(const uint8_t* data, size_t size, QueryRequest* request,
                   std::string* error) {
  size_t offset = 0;
  uint8_t type = 0;
  uint32_t num_bits = 0;
  if (!ReadU8(data, size, &offset, &type) ||
      !ReadU32(data, size, &offset, &num_bits)) {
    *error = "request truncated before signature";
    return false;
  }
  if (!KnownType(type)) {
    *error = "unknown query type " + std::to_string(type);
    return false;
  }
  if (num_bits == 0 || num_bits > kMaxRequestBits) {
    *error = "signature width " + std::to_string(num_bits) +
             " out of range (1.." + std::to_string(kMaxRequestBits) + ")";
    return false;
  }
  const size_t num_words = WordsForBits(num_bits);
  if (offset + num_words * 8 > size) {
    *error = "request truncated inside signature";
    return false;
  }
  request->type = static_cast<QueryType>(type);
  request->query = Signature(num_bits);
  std::span<uint64_t> words = request->query.mutable_words();
  for (size_t i = 0; i < num_words; ++i) {
    ReadU64(data, size, &offset, &words[i]);
  }
  // Bits beyond num_bits must be zero or two distinct requests could share
  // a Signature — the codec stays a bijection onto VALID requests.
  if (num_bits % 64 != 0 && num_words > 0 &&
      (words[num_words - 1] >> (num_bits % 64)) != 0) {
    *error = "signature has bits set beyond its declared width";
    return false;
  }
  request->k = 0;
  request->epsilon = 0.0;
  switch (request->type) {
    case QueryType::kKnn:
    case QueryType::kBestFirstKnn:
      if (!ReadU32(data, size, &offset, &request->k)) {
        *error = "request truncated before k";
        return false;
      }
      break;
    case QueryType::kRange: {
      uint64_t bits = 0;
      if (!ReadU64(data, size, &offset, &bits)) {
        *error = "request truncated before epsilon";
        return false;
      }
      request->epsilon = std::bit_cast<double>(bits);
      break;
    }
    case QueryType::kContainment:
    case QueryType::kExact:
    case QueryType::kSubset:
      // ValidateRequest never reads k/epsilon for these, but give them the
      // canonical values so re-encoding reproduces the input bytes.
      break;
  }
  if (offset != size) {
    *error = "request has " + std::to_string(size - offset) +
             " trailing byte(s)";
    return false;
  }
  return true;
}

std::vector<uint8_t> EncodeAnswer(const QueryResult& result) {
  std::vector<uint8_t> out;
  if (!result.ok()) {
    out.reserve(5 + result.error.size());
    AppendU8(0, &out);
    AppendU32(static_cast<uint32_t>(result.error.size()), &out);
    out.insert(out.end(), result.error.begin(), result.error.end());
    return out;
  }
  out.reserve(9 + result.neighbors.size() * 16 + result.ids.size() * 8);
  AppendU8(1, &out);
  AppendU32(static_cast<uint32_t>(result.neighbors.size()), &out);
  for (const Neighbor& n : result.neighbors) {
    AppendU64(n.tid, &out);
    AppendU64(std::bit_cast<uint64_t>(n.distance), &out);
  }
  AppendU32(static_cast<uint32_t>(result.ids.size()), &out);
  for (const uint64_t id : result.ids) AppendU64(id, &out);
  return out;
}

bool DecodeAnswer(const uint8_t* data, size_t size, QueryResult* result,
                  std::string* error) {
  *result = QueryResult();
  size_t offset = 0;
  uint8_t ok = 0;
  if (!ReadU8(data, size, &offset, &ok)) {
    *error = "answer truncated";
    return false;
  }
  if (ok == 0) {
    uint32_t len = 0;
    if (!ReadU32(data, size, &offset, &len) || offset + len > size) {
      *error = "answer error string truncated";
      return false;
    }
    result->error.assign(reinterpret_cast<const char*>(data + offset), len);
    offset += len;
    if (result->error.empty()) {
      *error = "error answer with empty message";
      return false;
    }
    return offset == size;
  }
  uint32_t n = 0;
  if (!ReadU32(data, size, &offset, &n) || offset + size_t{n} * 16 > size) {
    *error = "answer neighbor list truncated";
    return false;
  }
  result->neighbors.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t tid = 0;
    uint64_t dist = 0;
    ReadU64(data, size, &offset, &tid);
    ReadU64(data, size, &offset, &dist);
    result->neighbors.push_back(Neighbor{tid, std::bit_cast<double>(dist)});
  }
  uint32_t m = 0;
  if (!ReadU32(data, size, &offset, &m) || offset + size_t{m} * 8 > size) {
    *error = "answer id list truncated";
    return false;
  }
  result->ids.reserve(m);
  for (uint32_t i = 0; i < m; ++i) {
    uint64_t id = 0;
    ReadU64(data, size, &offset, &id);
    result->ids.push_back(id);
  }
  if (offset != size) {
    *error = "answer has trailing bytes";
    return false;
  }
  return true;
}

std::vector<uint8_t> EncodeInsert(const Transaction& txn) {
  std::vector<uint8_t> out;
  out.reserve(12 + txn.items.size() * 4);
  AppendU64(txn.tid, &out);
  AppendU32(static_cast<uint32_t>(txn.items.size()), &out);
  for (const ItemId item : txn.items) AppendU32(item, &out);
  return out;
}

bool DecodeInsert(const uint8_t* data, size_t size, Transaction* txn,
                  std::string* error) {
  size_t offset = 0;
  uint32_t n = 0;
  if (!ReadU64(data, size, &offset, &txn->tid) ||
      !ReadU32(data, size, &offset, &n) || offset + size_t{n} * 4 > size) {
    *error = "insert payload truncated";
    return false;
  }
  txn->items.clear();
  txn->items.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint32_t item = 0;
    ReadU32(data, size, &offset, &item);
    txn->items.push_back(item);
  }
  if (offset != size) {
    *error = "insert payload has trailing bytes";
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace sgtree
