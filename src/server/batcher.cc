#include "server/batcher.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace sgtree {
namespace serve {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void PendingQuery::Complete(QueryResult r) {
  {
    MutexLock lock(&mu);
    result = std::move(r);
    done = true;
  }
  cv.Signal();
}

QueryResult PendingQuery::Wait() {
  MutexLock lock(&mu);
  while (!done) cv.Wait(&mu);
  return std::move(result);
}

Batcher::Batcher(const BatcherOptions& options, Runner runner)
    : options_(options),
      runner_(std::move(runner)),
      linger_us_(options.max_linger_us) {}

Batcher::~Batcher() { Stop(); }

void Batcher::Start() {
  if (started_) return;
  started_ = true;
  const uint32_t n = std::max<uint32_t>(1, options_.num_dispatchers);
  dispatchers_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatchLoop(); });
  }
}

void Batcher::Stop() {
  {
    MutexLock lock(&mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.SignalAll();
  for (std::thread& t : dispatchers_) t.join();
  dispatchers_.clear();
  // Dispatchers drain the queue before exiting, but a Submit that raced the
  // stop flag may have left a straggler; fail it rather than strand its
  // waiter.
  std::deque<std::shared_ptr<PendingQuery>> leftover;
  {
    MutexLock lock(&mu_);
    leftover.swap(queue_);
  }
  for (const auto& pending : leftover) {
    QueryResult result;
    result.error = "server shutting down";
    pending->Complete(std::move(result));
  }
}

std::shared_ptr<PendingQuery> Batcher::Submit(const QueryRequest& request) {
  auto pending = std::make_shared<PendingQuery>();
  pending->request = request;
  pending->enqueue_us = NowUs();
  {
    MutexLock lock(&mu_);
    if (stop_) return nullptr;
    queue_.push_back(pending);
  }
  cv_.Signal();
  return pending;
}

void Batcher::BindMetrics(obs::Histogram* queue_depth,
                          obs::Histogram* batch_size,
                          obs::Histogram* exec_us) {
  queue_depth_hist_ = queue_depth;
  batch_size_hist_ = batch_size;
  exec_us_hist_ = exec_us;
}

void Batcher::UpdateLinger() {
  if (exec_us_hist_ == nullptr) return;
  const double p99 = exec_us_hist_->Percentile(99.0);
  if (std::isnan(p99)) return;  // No observations yet; keep the window.
  int64_t linger;
  if (std::isinf(p99)) {
    // Exec tail beyond the histogram's range: the budget is blown either
    // way, stop adding wait.
    linger = options_.min_linger_us;
  } else {
    linger = std::clamp(
        options_.latency_budget_us - static_cast<int64_t>(p99),
        options_.min_linger_us, options_.max_linger_us);
  }
  linger_us_.store(linger, std::memory_order_relaxed);
}

void Batcher::DispatchLoop() {
  for (;;) {
    std::vector<std::shared_ptr<PendingQuery>> batch;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (queue_.empty()) {
          if (stop_) return;
          cv_.Wait(&mu_);
          continue;
        }
        if (stop_ || queue_.size() >= options_.max_batch) break;
        const int64_t flush_at =
            queue_.front()->enqueue_us +
            linger_us_.load(std::memory_order_relaxed);
        const int64_t now = NowUs();
        if (now >= flush_at) break;
        cv_.WaitFor(&mu_, flush_at - now);
      }
      if (queue_depth_hist_ != nullptr) {
        queue_depth_hist_->Observe(static_cast<double>(queue_.size()));
      }
      const size_t take = std::min<size_t>(queue_.size(), options_.max_batch);
      batch.reserve(take);
      for (size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    if (batch_size_hist_ != nullptr) {
      batch_size_hist_->Observe(static_cast<double>(batch.size()));
    }
    std::vector<QueryRequest> requests;
    requests.reserve(batch.size());
    for (const auto& pending : batch) requests.push_back(pending->request);
    const int64_t start = NowUs();
    // The completion may run on this thread (primary finished first) or on
    // the hedge manager's; `batch` is moved in so the pendings outlive this
    // loop iteration either way.
    runner_(requests, [this, start, batch = std::move(batch)](
                          std::vector<QueryResult> results) {
      if (exec_us_hist_ != nullptr) {
        exec_us_hist_->Observe(static_cast<double>(NowUs() - start));
      }
      UpdateLinger();
      for (size_t i = 0; i < batch.size(); ++i) {
        QueryResult result;
        if (i < results.size()) {
          result = std::move(results[i]);
        } else {
          result.error = "batch runner returned too few results";
        }
        batch[i]->Complete(std::move(result));
      }
    });
  }
}

}  // namespace serve
}  // namespace sgtree
