#ifndef SGTREE_SERVER_CLIENT_H_
#define SGTREE_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction.h"
#include "exec/query_api.h"
#include "net/socket.h"
#include "server/protocol.h"

namespace sgtree {
namespace serve {

/// Synchronous client for the sgtree_serve protocol: one connection, one
/// request in flight at a time. The tests, the CLI, and the load generator
/// all speak through this class, so the wire encoding has exactly two
/// implementations total (this one and the server's) and the differential
/// suite exercises both.
///
/// Not thread-safe: a connection carries one request/response exchange at a
/// time. Concurrency = more clients (how both the stress test and the
/// open-loop bench generate parallel load).
class Client {
 public:
  /// Outcome of one exchange, separating transport state from the
  /// application result so a caller can tell "server said BUSY" (retry)
  /// from "connection died" (reconnect).
  enum class Status {
    kOk,
    kBusy,         // Shed by admission control; retry later.
    kServerError,  // Server sent an error frame (connection is closed).
    kTransport,    // Socket-level failure; see error().
  };

  Client() = default;

  /// Connects and runs the preamble handshake. False = *this stays
  /// disconnected; see error().
  bool Connect(const std::string& host, uint16_t port, int timeout_ms);

  bool connected() const { return socket_.valid(); }
  void Disconnect() { socket_.Close(); }

  /// Last transport/protocol error message.
  const std::string& error() const { return error_; }

  /// Runs one query. On kOk, *result holds the decoded answer (which may
  /// itself carry a validation error in result->error — that is an
  /// application answer, not a transport failure).
  Status Query(const QueryRequest& request, QueryResult* result);

  /// Routed insert. On kOk, *accepted says whether the server applied it
  /// (false for a static index, with the reason in *message) and
  /// *epoch_after holds the post-operation epoch.
  Status Insert(const Transaction& txn, bool* accepted, std::string* message,
                uint64_t* epoch_after);

  /// Durable checkpoint (same ack shape as Insert).
  Status Checkpoint(bool* accepted, std::string* message,
                    uint64_t* epoch_after);

  Status Ping();
  Status GetEpoch(uint64_t* epoch);

  /// Scrapes the server's metrics registry; format 0 = JSON, 1 =
  /// Prometheus text.
  Status GetMetrics(uint8_t format, std::string* body);

 private:
  /// Writes one frame and reads the response frame.
  Status Exchange(FrameType type, const std::vector<uint8_t>& payload,
                  FrameType* resp_type, std::vector<uint8_t>* resp_payload);
  Status DecodeOpAck(const std::vector<uint8_t>& payload, bool* accepted,
                     std::string* message, uint64_t* epoch_after);

  net::Socket socket_;
  int timeout_ms_ = 30000;
  std::string error_;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_CLIENT_H_
