#include "server/server.h"

#include <chrono>
#include <cstring>
#include <utility>
#include <vector>

#include "durability/byte_io.h"
#include "obs/export.h"

namespace sgtree {
namespace serve {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Power-of-two count buckets for queue depth / batch size histograms.
std::vector<double> CountBuckets() {
  return {0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};
}

}  // namespace

Server::Server(ShardedIndex* index, const ServerOptions& options)
    : index_(index), options_(options), admission_(options.max_inflight) {}

std::unique_ptr<Server> Server::Create(ShardedIndex* index,
                                       const ServerOptions& options,
                                       std::string* error) {
  std::unique_ptr<Server> server(new Server(index, options));
  if (options.metrics != nullptr) {
    server->metrics_ = options.metrics;
  } else {
    server->owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    server->metrics_ = server->owned_metrics_.get();
  }
  obs::MetricsRegistry* m = server->metrics_;
  server->requests_ = m->GetCounter("serve.requests");
  server->connections_ = m->GetCounter("serve.connections");
  server->inserts_ = m->GetCounter("serve.inserts");
  server->checkpoints_ = m->GetCounter("serve.checkpoints");
  server->protocol_errors_ = m->GetCounter("serve.protocol_errors");
  server->request_us_ = m->GetHistogram("serve.request_us");
  server->admission_.BindMetrics(m->GetCounter("serve.admitted"),
                                 m->GetCounter("serve.shed"));
  server->cache_ = std::make_unique<ResultCache>(options.cache_entries);
  server->cache_->BindMetrics(m->GetCounter("serve.cache.hits"),
                              m->GetCounter("serve.cache.misses"),
                              m->GetCounter("serve.cache.evictions"));
  ReplicaSetOptions replica_options = options.replicas;
  if (replica_options.router.metrics == nullptr) {
    replica_options.router.metrics = m;  // shard.* joins serve.* in scrapes.
  }
  server->replica_set_ = ReplicaSet::Create(index, replica_options, error);
  if (server->replica_set_ == nullptr) return nullptr;
  server->replica_set_->BindMetrics(m->GetCounter("serve.hedges_fired"),
                                    m->GetCounter("serve.hedges_won"),
                                    m->GetHistogram("serve.run_us"));
  server->batcher_ = std::make_unique<Batcher>(
      options.batcher,
      [rs = server->replica_set_.get()](
          const std::vector<QueryRequest>& requests,
          Batcher::Completion on_complete) {
        rs->RunHedged(requests, std::move(on_complete));
      });
  server->batcher_->BindMetrics(
      m->GetHistogram("serve.queue_depth", CountBuckets()),
      m->GetHistogram("serve.batch_size", CountBuckets()),
      m->GetHistogram("serve.exec_us"));
  return server;
}

Server::~Server() { Stop(); }

bool Server::Start(std::string* error) {
  listener_ = net::ListenSocket::Listen(options_.port, /*backlog=*/128, error);
  if (!listener_.valid()) return false;
  port_ = listener_.port();
  batcher_->Start();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  return true;
}

void Server::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  if (started_) {
    listener_.Close();
    accept_thread_.join();
  }
  // Unblock every connection reader, then join. In-flight queries drain
  // through the still-running batcher while we wait, so no client that
  // already got past admission is dropped without an answer.
  {
    MutexLock lock(&conns_mu_);
    for (auto& conn : conns_) conn->socket.Shutdown();
  }
  for (;;) {
    std::unique_ptr<Conn> conn;
    {
      MutexLock lock(&conns_mu_);
      if (conns_.empty()) break;
      conn = std::move(conns_.front());
      conns_.pop_front();
    }
    if (conn->thread.joinable()) conn->thread.join();
  }
  batcher_->Stop();
}

void Server::AcceptLoop() {
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    // Reap finished connections so a long-lived server does not accumulate
    // joinable threads (Stop handles whatever is left).
    {
      MutexLock lock(&conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          (*it)->thread.join();
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    net::Socket socket;
    std::string error;
    const net::AcceptStatus status =
        listener_.Accept(/*timeout_ms=*/100, &socket, &error);
    if (status == net::AcceptStatus::kTimeout) continue;
    if (status == net::AcceptStatus::kError) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;  // Transient (e.g. EMFILE on the accepted fd); keep serving.
    }
    connections_->Increment();
    auto conn = std::make_unique<Conn>();
    conn->socket = std::move(socket);
    Conn* raw = conn.get();
    {
      MutexLock lock(&conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] {
      ServeConnection(&raw->socket);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

void Server::ServeConnection(net::Socket* socket) {
  uint8_t preamble[kPreambleBytes];
  std::string error;
  if (socket->RecvAll(preamble, sizeof(preamble), options_.io_timeout_ms,
                      &error) != net::IoStatus::kOk) {
    return;
  }
  uint32_t version = 0;
  std::memcpy(&version, preamble + 4, 4);
  if (std::memcmp(preamble, kPreambleMagic, 4) != 0 ||
      version != kProtocolVersion) {
    protocol_errors_->Increment();
    return;  // Not our protocol (or a version we do not speak): just close.
  }
  if (socket->SendAll(preamble, sizeof(preamble), options_.io_timeout_ms,
                      &error) != net::IoStatus::kOk) {
    return;
  }
  std::vector<uint8_t> payload;
  for (;;) {
    if (stop_.load(std::memory_order_acquire)) return;
    uint8_t header[4];
    // Unbounded wait for the next frame: idle clients are fine; Shutdown()
    // at server stop is what unblocks this.
    if (socket->RecvAll(header, 4, /*timeout_ms=*/-1, &error) !=
        net::IoStatus::kOk) {
      return;
    }
    uint32_t length = 0;
    for (int b = 0; b < 4; ++b) {
      length |= static_cast<uint32_t>(header[b]) << (8 * b);
    }
    if (length == 0 || length > kMaxFrameBytes) {
      protocol_errors_->Increment();
      SendError(socket, "frame length " + std::to_string(length) +
                            " out of range");
      return;
    }
    uint8_t type = 0;
    if (socket->RecvAll(&type, 1, options_.io_timeout_ms, &error) !=
        net::IoStatus::kOk) {
      return;
    }
    payload.resize(length - 1);
    if (length > 1 &&
        socket->RecvAll(payload.data(), payload.size(),
                        options_.io_timeout_ms,
                        &error) != net::IoStatus::kOk) {
      return;
    }
    if (!HandleFrame(socket, static_cast<FrameType>(type), payload)) return;
  }
}

bool Server::HandleFrame(net::Socket* socket, FrameType type,
                         const std::vector<uint8_t>& payload) {
  switch (type) {
    case FrameType::kQuery:
      return HandleQuery(socket, payload);
    case FrameType::kInsert:
      return HandleInsert(socket, payload);
    case FrameType::kCheckpoint:
      return HandleCheckpoint(socket);
    case FrameType::kPing:
      return SendFrame(socket, FrameType::kPong, {});
    case FrameType::kEpochReq: {
      std::vector<uint8_t> out;
      AppendU64(epoch(), &out);
      return SendFrame(socket, FrameType::kEpochResp, out);
    }
    case FrameType::kMetricsReq:
      return HandleMetrics(socket, payload);
    default:
      protocol_errors_->Increment();
      SendError(socket, "unexpected frame type " +
                            std::to_string(static_cast<int>(type)));
      return false;
  }
}

bool Server::HandleQuery(net::Socket* socket,
                         const std::vector<uint8_t>& payload) {
  const int64_t start = NowUs();
  requests_->Increment();
  AdmissionSlot slot(&admission_);
  if (!slot.admitted()) return SendFrame(socket, FrameType::kBusy, {});
  QueryRequest request;
  std::string error;
  if (!DecodeRequest(payload.data(), payload.size(), &request, &error)) {
    protocol_errors_->Increment();
    SendError(socket, error);
    return false;
  }
  // The decoder only accepts canonical bytes (it rejects padding and
  // trailing garbage), so `payload` IS the cache key material.
  const uint64_t epoch_at_probe = epoch();
  const std::string key = ResultCache::Key(epoch_at_probe, payload);
  std::vector<uint8_t> answer;
  if (!cache_->Get(key, &answer)) {
    QueryResult result;
    std::shared_ptr<PendingQuery> pending = batcher_->Submit(request);
    if (pending == nullptr) {
      result.error = "server shutting down";
    } else {
      result = pending->Wait();
    }
    answer = EncodeAnswer(result);
    // Only cache a result the data could not have moved under: if the
    // epoch advanced while we executed, this answer may mix pre- and
    // post-mutation state, and the bumped epoch means no future probe
    // would find it under `key` semantics anyway.
    if (result.ok() && epoch() == epoch_at_probe) cache_->Put(key, answer);
  }
  request_us_->Observe(static_cast<double>(NowUs() - start));
  return SendFrame(socket, FrameType::kAnswer, answer);
}

bool Server::HandleInsert(net::Socket* socket,
                          const std::vector<uint8_t>& payload) {
  Transaction txn;
  std::string error;
  if (!DecodeInsert(payload.data(), payload.size(), &txn, &error)) {
    protocol_errors_->Increment();
    SendError(socket, error);
    return false;
  }
  bool ok = false;
  std::string message;
  if (index_->static_mode()) {
    message = "index is static (immutable); rebuild to change it";
  } else {
    // The primary mutex serializes this against query batches on the
    // (single) replica — the router's const read path must not observe a
    // half-applied insert.
    MutexLock lock(replica_set_->primary_run_mutex());
    ok = index_->Insert(txn);
    if (!ok) message = "insert was not acknowledged by the owning shard";
  }
  if (ok) {
    inserts_->Increment();
    Invalidate();
  }
  std::vector<uint8_t> out;
  AppendU8(ok ? 1 : 0, &out);
  AppendU32(static_cast<uint32_t>(message.size()), &out);
  out.insert(out.end(), message.begin(), message.end());
  AppendU64(epoch(), &out);
  return SendFrame(socket, FrameType::kOpAck, out);
}

bool Server::HandleCheckpoint(net::Socket* socket) {
  bool ok = false;
  std::string message;
  if (index_->static_mode()) {
    message = "index is static (immutable); nothing to checkpoint";
  } else {
    MutexLock lock(replica_set_->primary_run_mutex());
    ok = index_->Checkpoint(&message);
  }
  if (ok) {
    checkpoints_->Increment();
    Invalidate();
  }
  std::vector<uint8_t> out;
  AppendU8(ok ? 1 : 0, &out);
  AppendU32(static_cast<uint32_t>(message.size()), &out);
  out.insert(out.end(), message.begin(), message.end());
  AppendU64(epoch(), &out);
  return SendFrame(socket, FrameType::kOpAck, out);
}

bool Server::HandleMetrics(net::Socket* socket,
                           const std::vector<uint8_t>& payload) {
  uint8_t format = 0;
  if (payload.size() == 1) {
    format = payload[0];
  } else if (!payload.empty()) {
    protocol_errors_->Increment();
    SendError(socket, "metrics request payload must be empty or one byte");
    return false;
  }
  std::string body;
  if (format == 0) {
    body = obs::ToJson(*metrics_);
  } else if (format == 1) {
    body = obs::ToPrometheus(*metrics_);
  } else {
    protocol_errors_->Increment();
    SendError(socket, "unknown metrics format " + std::to_string(format));
    return false;
  }
  return SendFrame(socket, FrameType::kMetricsResp,
                   std::vector<uint8_t>(body.begin(), body.end()));
}

bool Server::SendFrame(net::Socket* socket, FrameType type,
                       const std::vector<uint8_t>& payload) {
  const std::vector<uint8_t> frame = EncodeFrame(type, payload);
  std::string error;
  return socket->SendAll(frame.data(), frame.size(), options_.io_timeout_ms,
                         &error) == net::IoStatus::kOk;
}

bool Server::SendError(net::Socket* socket, const std::string& message) {
  std::vector<uint8_t> payload;
  payload.reserve(4 + message.size());
  AppendU32(static_cast<uint32_t>(message.size()), &payload);
  payload.insert(payload.end(), message.begin(), message.end());
  return SendFrame(socket, FrameType::kError, payload);
}

void Server::Invalidate() {
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  cache_->Clear();
}

}  // namespace serve
}  // namespace sgtree
