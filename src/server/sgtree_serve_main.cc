// sgtree_serve: the long-running serving front end (DESIGN.md §10).
//
//   sgtree_serve --index PATH [--port N] [--durable-dir DIR]
//                [--replicas N] [--max-inflight N] [--cache-entries N]
//                [--max-batch N] [--latency-budget-us N] [--dispatchers N]
//                [--no-hedging]
//
// --index loads a Save()d or SaveStatic()d ShardedIndex manifest (static
// manifests unlock --replicas > 1); --durable-dir opens a durable index
// instead (mutable over the wire via insert/checkpoint frames). The server
// prints "listening on 127.0.0.1:<port>" once ready (port 0 = ephemeral,
// resolved in the message — how scripts drive it without a port race) and
// runs until SIGINT/SIGTERM.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "durability/env.h"
#include "server/server.h"
#include "shard/sharded_index.h"
#include "tools/command_line.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int /*signum*/) { g_stop.store(true, std::memory_order_relaxed); }

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv, argv + argc);
  sgtree::CommandLine cmd(std::move(args));
  if (!cmd.error().empty()) {
    std::cerr << "error: " << cmd.error() << "\n";
    return 1;
  }
  const auto index_path = cmd.GetString("index");
  const auto durable_dir = cmd.GetString("durable-dir");

  sgtree::serve::ServerOptions options;
  options.port = static_cast<uint16_t>(cmd.IntOr("port", 0));
  options.max_inflight =
      static_cast<uint32_t>(cmd.IntOr("max-inflight", 256));
  options.cache_entries =
      static_cast<size_t>(cmd.IntOr("cache-entries", 4096));
  options.batcher.max_batch = static_cast<uint32_t>(cmd.IntOr("max-batch", 64));
  options.batcher.latency_budget_us = cmd.IntOr("latency-budget-us", 20'000);
  options.batcher.num_dispatchers =
      static_cast<uint32_t>(cmd.IntOr("dispatchers", 2));
  options.replicas.num_replicas =
      static_cast<uint32_t>(cmd.IntOr("replicas", 1));
  options.replicas.enable_hedging = cmd.IntOr("no-hedging", 0) == 0;
  const auto unused = cmd.UnusedFlags();
  if (!unused.empty()) {
    std::string joined;
    for (const auto& flag : unused) joined += " --" + flag;
    std::cerr << "error: unknown flag(s):" << joined << "\n";
    return 1;
  }
  if (index_path.has_value() == durable_dir.has_value()) {
    std::cerr << "error: pass exactly one of --index PATH (manifest) or "
                 "--durable-dir DIR\n";
    return 1;
  }

  std::string error;
  std::unique_ptr<sgtree::ShardedIndex> index;
  sgtree::ShardedIndexOptions index_options;
  if (index_path.has_value()) {
    index = sgtree::ShardedIndex::Load(*index_path, index_options, &error);
    options.replicas.manifest_path = *index_path;
    options.replicas.index_options = index_options;
  } else {
    index = sgtree::ShardedIndex::OpenDurable(
        sgtree::Env::Posix(), *durable_dir, index_options, &error);
  }
  if (index == nullptr) {
    std::cerr << "error: cannot open index: " << error << "\n";
    return 1;
  }

  auto server = sgtree::serve::Server::Create(index.get(), options, &error);
  if (server == nullptr) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  if (!server->Start(&error)) {
    std::cerr << "error: " << error << "\n";
    return 1;
  }
  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::cout << "listening on 127.0.0.1:" << server->port() << " ("
            << (index->static_mode()
                    ? "static"
                    : (index->durable() ? "durable" : "in-memory"))
            << ", " << index->num_shards() << " shard(s), "
            << server->replica_set()->num_replicas() << " replica(s))"
            << std::endl;
  while (!g_stop.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  std::cout << "shutting down\n";
  server->Stop();
  return 0;
}
