#include "server/replica_set.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace sgtree {
namespace serve {
namespace {

int64_t NowUs() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<QueryResult> AllError(size_t n, const std::string& message) {
  std::vector<QueryResult> results(n);
  for (QueryResult& r : results) r.error = message;
  return results;
}

}  // namespace

std::unique_ptr<ReplicaSet> ReplicaSet::Create(
    ShardedIndex* primary, const ReplicaSetOptions& options,
    std::string* error) {
  const uint32_t n = std::max<uint32_t>(1, options.num_replicas);
  if (n > 1 && !primary->static_mode()) {
    *error = "replicas > 1 requires a static (immutable) index; "
             "dynamic and durable backends serve from one replica";
    return nullptr;
  }
  if (n > 1 && options.manifest_path.empty()) {
    *error = "replicas > 1 requires the manifest path to re-open views from";
    return nullptr;
  }
  std::unique_ptr<ReplicaSet> set(new ReplicaSet());
  set->options_ = options;
  set->hedge_delay_us_.store(options.hedge_delay_floor_us,
                             std::memory_order_relaxed);
  QueryExecutorOptions exec_options;
  exec_options.num_threads = options.executor_threads;
  for (uint32_t i = 0; i < n; ++i) {
    auto replica = std::make_unique<Replica>();
    if (i == 0) {
      replica->index = primary;
    } else {
      replica->owned_index =
          ShardedIndex::Load(options.manifest_path, options.index_options,
                             error);
      if (replica->owned_index == nullptr) {
        *error = "replica " + std::to_string(i) + ": " + *error;
        return nullptr;
      }
      replica->index = replica->owned_index.get();
    }
    replica->executor = std::make_unique<QueryExecutor>(exec_options);
    replica->router = std::make_unique<QueryRouter>(
        *replica->index, replica->executor.get(), options.router);
    set->replicas_.push_back(std::move(replica));
  }
  if (options.enable_hedging && n > 1) {
    set->hedge_thread_ = std::thread([s = set.get()] { s->HedgeLoop(); });
  }
  return set;
}

ReplicaSet::~ReplicaSet() {
  if (hedge_thread_.joinable()) {
    {
      MutexLock lock(&hedge_mu_);
      hedge_stop_ = true;
    }
    hedge_cv_.SignalAll();
    hedge_thread_.join();
  }
}

uint32_t ReplicaSet::live_replicas() const {
  uint32_t live = 0;
  for (const auto& replica : replicas_) {
    if (!replica->failed.load(std::memory_order_relaxed)) ++live;
  }
  return live;
}

void ReplicaSet::FailReplica(uint32_t i) {
  if (i < replicas_.size()) {
    replicas_[i]->failed.store(true, std::memory_order_relaxed);
  }
}

Mutex* ReplicaSet::primary_run_mutex() { return &replicas_[0]->mu; }

void ReplicaSet::BindMetrics(obs::Counter* hedges_fired,
                             obs::Counter* hedges_won,
                             obs::Histogram* run_us) {
  hedges_fired_ = hedges_fired;
  hedges_won_ = hedges_won;
  run_us_hist_ = run_us;
}

int ReplicaSet::PickReplica(uint32_t exclude) const {
  int best = -1;
  uint32_t best_load = 0;
  for (uint32_t i = 0; i < replicas_.size(); ++i) {
    if (i == exclude) continue;
    if (replicas_[i]->failed.load(std::memory_order_relaxed)) continue;
    const uint32_t load = replicas_[i]->load.load(std::memory_order_relaxed);
    if (best < 0 || load < best_load) {
      best = static_cast<int>(i);
      best_load = load;
    }
  }
  return best;
}

std::vector<QueryResult> ReplicaSet::RunOn(
    uint32_t ri, const std::vector<QueryRequest>& requests) {
  Replica& replica = *replicas_[ri];
  replica.load.fetch_add(1, std::memory_order_relaxed);
  std::vector<QueryResult> results;
  {
    MutexLock lock(&replica.mu);
    results = replica.router->Run(requests);
  }
  replica.load.fetch_sub(1, std::memory_order_relaxed);
  return results;
}

void ReplicaSet::UpdateHedgeDelay() {
  if (run_us_hist_ == nullptr) return;
  const double p99 = run_us_hist_->Percentile(99.0);
  if (std::isnan(p99)) return;
  const int64_t raw = std::isinf(p99) ? options_.hedge_delay_cap_us
                                      : static_cast<int64_t>(p99);
  hedge_delay_us_.store(std::clamp(raw, options_.hedge_delay_floor_us,
                                   options_.hedge_delay_cap_us),
                        std::memory_order_relaxed);
}

void ReplicaSet::RunHedged(const std::vector<QueryRequest>& requests,
                           Completion on_complete) {
  const int primary = PickReplica(num_replicas() /* exclude none */);
  if (primary < 0) {
    on_complete(AllError(requests.size(), "no live replicas"));
    return;
  }
  const bool hedge_eligible =
      hedge_thread_.joinable() && live_replicas() >= 2;
  std::shared_ptr<HedgedRun> run;
  if (hedge_eligible) {
    run = std::make_shared<HedgedRun>();
    run->requests = requests;
    run->on_complete = on_complete;
    run->primary_replica = static_cast<uint32_t>(primary);
    run->fire_at_us =
        NowUs() + hedge_delay_us_.load(std::memory_order_relaxed);
    {
      MutexLock lock(&hedge_mu_);
      armed_.push_back(run);
    }
    hedge_cv_.Signal();
  }
  const int64_t start = NowUs();
  std::vector<QueryResult> results =
      RunOn(static_cast<uint32_t>(primary), requests);
  if (run_us_hist_ != nullptr) {
    run_us_hist_->Observe(static_cast<double>(NowUs() - start));
    UpdateHedgeDelay();
  }
  if (run == nullptr) {
    on_complete(std::move(results));
    return;
  }
  run->primary_done.store(true, std::memory_order_release);
  if (!run->claimed.exchange(true, std::memory_order_acq_rel)) {
    run->on_complete(std::move(results));
  }
}

void ReplicaSet::HedgeLoop() {
  for (;;) {
    std::shared_ptr<HedgedRun> due;
    {
      MutexLock lock(&hedge_mu_);
      for (;;) {
        // Drop entries whose primary already answered (or claimed) — they
        // need no hedge and must not pin their request vectors.
        while (!armed_.empty() &&
               (armed_.front()->primary_done.load(std::memory_order_acquire) ||
                armed_.front()->claimed.load(std::memory_order_acquire))) {
          armed_.pop_front();
        }
        if (armed_.empty()) {
          if (hedge_stop_) return;
          hedge_cv_.Wait(&hedge_mu_);
          continue;
        }
        if (hedge_stop_) return;  // Stop beats pending hedges.
        // Arrival order is fire-time order up to delay adaptation jitter,
        // so the front is (close enough to) the earliest deadline.
        const int64_t now = NowUs();
        if (armed_.front()->fire_at_us <= now) {
          due = armed_.front();
          armed_.pop_front();
          break;
        }
        hedge_cv_.WaitFor(&hedge_mu_, armed_.front()->fire_at_us - now);
      }
    }
    if (due->primary_done.load(std::memory_order_acquire) ||
        due->claimed.load(std::memory_order_acquire)) {
      continue;
    }
    const int secondary = PickReplica(due->primary_replica);
    if (secondary < 0) continue;  // One live replica: nothing to hedge on.
    if (hedges_fired_ != nullptr) hedges_fired_->Increment();
    std::vector<QueryResult> results =
        RunOn(static_cast<uint32_t>(secondary), due->requests);
    if (!due->claimed.exchange(true, std::memory_order_acq_rel)) {
      if (hedges_won_ != nullptr) hedges_won_->Increment();
      due->on_complete(std::move(results));
    }
  }
}

}  // namespace serve
}  // namespace sgtree
