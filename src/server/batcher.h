#ifndef SGTREE_SERVER_BATCHER_H_
#define SGTREE_SERVER_BATCHER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "exec/query_api.h"
#include "obs/metrics.h"

namespace sgtree {
namespace serve {

/// One client query parked in the batcher: the connection thread Submit()s
/// it, then blocks in Wait() until a dispatcher (or the hedge manager, via
/// the batch completion) fills the result and signals.
struct PendingQuery {
  QueryRequest request;
  int64_t enqueue_us = 0;

  Mutex mu;
  CondVar cv;
  bool done SGTREE_GUARDED_BY(mu) = false;
  QueryResult result SGTREE_GUARDED_BY(mu);

  /// Fills the result and wakes the waiter. Idempotence is the caller's
  /// job — the batch completion runs exactly once per batch.
  void Complete(QueryResult r) SGTREE_EXCLUDES(mu);

  /// Blocks until Complete() ran; returns the result by move.
  QueryResult Wait() SGTREE_EXCLUDES(mu);
};

struct BatcherOptions {
  /// Flush when this many requests have coalesced.
  uint32_t max_batch = 64;
  /// Bounds on the adaptive linger window.
  int64_t min_linger_us = 0;
  int64_t max_linger_us = 2000;
  /// End-to-end p99 target the linger adapts toward: the batcher spends at
  /// most (budget - observed exec p99) waiting for co-batchable requests,
  /// so coalescing never pushes the tail past the budget by itself.
  int64_t latency_budget_us = 20000;
  /// Dispatcher threads pulling batches (each runs its batch's primary
  /// execution inline, so this is also the router-level concurrency).
  uint32_t num_dispatchers = 2;
};

/// Adaptive batcher: coalesces concurrently-submitted queries into one
/// QueryRouter batch, flushing on size (max_batch) or deadline (oldest
/// request's arrival + linger). The linger window adapts each batch:
///
///     linger = clamp(latency_budget - exec_p99, min_linger, max_linger)
///
/// Under light load the exec p99 is far below budget, the window opens,
/// and sparse requests still coalesce; near saturation execution eats the
/// whole budget, the window collapses to min_linger, and the batcher stops
/// adding wait on top of an already-stressed tail.
///
/// The runner is handed the batch and a completion callback; it may invoke
/// the completion from another thread (the hedge path does), so dispatchers
/// never block on completions — only on their own primary execution.
class Batcher {
 public:
  /// on_complete must be called exactly once with one QueryResult per
  /// request, in request order.
  using Completion = std::function<void(std::vector<QueryResult>)>;
  using Runner =
      std::function<void(const std::vector<QueryRequest>&, Completion)>;

  Batcher(const BatcherOptions& options, Runner runner);
  ~Batcher();

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  void Start();

  /// Flushes what is queued (ignoring linger), completes the stragglers
  /// with an error, joins dispatchers. Idempotent.
  void Stop();

  /// Parks a request; returns nullptr when the batcher is stopped (the
  /// server turns that into an error frame). Call pending->Wait() for the
  /// result.
  std::shared_ptr<PendingQuery> Submit(const QueryRequest& request)
      SGTREE_EXCLUDES(mu_);

  /// Current adaptive linger window (exported for tests and metrics).
  int64_t linger_us() const {
    return linger_us_.load(std::memory_order_relaxed);
  }

  /// queue_depth: sampled at each batch pull. batch_size: requests per
  /// flushed batch. exec_us: runner latency — ALSO the input of the linger
  /// adaptation, so binding it is what turns adaptation on.
  void BindMetrics(obs::Histogram* queue_depth, obs::Histogram* batch_size,
                   obs::Histogram* exec_us);

 private:
  void DispatchLoop() SGTREE_EXCLUDES(mu_);
  void UpdateLinger();

  const BatcherOptions options_;
  const Runner runner_;

  Mutex mu_;
  CondVar cv_;
  std::deque<std::shared_ptr<PendingQuery>> queue_ SGTREE_GUARDED_BY(mu_);
  bool stop_ SGTREE_GUARDED_BY(mu_) = false;
  bool started_ = false;

  std::atomic<int64_t> linger_us_;
  std::vector<std::thread> dispatchers_;

  obs::Histogram* queue_depth_hist_ = nullptr;
  obs::Histogram* batch_size_hist_ = nullptr;
  obs::Histogram* exec_us_hist_ = nullptr;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_BATCHER_H_
