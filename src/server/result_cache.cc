#include "server/result_cache.h"

#include <algorithm>
#include <functional>

namespace sgtree {
namespace serve {

ResultCache::ResultCache(size_t max_entries)
    : per_stripe_capacity_(max_entries == 0
                               ? 0
                               : std::max<size_t>(1, max_entries / kStripes)) {
}

std::string ResultCache::Key(uint64_t epoch,
                             const std::vector<uint8_t>& canonical_request) {
  std::string key;
  key.reserve(8 + canonical_request.size());
  for (int b = 0; b < 8; ++b) {
    key.push_back(static_cast<char>((epoch >> (8 * b)) & 0xff));
  }
  key.append(reinterpret_cast<const char*>(canonical_request.data()),
             canonical_request.size());
  return key;
}

ResultCache::Stripe& ResultCache::StripeFor(const std::string& key) {
  return stripes_[std::hash<std::string>{}(key) % kStripes];
}

bool ResultCache::Get(const std::string& key, std::vector<uint8_t>* payload) {
  if (per_stripe_capacity_ == 0) {
    if (misses_ != nullptr) misses_->Increment();
    return false;
  }
  Stripe& stripe = StripeFor(key);
  MutexLock lock(&stripe.mu);
  auto it = stripe.index.find(key);
  if (it == stripe.index.end()) {
    if (misses_ != nullptr) misses_->Increment();
    return false;
  }
  stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
  *payload = it->second->payload;
  if (hits_ != nullptr) hits_->Increment();
  return true;
}

void ResultCache::Put(const std::string& key,
                      const std::vector<uint8_t>& payload) {
  if (per_stripe_capacity_ == 0) return;
  Stripe& stripe = StripeFor(key);
  MutexLock lock(&stripe.mu);
  auto it = stripe.index.find(key);
  if (it != stripe.index.end()) {
    it->second->payload = payload;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second);
    return;
  }
  if (stripe.lru.size() >= per_stripe_capacity_) {
    stripe.index.erase(stripe.lru.back().key);
    stripe.lru.pop_back();
    if (evictions_ != nullptr) evictions_->Increment();
  }
  stripe.lru.push_front(Entry{key, payload});
  stripe.index.emplace(key, stripe.lru.begin());
}

void ResultCache::Clear() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    stripe.lru.clear();
    stripe.index.clear();
  }
}

size_t ResultCache::size() const {
  size_t total = 0;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    total += stripe.lru.size();
  }
  return total;
}

void ResultCache::BindMetrics(obs::Counter* hits, obs::Counter* misses,
                              obs::Counter* evictions) {
  hits_ = hits;
  misses_ = misses;
  evictions_ = evictions;
}

}  // namespace serve
}  // namespace sgtree
