#ifndef SGTREE_SERVER_ADMISSION_H_
#define SGTREE_SERVER_ADMISSION_H_

#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace sgtree {
namespace serve {

/// Admission controller of the serving front end: a fixed in-flight budget
/// enforced with one atomic counter. A request that cannot get a slot is
/// shed with an explicit BUSY frame instead of queueing — bounded queues
/// with early rejection keep tail latency flat past saturation, while an
/// unbounded queue would let p99 grow without limit as offered load passes
/// capacity (the bench's top load row demonstrates exactly this shed).
///
/// Lock-free: TryAdmit is one CAS loop, Release one fetch_sub. Explicit
/// memory orders per the repo's lock-free convention (sglint memory-order
/// rule); relaxed suffices because the counter only gates capacity — it
/// publishes no data.
class AdmissionController {
 public:
  explicit AdmissionController(uint32_t max_inflight)
      : max_inflight_(max_inflight) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Claims a slot; false = shed this request (send BUSY).
  bool TryAdmit() {
    uint32_t cur = inflight_.load(std::memory_order_relaxed);
    for (;;) {
      if (cur >= max_inflight_) {
        if (shed_ != nullptr) shed_->Increment();
        return false;
      }
      if (inflight_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_relaxed,
                                          std::memory_order_relaxed)) {
        if (admitted_ != nullptr) admitted_->Increment();
        return true;
      }
    }
  }

  /// Returns a slot claimed by TryAdmit. Call exactly once per admit.
  void Release() { inflight_.fetch_sub(1, std::memory_order_relaxed); }

  uint32_t inflight() const {
    return inflight_.load(std::memory_order_relaxed);
  }
  uint32_t max_inflight() const { return max_inflight_; }

  void BindMetrics(obs::Counter* admitted, obs::Counter* shed) {
    admitted_ = admitted;
    shed_ = shed;
  }

 private:
  const uint32_t max_inflight_;
  std::atomic<uint32_t> inflight_{0};
  obs::Counter* admitted_ = nullptr;
  obs::Counter* shed_ = nullptr;
};

/// RAII slot: releases on destruction if admitted.
class AdmissionSlot {
 public:
  explicit AdmissionSlot(AdmissionController* controller)
      : controller_(controller), admitted_(controller->TryAdmit()) {}
  ~AdmissionSlot() {
    if (admitted_) controller_->Release();
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool admitted() const { return admitted_; }

 private:
  AdmissionController* const controller_;
  const bool admitted_;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_ADMISSION_H_
