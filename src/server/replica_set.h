#ifndef SGTREE_SERVER_REPLICA_SET_H_
#define SGTREE_SERVER_REPLICA_SET_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"

namespace sgtree {
namespace serve {

struct ReplicaSetOptions {
  /// Replicas of the index. > 1 requires static mode: extra replicas are
  /// re-opened mmap'ed views of the SAME immutable manifest, so they cost
  /// page-cache-shared memory, answer byte-identically by construction,
  /// and need no replication protocol. Dynamic/durable backends are pinned
  /// to exactly one replica.
  uint32_t num_replicas = 1;
  /// Manifest path extra replicas re-open (static manifests only).
  std::string manifest_path;
  /// Runtime options for re-opened replicas (buffer pages, metric).
  ShardedIndexOptions index_options;
  /// Lanes of each replica's private executor (0 = hardware concurrency).
  uint32_t executor_threads = 0;
  /// Router configuration, applied to every replica identically.
  QueryRouterOptions router;
  /// Hedge a batch when >= 2 replicas are live and the primary has not
  /// answered within the adaptive delay.
  bool enable_hedging = true;
  /// Bounds on the adaptive hedge delay (clamped observed run p99).
  int64_t hedge_delay_floor_us = 1000;
  int64_t hedge_delay_cap_us = 50000;
};

/// Per-shard replica sets with least-loaded routing and hedged seconds.
///
/// Each replica bundles a ShardedIndex view, a private QueryExecutor, and a
/// QueryRouter (Run is not reentrant, so each replica's mutex serializes
/// its batches — concurrency comes from having several replicas and
/// several dispatcher threads, not from re-entering one router).
///
/// RunHedged() routes a batch to the least-loaded live replica and runs it
/// inline on the calling thread. With hedging on, the batch is also armed
/// with the hedge manager: if the primary has not finished within the
/// adaptive delay (observed run p99, clamped to the configured bounds), the
/// manager re-runs the batch on a DIFFERENT live replica. Whichever run
/// finishes first claims the completion via one atomic exchange — the
/// completion runs exactly once, and the loser's results are dropped
/// (replicas of a static manifest are byte-identical, so dropping either
/// answer is sound). This is the classic tail-tolerance move: a p99-delayed
/// hedge bounds the tail at ~2x the median extra load for ~1% of requests.
///
/// Replica failure: FailReplica(i) (the test hook; also the place a health
/// checker would report into) marks a replica dead — selection skips it,
/// hedging degrades to none when one replica remains, and the set keeps
/// serving until zero replicas are live (then batches fail with an error
/// result per request).
class ReplicaSet {
 public:
  using Completion = std::function<void(std::vector<QueryResult>)>;

  /// `primary` is borrowed (the server owns it) and becomes replica 0;
  /// replicas 1..N-1 are opened from options.manifest_path. Returns null
  /// with *error set when the options are inconsistent (replication of a
  /// non-static backend) or a re-open fails.
  static std::unique_ptr<ReplicaSet> Create(ShardedIndex* primary,
                                            const ReplicaSetOptions& options,
                                            std::string* error);

  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Runs `requests` on the least-loaded live replica (inline, blocking),
  /// arming a hedge first when eligible. `on_complete` is invoked exactly
  /// once — from this thread or from the hedge manager's.
  void RunHedged(const std::vector<QueryRequest>& requests,
                 Completion on_complete);

  uint32_t num_replicas() const {
    return static_cast<uint32_t>(replicas_.size());
  }
  uint32_t live_replicas() const;

  /// Marks replica `i` dead. Safe while batches are in flight: a run
  /// already inside the replica completes normally (the index is not torn
  /// down), the replica just stops being selected.
  void FailReplica(uint32_t i);

  /// Current adaptive hedge delay (exported for tests and metrics).
  int64_t hedge_delay_us() const {
    return hedge_delay_us_.load(std::memory_order_relaxed);
  }

  /// The mutex serializing replica 0's batches. The server holds it across
  /// mutations of a dynamic/durable backend so an insert never interleaves
  /// with a query batch on the same (single-replica) index.
  Mutex* primary_run_mutex();

  /// hedges_fired: hedge executions launched. hedges_won: hedges that beat
  /// their primary. run_us: per-batch primary run latency — also the input
  /// of the adaptive delay, so binding it turns adaptation on.
  void BindMetrics(obs::Counter* hedges_fired, obs::Counter* hedges_won,
                   obs::Histogram* run_us);

 private:
  struct Replica {
    ShardedIndex* index = nullptr;  // Borrowed (0) or owned_index.get().
    std::unique_ptr<ShardedIndex> owned_index;
    std::unique_ptr<QueryExecutor> executor;
    std::unique_ptr<QueryRouter> router;
    /// Serializes router->Run (not reentrant).
    Mutex mu;
    /// Batches queued on or inside this replica (the load signal).
    std::atomic<uint32_t> load{0};
    std::atomic<bool> failed{false};
  };

  /// One armed batch, shared between the primary runner and the hedge
  /// manager. `claimed` is the exactly-once gate on on_complete.
  struct HedgedRun {
    std::vector<QueryRequest> requests;
    Completion on_complete;
    std::atomic<bool> claimed{false};
    std::atomic<bool> primary_done{false};
    uint32_t primary_replica = 0;
    int64_t fire_at_us = 0;
  };

  ReplicaSet() = default;

  /// Least-loaded live replica, excluding `exclude` (pass num_replicas()
  /// for none). Returns -1 when none is live.
  int PickReplica(uint32_t exclude) const;

  /// Runs `requests` on replica `ri` (blocking; bumps load, serializes on
  /// the replica mutex).
  std::vector<QueryResult> RunOn(uint32_t ri,
                                 const std::vector<QueryRequest>& requests);

  void HedgeLoop();
  void UpdateHedgeDelay();

  ReplicaSetOptions options_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::atomic<int64_t> hedge_delay_us_{0};

  Mutex hedge_mu_;
  CondVar hedge_cv_;
  std::deque<std::shared_ptr<HedgedRun>> armed_ SGTREE_GUARDED_BY(hedge_mu_);
  bool hedge_stop_ SGTREE_GUARDED_BY(hedge_mu_) = false;
  std::thread hedge_thread_;

  obs::Counter* hedges_fired_ = nullptr;
  obs::Counter* hedges_won_ = nullptr;
  obs::Histogram* run_us_hist_ = nullptr;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_REPLICA_SET_H_
