#ifndef SGTREE_SERVER_SERVER_H_
#define SGTREE_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <thread>

#include "common/sync.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/batcher.h"
#include "server/protocol.h"
#include "server/replica_set.h"
#include "server/result_cache.h"
#include "shard/sharded_index.h"

namespace sgtree {
namespace serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = kernel-assigned (read back via port()).
  uint16_t port = 0;
  /// Admission budget: concurrent query requests past admission; the rest
  /// are shed with BUSY.
  uint32_t max_inflight = 256;
  /// Result cache capacity in entries; 0 disables caching.
  size_t cache_entries = 4096;
  /// Per-frame socket deadline for connected clients. The wait for the
  /// NEXT request (the length prefix) is unbounded — an idle client is not
  /// an error — but once a frame starts, it must finish in this budget.
  int io_timeout_ms = 30000;
  BatcherOptions batcher;
  ReplicaSetOptions replicas;
  /// Metrics registry; nullptr = the server owns a private one.
  obs::MetricsRegistry* metrics = nullptr;
};

/// The sgtree_serve front end (DESIGN.md §10): a TCP server speaking the
/// length-prefixed protocol of server/protocol.h over an index backend.
/// A query request flows
///
///   connection reader -> admission (BUSY past max_inflight)
///     -> result cache probe (epoch-keyed; a hit skips everything below)
///     -> batcher (coalesce into a QueryRouter batch under the latency
///        budget's adaptive linger)
///     -> replica set (least-loaded replica, hedged second past the
///        adaptive p99 delay)
///   -> encode answer, populate cache, write frame.
///
/// Consistency: epoch_ counts successful mutations (insert / checkpoint).
/// Every cache key embeds the epoch current when the probe happened, and a
/// computed result is only cached if the epoch is STILL the one the probe
/// saw — so a result that raced a mutation is never stored, and a mutation
/// both bumps the epoch (orphaning old keys) and clears the cache
/// (reclaiming their memory).
///
/// Mutations on a dynamic/durable backend are serialized against query
/// batches via the replica set's primary mutex (the router reads the index
/// on the const path; an insert while a batch is in flight would race it).
/// Static backends refuse mutations with an explicit error instead.
///
/// Every stage exports serve.* metrics through the registry — counters
/// (requests, admitted, shed, cache hits/misses/evictions, hedges fired /
/// won, inserts, checkpoints, protocol errors), queue-depth / batch-size /
/// execution / end-to-end latency histograms — scrapeable over the
/// protocol's metrics frame as JSON or Prometheus text.
class Server {
 public:
  /// `index` is borrowed and must outlive the server.
  static std::unique_ptr<Server> Create(ShardedIndex* index,
                                        const ServerOptions& options,
                                        std::string* error);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the listener and starts the accept loop, dispatchers, and (when
  /// configured) the hedge manager. Returns false with *error on bind
  /// failure.
  bool Start(std::string* error);

  /// Drains: stops accepting, fails queued queries, unblocks and joins
  /// every connection thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  obs::MetricsRegistry* metrics() { return metrics_; }

  /// Test hooks: reach into the stages the failure/consistency tests
  /// manipulate (FailReplica, cache size, adaptive windows).
  ReplicaSet* replica_set() { return replica_set_.get(); }
  ResultCache* result_cache() { return cache_.get(); }
  Batcher* batcher() { return batcher_.get(); }
  AdmissionController* admission() { return &admission_; }

 private:
  Server(ShardedIndex* index, const ServerOptions& options);

  struct Conn {
    net::Socket socket;
    std::thread thread;
    /// Set by the connection thread on exit; the accept loop reaps.
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(net::Socket* socket);

  /// One request frame. Returns false when the connection must close
  /// (protocol error or I/O failure).
  bool HandleFrame(net::Socket* socket, FrameType type,
                   const std::vector<uint8_t>& payload);
  bool HandleQuery(net::Socket* socket, const std::vector<uint8_t>& payload);
  bool HandleInsert(net::Socket* socket, const std::vector<uint8_t>& payload);
  bool HandleCheckpoint(net::Socket* socket);
  bool HandleMetrics(net::Socket* socket,
                     const std::vector<uint8_t>& payload);

  bool SendFrame(net::Socket* socket, FrameType type,
                 const std::vector<uint8_t>& payload);
  bool SendError(net::Socket* socket, const std::string& message);

  /// Bumps the epoch and clears the cache after a successful mutation.
  void Invalidate();

  ShardedIndex* const index_;
  const ServerOptions options_;

  obs::MetricsRegistry* metrics_;            // owned_metrics_ or external.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;

  AdmissionController admission_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ReplicaSet> replica_set_;
  std::unique_ptr<Batcher> batcher_;

  /// Mutation counter; see the class comment for the consistency rule.
  std::atomic<uint64_t> epoch_{0};

  net::ListenSocket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  Mutex conns_mu_;
  std::list<std::unique_ptr<Conn>> conns_ SGTREE_GUARDED_BY(conns_mu_);

  // Cached metric handles (registry lookups take a lock; these are hot).
  obs::Counter* requests_ = nullptr;
  obs::Counter* connections_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* checkpoints_ = nullptr;
  obs::Counter* protocol_errors_ = nullptr;
  obs::Histogram* request_us_ = nullptr;
};

}  // namespace serve
}  // namespace sgtree

#endif  // SGTREE_SERVER_SERVER_H_
