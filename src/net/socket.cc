#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

namespace sgtree {
namespace net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Remaining budget of a deadline started `start_ms` ago; never negative.
/// A timeout_ms < 0 means "no deadline" and always yields a 1 s poll slice
/// (callers loop).
int RemainingMs(int timeout_ms, int64_t start_ms) {
  if (timeout_ms < 0) return 1000;
  const int64_t spent = NowMs() - start_ms;
  const int64_t left = static_cast<int64_t>(timeout_ms) - spent;
  return left < 0 ? 0 : static_cast<int>(left);
}

/// Polls `fd` for `events` with a deadline. Returns 1 = ready, 0 = timed
/// out, -1 = error.
int PollFd(int fd, short events, int timeout_ms) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc >= 0) return rc > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
  }
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket::~Socket() { Close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::Shutdown() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Socket Socket::ConnectTcp(const std::string& host, uint16_t port,
                          int timeout_ms, std::string* error) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address '" + host + "'";
    return Socket();
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket");
    return Socket();
  }
  // Non-blocking connect with a poll deadline: a refused or unreachable
  // port fails within timeout_ms instead of the kernel's minutes-long SYN
  // retry schedule.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    if (error != nullptr) *error = Errno("connect");
    ::close(fd);
    return Socket();
  }
  if (rc != 0) {
    const int ready = PollFd(fd, POLLOUT, timeout_ms);
    int soerr = 0;
    socklen_t len = sizeof(soerr);
    if (ready != 1 ||
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 ||
        soerr != 0) {
      if (error != nullptr) {
        *error = ready == 0 ? "connect timed out"
                            : "connect: " + std::string(std::strerror(
                                  soerr != 0 ? soerr : errno));
      }
      ::close(fd);
      return Socket();
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  SetNoDelay(fd);
  return Socket(fd);
}

IoStatus Socket::SendAll(const void* data, size_t size, int timeout_ms,
                         std::string* error) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  size_t sent = 0;
  const int64_t start = NowMs();
  while (sent < size) {
    const int wait = RemainingMs(timeout_ms, start);
    if (timeout_ms >= 0 && wait == 0) {
      if (error != nullptr) *error = "send timed out";
      return IoStatus::kTimeout;
    }
    const int ready = PollFd(fd_, POLLOUT, wait);
    if (ready < 0) {
      if (error != nullptr) *error = Errno("poll");
      return IoStatus::kError;
    }
    if (ready == 0) continue;  // Re-derive the remaining budget.
    const ssize_t n =
        ::send(fd_, bytes + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                  errno == EWOULDBLOCK)) {
      continue;
    }
    if (error != nullptr) *error = Errno("send");
    return errno == EPIPE || errno == ECONNRESET ? IoStatus::kClosed
                                                 : IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus Socket::RecvAll(void* data, size_t size, int timeout_ms,
                         std::string* error) {
  auto* bytes = static_cast<uint8_t*>(data);
  size_t got = 0;
  const int64_t start = NowMs();
  while (got < size) {
    const int wait = RemainingMs(timeout_ms, start);
    if (timeout_ms >= 0 && wait == 0) {
      if (got == 0) return IoStatus::kTimeout;
      // Mid-frame deadline: the stream is desynchronized, not idle.
      if (error != nullptr) *error = "recv timed out mid-frame";
      return IoStatus::kError;
    }
    const int ready = PollFd(fd_, POLLIN, wait);
    if (ready < 0) {
      if (error != nullptr) *error = Errno("poll");
      return IoStatus::kError;
    }
    if (ready == 0) continue;
    const ssize_t n = ::recv(fd_, bytes + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) {
      if (got != 0 && error != nullptr) *error = "peer closed mid-frame";
      return IoStatus::kClosed;
    }
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    if (error != nullptr) *error = Errno("recv");
    return errno == ECONNRESET ? IoStatus::kClosed : IoStatus::kError;
  }
  return IoStatus::kOk;
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(other.fd_), port_(other.port_) {
  other.fd_ = -1;
  other.port_ = 0;
}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket ListenSocket::Listen(uint16_t port, int backlog,
                                  std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("socket");
    return ListenSocket();
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = Errno("bind");
    ::close(fd);
    return ListenSocket();
  }
  if (::listen(fd, backlog) != 0) {
    if (error != nullptr) *error = Errno("listen");
    ::close(fd);
    return ListenSocket();
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    if (error != nullptr) *error = Errno("getsockname");
    ::close(fd);
    return ListenSocket();
  }
  ListenSocket out;
  out.fd_ = fd;
  out.port_ = ntohs(addr.sin_port);
  return out;
}

AcceptStatus ListenSocket::Accept(int timeout_ms, Socket* out,
                                  std::string* error) {
  const int ready = PollFd(fd_, POLLIN, timeout_ms);
  if (ready == 0) return AcceptStatus::kTimeout;
  if (ready < 0) {
    if (error != nullptr) *error = Errno("poll");
    return AcceptStatus::kError;
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      SetNoDelay(fd);
      *out = Socket(fd);
      return AcceptStatus::kAccepted;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return AcceptStatus::kTimeout;
    if (error != nullptr) *error = Errno("accept");
    return AcceptStatus::kError;
  }
}

}  // namespace net
}  // namespace sgtree
