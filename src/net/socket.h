#ifndef SGTREE_NET_SOCKET_H_
#define SGTREE_NET_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace sgtree {
namespace net {

/// Thin RAII TCP socket layer for the serving front end (src/server/).
///
/// This is the ONLY translation unit allowed to issue raw socket / bind /
/// listen / accept / connect calls — tools/sglint.py's `raw-socket` rule
/// enforces it, mirroring the raw-mmap rule that funnels mappings through
/// Env::MapReadOnly. Everything above this layer talks in terms of
/// "send these bytes / receive exactly N bytes, with a deadline", so
/// timeout handling, EINTR retries, SIGPIPE suppression, and partial
/// read/write loops exist in exactly one place.
///
/// Locking: a Socket is a plain resource owner with no internal
/// synchronization. The serving layer's discipline (documented per field
/// with the PR 7 annotations in src/server/) is one reader thread per
/// connection; Shutdown() is the only member another thread may call
/// concurrently, which is what unblocks a reader at server stop.

/// Outcome of a blocking receive with a deadline.
enum class IoStatus {
  kOk,       // The full buffer was transferred.
  kTimeout,  // The deadline passed before any/all bytes arrived.
  kClosed,   // The peer closed the connection (clean EOF mid-frame = kClosed).
  kError,    // Hard socket error; see the error string.
};

/// A connected TCP stream. Move-only; the descriptor closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// Connects to host:port (numeric IPv4, e.g. "127.0.0.1") within
  /// `timeout_ms`. Returns an invalid socket with `*error` set on failure.
  /// TCP_NODELAY is set: the serving protocol is request/response and a
  /// 40 ms Nagle stall would dominate every latency budget in this repo.
  static Socket ConnectTcp(const std::string& host, uint16_t port,
                           int timeout_ms, std::string* error);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends the whole buffer, retrying partial writes. `timeout_ms` bounds
  /// the total time. SIGPIPE is suppressed (a dead peer is kError, not a
  /// process kill).
  IoStatus SendAll(const void* data, size_t size, int timeout_ms,
                   std::string* error);

  /// Receives exactly `size` bytes. kTimeout is returned only when ZERO
  /// bytes of this call arrived in time — a half-received buffer past the
  /// deadline is kError (the stream is mid-frame and unrecoverable).
  IoStatus RecvAll(void* data, size_t size, int timeout_ms,
                   std::string* error);

  /// Shuts down both directions without closing the descriptor, unblocking
  /// any thread inside RecvAll/SendAll. Safe to call from another thread
  /// while a reader is blocked; the reader sees kClosed/kError.
  void Shutdown();

  void Close();

 private:
  int fd_ = -1;
};

/// Outcome of an Accept() with a deadline.
enum class AcceptStatus {
  kAccepted,
  kTimeout,
  kError,
};

/// A listening TCP socket bound to 127.0.0.1. Move-only.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
  /// port, readable via port() — how the tests and the in-process bench
  /// avoid fixed-port collisions). SO_REUSEADDR is set so a restarted
  /// server re-binds through TIME_WAIT.
  static ListenSocket Listen(uint16_t port, int backlog, std::string* error);

  bool valid() const { return fd_ >= 0; }
  /// The bound port (resolves ephemeral binds).
  uint16_t port() const { return port_; }

  /// Waits up to `timeout_ms` for a connection; kTimeout lets the accept
  /// loop poll its shutdown flag instead of blocking forever. Accepted
  /// sockets have TCP_NODELAY set.
  AcceptStatus Accept(int timeout_ms, Socket* out, std::string* error);

  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace net
}  // namespace sgtree

#endif  // SGTREE_NET_SOCKET_H_
