#ifndef SGTREE_DURABILITY_RECOVERY_H_
#define SGTREE_DURABILITY_RECOVERY_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "durability/env.h"
#include "durability/file_page_store.h"
#include "durability/meta.h"
#include "obs/metrics.h"
#include "sgtree/invariant_auditor.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// What crash recovery did: how much of the log was clean, how many
/// committed operations it replayed, and what it threw away.
struct RecoveryReport {
  /// Checkpoint the page file and the WAL agreed on.
  uint64_t checkpoint_seq = 0;
  /// Complete, well-formed records the scanner accepted (incl. the marker).
  uint64_t wal_records_scanned = 0;
  /// Records belonging to committed operations that were applied.
  uint64_t records_replayed = 0;
  /// Committed operations (TreeMeta markers) replayed from the log.
  uint64_t ops_committed = 0;
  /// Records of the trailing uncommitted operation, discarded.
  uint64_t records_discarded = 0;
  /// True when bytes past the clean prefix existed (torn tail / corruption).
  bool torn_tail = false;
  /// Bytes of the WAL record region accepted (the append point for the
  /// continuing log; everything past it is truncated away).
  uint64_t wal_valid_end = 0;
  /// op_seq of the recovered state (number of operations that survived).
  uint64_t op_seq = 0;

  /// One-line human-readable summary.
  std::string Summary() const;
};

/// A recovered index: the rebuilt in-memory tree (page ids identical to the
/// ones the log and page file record), the opened page file, the durable
/// meta as of the recovered state, and the post-recovery audit.
struct RecoveredTree {
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<FilePageStore> pages;
  DurableTreeMeta meta;  // meta.tree reflects the recovered state
  RecoveryReport report;
  AuditReport audit;

  /// Pages whose content/liveness the replay changed relative to the
  /// checkpoint base. These seed the next checkpoint's fold sets: the
  /// page file is still at the old checkpoint, and only log-covered pages
  /// may ever be rewritten in place (a torn fold write on a page with no
  /// redo record in the log would be unrepairable).
  std::set<PageId> replay_written;
  std::set<PageId> replay_freed;
};

/// ARIES-lite redo-only crash recovery:
///
///   1. open the page file, pick the winning header, load every live page
///      (checksum-verified) as the checkpoint state;
///   2. scan the WAL: the leading checkpoint marker must name the page
///      file's checkpoint (or the one before it — the crash window between
///      sealing a checkpoint and folding the log is benign because page
///      images are absolute and replay converges);
///   3. replay committed operations: records are staged and applied only
///      when the operation's TreeMeta commit marker is read, so a crash
///      mid-operation rolls the whole operation back;
///   4. stop cleanly at the first torn/corrupt frame, discarding the
///      uncommitted tail;
///   5. rebuild the SgTree with its original page ids (AdoptNode) and gate
///      the result through the InvariantAuditor — a tree that recovers but
///      fails the audit is reported as an error, not returned as good.
///
/// A checkpoint-state page whose checksum fails is an error unless the log
/// overwrites or frees it (the store can detect, not repair, bit rot that
/// predates the log window).
///
/// `options_hint`, when non-null, supplies the full tree options (its
/// structural fields must match the stored meta); otherwise options are
/// reconstructed from the stored meta with defaults for tuning knobs.
/// `metrics`, when non-null, receives recovery.records_replayed.
/// Returns nullptr with `*error` set on any failure.
std::unique_ptr<RecoveredTree> RecoverTree(
    Env* env, const std::string& page_path, const std::string& wal_path,
    std::string* error, const SgTreeOptions* options_hint = nullptr,
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_RECOVERY_H_
