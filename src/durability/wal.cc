#include "durability/wal.h"

#include <cstring>

#include "common/crc32.h"
#include "durability/byte_io.h"

namespace sgtree {
namespace {

constexpr char kWalMagic[8] = {'S', 'G', 'W', 'L', '0', '0', '0', '1'};

}  // namespace

uint64_t Wal::RecordRegionStart() { return sizeof(kWalMagic); }

void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out) {
  AppendU8(static_cast<uint8_t>(record.type), out);
  switch (record.type) {
    case WalRecordType::kCheckpoint:
      AppendU64(record.checkpoint_seq, out);
      break;
    case WalRecordType::kAlloc:
    case WalRecordType::kFree:
      AppendU32(record.page, out);
      break;
    case WalRecordType::kPageImage:
      AppendU32(record.page, out);
      out->insert(out->end(), record.image.begin(), record.image.end());
      break;
    case WalRecordType::kTreeMeta:
      EncodeTreeMeta(record.meta, out);
      break;
  }
}

bool DecodeWalRecord(const std::vector<uint8_t>& payload,
                     WalRecord* record) {
  *record = WalRecord{};  // no stale fields when the caller reuses records
  size_t offset = 0;
  uint8_t type = 0;
  if (!ReadU8(payload, &offset, &type)) return false;
  switch (static_cast<WalRecordType>(type)) {
    case WalRecordType::kCheckpoint:
      record->type = WalRecordType::kCheckpoint;
      return ReadU64(payload, &offset, &record->checkpoint_seq) &&
             offset == payload.size();
    case WalRecordType::kAlloc:
    case WalRecordType::kFree:
      record->type = static_cast<WalRecordType>(type);
      return ReadU32(payload, &offset, &record->page) &&
             offset == payload.size();
    case WalRecordType::kPageImage:
      record->type = WalRecordType::kPageImage;
      if (!ReadU32(payload, &offset, &record->page)) return false;
      record->image.assign(payload.begin() + static_cast<ptrdiff_t>(offset),
                           payload.end());
      return true;
    case WalRecordType::kTreeMeta:
      record->type = WalRecordType::kTreeMeta;
      return DecodeTreeMeta(payload, &offset, &record->meta) &&
             offset == payload.size();
  }
  return false;
}

bool WalScanner::Next(WalRecord* record) {
  if (done_) return false;
  // Frame header.
  if (offset_ + 8 > size_) {
    done_ = true;
    return false;
  }
  std::vector<uint8_t> header(data_ + offset_, data_ + offset_ + 8);
  size_t hoff = 0;
  uint32_t length = 0;
  uint32_t stored_crc = 0;
  ReadU32(header, &hoff, &length);
  ReadU32(header, &hoff, &stored_crc);
  if (length == 0 || length > kMaxWalRecordSize ||
      offset_ + 8 + length > size_) {
    done_ = true;
    return false;
  }
  std::vector<uint8_t> payload(data_ + offset_ + 8,
                               data_ + offset_ + 8 + length);
  if (Crc32c(payload) != stored_crc || !DecodeWalRecord(payload, record)) {
    done_ = true;
    return false;
  }
  offset_ += 8 + length;
  valid_end_ = offset_;
  ++records_;
  return true;
}

std::unique_ptr<Wal> Wal::Create(Env* env, const std::string& path,
                                 std::string* error) {
  auto file = env->Open(path, /*create=*/true);
  if (file == nullptr || !file->Truncate(0) ||
      !file->Append(reinterpret_cast<const uint8_t*>(kWalMagic),
                    sizeof(kWalMagic))) {
    if (error != nullptr) *error = "cannot create wal " + path;
    return nullptr;
  }
  return std::unique_ptr<Wal>(
      new Wal(env, path, std::move(file), sizeof(kWalMagic)));
}

std::unique_ptr<Wal> Wal::OpenForAppend(Env* env, const std::string& path,
                                        uint64_t append_offset,
                                        std::string* error) {
  auto file = env->Open(path, /*create=*/false);
  const uint64_t end = sizeof(kWalMagic) + append_offset;
  if (file == nullptr || !file->Truncate(end)) {
    if (error != nullptr) *error = "cannot open wal " + path;
    return nullptr;
  }
  return std::unique_ptr<Wal>(new Wal(env, path, std::move(file), end));
}

bool Wal::ReadRecordRegion(Env* env, const std::string& path,
                           std::vector<uint8_t>* records_region,
                           std::string* error) {
  records_region->clear();
  if (!env->FileExists(path)) return true;
  auto file = env->Open(path, /*create=*/false);
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open wal " + path;
    return false;
  }
  const uint64_t size = file->Size();
  if (size == UINT64_MAX) {
    if (error != nullptr) *error = "cannot stat wal " + path;
    return false;
  }
  if (size < sizeof(kWalMagic)) return true;  // Torn creation: empty log.
  std::vector<uint8_t> magic;
  if (!file->ReadAt(0, sizeof(kWalMagic), &magic) ||
      std::memcmp(magic.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    if (error != nullptr) *error = path + " is not a wal file";
    return false;
  }
  if (!file->ReadAt(sizeof(kWalMagic),
                    static_cast<size_t>(size - sizeof(kWalMagic)),
                    records_region)) {
    if (error != nullptr) *error = "cannot read wal " + path;
    return false;
  }
  return true;
}

bool Wal::Append(const WalRecord& record) {
  MutexLock lock(&mu_);
  return AppendLocked(record);
}

bool Wal::AppendLocked(const WalRecord& record) {
  std::vector<uint8_t> payload;
  EncodeWalRecord(record, &payload);
  std::vector<uint8_t> frame;
  frame.reserve(8 + payload.size());
  AppendU32(static_cast<uint32_t>(payload.size()), &frame);
  AppendU32(Crc32c(payload), &frame);
  frame.insert(frame.end(), payload.begin(), payload.end());
  if (!file_->Append(frame.data(), frame.size())) return false;
  size_ += frame.size();
  ++records_appended_;
  ++dirty_appends_;
  if (appends_counter_ != nullptr) appends_counter_->Increment();
  if (bytes_counter_ != nullptr) bytes_counter_->Increment(frame.size());
  return true;
}

bool Wal::Commit() {
  MutexLock lock(&mu_);
  return CommitLocked();
}

bool Wal::CommitLocked() {
  if (dirty_appends_ == 0) return true;
  if (!file_->Sync()) return false;
  dirty_appends_ = 0;
  if (fsyncs_counter_ != nullptr) fsyncs_counter_->Increment();
  return true;
}

bool Wal::Reset(uint64_t checkpoint_seq) {
  // One critical section: truncate, checkpoint marker, sync. A concurrent
  // Append can land before or after the fold, never inside it.
  MutexLock lock(&mu_);
  if (!file_->Truncate(sizeof(kWalMagic))) return false;
  size_ = sizeof(kWalMagic);
  WalRecord marker;
  marker.type = WalRecordType::kCheckpoint;
  marker.checkpoint_seq = checkpoint_seq;
  if (!AppendLocked(marker)) return false;
  return CommitLocked();
}

void Wal::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  MutexLock lock(&mu_);
  appends_counter_ = registry->GetCounter("wal.appends");
  fsyncs_counter_ = registry->GetCounter("wal.fsyncs");
  bytes_counter_ = registry->GetCounter("wal.bytes");
}

}  // namespace sgtree
