#include "durability/meta.h"

#include "durability/byte_io.h"

namespace sgtree {

namespace {
constexpr uint32_t kMetaVersion = 1;
}  // namespace

void EncodeTreeMeta(const TreeMeta& meta, std::vector<uint8_t>* out) {
  AppendU64(meta.op_seq, out);
  AppendU32(meta.root, out);
  AppendU32(meta.height, out);
  AppendU64(meta.size, out);
  AppendU32(meta.area_lo, out);
  AppendU32(meta.area_hi, out);
  AppendU64(meta.node_count, out);
}

bool DecodeTreeMeta(const std::vector<uint8_t>& data, size_t* offset,
                    TreeMeta* meta) {
  return ReadU64(data, offset, &meta->op_seq) &&
         ReadU32(data, offset, &meta->root) &&
         ReadU32(data, offset, &meta->height) &&
         ReadU64(data, offset, &meta->size) &&
         ReadU32(data, offset, &meta->area_lo) &&
         ReadU32(data, offset, &meta->area_hi) &&
         ReadU64(data, offset, &meta->node_count);
}

void EncodeDurableTreeMeta(const DurableTreeMeta& meta,
                           std::vector<uint8_t>* out) {
  AppendU32(kMetaVersion, out);
  AppendU32(meta.num_bits, out);
  AppendU32(meta.max_entries, out);
  AppendU8(meta.compress, out);
  AppendU64(meta.checkpoint_seq, out);
  EncodeTreeMeta(meta.tree, out);
}

bool DecodeDurableTreeMeta(const std::vector<uint8_t>& data,
                           DurableTreeMeta* meta) {
  size_t offset = 0;
  uint32_t version = 0;
  if (!ReadU32(data, &offset, &version) || version != kMetaVersion) {
    return false;
  }
  return ReadU32(data, &offset, &meta->num_bits) &&
         ReadU32(data, &offset, &meta->max_entries) &&
         ReadU8(data, &offset, &meta->compress) &&
         ReadU64(data, &offset, &meta->checkpoint_seq) &&
         DecodeTreeMeta(data, &offset, &meta->tree);
}

}  // namespace sgtree
