#ifndef SGTREE_DURABILITY_META_H_
#define SGTREE_DURABILITY_META_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "storage/page.h"

namespace sgtree {

/// Shape of the tree after one committed operation. A TreeMeta record is
/// the WAL's commit marker: recovery applies an operation's staged page
/// images/frees only when it reads the trailing TreeMeta, so a crash
/// mid-operation rolls the whole operation back (ARIES-lite, redo-only).
struct TreeMeta {
  /// Monotonic operation number; op_seq of the recovered state tells the
  /// caller exactly how many committed operations survived.
  uint64_t op_seq = 0;
  PageId root = kInvalidPageId;
  uint32_t height = 0;
  uint64_t size = 0;
  /// Observed transaction-area window; lo > hi (the defaults) = no data
  /// seen, so recovery leaves the rebuilt tree's statistics unset.
  uint32_t area_lo = 0xFFFFFFFFu;
  uint32_t area_hi = 0;
  uint64_t node_count = 0;

  bool operator==(const TreeMeta&) const = default;
};

/// Page-file header blob: the structural parameters that never change for
/// the life of the index plus the TreeMeta as of the last checkpoint.
/// checkpoint_seq pairs the page file with its WAL (the WAL's leading
/// checkpoint record names the checkpoint it follows).
struct DurableTreeMeta {
  uint32_t num_bits = 0;
  uint32_t max_entries = 0;
  uint8_t compress = 0;
  uint64_t checkpoint_seq = 0;
  TreeMeta tree;
};

void EncodeTreeMeta(const TreeMeta& meta, std::vector<uint8_t>* out);
bool DecodeTreeMeta(const std::vector<uint8_t>& data, size_t* offset,
                    TreeMeta* meta);

void EncodeDurableTreeMeta(const DurableTreeMeta& meta,
                           std::vector<uint8_t>* out);
bool DecodeDurableTreeMeta(const std::vector<uint8_t>& data,
                           DurableTreeMeta* meta);

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_META_H_
