#ifndef SGTREE_DURABILITY_ENV_H_
#define SGTREE_DURABILITY_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sgtree {

/// Random-access file handle used by the durability layer (page file and
/// write-ahead log). All offsets are absolute; there is no seek state, so a
/// store and a log can interleave operations on their handles freely.
///
/// Durability contract: WriteAt/Append affect the OS view of the file
/// immediately but are only guaranteed to survive a crash after Sync()
/// returns true. Every method returns false on I/O failure.
class File {
 public:
  virtual ~File() = default;

  /// Reads up to `n` bytes at `offset` into `*out` (resized to the bytes
  /// actually read — short reads at end-of-file are not an error).
  virtual bool ReadAt(uint64_t offset, size_t n,
                      std::vector<uint8_t>* out) const = 0;

  /// Writes exactly `data[0, n)` at `offset`, extending the file if needed.
  virtual bool WriteAt(uint64_t offset, const uint8_t* data, size_t n) = 0;

  /// Appends exactly `data[0, n)` at the current end of file.
  virtual bool Append(const uint8_t* data, size_t n) = 0;

  /// Flushes written data to durable media (fsync).
  virtual bool Sync() = 0;

  /// Truncates or extends the file to `size` bytes.
  virtual bool Truncate(uint64_t size) = 0;

  /// Current size in bytes, or UINT64_MAX on failure.
  virtual uint64_t Size() const = 0;
};

/// A read-only view of an entire file's contents, produced by
/// Env::MapReadOnly. The bytes stay valid and immutable for the lifetime of
/// this object; `data()` is 8-byte aligned (page-aligned for real mappings,
/// word-buffer-backed for the fallback), so callers may read aligned 64-bit
/// words at 8-aligned offsets into it. An empty file yields {nullptr, 0}.
class FileMapping {
 public:
  virtual ~FileMapping() = default;

  virtual const uint8_t* data() const = 0;
  virtual size_t size() const = 0;

  /// True when the bytes are served straight from the page cache (a real
  /// mmap) rather than a private copy read through the Env.
  virtual bool zero_copy() const { return false; }
};

/// Filesystem abstraction the durability layer runs over. The production
/// implementation (Env::Posix()) maps straight onto POSIX calls; the
/// FaultInjectingEnv wrapper (fault_injection.h) threads deterministic
/// crash/corruption hooks under every durable component at once.
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for read/write, creating it when `create` is true.
  /// Returns nullptr on failure.
  virtual std::unique_ptr<File> Open(const std::string& path,
                                     bool create) = 0;

  virtual bool FileExists(const std::string& path) const = 0;
  virtual bool Delete(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual bool Rename(const std::string& from, const std::string& to) = 0;

  /// Creates `path` (one level) if it does not exist.
  virtual bool CreateDir(const std::string& path) = 0;

  /// Fsyncs the directory containing `path`, making renames/creates in it
  /// durable. A no-op success on platforms where directories cannot be
  /// opened.
  virtual bool SyncDir(const std::string& path) = 0;

  /// Maps the whole of `path` read-only. The base implementation reads the
  /// file into a private aligned buffer via Open/ReadAt — so wrapping
  /// environments (FaultInjectingEnv) keep their fault coverage without
  /// knowing about mappings — while PosixEnv overrides it with a true
  /// zero-copy mmap (common/mmap_file.h). Returns nullptr on failure.
  virtual std::unique_ptr<FileMapping> MapReadOnly(const std::string& path);

  /// The process-wide POSIX environment.
  static Env* Posix();
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_ENV_H_
