#include "durability/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <limits>
#include <utility>

#include "common/mmap_file.h"

namespace sgtree {
namespace {

// Fallback mapping: the file's bytes copied into a word-aligned private
// buffer. Used by the base Env::MapReadOnly so environments without a real
// mmap (including fault-injecting wrappers) still satisfy the FileMapping
// alignment contract.
class BufferMapping final : public FileMapping {
 public:
  BufferMapping(std::vector<uint64_t> words, size_t size)
      : words_(std::move(words)), size_(size) {}

  const uint8_t* data() const override {
    return size_ == 0 ? nullptr
                      : reinterpret_cast<const uint8_t*>(words_.data());
  }
  size_t size() const override { return size_; }

 private:
  std::vector<uint64_t> words_;
  size_t size_;
};

// Zero-copy mapping over a real mmap (POSIX environment only).
class PosixMapping final : public FileMapping {
 public:
  explicit PosixMapping(std::unique_ptr<MappedFile> map)
      : map_(std::move(map)) {}

  const uint8_t* data() const override { return map_->data(); }
  size_t size() const override { return map_->size(); }
  bool zero_copy() const override { return true; }

 private:
  std::unique_ptr<MappedFile> map_;
};

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { ::close(fd_); }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  bool ReadAt(uint64_t offset, size_t n,
              std::vector<uint8_t>* out) const override {
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      const ssize_t got =
          ::pread(fd_, out->data() + done, n - done,
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        out->clear();
        return false;
      }
      if (got == 0) break;  // End of file: short read.
      done += static_cast<size_t>(got);
    }
    out->resize(done);
    return true;
  }

  bool WriteAt(uint64_t offset, const uint8_t* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t put = ::pwrite(fd_, data + done, n - done,
                                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(put);
    }
    return true;
  }

  bool Append(const uint8_t* data, size_t n) override {
    const uint64_t size = Size();
    if (size == std::numeric_limits<uint64_t>::max()) return false;
    return WriteAt(size, data, n);
  }

  bool Sync() override { return ::fsync(fd_) == 0; }

  bool Truncate(uint64_t size) override {
    return ::ftruncate(fd_, static_cast<off_t>(size)) == 0;
  }

  uint64_t Size() const override {
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      return std::numeric_limits<uint64_t>::max();
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixEnv final : public Env {
 public:
  std::unique_ptr<File> Open(const std::string& path, bool create) override {
    const int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return nullptr;
    return std::make_unique<PosixFile>(fd);
  }

  bool FileExists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  bool Delete(const std::string& path) override {
    return ::unlink(path.c_str()) == 0;
  }

  bool Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0;
  }

  bool CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0) return true;
    return errno == EEXIST;
  }

  bool SyncDir(const std::string& path) override {
    const size_t slash = path.find_last_of('/');
    std::string dir;
    if (slash == std::string::npos) {
      dir = ".";
    } else if (slash == 0) {
      dir = "/";
    } else {
      dir.assign(path, 0, slash);
    }
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
  }

  std::unique_ptr<FileMapping> MapReadOnly(const std::string& path) override {
    std::unique_ptr<MappedFile> map = MappedFile::MapReadOnly(path, nullptr);
    if (map == nullptr) return nullptr;
    return std::make_unique<PosixMapping>(std::move(map));
  }
};

}  // namespace

std::unique_ptr<FileMapping> Env::MapReadOnly(const std::string& path) {
  std::unique_ptr<File> file = Open(path, /*create=*/false);
  if (file == nullptr) return nullptr;
  const uint64_t size = file->Size();
  if (size == std::numeric_limits<uint64_t>::max()) return nullptr;
  std::vector<uint8_t> bytes;
  if (!file->ReadAt(0, static_cast<size_t>(size), &bytes)) return nullptr;
  if (bytes.size() != size) return nullptr;  // Short read: truncated race.
  std::vector<uint64_t> words((bytes.size() + sizeof(uint64_t) - 1) /
                                  sizeof(uint64_t),
                              0);
  if (!bytes.empty()) {
    std::memcpy(words.data(), bytes.data(), bytes.size());
  }
  return std::make_unique<BufferMapping>(std::move(words), bytes.size());
}

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

}  // namespace sgtree
