#include "durability/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <limits>

namespace sgtree {
namespace {

class PosixFile final : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { ::close(fd_); }

  PosixFile(const PosixFile&) = delete;
  PosixFile& operator=(const PosixFile&) = delete;

  bool ReadAt(uint64_t offset, size_t n,
              std::vector<uint8_t>* out) const override {
    out->resize(n);
    size_t done = 0;
    while (done < n) {
      const ssize_t got =
          ::pread(fd_, out->data() + done, n - done,
                  static_cast<off_t>(offset + done));
      if (got < 0) {
        if (errno == EINTR) continue;
        out->clear();
        return false;
      }
      if (got == 0) break;  // End of file: short read.
      done += static_cast<size_t>(got);
    }
    out->resize(done);
    return true;
  }

  bool WriteAt(uint64_t offset, const uint8_t* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      const ssize_t put = ::pwrite(fd_, data + done, n - done,
                                   static_cast<off_t>(offset + done));
      if (put < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(put);
    }
    return true;
  }

  bool Append(const uint8_t* data, size_t n) override {
    const uint64_t size = Size();
    if (size == std::numeric_limits<uint64_t>::max()) return false;
    return WriteAt(size, data, n);
  }

  bool Sync() override { return ::fsync(fd_) == 0; }

  bool Truncate(uint64_t size) override {
    return ::ftruncate(fd_, static_cast<off_t>(size)) == 0;
  }

  uint64_t Size() const override {
    struct stat st {};
    if (::fstat(fd_, &st) != 0) {
      return std::numeric_limits<uint64_t>::max();
    }
    return static_cast<uint64_t>(st.st_size);
  }

 private:
  int fd_;
};

class PosixEnv final : public Env {
 public:
  std::unique_ptr<File> Open(const std::string& path, bool create) override {
    const int flags = O_RDWR | O_CLOEXEC | (create ? O_CREAT : 0);
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return nullptr;
    return std::make_unique<PosixFile>(fd);
  }

  bool FileExists(const std::string& path) const override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  bool Delete(const std::string& path) override {
    return ::unlink(path.c_str()) == 0;
  }

  bool Rename(const std::string& from, const std::string& to) override {
    return ::rename(from.c_str(), to.c_str()) == 0;
  }

  bool CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) == 0) return true;
    return errno == EEXIST;
  }

  bool SyncDir(const std::string& path) override {
    const size_t slash = path.find_last_of('/');
    std::string dir;
    if (slash == std::string::npos) {
      dir = ".";
    } else if (slash == 0) {
      dir = "/";
    } else {
      dir.assign(path, 0, slash);
    }
    const int fd = ::open(dir.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return false;
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
  }
};

}  // namespace

Env* Env::Posix() {
  static PosixEnv env;
  return &env;
}

}  // namespace sgtree
