#ifndef SGTREE_DURABILITY_WAL_H_
#define SGTREE_DURABILITY_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.h"
#include "durability/env.h"
#include "durability/meta.h"
#include "obs/metrics.h"
#include "storage/page.h"

namespace sgtree {

/// WAL record types. One committed tree operation is the record run
///   [kAlloc | kPageImage | kFree]*  kTreeMeta
/// where the trailing kTreeMeta is the commit marker; recovery discards a
/// trailing run with no marker. A fresh (or just-checkpointed) log starts
/// with kCheckpoint naming the page-file checkpoint it follows.
enum class WalRecordType : uint8_t {
  kCheckpoint = 1,  // checkpoint_seq
  kAlloc = 2,       // page
  kPageImage = 3,   // page + full post-image of the page (redo record)
  kFree = 4,        // page
  kTreeMeta = 5,    // meta (commit marker)
};

struct WalRecord {
  WalRecordType type = WalRecordType::kCheckpoint;
  PageId page = kInvalidPageId;
  uint64_t checkpoint_seq = 0;
  std::vector<uint8_t> image;
  TreeMeta meta;
};

/// Serializes the record payload (without framing).
void EncodeWalRecord(const WalRecord& record, std::vector<uint8_t>* out);

/// Decodes a record payload. Returns false on malformed input without
/// crashing or over-reading — fuzzed directly by fuzz/fuzz_wal.cc.
bool DecodeWalRecord(const std::vector<uint8_t>& payload, WalRecord* record);

/// Upper bound on a sane framed record; anything larger is treated as
/// corruption by the scanner (a page image plus small headers fits well
/// under this for any supported page size).
inline constexpr uint32_t kMaxWalRecordSize = 1u << 20;

/// Forward scan over the record region of a WAL (the bytes after the file
/// magic). Framing per record: u32 payload_len | u32 crc32c(payload) |
/// payload. The scan stops cleanly at the first torn, truncated, or
/// checksum-failing frame — the defining property of a log tail — and
/// reports how many bytes of clean prefix it accepted.
class WalScanner {
 public:
  WalScanner(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Advances to the next record. Returns false at the clean end or tear.
  bool Next(WalRecord* record);

  /// Offset just past the last complete, well-formed record.
  uint64_t valid_end() const { return valid_end_; }
  /// True when bytes exist past valid_end (torn tail or corruption).
  bool torn() const { return done_ && valid_end_ < size_; }
  uint64_t records() const { return records_; }

 private:
  const uint8_t* data_;
  size_t size_;
  uint64_t offset_ = 0;
  uint64_t valid_end_ = 0;
  uint64_t records_ = 0;
  bool done_ = false;
};

/// Append-only write-ahead log. Appends buffer nothing: every record hits
/// the OS immediately; Commit() issues the (group) fsync that makes all
/// records appended since the previous Commit durable at once — one fsync
/// per logical operation or per batch, not per record.
///
/// Lock protocol: mu_ serializes the file and its bookkeeping (offset,
/// dirty-append count), so concurrent committers can interleave Append()
/// runs with group Commit() calls — the classic group-commit shape where
/// one fsync covers every record appended before it, whoever appended
/// them. Reset() holds the lock across truncate + checkpoint record +
/// sync, making the log fold one atomic transition. Record framing order
/// within one logical operation is the CALLER's contract (DurableTree
/// holds its own lock across the whole record run); the Wal lock only
/// guarantees records never interleave mid-frame.
class Wal {
 public:
  /// Creates a fresh, empty log (truncates an existing file), writing the
  /// file magic. Not yet synced.
  static std::unique_ptr<Wal> Create(Env* env, const std::string& path,
                                     std::string* error);

  /// Opens an existing log for appending at `append_offset` (a valid_end
  /// from a recovery scan; any torn tail past it is truncated away).
  static std::unique_ptr<Wal> OpenForAppend(Env* env,
                                            const std::string& path,
                                            uint64_t append_offset,
                                            std::string* error);

  /// Reads the record region (bytes after the magic) of the log at `path`
  /// into `*records_region`. A missing or shorter-than-magic file yields
  /// an empty region (a log that never finished being created is an empty
  /// log); a wrong magic is an error.
  static bool ReadRecordRegion(Env* env, const std::string& path,
                               std::vector<uint8_t>* records_region,
                               std::string* error);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one framed record. Returns false on I/O failure.
  bool Append(const WalRecord& record) SGTREE_EXCLUDES(mu_);

  /// Fsyncs appended records (no-op when nothing was appended since the
  /// last Commit). The group-commit point.
  bool Commit() SGTREE_EXCLUDES(mu_);

  /// Folds the log: truncates to the magic, appends a kCheckpoint record
  /// naming `checkpoint_seq`, and syncs — one critical section, so a
  /// concurrent Append can never land between the truncate and the
  /// checkpoint marker. The page file must be durable before this is
  /// called.
  bool Reset(uint64_t checkpoint_seq) SGTREE_EXCLUDES(mu_);

  /// Bytes of the log file, including magic.
  uint64_t size_bytes() const SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return size_;
  }
  uint64_t records_appended() const SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return records_appended_;
  }

  /// Binds wal.appends / wal.fsyncs / wal.bytes counters (may be null).
  void BindMetrics(obs::MetricsRegistry* registry) SGTREE_EXCLUDES(mu_);

  /// Offset of the first record in a WAL file (the magic length).
  static uint64_t RecordRegionStart();

 private:
  Wal(Env* env, std::string path, std::unique_ptr<File> file, uint64_t size)
      : env_(env), path_(std::move(path)), file_(std::move(file)),
        size_(size) {}

  /// Unlocked bodies for callers already inside the critical section
  /// (Reset composes append + commit under one hold).
  bool AppendLocked(const WalRecord& record) SGTREE_REQUIRES(mu_);
  bool CommitLocked() SGTREE_REQUIRES(mu_);

  Env* env_;
  const std::string path_;
  mutable Mutex mu_;
  /// The File pointer is set once at construction; the pointee (append
  /// offset, sync state) is what the lock guards.
  std::unique_ptr<File> file_ SGTREE_PT_GUARDED_BY(mu_);
  uint64_t size_ SGTREE_GUARDED_BY(mu_);
  uint64_t records_appended_ SGTREE_GUARDED_BY(mu_) = 0;
  uint64_t dirty_appends_ SGTREE_GUARDED_BY(mu_) = 0;
  obs::Counter* appends_counter_ SGTREE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* fsyncs_counter_ SGTREE_GUARDED_BY(mu_) = nullptr;
  obs::Counter* bytes_counter_ SGTREE_GUARDED_BY(mu_) = nullptr;
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_WAL_H_
