#ifndef SGTREE_DURABILITY_DURABLE_TREE_H_
#define SGTREE_DURABILITY_DURABLE_TREE_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "data/transaction.h"
#include "durability/env.h"
#include "durability/file_page_store.h"
#include "durability/meta.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Crash-safe SG-tree: an in-memory SgTree whose every update is logged to
/// a write-ahead log before it is acknowledged, with a file-backed page
/// store as the checkpoint target.
///
/// Write path (log-before-acknowledge): the tree mutates in memory while a
/// PageChangeListener collects the touched pages; the operation's redo set
/// — alloc records, full post-images of every dirtied page, free records —
/// is appended to the WAL followed by a TreeMeta commit marker, then
/// (sync_each_op) fsynced. A crash at any point loses at most the
/// operations whose markers never reached the disk, never a prefix-torn
/// half-operation: recovery replays whole committed operations only.
///
/// Checkpoint() folds the accumulated dirty pages into the page file,
/// seals it (meta + fsync), and truncates the log — bounding both the log
/// size and recovery time. Directory layout: `<dir>/pages.sgp` (page file)
/// and `<dir>/wal.sgw` (log).
class DurableTree {
 public:
  struct Options {
    SgTreeOptions tree;
    /// Fsync the log after every operation (full durability). When false,
    /// operations are durable only at the next Sync()/Checkpoint() — the
    /// group-commit mode batch loads want.
    bool sync_each_op = true;
    /// Optional registry for wal.* / checkpoint.* / recovery.* metrics.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (or creates) the durable tree in `dir`. An existing index is
  /// crash-recovered first — including truncating a torn log tail — and
  /// `recovery_report()` tells what replay did. Returns nullptr with
  /// `*error` set on failure (I/O trouble, corrupt files, failed audit, or
  /// options that contradict the stored meta).
  static std::unique_ptr<DurableTree> Open(Env* env, const std::string& dir,
                                           const Options& options,
                                           std::string* error);

  DurableTree(const DurableTree&) = delete;
  DurableTree& operator=(const DurableTree&) = delete;
  ~DurableTree();

  /// Logged updates. Return false when the operation could not be made
  /// durable (the in-memory tree may have advanced; treat the instance as
  /// crashed). Erase of an absent key returns false without logging.
  bool Insert(const Transaction& txn);
  bool Insert(const Signature& sig, uint64_t tid);
  bool Erase(const Transaction& txn);
  bool Erase(const Signature& sig, uint64_t tid);

  /// Inserts a batch under one group commit (one fsync for the whole batch
  /// regardless of sync_each_op). Returns the number of inserts logged.
  size_t InsertBatch(const std::vector<Transaction>& txns);

  /// Replaces the (required-empty) tree with `loaded` (a BulkLoad /
  /// BulkLoadEntries result built with the same options), logging the
  /// entire content as one committed operation and then checkpointing, so
  /// the load is crash-safe from the moment this returns true.
  bool AdoptBulkLoaded(std::unique_ptr<SgTree> loaded,
                       std::string* error = nullptr);

  /// Fsyncs any unsynced log records (the group-commit point when
  /// sync_each_op is off).
  bool Sync();

  /// Folds dirty pages into the page file, seals the checkpoint, and
  /// truncates the log. Returns false with `*error` set on failure.
  bool Checkpoint(std::string* error = nullptr);

  /// The underlying tree. Reads are free to use it directly (queries touch
  /// nothing durable); mutate only through DurableTree.
  SgTree& tree() { return *tree_; }
  const SgTree& tree() const { return *tree_; }

  /// Number of committed (logged) operations over the index lifetime.
  uint64_t op_seq() const { return op_seq_; }
  uint64_t checkpoint_seq() const { return checkpoint_seq_; }

  /// What recovery did at Open (all-zero for a fresh index).
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  const std::string& page_path() const { return page_path_; }
  const std::string& wal_path() const { return wal_path_; }

  /// Builds the durable file names for `dir`.
  static std::string PagePathFor(const std::string& dir);
  static std::string WalPathFor(const std::string& dir);

 private:
  class Tracker;

  DurableTree(const Options& options, Env* env);

  /// Appends the current operation's redo set + commit marker; clears the
  /// tracker. `sync` forces/suppresses the per-op fsync.
  bool LogOp(bool sync);
  /// TreeMeta snapshot of the current in-memory state at `op_seq`.
  TreeMeta CurrentTreeMeta() const;
  bool EncodeLivePage(PageId id, std::vector<uint8_t>* out) const;

  Options options_;
  Env* env_;
  std::string page_path_;
  std::string wal_path_;

  std::unique_ptr<SgTree> tree_;
  std::unique_ptr<FilePageStore> store_;
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<Tracker> tracker_;

  uint64_t op_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  RecoveryReport recovery_report_;

  // Pages to fold at the next checkpoint, accumulated across ops (and
  // seeded from the replay delta after recovery). Invariant: every id in
  // ckpt_dirty_ has a redo image in the current log, so a torn fold write
  // is always repairable by replay.
  std::set<PageId> ckpt_dirty_;
  std::set<PageId> ckpt_freed_;

  obs::Histogram* checkpoint_latency_us_ = nullptr;
  obs::Counter* checkpoint_count_ = nullptr;
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_DURABLE_TREE_H_
