#ifndef SGTREE_DURABILITY_DURABLE_TREE_H_
#define SGTREE_DURABILITY_DURABLE_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/sync.h"
#include "data/transaction.h"
#include "durability/env.h"
#include "durability/file_page_store.h"
#include "durability/meta.h"
#include "durability/recovery.h"
#include "durability/wal.h"
#include "obs/metrics.h"
#include "sgtree/sg_tree.h"

namespace sgtree {

/// Crash-safe SG-tree: an in-memory SgTree whose every update is logged to
/// a write-ahead log before it is acknowledged, with a file-backed page
/// store as the checkpoint target.
///
/// Write path (log-before-acknowledge): the tree mutates in memory while a
/// PageChangeListener collects the touched pages; the operation's redo set
/// — alloc records, full post-images of every dirtied page, free records —
/// is appended to the WAL followed by a TreeMeta commit marker, then
/// (sync_each_op) fsynced. A crash at any point loses at most the
/// operations whose markers never reached the disk, never a prefix-torn
/// half-operation: recovery replays whole committed operations only.
///
/// Checkpoint() folds the accumulated dirty pages into the page file,
/// seals it (meta + fsync), and truncates the log — bounding both the log
/// size and recovery time. Directory layout: `<dir>/pages.sgp` (page file)
/// and `<dir>/wal.sgw` (log).
///
/// Lock protocol (compile-checked; see common/sync.h): mu_ serializes the
/// entire write path. "WAL append before ack" is a single critical section
/// per operation — mutate tree, collect the redo set, append records +
/// commit marker, fsync, THEN release and acknowledge — so two concurrent
/// Insert() calls can never interleave their redo runs in the log, and a
/// reader of op_seq() never observes a sequence number whose records are
/// still being appended. Lock order: mu_ is always acquired before the
/// Wal's internal lock (LogOp holds mu_ across wal_->Append), never the
/// reverse — the Wal never calls back into DurableTree.
///
/// Reads are deliberately OUTSIDE the lock: tree() hands out the SgTree
/// for lock-free const queries (queries touch nothing durable). The tree_
/// pointer is only reseated under mu_ during AdoptBulkLoaded, which by
/// contract runs before any reader exists.
class DurableTree {
 public:
  struct Options {
    SgTreeOptions tree;
    /// Fsync the log after every operation (full durability). When false,
    /// operations are durable only at the next Sync()/Checkpoint() — the
    /// group-commit mode batch loads want.
    bool sync_each_op = true;
    /// Optional registry for wal.* / checkpoint.* / recovery.* metrics.
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// Opens (or creates) the durable tree in `dir`. An existing index is
  /// crash-recovered first — including truncating a torn log tail — and
  /// `recovery_report()` tells what replay did. Returns nullptr with
  /// `*error` set on failure (I/O trouble, corrupt files, failed audit, or
  /// options that contradict the stored meta).
  static std::unique_ptr<DurableTree> Open(Env* env, const std::string& dir,
                                           const Options& options,
                                           std::string* error);

  DurableTree(const DurableTree&) = delete;
  DurableTree& operator=(const DurableTree&) = delete;
  ~DurableTree();

  /// Logged updates. Return false when the operation could not be made
  /// durable (the in-memory tree may have advanced; treat the instance as
  /// crashed). Erase of an absent key returns false without logging.
  bool Insert(const Transaction& txn);
  bool Insert(const Signature& sig, uint64_t tid) SGTREE_EXCLUDES(mu_);
  bool Erase(const Transaction& txn);
  bool Erase(const Signature& sig, uint64_t tid) SGTREE_EXCLUDES(mu_);

  /// Inserts a batch under one group commit (one fsync for the whole batch
  /// regardless of sync_each_op). Returns the number of inserts logged.
  /// The whole batch is one critical section: concurrent writers wait, so
  /// their operations land before or after the batch, never inside it.
  size_t InsertBatch(const std::vector<Transaction>& txns)
      SGTREE_EXCLUDES(mu_);

  /// Replaces the (required-empty) tree with `loaded` (a BulkLoad /
  /// BulkLoadEntries result built with the same options), logging the
  /// entire content as one committed operation and then checkpointing, so
  /// the load is crash-safe from the moment this returns true.
  bool AdoptBulkLoaded(std::unique_ptr<SgTree> loaded,
                       std::string* error = nullptr) SGTREE_EXCLUDES(mu_);

  /// Fsyncs any unsynced log records (the group-commit point when
  /// sync_each_op is off).
  bool Sync() SGTREE_EXCLUDES(mu_);

  /// Folds dirty pages into the page file, seals the checkpoint, and
  /// truncates the log. Returns false with `*error` set on failure.
  bool Checkpoint(std::string* error = nullptr) SGTREE_EXCLUDES(mu_);

  /// The underlying tree. Reads are free to use it directly (queries touch
  /// nothing durable); mutate only through DurableTree.
  SgTree& tree() { return *tree_; }
  const SgTree& tree() const { return *tree_; }

  /// Runs `fn` against the tree with the write path locked out, so `fn`
  /// observes a frozen, operation-consistent snapshot (no half-applied
  /// insert can be in flight). Used by the static export
  /// (static/static_tree_builder.h) to build an image of a live index.
  /// Keep `fn` short: writers block for its whole duration.
  bool WithFrozenTree(const std::function<bool(const SgTree&)>& fn) const
      SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return fn(*tree_);
  }

  /// Number of committed (logged) operations over the index lifetime.
  uint64_t op_seq() const SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return op_seq_;
  }
  uint64_t checkpoint_seq() const SGTREE_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return checkpoint_seq_;
  }

  /// What recovery did at Open (all-zero for a fresh index).
  const RecoveryReport& recovery_report() const { return recovery_report_; }

  const std::string& page_path() const { return page_path_; }
  const std::string& wal_path() const { return wal_path_; }

  /// Builds the durable file names for `dir`.
  static std::string PagePathFor(const std::string& dir);
  static std::string WalPathFor(const std::string& dir);

 private:
  class Tracker;

  DurableTree(const Options& options, Env* env);

  /// Appends the current operation's redo set + commit marker; clears the
  /// tracker. `sync` forces/suppresses the per-op fsync.
  bool LogOp(bool sync) SGTREE_REQUIRES(mu_);
  /// Checkpoint body for callers already in the critical section
  /// (AdoptBulkLoaded checkpoints as the tail of its own operation — the
  /// EXCLUDES/REQUIRES split is what lets the analysis prove the public
  /// Checkpoint() is never re-entered under mu_).
  bool CheckpointLocked(std::string* error) SGTREE_REQUIRES(mu_);
  /// TreeMeta snapshot of the current in-memory state at `op_seq`.
  TreeMeta CurrentTreeMeta() const SGTREE_REQUIRES(mu_);
  bool EncodeLivePage(PageId id, std::vector<uint8_t>* out) const;

  Options options_;
  Env* env_;
  std::string page_path_;
  std::string wal_path_;

  /// Serializes the write path; see the class comment for the protocol.
  mutable Mutex mu_;

  /// Reseated only under mu_ (AdoptBulkLoaded); dereferenced lock-free by
  /// readers per the read-path contract above, so the pointer itself stays
  /// unannotated — the analysis cannot model single-writer/lock-free-reader
  /// fields, TSAN covers that axis.
  std::unique_ptr<SgTree> tree_;
  /// Set once at Open; the pointees carry the mutable durable state.
  std::unique_ptr<FilePageStore> store_ SGTREE_PT_GUARDED_BY(mu_);
  std::unique_ptr<Wal> wal_ SGTREE_PT_GUARDED_BY(mu_);
  std::unique_ptr<Tracker> tracker_ SGTREE_PT_GUARDED_BY(mu_);

  uint64_t op_seq_ SGTREE_GUARDED_BY(mu_) = 0;
  uint64_t checkpoint_seq_ SGTREE_GUARDED_BY(mu_) = 0;
  RecoveryReport recovery_report_;

  // Pages to fold at the next checkpoint, accumulated across ops (and
  // seeded from the replay delta after recovery). Invariant: every id in
  // ckpt_dirty_ has a redo image in the current log, so a torn fold write
  // is always repairable by replay.
  std::set<PageId> ckpt_dirty_ SGTREE_GUARDED_BY(mu_);
  std::set<PageId> ckpt_freed_ SGTREE_GUARDED_BY(mu_);

  obs::Histogram* checkpoint_latency_us_ = nullptr;
  obs::Counter* checkpoint_count_ = nullptr;
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_DURABLE_TREE_H_
