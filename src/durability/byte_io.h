#ifndef SGTREE_DURABILITY_BYTE_IO_H_
#define SGTREE_DURABILITY_BYTE_IO_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sgtree {

/// Little-endian scalar framing shared by the durable formats (page-file
/// header, WAL records, tree metadata). All readers are bounds-checked and
/// advance `*offset` only on success, so decoders stop cleanly on
/// truncated input — the property the WAL torn-tail scan and the fuzz
/// harnesses rely on.

inline void AppendU8(uint8_t v, std::vector<uint8_t>* out) {
  out->push_back(v);
}

inline void AppendU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v & 0xff));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

inline void AppendU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int b = 0; b < 4; ++b) {
    out->push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

inline void AppendU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int b = 0; b < 8; ++b) {
    out->push_back(static_cast<uint8_t>(v >> (8 * b)));
  }
}

inline bool ReadU8(const std::vector<uint8_t>& data, size_t* offset,
                   uint8_t* v) {
  if (*offset + 1 > data.size()) return false;
  *v = data[*offset];
  *offset += 1;
  return true;
}

inline bool ReadU16(const std::vector<uint8_t>& data, size_t* offset,
                    uint16_t* v) {
  if (*offset + 2 > data.size()) return false;
  *v = static_cast<uint16_t>(data[*offset] | (data[*offset + 1] << 8));
  *offset += 2;
  return true;
}

inline bool ReadU32(const std::vector<uint8_t>& data, size_t* offset,
                    uint32_t* v) {
  if (*offset + 4 > data.size()) return false;
  uint32_t value = 0;
  for (int b = 0; b < 4; ++b) {
    value |= static_cast<uint32_t>(data[*offset + static_cast<size_t>(b)])
             << (8 * b);
  }
  *offset += 4;
  *v = value;
  return true;
}

inline bool ReadU64(const std::vector<uint8_t>& data, size_t* offset,
                    uint64_t* v) {
  if (*offset + 8 > data.size()) return false;
  uint64_t value = 0;
  for (int b = 0; b < 8; ++b) {
    value |= static_cast<uint64_t>(data[*offset + static_cast<size_t>(b)])
             << (8 * b);
  }
  *offset += 8;
  *v = value;
  return true;
}

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_BYTE_IO_H_
