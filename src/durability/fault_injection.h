#ifndef SGTREE_DURABILITY_FAULT_INJECTION_H_
#define SGTREE_DURABILITY_FAULT_INJECTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "durability/env.h"
#include "storage/page_store.h"

namespace sgtree {

/// Deterministic fault schedule shared by FaultInjectingEnv and
/// FaultInjectingPageStore. A "write" below is any mutating file operation
/// (WriteAt/Append/Truncate at the env level; Write at the store level),
/// counted 1-based across every file opened through the env, so a crash
/// point sweeps the interleaved page-file + WAL write sequence exactly as
/// a real kill would.
struct FaultPlan {
  /// The Nth write is the crash point: it fails (after optionally applying
  /// a torn prefix) and every later mutating operation fails too — the
  /// process is "dead" and only what already reached the file survives,
  /// which is precisely the on-disk state recovery must cope with.
  /// 0 disables write faults.
  uint64_t kill_at_write = 0;

  /// Bytes of the fatal write that still reach the file before the crash
  /// (a torn / partial sector write). The prefix is clamped to the write's
  /// size; UINT64_MAX means "no tearing" (the fatal write is dropped
  /// whole).
  uint64_t torn_prefix_bytes = UINT64_MAX;

  /// Bit-flip read fault: the Nth read (1-based) has one bit inverted in
  /// its returned buffer, modeling media or bus corruption that checksums
  /// must catch. 0 disables read faults.
  uint64_t flip_at_read = 0;

  /// Which bit of the faulty read's buffer to invert (taken modulo the
  /// buffer's bit length).
  uint64_t flip_bit = 0;
};

/// Mutable fault state: the plan plus the operation counters. Shared by an
/// env/store wrapper and the test driving it, so the test can read how many
/// writes a clean run issues and then sweep kill_at_write over that range.
class FaultState {
 public:
  explicit FaultState(const FaultPlan& plan = {}) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }
  void set_plan(const FaultPlan& plan) { plan_ = plan; }

  uint64_t writes_issued() const { return writes_; }
  uint64_t reads_issued() const { return reads_; }
  bool dead() const { return dead_; }

  /// Resets counters and the dead flag (keeps the plan).
  void Reset() {
    writes_ = 0;
    reads_ = 0;
    dead_ = false;
  }

  /// Counts one mutating operation. Returns the number of payload bytes to
  /// apply: `n` when the operation proceeds, a torn prefix < n at the crash
  /// point, with *fail set when the operation must report failure.
  size_t OnWrite(size_t n, bool* fail);

  /// Counts one read; flips a bit of `data` when this read is the faulty
  /// one.
  void OnRead(std::vector<uint8_t>* data);

 private:
  FaultPlan plan_;
  uint64_t writes_ = 0;
  uint64_t reads_ = 0;
  bool dead_ = false;
};

/// Env wrapper threading the fault schedule under every file the durability
/// layer opens — the page file and the WAL see one interleaved write
/// numbering. After the crash point, reads still work (recovery re-opens
/// with a clean env anyway; these reads only serve debugging).
class FaultInjectingEnv final : public Env {
 public:
  FaultInjectingEnv(Env* base, FaultState* state)
      : base_(base), state_(state) {}

  std::unique_ptr<File> Open(const std::string& path, bool create) override;
  bool FileExists(const std::string& path) const override {
    return base_->FileExists(path);
  }
  bool Delete(const std::string& path) override {
    return base_->Delete(path);
  }
  bool Rename(const std::string& from, const std::string& to) override;
  bool CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }
  bool SyncDir(const std::string& path) override;

 private:
  Env* base_;
  FaultState* state_;
};

/// PageStoreInterface wrapper with the same deterministic faults at page
/// granularity: Write is the counted mutating operation (a torn prefix
/// truncates the payload), Read the counted flip target. Lets store-level
/// clients (an SgTree running directly over an injected store, the
/// invariant auditor) be crash-tested without files.
class FaultInjectingPageStore final : public PageStoreInterface {
 public:
  FaultInjectingPageStore(PageStoreInterface* base, FaultState* state)
      : base_(base), state_(state) {}

  uint32_t page_size() const override { return base_->page_size(); }
  PageId Allocate() override { return base_->Allocate(); }
  bool Reserve(PageId id) override { return base_->Reserve(id); }
  void Free(PageId id) override {
    bool fail = false;
    state_->OnWrite(0, &fail);
    if (!fail) base_->Free(id);
  }
  bool Write(PageId id, std::vector<uint8_t> payload) override;
  bool Read(PageId id, std::vector<uint8_t>* payload) const override;
  uint32_t LivePages() const override { return base_->LivePages(); }
  uint32_t TotalPages() const override { return base_->TotalPages(); }

 private:
  PageStoreInterface* base_;
  FaultState* state_;
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_FAULT_INJECTION_H_
