#include "durability/recovery.h"

#include <map>
#include <set>
#include <utility>
#include <vector>

#include "durability/wal.h"
#include "storage/node_format.h"

namespace sgtree {
namespace {

std::string Plural(uint64_t n, const char* noun) {
  return std::to_string(n) + " " + noun + (n == 1 ? "" : "s");
}

}  // namespace

std::string RecoveryReport::Summary() const {
  std::string out = "checkpoint " + std::to_string(checkpoint_seq) + ", " +
                    Plural(ops_committed, "op") + " replayed (" +
                    Plural(records_replayed, "record") + ")";
  if (records_discarded > 0) {
    out += ", " + Plural(records_discarded, "uncommitted record") +
           " discarded";
  }
  if (torn_tail) out += ", torn tail truncated";
  out += ", recovered at op_seq " + std::to_string(op_seq);
  return out;
}

std::unique_ptr<RecoveredTree> RecoverTree(Env* env,
                                           const std::string& page_path,
                                           const std::string& wal_path,
                                           std::string* error,
                                           const SgTreeOptions* options_hint,
                                           obs::MetricsRegistry* metrics) {
  auto fail = [error](const std::string& message)
      -> std::unique_ptr<RecoveredTree> {
    if (error != nullptr) *error = message;
    return nullptr;
  };

  auto result = std::make_unique<RecoveredTree>();

  // 1. Checkpoint state: the page file's live pages.
  std::string store_error;
  result->pages = FilePageStore::Open(env, page_path, &store_error);
  if (result->pages == nullptr) return fail(store_error);
  FilePageStore& store = *result->pages;

  if (!DecodeDurableTreeMeta(store.meta(), &result->meta)) {
    return fail("page file " + page_path + ": corrupt tree meta");
  }
  if (result->meta.num_bits == 0) {
    return fail("page file " + page_path + ": tree meta has zero num_bits");
  }

  std::map<PageId, std::vector<uint8_t>> images;
  std::set<PageId> bad_pages;  // checksum failures awaiting log repair
  for (PageId id = 0; id < store.TotalPages(); ++id) {
    std::vector<uint8_t> payload;
    if (store.Read(id, &payload)) {
      images[id] = std::move(payload);
    } else if (store.last_error().find("checksum") != std::string::npos ||
               store.last_error().find("corrupt") != std::string::npos) {
      bad_pages.insert(id);
    }
    // Freed slots simply fail the live check; nothing to load.
  }

  // 2. Scan the WAL and pair it with the checkpoint.
  RecoveryReport& report = result->report;
  report.checkpoint_seq = result->meta.checkpoint_seq;

  std::vector<uint8_t> region;
  std::string wal_error;
  if (!Wal::ReadRecordRegion(env, wal_path, &region, &wal_error)) {
    return fail(wal_error);
  }
  WalScanner scanner(region.data(), region.size());

  // 3. Replay committed operations over the checkpoint images.
  struct StagedOp {
    std::map<PageId, std::vector<uint8_t>> writes;
    std::vector<PageId> frees;
    uint64_t records = 0;
  };
  StagedOp staged;
  bool saw_marker = false;
  WalRecord record;
  while (scanner.Next(&record)) {
    if (!saw_marker) {
      // First record must bind this log to the page file's checkpoint.
      if (record.type != WalRecordType::kCheckpoint) {
        return fail("wal " + wal_path +
                    ": first record is not a checkpoint marker");
      }
      const uint64_t cp = result->meta.checkpoint_seq;
      if (record.checkpoint_seq != cp &&
          record.checkpoint_seq + 1 != cp) {
        return fail("wal " + wal_path + ": checkpoint marker " +
                    std::to_string(record.checkpoint_seq) +
                    " does not match page file checkpoint " +
                    std::to_string(cp));
      }
      saw_marker = true;
      continue;
    }
    switch (record.type) {
      case WalRecordType::kCheckpoint:
        return fail("wal " + wal_path +
                    ": checkpoint marker in the middle of the log");
      case WalRecordType::kAlloc:
        // Allocation itself carries no bytes; the page image follows in
        // the same operation. Staging nothing keeps replay idempotent.
        ++staged.records;
        break;
      case WalRecordType::kPageImage:
        staged.writes[record.page] = std::move(record.image);
        ++staged.records;
        break;
      case WalRecordType::kFree:
        staged.frees.push_back(record.page);
        ++staged.records;
        break;
      case WalRecordType::kTreeMeta:
        // Commit marker: fold the staged operation in atomically.
        for (auto& [id, image] : staged.writes) {
          bad_pages.erase(id);
          images[id] = std::move(image);
          result->replay_written.insert(id);
          result->replay_freed.erase(id);
        }
        for (const PageId id : staged.frees) {
          bad_pages.erase(id);
          images.erase(id);
          result->replay_freed.insert(id);
          result->replay_written.erase(id);
        }
        result->meta.tree = record.meta;
        report.records_replayed += staged.records + 1;
        ++report.ops_committed;
        staged = StagedOp{};
        break;
    }
  }
  report.wal_records_scanned = scanner.records();
  report.records_discarded = staged.records;
  report.torn_tail = scanner.torn();
  report.wal_valid_end = scanner.valid_end();
  report.op_seq = result->meta.tree.op_seq;

  // A checksum-failing checkpoint page that the log never overwrote or
  // freed is unrecoverable bit rot.
  if (!bad_pages.empty()) {
    return fail("page " + std::to_string(*bad_pages.begin()) +
                ": checksum mismatch not repaired by the log");
  }

  // 4. Rebuild the tree with its original page ids.
  SgTreeOptions options;
  if (options_hint != nullptr) {
    options = *options_hint;
    if (options.num_bits != result->meta.num_bits ||
        options.ResolvedMaxEntries() != result->meta.max_entries ||
        options.page_size != store.page_size() ||
        (options.compress ? 1 : 0) != result->meta.compress) {
      return fail("supplied tree options do not match the stored meta");
    }
  } else {
    options.num_bits = result->meta.num_bits;
    options.max_entries = result->meta.max_entries;
    options.page_size = store.page_size();
    options.compress = result->meta.compress != 0;
  }

  const TreeMeta& tree_meta = result->meta.tree;
  result->tree = std::make_unique<SgTree>(options);
  SgTree& tree = *result->tree;
  for (const auto& [id, image] : images) {
    NodeRecord node_record;
    if (!DecodeNode(image, options.num_bits, &node_record)) {
      return fail("page " + std::to_string(id) + ": image does not decode");
    }
    Node* node = tree.AdoptNode(id, node_record.level);
    node->entries.reserve(node_record.entries.size());
    for (auto& [ref, sig] : node_record.entries) {
      node->entries.push_back(Entry{std::move(sig), ref});
    }
  }
  if (tree_meta.root != kInvalidPageId &&
      images.find(tree_meta.root) == images.end()) {
    return fail("recovered root page " + std::to_string(tree_meta.root) +
                " is not live");
  }
  tree.SetRoot(tree_meta.root, tree_meta.height, tree_meta.size);
  if (tree.node_count() != tree_meta.node_count) {
    return fail("recovered " + Plural(tree.node_count(), "node") +
                " but meta records " + std::to_string(tree_meta.node_count));
  }
  if (tree_meta.area_lo <= tree_meta.area_hi) {
    tree.NoteTransactionArea(tree_meta.area_lo);
    tree.NoteTransactionArea(tree_meta.area_hi);
  }

  // 5. Post-recovery gate: a structurally broken tree is an error.
  result->audit = AuditTree(tree);
  if (!result->audit.ok()) {
    return fail("recovered tree failed the invariant audit: " +
                result->audit.FirstMessage());
  }

  if (metrics != nullptr) {
    metrics->GetCounter("recovery.records_replayed")
        ->Increment(report.records_replayed);
  }
  return result;
}

}  // namespace sgtree
