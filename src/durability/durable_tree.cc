#include "durability/durable_tree.h"

#include <utility>

#include "common/stats.h"
#include "storage/node_format.h"

namespace sgtree {

/// Collects the page-level footprint of the operation in flight. The sets
/// stay disjoint: a page freed after being dirtied needs no image, a page
/// reallocated after being freed is just an alloc again.
class DurableTree::Tracker final : public PageChangeListener {
 public:
  void OnAlloc(PageId id) override {
    freed.erase(id);
    alloc.insert(id);
  }
  void OnDirty(PageId id) override {
    if (alloc.find(id) == alloc.end()) dirty.insert(id);
  }
  void OnFree(PageId id) override {
    alloc.erase(id);
    dirty.erase(id);
    freed.insert(id);
  }
  void Clear() {
    alloc.clear();
    dirty.clear();
    freed.clear();
  }

  std::set<PageId> alloc;
  std::set<PageId> dirty;
  std::set<PageId> freed;
};

DurableTree::DurableTree(const Options& options, Env* env)
    : options_(options),
      env_(env),
      tracker_(std::make_unique<Tracker>()) {}

DurableTree::~DurableTree() {
  if (tree_ != nullptr) tree_->SetChangeListener(nullptr);
}

std::string DurableTree::PagePathFor(const std::string& dir) {
  return dir + "/pages.sgp";
}

std::string DurableTree::WalPathFor(const std::string& dir) {
  return dir + "/wal.sgw";
}

std::unique_ptr<DurableTree> DurableTree::Open(Env* env,
                                               const std::string& dir,
                                               const Options& options,
                                               std::string* error) {
  auto fail = [error](const std::string& message)
      -> std::unique_ptr<DurableTree> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!env->CreateDir(dir)) {
    return fail("cannot create directory " + dir);
  }

  std::unique_ptr<DurableTree> dt(new DurableTree(options, env));
  // No other thread can reach dt yet, but the guarded state below is still
  // initialized under the lock so every access site type-checks against
  // the same protocol (and the hold is uncontended — it costs nothing).
  MutexLock lock(&dt->mu_);
  dt->page_path_ = PagePathFor(dir);
  dt->wal_path_ = WalPathFor(dir);

  if (env->FileExists(dt->page_path_)) {
    // num_bits == 0 means "take the tree shape from the stored meta" (the
    // CLI's mode); otherwise the caller's options must match the files.
    const SgTreeOptions* hint =
        options.tree.num_bits == 0 ? nullptr : &options.tree;
    auto recovered = RecoverTree(env, dt->page_path_, dt->wal_path_, error,
                                 hint, options.metrics);
    if (recovered == nullptr) return nullptr;
    dt->options_.tree = recovered->tree->options();
    dt->tree_ = std::move(recovered->tree);
    dt->store_ = std::move(recovered->pages);
    dt->recovery_report_ = recovered->report;
    dt->op_seq_ = recovered->report.op_seq;
    dt->checkpoint_seq_ = recovered->meta.checkpoint_seq;
    dt->ckpt_dirty_ = std::move(recovered->replay_written);
    dt->ckpt_freed_ = std::move(recovered->replay_freed);
    if (recovered->report.wal_records_scanned > 0) {
      // Keep the log (replayed records stay until the next checkpoint);
      // truncate the torn/uncommitted tail and append after it.
      dt->wal_ = Wal::OpenForAppend(env, dt->wal_path_,
                                    recovered->report.wal_valid_end, error);
      if (dt->wal_ == nullptr) return nullptr;
    } else {
      // Missing log, or one that tore before its first record: rebuild it
      // as a fresh post-checkpoint log. Safe only because zero records
      // were replayed (there is nothing to keep).
      dt->wal_ = Wal::Create(env, dt->wal_path_, error);
      if (dt->wal_ == nullptr) return nullptr;
      if (!dt->wal_->Reset(dt->checkpoint_seq_)) {
        return fail("cannot initialize wal " + dt->wal_path_);
      }
    }
  } else {
    if (options.tree.num_bits == 0) {
      return fail("a fresh durable tree needs options.tree.num_bits");
    }
    dt->tree_ = std::make_unique<SgTree>(options.tree);
    dt->store_ = FilePageStore::Create(env, dt->page_path_,
                                       options.tree.page_size, error);
    if (dt->store_ == nullptr) return nullptr;
    dt->checkpoint_seq_ = 1;
    DurableTreeMeta meta;
    meta.num_bits = options.tree.num_bits;
    meta.max_entries = options.tree.ResolvedMaxEntries();
    meta.compress = options.tree.compress ? 1 : 0;
    meta.checkpoint_seq = dt->checkpoint_seq_;
    meta.tree = dt->CurrentTreeMeta();
    std::vector<uint8_t> blob;
    EncodeDurableTreeMeta(meta, &blob);
    if (!dt->store_->WriteMeta(blob) || !dt->store_->Sync() ||
        !env->SyncDir(dt->page_path_)) {
      return fail("cannot seal fresh page file " + dt->page_path_);
    }
    dt->wal_ = Wal::Create(env, dt->wal_path_, error);
    if (dt->wal_ == nullptr) return nullptr;
    if (!dt->wal_->Reset(dt->checkpoint_seq_) ||
        !env->SyncDir(dt->wal_path_)) {
      return fail("cannot initialize wal " + dt->wal_path_);
    }
  }

  dt->wal_->BindMetrics(options.metrics);
  if (options.metrics != nullptr) {
    dt->checkpoint_latency_us_ =
        options.metrics->GetHistogram("checkpoint.latency_us");
    dt->checkpoint_count_ = options.metrics->GetCounter("checkpoint.count");
  }
  dt->tree_->SetChangeListener(dt->tracker_.get());
  return dt;
}

TreeMeta DurableTree::CurrentTreeMeta() const {
  TreeMeta meta;
  meta.op_seq = op_seq_;
  meta.root = tree_ != nullptr ? tree_->root() : kInvalidPageId;
  if (tree_ == nullptr) return meta;
  meta.height = tree_->height();
  meta.size = tree_->size();
  meta.node_count = tree_->node_count();
  if (tree_->size() > 0) {
    const auto [lo, hi] = tree_->TransactionAreaBounds();
    meta.area_lo = lo;
    meta.area_hi = hi;
  }
  return meta;
}

bool DurableTree::EncodeLivePage(PageId id, std::vector<uint8_t>* out) const {
  const Node& node = tree_->GetNodeNoCharge(id);
  NodeRecord record;
  record.level = node.level;
  record.entries.reserve(node.entries.size());
  for (const Entry& entry : node.entries) {
    record.entries.emplace_back(entry.ref, entry.sig);
  }
  out->clear();
  EncodeNode(record, options_.tree.compress, out);
  return out->size() <= options_.tree.page_size;
}

bool DurableTree::LogOp(bool sync) {
  ++op_seq_;
  bool ok = true;
  WalRecord record;
  for (const PageId id : tracker_->alloc) {
    record = WalRecord{};
    record.type = WalRecordType::kAlloc;
    record.page = id;
    ok = ok && wal_->Append(record);
  }
  std::set<PageId> images = tracker_->alloc;
  images.insert(tracker_->dirty.begin(), tracker_->dirty.end());
  for (const PageId id : images) {
    record = WalRecord{};
    record.type = WalRecordType::kPageImage;
    record.page = id;
    ok = ok && EncodeLivePage(id, &record.image) && wal_->Append(record);
  }
  for (const PageId id : tracker_->freed) {
    record = WalRecord{};
    record.type = WalRecordType::kFree;
    record.page = id;
    ok = ok && wal_->Append(record);
  }
  record = WalRecord{};
  record.type = WalRecordType::kTreeMeta;
  record.meta = CurrentTreeMeta();
  ok = ok && wal_->Append(record);

  for (const PageId id : tracker_->freed) {
    ckpt_dirty_.erase(id);
    ckpt_freed_.insert(id);
  }
  for (const PageId id : images) {
    ckpt_freed_.erase(id);
    ckpt_dirty_.insert(id);
  }
  tracker_->Clear();
  if (ok && sync) ok = wal_->Commit();
  return ok;
}

bool DurableTree::Insert(const Transaction& txn) {
  return Insert(Signature::FromItems(txn.items, options_.tree.num_bits),
                txn.tid);
}

bool DurableTree::Insert(const Signature& sig, uint64_t tid) {
  // Mutate + log + fsync is one critical section: the operation is
  // acknowledged (lock released, true returned) only after its commit
  // marker is on disk, and concurrent writers cannot interleave their
  // record runs.
  MutexLock lock(&mu_);
  tree_->Insert(sig, tid);
  return LogOp(options_.sync_each_op);
}

bool DurableTree::Erase(const Transaction& txn) {
  return Erase(Signature::FromItems(txn.items, options_.tree.num_bits),
               txn.tid);
}

bool DurableTree::Erase(const Signature& sig, uint64_t tid) {
  MutexLock lock(&mu_);
  if (!tree_->Erase(sig, tid)) {
    // Nothing changed (the descent dirtied no entry); log nothing.
    tracker_->Clear();
    return false;
  }
  return LogOp(options_.sync_each_op);
}

size_t DurableTree::InsertBatch(const std::vector<Transaction>& txns) {
  MutexLock lock(&mu_);
  size_t logged = 0;
  for (const Transaction& txn : txns) {
    tree_->Insert(Signature::FromItems(txn.items, options_.tree.num_bits),
                  txn.tid);
    if (!LogOp(/*sync=*/false)) return logged;
    ++logged;
  }
  if (!wal_->Commit()) return logged > 0 ? logged - 1 : 0;
  return logged;
}

bool DurableTree::AdoptBulkLoaded(std::unique_ptr<SgTree> loaded,
                                  std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  if (loaded == nullptr) return fail("no tree to adopt");
  MutexLock lock(&mu_);
  if (!tree_->empty() || tree_->node_count() != 0) {
    return fail("bulk adoption requires an empty durable tree");
  }
  if (loaded->num_bits() != options_.tree.num_bits ||
      loaded->max_entries() != options_.tree.ResolvedMaxEntries()) {
    return fail("bulk-loaded tree was built with different options");
  }
  tree_->SetChangeListener(nullptr);
  tree_ = std::move(loaded);
  tree_->SetChangeListener(tracker_.get());
  tracker_->Clear();
  // Log the whole content as one committed operation, then fold it. Every
  // adopted page gains a redo record before it is ever written in place.
  for (const PageId id : tree_->LiveNodes()) {
    tracker_->alloc.insert(id);
  }
  if (!LogOp(/*sync=*/true)) return fail("cannot log bulk-loaded tree");
  // Thread-safety analysis finding: this used to call the public
  // Checkpoint(), which re-acquires mu_ — a guaranteed self-deadlock the
  // moment the lock became real. The single-threaded tests never caught it
  // because the old code simply had no lock to deadlock on.
  return CheckpointLocked(error);
}

bool DurableTree::Sync() {
  MutexLock lock(&mu_);
  return wal_->Commit();
}

bool DurableTree::Checkpoint(std::string* error) {
  MutexLock lock(&mu_);
  return CheckpointLocked(error);
}

bool DurableTree::CheckpointLocked(std::string* error) {
  auto fail = [error](const std::string& message) {
    if (error != nullptr) *error = message;
    return false;
  };
  Timer timer;
  // Make everything the fold depends on replayable first: a crash anywhere
  // below recovers from the old checkpoint plus this (complete) log.
  if (!wal_->Commit()) return fail("wal sync failed");

  for (const PageId id : ckpt_freed_) {
    if (ckpt_dirty_.find(id) == ckpt_dirty_.end()) store_->Free(id);
  }
  for (const PageId id : ckpt_dirty_) {
    std::vector<uint8_t> image;
    if (!EncodeLivePage(id, &image)) {
      return fail("page " + std::to_string(id) + " exceeds the page size");
    }
    if (!store_->Put(id, std::move(image))) {
      return fail(store_->last_error());
    }
  }

  const uint64_t next_seq = checkpoint_seq_ + 1;
  DurableTreeMeta meta;
  meta.num_bits = options_.tree.num_bits;
  meta.max_entries = options_.tree.ResolvedMaxEntries();
  meta.compress = options_.tree.compress ? 1 : 0;
  meta.checkpoint_seq = next_seq;
  meta.tree = CurrentTreeMeta();
  std::vector<uint8_t> blob;
  EncodeDurableTreeMeta(meta, &blob);
  if (!store_->WriteMeta(blob)) return fail(store_->last_error());
  if (!store_->Sync()) return fail("page file sync failed");
  // The page file is sealed; folding the log is now safe. A crash before
  // Reset completes leaves the old log paired with the new checkpoint,
  // which recovery accepts (replay converges to the same state).
  if (!wal_->Reset(next_seq)) return fail("wal reset failed");

  checkpoint_seq_ = next_seq;
  ckpt_dirty_.clear();
  ckpt_freed_.clear();
  if (checkpoint_count_ != nullptr) checkpoint_count_->Increment();
  if (checkpoint_latency_us_ != nullptr) {
    checkpoint_latency_us_->Observe(timer.ElapsedMs() * 1000.0);
  }
  return true;
}

}  // namespace sgtree
