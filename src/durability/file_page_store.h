#ifndef SGTREE_DURABILITY_FILE_PAGE_STORE_H_
#define SGTREE_DURABILITY_FILE_PAGE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "durability/env.h"
#include "storage/page_store.h"

namespace sgtree {

/// File-backed page store: the checkpoint target of the durable SG-tree
/// and a drop-in PageStoreInterface for disk-resident deployments.
///
/// File layout (all integers little-endian):
///
///   [0, 2048)      header copy A \  ping-pong pair; the valid copy with
///   [2048, 4096)   header copy B /  the highest meta_seq wins at open
///   [4096, ...)    page slots, slot i at 4096 + i * (16 + page_size)
///
/// Header copy: magic "SGPF0001" | u32 page_size | u32 slot_count |
///   u64 meta_seq | u32 meta_len | meta blob | u32 crc32c(preceding).
/// Meta updates alternate between the two copies, so a crash mid-header
/// write leaves the previous copy intact — the header write is atomic in
/// the only sense that matters for recovery.
///
/// Page slot: u32 live | u32 payload_len | u32 crc32c(payload) |
///   u32 reserved | payload. A slot rewrite is a single contiguous write;
/// a torn one leaves a checksum mismatch that Read reports instead of
/// returning corrupt bytes.
///
/// Free-list persistence is the live flag itself: Open rescans the slot
/// headers and rebuilds the free list, so freed ids survive restarts
/// without a separate on-disk structure.
class FilePageStore final : public PageStoreInterface {
 public:
  /// Creates a fresh page file at `path` (truncating any existing file).
  /// The file is not synced yet — call WriteMeta + Sync to seal it.
  static std::unique_ptr<FilePageStore> Create(Env* env,
                                               const std::string& path,
                                               uint32_t page_size,
                                               std::string* error);

  /// Opens an existing page file, validating the header pair and
  /// rebuilding the free list from the slot headers.
  static std::unique_ptr<FilePageStore> Open(Env* env,
                                             const std::string& path,
                                             std::string* error);

  FilePageStore(const FilePageStore&) = delete;
  FilePageStore& operator=(const FilePageStore&) = delete;

  // -- PageStoreInterface ----------------------------------------------

  uint32_t page_size() const override { return page_size_; }
  PageId Allocate() override;
  bool Reserve(PageId id) override;
  void Free(PageId id) override;
  bool Write(PageId id, std::vector<uint8_t> payload) override;
  bool Read(PageId id, std::vector<uint8_t>* payload) const override;
  uint32_t LivePages() const override;
  uint32_t TotalPages() const override {
    return static_cast<uint32_t>(slots_.size());
  }

  // -- Durable extensions ----------------------------------------------

  /// Reserve + Write in one step: the checkpointer's "fold this page image
  /// in at exactly this id" primitive.
  bool Put(PageId id, std::vector<uint8_t> payload);

  /// Writes `blob` (opaque to the store) into the inactive header copy
  /// with the next meta_seq. Durable only after Sync().
  bool WriteMeta(const std::vector<uint8_t>& blob);

  /// Meta blob of the winning header at open / the last WriteMeta.
  const std::vector<uint8_t>& meta() const { return meta_; }
  uint64_t meta_seq() const { return meta_seq_; }

  /// Fsyncs the page file.
  bool Sync() { return file_->Sync(); }

  /// Checksum mismatches Read has reported (media corruption detector).
  uint64_t crc_failures() const { return crc_failures_; }

  /// Human-readable reason for the most recent failure.
  const std::string& last_error() const { return last_error_; }

 private:
  FilePageStore(std::unique_ptr<File> file, uint32_t page_size)
      : file_(std::move(file)), page_size_(page_size) {}

  uint64_t SlotOffset(PageId id) const;
  bool WriteSlotHeader(PageId id, bool live, uint32_t payload_len,
                       uint32_t crc);
  bool Fail(const std::string& message) const;

  std::unique_ptr<File> file_;
  uint32_t page_size_;
  std::vector<bool> slots_;  // live flag per slot (in-memory mirror)
  std::vector<PageId> free_list_;
  std::vector<uint8_t> meta_;
  uint64_t meta_seq_ = 0;
  mutable uint64_t crc_failures_ = 0;
  mutable std::string last_error_;
};

}  // namespace sgtree

#endif  // SGTREE_DURABILITY_FILE_PAGE_STORE_H_
