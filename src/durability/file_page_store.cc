#include "durability/file_page_store.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "durability/byte_io.h"

namespace sgtree {
namespace {

constexpr char kMagic[8] = {'S', 'G', 'P', 'F', '0', '0', '0', '1'};
constexpr uint64_t kHeaderCopySize = 2048;
constexpr uint64_t kHeaderSpan = 2 * kHeaderCopySize;
constexpr uint64_t kSlotHeaderSize = 16;
// magic + page_size + slot_count + meta_seq + meta_len + trailing crc.
constexpr size_t kHeaderFixedSize = 8 + 4 + 4 + 8 + 4 + 4;

struct ParsedHeader {
  uint32_t page_size = 0;
  uint32_t slot_count = 0;
  uint64_t meta_seq = 0;
  std::vector<uint8_t> meta;
};

// Parses one header copy; returns false when the copy is torn/invalid.
bool ParseHeaderCopy(const std::vector<uint8_t>& bytes, ParsedHeader* out) {
  if (bytes.size() < kHeaderFixedSize) return false;
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) return false;
  size_t offset = sizeof(kMagic);
  uint32_t meta_len = 0;
  if (!ReadU32(bytes, &offset, &out->page_size) ||
      !ReadU32(bytes, &offset, &out->slot_count) ||
      !ReadU64(bytes, &offset, &out->meta_seq) ||
      !ReadU32(bytes, &offset, &meta_len)) {
    return false;
  }
  if (meta_len > kHeaderCopySize - kHeaderFixedSize) return false;
  if (offset + meta_len + 4 > bytes.size()) return false;
  uint32_t stored_crc = 0;
  size_t crc_offset = offset + meta_len;
  const uint32_t computed = Crc32c(bytes.data(), crc_offset);
  if (!ReadU32(bytes, &crc_offset, &stored_crc) || stored_crc != computed) {
    return false;
  }
  out->meta.assign(bytes.begin() + static_cast<ptrdiff_t>(offset),
                   bytes.begin() + static_cast<ptrdiff_t>(offset + meta_len));
  return true;
}

}  // namespace

bool FilePageStore::Fail(const std::string& message) const {
  last_error_ = message;
  return false;
}

uint64_t FilePageStore::SlotOffset(PageId id) const {
  return kHeaderSpan + static_cast<uint64_t>(id) *
                           (kSlotHeaderSize + page_size_);
}

std::unique_ptr<FilePageStore> FilePageStore::Create(Env* env,
                                                     const std::string& path,
                                                     uint32_t page_size,
                                                     std::string* error) {
  auto file = env->Open(path, /*create=*/true);
  if (file == nullptr || !file->Truncate(0)) {
    if (error != nullptr) *error = "cannot create page file " + path;
    return nullptr;
  }
  std::unique_ptr<FilePageStore> store(
      new FilePageStore(std::move(file), page_size));
  if (!store->WriteMeta({})) {
    if (error != nullptr) *error = store->last_error();
    return nullptr;
  }
  return store;
}

std::unique_ptr<FilePageStore> FilePageStore::Open(Env* env,
                                                   const std::string& path,
                                                   std::string* error) {
  auto file = env->Open(path, /*create=*/false);
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open page file " + path;
    return nullptr;
  }

  ParsedHeader best;
  bool found = false;
  for (int copy = 0; copy < 2; ++copy) {
    std::vector<uint8_t> bytes;
    if (!file->ReadAt(static_cast<uint64_t>(copy) * kHeaderCopySize,
                      kHeaderCopySize, &bytes)) {
      continue;
    }
    ParsedHeader parsed;
    if (ParseHeaderCopy(bytes, &parsed) &&
        (!found || parsed.meta_seq > best.meta_seq)) {
      best = std::move(parsed);
      found = true;
    }
  }
  if (!found) {
    if (error != nullptr) {
      *error = "page file " + path + ": no valid header copy";
    }
    return nullptr;
  }
  if (best.page_size == 0) {
    if (error != nullptr) *error = "page file " + path + ": zero page size";
    return nullptr;
  }

  std::unique_ptr<FilePageStore> store(
      new FilePageStore(std::move(file), best.page_size));
  store->meta_ = std::move(best.meta);
  store->meta_seq_ = best.meta_seq;

  // The header's slot_count can be stale-low after a crash between slot
  // writes and the next meta write; trust the file size when it says more.
  const uint64_t stride = kSlotHeaderSize + store->page_size_;
  const uint64_t file_size = store->file_->Size();
  uint64_t derived = 0;
  if (file_size != UINT64_MAX && file_size > kHeaderSpan) {
    derived = (file_size - kHeaderSpan + stride - 1) / stride;
  }
  const uint64_t slot_count = std::max<uint64_t>(best.slot_count, derived);

  store->slots_.resize(slot_count, false);
  for (uint64_t id = 0; id < slot_count; ++id) {
    std::vector<uint8_t> header;
    if (!store->file_->ReadAt(store->SlotOffset(static_cast<PageId>(id)),
                              kSlotHeaderSize, &header)) {
      continue;
    }
    size_t offset = 0;
    uint32_t live = 0;
    if (!ReadU32(header, &offset, &live)) live = 0;
    store->slots_[id] = live == 1;
    if (live != 1) {
      store->free_list_.push_back(static_cast<PageId>(id));
    }
  }
  return store;
}

bool FilePageStore::WriteSlotHeader(PageId id, bool live,
                                    uint32_t payload_len, uint32_t crc) {
  std::vector<uint8_t> header;
  header.reserve(kSlotHeaderSize);
  AppendU32(live ? 1 : 0, &header);
  AppendU32(payload_len, &header);
  AppendU32(crc, &header);
  AppendU32(0, &header);
  if (!file_->WriteAt(SlotOffset(id), header.data(), header.size())) {
    return Fail("slot header write failed");
  }
  return true;
}

PageId FilePageStore::Allocate() {
  if (!free_list_.empty()) {
    const PageId id = free_list_.back();
    free_list_.pop_back();
    slots_[id] = true;
    WriteSlotHeader(id, /*live=*/true, 0, Crc32c(nullptr, 0));
    return id;
  }
  const auto id = static_cast<PageId>(slots_.size());
  slots_.push_back(true);
  WriteSlotHeader(id, /*live=*/true, 0, Crc32c(nullptr, 0));
  return id;
}

bool FilePageStore::Reserve(PageId id) {
  if (id < slots_.size()) {
    if (slots_[id]) return false;
    free_list_.erase(std::remove(free_list_.begin(), free_list_.end(), id),
                     free_list_.end());
  } else {
    for (PageId hole = static_cast<PageId>(slots_.size()); hole < id;
         ++hole) {
      free_list_.push_back(hole);
    }
    slots_.resize(static_cast<size_t>(id) + 1, false);
  }
  slots_[id] = true;
  return WriteSlotHeader(id, /*live=*/true, 0, Crc32c(nullptr, 0));
}

void FilePageStore::Free(PageId id) {
  if (id >= slots_.size() || !slots_[id]) return;
  slots_[id] = false;
  free_list_.push_back(id);
  WriteSlotHeader(id, /*live=*/false, 0, 0);
}

bool FilePageStore::Write(PageId id, std::vector<uint8_t> payload) {
  if (id >= slots_.size() || !slots_[id]) {
    return Fail("write to invalid/freed page");
  }
  if (payload.size() > page_size_) return Fail("payload exceeds page size");
  // One contiguous header+payload write per slot update: either the
  // checksum covers the payload that landed, or the tear is detected.
  std::vector<uint8_t> image;
  image.reserve(kSlotHeaderSize + payload.size());
  AppendU32(1, &image);
  AppendU32(static_cast<uint32_t>(payload.size()), &image);
  AppendU32(Crc32c(payload), &image);
  AppendU32(0, &image);
  image.insert(image.end(), payload.begin(), payload.end());
  if (!file_->WriteAt(SlotOffset(id), image.data(), image.size())) {
    return Fail("page write failed");
  }
  return true;
}

bool FilePageStore::Read(PageId id, std::vector<uint8_t>* payload) const {
  if (id >= slots_.size() || !slots_[id]) {
    return Fail("read of invalid/freed page");
  }
  std::vector<uint8_t> header;
  if (!file_->ReadAt(SlotOffset(id), kSlotHeaderSize, &header)) {
    return Fail("slot header read failed");
  }
  size_t offset = 0;
  uint32_t live = 0;
  uint32_t payload_len = 0;
  uint32_t stored_crc = 0;
  if (!ReadU32(header, &offset, &live) ||
      !ReadU32(header, &offset, &payload_len) ||
      !ReadU32(header, &offset, &stored_crc) || live != 1 ||
      payload_len > page_size_) {
    ++crc_failures_;
    return Fail("page " + std::to_string(id) + ": corrupt slot header");
  }
  if (!file_->ReadAt(SlotOffset(id) + kSlotHeaderSize, payload_len,
                     payload)) {
    return Fail("page payload read failed");
  }
  if (payload->size() != payload_len || Crc32c(*payload) != stored_crc) {
    ++crc_failures_;
    return Fail("page " + std::to_string(id) + ": checksum mismatch");
  }
  return true;
}

uint32_t FilePageStore::LivePages() const {
  uint32_t live = 0;
  for (const bool flag : slots_) {
    if (flag) ++live;
  }
  return live;
}

bool FilePageStore::Put(PageId id, std::vector<uint8_t> payload) {
  if (id >= slots_.size() || !slots_[id]) {
    if (!Reserve(id)) return Fail("cannot reserve page for Put");
  }
  return Write(id, std::move(payload));
}

bool FilePageStore::WriteMeta(const std::vector<uint8_t>& blob) {
  if (blob.size() > kHeaderCopySize - kHeaderFixedSize) {
    return Fail("meta blob too large");
  }
  const uint64_t seq = meta_seq_ + 1;
  std::vector<uint8_t> bytes;
  bytes.reserve(kHeaderFixedSize + blob.size());
  bytes.insert(bytes.end(), kMagic, kMagic + sizeof(kMagic));
  AppendU32(page_size_, &bytes);
  AppendU32(static_cast<uint32_t>(slots_.size()), &bytes);
  AppendU64(seq, &bytes);
  AppendU32(static_cast<uint32_t>(blob.size()), &bytes);
  bytes.insert(bytes.end(), blob.begin(), blob.end());
  AppendU32(Crc32c(bytes), &bytes);
  const uint64_t offset = (seq % 2) * kHeaderCopySize;
  if (!file_->WriteAt(offset, bytes.data(), bytes.size())) {
    return Fail("header write failed");
  }
  meta_seq_ = seq;
  meta_ = blob;
  return true;
}

}  // namespace sgtree
