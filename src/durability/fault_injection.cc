#include "durability/fault_injection.h"

#include <algorithm>

namespace sgtree {

size_t FaultState::OnWrite(size_t n, bool* fail) {
  if (dead_) {
    *fail = true;
    return 0;
  }
  ++writes_;  // counted even without a kill plan: the clean-run baseline
  if (plan_.kill_at_write == 0 || writes_ < plan_.kill_at_write) {
    *fail = false;
    return n;
  }
  // The crash point: apply at most the torn prefix, then die.
  dead_ = true;
  *fail = true;
  if (plan_.torn_prefix_bytes == UINT64_MAX) return 0;
  return static_cast<size_t>(
      std::min<uint64_t>(plan_.torn_prefix_bytes, n));
}

void FaultState::OnRead(std::vector<uint8_t>* data) {
  ++reads_;
  if (plan_.flip_at_read == 0) return;
  if (reads_ != plan_.flip_at_read || data->empty()) return;
  const uint64_t bit = plan_.flip_bit % (data->size() * 8);
  (*data)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

namespace {

class FaultInjectingFile final : public File {
 public:
  FaultInjectingFile(std::unique_ptr<File> base, FaultState* state)
      : base_(std::move(base)), state_(state) {}

  bool ReadAt(uint64_t offset, size_t n,
              std::vector<uint8_t>* out) const override {
    if (!base_->ReadAt(offset, n, out)) return false;
    state_->OnRead(out);
    return true;
  }

  bool WriteAt(uint64_t offset, const uint8_t* data, size_t n) override {
    bool fail = false;
    const size_t apply = state_->OnWrite(n, &fail);
    if (apply > 0) base_->WriteAt(offset, data, apply);
    return !fail && base_ != nullptr;
  }

  bool Append(const uint8_t* data, size_t n) override {
    bool fail = false;
    const size_t apply = state_->OnWrite(n, &fail);
    if (apply > 0) base_->Append(data, apply);
    return !fail;
  }

  bool Sync() override {
    // Syncs are not counted as writes, but a dead process cannot sync.
    return !state_->dead() && base_->Sync();
  }

  bool Truncate(uint64_t size) override {
    bool fail = false;
    state_->OnWrite(0, &fail);
    if (fail) return false;
    return base_->Truncate(size);
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<File> base_;
  FaultState* state_;
};

}  // namespace

std::unique_ptr<File> FaultInjectingEnv::Open(const std::string& path,
                                              bool create) {
  if (state_->dead()) return nullptr;
  auto base = base_->Open(path, create);
  if (base == nullptr) return nullptr;
  return std::make_unique<FaultInjectingFile>(std::move(base), state_);
}

bool FaultInjectingEnv::Rename(const std::string& from,
                               const std::string& to) {
  bool fail = false;
  state_->OnWrite(0, &fail);
  if (fail) return false;
  return base_->Rename(from, to);
}

bool FaultInjectingEnv::SyncDir(const std::string& path) {
  return !state_->dead() && base_->SyncDir(path);
}

bool FaultInjectingPageStore::Write(PageId id,
                                    std::vector<uint8_t> payload) {
  bool fail = false;
  const size_t apply = state_->OnWrite(payload.size(), &fail);
  if (apply < payload.size()) payload.resize(apply);
  // A torn page write leaves only the prefix in the slot; MemPageStore has
  // no checksum to catch that, which is exactly what FilePageStore adds.
  if (apply > 0 || !fail) {
    const bool ok = base_->Write(id, std::move(payload));
    return ok && !fail;
  }
  return false;
}

bool FaultInjectingPageStore::Read(PageId id,
                                   std::vector<uint8_t>* payload) const {
  if (!base_->Read(id, payload)) return false;
  state_->OnRead(payload);
  return true;
}

}  // namespace sgtree
