#ifndef SGTREE_DATA_DICTIONARY_H_
#define SGTREE_DATA_DICTIONARY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/transaction.h"

namespace sgtree {

/// Schema of a categorical dataset: maps (attribute, value) pairs to flat
/// item ids. Attribute a with domain size d_a owns the contiguous id range
/// [offset(a), offset(a) + d_a). This mirrors the paper's Section 1 mapping
/// of categorical tuples onto set data: "the items correspond to values of
/// categorical attributes and they are divided into groups".
class CategoricalSchema {
 public:
  /// Builds a schema from per-attribute domain sizes.
  explicit CategoricalSchema(std::vector<uint32_t> domain_sizes);

  uint32_t num_attributes() const {
    return static_cast<uint32_t>(domain_sizes_.size());
  }
  uint32_t domain_size(uint32_t attr) const { return domain_sizes_[attr]; }
  uint32_t offset(uint32_t attr) const { return offsets_[attr]; }

  /// Total number of flat items (= signature width for this schema).
  uint32_t total_values() const { return total_values_; }

  /// Flat item id of value `v` of attribute `attr`.
  ItemId Encode(uint32_t attr, uint32_t value) const {
    return offsets_[attr] + value;
  }

  /// Inverse of Encode. Returns {attribute, value}.
  std::pair<uint32_t, uint32_t> Decode(ItemId item) const;

  /// The domain-size vector used by the CENSUS-like generator: 36
  /// attributes, sizes between 2 and 53, 525 values in total — the shape the
  /// paper reports for its cleaned census dataset.
  static std::vector<uint32_t> CensusDomainSizes();

 private:
  std::vector<uint32_t> domain_sizes_;
  std::vector<uint32_t> offsets_;
  uint32_t total_values_ = 0;
};

}  // namespace sgtree

#endif  // SGTREE_DATA_DICTIONARY_H_
