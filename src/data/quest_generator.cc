#include "data/quest_generator.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace sgtree {

std::string QuestOptions::Label() const {
  std::ostringstream out;
  out << "T" << avg_transaction_size << ".I" << avg_itemset_size << ".D";
  if (num_transactions % 1000 == 0) {
    out << (num_transactions / 1000) << "K";
  } else {
    out << num_transactions;
  }
  return out.str();
}

QuestGenerator::QuestGenerator(const QuestOptions& options)
    : options_(options), rng_(options.seed), query_rng_(options.seed ^ 0x9e3779b97f4a7c15ull) {
  SGTREE_ASSERT(options_.num_items > 0);
  SGTREE_ASSERT(options_.avg_itemset_size >= 1);
  BuildPatternPool();
}

void QuestGenerator::BuildPatternPool() {
  patterns_.clear();
  patterns_.reserve(options_.num_patterns);
  std::vector<ItemId> previous;
  double cumulative = 0;
  for (uint32_t p = 0; p < options_.num_patterns; ++p) {
    Pattern pattern;
    // Pattern length ~ Poisson around the mean itemset size, at least 1.
    uint32_t length = rng_.Poisson(options_.avg_itemset_size);
    length = std::max<uint32_t>(1, std::min(length, options_.num_items));

    // A fraction of the items is drawn from the previous pattern (the Quest
    // "correlation" knob); the rest are picked at random.
    std::vector<ItemId> items;
    if (!previous.empty()) {
      const auto reuse = static_cast<uint32_t>(
          std::min<double>(length, options_.correlation * length + 0.5));
      std::vector<ItemId> shuffled = previous;
      for (uint32_t i = 0; i < reuse && i < shuffled.size(); ++i) {
        const uint64_t j =
            i + rng_.UniformInt(shuffled.size() - i);
        std::swap(shuffled[i], shuffled[j]);
        items.push_back(shuffled[i]);
      }
    }
    while (items.size() < length) {
      const ItemId item =
          static_cast<ItemId>(rng_.UniformInt(options_.num_items));
      if (std::find(items.begin(), items.end(), item) == items.end()) {
        items.push_back(item);
      }
    }
    std::sort(items.begin(), items.end());
    pattern.items = items;
    previous = std::move(items);

    // Exponential pick weights, normalized implicitly via the cumulative sum.
    cumulative += rng_.Exponential(1.0);
    pattern.weight = cumulative;

    // Per-pattern corruption level, clamped to [0, 1].
    pattern.corruption = std::clamp(
        rng_.Normal(options_.corruption_mean, options_.corruption_dev), 0.0,
        1.0);
    patterns_.push_back(std::move(pattern));
  }
  total_weight_ = cumulative;
}

const QuestGenerator::Pattern& QuestGenerator::PickPattern(Rng& rng) const {
  const double u = rng.UniformDouble() * total_weight_;
  // Binary search the cumulative weights.
  size_t lo = 0;
  size_t hi = patterns_.size() - 1;
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (patterns_[mid].weight < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return patterns_[lo];
}

Transaction QuestGenerator::MakeTransaction(uint64_t tid, Rng& rng) {
  Transaction txn;
  txn.tid = tid;
  uint32_t target = rng.Poisson(options_.avg_transaction_size);
  target = std::max<uint32_t>(1, std::min(target, options_.num_items));

  std::vector<ItemId> items;
  // Fill the transaction from weighted patterns. Per the original Quest
  // process, items are dropped from the pattern "as long as a uniform draw
  // is below its corruption level" — a geometric number of drops (expected
  // c/(1-c)), so most of each pattern survives and transactions from the
  // same pattern stay close. An oversized last pattern is kept with
  // probability 1/2 (Quest behaviour), otherwise discarded.
  uint32_t guard = 0;
  while (items.size() < target && guard++ < 64) {
    const Pattern& pattern = PickPattern(rng);
    std::vector<ItemId> kept = pattern.items;
    while (!kept.empty() && rng.Bernoulli(pattern.corruption)) {
      const size_t victim = rng.UniformInt(kept.size());
      kept.erase(kept.begin() + static_cast<long>(victim));
    }
    if (kept.empty()) continue;
    if (items.size() + kept.size() > target && !items.empty() &&
        rng.Bernoulli(0.5)) {
      break;
    }
    items.insert(items.end(), kept.begin(), kept.end());
  }
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  if (items.empty()) {
    items.push_back(static_cast<ItemId>(rng.UniformInt(options_.num_items)));
  }
  txn.items = std::move(items);
  return txn;
}

Dataset QuestGenerator::Generate() {
  Dataset dataset;
  dataset.num_items = options_.num_items;
  dataset.fixed_dimensionality = 0;
  dataset.transactions.reserve(options_.num_transactions);
  for (uint32_t i = 0; i < options_.num_transactions; ++i) {
    dataset.transactions.push_back(MakeTransaction(i, rng_));
  }
  return dataset;
}

std::vector<Transaction> QuestGenerator::GenerateQueries(uint32_t count) {
  std::vector<Transaction> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    queries.push_back(MakeTransaction(i, query_rng_));
  }
  return queries;
}

}  // namespace sgtree
