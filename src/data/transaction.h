#ifndef SGTREE_DATA_TRANSACTION_H_
#define SGTREE_DATA_TRANSACTION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sgtree {

/// An item: either a market-basket product or one value of a categorical
/// attribute (attribute values are flattened into a single item space, one
/// id per (attribute, value) pair).
using ItemId = uint32_t;

/// A transaction (set datum) or categorical tuple: a sorted, duplicate-free
/// set of items plus an external id.
struct Transaction {
  uint64_t tid = 0;
  std::vector<ItemId> items;
};

/// A collection of transactions over a dictionary of `num_items` items.
struct Dataset {
  uint32_t num_items = 0;
  /// For categorical data, the (fixed) number of attributes per tuple;
  /// 0 for variable-size set data. Enables the Section 6 tightened bound.
  uint32_t fixed_dimensionality = 0;
  std::vector<Transaction> transactions;

  size_t size() const { return transactions.size(); }
};

}  // namespace sgtree

#endif  // SGTREE_DATA_TRANSACTION_H_
