#include "data/dictionary.h"

#include <numeric>

#include "common/check.h"

namespace sgtree {

CategoricalSchema::CategoricalSchema(std::vector<uint32_t> domain_sizes)
    : domain_sizes_(std::move(domain_sizes)) {
  offsets_.reserve(domain_sizes_.size());
  uint32_t offset = 0;
  for (uint32_t size : domain_sizes_) {
    SGTREE_ASSERT(size > 0);
    offsets_.push_back(offset);
    offset += size;
  }
  total_values_ = offset;
}

std::pair<uint32_t, uint32_t> CategoricalSchema::Decode(ItemId item) const {
  SGTREE_DCHECK(item < total_values_);
  // Binary search for the owning attribute.
  uint32_t lo = 0;
  uint32_t hi = num_attributes() - 1;
  while (lo < hi) {
    const uint32_t mid = lo + (hi - lo + 1) / 2;
    if (offsets_[mid] <= item) {
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  return {lo, item - offsets_[lo]};
}

std::vector<uint32_t> CategoricalSchema::CensusDomainSizes() {
  // 36 attributes, domain sizes in [2, 53], 525 values in total — the shape
  // of the cleaned census dataset in the paper's Section 5.1.
  std::vector<uint32_t> sizes = {
      53, 52, 47, 43, 38, 33, 29, 24, 21, 18, 17, 15,
      12, 10, 9,  2,  2,  2,  2,  3,  3,  3,  3,  4,
      4,  4,  4,  5,  5,  5,  6,  6,  7,  7,  8,  19,
  };
  SGTREE_ASSERT(sizes.size() == 36);
  SGTREE_ASSERT(std::accumulate(sizes.begin(), sizes.end(), 0u) == 525u);
  return sizes;
}

}  // namespace sgtree
