#include "data/dataset_io.h"

#include <fstream>
#include <sstream>

namespace sgtree {

bool SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << dataset.num_items << ' ' << dataset.fixed_dimensionality << ' '
      << dataset.transactions.size() << '\n';
  for (const Transaction& txn : dataset.transactions) {
    out << txn.tid;
    for (ItemId item : txn.items) out << ' ' << item;
    out << '\n';
  }
  return static_cast<bool>(out);
}

bool LoadDataset(const std::string& path, Dataset* dataset) {
  std::ifstream in(path);
  if (!in) return false;
  size_t count = 0;
  if (!(in >> dataset->num_items >> dataset->fixed_dimensionality >> count)) {
    return false;
  }
  dataset->transactions.clear();
  dataset->transactions.reserve(count);
  std::string line;
  std::getline(in, line);  // Consume the header's newline.
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    std::istringstream row(line);
    Transaction txn;
    if (!(row >> txn.tid)) return false;
    ItemId item = 0;
    ItemId prev = 0;
    bool first = true;
    while (row >> item) {
      if (item >= dataset->num_items) return false;
      if (!first && item <= prev) return false;  // Must be sorted unique.
      txn.items.push_back(item);
      prev = item;
      first = false;
    }
    dataset->transactions.push_back(std::move(txn));
  }
  return true;
}

}  // namespace sgtree
