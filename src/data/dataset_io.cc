#include "data/dataset_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace sgtree {

std::string SerializeDataset(const Dataset& dataset) {
  std::ostringstream out;
  out << dataset.num_items << ' ' << dataset.fixed_dimensionality << ' '
      << dataset.transactions.size() << '\n';
  for (const Transaction& txn : dataset.transactions) {
    out << txn.tid;
    for (ItemId item : txn.items) out << ' ' << item;
    out << '\n';
  }
  return out.str();
}

bool ParseDataset(const std::string& text, Dataset* dataset) {
  std::istringstream in(text);
  size_t count = 0;
  if (!(in >> dataset->num_items >> dataset->fixed_dimensionality >> count)) {
    return false;
  }
  if (dataset->num_items > kMaxDatasetItems) return false;
  dataset->transactions.clear();
  // A row takes at least two characters ("0\n"), so a sane count is bounded
  // by the input length — reserve accordingly, never from the raw header.
  dataset->transactions.reserve(std::min(count, text.size() / 2 + 1));
  std::string line;
  std::getline(in, line);  // Consume the header's newline.
  for (size_t i = 0; i < count; ++i) {
    if (!std::getline(in, line)) return false;
    std::istringstream row(line);
    Transaction txn;
    if (!(row >> txn.tid)) return false;
    ItemId item = 0;
    ItemId prev = 0;
    bool first = true;
    while (row >> item) {
      if (item >= dataset->num_items) return false;
      if (!first && item <= prev) return false;  // Must be sorted unique.
      txn.items.push_back(item);
      prev = item;
      first = false;
    }
    if (!row.eof()) return false;  // Trailing non-numeric garbage.
    dataset->transactions.push_back(std::move(txn));
  }
  return true;
}

bool SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << SerializeDataset(dataset);
  return static_cast<bool>(out);
}

bool LoadDataset(const std::string& path, Dataset* dataset) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return false;
  return ParseDataset(buffer.str(), dataset);
}

}  // namespace sgtree
