#include "data/census_generator.h"

namespace sgtree {

CensusGenerator::CensusGenerator(const CensusOptions& options)
    : options_(options),
      schema_(CategoricalSchema::CensusDomainSizes()),
      rng_(options.seed),
      query_rng_(options.seed ^ 0xda3e39cb94b95bdbull) {
  marginals_.reserve(schema_.num_attributes());
  for (uint32_t a = 0; a < schema_.num_attributes(); ++a) {
    marginals_.emplace_back(schema_.domain_size(a), options_.zipf_theta);
  }
  cluster_picker_ =
      std::make_unique<ZipfSampler>(options_.num_clusters, 0.8);
  // Each latent cluster fixes a preferred value per attribute; tuples from
  // the cluster mostly share those values, which induces the cross-attribute
  // correlation real census data exhibits.
  cluster_mode_.resize(options_.num_clusters);
  for (auto& mode : cluster_mode_) {
    mode.resize(schema_.num_attributes());
    for (uint32_t a = 0; a < schema_.num_attributes(); ++a) {
      mode[a] = marginals_[a].Sample(rng_);
    }
  }
}

Transaction CensusGenerator::MakeTuple(uint64_t tid, Rng& rng) {
  Transaction tuple;
  tuple.tid = tid;
  tuple.items.reserve(schema_.num_attributes());
  // Cluster sizes are Zipf-skewed: real demographic segments are heavily
  // unbalanced, and the skew is what gives the dataset dense neighborhoods.
  const uint32_t cluster = cluster_picker_->Sample(rng);
  for (uint32_t a = 0; a < schema_.num_attributes(); ++a) {
    const uint32_t value = rng.Bernoulli(options_.cluster_affinity)
                               ? cluster_mode_[cluster][a]
                               : marginals_[a].Sample(rng);
    tuple.items.push_back(schema_.Encode(a, value));
  }
  // Item ids are already sorted: attribute offsets are increasing and each
  // attribute contributes exactly one value.
  return tuple;
}

Dataset CensusGenerator::Generate() {
  Dataset dataset;
  dataset.num_items = schema_.total_values();
  dataset.fixed_dimensionality = schema_.num_attributes();
  dataset.transactions.reserve(options_.num_tuples);
  for (uint32_t i = 0; i < options_.num_tuples; ++i) {
    dataset.transactions.push_back(MakeTuple(i, rng_));
  }
  return dataset;
}

std::vector<Transaction> CensusGenerator::GenerateQueries(uint32_t count) {
  std::vector<Transaction> queries;
  queries.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    queries.push_back(MakeTuple(i, query_rng_));
  }
  return queries;
}

}  // namespace sgtree
