#ifndef SGTREE_DATA_DATASET_IO_H_
#define SGTREE_DATA_DATASET_IO_H_

#include <string>

#include "data/transaction.h"

namespace sgtree {

/// Plain-text dataset interchange format:
///   line 1: "num_items fixed_dimensionality num_transactions"
///   then one line per transaction: "tid item item item ..."
/// Items must be sorted ascending and < num_items.

/// Upper bound accepted for `num_items` when parsing. Dictionary sizes in
/// this domain are at most tens of thousands (Section 3.2); the cap keeps a
/// corrupt or hostile header from driving giant signature allocations.
inline constexpr uint32_t kMaxDatasetItems = 1u << 22;

/// Renders `dataset` in the interchange format.
std::string SerializeDataset(const Dataset& dataset);

/// Parses the interchange format. Returns false on malformed content
/// (bad header, unsorted/duplicate/out-of-range items, truncated rows,
/// num_items past kMaxDatasetItems). On failure `dataset` is unspecified.
bool ParseDataset(const std::string& text, Dataset* dataset);

/// Writes `dataset` to `path`. Returns false on I/O error.
bool SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset. Returns false on I/O error or
/// malformed content.
bool LoadDataset(const std::string& path, Dataset* dataset);

}  // namespace sgtree

#endif  // SGTREE_DATA_DATASET_IO_H_
