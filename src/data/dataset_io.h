#ifndef SGTREE_DATA_DATASET_IO_H_
#define SGTREE_DATA_DATASET_IO_H_

#include <string>

#include "data/transaction.h"

namespace sgtree {

/// Plain-text dataset interchange format:
///   line 1: "num_items fixed_dimensionality num_transactions"
///   then one line per transaction: "tid item item item ..."
/// Items must be sorted ascending and < num_items.

/// Writes `dataset` to `path`. Returns false on I/O error.
bool SaveDataset(const Dataset& dataset, const std::string& path);

/// Reads a dataset written by SaveDataset. Returns false on I/O error or
/// malformed content.
bool LoadDataset(const std::string& path, Dataset* dataset);

}  // namespace sgtree

#endif  // SGTREE_DATA_DATASET_IO_H_
