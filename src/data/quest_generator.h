#ifndef SGTREE_DATA_QUEST_GENERATOR_H_
#define SGTREE_DATA_QUEST_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/transaction.h"

namespace sgtree {

/// Re-implementation of the IBM Quest synthetic market-basket generator
/// (Agrawal & Srikant, VLDB'94), the workload the paper's Section 5.1 uses:
/// "T denotes the mean size of a transaction, I the mean size of a large
/// itemset and D the cardinality; T10.I6.D200K has 200,000 transactions of
/// mean size 10 and large itemsets of mean size 6."
struct QuestOptions {
  uint32_t num_transactions = 200'000;   // D
  double avg_transaction_size = 10;      // T
  double avg_itemset_size = 6;           // I
  uint32_t num_items = 1000;             // N (dictionary size)
  uint32_t num_patterns = 2000;          // |L|, the potentially-large pool
  double correlation = 0.5;              // Fraction of items reused between
                                         // consecutive patterns.
  double corruption_mean = 0.5;          // Mean per-pattern corruption level.
  double corruption_dev = 0.1;
  uint64_t seed = 1;

  /// The paper's T<x>.I<y>.D<z>K label for this configuration.
  std::string Label() const;
};

class QuestGenerator {
 public:
  explicit QuestGenerator(const QuestOptions& options);

  /// Generates the full dataset (num_transactions transactions with tids
  /// 0..D-1).
  Dataset Generate();

  /// Generates `count` query transactions from the same pattern pool (the
  /// paper generates queries "using the same itemsets and parameters").
  std::vector<Transaction> GenerateQueries(uint32_t count);

  const QuestOptions& options() const { return options_; }

 private:
  struct Pattern {
    std::vector<ItemId> items;
    double weight = 0;       // Cumulative pick weight.
    double corruption = 0;   // Probability of dropping items when applied.
  };

  void BuildPatternPool();
  Transaction MakeTransaction(uint64_t tid, Rng& rng);
  const Pattern& PickPattern(Rng& rng) const;

  QuestOptions options_;
  Rng rng_;
  Rng query_rng_;
  std::vector<Pattern> patterns_;
  double total_weight_ = 0;
};

}  // namespace sgtree

#endif  // SGTREE_DATA_QUEST_GENERATOR_H_
