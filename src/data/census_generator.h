#ifndef SGTREE_DATA_CENSUS_GENERATOR_H_
#define SGTREE_DATA_CENSUS_GENERATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/zipf.h"
#include "data/dictionary.h"
#include "data/transaction.h"

namespace sgtree {

/// Synthetic stand-in for the paper's CENSUS dataset (UCI KDD census data,
/// 36 categorical attributes, domain sizes 2-53, 525 values in total).
///
/// Substitution note (see DESIGN.md): the original census extract is not
/// available offline, so we generate categorical tuples with the same shape:
/// the same attribute count and domain sizes, Zipf-skewed marginals (real
/// demographic attributes are heavily skewed) and latent-cluster correlation
/// between attributes (real tuples are correlated across attributes, which
/// is what gives indexes something to cluster). Every tuple takes exactly
/// one value per attribute, so the dataset has fixed dimensionality 36.
struct CensusOptions {
  uint32_t num_tuples = 200'000;
  uint32_t num_clusters = 25;
  /// Probability that an attribute takes its cluster's preferred value
  /// rather than an independent Zipf draw.
  double cluster_affinity = 0.7;
  /// Zipf skew of the per-attribute marginals.
  double zipf_theta = 0.9;
  uint64_t seed = 7;
};

class CensusGenerator {
 public:
  explicit CensusGenerator(const CensusOptions& options);

  const CategoricalSchema& schema() const { return schema_; }

  /// Generates the dataset (fixed_dimensionality = 36).
  Dataset Generate();

  /// Generates query tuples from the same distribution but a disjoint
  /// random stream (the paper queries CENSUS with samples from a held-out
  /// second file).
  std::vector<Transaction> GenerateQueries(uint32_t count);

 private:
  Transaction MakeTuple(uint64_t tid, Rng& rng);

  CensusOptions options_;
  CategoricalSchema schema_;
  Rng rng_;
  Rng query_rng_;
  std::unique_ptr<ZipfSampler> cluster_picker_;
  std::vector<ZipfSampler> marginals_;              // One per attribute.
  std::vector<std::vector<uint32_t>> cluster_mode_;  // [cluster][attr] value.
};

}  // namespace sgtree

#endif  // SGTREE_DATA_CENSUS_GENERATOR_H_
