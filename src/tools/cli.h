#ifndef SGTREE_TOOLS_CLI_H_
#define SGTREE_TOOLS_CLI_H_

#include <ostream>
#include <string>
#include <vector>

namespace sgtree {

/// Entry point of the `sgtree_cli` tool (separated from main() so the test
/// suite can drive it). Returns a process exit code. Subcommands:
///
///   gen quest   --out F [--d N] [--t X] [--i X] [--items N] [--patterns N]
///               [--seed N]
///   gen census  --out F [--tuples N] [--seed N]
///   build       --data F (--out F | --durable DIR) [--split avg|min|quadratic]
///               [--bulk gray|bisect|minhash|none] [--compress 0|1]
///               [--page N] [--shards N] [--static 0|1]
///               With --durable, builds a crash-safe index in DIR (page
///               file + write-ahead log) instead of a plain snapshot:
///               plain inserts are logged (fold them with wal-checkpoint),
///               bulk loads are logged wholesale and checkpointed.
///               With --shards N (N >= 2), hash-partitions the data into N
///               per-shard SG-trees: --out writes a manifest plus one
///               snapshot per shard, --durable gives every shard its own
///               page file + WAL under DIR/shard-<i>.
///               With --static 1 (requires --out), writes the immutable
///               mmap'able image of static/static_format.h instead of the
///               dynamic snapshot — a single static image, or with
///               --shards N a v2 manifest plus one image per shard. Query
///               it with `query ... --static 1` (or --shards 1 for the
///               manifest); it cannot be updated in place.
///   stats       --index F
///   check       --index F [--paged 0|1] [--max-violations N] [--static 0|1]
///               [--verify-checksums 0|1]
///               Runs the full InvariantAuditor (coverage, levels, fill
///               bounds, tid uniqueness, page reachability) on the loaded
///               tree and, with --paged (default on), on its serialized
///               page image. With --static 1, audits a static image via
///               AuditStaticImage instead (structure is already enforced
///               at open; --verify-checksums 0 admits a CRC-damaged image
///               so the audit can localize the corruption). Exit 0 =
///               clean, 2 = violations found.
///   static-info --index F [--verify-checksums 0|1]
///               Opens a static image and prints its header: format
///               version, transaction/node counts, height, signature
///               width, node capacity, file size, area window, and whether
///               the bytes are served zero-copy from an mmap.
///   query nn    --index F (--q "i i i ..." | --queries F) [--k N]
///               [--metric hamming|jaccard|dice|cosine]
///   query range --index F (--q ... | --queries F) --eps X [--metric M]
///   query contain --index F (--q ... | --queries F)
///   query exact|subset --index F (--q ... | --queries F)
///               All query kinds run through the unified query API
///               (exec/query_api.h). Add --shards 1 to load --index as a
///               sharded manifest (built with build --shards N) and answer
///               via the scatter-gather QueryRouter — results are
///               byte-identical to the single-tree path; --threads N sizes
///               the router's worker pool (0 = hardware concurrency).
///               Add --static 1 to open --index as a single static image
///               (build --static); sharded static manifests need no flag —
///               the v2 manifest tags itself and the router serves the
///               mmap'ed shards transparently.
///   join contain --left F --right F [--algo tree|pretti|fvt] [--shards 1]
///               [--threads N] [--buffer-pages N] [--limit N] [--json 1]
///               [--trace 1] [--metrics-json F]
///   join similar --left F --right F --threshold X [--metric M]
///               [--algo tree] [--shards 1] ...
///               Collection-level joins through the join API
///               (exec/join_api.h): `contain` reports every pair (r, s)
///               with r's item set a subset of s's, d = the containment
///               gap |s| - |r|; `similar` reports pairs within the
///               threshold under the trees' build-time metric (tree
///               backend only — pretti and fvt are containment-only and
///               refuse with a one-line reason). Pairs print in canonical
///               (tid_a, tid_b) order, capped at --limit (default 20,
///               0 = all). With --shards 1 both sides load as sharded
///               manifests and the join scatter-gathers over the
///               |R shards| x |S shards| grid (shard/join_router.h) —
///               results are byte-identical to the unsharded run.
///               Validation errors (bad threshold, unsupported combo)
///               exit 1 with the reason on stderr.
///   recover     --durable D [--out F] [--metrics-json F]
///               Replays the write-ahead log over the page file, gates the
///               result through the InvariantAuditor, and prints the
///               recovery report. --out exports the recovered tree as a
///               plain snapshot. Exit 0 = recovered clean, 2 = recovered
///               structurally but failed the audit, 1 = unrecoverable.
///   wal-checkpoint --durable D [--metrics-json F] [--export-static F]
///               Opens (recovering if needed) the durable index in D,
///               folds the logged operations into the page file, and
///               truncates the log. --export-static additionally writes an
///               operation-consistent static image of the checkpointed
///               tree to F (crash-atomic publish).
///
/// Datasets use the text format of data/dataset_io.h; indexes the binary
/// format of sgtree/persistence.h.
int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err);

}  // namespace sgtree

#endif  // SGTREE_TOOLS_CLI_H_
