// Command-line driver for the sgtree library: generate datasets, build and
// inspect indexes, and run similarity queries. See tools/cli.h for the
// subcommand reference.

#include <iostream>
#include <string>
#include <vector>

#include "tools/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return sgtree::RunCli(args, std::cout, std::cerr);
}
