#ifndef SGTREE_TOOLS_COMMAND_LINE_H_
#define SGTREE_TOOLS_COMMAND_LINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sgtree {

/// Minimal flag parser for the sgtree_cli tool: positional words followed
/// by `--name value` pairs (`--name=value` also accepted). Unknown flags are
/// reported so typos fail loudly instead of silently using defaults.
class CommandLine {
 public:
  explicit CommandLine(std::vector<std::string> args);

  /// Positional arguments (everything before the first --flag).
  const std::vector<std::string>& positional() const { return positional_; }

  std::optional<std::string> GetString(const std::string& name) const;
  std::optional<int64_t> GetInt(const std::string& name) const;
  std::optional<double> GetDouble(const std::string& name) const;

  std::string StringOr(const std::string& name,
                       const std::string& fallback) const;
  int64_t IntOr(const std::string& name, int64_t fallback) const;
  double DoubleOr(const std::string& name, double fallback) const;

  /// Flags present on the command line that were never queried via one of
  /// the getters. Call after all lookups; non-empty means a typo.
  std::vector<std::string> UnusedFlags() const;

  /// Parse error from construction (odd flag/value pairing), if any.
  const std::string& error() const { return error_; }

 private:
  std::vector<std::string> positional_;
  std::vector<std::pair<std::string, std::string>> flags_;
  mutable std::vector<bool> used_;
  std::string error_;
};

}  // namespace sgtree

#endif  // SGTREE_TOOLS_COMMAND_LINE_H_
