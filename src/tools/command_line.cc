#include "tools/command_line.h"

#include <cstdlib>

namespace sgtree {

CommandLine::CommandLine(std::vector<std::string> args) {
  size_t i = 0;
  while (i < args.size() && args[i].rfind("--", 0) != 0) {
    positional_.push_back(std::move(args[i]));
    ++i;
  }
  while (i < args.size()) {
    if (args[i].rfind("--", 0) != 0) {
      error_ = "expected a --flag, got '" + args[i] + "'";
      return;
    }
    // `--name=value` carries its value inline; `--name value` spans two
    // tokens.
    if (const size_t eq = args[i].find('='); eq != std::string::npos) {
      flags_.emplace_back(args[i].substr(2, eq - 2), args[i].substr(eq + 1));
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      error_ = "flag '" + args[i] + "' is missing a value";
      return;
    }
    flags_.emplace_back(args[i].substr(2), std::move(args[i + 1]));
    i += 2;
  }
  used_.assign(flags_.size(), false);
}

std::optional<std::string> CommandLine::GetString(
    const std::string& name) const {
  for (size_t i = 0; i < flags_.size(); ++i) {
    if (flags_[i].first == name) {
      used_[i] = true;
      return flags_[i].second;
    }
  }
  return std::nullopt;
}

std::optional<int64_t> CommandLine::GetInt(const std::string& name) const {
  const auto value = GetString(name);
  if (!value.has_value()) return std::nullopt;
  return std::strtoll(value->c_str(), nullptr, 10);
}

std::optional<double> CommandLine::GetDouble(const std::string& name) const {
  const auto value = GetString(name);
  if (!value.has_value()) return std::nullopt;
  return std::strtod(value->c_str(), nullptr);
}

std::string CommandLine::StringOr(const std::string& name,
                                  const std::string& fallback) const {
  return GetString(name).value_or(fallback);
}

int64_t CommandLine::IntOr(const std::string& name, int64_t fallback) const {
  return GetInt(name).value_or(fallback);
}

double CommandLine::DoubleOr(const std::string& name,
                             double fallback) const {
  return GetDouble(name).value_or(fallback);
}

std::vector<std::string> CommandLine::UnusedFlags() const {
  std::vector<std::string> unused;
  for (size_t i = 0; i < flags_.size(); ++i) {
    if (!used_[i]) unused.push_back(flags_[i].first);
  }
  return unused;
}

}  // namespace sgtree
