#include "tools/cli.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "common/stats.h"
#include "data/census_generator.h"
#include "data/dataset_io.h"
#include "data/quest_generator.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "durability/recovery.h"
#include "exec/index_backend.h"
#include "exec/join_api.h"
#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "join/fvt_join.h"
#include "join/pretti_join.h"
#include "join/set_collection.h"
#include "join/tree_join.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_trace.h"
#include "sgtree/bulk_load.h"
#include "shard/join_router.h"
#include "shard/query_router.h"
#include "shard/sharded_index.h"
#include "sgtree/invariant_auditor.h"
#include "sgtree/paged_reader.h"
#include "sgtree/persistence.h"
#include "sgtree/search.h"
#include "sgtree/sg_tree.h"
#include "sgtree/tree_checker.h"
#include "static/static_audit.h"
#include "static/static_tree_backend.h"
#include "static/static_tree_builder.h"
#include "static/static_tree_view.h"
#include "storage/buffer_pool.h"
#include "tools/command_line.h"

namespace sgtree {
namespace {

int Fail(std::ostream& err, const std::string& message) {
  err << "error: " << message << "\n";
  return 1;
}

int CheckUnused(const CommandLine& cmd, std::ostream& err) {
  const auto unused = cmd.UnusedFlags();
  if (unused.empty()) return 0;
  std::string joined;
  for (const auto& flag : unused) joined += " --" + flag;
  return Fail(err, "unknown flag(s):" + joined);
}

// JSON string escape for the few free-text fields the --json reports carry
// (invariant messages, file paths).
std::string JsonQuoted(const std::string& text) {
  std::string quoted = "\"";
  for (const char c : text) {
    if (c == '"' || c == '\\') quoted.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      quoted += buf;
      continue;
    }
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

bool ParseMetric(const std::string& name, Metric* metric) {
  if (name == "hamming") {
    *metric = Metric::kHamming;
  } else if (name == "jaccard") {
    *metric = Metric::kJaccard;
  } else if (name == "dice") {
    *metric = Metric::kDice;
  } else if (name == "cosine") {
    *metric = Metric::kCosine;
  } else {
    return false;
  }
  return true;
}

// Writes the registry's JSON export to `path` (the --metrics-json sink).
int WriteMetricsJson(const obs::MetricsRegistry& registry,
                     const std::string& path, std::ostream& out,
                     std::ostream& err) {
  std::ofstream file(path);
  if (!file) return Fail(err, "cannot write metrics " + path);
  file << obs::ToJson(registry) << "\n";
  out << "wrote metrics " << path << "\n";
  return 0;
}

// Parses "3 17 256" into a sorted unique item list.
bool ParseItems(const std::string& text, uint32_t num_bits,
                std::vector<ItemId>* items) {
  std::istringstream in(text);
  ItemId item = 0;
  while (in >> item) {
    if (item >= num_bits) return false;
    items->push_back(item);
  }
  std::sort(items->begin(), items->end());
  items->erase(std::unique(items->begin(), items->end()), items->end());
  return !items->empty();
}

int CmdGen(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional().size() < 2) {
    return Fail(err, "usage: gen quest|census --out FILE [options]");
  }
  const std::string& kind = cmd.positional()[1];
  const auto out_path = cmd.GetString("out");
  if (!out_path.has_value()) return Fail(err, "gen requires --out");

  Dataset dataset;
  if (kind == "quest") {
    QuestOptions options;
    options.num_transactions =
        static_cast<uint32_t>(cmd.IntOr("d", 10'000));
    options.avg_transaction_size = cmd.DoubleOr("t", 10);
    options.avg_itemset_size = cmd.DoubleOr("i", 6);
    options.num_items = static_cast<uint32_t>(cmd.IntOr("items", 1000));
    options.num_patterns =
        static_cast<uint32_t>(cmd.IntOr("patterns", 200));
    options.seed = static_cast<uint64_t>(cmd.IntOr("seed", 1));
    if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;
    dataset = QuestGenerator(options).Generate();
    out << "generated " << options.Label() << " (" << dataset.size()
        << " transactions, " << dataset.num_items << " items)\n";
  } else if (kind == "census") {
    CensusOptions options;
    options.num_tuples = static_cast<uint32_t>(cmd.IntOr("tuples", 10'000));
    options.seed = static_cast<uint64_t>(cmd.IntOr("seed", 7));
    if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;
    dataset = CensusGenerator(options).Generate();
    out << "generated CENSUS-like dataset (" << dataset.size()
        << " tuples, " << dataset.num_items << " values)\n";
  } else {
    return Fail(err, "unknown generator '" + kind + "'");
  }
  if (!SaveDataset(dataset, *out_path)) {
    return Fail(err, "cannot write " + *out_path);
  }
  out << "wrote " << *out_path << "\n";
  return 0;
}

int CmdBuild(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  const auto data_path = cmd.GetString("data");
  const auto out_path = cmd.GetString("out");
  const auto durable_dir = cmd.GetString("durable");
  if (!data_path.has_value()) return Fail(err, "build requires --data");
  if (!out_path.has_value() && !durable_dir.has_value()) {
    return Fail(err, "build requires --out (or --durable DIR)");
  }
  Dataset dataset;
  if (!LoadDataset(*data_path, &dataset)) {
    return Fail(err, "cannot read dataset " + *data_path);
  }

  SgTreeOptions options;
  options.num_bits = dataset.num_items;
  options.fixed_dimensionality = dataset.fixed_dimensionality;
  options.page_size = static_cast<uint32_t>(cmd.IntOr("page", 4096));
  options.compress = cmd.IntOr("compress", 1) != 0;
  const std::string split = cmd.StringOr("split", "avg");
  if (split == "avg") {
    options.split_policy = SplitPolicy::kAverage;
  } else if (split == "min") {
    options.split_policy = SplitPolicy::kMinimum;
  } else if (split == "quadratic") {
    options.split_policy = SplitPolicy::kQuadratic;
  } else if (split == "linear") {
    options.split_policy = SplitPolicy::kLinear;
  } else {
    return Fail(err, "unknown split policy '" + split + "'");
  }

  const std::string bulk = cmd.StringOr("bulk", "none");
  const auto shards = static_cast<uint32_t>(cmd.IntOr("shards", 1));
  if (shards == 0) return Fail(err, "--shards must be positive");
  // --static 1 writes the immutable mmap'able image (static_format.h)
  // instead of the dynamic snapshot: query/check/stats open it read-only.
  const bool static_out = cmd.IntOr("static", 0) != 0;
  if (static_out && durable_dir.has_value()) {
    return Fail(err,
                "--static writes a read-only image; combine it with --out, "
                "not --durable (use wal-checkpoint --export-static to "
                "snapshot a durable index)");
  }
  if (static_out && !out_path.has_value()) {
    return Fail(err, "build --static requires --out");
  }
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  BulkLoadOptions bulk_options;
  if (bulk != "none") {
    if (bulk == "gray") {
      bulk_options.order = BulkLoadOrder::kGrayCode;
    } else if (bulk == "bisect") {
      bulk_options.order = BulkLoadOrder::kClusterPartition;
    } else if (bulk == "minhash") {
      bulk_options.order = BulkLoadOrder::kMinHash;
    } else {
      return Fail(err, "unknown bulk order '" + bulk + "'");
    }
  }

  // Sharded build (--shards N, N >= 2): transactions are hash-partitioned
  // by tid across N per-shard SG-trees. --out writes a manifest plus one
  // snapshot per shard; --durable opens one DurableTree per shard under
  // DIR/shard-<i> (bulk orders are adopted + checkpointed per shard, plain
  // inserts group-commit into each shard's log).
  if (shards > 1) {
    ShardedIndexOptions sharded_options;
    sharded_options.num_shards = shards;
    sharded_options.tree = options;
    if (durable_dir.has_value()) {
      std::string derror;
      auto index = ShardedIndex::OpenDurable(Env::Posix(), *durable_dir,
                                             sharded_options, &derror);
      if (index == nullptr) return Fail(err, derror);
      if (index->size() != 0) {
        return Fail(err, *durable_dir + " already holds an index");
      }
      Timer timer;
      if (bulk == "none") {
        const size_t logged = index->InsertBatch(dataset.transactions);
        if (logged != dataset.transactions.size()) {
          return Fail(err, "wal append failed after " +
                               std::to_string(logged) + " inserts");
        }
      } else if (!index->AdoptBulkLoaded(dataset, bulk_options, &derror)) {
        return Fail(err, derror);
      }
      out << "indexed " << index->size() << " transactions durably across "
          << shards << " shards in " << timer.ElapsedMs() << " ms; "
          << index->node_count() << " nodes\n"
          << "wrote " << ShardedIndex::ShardDirFor(*durable_dir, 0) << " .. "
          << ShardedIndex::ShardDirFor(*durable_dir, shards - 1) << "\n";
      return 0;
    }
    Timer timer;
    std::unique_ptr<ShardedIndex> index;
    if (bulk == "none") {
      index = std::make_unique<ShardedIndex>(sharded_options);
      index->InsertBatch(dataset.transactions);
    } else {
      index = ShardedIndex::BulkLoad(dataset, sharded_options, bulk_options);
    }
    const double build_ms = timer.ElapsedMs();
    for (uint32_t i = 0; i < shards; ++i) {
      const TreeReport report = CheckTree(index->shard(i));
      if (!report.ok) {
        return Fail(err, "shard " + std::to_string(i) +
                             " failed validation: " + report.message);
      }
    }
    std::string save_error;
    const bool saved = static_out ? index->SaveStatic(*out_path, &save_error)
                                  : index->Save(*out_path, &save_error);
    if (!saved) {
      return Fail(err, "cannot write index " + *out_path + ": " + save_error);
    }
    out << "indexed " << index->size() << " transactions across " << shards
        << " shards in " << build_ms << " ms; " << index->node_count()
        << " nodes\n"
        << "wrote " << *out_path << " + " << shards
        << (static_out ? " static shard images\n" : " shard snapshots\n");
    return 0;
  }

  // Durable build: every insert goes through the write-ahead log; a bulk
  // order is logged wholesale and checkpointed, plain inserts are left in
  // the log (run wal-checkpoint to fold them).
  if (durable_dir.has_value()) {
    DurableTree::Options dt_options;
    dt_options.tree = options;
    std::string derror;
    auto durable =
        DurableTree::Open(Env::Posix(), *durable_dir, dt_options, &derror);
    if (durable == nullptr) return Fail(err, derror);
    if (!durable->tree().empty()) {
      return Fail(err, *durable_dir + " already holds an index");
    }
    Timer timer;
    if (bulk == "none") {
      const size_t logged = durable->InsertBatch(dataset.transactions);
      if (logged != dataset.transactions.size()) {
        return Fail(err, "wal append failed after " +
                             std::to_string(logged) + " inserts");
      }
    } else {
      auto loaded = BulkLoad(dataset, options, bulk_options);
      if (!durable->AdoptBulkLoaded(std::move(loaded), &derror)) {
        return Fail(err, derror);
      }
    }
    const double build_ms = timer.ElapsedMs();
    const SgTree& tree = durable->tree();
    out << "indexed " << tree.size() << " transactions durably in "
        << build_ms << " ms; height " << tree.height() << ", "
        << tree.node_count() << " nodes, " << durable->op_seq()
        << " logged ops, checkpoint " << durable->checkpoint_seq() << "\n"
        << "wrote " << durable->page_path() << " + "
        << durable->wal_path() << "\n";
    return 0;
  }

  std::unique_ptr<SgTree> tree;
  Timer timer;
  if (bulk == "none") {
    tree = std::make_unique<SgTree>(options);
    for (const Transaction& txn : dataset.transactions) tree->Insert(txn);
  } else {
    tree = BulkLoad(dataset, options, bulk_options);
  }
  const double build_ms = timer.ElapsedMs();

  const TreeReport report = CheckTree(*tree);
  if (!report.ok) {
    return Fail(err, "built tree failed validation: " + report.message);
  }
  std::string save_error;
  const bool saved = static_out ? BuildStaticTree(*tree, *out_path, &save_error)
                                : SaveTree(*tree, *out_path, &save_error);
  if (!saved) {
    return Fail(err, "cannot write index " + *out_path + ": " + save_error);
  }
  out << "indexed " << tree->size() << " transactions in " << build_ms
      << " ms; height " << tree->height() << ", " << tree->node_count()
      << " nodes, utilization " << report.avg_utilization << "\n"
      << "wrote " << *out_path << (static_out ? " (static image)\n" : "\n");
  return 0;
}

int CmdRecover(const CommandLine& cmd, std::ostream& out,
               std::ostream& err) {
  const auto dir = cmd.GetString("durable");
  if (!dir.has_value()) return Fail(err, "recover requires --durable");
  const auto out_path = cmd.GetString("out");
  const auto metrics_path = cmd.GetString("metrics-json");
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  obs::MetricsRegistry registry;
  std::string error;
  auto recovered = RecoverTree(Env::Posix(), DurableTree::PagePathFor(*dir),
                               DurableTree::WalPathFor(*dir), &error,
                               /*options_hint=*/nullptr, &registry);
  if (recovered == nullptr) {
    err << "error: " << error << "\n";
    // An index that recovers structurally but flunks the deep audit is a
    // distinct, scriptable outcome.
    return error.find("invariant audit") != std::string::npos ? 2 : 1;
  }
  out << "recovery: " << recovered->report.Summary() << "\n"
      << "audit: " << recovered->audit.Summary()
      << "tree: " << recovered->tree->size() << " transactions, height "
      << recovered->tree->height() << ", " << recovered->tree->node_count()
      << " nodes\n";
  if (out_path.has_value()) {
    std::string save_error;
    if (!SaveTree(*recovered->tree, *out_path, &save_error)) {
      return Fail(err, "cannot export " + *out_path + ": " + save_error);
    }
    out << "exported " << *out_path << "\n";
  }
  if (metrics_path.has_value()) {
    return WriteMetricsJson(registry, *metrics_path, out, err);
  }
  return 0;
}

int CmdWalCheckpoint(const CommandLine& cmd, std::ostream& out,
                     std::ostream& err) {
  const auto dir = cmd.GetString("durable");
  if (!dir.has_value())
    return Fail(err, "wal-checkpoint requires --durable");
  const auto metrics_path = cmd.GetString("metrics-json");
  const auto export_path = cmd.GetString("export-static");
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  obs::MetricsRegistry registry;
  DurableTree::Options options;
  options.metrics = &registry;
  std::string error;
  auto durable = DurableTree::Open(Env::Posix(), *dir, options, &error);
  if (durable == nullptr) return Fail(err, error);
  out << "recovery: " << durable->recovery_report().Summary() << "\n";
  if (!durable->Checkpoint(&error)) {
    return Fail(err, "checkpoint failed: " + error);
  }
  out << "checkpoint " << durable->checkpoint_seq() << " sealed: "
      << durable->tree().size() << " transactions, "
      << durable->tree().node_count() << " nodes folded; log truncated\n";
  if (export_path.has_value()) {
    if (!ExportStatic(*durable, *export_path, &error)) {
      return Fail(err, "static export failed: " + error);
    }
    out << "exported static image " << *export_path << "\n";
  }
  if (metrics_path.has_value()) {
    return WriteMetricsJson(registry, *metrics_path, out, err);
  }
  return 0;
}

int CmdStats(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  const auto index_path = cmd.GetString("index");
  if (!index_path.has_value()) return Fail(err, "stats requires --index");
  const auto metrics_path = cmd.GetString("metrics-json");
  // --json 1: emit the same report as one JSON object on stdout, so ops
  // tooling scrapes fields instead of parsing the human text.
  const bool json = cmd.IntOr("json", 0) != 0;
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;
  SgTreeOptions options;
  std::string load_error;
  auto tree = LoadTree(*index_path, options, &load_error);
  if (tree == nullptr) {
    return Fail(err, "cannot load " + *index_path + ": " + load_error);
  }
  const TreeReport report = CheckTree(*tree);
  const IoStats& io = tree->io_stats();
  if (json) {
    const double hit_ratio = io.HitRatio();
    out << "{\"transactions\": " << tree->size()
        << ", \"signature_bits\": " << tree->num_bits()
        << ", \"height\": " << tree->height()
        << ", \"nodes\": " << tree->node_count()
        << ", \"node_capacity\": " << tree->max_entries()
        << ", \"min_entries\": " << tree->min_entries()
        << ", \"utilization\": " << report.avg_utilization
        << ", \"invariants_ok\": " << (report.ok ? "true" : "false")
        << ", \"invariants\": "
        << JsonQuoted(report.ok ? std::string("OK") : report.message)
        << ", \"buffer\": {\"accesses\": " << io.page_accesses
        << ", \"hits\": " << io.buffer_hits
        << ", \"random_ios\": " << io.random_ios
        << ", \"writes\": " << io.page_writes << ", \"hit_ratio\": ";
    if (std::isnan(hit_ratio)) {
      out << "null";
    } else {
      out << hit_ratio;
    }
    out << "}, \"avg_entry_area\": [";
    for (size_t level = 0; level < report.avg_entry_area.size(); ++level) {
      out << (level > 0 ? ", " : "") << report.avg_entry_area[level];
    }
    out << "]}\n";
    if (metrics_path.has_value()) {
      obs::MetricsRegistry registry;
      registry.GetCounter("tree.transactions")->Increment(tree->size());
      registry.GetCounter("tree.nodes")->Increment(tree->node_count());
      registry.GetCounter("tree.height")->Increment(tree->height());
      registry.GetCounter("buffer.accesses")->Increment(io.page_accesses);
      registry.GetCounter("buffer.hits")->Increment(io.buffer_hits);
      registry.GetCounter("buffer.misses")->Increment(io.random_ios);
      registry.GetCounter("buffer.writes")->Increment(io.page_writes);
      return WriteMetricsJson(registry, *metrics_path, out, err);
    }
    return 0;
  }
  out << "transactions: " << tree->size() << "\n"
      << "signature bits: " << tree->num_bits() << "\n"
      << "height: " << tree->height() << "\n"
      << "nodes: " << tree->node_count() << "\n"
      << "node capacity: " << tree->max_entries() << " (min "
      << tree->min_entries() << ")\n"
      << "utilization: " << report.avg_utilization << "\n"
      << "invariants: " << (report.ok ? "OK" : report.message) << "\n"
      << "buffer: " << io.page_accesses << " accesses, " << io.buffer_hits
      << " hits, " << io.random_ios << " random I/Os, " << io.page_writes
      << " writes, hit ratio " << obs::FormatHitRatio(io) << "\n";
  for (size_t level = 0; level < report.avg_entry_area.size(); ++level) {
    out << "avg entry area, level " << level << ": "
        << report.avg_entry_area[level] << "\n";
  }
  if (metrics_path.has_value()) {
    obs::MetricsRegistry registry;
    registry.GetCounter("tree.transactions")->Increment(tree->size());
    registry.GetCounter("tree.nodes")->Increment(tree->node_count());
    registry.GetCounter("tree.height")->Increment(tree->height());
    registry.GetCounter("buffer.accesses")->Increment(io.page_accesses);
    registry.GetCounter("buffer.hits")->Increment(io.buffer_hits);
    registry.GetCounter("buffer.misses")->Increment(io.random_ios);
    registry.GetCounter("buffer.writes")->Increment(io.page_writes);
    return WriteMetricsJson(registry, *metrics_path, out, err);
  }
  return 0;
}

int CmdCheck(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  const auto index_path = cmd.GetString("index");
  if (!index_path.has_value()) return Fail(err, "check requires --index");
  AuditOptions audit_options;
  audit_options.max_violations =
      static_cast<size_t>(cmd.IntOr("max-violations", 64));
  const bool paged = cmd.IntOr("paged", 1) != 0;
  const bool static_image = cmd.IntOr("static", 0) != 0;
  // --verify-checksums 0 admits an image whose body CRC no longer matches,
  // so the semantic audit can localize the damage instead of the open
  // refusing the whole file with one line.
  const bool verify_checksums = cmd.IntOr("verify-checksums", 1) != 0;
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  if (static_image) {
    StaticOpenOptions open_options;
    open_options.verify_checksums = verify_checksums;
    std::string open_error;
    auto view = StaticTreeView::Open(Env::Posix(), *index_path, open_options,
                                     &open_error);
    if (view == nullptr) return Fail(err, "cannot open " + open_error);
    const AuditReport report = AuditStaticImage(*view, audit_options);
    out << "static audit: " << report.Summary();
    return report.ok() ? 0 : 2;
  }

  SgTreeOptions options;
  std::string load_error;
  auto tree = LoadTree(*index_path, options, &load_error);
  if (tree == nullptr) {
    return Fail(err, "cannot load " + *index_path + ": " + load_error);
  }

  const AuditReport report = AuditTree(*tree, audit_options);
  out << "in-memory audit: " << report.Summary();
  bool ok = report.ok();

  if (paged) {
    const PagedTreeImage image =
        FlushTreeToPages(*tree, tree->options().compress);
    if (image.pages == nullptr) {
      out << "paged audit: could not serialize (node exceeds page size)\n";
      ok = false;
    } else {
      const AuditReport paged_report = AuditPagedImage(image, audit_options);
      out << "paged audit: " << paged_report.Summary();
      ok = ok && paged_report.ok();
    }
  }
  return ok ? 0 : 2;
}

int CmdStaticInfo(const CommandLine& cmd, std::ostream& out,
                  std::ostream& err) {
  const auto index_path = cmd.GetString("index");
  if (!index_path.has_value()) return Fail(err, "static-info requires --index");
  StaticOpenOptions open_options;
  open_options.verify_checksums = cmd.IntOr("verify-checksums", 1) != 0;
  const bool json = cmd.IntOr("json", 0) != 0;
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  std::string open_error;
  auto view = StaticTreeView::Open(Env::Posix(), *index_path, open_options,
                                   &open_error);
  if (view == nullptr) return Fail(err, "cannot open " + open_error);
  const auto [area_lo, area_hi] = view->TransactionAreaBounds();
  if (json) {
    out << "{\"format_version\": " << static_format::kVersion
        << ", \"transactions\": " << view->size()
        << ", \"signature_bits\": " << view->num_bits()
        << ", \"height\": " << view->height()
        << ", \"nodes\": " << view->node_count()
        << ", \"node_capacity\": " << view->max_entries()
        << ", \"file_size\": " << view->file_size()
        << ", \"area_window\": [" << area_lo << ", " << area_hi << "]"
        << ", \"zero_copy\": " << (view->zero_copy() ? "true" : "false")
        << ", \"checksums_verified\": "
        << (open_options.verify_checksums ? "true" : "false") << "}\n";
    return 0;
  }
  out << "format version: " << static_format::kVersion << "\n"
      << "transactions: " << view->size() << "\n"
      << "signature bits: " << view->num_bits() << "\n"
      << "height: " << view->height() << "\n"
      << "nodes: " << view->node_count() << "\n"
      << "node capacity: " << view->max_entries() << "\n"
      << "file size: " << view->file_size() << " bytes\n"
      << "area window: [" << area_lo << ", " << area_hi << "]\n"
      << "mapping: " << (view->zero_copy() ? "mmap (zero copy)"
                                           : "buffered read")
      << "\n"
      << "checksums: "
      << (open_options.verify_checksums ? "verified" : "skipped") << "\n";
  return 0;
}

int CmdQuery(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional().size() < 2) {
    return Fail(err,
                "usage: query nn|range|contain|exact|subset --index FILE ...");
  }
  const std::string& kind = cmd.positional()[1];
  QueryType type = QueryType::kKnn;
  if (kind == "nn") {
    type = QueryType::kKnn;
  } else if (kind == "range") {
    type = QueryType::kRange;
  } else if (kind == "contain") {
    type = QueryType::kContainment;
  } else if (kind == "exact") {
    type = QueryType::kExact;
  } else if (kind == "subset") {
    type = QueryType::kSubset;
  } else {
    return Fail(err, "unknown query kind '" + kind + "'");
  }
  const auto index_path = cmd.GetString("index");
  if (!index_path.has_value()) return Fail(err, "query requires --index");

  SgTreeOptions options;
  Metric metric = Metric::kHamming;
  if (!ParseMetric(cmd.StringOr("metric", "hamming"), &metric)) {
    return Fail(err, "unknown metric");
  }
  options.metric = metric;

  // --shards 1 loads --index as a sharded manifest (the shard count comes
  // from the manifest, which also carries the static/dynamic format tag)
  // and answers through the scatter-gather router; --threads sizes its
  // worker pool. --static 1 opens a single-file static image instead of a
  // dynamic snapshot.
  const bool sharded = cmd.IntOr("shards", 0) != 0;
  const bool static_index = cmd.IntOr("static", 0) != 0;
  const auto threads = static_cast<uint32_t>(cmd.IntOr("threads", 0));
  std::unique_ptr<SgTree> tree;
  std::unique_ptr<StaticTreeView> view;
  std::unique_ptr<ShardedIndex> index;
  uint32_t num_bits = 0;
  std::string load_error;
  if (sharded) {
    ShardedIndexOptions sharded_options;
    sharded_options.tree = options;
    index = ShardedIndex::Load(*index_path, sharded_options, &load_error);
    if (index == nullptr) {
      return Fail(err, "cannot load " + *index_path + ": " + load_error);
    }
    num_bits = index->static_mode() ? index->static_shard(0).num_bits()
                                    : index->shard(0).num_bits();
  } else if (static_index) {
    StaticOpenOptions open_options;
    open_options.tree = options;
    view = StaticTreeView::Open(Env::Posix(), *index_path, open_options,
                                &load_error);
    if (view == nullptr) return Fail(err, "cannot load " + load_error);
    num_bits = view->num_bits();
  } else {
    tree = LoadTree(*index_path, options, &load_error);
    if (tree == nullptr) {
      return Fail(err, "cannot load " + *index_path + ": " + load_error);
    }
    num_bits = tree->num_bits();
  }

  // Collect query item lists from --q and/or --queries.
  std::vector<std::vector<ItemId>> queries;
  if (const auto q = cmd.GetString("q"); q.has_value()) {
    std::vector<ItemId> items;
    if (!ParseItems(*q, num_bits, &items)) {
      return Fail(err, "bad --q item list");
    }
    queries.push_back(std::move(items));
  }
  if (const auto path = cmd.GetString("queries"); path.has_value()) {
    Dataset query_set;
    if (!LoadDataset(*path, &query_set)) {
      return Fail(err, "cannot read queries " + *path);
    }
    for (const Transaction& txn : query_set.transactions) {
      queries.push_back(txn.items);
    }
  }
  if (queries.empty()) return Fail(err, "provide --q or --queries");

  const auto k = static_cast<uint32_t>(cmd.IntOr("k", 1));
  const double epsilon = cmd.DoubleOr("eps", 0);
  const bool print_trace = cmd.IntOr("trace", 0) != 0;
  const auto metrics_path = cmd.GetString("metrics-json");
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const auto& items : queries) {
    QueryRequest request;
    request.type = type;
    request.query = Signature::FromItems(items, num_bits);
    request.k = k;
    request.epsilon = epsilon;
    requests.push_back(std::move(request));
  }

  obs::MetricsRegistry registry;
  std::vector<QueryResult> results;
  if (sharded) {
    QueryExecutorOptions exec_options;
    exec_options.num_threads = threads;
    QueryExecutor executor(exec_options);
    QueryRouterOptions router_options;
    router_options.metrics = &registry;
    QueryRouter router(*index, &executor, router_options);
    results = router.Run(requests);
  } else if (static_index) {
    // The static view owns no pool (it is shared and immutable), so the
    // query loop brings its own — uncleared between queries, matching the
    // warm-cache protocol of the dynamic branch below.
    BufferPool pool(options.buffer_pages);
    results.reserve(requests.size());
    for (const QueryRequest& request : requests) {
      results.push_back(Execute(StaticTreeBackend(*view), request, &pool));
    }
  } else {
    results.reserve(requests.size());
    for (const QueryRequest& request : requests) {
      // The tree's own pool, uncleared between queries — the warm-cache
      // protocol the serial CLI has always used.
      results.push_back(
          Execute(SgTreeBackend(*tree), request, &tree->buffer_pool()));
    }
  }

  QueryStats stats;
  QueryTrace total_trace;
  obs::Histogram* latency = registry.GetHistogram("query.latency_us");
  for (size_t qi = 0; qi < results.size(); ++qi) {
    const QueryResult& result = results[qi];
    if (!result.ok()) return Fail(err, result.error);
    out << "query " << qi << ":";
    for (const Neighbor& n : result.neighbors) {
      out << " " << n.tid << "(d=" << n.distance << ")";
    }
    for (uint64_t tid : result.ids) {
      out << " " << tid;
    }
    out << "\n";
    latency->Observe(result.elapsed_us);
    if (print_trace) {
      const QueryTrace& trace = result.trace;
      out << "  trace: nodes=" << trace.nodes_visited()
          << " tested=" << trace.signatures_tested
          << " descended=" << trace.subtrees_descended
          << " pruned=" << trace.subtrees_pruned
          << " verified=" << trace.candidates_verified
          << " results=" << trace.results
          << " hits=" << trace.buffer_hits
          << " misses=" << trace.buffer_misses << "\n";
    }
    stats += result.stats;
    total_trace += result.trace;
  }
  out << "# compared " << stats.transactions_compared << " transactions, "
      << stats.nodes_accessed << " node accesses, " << stats.random_ios
      << " random I/Os\n";
  if (metrics_path.has_value()) {
    registry.GetCounter("query.queries")->Increment(queries.size());
    registry.GetCounter("query.nodes_visited")
        ->Increment(total_trace.nodes_visited());
    registry.GetCounter("query.signatures_tested")
        ->Increment(total_trace.signatures_tested);
    registry.GetCounter("query.subtrees_pruned")
        ->Increment(total_trace.subtrees_pruned);
    registry.GetCounter("query.candidates_verified")
        ->Increment(total_trace.candidates_verified);
    registry.GetCounter("query.results")->Increment(total_trace.results);
    registry.GetCounter("query.buffer_hits")
        ->Increment(total_trace.buffer_hits);
    registry.GetCounter("query.random_ios")
        ->Increment(total_trace.buffer_misses);
    return WriteMetricsJson(registry, *metrics_path, out, err);
  }
  return 0;
}

// Shared tail of both join paths: prints the pair list (human or JSON),
// the merged trace on --trace, and the join.* metrics on --metrics-json.
int ReportJoin(const JoinResult& result, const std::vector<JoinPair>& pairs,
               JoinType type, const std::string& algo, bool sharded,
               long long limit, bool json, bool print_trace,
               obs::MetricsRegistry* registry,
               const std::optional<std::string>& metrics_path,
               std::ostream& out, std::ostream& err) {
  const size_t shown =
      limit <= 0 ? pairs.size()
                 : std::min(pairs.size(), static_cast<size_t>(limit));
  if (json) {
    out << "{\"join\": "
        << (type == JoinType::kContainment ? "\"contain\"" : "\"similar\"")
        << ", \"algo\": " << JsonQuoted(algo)
        << ", \"sharded\": " << (sharded ? "true" : "false")
        << ", \"pairs\": " << result.pairs
        << ", \"truncated\": " << (result.truncated ? "true" : "false")
        << ", \"elapsed_us\": " << result.elapsed_us
        << ", \"nodes_accessed\": " << result.stats.nodes_accessed
        << ", \"signatures_tested\": " << result.trace.signatures_tested
        << ", \"candidates_verified\": " << result.trace.candidates_verified
        << ", \"sample\": [";
    for (size_t pi = 0; pi < shown; ++pi) {
      out << (pi > 0 ? ", " : "") << "[" << pairs[pi].tid_a << ", "
          << pairs[pi].tid_b << ", " << pairs[pi].distance << "]";
    }
    out << "]}\n";
  } else {
    for (size_t pi = 0; pi < shown; ++pi) {
      out << pairs[pi].tid_a << " " << pairs[pi].tid_b
          << " (d=" << pairs[pi].distance << ")\n";
    }
    if (shown < pairs.size()) {
      out << "... (" << (pairs.size() - shown)
          << " more; raise --limit or pass --limit 0)\n";
    }
    out << "# " << result.pairs << " pairs via " << algo
        << (sharded ? " (sharded)" : "") << " in "
        << result.elapsed_us / 1000.0 << " ms\n";
    if (print_trace) {
      const QueryTrace& trace = result.trace;
      out << "# trace: nodes=" << trace.nodes_visited()
          << " tested=" << trace.signatures_tested
          << " descended=" << trace.subtrees_descended
          << " pruned=" << trace.subtrees_pruned
          << " verified=" << trace.candidates_verified
          << " results=" << trace.results << "\n";
    }
  }
  if (metrics_path.has_value()) {
    return WriteMetricsJson(*registry, *metrics_path, out, err);
  }
  return 0;
}

int CmdJoin(const CommandLine& cmd, std::ostream& out, std::ostream& err) {
  if (cmd.positional().size() < 2) {
    return Fail(err,
                "usage: join contain|similar --left FILE --right FILE "
                "[--algo tree|pretti|fvt] [--shards 1] ...");
  }
  const std::string& kind = cmd.positional()[1];
  JoinRequest request;
  if (kind == "contain") {
    request.type = JoinType::kContainment;
  } else if (kind == "similar") {
    request.type = JoinType::kSimilarity;
  } else {
    return Fail(err, "unknown join kind '" + kind + "'");
  }
  const auto left_path = cmd.GetString("left");
  const auto right_path = cmd.GetString("right");
  if (!left_path.has_value() || !right_path.has_value()) {
    return Fail(err, "join requires --left and --right");
  }

  const std::string algo_name = cmd.StringOr("algo", "pretti");
  JoinAlgo algo = JoinAlgo::kPretti;
  if (!ParseJoinAlgo(algo_name, &algo)) {
    return Fail(err, "unknown join algorithm '" + algo_name +
                         "' (expected tree, pretti, or fvt)");
  }
  Metric metric = Metric::kHamming;
  if (!ParseMetric(cmd.StringOr("metric", "hamming"), &metric)) {
    return Fail(err, "unknown metric");
  }
  request.metric = metric;
  request.threshold = cmd.DoubleOr("threshold", 0.0);

  const bool sharded = cmd.IntOr("shards", 0) != 0;
  const auto threads = static_cast<uint32_t>(cmd.IntOr("threads", 0));
  const auto buffer_pages =
      static_cast<uint32_t>(cmd.IntOr("buffer-pages", 64));
  const bool json = cmd.IntOr("json", 0) != 0;
  const bool print_trace = cmd.IntOr("trace", 0) != 0;
  const long long limit = cmd.IntOr("limit", 20);
  const auto metrics_path = cmd.GetString("metrics-json");
  if (const int rc = CheckUnused(cmd, err); rc != 0) return rc;

  SgTreeOptions options;
  options.metric = metric;
  obs::MetricsRegistry registry;
  JoinResult result;
  std::vector<JoinPair> pairs;

  if (sharded) {
    // Both sides load as sharded manifests (build --shards N); the
    // |R shards| x |S shards| grid fans out over the executor's lanes.
    ShardedIndexOptions sharded_options;
    sharded_options.tree = options;
    std::string load_error;
    auto left = ShardedIndex::Load(*left_path, sharded_options, &load_error);
    if (left == nullptr) {
      return Fail(err, "cannot load " + *left_path + ": " + load_error);
    }
    auto right = ShardedIndex::Load(*right_path, sharded_options, &load_error);
    if (right == nullptr) {
      return Fail(err, "cannot load " + *right_path + ": " + load_error);
    }
    QueryExecutorOptions exec_options;
    exec_options.num_threads = threads;
    QueryExecutor executor(exec_options);
    JoinRouterOptions router_options;
    router_options.algo = algo;
    router_options.buffer_pages = buffer_pages;
    router_options.metrics = &registry;
    JoinRouter router(*left, *right, &executor, router_options);
    result = router.Run(request, &pairs);
    if (!result.ok()) return Fail(err, result.error);
    return ReportJoin(result, pairs, request.type, algo_name, true, limit,
                      json, print_trace, &registry, metrics_path, out, err);
  }

  std::string load_error;
  auto left = LoadTree(*left_path, options, &load_error);
  if (left == nullptr) {
    return Fail(err, "cannot load " + *left_path + ": " + load_error);
  }
  auto right = LoadTree(*right_path, options, &load_error);
  if (right == nullptr) {
    return Fail(err, "cannot load " + *right_path + ": " + load_error);
  }

  switch (algo) {
    case JoinAlgo::kTree: {
      const TreeJoinBackend backend(*left, *right, buffer_pages);
      result = CollectJoin(backend, request, &pairs);
      break;
    }
    case JoinAlgo::kPretti: {
      const SetCollection r = SetCollection::FromTree(*left, {});
      const SetCollection s = SetCollection::FromTree(*right, {});
      const InvertedPostings postings(s);
      const PrettiJoinBackend backend(r, postings);
      result = CollectJoin(backend, request, &pairs);
      break;
    }
    case JoinAlgo::kFvt: {
      const SetCollection r = SetCollection::FromTree(*left, {});
      const SetCollection s = SetCollection::FromTree(*right, {});
      const FvtTrie trie(s);
      const FvtJoinBackend backend(r, trie);
      result = CollectJoin(backend, request, &pairs);
      break;
    }
  }
  if (!result.ok()) return Fail(err, result.error);
  registry.GetCounter("join.requests")->Increment(1);
  registry.GetCounter("join.pairs")->Increment(result.pairs);
  registry.GetHistogram("join.latency_us")->Observe(result.elapsed_us);
  return ReportJoin(result, pairs, request.type, algo_name, false, limit,
                    json, print_trace, &registry, metrics_path, out, err);
}

}  // namespace

int RunCli(const std::vector<std::string>& args, std::ostream& out,
           std::ostream& err) {
  CommandLine cmd(args);
  if (!cmd.error().empty()) return Fail(err, cmd.error());
  if (cmd.positional().empty()) {
    err << "usage: sgtree_cli gen|build|stats|check|static-info|query|join|"
           "recover|wal-checkpoint ... (see tools/cli.h)\n";
    return 1;
  }
  const std::string& verb = cmd.positional()[0];
  if (verb == "gen") return CmdGen(cmd, out, err);
  if (verb == "build") return CmdBuild(cmd, out, err);
  if (verb == "stats") return CmdStats(cmd, out, err);
  if (verb == "check") return CmdCheck(cmd, out, err);
  if (verb == "static-info") return CmdStaticInfo(cmd, out, err);
  if (verb == "query") return CmdQuery(cmd, out, err);
  if (verb == "join") return CmdJoin(cmd, out, err);
  if (verb == "recover") return CmdRecover(cmd, out, err);
  if (verb == "wal-checkpoint") return CmdWalCheckpoint(cmd, out, err);
  return Fail(err, "unknown command '" + verb + "'");
}

}  // namespace sgtree
