#include "shard/join_router.h"

#include <algorithm>

#include "join/tree_join.h"

namespace sgtree {

const char* JoinAlgoName(JoinAlgo algo) {
  switch (algo) {
    case JoinAlgo::kTree:
      return "tree";
    case JoinAlgo::kPretti:
      return "pretti";
    case JoinAlgo::kFvt:
      return "fvt";
  }
  return "unknown";
}

bool ParseJoinAlgo(const std::string& text, JoinAlgo* algo) {
  if (text == "tree") {
    *algo = JoinAlgo::kTree;
  } else if (text == "pretti") {
    *algo = JoinAlgo::kPretti;
  } else if (text == "fvt") {
    *algo = JoinAlgo::kFvt;
  } else {
    return false;
  }
  return true;
}

JoinRouter::JoinRouter(const ShardedIndex& left, const ShardedIndex& right,
                       QueryExecutor* executor,
                       const JoinRouterOptions& options)
    : left_(&left), right_(&right), executor_(executor), options_(options) {
  if (left.static_mode() || right.static_mode()) {
    setup_error_ =
        "static shards serve point queries only; joins need dynamic shards "
        "(load the v1 snapshot or durable form)";
    return;
  }
  if (options_.algo == JoinAlgo::kTree) return;
  left_sets_.reserve(left.num_shards());
  for (uint32_t i = 0; i < left.num_shards(); ++i) {
    left_sets_.push_back(SetCollection::FromTree(left.shard(i), {}));
  }
  right_sets_.reserve(right.num_shards());
  for (uint32_t j = 0; j < right.num_shards(); ++j) {
    right_sets_.push_back(SetCollection::FromTree(right.shard(j), {}));
  }
  if (options_.algo == JoinAlgo::kPretti) {
    for (const SetCollection& s : right_sets_) {
      right_postings_.push_back(std::make_unique<InvertedPostings>(s));
    }
  } else {
    for (const SetCollection& s : right_sets_) {
      right_tries_.push_back(std::make_unique<FvtTrie>(s));
    }
  }
}

JoinResult JoinRouter::Run(const JoinRequest& request,
                           std::vector<JoinPair>* pairs) {
  pairs->clear();
  JoinResult merged;
  obs::MetricsRegistry* reg = options_.metrics;
  if (reg != nullptr) reg->GetCounter("join.requests")->Increment(1);

  merged.error = setup_error_;
  if (merged.ok()) merged.error = ValidateJoinRequest(request);
  if (merged.ok() && options_.algo != JoinAlgo::kTree &&
      request.type == JoinType::kSimilarity) {
    merged.error = std::string(JoinAlgoName(options_.algo)) +
                   " is a containment-only join; use the tree backend for "
                   "similarity joins";
  }
  if (!merged.ok()) {
    if (reg != nullptr) reg->GetCounter("join.rejected")->Increment(1);
    return merged;
  }

  const uint32_t n = left_->num_shards();
  const uint32_t m = right_->num_shards();
  const size_t tasks = static_cast<size_t>(n) * m;
  std::vector<JoinResult> task_results(tasks);
  std::vector<std::vector<JoinPair>> task_pairs(tasks);

  Timer timer;
  executor_->ParallelApply(tasks, [&](size_t t, uint32_t /*worker_id*/) {
    const uint32_t i = static_cast<uint32_t>(t / m);
    const uint32_t j = static_cast<uint32_t>(t % m);
    switch (options_.algo) {
      case JoinAlgo::kTree: {
        const TreeJoinBackend backend(left_->shard(i), right_->shard(j),
                                      options_.buffer_pages);
        task_results[t] = CollectJoin(backend, request, &task_pairs[t]);
        break;
      }
      case JoinAlgo::kPretti: {
        const PrettiJoinBackend backend(left_sets_[i], *right_postings_[j]);
        task_results[t] = CollectJoin(backend, request, &task_pairs[t]);
        break;
      }
      case JoinAlgo::kFvt: {
        const FvtJoinBackend backend(left_sets_[i], *right_tries_[j]);
        task_results[t] = CollectJoin(backend, request, &task_pairs[t]);
        break;
      }
    }
  });

  size_t total = 0;
  for (const std::vector<JoinPair>& part : task_pairs) total += part.size();
  pairs->reserve(total);
  for (std::vector<JoinPair>& part : task_pairs) {
    pairs->insert(pairs->end(), part.begin(), part.end());
  }
  std::sort(pairs->begin(), pairs->end(), CanonicalPairLess);

  for (const JoinResult& task : task_results) {
    if (!task.ok() && merged.ok()) merged.error = task.error;
    merged.pairs += task.pairs;
    merged.stats += task.stats;
    merged.trace += task.trace;
    merged.elapsed_us = std::max(merged.elapsed_us, task.elapsed_us);
  }
  const double wall_us = timer.ElapsedMs() * 1000.0;

  if (reg != nullptr) {
    if (!merged.ok()) reg->GetCounter("join.rejected")->Increment(1);
    reg->GetCounter("join.pairs")->Increment(merged.pairs);
    reg->GetCounter("join.fanout_tasks")->Increment(tasks);
    obs::Histogram* task_us = reg->GetHistogram("join.task_us");
    for (const JoinResult& task : task_results) {
      task_us->Observe(task.elapsed_us);
    }
    reg->GetHistogram("join.latency_us")->Observe(wall_us);
  }
  return merged;
}

}  // namespace sgtree
