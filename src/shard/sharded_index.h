#ifndef SGTREE_SHARD_SHARDED_INDEX_H_
#define SGTREE_SHARD_SHARDED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "data/transaction.h"
#include "durability/durable_tree.h"
#include "durability/env.h"
#include "obs/metrics.h"
#include "sgtree/bulk_load.h"
#include "sgtree/options.h"
#include "sgtree/sg_tree.h"
#include "static/static_tree_view.h"

namespace sgtree {

/// Options of a ShardedIndex. `tree` configures every per-shard SG-tree
/// identically (each shard still owns its private buffer pool).
struct ShardedIndexOptions {
  uint32_t num_shards = 1;
  SgTreeOptions tree;
  /// Durable mode only: fsync each shard's WAL after every operation.
  /// InsertBatch group-commits per shard regardless.
  bool sync_each_op = true;
  /// Optional registry for shard.* build/update metrics (the QueryRouter
  /// takes its own registry for the read path).
  obs::MetricsRegistry* metrics = nullptr;
};

/// A horizontally partitioned SG-tree index: transactions are routed to one
/// of N shards by a stable hash of their tid, and each shard is a complete,
/// independent SG-tree. Because the shards partition the data, any query
/// can be answered by running it unchanged on every shard and merging — the
/// QueryRouter does exactly that, and the merged answer is byte-identical
/// to a single tree over the same data (see query_router.h for why).
///
/// Shards come in three flavors, mirroring the single-tree story:
///  - In-memory (constructor / BulkLoad), snapshot-persisted via
///    Save()/Load(): a small manifest at `path` plus one SaveTree image per
///    shard at `path.shard<i>`.
///  - Durable (OpenDurable): each shard is a DurableTree in its own
///    subdirectory `<dir>/shard-<i>` with a private page file + WAL, so a
///    crash is recovered shard by shard at the next OpenDurable and a
///    fault in one shard's log never contaminates the others.
///  - Static (SaveStatic / Load of a v2 manifest): each shard is an
///    immutable mmap'ed StaticTreeView (static/static_tree_view.h). The
///    index is read-only — updates return failure — and serves the same
///    byte-identical merged answers through the QueryRouter.
///
/// Thread-safety matches SgTree: concurrent reads of const shards are safe
/// (the router fans out on that basis); mutations must be externally
/// serialized per index. Bulk loads and batch inserts parallelize
/// internally ACROSS shards — the shards are independent structures, so
/// one builder thread per shard is race-free by construction. In durable
/// mode each shard's DurableTree additionally serializes its own write
/// path under an annotated Mutex (see durable_tree.h): the per-shard
/// builder threads each hold exactly one shard's lock, locks of different
/// shards never nest, and the compile-time analysis checks the per-shard
/// protocol the fan-out relies on.
class ShardedIndex {
 public:
  /// The shard owning `tid` under an N-way partition: a splitmix64 finalizer
  /// mod N. Stable across runs, platforms, and shard-local state — the
  /// partition is a pure function of (tid, num_shards), which is what makes
  /// snapshots, WAL recovery, and the byte-identical merge line up.
  static uint32_t ShardOf(uint64_t tid, uint32_t num_shards);

  /// In-memory index with `options.num_shards` empty shards.
  explicit ShardedIndex(const ShardedIndexOptions& options);

  ShardedIndex(const ShardedIndex&) = delete;
  ShardedIndex& operator=(const ShardedIndex&) = delete;
  ~ShardedIndex();

  /// Opens (or creates) a durable index: one DurableTree per shard under
  /// `dir`, each crash-recovered independently at open. Returns nullptr
  /// with `*error` set if any shard fails to open.
  static std::unique_ptr<ShardedIndex> OpenDurable(
      Env* env, const std::string& dir, const ShardedIndexOptions& options,
      std::string* error);

  /// Builds an in-memory index by partitioning `dataset` and bottom-up
  /// bulk-loading every shard in parallel (one thread per shard).
  static std::unique_ptr<ShardedIndex> BulkLoad(
      const Dataset& dataset, const ShardedIndexOptions& options,
      const BulkLoadOptions& bulk = {});

  /// Bulk-loads `dataset` into this (required-empty) index: partitions,
  /// builds the per-shard trees in parallel, then installs them — through
  /// DurableTree::AdoptBulkLoaded in durable mode (each shard's load is
  /// logged and checkpointed), or directly in-memory. Returns false with
  /// `*error` set on failure.
  bool AdoptBulkLoaded(const Dataset& dataset, const BulkLoadOptions& bulk,
                       std::string* error);

  /// Routed updates. In durable mode these are logged per shard
  /// (log-before-acknowledge; false = the owning shard could not make the
  /// operation durable). In-memory inserts always succeed; Erase returns
  /// whether the key existed. In static mode the index is immutable:
  /// Insert/Erase return false and InsertBatch acknowledges 0.
  bool Insert(const Transaction& txn);
  bool Erase(const Transaction& txn);

  /// Partitions `txns` and inserts each partition into its shard in
  /// parallel (durable mode: one group commit per shard). Returns the
  /// number of acknowledged inserts.
  size_t InsertBatch(const std::vector<Transaction>& txns);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(shards_.empty() ? static_shards_.size()
                                                 : shards_.size());
  }
  bool durable() const { return !durable_shards_.empty(); }
  /// True when the shards are immutable static images (v2 manifest).
  bool static_mode() const { return !static_shards_.empty(); }

  /// Sum of the shards' sizes / node counts.
  size_t size() const;
  uint64_t node_count() const;

  /// Shard `i`'s tree. The const form is the router's read path.
  const SgTree& shard(uint32_t i) const { return *shards_[i]; }
  SgTree& shard(uint32_t i) { return *shards_[i]; }

  /// Shard `i`'s DurableTree, or null when in-memory.
  DurableTree* durable_shard(uint32_t i) {
    return durable_shards_.empty() ? nullptr : durable_shards_[i].get();
  }

  /// Shard `i`'s static view (static_mode() only).
  const StaticTreeView& static_shard(uint32_t i) const {
    return *static_shards_[i];
  }

  /// Durable mode: fsyncs / checkpoints every shard. No-ops in-memory.
  bool Sync();
  bool Checkpoint(std::string* error = nullptr);

  /// Snapshot persistence for in-memory indexes: writes a manifest at
  /// `path` (format version, shard count) and one crash-atomic SaveTree
  /// image per shard at ShardSnapshotPath(path, i).
  bool Save(const std::string& path, std::string* error = nullptr) const;

  /// Writes a read-only deployment image of this (dynamic) index: a v2
  /// manifest at `path` ("sgshard 2" + a format tag) plus one static
  /// SG-tree image per shard at ShardSnapshotPath(path, i), each published
  /// crash-atomically. Load() restores it in static mode.
  bool SaveStatic(const std::string& path, std::string* error = nullptr) const;

  /// Rebuilds a Save()d or SaveStatic()d index, dispatching on the manifest
  /// version (v1 = dynamic trees via LoadTree, v2 static = mmap'ed views).
  /// `options.num_shards` is taken from the manifest, not the caller;
  /// `options.tree` supplies the runtime (metric, buffer pages) exactly
  /// like LoadTree.
  static std::unique_ptr<ShardedIndex> Load(const std::string& path,
                                            const ShardedIndexOptions& options,
                                            std::string* error = nullptr);

  /// `path.shard<i>` — the per-shard snapshot file of Save/Load.
  static std::string ShardSnapshotPath(const std::string& path, uint32_t i);
  /// `<dir>/shard-<i>` — the per-shard directory of OpenDurable.
  static std::string ShardDirFor(const std::string& dir, uint32_t i);

 private:
  ShardedIndex() = default;

  /// Splits `txns` into per-shard transaction lists.
  std::vector<std::vector<Transaction>> Partition(
      const std::vector<Transaction>& txns) const;

  void CountInserts(uint32_t shard, uint64_t n);

  ShardedIndexOptions options_;
  /// Views of the shard trees: owned by trees_ in-memory, or by the
  /// DurableTrees in durable mode. num_shards entries — except in static
  /// mode, where static_shards_ holds the index instead and these stay
  /// empty.
  std::vector<SgTree*> shards_;
  std::vector<std::unique_ptr<SgTree>> trees_;
  std::vector<std::unique_ptr<DurableTree>> durable_shards_;
  std::vector<std::unique_ptr<StaticTreeView>> static_shards_;
};

}  // namespace sgtree

#endif  // SGTREE_SHARD_SHARDED_INDEX_H_
