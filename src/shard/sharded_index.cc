#include "shard/sharded_index.h"

#include <fstream>
#include <functional>
#include <sstream>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/file_util.h"
#include "sgtree/persistence.h"
#include "static/static_tree_builder.h"

namespace sgtree {
namespace {

// Sanity cap for manifest parsing: far above any sensible deployment, low
// enough that a corrupt manifest cannot make Load allocate wildly.
constexpr uint32_t kMaxShards = 4096;

// Runs fn(0) .. fn(n-1) concurrently, one thread per shard. Shards are
// independent structures, so per-shard work is race-free by construction;
// the single-shard case stays on the calling thread.
void ParallelOverShards(uint32_t n, const std::function<void(uint32_t)>& fn) {
  if (n <= 1) {
    if (n == 1) fn(0);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (uint32_t i = 0; i < n; ++i) threads.emplace_back(fn, i);
  for (std::thread& t : threads) t.join();
}

}  // namespace

uint32_t ShardedIndex::ShardOf(uint64_t tid, uint32_t num_shards) {
  SGTREE_ASSERT_MSG(num_shards > 0, "ShardOf requires at least one shard");
  // splitmix64 finalizer: tids are often dense sequences, so the raw value
  // mod N would stripe systematically; the mixer makes the partition
  // uniform while staying a pure function of (tid, N).
  uint64_t x = tid + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<uint32_t>(x % num_shards);
}

ShardedIndex::ShardedIndex(const ShardedIndexOptions& options)
    : options_(options) {
  SGTREE_ASSERT_MSG(options.num_shards > 0, "num_shards must be positive");
  trees_.reserve(options.num_shards);
  shards_.reserve(options.num_shards);
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    trees_.push_back(std::make_unique<SgTree>(options.tree));
    shards_.push_back(trees_.back().get());
  }
}

ShardedIndex::~ShardedIndex() = default;

std::unique_ptr<ShardedIndex> ShardedIndex::OpenDurable(
    Env* env, const std::string& dir, const ShardedIndexOptions& options,
    std::string* error) {
  SGTREE_ASSERT_MSG(options.num_shards > 0, "num_shards must be positive");
  if (!env->FileExists(dir) && !env->CreateDir(dir)) {
    if (error != nullptr) *error = "cannot create shard root " + dir;
    return nullptr;
  }
  std::unique_ptr<ShardedIndex> index(new ShardedIndex());
  index->options_ = options;
  DurableTree::Options shard_options;
  shard_options.tree = options.tree;
  shard_options.sync_each_op = options.sync_each_op;
  shard_options.metrics = options.metrics;
  for (uint32_t i = 0; i < options.num_shards; ++i) {
    std::string shard_error;
    std::unique_ptr<DurableTree> shard = DurableTree::Open(
        env, ShardDirFor(dir, i), shard_options, &shard_error);
    if (shard == nullptr) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": " + shard_error;
      }
      return nullptr;
    }
    index->shards_.push_back(&shard->tree());
    index->durable_shards_.push_back(std::move(shard));
  }
  return index;
}

std::unique_ptr<ShardedIndex> ShardedIndex::BulkLoad(
    const Dataset& dataset, const ShardedIndexOptions& options,
    const BulkLoadOptions& bulk) {
  auto index = std::make_unique<ShardedIndex>(options);
  std::string error;
  const bool ok = index->AdoptBulkLoaded(dataset, bulk, &error);
  SGTREE_ASSERT_MSG(ok, "in-memory bulk load cannot fail");
  return index;
}

bool ShardedIndex::AdoptBulkLoaded(const Dataset& dataset,
                                   const BulkLoadOptions& bulk,
                                   std::string* error) {
  const uint32_t n = num_shards();
  std::vector<std::vector<Transaction>> parts = Partition(dataset.transactions);
  // Build every shard tree bottom-up in parallel: partitioning is pure,
  // and each builder touches only its own Dataset copy and output tree.
  std::vector<std::unique_ptr<SgTree>> built(n);
  ParallelOverShards(n, [&](uint32_t i) {
    Dataset part;
    part.num_items = dataset.num_items;
    part.fixed_dimensionality = dataset.fixed_dimensionality;
    part.transactions = std::move(parts[i]);
    built[i] = sgtree::BulkLoad(part, options_.tree, bulk);
    CountInserts(i, part.transactions.size());
  });
  if (durable()) {
    // Adoption stays sequential: it is one logged+checkpointed op per
    // shard, dominated by the parallel build above.
    for (uint32_t i = 0; i < n; ++i) {
      std::string shard_error;
      if (!durable_shards_[i]->AdoptBulkLoaded(std::move(built[i]),
                                               &shard_error)) {
        if (error != nullptr) {
          *error = "shard " + std::to_string(i) + ": " + shard_error;
        }
        return false;
      }
      shards_[i] = &durable_shards_[i]->tree();
    }
    return true;
  }
  for (uint32_t i = 0; i < n; ++i) {
    trees_[i] = std::move(built[i]);
    shards_[i] = trees_[i].get();
  }
  return true;
}

bool ShardedIndex::Insert(const Transaction& txn) {
  if (static_mode()) return false;  // Static images are immutable.
  const uint32_t s = ShardOf(txn.tid, num_shards());
  if (durable()) {
    if (!durable_shards_[s]->Insert(txn)) return false;
  } else {
    trees_[s]->Insert(txn);
  }
  CountInserts(s, 1);
  return true;
}

bool ShardedIndex::Erase(const Transaction& txn) {
  if (static_mode()) return false;  // Static images are immutable.
  const uint32_t s = ShardOf(txn.tid, num_shards());
  if (durable()) return durable_shards_[s]->Erase(txn);
  return trees_[s]->Erase(txn);
}

size_t ShardedIndex::InsertBatch(const std::vector<Transaction>& txns) {
  if (static_mode()) return 0;  // Static images are immutable.
  const uint32_t n = num_shards();
  std::vector<std::vector<Transaction>> parts = Partition(txns);
  std::vector<size_t> acked(n, 0);
  ParallelOverShards(n, [&](uint32_t i) {
    if (parts[i].empty()) return;
    if (durable()) {
      acked[i] = durable_shards_[i]->InsertBatch(parts[i]);
    } else {
      for (const Transaction& txn : parts[i]) trees_[i]->Insert(txn);
      acked[i] = parts[i].size();
    }
    CountInserts(i, acked[i]);
  });
  size_t total = 0;
  for (const size_t a : acked) total += a;
  return total;
}

size_t ShardedIndex::size() const {
  size_t total = 0;
  for (const SgTree* shard : shards_) total += shard->size();
  for (const auto& view : static_shards_) total += view->size();
  return total;
}

uint64_t ShardedIndex::node_count() const {
  uint64_t total = 0;
  for (const SgTree* shard : shards_) total += shard->node_count();
  for (const auto& view : static_shards_) total += view->node_count();
  return total;
}

bool ShardedIndex::Sync() {
  bool ok = true;
  for (auto& shard : durable_shards_) ok = shard->Sync() && ok;
  return ok;
}

bool ShardedIndex::Checkpoint(std::string* error) {
  for (uint32_t i = 0; i < num_shards(); ++i) {
    if (durable_shards_.empty()) break;
    std::string shard_error;
    if (!durable_shards_[i]->Checkpoint(&shard_error)) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": " + shard_error;
      }
      return false;
    }
  }
  return true;
}

bool ShardedIndex::Save(const std::string& path, std::string* error) const {
  if (static_mode()) {
    if (error != nullptr) *error = "cannot Save a static index";
    return false;
  }
  std::ostringstream manifest;
  manifest << "sgshard 1\nshards " << num_shards() << "\n";
  const std::string text = manifest.str();
  for (uint32_t i = 0; i < num_shards(); ++i) {
    if (!SaveTree(*shards_[i], ShardSnapshotPath(path, i), error)) {
      return false;
    }
  }
  // The manifest lands last: a crash mid-save leaves either the previous
  // complete index or a manifest whose shard files all already exist.
  return AtomicWriteFile(path,
                         std::vector<uint8_t>(text.begin(), text.end()),
                         error);
}

bool ShardedIndex::SaveStatic(const std::string& path,
                              std::string* error) const {
  if (static_mode()) {
    if (error != nullptr) *error = "cannot re-export a static index";
    return false;
  }
  std::ostringstream manifest;
  manifest << "sgshard 2\nformat static\nshards " << num_shards() << "\n";
  const std::string text = manifest.str();
  for (uint32_t i = 0; i < num_shards(); ++i) {
    std::string shard_error;
    if (!BuildStaticTree(*shards_[i], ShardSnapshotPath(path, i),
                         &shard_error)) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": " + shard_error;
      }
      return false;
    }
  }
  // Same publish order as Save: the manifest lands last, so a crash
  // mid-export never names a shard image that does not exist.
  return AtomicWriteFile(path,
                         std::vector<uint8_t>(text.begin(), text.end()),
                         error);
}

std::unique_ptr<ShardedIndex> ShardedIndex::Load(
    const std::string& path, const ShardedIndexOptions& options,
    std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open shard manifest " + path;
    return nullptr;
  }
  std::string magic;
  uint32_t version = 0;
  in >> magic >> version;
  if (!in || magic != "sgshard" || (version != 1 && version != 2)) {
    if (error != nullptr) *error = "malformed shard manifest " + path;
    return nullptr;
  }
  std::string format = "trees";
  if (version == 2) {
    std::string format_key;
    in >> format_key >> format;
    if (!in || format_key != "format" || format != "static") {
      if (error != nullptr) *error = "malformed shard manifest " + path;
      return nullptr;
    }
  }
  std::string key;
  uint32_t n = 0;
  in >> key >> n;
  if (!in || key != "shards" || n == 0 || n > kMaxShards) {
    if (error != nullptr) *error = "malformed shard manifest " + path;
    return nullptr;
  }
  std::unique_ptr<ShardedIndex> index(new ShardedIndex());
  index->options_ = options;
  index->options_.num_shards = n;
  for (uint32_t i = 0; i < n; ++i) {
    std::string shard_error;
    if (format == "static") {
      StaticOpenOptions open_options;
      open_options.tree = options.tree;
      std::unique_ptr<StaticTreeView> view =
          StaticTreeView::Open(Env::Posix(), ShardSnapshotPath(path, i),
                               open_options, &shard_error);
      if (view == nullptr) {
        if (error != nullptr) {
          *error = "shard " + std::to_string(i) + ": " + shard_error;
        }
        return nullptr;
      }
      index->static_shards_.push_back(std::move(view));
      continue;
    }
    std::unique_ptr<SgTree> tree =
        LoadTree(ShardSnapshotPath(path, i), options.tree, &shard_error);
    if (tree == nullptr) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + ": " + shard_error;
      }
      return nullptr;
    }
    index->trees_.push_back(std::move(tree));
    index->shards_.push_back(index->trees_.back().get());
  }
  return index;
}

std::string ShardedIndex::ShardSnapshotPath(const std::string& path,
                                            uint32_t i) {
  return path + ".shard" + std::to_string(i);
}

std::string ShardedIndex::ShardDirFor(const std::string& dir, uint32_t i) {
  return dir + "/shard-" + std::to_string(i);
}

std::vector<std::vector<Transaction>> ShardedIndex::Partition(
    const std::vector<Transaction>& txns) const {
  const uint32_t n = num_shards();
  std::vector<std::vector<Transaction>> parts(n);
  for (auto& part : parts) part.reserve(txns.size() / n + 1);
  for (const Transaction& txn : txns) {
    parts[ShardOf(txn.tid, n)].push_back(txn);
  }
  return parts;
}

void ShardedIndex::CountInserts(uint32_t shard, uint64_t n) {
  if (options_.metrics == nullptr || n == 0) return;
  options_.metrics->GetCounter("shard.inserts")->Increment(n);
  options_.metrics->GetCounter("shard." + std::to_string(shard) + ".inserts")
      ->Increment(n);
}

}  // namespace sgtree
