#ifndef SGTREE_SHARD_QUERY_ROUTER_H_
#define SGTREE_SHARD_QUERY_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "shard/sharded_index.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace sgtree {

struct QueryRouterOptions {
  /// Frames of each lane's private pool, or the total capacity of the
  /// shared sharded pool — same semantics as QueryExecutorOptions.
  uint32_t buffer_pages = 64;

  /// 0 (default): every executor lane owns a private BufferPool; see
  /// `cold_per_subquery` for when it is cleared. > 0: all lanes share one
  /// ShardedBufferPool with this many lock stripes.
  uint32_t pool_shards = 0;

  /// Attach one SharedPruneBound per k-NN query, letting shards prune with
  /// the best k-th distance ANY shard has found so far (see
  /// sgtree/search.h). Results are identical either way — the bound only
  /// skips work — but per-shard counters become schedule-dependent, so the
  /// counter-determinism tests switch it off.
  bool shared_knn_bound = true;

  /// true (default): one executor task is a SLICE — one shard crossed with
  /// a contiguous block of queries — so task-dispatch cost, backend setup,
  /// and the pool amortize over the block. false: the legacy grid of one
  /// task per (query, shard), kept for the bench ablation.
  bool shard_major = true;

  /// true (default): each query is merged by whichever lane completes its
  /// LAST shard part (per-query atomic countdown), overlapping gather with
  /// scatter. false: legacy full barrier, then a serial merge loop on the
  /// calling thread — the bench ablation baseline.
  bool overlap_merge = true;

  /// false (default): in private-pool mode a lane clears its pool once per
  /// slice, so queries inside a slice warm the pool for each other on that
  /// slice's shard (per-query I/O counters then depend on the slice
  /// geometry — a pure function of batch size, shard count, lane count and
  /// `queries_per_task`, so repeated runs stay bit-identical). true: clear
  /// before every (query, shard) sub-query — the paper's per-sub-query
  /// cold-cache protocol, with counters independent of the slice geometry.
  /// Irrelevant under a shared pool, which is never cleared mid-batch.
  bool cold_per_subquery = false;

  /// Queries per shard-major slice; 0 picks an automatic block size (~8
  /// slices per lane across all shards, so stealing can still re-balance
  /// skewed slices). Ignored when shard_major is false.
  uint32_t queries_per_task = 0;

  /// Optional registry: each batch feeds "shard.queries",
  /// "shard.rejected", "shard.fanout_tasks", per-shard
  /// "shard.<i>.queries" / "shard.<i>.random_ios" /
  /// "shard.<i>.nodes_visited" counters and the "shard.query_latency_us"
  /// histogram (merged per-query latencies), all from the calling thread
  /// after the fan-out.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Scatter-gather query engine over a ShardedIndex: every query of a batch
/// is answered by all shards and the per-shard answers are merged:
///
///  - kKnn / kBestFirstKnn: merge the per-shard candidate lists under
///    (distance, tid) and keep the first k. Both the single tree and every
///    shard resolve boundary ties canonically (search.h), and a shard's
///    list always contains every member of the global top-k that lives in
///    that shard — the shared bound is provably never below the final k-th
///    distance — so the merge reproduces the single-tree answer exactly.
///  - kRange: concatenate and sort by (distance, tid) — each shard returns
///    its exact in-range transactions, and tids are unique across shards.
///  - kContainment / kExact / kSubset: union of the per-shard id lists,
///    sorted ascending.
///
/// In every case the merged result is byte-identical to running the same
/// request on one SG-tree holding all the data (the determinism suite
/// checks this for all six types on 1/2/8 shards, across every scheduling
/// mode). Merged per-query `stats`/`trace` are the SUM over shards and
/// `elapsed_us` the MAX (the scatter-gather service time); those match the
/// single-tree numbers only in spirit, not byte for byte.
///
/// Scheduling (the defaults; see QueryRouterOptions for the legacy modes
/// the bench ablation keeps reachable):
///  - shard-major slices: a task is (shard, query block), so the per-task
///    dispatch cost and the lane's pool amortize over a block of
///    sub-queries instead of being paid per (query, shard) pair;
///  - overlapped merge: a per-query atomic countdown lets the lane that
///    finishes a query's last shard part merge that query immediately,
///    while other lanes are still scattering — there is no full barrier
///    followed by a serial caller-side merge loop;
///  - scratch reuse: the n-queries-by-s-shards partial-result matrix is a
///    router member whose slots (and their neighbor/id heap buffers) are
///    recycled across Run() calls, so steady-state batches allocate no
///    per-task storage.
///
/// The router borrows the executor's lanes but owns its pools, so a
/// router and a plain executor batch never share cache state. Requests are
/// validated once at the router boundary; an invalid request yields one
/// error result and is never fanned out.
class QueryRouter {
 public:
  /// `index` and `executor` must outlive the router. The executor is only
  /// used for its lanes (ParallelApply); its own pool options are
  /// irrelevant here.
  QueryRouter(const ShardedIndex& index, QueryExecutor* executor,
              const QueryRouterOptions& options = {});

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  /// Scatter-gathers the whole batch; results are in input order.
  std::vector<QueryResult> Run(const std::vector<QueryRequest>& batch);

  /// Convenience for a single request.
  QueryResult RunOne(const QueryRequest& request);

  /// Aggregate view of the last Run(): per-query merged latencies feed the
  /// percentiles, counters are summed over all (query, shard) tasks, and
  /// `queries` / `rejected` report the full batch vs the requests that
  /// failed validation (rejected requests contribute no counters and no
  /// latency sample).
  const BatchReport& last_batch_report() const { return report_; }

  const ShardedBufferPool* shared_pool() const { return shared_pool_.get(); }

 private:
  PageCache* PoolFor(uint32_t worker_id);

  /// Runs queries [q_begin, q_end) of `batch` against shard `si` on lane
  /// `worker_id`, writing each part into partial_[qi * s + si] and, in
  /// overlap mode, merging any query whose countdown this slice finishes.
  void RunSlice(const std::vector<QueryRequest>& batch, uint32_t si,
                size_t q_begin, size_t q_end, uint32_t worker_id,
                const std::vector<uint8_t>& valid,
                std::vector<SharedPruneBound>* bounds,
                std::vector<QueryResult>* merged);

  const ShardedIndex* index_;
  QueryExecutor* executor_;
  QueryRouterOptions options_;
  std::vector<std::unique_ptr<BufferPool>> worker_pools_;
  std::unique_ptr<ShardedBufferPool> shared_pool_;

  /// Scatter scratch, reused across Run() calls: partial_[qi * s + si] is
  /// query qi's answer from shard si (ExecuteInto recycles each slot's
  /// buffers), remaining_[qi] counts qi's outstanding shard parts for the
  /// overlapped merge. Lock discipline note (common/sync.h): these need no
  /// mutex — each partial_ slot has exactly one writer per batch, and the
  /// acq_rel countdown on remaining_[qi] is the publication edge that
  /// hands a query's slots to whichever lane merges it. TSAN covers this
  /// protocol; the thread-safety analysis covers the mutex-based layers
  /// below it (stripe pools, metrics registry, durable shards).
  std::vector<QueryResult> partial_;
  std::unique_ptr<std::atomic<uint32_t>[]> remaining_;
  size_t remaining_capacity_ = 0;

  BatchReport report_;
};

}  // namespace sgtree

#endif  // SGTREE_SHARD_QUERY_ROUTER_H_
