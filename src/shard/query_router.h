#ifndef SGTREE_SHARD_QUERY_ROUTER_H_
#define SGTREE_SHARD_QUERY_ROUTER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "exec/query_api.h"
#include "exec/query_executor.h"
#include "obs/metrics.h"
#include "shard/sharded_index.h"
#include "storage/buffer_pool.h"
#include "storage/sharded_buffer_pool.h"

namespace sgtree {

struct QueryRouterOptions {
  /// Frames of each worker's private per-task pool, or the total capacity
  /// of the shared sharded pool — same semantics as QueryExecutorOptions.
  uint32_t buffer_pages = 64;

  /// 0 (default): every worker owns a private BufferPool cleared before
  /// each shard task, so every (query, shard) sub-query starts cold and
  /// per-shard counters are scheduling-independent. > 0: all workers share
  /// one ShardedBufferPool with this many lock stripes.
  uint32_t pool_shards = 0;

  /// Attach one SharedPruneBound per k-NN query, letting shards prune with
  /// the best k-th distance ANY shard has found so far (see
  /// sgtree/search.h). Results are identical either way — the bound only
  /// skips work — but per-shard counters become schedule-dependent, so the
  /// counter-determinism tests switch it off.
  bool shared_knn_bound = true;

  /// Optional registry: each batch feeds "shard.queries",
  /// "shard.fanout_tasks", per-shard "shard.<i>.queries" /
  /// "shard.<i>.random_ios" / "shard.<i>.nodes_visited" counters and the
  /// "shard.query_latency_us" histogram (merged per-query latencies), all
  /// from the calling thread after the fan-out.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Scatter-gather query engine over a ShardedIndex: every query of a batch
/// fans out to all shards as independent (query, shard) tasks on the
/// executor's worker pool, and the per-shard answers are merged on the
/// calling thread:
///
///  - kKnn / kBestFirstKnn: merge the per-shard candidate lists under
///    (distance, tid) and keep the first k. Both the single tree and every
///    shard resolve boundary ties canonically (search.h), and a shard's
///    list always contains every member of the global top-k that lives in
///    that shard — the shared bound is provably never below the final k-th
///    distance — so the merge reproduces the single-tree answer exactly.
///  - kRange: concatenate and sort by (distance, tid) — each shard returns
///    its exact in-range transactions, and tids are unique across shards.
///  - kContainment / kExact / kSubset: union of the per-shard id lists,
///    sorted ascending.
///
/// In every case the merged result is byte-identical to running the same
/// request on one SG-tree holding all the data (the determinism suite
/// checks this for all six types on 1/2/8 shards). Merged per-query
/// `stats`/`trace` are the SUM over shards and `elapsed_us` the MAX (the
/// scatter-gather service time); those match the single-tree numbers only
/// in spirit, not byte for byte.
///
/// The router borrows the executor's threads but owns its pools, so a
/// router and a plain executor batch never share cache state. Requests are
/// validated once at the router boundary; an invalid request yields one
/// error result and is never fanned out.
class QueryRouter {
 public:
  /// `index` and `executor` must outlive the router. The executor is only
  /// used for its worker pool (ParallelFor); its own pool options are
  /// irrelevant here.
  QueryRouter(const ShardedIndex& index, QueryExecutor* executor,
              const QueryRouterOptions& options = {});

  QueryRouter(const QueryRouter&) = delete;
  QueryRouter& operator=(const QueryRouter&) = delete;

  /// Scatter-gathers the whole batch; results are in input order.
  std::vector<QueryResult> Run(const std::vector<QueryRequest>& batch);

  /// Convenience for a single request.
  QueryResult RunOne(const QueryRequest& request);

  /// Aggregate view of the last Run(): per-query merged latencies feed the
  /// percentiles, counters are summed over all (query, shard) tasks.
  const BatchReport& last_batch_report() const { return report_; }

  const ShardedBufferPool* shared_pool() const { return shared_pool_.get(); }

 private:
  PageCache* PoolFor(uint32_t worker_id);

  const ShardedIndex* index_;
  QueryExecutor* executor_;
  QueryRouterOptions options_;
  std::vector<std::unique_ptr<BufferPool>> worker_pools_;
  std::unique_ptr<ShardedBufferPool> shared_pool_;
  BatchReport report_;
};

}  // namespace sgtree

#endif  // SGTREE_SHARD_QUERY_ROUTER_H_
