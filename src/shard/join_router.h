#ifndef SGTREE_SHARD_JOIN_ROUTER_H_
#define SGTREE_SHARD_JOIN_ROUTER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "exec/join_api.h"
#include "exec/query_executor.h"
#include "join/fvt_join.h"
#include "join/pretti_join.h"
#include "join/set_collection.h"
#include "obs/metrics.h"
#include "shard/sharded_index.h"

namespace sgtree {

/// Which join algorithm the router fans out (see src/join/).
enum class JoinAlgo {
  kTree,    // Tree-vs-tree traversal over the shard SG-trees (baseline).
  kPretti,  // Inverted index on S + prefix tree on R.
  kFvt,     // Candidate-free filter-and-verification trie on S.
};

const char* JoinAlgoName(JoinAlgo algo);
/// Parses "tree" / "pretti" / "fvt". Returns false on anything else.
bool ParseJoinAlgo(const std::string& text, JoinAlgo* algo);

struct JoinRouterOptions {
  JoinAlgo algo = JoinAlgo::kPretti;
  /// Frames of each side's private pool in the tree-join tasks.
  uint32_t buffer_pages = 64;
  /// Optional registry: every Run feeds "join.requests", "join.rejected",
  /// "join.pairs", "join.fanout_tasks", the per-task "join.task_us"
  /// histogram and the per-request "join.latency_us" histogram, all from
  /// the calling thread after the fan-out.
  obs::MetricsRegistry* metrics = nullptr;
};

/// Scatter-gather collection join over two ShardedIndexes, the sharded
/// sibling of ExecuteJoin: the R side's hash partition splits the pair set
/// disjointly (every pair's R row lives in exactly one R shard), the S side
/// is broadcast by crossing every R shard with every S shard, and the
/// |R shards| x |S shards| grid of independent shard-pair joins fans out
/// over the executor's lanes — the FVT paper's MapReduce partitioning
/// mapped onto ShardedIndex. Each task joins with the configured algorithm;
/// S-side structures (posting lists, FVT trie) are built once per S shard
/// at construction and shared read-only across tasks.
///
/// The merged result — concatenate, then sort in the canonical
/// (tid_a, tid_b) order — is byte-identical to CollectJoin over one
/// unsharded index holding all the data, for every algorithm: the grid
/// covers each joining pair exactly once and the pair distances are pure
/// functions of the pair. Merged stats/trace are the SUM over tasks and
/// `elapsed_us` the MAX (scatter-gather service time).
class JoinRouter {
 public:
  /// `left` (R), `right` (S), and `executor` must outlive the router. Both
  /// indexes must hold dynamic shards: static-mode indexes are refused
  /// with a one-line error at Run.
  JoinRouter(const ShardedIndex& left, const ShardedIndex& right,
             QueryExecutor* executor, const JoinRouterOptions& options = {});

  JoinRouter(const JoinRouter&) = delete;
  JoinRouter& operator=(const JoinRouter&) = delete;

  /// Runs the join, filling `*pairs` (cleared first) in canonical order.
  JoinResult Run(const JoinRequest& request, std::vector<JoinPair>* pairs);

 private:
  const ShardedIndex* left_;
  const ShardedIndex* right_;
  QueryExecutor* executor_;
  JoinRouterOptions options_;
  std::string setup_error_;

  // Per-shard join inputs, built once at construction (empty in tree mode,
  // which joins the shard trees directly).
  std::vector<SetCollection> left_sets_;
  std::vector<SetCollection> right_sets_;
  std::vector<std::unique_ptr<InvertedPostings>> right_postings_;
  std::vector<std::unique_ptr<FvtTrie>> right_tries_;
};

}  // namespace sgtree

#endif  // SGTREE_SHARD_JOIN_ROUTER_H_
